package anna

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// randVectors returns deterministic pseudo-random vectors.
func randVectors(seed int64, n, d int) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, d)
		for j := range v {
			v[j] = rng.Float32()
		}
		out[i] = v
	}
	return out
}

func buildDurableBase(t testing.TB) *Index {
	t.Helper()
	idx, err := BuildIndex(randVectors(1, 300, 8), L2, BuildOptions{
		NClusters: 8, M: 4, Ks: 16, TrainIters: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// expectSameResults asserts two indexes answer a query set identically —
// the "recovered state equals acknowledged state" oracle.
func expectSameResults(t *testing.T, want, got *Index) {
	t.Helper()
	if want.Len() != got.Len() || want.NextID() != got.NextID() {
		t.Fatalf("size mismatch: want Len=%d NextID=%d, got Len=%d NextID=%d",
			want.Len(), want.NextID(), got.Len(), got.NextID())
	}
	for qi, q := range randVectors(99, 20, want.Dim()) {
		a := want.Search(q, want.NClusters(), 10)
		b := got.Search(q, got.NClusters(), 10)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", qi, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d rank %d: %+v vs %+v", qi, i, a[i], b[i])
			}
		}
	}
}

func postJSONInto(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestStoreCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, buildDurableBase(t), StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	batch := randVectors(2, 40, 8)
	if err := st.LogAdd(st.Index().NextID(), batch); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Index().Add(batch); err != nil {
		t.Fatal(err)
	}
	want := st.Index()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(dir, StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.ReplayedRecords() != 1 || re.TornBytes() != 0 {
		t.Fatalf("replayed=%d torn=%d", re.ReplayedRecords(), re.TornBytes())
	}
	expectSameResults(t, want, re.Index())
}

// TestRecoveryAfterKillMidAdd is the acceptance scenario: a server is
// killed while an /add stream is in flight. Every acknowledged batch
// must survive; the torn in-flight record must be discarded; recovered
// search results must match a reference index built from the snapshot
// plus exactly the acknowledged batches.
func TestRecoveryAfterKillMidAdd(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, buildDurableBase(t), StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st.Index())
	srv.Store = st
	ts := httptest.NewServer(srv.Handler())

	var acked [][][]float32
	for i := 0; i < 5; i++ {
		batch := randVectors(int64(10+i), 8+i, 8)
		var resp addResponse
		r := postJSONInto(t, ts.URL+"/add", addRequest{Vectors: batch}, &resp)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("add %d: status %d", i, r.StatusCode)
		}
		if resp.Count != len(batch) {
			t.Fatalf("add %d acked %d vectors", i, resp.Count)
		}
		acked = append(acked, batch)
	}
	ts.Close()
	// Kill: no shutdown snapshot, no clean close. The WAL file holds the
	// five fsynced records; the sixth batch was mid-write when the
	// process died, leaving a torn record at the tail.
	st.Close() // release the fd only; equivalent to a crash post-fsync
	wf, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Write([]byte{5, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	wf.Close()

	// Reference: the snapshot exactly as written at store creation, plus
	// the acknowledged batches applied in order.
	ref, err := LoadIndexFile(filepath.Join(dir, snapshotName))
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range acked {
		if _, err := ref.Add(batch); err != nil {
			t.Fatal(err)
		}
	}

	re, err := OpenStore(dir, StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer re.Close()
	if re.ReplayedRecords() != len(acked) {
		t.Fatalf("replayed %d records, want %d", re.ReplayedRecords(), len(acked))
	}
	if re.TornBytes() != 10 {
		t.Fatalf("TornBytes = %d, want 10", re.TornBytes())
	}
	expectSameResults(t, ref, re.Index())

	// The recovered store keeps serving: another add and another reopen.
	more := randVectors(77, 6, 8)
	if err := re.LogAdd(re.Index().NextID(), more); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Index().Add(more); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotIdempotentReplay covers the crash window between the
// snapshot rename and the WAL trim: records already contained in the
// snapshot must be skipped, not double-applied.
func TestSnapshotIdempotentReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, buildDurableBase(t), StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	batch := randVectors(3, 25, 8)
	if err := st.LogAdd(st.Index().NextID(), batch); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Index().Add(batch); err != nil {
		t.Fatal(err)
	}
	// Snapshot lands, then the process dies before Reset: write the
	// snapshot directly, leaving the already-applied record in the WAL.
	if err := st.Index().SaveFile(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatal(err)
	}
	want := st.Index()
	st.Close()

	re, err := OpenStore(dir, StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer re.Close()
	if re.ReplayedRecords() != 0 {
		t.Fatalf("replayed %d records; snapshot-covered records must be skipped", re.ReplayedRecords())
	}
	expectSameResults(t, want, re.Index())
}

func TestAdminSnapshotTrimsWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, buildDurableBase(t), StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st.Index())
	srv.Store = st
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer st.Close()

	postJSONInto(t, ts.URL+"/add", addRequest{Vectors: randVectors(4, 30, 8)}, nil)
	if st.WALRecords() != 1 {
		t.Fatalf("WAL holds %d records before snapshot", st.WALRecords())
	}
	var snap snapshotResponse
	r := postJSONInto(t, ts.URL+"/admin/snapshot", struct{}{}, &snap)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", r.StatusCode)
	}
	if snap.WALRecords != 0 || st.WALSize() != 0 {
		t.Fatalf("WAL not trimmed: %d records, %d bytes", snap.WALRecords, st.WALSize())
	}
	if snap.Vectors != 330 {
		t.Fatalf("snapshot reports %d vectors", snap.Vectors)
	}
	// GET must be refused; a store-less server must 503.
	if resp, err := http.Get(ts.URL + "/admin/snapshot"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET snapshot: %v %v", resp.StatusCode, err)
	}
	plain := httptest.NewServer(NewServer(buildDurableBase(t)).Handler())
	defer plain.Close()
	if r := postJSONInto(t, plain.URL+"/admin/snapshot", struct{}{}, nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("store-less snapshot: status %d", r.StatusCode)
	}

	// After the checkpoint a reopen replays nothing and sees everything.
	want := st.Index()
	re, err := OpenStore(dir, StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.ReplayedRecords() != 0 {
		t.Fatalf("replayed %d records after checkpoint", re.ReplayedRecords())
	}
	expectSameResults(t, want, re.Index())
}

func TestAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, buildDurableBase(t), StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := NewServer(st.Index())
	srv.Store = st
	srv.SnapshotEvery = 50
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSONInto(t, ts.URL+"/add", addRequest{Vectors: randVectors(6, 30, 8)}, nil)
	if st.WALRecords() != 1 {
		t.Fatalf("auto-snapshot fired below threshold (%d WAL records)", st.WALRecords())
	}
	postJSONInto(t, ts.URL+"/add", addRequest{Vectors: randVectors(7, 30, 8)}, nil)
	if st.WALRecords() != 0 {
		t.Fatalf("auto-snapshot did not fire at threshold (%d WAL records)", st.WALRecords())
	}
}

func TestOpenStoreRefusesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, buildDurableBase(t), StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	path := filepath.Join(dir, snapshotName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenStore(dir, StoreOptions{})
	if err == nil || !IsCorrupt(err) {
		t.Fatalf("corrupt snapshot: got %v, want IsCorrupt", err)
	}
}

// TestOpenStoreRefusesInconsistentWAL: a record that neither matches the
// snapshot frontier nor is covered by it (an ID gap) must refuse the
// store rather than silently renumber vectors.
func TestOpenStoreRefusesInconsistentWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, buildDurableBase(t), StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	// Log a record claiming IDs far past the snapshot frontier.
	if err := st.LogAdd(st.Index().NextID()+1000, randVectors(8, 5, 8)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	_, err = OpenStore(dir, StoreOptions{})
	if err == nil || !IsCorrupt(err) {
		t.Fatalf("gapped WAL: got %v, want IsCorrupt", err)
	}
}

func TestCreateStoreRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, buildDurableBase(t), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if !StoreExists(dir) {
		t.Fatal("StoreExists = false after create")
	}
	if _, err := CreateStore(dir, buildDurableBase(t), StoreOptions{}); err == nil {
		t.Fatal("CreateStore over an existing store must fail")
	}
}

// TestOpenStoreSweepsTempFiles: leftovers from a snapshot interrupted
// mid-write must not accumulate or be mistaken for anything.
func TestOpenStoreSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, buildDurableBase(t), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	junk := filepath.Join(dir, snapshotName+".tmp123")
	if err := os.WriteFile(junk, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
	if _, err := os.Stat(junk); !os.IsNotExist(err) {
		t.Fatalf("temp file survived recovery: %v", err)
	}
}

func TestAddRecordCodec(t *testing.T) {
	vecs := randVectors(11, 3, 4)
	payload := encodeAddRecord(42, vecs)
	firstID, got, err := decodeAddRecord(payload)
	if err != nil || firstID != 42 {
		t.Fatalf("decode: id=%d err=%v", firstID, err)
	}
	for i := range vecs {
		for j := range vecs[i] {
			if got[i][j] != vecs[i][j] {
				t.Fatalf("vector %d component %d mismatch", i, j)
			}
		}
	}
	bad := [][]byte{
		{},
		{2},
		payload[:len(payload)-1],
		append(append([]byte(nil), payload...), 0),
	}
	for i, b := range bad {
		if _, _, err := decodeAddRecord(b); err == nil {
			t.Fatalf("bad payload %d accepted", i)
		}
	}
	// Non-finite floats are data corruption the CRC cannot catch if they
	// were written that way; the decoder must still refuse them.
	nan := encodeAddRecord(0, [][]float32{{1, 2}})
	nan[17] = 0xFF
	nan[18] = 0xFF
	nan[19] = 0xFF
	nan[20] = 0xFF
	if _, _, err := decodeAddRecord(nan); err == nil {
		t.Fatal("NaN component accepted")
	}
}

// TestDurabilityMetricsExported checks the new instruments appear on
// /metrics once a store is attached.
func TestDurabilityMetricsExported(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, buildDurableBase(t), StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := NewServer(st.Index())
	srv.Store = st
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSONInto(t, ts.URL+"/add", addRequest{Vectors: randVectors(13, 10, 8)}, nil)
	postJSONInto(t, ts.URL+"/admin/snapshot", struct{}{}, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, name := range []string{
		"anna_wal_append_duration_seconds",
		"anna_wal_fsync_duration_seconds",
		"anna_wal_fsync_total",
		"anna_snapshots_total",
		"anna_snapshot_duration_seconds",
		"anna_snapshot_size_bytes",
		"anna_recovery_replayed_records_total",
		"anna_last_snapshot_age_seconds",
		"anna_wal_records",
		"anna_wal_size_bytes",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(name)) {
			t.Fatalf("metric %s missing from /metrics:\n%s", name, body[:min(len(body), 2000)])
		}
	}
	if !bytes.Contains(buf.Bytes(), []byte("anna_wal_fsync_total 2")) {
		// 1 append fsync + 1 WAL reset fsync.
		t.Fatalf("fsync counter not wired:\n%s", body)
	}
	// The snapshot counter reads the store's own count: exactly the one
	// /admin/snapshot above (seeding in CreateStore is not a snapshot
	// write), and the fsync latency histogram saw both fsyncs.
	if !bytes.Contains(buf.Bytes(), []byte("anna_snapshots_total 1")) {
		t.Fatalf("snapshot counter not wired to store stats:\n%s", body)
	}
	if !bytes.Contains(buf.Bytes(), []byte("anna_wal_fsync_duration_seconds_count 2")) {
		t.Fatalf("fsync duration histogram not wired:\n%s", body)
	}
}
