#!/bin/sh
# Observability smoke (docs/ARCHITECTURE.md §4k): boot a real annaserve
# with the scraper and SLO engine on, then require the monitoring
# surface to answer — /debug/dash, /debug/tsdb, /alerts and /metrics
# must all return 200 with non-empty bodies. Run from the repo root;
# invoked by `make bench-smoke` and the CI bench-smoke job.
set -eu

GO=${GO:-go}
ADDR=${OBS_SMOKE_ADDR:-127.0.0.1:18080}
DIR=$(mktemp -d)
SRV_PID=
cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

echo "obs-smoke: training a small synthetic index"
$GO run ./cmd/annatrain -synthetic sift -n 4000 -c 32 -iters 3 -o "$DIR/smoke.anna" >/dev/null

echo "obs-smoke: starting annaserve on $ADDR"
# A built binary, not `go run`: the trap must kill the server itself,
# and its output must not hold this script's stdout pipe open.
$GO build -o "$DIR/annaserve" ./cmd/annaserve
"$DIR/annaserve" -index "$DIR/smoke.anna" -addr "$ADDR" \
    -scrape-every 100ms -slo-latency-p99 50ms -slo-availability 0.999 \
    >"$DIR/serve.log" 2>&1 &
SRV_PID=$!

for i in $(seq 1 100); do
    if curl -fs "http://$ADDR/readyz" >/dev/null 2>&1; then
        break
    fi
    if [ "$i" -eq 100 ]; then
        echo "obs-smoke: server never became ready" >&2
        cat "$DIR/serve.log" >&2
        exit 1
    fi
    sleep 0.2
done

# Some traffic so the scraper has counters to snapshot.
payload='{"queries": [['$(seq -s, 1 128)']], "k": 5}'
for i in 1 2 3 4 5; do
    curl -fs -X POST -d "$payload" "http://$ADDR/search" >/dev/null
done
sleep 0.5 # a few 100ms scrape ticks

fail=0
for path in /debug/dash /debug/tsdb /alerts /metrics; do
    body=$(curl -fs "http://$ADDR$path") || {
        echo "obs-smoke: GET $path failed (non-200)" >&2
        fail=1
        continue
    }
    if [ -z "$body" ]; then
        echo "obs-smoke: GET $path returned an empty body" >&2
        fail=1
    else
        echo "obs-smoke: $path ok ($(printf %s "$body" | wc -c) bytes)"
    fi
done

# The tsdb must actually hold scraped points for the serving series.
if ! curl -fs "http://$ADDR/debug/tsdb?series=requests" | grep -q '"v"'; then
    echo "obs-smoke: tsdb has no scraped points for the requests series" >&2
    fail=1
fi

exit $fail
