package anna

import (
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"anna/internal/qos"
)

// ReadinessGate is the boot-time front door of a serving process. A
// process that is still recovering — loading its snapshot, replaying
// its WAL, bootstrapping from a peer — can start listening immediately
// by serving the gate, then swap the real handler in with Ready once
// recovery finishes:
//
//	gate := anna.NewReadinessGate()
//	go http.ListenAndServe(addr, gate) // answers /healthz, 503s the rest
//	store, err := anna.OpenStore(dir, opt) // slow: snapshot + WAL replay
//	...
//	gate.Ready(srv.Handler())
//
// Until Ready: /healthz answers 200 (the process is alive), /readyz
// answers 503 (it cannot serve correctly yet), and every other path
// answers 503 with a jittered Retry-After. After Ready, every request —
// including /readyz, which the Server answers 200 — goes to the real
// handler. Load balancers and the shard router poll /readyz, so a
// recovering replica receives no traffic until its state is complete.
type ReadinessGate struct {
	inner atomic.Pointer[http.Handler]
}

// NewReadinessGate returns a gate in the not-ready state.
func NewReadinessGate() *ReadinessGate {
	return &ReadinessGate{}
}

// Ready swaps in the real handler, flipping /readyz to 200. It is safe
// to call concurrently with requests; calling it again replaces the
// handler.
func (g *ReadinessGate) Ready(h http.Handler) {
	g.inner.Store(&h)
}

// IsReady reports whether Ready has been called.
func (g *ReadinessGate) IsReady() bool { return g.inner.Load() != nil }

func (g *ReadinessGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := g.inner.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	if r.URL.Path == "/healthz" {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		return
	}
	w.Header().Set("Retry-After", strconv.Itoa(qos.RetryAfterSeconds()))
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, "recovering")
}
