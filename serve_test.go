package anna

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, [][]float32) {
	t.Helper()
	idx, base, _ := buildTestIndex(t, L2, 16)
	s := NewServer(idx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, base
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerSearch(t *testing.T) {
	_, ts, base := newTestServer(t)
	resp := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[5]}, W: 24, K: 3,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || len(out.Results[0]) != 3 {
		t.Fatalf("shape: %+v", out)
	}
	// Querying with a database vector: it (or a quantization twin) ranks
	// near the top.
	found := false
	for _, r := range out.Results[0] {
		if r.ID == 5 {
			found = true
		}
	}
	if !found {
		t.Logf("self not in top-3 (quantization tie): %+v", out.Results[0])
	}
}

func TestServerSearchDefaults(t *testing.T) {
	_, ts, base := newTestServer(t)
	resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{base[0]}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out searchResponse
	json.NewDecoder(resp.Body).Decode(&out)
	if len(out.Results[0]) != 10 { // DefaultK
		t.Errorf("%d results with defaults", len(out.Results[0]))
	}
}

func TestServerSearchErrors(t *testing.T) {
	s, ts, base := newTestServer(t)
	cases := []struct {
		name string
		body any
		code int
	}{
		{"empty", searchRequest{}, http.StatusBadRequest},
		{"wrong dim", searchRequest{Queries: [][]float32{{1, 2}}}, http.StatusBadRequest},
		{"oversized batch", func() searchRequest {
			s.MaxBatch = 2
			return searchRequest{Queries: [][]float32{base[0], base[1], base[2]}}
		}(), http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/search", c.body)
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.code)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
	// Wrong method.
	get, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search: status %d", get.StatusCode)
	}
}

func TestServerAddThenSearch(t *testing.T) {
	_, ts, _ := newTestServer(t)
	newVecs := clusteredVectors(10, 32, 24, 77)
	resp := postJSON(t, ts.URL+"/add", addRequest{Vectors: newVecs})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add status %d", resp.StatusCode)
	}
	var added addResponse
	json.NewDecoder(resp.Body).Decode(&added)
	if added.Count != 10 || added.FirstID != 3000 {
		t.Fatalf("add response %+v", added)
	}

	// The added vector is now searchable.
	sr := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{newVecs[0]}, W: 24, K: 5,
	})
	defer sr.Body.Close()
	var out searchResponse
	json.NewDecoder(sr.Body).Decode(&out)
	found := false
	for _, r := range out.Results[0] {
		if r.ID == added.FirstID {
			found = true
		}
	}
	if !found {
		t.Errorf("added vector not found: %+v", out.Results[0])
	}
}

func TestServerStatsAndHealth(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["vectors"].(float64) != 3000 || st["metric"].(string) != "l2" {
		t.Errorf("stats: %+v", st)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hz.StatusCode)
	}
}

func TestServerAcceleratorBackend(t *testing.T) {
	idx, base, _ := buildTestIndex(t, L2, 16)
	cfg := DefaultAcceleratorConfig()
	cfg.TopK = 100
	acc, err := NewAccelerator(idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(idx)
	s.Accelerator = acc
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[3]}, W: 6, K: 5, Backend: "anna",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out searchResponse
	json.NewDecoder(resp.Body).Decode(&out)
	if len(out.Results) != 1 || len(out.Results[0]) != 5 {
		t.Fatalf("shape %+v", out.Results)
	}
	if out.Cycles <= 0 || out.TrafficBytes <= 0 || out.ChipEnergyJ <= 0 {
		t.Errorf("missing simulated cost: %+v", out)
	}

	// Unknown backend and missing accelerator both error.
	bad := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[0]}, Backend: "gpu",
	})
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown backend status %d", bad.StatusCode)
	}
	s.Accelerator = nil
	noacc := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[0]}, Backend: "anna",
	})
	noacc.Body.Close()
	if noacc.StatusCode != http.StatusBadRequest {
		t.Errorf("accelerator-less status %d", noacc.StatusCode)
	}
}

// After a search, /metrics exposes the per-stage latency histograms, the
// saturation gauges and the per-handler request series.
func TestServerMetricsEndpoint(t *testing.T) {
	_, ts, base := newTestServer(t)
	resp := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[0], base[1]}, W: 8, K: 5,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", mr.StatusCode)
	}
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, _ := io.ReadAll(mr.Body)
	out := string(body)
	for _, want := range []string{
		"# TYPE anna_stage_duration_seconds histogram",
		`anna_stage_duration_seconds_bucket{stage="select",le="+Inf"} 1`,
		`anna_stage_duration_seconds_bucket{stage="scan",le="+Inf"} 1`,
		`anna_stage_duration_seconds_bucket{stage="merge",le="+Inf"} 1`,
		`anna_stage_duration_seconds_count{stage="select"} 1`,
		`anna_request_duration_seconds_count{handler="search"} 1`,
		`anna_http_requests_total{handler="search",code="200"} 1`,
		"anna_inflight_requests 0",
		"anna_engine_queue_depth 0",
		"anna_engine_inflight_queries 0",
		"anna_index_vectors 3000",
		"anna_search_queries_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Real work was accounted: scanned vectors and list bytes are > 0.
	for _, prefix := range []string{"anna_scanned_vectors_total ", "anna_list_bytes_read_total "} {
		i := strings.Index(out, prefix)
		if i < 0 {
			t.Errorf("/metrics missing %q", prefix)
			continue
		}
		val := strings.TrimSpace(out[i+len(prefix) : i+len(prefix)+strings.IndexByte(out[i+len(prefix):], '\n')])
		if val == "0" {
			t.Errorf("%s is zero", prefix)
		}
	}
}

// With the admission gate saturated, /search sheds load with 429 and
// counts the rejection; a freed slot admits again.
func TestServerOverload(t *testing.T) {
	s, ts, base := newTestServer(t)
	s.MaxInFlight = 1
	s.inflight.Add(1) // occupy the only slot
	resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{base[0]}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.m.rejected.Value(); got != 1 {
		t.Errorf("rejected counter %d, want 1", got)
	}

	s.inflight.Add(-1) // release
	ok := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{base[0]}})
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Errorf("freed-slot status %d, want 200", ok.StatusCode)
	}
}

// An expired SearchTimeout propagates through the request context into
// the engine, which abandons the batch; the client gets 504.
func TestServerSearchTimeout(t *testing.T) {
	s, ts, base := newTestServer(t)
	s.SearchTimeout = time.Nanosecond
	resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{base[0]}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var e map[string]string
	json.NewDecoder(resp.Body).Decode(&e)
	if !strings.Contains(e["error"], "deadline") {
		t.Errorf("error %q does not mention the deadline", e["error"])
	}
}

func TestServerAddValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for _, tc := range []struct {
		name string
		body any
	}{
		{"empty", addRequest{}},
		{"wrong dim", addRequest{Vectors: [][]float32{{1, 2, 3}}}},
	} {
		resp := postJSON(t, ts.URL+"/add", tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// NaN/Inf can't transit well-formed JSON, so exercise the validator
	// directly (the embedded-server path).
	bad := make([]float32, 32)
	bad[7] = float32(math.NaN())
	if err := validateAddVectors([][]float32{bad}, 32); err == nil {
		t.Error("NaN vector accepted")
	}
	bad[7] = float32(math.Inf(1))
	if err := validateAddVectors([][]float32{bad}, 32); err == nil {
		t.Error("+Inf vector accepted")
	}
	if err := validateAddVectors([][]float32{make([]float32, 32)}, 32); err != nil {
		t.Errorf("finite vector rejected: %v", err)
	}
}

func TestServerPprof(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}

	// Disabled servers don't expose profiles.
	idx, _, _ := buildTestIndex(t, L2, 16)
	off := NewServer(idx)
	off.DisablePprof = true
	ts2 := httptest.NewServer(off.Handler())
	defer ts2.Close()
	r2, err := http.Get(ts2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("disabled pprof status %d, want 404", r2.StatusCode)
	}
}

// /stats reports serving latency quantiles once traffic has flowed.
func TestServerStatsLatencySummary(t *testing.T) {
	_, ts, base := newTestServer(t)
	resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{base[0]}})
	resp.Body.Close()
	st, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(st.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	lat, ok := out["search_latency_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing search_latency_seconds: %v", out)
	}
	if lat["count"].(float64) != 1 {
		t.Errorf("latency count %v, want 1", lat["count"])
	}
	if p50 := lat["p50"].(float64); p50 <= 0 {
		t.Errorf("p50 %v, want > 0", p50)
	}
}

// Concurrent searches and adds must not race (run with -race).
func TestServerConcurrentAccess(t *testing.T) {
	_, ts, base := newTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%4 == 0 {
				resp := postJSON(t, ts.URL+"/add", addRequest{
					Vectors: clusteredVectors(5, 32, 24, int64(i)),
				})
				resp.Body.Close()
				return
			}
			resp := postJSON(t, ts.URL+"/search", searchRequest{
				Queries: [][]float32{base[i]}, W: 8, K: 5,
			})
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
}
