package anna

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, [][]float32) {
	t.Helper()
	idx, base, _ := buildTestIndex(t, L2, 16)
	s := NewServer(idx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, base
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerSearch(t *testing.T) {
	_, ts, base := newTestServer(t)
	resp := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[5]}, W: 24, K: 3,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || len(out.Results[0]) != 3 {
		t.Fatalf("shape: %+v", out)
	}
	// Querying with a database vector: it (or a quantization twin) ranks
	// near the top.
	found := false
	for _, r := range out.Results[0] {
		if r.ID == 5 {
			found = true
		}
	}
	if !found {
		t.Logf("self not in top-3 (quantization tie): %+v", out.Results[0])
	}
}

func TestServerSearchDefaults(t *testing.T) {
	_, ts, base := newTestServer(t)
	resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{base[0]}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out searchResponse
	json.NewDecoder(resp.Body).Decode(&out)
	if len(out.Results[0]) != 10 { // DefaultK
		t.Errorf("%d results with defaults", len(out.Results[0]))
	}
}

func TestServerSearchErrors(t *testing.T) {
	s, ts, base := newTestServer(t)
	cases := []struct {
		name string
		body any
		code int
	}{
		{"empty", searchRequest{}, http.StatusBadRequest},
		{"wrong dim", searchRequest{Queries: [][]float32{{1, 2}}}, http.StatusBadRequest},
		{"oversized batch", func() searchRequest {
			s.MaxBatch = 2
			return searchRequest{Queries: [][]float32{base[0], base[1], base[2]}}
		}(), http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/search", c.body)
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.code)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
	// Wrong method.
	get, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search: status %d", get.StatusCode)
	}
}

func TestServerAddThenSearch(t *testing.T) {
	_, ts, _ := newTestServer(t)
	newVecs := clusteredVectors(10, 32, 24, 77)
	resp := postJSON(t, ts.URL+"/add", addRequest{Vectors: newVecs})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add status %d", resp.StatusCode)
	}
	var added addResponse
	json.NewDecoder(resp.Body).Decode(&added)
	if added.Count != 10 || added.FirstID != 3000 {
		t.Fatalf("add response %+v", added)
	}

	// The added vector is now searchable.
	sr := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{newVecs[0]}, W: 24, K: 5,
	})
	defer sr.Body.Close()
	var out searchResponse
	json.NewDecoder(sr.Body).Decode(&out)
	found := false
	for _, r := range out.Results[0] {
		if r.ID == added.FirstID {
			found = true
		}
	}
	if !found {
		t.Errorf("added vector not found: %+v", out.Results[0])
	}
}

func TestServerStatsAndHealth(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["vectors"].(float64) != 3000 || st["metric"].(string) != "l2" {
		t.Errorf("stats: %+v", st)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hz.StatusCode)
	}
}

func TestServerAcceleratorBackend(t *testing.T) {
	idx, base, _ := buildTestIndex(t, L2, 16)
	cfg := DefaultAcceleratorConfig()
	cfg.TopK = 100
	acc, err := NewAccelerator(idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(idx)
	s.Accelerator = acc
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[3]}, W: 6, K: 5, Backend: "anna",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out searchResponse
	json.NewDecoder(resp.Body).Decode(&out)
	if len(out.Results) != 1 || len(out.Results[0]) != 5 {
		t.Fatalf("shape %+v", out.Results)
	}
	if out.Cycles <= 0 || out.TrafficBytes <= 0 || out.ChipEnergyJ <= 0 {
		t.Errorf("missing simulated cost: %+v", out)
	}

	// Unknown backend and missing accelerator both error.
	bad := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[0]}, Backend: "gpu",
	})
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown backend status %d", bad.StatusCode)
	}
	s.Accelerator = nil
	noacc := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[0]}, Backend: "anna",
	})
	noacc.Body.Close()
	if noacc.StatusCode != http.StatusBadRequest {
		t.Errorf("accelerator-less status %d", noacc.StatusCode)
	}
}

// Concurrent searches and adds must not race (run with -race).
func TestServerConcurrentAccess(t *testing.T) {
	_, ts, base := newTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%4 == 0 {
				resp := postJSON(t, ts.URL+"/add", addRequest{
					Vectors: clusteredVectors(5, 32, 24, int64(i)),
				})
				resp.Body.Close()
				return
			}
			resp := postJSON(t, ts.URL+"/search", searchRequest{
				Queries: [][]float32{base[i]}, W: 8, K: 5,
			})
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
}
