package anna

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"anna/internal/wal"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server, [][]float32) {
	t.Helper()
	idx, base, _ := buildTestIndex(t, L2, 16)
	s := NewServer(idx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, base
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerSearch(t *testing.T) {
	_, ts, base := newTestServer(t)
	resp := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[5]}, W: 24, K: 3,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out searchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || len(out.Results[0]) != 3 {
		t.Fatalf("shape: %+v", out)
	}
	// Querying with a database vector: it (or a quantization twin) ranks
	// near the top.
	found := false
	for _, r := range out.Results[0] {
		if r.ID == 5 {
			found = true
		}
	}
	if !found {
		t.Logf("self not in top-3 (quantization tie): %+v", out.Results[0])
	}
}

func TestServerSearchDefaults(t *testing.T) {
	_, ts, base := newTestServer(t)
	resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{base[0]}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out searchResponse
	json.NewDecoder(resp.Body).Decode(&out)
	if len(out.Results[0]) != 10 { // DefaultK
		t.Errorf("%d results with defaults", len(out.Results[0]))
	}
}

func TestServerSearchErrors(t *testing.T) {
	s, ts, base := newTestServer(t)
	cases := []struct {
		name string
		body any
		code int
	}{
		{"empty", searchRequest{}, http.StatusBadRequest},
		{"wrong dim", searchRequest{Queries: [][]float32{{1, 2}}}, http.StatusBadRequest},
		{"oversized batch", func() searchRequest {
			s.MaxBatch = 2
			return searchRequest{Queries: [][]float32{base[0], base[1], base[2]}}
		}(), http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/search", c.body)
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.code)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/search", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
	// Wrong method.
	get, err := http.Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search: status %d", get.StatusCode)
	}
}

func TestServerAddThenSearch(t *testing.T) {
	_, ts, _ := newTestServer(t)
	newVecs := clusteredVectors(10, 32, 24, 77)
	resp := postJSON(t, ts.URL+"/add", addRequest{Vectors: newVecs})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add status %d", resp.StatusCode)
	}
	var added addResponse
	json.NewDecoder(resp.Body).Decode(&added)
	if added.Count != 10 || added.FirstID != 3000 {
		t.Fatalf("add response %+v", added)
	}

	// The added vector is now searchable.
	sr := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{newVecs[0]}, W: 24, K: 5,
	})
	defer sr.Body.Close()
	var out searchResponse
	json.NewDecoder(sr.Body).Decode(&out)
	found := false
	for _, r := range out.Results[0] {
		if r.ID == added.FirstID {
			found = true
		}
	}
	if !found {
		t.Errorf("added vector not found: %+v", out.Results[0])
	}
}

func TestServerStatsAndHealth(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["vectors"].(float64) != 3000 || st["metric"].(string) != "l2" {
		t.Errorf("stats: %+v", st)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hz.StatusCode)
	}
}

func TestServerAcceleratorBackend(t *testing.T) {
	idx, base, _ := buildTestIndex(t, L2, 16)
	cfg := DefaultAcceleratorConfig()
	cfg.TopK = 100
	acc, err := NewAccelerator(idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(idx)
	s.Accelerator = acc
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[3]}, W: 6, K: 5, Backend: "anna",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out searchResponse
	json.NewDecoder(resp.Body).Decode(&out)
	if len(out.Results) != 1 || len(out.Results[0]) != 5 {
		t.Fatalf("shape %+v", out.Results)
	}
	if out.Cycles <= 0 || out.TrafficBytes <= 0 || out.ChipEnergyJ <= 0 {
		t.Errorf("missing simulated cost: %+v", out)
	}

	// Unknown backend and missing accelerator both error.
	bad := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[0]}, Backend: "gpu",
	})
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown backend status %d", bad.StatusCode)
	}
	s.Accelerator = nil
	noacc := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[0]}, Backend: "anna",
	})
	noacc.Body.Close()
	if noacc.StatusCode != http.StatusBadRequest {
		t.Errorf("accelerator-less status %d", noacc.StatusCode)
	}
}

// After a search, /metrics exposes the per-stage latency histograms, the
// saturation gauges and the per-handler request series.
func TestServerMetricsEndpoint(t *testing.T) {
	_, ts, base := newTestServer(t)
	resp := postJSON(t, ts.URL+"/search", searchRequest{
		Queries: [][]float32{base[0], base[1]}, W: 8, K: 5,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", mr.StatusCode)
	}
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, _ := io.ReadAll(mr.Body)
	out := string(body)
	for _, want := range []string{
		"# TYPE anna_stage_duration_seconds histogram",
		`anna_stage_duration_seconds_bucket{stage="select",le="+Inf"} 1`,
		`anna_stage_duration_seconds_bucket{stage="scan",le="+Inf"} 1`,
		`anna_stage_duration_seconds_bucket{stage="merge",le="+Inf"} 1`,
		`anna_stage_duration_seconds_count{stage="select"} 1`,
		`anna_request_duration_seconds_count{handler="search"} 1`,
		`anna_http_requests_total{handler="search",code="200"} 1`,
		"anna_inflight_requests 0",
		"anna_engine_queue_depth 0",
		"anna_engine_inflight_queries 0",
		"anna_index_vectors 3000",
		"anna_search_queries_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Real work was accounted: scanned vectors and list bytes are > 0.
	for _, prefix := range []string{"anna_scanned_vectors_total ", "anna_list_bytes_read_total "} {
		i := strings.Index(out, prefix)
		if i < 0 {
			t.Errorf("/metrics missing %q", prefix)
			continue
		}
		val := strings.TrimSpace(out[i+len(prefix) : i+len(prefix)+strings.IndexByte(out[i+len(prefix):], '\n')])
		if val == "0" {
			t.Errorf("%s is zero", prefix)
		}
	}
}

// With the admission gate saturated, /search sheds load with 429 and
// counts the rejection; a freed slot admits again.
func TestServerOverload(t *testing.T) {
	s, ts, base := newTestServer(t)
	s.MaxInFlight = 1
	s.inflight.Add(1) // occupy the only slot
	resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{base[0]}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.m.rejected.Value(); got != 1 {
		t.Errorf("rejected counter %d, want 1", got)
	}

	s.inflight.Add(-1) // release
	ok := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{base[0]}})
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Errorf("freed-slot status %d, want 200", ok.StatusCode)
	}
}

// An expired SearchTimeout propagates through the request context into
// the engine, which abandons the batch; the client gets 504.
func TestServerSearchTimeout(t *testing.T) {
	s, ts, base := newTestServer(t)
	s.SearchTimeout = time.Nanosecond
	resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{base[0]}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var e map[string]string
	json.NewDecoder(resp.Body).Decode(&e)
	if !strings.Contains(e["error"], "deadline") {
		t.Errorf("error %q does not mention the deadline", e["error"])
	}
}

func TestServerAddValidation(t *testing.T) {
	_, ts, _ := newTestServer(t)
	for _, tc := range []struct {
		name string
		body any
	}{
		{"empty", addRequest{}},
		{"wrong dim", addRequest{Vectors: [][]float32{{1, 2, 3}}}},
	} {
		resp := postJSON(t, ts.URL+"/add", tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// NaN/Inf can't transit well-formed JSON, so exercise the validator
	// directly (the embedded-server path).
	bad := make([]float32, 32)
	bad[7] = float32(math.NaN())
	if err := validateAddVectors([][]float32{bad}, 32); err == nil {
		t.Error("NaN vector accepted")
	}
	bad[7] = float32(math.Inf(1))
	if err := validateAddVectors([][]float32{bad}, 32); err == nil {
		t.Error("+Inf vector accepted")
	}
	if err := validateAddVectors([][]float32{make([]float32, 32)}, 32); err != nil {
		t.Errorf("finite vector rejected: %v", err)
	}
}

func TestServerPprof(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}

	// Disabled servers don't expose profiles.
	idx, _, _ := buildTestIndex(t, L2, 16)
	off := NewServer(idx)
	off.DisablePprof = true
	ts2 := httptest.NewServer(off.Handler())
	defer ts2.Close()
	r2, err := http.Get(ts2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("disabled pprof status %d, want 404", r2.StatusCode)
	}
}

// /stats reports serving latency quantiles once traffic has flowed.
func TestServerStatsLatencySummary(t *testing.T) {
	_, ts, base := newTestServer(t)
	resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{base[0]}})
	resp.Body.Close()
	st, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(st.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	lat, ok := out["search_latency_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing search_latency_seconds: %v", out)
	}
	if lat["count"].(float64) != 1 {
		t.Errorf("latency count %v, want 1", lat["count"])
	}
	if p50 := lat["p50"].(float64); p50 <= 0 {
		t.Errorf("p50 %v, want > 0", p50)
	}
}

// Concurrent searches and adds must not race (run with -race).
func TestServerConcurrentAccess(t *testing.T) {
	_, ts, base := newTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%4 == 0 {
				resp := postJSON(t, ts.URL+"/add", addRequest{
					Vectors: clusteredVectors(5, 32, 24, int64(i)),
				})
				resp.Body.Close()
				return
			}
			resp := postJSON(t, ts.URL+"/search", searchRequest{
				Queries: [][]float32{base[i]}, W: 8, K: 5,
			})
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
}

// The readiness contract: a booting process serves the gate while it
// recovers, so /healthz says alive, /readyz says not-ready, and traffic
// is refused with a Retry-After — and only after recovery (snapshot
// load + WAL replay) completes and the real handler is swapped in does
// /readyz flip to 200.
func TestReadyzFlipsAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, buildDurableBase(t), StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	batch := randVectors(3, 40, 8)
	if err := st.LogAdd(st.Index().NextID(), batch); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Index().Add(batch); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	gate := NewReadinessGate()
	ts := httptest.NewServer(gate)
	defer ts.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// Before recovery: alive but not ready, traffic refused politely.
	if got := get("/healthz").StatusCode; got != http.StatusOK {
		t.Fatalf("/healthz before recovery: %d", got)
	}
	if got := get("/readyz").StatusCode; got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before recovery: %d, want 503", got)
	}
	resp := postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{make([]float32, 8)}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/search before recovery: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("pre-ready 503 carries no Retry-After")
	}
	if gate.IsReady() {
		t.Fatal("gate ready before Ready()")
	}

	// Recovery: snapshot load + WAL replay, then swap the handler in.
	re, err := OpenStore(dir, StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.ReplayedRecords() != 1 {
		t.Fatalf("replayed %d records, want 1", re.ReplayedRecords())
	}
	srv := NewServer(re.Index())
	srv.Store = re
	gate.Ready(srv.Handler())

	if got := get("/readyz").StatusCode; got != http.StatusOK {
		t.Fatalf("/readyz after recovery: %d, want 200", got)
	}
	resp = postJSON(t, ts.URL+"/search", searchRequest{Queries: [][]float32{make([]float32, 8)}, K: 3})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/search after recovery: %d", resp.StatusCode)
	}
}

// The replication endpoints: /admin/state hands out bytes + position a
// follower can bootstrap from, /admin/wal/tail catches it up from a
// sequence number, and a snapshot trim turns stale positions into 410s.
func TestServerAdminStateAndWALTail(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, buildDurableBase(t), StoreOptions{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st.Index())
	srv.Store = st
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer st.Close()

	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/add", map[string]any{"vectors": randVectors(int64(10+i), 5, 8)})
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("add %d: %d", i, resp.StatusCode)
		}
	}

	// Bootstrap download: position headers + loadable, bit-exact bytes.
	resp, err := http.Get(ts.URL + "/admin/state")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/admin/state: %d %v", resp.StatusCode, err)
	}
	epoch := resp.Header.Get("X-Anna-Epoch")
	if resp.Header.Get("X-Anna-Seq") != "2" {
		t.Fatalf("X-Anna-Seq = %q, want 2", resp.Header.Get("X-Anna-Seq"))
	}
	got, err := LoadIndex(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("state bytes do not load: %v", err)
	}
	expectSameResults(t, st.Index(), got)
	var want bytes.Buffer
	if err := st.Index().Save(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), body) {
		t.Fatal("/admin/state bytes differ from Index.Save — bootstrap not bit-exact")
	}

	// Tail from 0: both records, decodable as wal frames.
	tail := func(epoch, from string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/admin/wal/tail?epoch=" + epoch + "&from=" + from)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}
	resp2, frames := tail(epoch, "0")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("tail from 0: %d", resp2.StatusCode)
	}
	n, err := wal.ReplayFrom(bytes.NewReader(frames), 0, func(seq uint64, payload []byte) error {
		if _, _, err := decodeAddRecord(payload); err != nil {
			return err
		}
		return nil
	})
	if err != nil || n != 2 {
		t.Fatalf("tail frames: n=%d err=%v", n, err)
	}
	// Caught up: empty 200.
	resp2, frames = tail(epoch, "2")
	if resp2.StatusCode != http.StatusOK || len(frames) != 0 {
		t.Fatalf("caught-up tail: %d, %d bytes", resp2.StatusCode, len(frames))
	}
	// Past the end / wrong epoch: 410 — re-bootstrap.
	if resp2, _ = tail(epoch, "3"); resp2.StatusCode != http.StatusGone {
		t.Fatalf("past-end tail: %d, want 410", resp2.StatusCode)
	}
	if resp2, _ = tail("1", "0"); resp2.StatusCode != http.StatusGone {
		t.Fatalf("stale-epoch tail: %d, want 410", resp2.StatusCode)
	}
	// A snapshot trims the WAL: the old epoch is gone for every seq.
	sresp := postJSON(t, ts.URL+"/admin/snapshot", struct{}{})
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", sresp.StatusCode)
	}
	if resp2, _ = tail(epoch, "0"); resp2.StatusCode != http.StatusGone {
		t.Fatalf("post-snapshot tail at old epoch: %d, want 410", resp2.StatusCode)
	}
}
