package anna

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"anna/internal/exact"
	"anna/internal/metrics"
	"anna/internal/recall"
	"anna/internal/topk"
)

// Live recall observability: the paper's whole evaluation is the
// recall-vs-throughput trade-off (recall@k as a function of W), but an
// offline benchmark cannot tell an operator whether quality is silently
// degrading as data is ingested or W is tuned down under load. A
// RecallEstimator turns the offline metric into a live signal: it
// shadow-re-ranks a 1-in-N sample of served queries against exhaustive
// exact search (internal/exact) on a bounded async worker — never on
// the query path — and publishes a rolling recall@k gauge plus a recall
// histogram through the server's /metrics endpoint. The rolling
// estimate also feeds the recall SLO when Server.SLORecall is set: the
// embedded tsdb scrapes it as the "recall" series and the burn-rate
// engine alerts on /alerts when it sinks below the floor (obs.go,
// docs/ARCHITECTURE.md §4k).

// RecallEstimatorOptions configure a RecallEstimator.
type RecallEstimatorOptions struct {
	// SampleEvery shadow-checks 1-in-N served queries (default 100).
	// 1 checks every query — only sensible in tests or tiny corpora.
	SampleEvery int
	// K is the recall@K depth (default 10). Served results beyond K are
	// ignored; queries that returned fewer than K are scored against
	// what they returned.
	K int
	// Window is the number of recent samples the rolling gauge averages
	// (default 512).
	Window int
	// QueueDepth bounds the async queue between the serving path and
	// the shadow worker (default 64). When the worker falls behind,
	// further samples are dropped — the serving path never waits.
	QueueDepth int
	// Workers is the exact-search parallelism of each shadow query
	// (default 1, so the shadow load stays off the serving cores).
	Workers int
}

func (o *RecallEstimatorOptions) withDefaults() RecallEstimatorOptions {
	out := RecallEstimatorOptions{SampleEvery: 100, K: 10, Window: 512, QueueDepth: 64, Workers: 1}
	if o == nil {
		return out
	}
	if o.SampleEvery > 0 {
		out.SampleEvery = o.SampleEvery
	}
	if o.K > 0 {
		out.K = o.K
	}
	if o.Window > 0 {
		out.Window = o.Window
	}
	if o.QueueDepth > 0 {
		out.QueueDepth = o.QueueDepth
	}
	if o.Workers > 0 {
		out.Workers = o.Workers
	}
	return out
}

// RecallEstimator estimates online recall@k by shadow-re-ranking
// sampled served queries against exact search over a reference corpus.
//
// The reference corpus is whatever the caller provides — typically the
// vectors the index was built from. Vectors added to the index after
// that are not in the reference, so heavy post-build ingestion skews
// the estimate; re-create the estimator (or accept the skew) when the
// corpus drifts far.
type RecallEstimator struct {
	ex          *exact.Searcher
	k           int
	sampleEvery int64

	n    atomic.Int64 // sampling counter over offered queries
	jobs chan recallJob
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	sampled, dropped, processed atomic.Uint64

	mu     sync.Mutex
	window []float64
	pos    int
	filled int
	sum    float64

	hist *metrics.Histogram // nil until Register

	// testHookBeforeJob, when set (tests only), runs in the worker
	// before each shadow search — used to stall the worker and prove
	// the serving path never blocks on it.
	testHookBeforeJob func()
}

type recallJob struct {
	q   []float32
	got []topk.Result
}

// NewRecallEstimator builds an estimator over the reference corpus
// (all vectors of equal non-zero dimension) under the given metric, and
// starts its shadow worker. Call Close to stop it.
func NewRecallEstimator(corpus [][]float32, metric Metric, opt *RecallEstimatorOptions) (*RecallEstimator, error) {
	m, err := toMatrix(corpus)
	if err != nil {
		return nil, err
	}
	o := opt.withDefaults()
	if len(corpus) < o.K {
		return nil, fmt.Errorf("anna: reference corpus of %d vectors cannot ground recall@%d", len(corpus), o.K)
	}
	e := &RecallEstimator{
		ex:          &exact.Searcher{Metric: metric.internal(), Base: m, Workers: o.Workers},
		k:           o.K,
		sampleEvery: int64(o.SampleEvery),
		jobs:        make(chan recallJob, o.QueueDepth),
		done:        make(chan struct{}),
		window:      make([]float64, o.Window),
	}
	e.wg.Add(1)
	go e.worker()
	return e, nil
}

// K returns the recall depth the estimator scores at.
func (e *RecallEstimator) K() int { return e.k }

// Offer considers one served query for shadow checking. The fast path
// (not selected by the 1-in-N sample) is a single atomic add with no
// allocation; a selected query is copied and enqueued without blocking,
// and dropped if the shadow worker's queue is full.
func (e *RecallEstimator) Offer(q []float32, got []Result) {
	if int64(e.n.Add(1))%e.sampleEvery != 0 {
		return
	}
	// Sampled: copy both inputs — the caller's buffers go back to the
	// client (and its arena may be reused) while the shadow runs.
	n := len(got)
	if n > e.k {
		n = e.k
	}
	job := recallJob{q: make([]float32, len(q)), got: make([]topk.Result, n)}
	copy(job.q, q)
	for i := 0; i < n; i++ {
		job.got[i] = topk.Result{ID: got[i].ID, Score: got[i].Score}
	}
	select {
	case e.jobs <- job:
		e.sampled.Add(1)
	default:
		e.dropped.Add(1)
	}
}

// OfferBatch applies Offer to every query of a served batch.
func (e *RecallEstimator) OfferBatch(queries [][]float32, results [][]Result) {
	for i := range queries {
		if i < len(results) {
			e.Offer(queries[i], results[i])
		}
	}
}

// worker drains the shadow queue: one exact search per sampled query,
// scored with the paper's recall X@Y metric and folded into the rolling
// window and histogram.
func (e *RecallEstimator) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case job := <-e.jobs:
			if e.testHookBeforeJob != nil {
				e.testHookBeforeJob()
			}
			res := e.ex.Search(job.q, e.k)
			truth := make([]int64, len(res))
			for i, t := range res {
				truth[i] = t.ID
			}
			r := recall.XAtY(e.k, e.k, truth, job.got)
			e.observe(r)
			e.processed.Add(1)
		}
	}
}

func (e *RecallEstimator) observe(r float64) {
	e.mu.Lock()
	if e.filled == len(e.window) {
		e.sum -= e.window[e.pos]
	} else {
		e.filled++
	}
	e.window[e.pos] = r
	e.sum += r
	e.pos = (e.pos + 1) % len(e.window)
	h := e.hist
	e.mu.Unlock()
	if h != nil {
		h.Observe(r)
	}
}

// Rolling returns the mean recall@k over the last Window processed
// samples, or NaN-free 0 when nothing has been processed yet.
func (e *RecallEstimator) Rolling() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.filled == 0 {
		return 0
	}
	return e.sum / float64(e.filled)
}

// Stats returns lifetime counters: queries offered, samples enqueued,
// samples dropped (queue full), and samples fully processed.
func (e *RecallEstimator) Stats() (offered int64, sampled, dropped, processed uint64) {
	return e.n.Load(), e.sampled.Load(), e.dropped.Load(), e.processed.Load()
}

// recallBuckets spans the recall range with tight resolution near 1,
// where production systems operate.
func recallBuckets() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1}
}

// Register publishes the estimator through a metrics registry: the
// rolling recall gauge, the per-sample recall histogram, queue depth,
// and sampled/dropped counters, all labelled with k.
func (e *RecallEstimator) Register(reg *metrics.Registry) {
	kl := metrics.Label{Key: "k", Value: strconv.Itoa(e.k)}
	e.mu.Lock()
	e.hist = reg.Histogram("anna_shadow_recall",
		"Recall@k of individual shadow-checked queries.", recallBuckets(), kl)
	e.mu.Unlock()
	reg.GaugeFunc("anna_shadow_recall_rolling",
		"Rolling mean recall@k over the recent shadow-checked queries.",
		e.Rolling, kl)
	reg.GaugeFunc("anna_shadow_queue_depth",
		"Shadow re-rank jobs waiting for the async worker.",
		func() float64 { return float64(len(e.jobs)) })
	reg.CounterFunc("anna_shadow_sampled_total",
		"Served queries enqueued for shadow recall checking.",
		func() uint64 { return e.sampled.Load() })
	reg.CounterFunc("anna_shadow_dropped_total",
		"Shadow recall samples dropped because the queue was full.",
		func() uint64 { return e.dropped.Load() })
}

// Close stops the shadow worker. Pending queued samples are discarded;
// Offer remains safe to call (samples land in the queue and are never
// processed).
func (e *RecallEstimator) Close() {
	e.once.Do(func() { close(e.done) })
	e.wg.Wait()
}
