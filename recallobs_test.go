package anna

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"anna/internal/metrics"
)

// recallTestCorpus builds a small deterministic corpus.
func recallTestCorpus(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	corpus := make([][]float32, n)
	for i := range corpus {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		corpus[i] = v
	}
	return corpus
}

// waitProcessed polls until every enqueued sample has been scored.
func waitProcessed(t *testing.T, e *RecallEstimator) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, sampled, _, processed := e.Stats()
		if processed == sampled {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow worker stalled: %d processed of %d sampled", processed, sampled)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRecallEstimatorScoring(t *testing.T) {
	corpus := recallTestCorpus(200, 8, 1)
	e, err := NewRecallEstimator(corpus, L2, &RecallEstimatorOptions{SampleEvery: 1, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Perfect answers: serve each query its exact top-k. Recall must be 1.
	for i := 0; i < 10; i++ {
		q := corpus[i*3]
		truth, err := ExactSearch(corpus, L2, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		e.Offer(q, truth)
	}
	waitProcessed(t, e)
	if r := e.Rolling(); r != 1 {
		t.Errorf("perfect answers: rolling recall %v, want 1", r)
	}

	// Garbage answers: IDs that exact search never returns. Recall drops.
	for i := 0; i < 10; i++ {
		got := []Result{{ID: -1}, {ID: -2}, {ID: -3}, {ID: -4}, {ID: -5}}
		e.Offer(corpus[i*3+1], got)
	}
	waitProcessed(t, e)
	if r := e.Rolling(); r != 0.5 {
		t.Errorf("half-garbage window: rolling recall %v, want 0.5", r)
	}
}

func TestRecallEstimatorSampling(t *testing.T) {
	corpus := recallTestCorpus(50, 4, 2)
	e, err := NewRecallEstimator(corpus, L2, &RecallEstimatorOptions{SampleEvery: 10, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	got := []Result{{ID: 0}, {ID: 1}, {ID: 2}}
	for i := 0; i < 100; i++ {
		e.Offer(corpus[0], got)
	}
	offered, sampled, dropped, _ := e.Stats()
	if offered != 100 {
		t.Errorf("offered %d, want 100", offered)
	}
	if sampled+dropped != 10 {
		t.Errorf("sampled %d + dropped %d, want exactly 10 selections", sampled, dropped)
	}
}

// A stalled shadow worker must never make Offer block: samples beyond
// the queue bound are dropped.
func TestRecallEstimatorNonBlocking(t *testing.T) {
	corpus := recallTestCorpus(50, 4, 3)
	e, err := NewRecallEstimator(corpus, L2, &RecallEstimatorOptions{SampleEvery: 1, K: 3, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stall := make(chan struct{})
	e.testHookBeforeJob = func() { <-stall }

	got := []Result{{ID: 0}, {ID: 1}, {ID: 2}}
	start := time.Now()
	for i := 0; i < 100; i++ {
		e.Offer(corpus[0], got)
	}
	elapsed := time.Since(start)
	close(stall)
	if elapsed > time.Second {
		t.Errorf("100 offers against a stalled worker took %v — Offer blocked", elapsed)
	}
	_, sampled, dropped, _ := e.Stats()
	if dropped == 0 {
		t.Errorf("stalled worker with queue depth 1: no drops (sampled %d)", sampled)
	}
	if sampled+dropped != 100 {
		t.Errorf("sampled %d + dropped %d, want 100", sampled, dropped)
	}
}

func TestRecallEstimatorValidation(t *testing.T) {
	if _, err := NewRecallEstimator(recallTestCorpus(5, 4, 4), L2, &RecallEstimatorOptions{K: 10}); err == nil {
		t.Error("corpus smaller than K accepted")
	}
	if _, err := NewRecallEstimator([][]float32{{1, 2}, {1}}, L2, nil); err == nil {
		t.Error("ragged corpus accepted")
	}
}

func TestRecallEstimatorRegister(t *testing.T) {
	corpus := recallTestCorpus(50, 4, 5)
	e, err := NewRecallEstimator(corpus, L2, &RecallEstimatorOptions{SampleEvery: 1, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	reg := metrics.NewRegistry()
	e.Register(reg)

	truth, err := ExactSearch(corpus, L2, corpus[7], 3)
	if err != nil {
		t.Fatal(err)
	}
	e.Offer(corpus[7], truth)
	waitProcessed(t, e)

	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`anna_shadow_recall_rolling{k="3"} 1`,
		`anna_shadow_recall_count{k="3"} 1`,
		"anna_shadow_sampled_total 1",
		"anna_shadow_dropped_total 0",
		"anna_shadow_queue_depth 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// Concurrent offers racing Rolling/Stats readers and Close (run under
// -race in CI via the root-package race job).
func TestRecallEstimatorConcurrent(t *testing.T) {
	corpus := recallTestCorpus(100, 4, 6)
	e, err := NewRecallEstimator(corpus, L2, &RecallEstimatorOptions{SampleEvery: 2, K: 3, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := []Result{{ID: 0}, {ID: 1}, {ID: 2}}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e.Offer(corpus[(w*500+i)%len(corpus)], got)
				if i%64 == 0 {
					e.Rolling()
					e.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	waitProcessed(t, e)
	e.Close()
	// Offer after Close stays safe (the sample is simply never scored).
	e.Offer(corpus[0], got)
	offered, _, _, _ := e.Stats()
	if offered != 4*500+1 {
		t.Errorf("offered %d, want %d", offered, 4*500+1)
	}
}
