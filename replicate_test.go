package anna

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

// leaderForReplication stands up a durable server with a few WAL'd adds.
func leaderForReplication(t *testing.T) (*Store, *Server, *httptest.Server) {
	t.Helper()
	st, err := CreateStore(t.TempDir(), buildDurableBase(t), StoreOptions{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := NewServer(st.Index())
	srv.Store = st
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return st, srv, ts
}

// addViaHTTP pushes one batch through the leader's /add (the WAL'd path).
func addViaHTTP(t *testing.T, url string, seed int64, n int) {
	t.Helper()
	resp := postJSON(t, url+"/add", map[string]any{"vectors": randVectors(seed, n, 8)})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add: %d", resp.StatusCode)
	}
}

// saveBytes is the bit-exactness oracle: byte-deterministic Save means
// equal states produce equal bytes.
func saveBytes(t *testing.T, idx *Index) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := idx.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// A replica bootstraps once, then follows the leader through tail reads
// alone, staying bit-exact at every step.
func TestReplicaBootstrapAndTail(t *testing.T) {
	st, _, ts := leaderForReplication(t)
	addViaHTTP(t, ts.URL, 11, 7)

	r := NewReplica(ts.URL, ReplicaOptions{})
	ctx := context.Background()
	if n, err := r.Sync(ctx); err != nil || n != 0 {
		// The bootstrap bytes already include the pre-sync add; the
		// trailing tail read finds nothing new.
		t.Fatalf("first Sync: n=%d err=%v", n, err)
	}
	if !bytes.Equal(saveBytes(t, st.Index()), saveBytes(t, r.Index())) {
		t.Fatal("replica not bit-exact after bootstrap")
	}

	// Two more leader batches arrive through the cheap path.
	addViaHTTP(t, ts.URL, 12, 5)
	addViaHTTP(t, ts.URL, 13, 3)
	if n, err := r.Sync(ctx); err != nil || n != 2 {
		t.Fatalf("catch-up Sync: n=%d err=%v", n, err)
	}
	if !bytes.Equal(saveBytes(t, st.Index()), saveBytes(t, r.Index())) {
		t.Fatal("replica not bit-exact after tail catch-up")
	}
	boots, tails := r.Stats()
	if boots != 1 || tails != 2 {
		t.Fatalf("bootstraps=%d tailRecords=%d, want 1 and 2", boots, tails)
	}
	if epoch, seq := r.Position(); epoch != st.Epoch() || seq != st.WALRecords() {
		t.Fatalf("position (%d, %d) != leader (%d, %d)", epoch, seq, st.Epoch(), st.WALRecords())
	}
	// An idle Sync is a no-op, not an error.
	if n, err := r.Sync(ctx); err != nil || n != 0 {
		t.Fatalf("idle Sync: n=%d err=%v", n, err)
	}
}

// A leader snapshot trims the WAL and restarts sequence numbers; the
// replica's stale position answers 410 and Sync re-bootstraps on its
// own, landing bit-exact on the new epoch.
func TestReplicaRebootstrapsAfterLeaderSnapshot(t *testing.T) {
	st, _, ts := leaderForReplication(t)
	addViaHTTP(t, ts.URL, 21, 4)

	r := NewReplica(ts.URL, ReplicaOptions{})
	ctx := context.Background()
	if _, err := r.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// Leader checkpoints (old epoch gone), then takes more writes.
	resp := postJSON(t, ts.URL+"/admin/snapshot", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}
	addViaHTTP(t, ts.URL, 22, 6)

	if _, err := r.Sync(ctx); err != nil {
		t.Fatalf("Sync across snapshot: %v", err)
	}
	if !bytes.Equal(saveBytes(t, st.Index()), saveBytes(t, r.Index())) {
		t.Fatal("replica not bit-exact after re-bootstrap")
	}
	boots, _ := r.Stats()
	if boots != 2 {
		t.Fatalf("bootstraps=%d, want 2 (initial + post-snapshot)", boots)
	}
	if epoch, _ := r.Position(); epoch != st.Epoch() {
		t.Fatalf("replica epoch %d != leader epoch %d", epoch, st.Epoch())
	}
}

// The replica's searches agree with the leader's — the end-to-end check
// that bit-exact state means bit-exact answers.
func TestReplicaSearchMatchesLeader(t *testing.T) {
	st, _, ts := leaderForReplication(t)
	addViaHTTP(t, ts.URL, 31, 10)
	r := NewReplica(ts.URL, ReplicaOptions{})
	if _, err := r.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	expectSameResults(t, st.Index(), r.Index())
}
