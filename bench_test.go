package anna

// One benchmark per table/figure of the paper's evaluation, each
// regenerating its experiment at the quick scale (see
// internal/harness.QuickScale and DESIGN.md's per-experiment index).
// `cmd/annabench -scale full` runs the same experiments at reproduction
// scale.

import (
	"io"
	"sync"
	"testing"

	"anna/internal/harness"
)

// benchH is a shared quick-scale harness so dataset and index builds are
// amortised across benchmark iterations (they are training cost, not the
// experiment under measurement).
var (
	benchOnce sync.Once
	benchHarn *harness.Harness
	benchWd   harness.WorkloadDef
	benchWds  []harness.WorkloadDef
	benchCmp  []harness.Compression
)

func benchSetup(b *testing.B) *harness.Harness {
	b.Helper()
	benchOnce.Do(func() {
		benchHarn = harness.New(harness.QuickScale(), io.Discard)
		benchWd, _ = harness.WorkloadByKey("SIFT1B")
		m, _ := harness.WorkloadByKey("SIFT1M")
		benchWds = []harness.WorkloadDef{m, benchWd}
		c, _ := harness.CompressionByName("4:1")
		benchCmp = []harness.Compression{c}
		// Pre-build the cached artifacts outside the timed region.
		for _, wd := range benchWds {
			benchHarn.GroundTruth(wd)
			for _, ks := range []int{16, 256} {
				benchHarn.Index(wd, c, ks)
			}
		}
	})
	return benchHarn
}

// BenchmarkFig8ThroughputRecall regenerates the Figure 8 curves
// (throughput vs recall) for one million- and one billion-scale dataset
// at 4:1 compression.
func BenchmarkFig8ThroughputRecall(b *testing.B) {
	h := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plots := h.RunFig8(benchWds, benchCmp)
		if len(plots) != 2 {
			b.Fatalf("%d plots", len(plots))
		}
	}
}

// BenchmarkFig9Latency regenerates the Figure 9 latency comparison.
func BenchmarkFig9Latency(b *testing.B) {
	h := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := h.RunFig9(benchWds)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig10Energy regenerates the Figure 10 energy-efficiency
// comparison.
func BenchmarkFig10Energy(b *testing.B) {
	h := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := h.RunFig10(benchWds)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable1AreaPower regenerates the Table I breakdown.
func BenchmarkTable1AreaPower(b *testing.B) {
	h := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := h.RunTable1()
		if br.TotalArea <= 0 {
			b.Fatal("no breakdown")
		}
	}
}

// BenchmarkTrafficOptimization regenerates the Section V-B memory
// traffic optimization speedups (simulated baseline vs batched).
func BenchmarkTrafficOptimization(b *testing.B) {
	h := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := h.RunTraffic(benchWds, benchCmp, 8)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkExactFootnotes regenerates the exhaustive-search QPS footnotes
// under the Figure 8 plots.
func BenchmarkExactFootnotes(b *testing.B) {
	h := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := h.RunExact(benchWds)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkRelatedWork regenerates the Section VI comparisons.
func BenchmarkRelatedWork(b *testing.B) {
	h := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := h.RunRelated()
		if len(rows) != 2 {
			b.Fatal("bad rows")
		}
	}
}

// BenchmarkFig7Timeline regenerates the Figure 7 steady-state timeline
// trace.
func BenchmarkFig7Timeline(b *testing.B) {
	h := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spans := h.RunTimeline(benchWd, 4)
		if len(spans) == 0 {
			b.Fatal("no spans")
		}
	}
}

// BenchmarkAblations regenerates the DESIGN.md design-space studies.
func BenchmarkAblations(b *testing.B) {
	h := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := h.RunAblations(benchWd)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkEndToEndSearch measures the public API's software search path
// (build once, search repeatedly) — the library-user view.
func BenchmarkEndToEndSearch(b *testing.B) {
	base := clusteredVectors(20000, 64, 32, 1)
	idx, err := BuildIndex(base, L2, BuildOptions{
		NClusters: 64, M: 16, Ks: 16, TrainIters: 5, MaxTrain: 5000,
	})
	if err != nil {
		b.Fatal(err)
	}
	q := clusteredVectors(1, 64, 32, 2)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(q, 8, 100)
	}
}

// BenchmarkSimulatedSearch measures the accelerator simulator's cost per
// simulated batch (timing-only).
func BenchmarkSimulatedSearch(b *testing.B) {
	base := clusteredVectors(20000, 64, 32, 1)
	idx, err := BuildIndex(base, L2, BuildOptions{
		NClusters: 64, M: 16, Ks: 16, TrainIters: 5, MaxTrain: 5000,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultAcceleratorConfig()
	cfg.TopK = 100
	acc, err := NewAccelerator(idx, cfg)
	if err != nil {
		b.Fatal(err)
	}
	queries := clusteredVectors(32, 64, 32, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.Simulate(queries, SimParams{W: 8, K: 100, TimingOnly: true}); err != nil {
			b.Fatal(err)
		}
	}
}
