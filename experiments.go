package anna

import (
	"fmt"
	"io"

	"anna/internal/harness"
)

// ExperimentScale selects the scaled-workload size for experiment runs.
type ExperimentScale int

const (
	// ScaleQuick is small enough for tests and `go test -bench`.
	ScaleQuick ExperimentScale = iota
	// ScaleFull is the default reproduction scale (minutes per figure).
	ScaleFull
)

func (s ExperimentScale) scale() harness.Scale {
	if s == ScaleFull {
		return harness.FullScale()
	}
	return harness.QuickScale()
}

// Experiments lists the runnable experiment identifiers for
// RunExperiment, each mapping to a table or figure of the paper.
func Experiments() []string {
	return []string{
		"fig8",     // throughput vs recall, all datasets x compressions
		"fig9",     // single-query latency at 4:1
		"fig10",    // normalized energy efficiency at 4:1, W=32
		"table1",   // area and peak power breakdown
		"traffic",  // Section V-B memory traffic optimization speedups
		"exact",    // exhaustive-search QPS footnotes
		"related",  // Section VI related-work comparisons
		"timeline", // Figure 7 steady-state execution timeline
		"ablation", // DESIGN.md design-space studies
		"graph",    // graph-based (HNSW) vs compression-based comparison
		"headline", // the abstract's three claims, paper vs measured
	}
}

// ExperimentRunner executes experiments against one shared harness, so
// datasets, ground truth and trained indexes are built once and reused
// across experiments (fig9 and fig10 reuse fig8's models, exactly as the
// paper's evaluation reuses one trained model per configuration).
type ExperimentRunner struct {
	h *harness.Harness
}

// NewExperimentRunner returns a runner writing reports to out.
func NewExperimentRunner(scale ExperimentScale, out io.Writer) *ExperimentRunner {
	return &ExperimentRunner{h: harness.New(scale.scale(), out)}
}

// RunExperiment regenerates one of the paper's tables or figures,
// writing a textual report to out. workloads filters to the named
// datasets (nil = all; keys: SIFT1M, Deep1M, GloVe1M, SIFT1B, Deep1B,
// TTI1B). For multiple experiments prefer one ExperimentRunner, which
// caches trained models across calls.
func RunExperiment(name string, scale ExperimentScale, workloads []string, out io.Writer) error {
	return NewExperimentRunner(scale, out).Run(name, workloads)
}

// Run executes one experiment by id (see Experiments).
func (r *ExperimentRunner) Run(name string, workloads []string) error {
	h := r.h

	var defs []harness.WorkloadDef
	if workloads != nil {
		for _, key := range workloads {
			wd, err := harness.WorkloadByKey(key)
			if err != nil {
				return err
			}
			defs = append(defs, wd)
		}
	}
	one := func() (harness.WorkloadDef, error) {
		if len(defs) > 0 {
			return defs[0], nil
		}
		return harness.WorkloadByKey("SIFT1B")
	}

	switch name {
	case "fig8":
		h.PrintFig8(h.RunFig8(defs, nil))
	case "fig9":
		h.PrintFig9(h.RunFig9(defs))
	case "fig10":
		h.PrintFig10(h.RunFig10(defs))
	case "table1":
		h.PrintTable1(h.RunTable1())
	case "traffic":
		h.PrintTraffic(h.RunTraffic(defs, nil, 0))
	case "exact":
		h.PrintExact(h.RunExact(defs))
	case "related":
		h.PrintRelated(h.RunRelated())
	case "timeline":
		wd, err := one()
		if err != nil {
			return err
		}
		h.PrintTimeline(h.RunTimeline(wd, 8), 60)
	case "ablation":
		wd, err := one()
		if err != nil {
			return err
		}
		h.PrintAblations(h.RunAblations(wd))
	case "graph":
		// Graph comparison defaults to a million-scale dataset — the
		// regime where HNSW is competitive.
		wd, err := harness.WorkloadByKey("SIFT1M")
		if len(defs) > 0 {
			wd, err = defs[0], nil
		}
		if err != nil {
			return err
		}
		h.PrintGraph(h.RunGraph(wd))
	case "headline":
		h.PrintHeadline(h.RunHeadline(defs))
	default:
		return fmt.Errorf("anna: unknown experiment %q (have %v)", name, Experiments())
	}
	return nil
}
