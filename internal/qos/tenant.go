package qos

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TenantConfig describes one tenant's service class.
type TenantConfig struct {
	// Name identifies the tenant in metrics and logs (defaults to the
	// API key it is registered under).
	Name string
	// Weight is the tenant's weighted-fair share inside its lane
	// (minimum 1): a weight-4 tenant drains four queries from its queue
	// for every one of a weight-1 tenant when both are backlogged.
	Weight int
	// Rate is the sustained token-bucket refill in queries/second;
	// zero or negative means unlimited.
	Rate float64
	// Burst is the bucket capacity in queries (defaults to Rate, with a
	// minimum of 1): the instantaneous excursion allowed above Rate.
	Burst float64
	// Lane is the tenant's priority lane.
	Lane Lane
}

// normalize fills defaults.
func (c TenantConfig) normalize(key string) TenantConfig {
	if c.Name == "" {
		c.Name = key
	}
	if c.Weight < 1 {
		c.Weight = 1
	}
	if c.Burst <= 0 {
		c.Burst = c.Rate
	}
	if c.Burst < 1 {
		c.Burst = 1
	}
	return c
}

// Tenant is one admitted service class with its live token bucket.
type Tenant struct {
	TenantConfig

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// Allow reports whether n queries fit the tenant's quota right now,
// consuming n tokens when they do. Unlimited tenants always pass.
func (t *Tenant) Allow(n int) bool { return t.allowAt(time.Now(), float64(n)) }

func (t *Tenant) allowAt(now time.Time, n float64) bool {
	if t.Rate <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.last.IsZero() {
		t.tokens = t.Burst
	} else if el := now.Sub(t.last).Seconds(); el > 0 {
		t.tokens += el * t.Rate
		if t.tokens > t.Burst {
			t.tokens = t.Burst
		}
	}
	if !now.Before(t.last) {
		t.last = now
	}
	if t.tokens < n {
		return false
	}
	t.tokens -= n
	return true
}

// Tenants maps API keys to tenants. Requests with an unknown (or
// missing) key share one default tenant, so anonymous traffic is
// rate-limited as a single class rather than per key.
type Tenants struct {
	mu    sync.Mutex
	byKey map[string]*Tenant
	def   *Tenant
}

// NewTenants returns a table whose unknown-key traffic is governed by
// def (zero value: unlimited, weight 1, interactive).
func NewTenants(def TenantConfig) *Tenants {
	return &Tenants{
		byKey: map[string]*Tenant{},
		def:   &Tenant{TenantConfig: def.normalize("default")},
	}
}

// Add registers (or replaces) the tenant served under key.
func (ts *Tenants) Add(key string, cfg TenantConfig) *Tenant {
	t := &Tenant{TenantConfig: cfg.normalize(key)}
	ts.mu.Lock()
	ts.byKey[key] = t
	ts.mu.Unlock()
	return t
}

// Resolve returns the tenant serving key (the default tenant for
// unknown or empty keys). It never returns nil.
func (ts *Tenants) Resolve(key string) *Tenant {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t, ok := ts.byKey[key]; ok {
		return t
	}
	return ts.def
}

// ParseTenants builds a table from a compact flag spec:
//
//	key=weight:4,rate:1000,burst:2000,lane:interactive,name:web;key2=lane:bulk
//
// Tenants are separated by ';', fields by ',', each field is
// "name:value". Unknown keys fall back to the zero default tenant
// (unlimited, interactive, weight 1).
func ParseTenants(spec string) (*Tenants, error) {
	ts := NewTenants(TenantConfig{})
	for _, ent := range strings.Split(spec, ";") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		key, fields, ok := strings.Cut(ent, "=")
		if !ok || key == "" {
			return nil, fmt.Errorf("qos: tenant entry %q is not key=field:value,...", ent)
		}
		var cfg TenantConfig
		for _, f := range strings.Split(fields, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			name, val, ok := strings.Cut(f, ":")
			if !ok {
				return nil, fmt.Errorf("qos: tenant %q field %q is not name:value", key, f)
			}
			var err error
			switch name {
			case "name":
				cfg.Name = val
			case "weight":
				cfg.Weight, err = strconv.Atoi(val)
			case "rate":
				cfg.Rate, err = strconv.ParseFloat(val, 64)
			case "burst":
				cfg.Burst, err = strconv.ParseFloat(val, 64)
			case "lane":
				cfg.Lane, err = ParseLane(val)
			default:
				return nil, fmt.Errorf("qos: tenant %q has unknown field %q", key, name)
			}
			if err != nil {
				return nil, fmt.Errorf("qos: tenant %q field %q: %v", key, f, err)
			}
		}
		ts.Add(key, cfg)
	}
	return ts, nil
}
