package qos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoRun returns each query's first component so tests can check the
// fan-out mapping, and records every batch it executed.
type echoRun struct {
	mu      sync.Mutex
	batches [][]float32 // first components per batch, in order
	delay   time.Duration
	err     error
}

func (e *echoRun) run(ctx context.Context, queries [][]float32, w, k int) ([]float32, error) {
	if e.delay > 0 {
		select {
		case <-time.After(e.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if e.err != nil {
		return nil, e.err
	}
	out := make([]float32, len(queries))
	firsts := make([]float32, len(queries))
	for i, q := range queries {
		out[i] = q[0]
		firsts[i] = q[0]
	}
	e.mu.Lock()
	e.batches = append(e.batches, firsts)
	e.mu.Unlock()
	return out, nil
}

func (e *echoRun) batchSizes() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	sizes := make([]int, len(e.batches))
	for i, b := range e.batches {
		sizes[i] = len(b)
	}
	return sizes
}

// Concurrent submissions inside one window coalesce into one batch, and
// every submitter gets its own query's result back.
func TestBatcherCoalesces(t *testing.T) {
	e := &echoRun{}
	b := NewBatcher(e.run, BatcherOptions{Window: 20 * time.Millisecond, MaxBatch: 64})
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	got := make([]float32, n)
	infos := make([]BatchInfo, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], infos[i], errs[i] = b.Submit(context.Background(), "t", Interactive, 1, []float32{float32(i)}, 8, 4)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if got[i] != float32(i) {
			t.Errorf("submit %d got result %v (fan-out misrouted)", i, got[i])
		}
	}
	sizes := e.batchSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != n {
		t.Fatalf("executed %d queries across %v, want %d", total, sizes, n)
	}
	if len(sizes) == n {
		t.Errorf("no coalescing: %d batches for %d concurrent submits", len(sizes), n)
	}
	if infos[0].Size == 0 {
		t.Errorf("BatchInfo.Size not populated: %+v", infos[0])
	}
}

// A full batch flushes before the window expires.
func TestBatcherFlushesEarlyAtMaxBatch(t *testing.T) {
	e := &echoRun{}
	b := NewBatcher(e.run, BatcherOptions{Window: time.Hour, MaxBatch: 4})
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := b.Submit(context.Background(), "t", Interactive, 1, []float32{float32(i)}, 8, 4); err != nil {
				t.Errorf("submit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if el := time.Since(start); el > time.Second {
		t.Fatalf("full batch waited %v despite MaxBatch=4 (window never fired?)", el)
	}
	if sizes := e.batchSizes(); len(sizes) < 1 {
		t.Fatal("no batch executed")
	}
}

// Different (W, K) classes never share a batch.
func TestBatcherClassesSeparate(t *testing.T) {
	e := &echoRun{}
	b := NewBatcher(e.run, BatcherOptions{Window: 10 * time.Millisecond, MaxBatch: 64})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := 8 + i%2 // two classes
			if _, _, err := b.Submit(context.Background(), "t", Interactive, 1, []float32{float32(i)}, w, 4); err != nil {
				t.Errorf("submit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	// 8 queries, 2 classes: every batch must be single-class, which the
	// echo payload encodes as first components of matching parity.
	for _, batch := range e.batches {
		for _, f := range batch {
			if int(f)%2 != int(batch[0])%2 {
				t.Fatalf("mixed-class batch: %v", batch)
			}
		}
	}
}

// A canceled submitter returns immediately; the rest of the batch still
// completes.
func TestBatcherCancellation(t *testing.T) {
	e := &echoRun{delay: 5 * time.Millisecond}
	b := NewBatcher(e.run, BatcherOptions{Window: 10 * time.Millisecond, MaxBatch: 64})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before submitting: the waiter must not hang
	if _, _, err := b.Submit(ctx, "t", Interactive, 1, []float32{1}, 8, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled submit returned %v, want context.Canceled", err)
	}
	// A live submitter in the same class still gets served.
	if got, _, err := b.Submit(context.Background(), "t", Interactive, 1, []float32{2}, 8, 4); err != nil || got != 2 {
		t.Fatalf("live submit after cancel: got %v, %v", got, err)
	}
}

// A run error reaches every member of the batch.
func TestBatcherRunErrorFansOut(t *testing.T) {
	boom := errors.New("boom")
	e := &echoRun{err: boom}
	b := NewBatcher(e.run, BatcherOptions{Window: 5 * time.Millisecond, MaxBatch: 64})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := b.Submit(context.Background(), "t", Interactive, 1, []float32{1}, 8, 4); !errors.Is(err, boom) {
				t.Errorf("got %v, want boom", err)
			}
		}()
	}
	wg.Wait()
}

// The QoS fairness pin: with a bulk backlog far longer than the batch
// size and one batch slot (so excess demand backs up in the batcher,
// as it does at engine saturation), an interactive request rides the
// very next flush instead of waiting behind the backlog.
func TestBatcherInteractiveNotStarvedByBulkFlood(t *testing.T) {
	e := &echoRun{delay: 2 * time.Millisecond}
	b := NewBatcher(e.run, BatcherOptions{Window: 2 * time.Millisecond, MaxBatch: 8, MaxConcurrent: 1})

	// Flood: 96 bulk queries (12 full batches of work). With one batch
	// slot only the first 8 start executing; the rest queue.
	const flood = 96
	var floodWG sync.WaitGroup
	var floodDone atomic.Int32
	for i := 0; i < flood; i++ {
		floodWG.Add(1)
		go func(i int) {
			defer floodWG.Done()
			_, _, err := b.Submit(context.Background(), "bulk", Bulk, 1, []float32{float32(1000 + i)}, 8, 4)
			if err != nil {
				t.Errorf("bulk submit: %v", err)
			}
			floodDone.Add(1)
		}(i)
	}
	// Let the flood back up in the batcher.
	for b.QueueDepth() < flood/2 {
		time.Sleep(100 * time.Microsecond)
	}

	// One interactive request arriving into the backlog.
	start := time.Now()
	got, info, err := b.Submit(context.Background(), "live", Interactive, 1, []float32{7}, 8, 4)
	wait := time.Since(start)
	done := floodDone.Load()
	if err != nil || got != 7 {
		t.Fatalf("interactive submit: got %v, %v", got, err)
	}
	// It must not have drained the whole flood first: most of the bulk
	// backlog must still be waiting when the interactive one completes.
	if done >= flood/2 {
		t.Errorf("interactive request finished behind %d of %d bulk queries", done, flood)
	}
	// And its latency is bounded by a couple of batch rounds, not the
	// backlog length (12 serialized batches x 2ms plus windows).
	if wait > 150*time.Millisecond {
		t.Errorf("interactive latency %v under bulk flood (batch info %+v)", wait, info)
	}
	floodWG.Wait()
}

// Weighted-fair dequeue: with two fully backlogged tenants of weights
// 3 and 1, a full batch holds a 3:1 mix. A warmup batch pins the single
// concurrency slot while both tenant queues fill, so the inspected
// batch is assembled from complete backlogs.
func TestBatcherWeightedFairShare(t *testing.T) {
	release := make(chan struct{})
	var entered atomic.Bool
	var once sync.Once
	e := &echoRun{}
	gate := func(ctx context.Context, queries [][]float32, w, k int) ([]float32, error) {
		once.Do(func() {
			entered.Store(true)
			<-release
		})
		return e.run(ctx, queries, w, k)
	}
	b := NewBatcher(gate, BatcherOptions{Window: time.Hour, MaxBatch: 8, MaxConcurrent: 1})

	var wg sync.WaitGroup
	// Warmup: fill the one slot with a full batch the gate holds open.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Submit(context.Background(), "warmup", Bulk, 1, []float32{float32(200 + i)}, 8, 4)
		}(i)
	}
	for !entered.Load() {
		time.Sleep(100 * time.Microsecond)
	}
	// Both tenants back up fully behind the blocked slot.
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Submit(context.Background(), "heavy", Bulk, 3, []float32{float32(i)}, 8, 4)
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Submit(context.Background(), "light", Bulk, 1, []float32{float32(100 + i)}, 8, 4)
		}(i)
	}
	for b.QueueDepth() < 24 {
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()

	// The first post-warmup batch was assembled with 12 queries queued
	// per tenant: weighted round-robin must give the weight-3 tenant 6
	// of the 8 slots (3+1 per pass, two passes).
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, batch := range e.batches {
		heavy, light := 0, 0
		for _, f := range batch {
			switch {
			case f < 100:
				heavy++
			case f < 200:
				light++
			}
		}
		if heavy == 0 && light == 0 {
			continue // warmup batch
		}
		if len(batch) != 8 || heavy != 6 || light != 2 {
			t.Errorf("first backlogged batch split heavy=%d light=%d (batch %v), want 6/2", heavy, light, batch)
		}
		return
	}
	t.Fatal("no tenant batch executed")
}

func TestBatcherClose(t *testing.T) {
	e := &echoRun{}
	b := NewBatcher(e.run, BatcherOptions{Window: time.Hour, MaxBatch: 64})
	done := make(chan error, 1)
	go func() {
		_, _, err := b.Submit(context.Background(), "t", Interactive, 1, []float32{1}, 8, 4)
		done <- err
	}()
	for b.QueueDepth() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	b.Close()
	if err := <-done; err != nil {
		t.Fatalf("queued submit after Close: %v (want flushed result)", err)
	}
	if _, _, err := b.Submit(context.Background(), "t", Interactive, 1, []float32{1}, 8, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: %v, want ErrClosed", err)
	}
}

// The deadline of the batch context is the latest member deadline, and
// it is only set when every member is bounded.
func TestBatcherDeadlinePropagation(t *testing.T) {
	type seen struct {
		deadline time.Time
		ok       bool
	}
	ch := make(chan seen, 1)
	run := func(ctx context.Context, queries [][]float32, w, k int) ([]float32, error) {
		d, ok := ctx.Deadline()
		ch <- seen{d, ok}
		return make([]float32, len(queries)), nil
	}
	b := NewBatcher(run, BatcherOptions{Window: 5 * time.Millisecond, MaxBatch: 64})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, _, err := b.Submit(ctx, "t", Interactive, 1, []float32{1}, 8, 4); err != nil {
		t.Fatal(err)
	}
	if s := <-ch; !s.ok || time.Until(s.deadline) > time.Minute {
		t.Errorf("bounded batch saw deadline %v ok=%v", s.deadline, s.ok)
	}

	if _, _, err := b.Submit(context.Background(), "t", Interactive, 1, []float32{1}, 8, 4); err != nil {
		t.Fatal(err)
	}
	if s := <-ch; s.ok {
		t.Errorf("unbounded member but batch ctx has deadline %v", s.deadline)
	}
}

func TestParseLane(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Lane
		err  bool
	}{
		{"interactive", Interactive, false},
		{"", Interactive, false},
		{"bulk", Bulk, false},
		{"batch", Bulk, false},
		{"turbo", 0, true},
	} {
		got, err := ParseLane(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseLane(%q) = %v, %v", tc.in, got, err)
		}
	}
	if Interactive.String() != "interactive" || Bulk.String() != "bulk" {
		t.Error("Lane.String mismatch")
	}
}

func ExampleBatcher() {
	run := func(ctx context.Context, queries [][]float32, w, k int) ([]string, error) {
		out := make([]string, len(queries))
		for i := range queries {
			out[i] = fmt.Sprintf("w=%d k=%d q0=%g", w, k, queries[i][0])
		}
		return out, nil
	}
	b := NewBatcher(run, BatcherOptions{Window: time.Millisecond, MaxBatch: 8})
	res, _, _ := b.Submit(context.Background(), "tenant-a", Interactive, 1, []float32{42}, 16, 10)
	fmt.Println(res)
	// Output: w=16 k=10 q0=42
}
