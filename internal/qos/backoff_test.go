package qos

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Delay(i); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	for attempt := 0; attempt < 4; attempt++ {
		nominal := 100 * time.Millisecond << attempt
		lo, hi := nominal/2, nominal+nominal/2
		if hi > time.Second {
			hi = time.Second
		}
		for i := 0; i < 200; i++ {
			d := b.Delay(attempt)
			if d < lo || d > hi {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	for i := 0; i < 20; i++ {
		d := b.Delay(i)
		if d < 25*time.Millisecond || d > 2*time.Second {
			t.Fatalf("zero-value Delay(%d) = %v outside default envelope", i, d)
		}
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		s := RetryAfterSeconds()
		if s < 1 || s > 3 {
			t.Fatalf("RetryAfterSeconds() = %d, want 1..3", s)
		}
		seen[s] = true
	}
	if len(seen) != 3 {
		t.Fatalf("300 draws hit only %v — jitter broken", seen)
	}
}

// Drain must not return while a flush is still executing: the whole
// point is that the engine under the batcher is safe to tear down after.
func TestBatcherDrainWaitsForInflight(t *testing.T) {
	release := make(chan struct{})
	var inflight, done atomic.Int32
	run := func(ctx context.Context, queries [][]float32, w, k int) ([]float32, error) {
		inflight.Add(1)
		<-release
		done.Add(1)
		return make([]float32, len(queries)), nil
	}
	b := NewBatcher(run, BatcherOptions{Window: time.Millisecond, MaxBatch: 4})
	results := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, _, err := b.Submit(context.Background(), "t", Interactive, 1, []float32{1}, 4, 8)
			results <- err
		}()
	}
	// Wait until at least one flush is executing or queued.
	deadline := time.Now().Add(2 * time.Second)
	for inflight.Load() == 0 && b.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan struct{})
	go func() { b.Drain(); close(drained) }()
	select {
	case <-drained:
		t.Fatal("Drain returned while a batch was still blocked in run")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
		t.Fatal("Drain did not return after batches completed")
	}
	for i := 0; i < 3; i++ {
		if err := <-results; err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if done.Load() == 0 {
		t.Fatal("no batch executed")
	}
	if _, _, err := b.Submit(context.Background(), "t", Interactive, 1, []float32{1}, 4, 8); err != ErrClosed {
		t.Fatalf("Submit after Drain: %v, want ErrClosed", err)
	}
}
