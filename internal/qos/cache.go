package qos

import (
	"container/list"
	"sync"
)

// Cache is a result cache for repeated queries: an LRU keyed on a
// caller-built byte key (the serving layer uses the PQ code of the
// quantized query plus the search knobs) with exact-hit semantics —
// each entry retains the full query vector it was stored under, and a
// lookup whose key matches but whose vector differs is a miss, so two
// distinct queries that quantize to the same code can never see each
// other's results.
//
// Staleness is governed by a generation counter: Put records results
// only when they were computed at the cache's current generation, and
// Invalidate (called under the index write lock whenever the corpus
// changes) bumps the generation and clears the cache. A search that
// raced an ingest — computed against the old corpus but stored after
// the invalidation — is therefore rejected instead of poisoning the
// cache with pre-ingest results.
//
// All methods are safe for concurrent use.
type Cache[V any] struct {
	mu                                     sync.Mutex
	cap                                    int
	ll                                     *list.List // front = most recently used
	m                                      map[string]*list.Element
	gen                                    uint64
	hits, misses, evictions, invalidations uint64
}

// centry is one cached (query, value) pair.
type centry[V any] struct {
	key   string
	query []float32
	val   V
}

// NewCache returns a cache holding up to capacity entries.
func NewCache[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		panic("qos: cache capacity must be positive")
	}
	return &Cache[V]{cap: capacity, ll: list.New(), m: map[string]*list.Element{}}
}

// Gen returns the current generation. Callers snapshot it while holding
// the same lock under which their search executes, and pass it to Put.
func (c *Cache[V]) Gen() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Get returns the value stored under key for exactly this query vector.
// The key is taken as []byte so the common miss path does not allocate
// a string.
func (c *Cache[V]) Get(key []byte, query []float32) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[string(key)]; ok { // no alloc: compiler-optimized map lookup
		ent := e.Value.(*centry[V])
		if equalVec(ent.query, query) {
			c.ll.MoveToFront(e)
			c.hits++
			return ent.val, true
		}
	}
	c.misses++
	var zero V
	return zero, false
}

// Put stores val under key for query, provided gen is still the current
// generation (results computed before an invalidation are dropped). The
// query vector is copied; val must be treated as immutable by the
// caller afterwards.
func (c *Cache[V]) Put(key []byte, query []float32, val V, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	if e, ok := c.m[string(key)]; ok {
		// Refresh in place (also resolves a code collision in favour of
		// the most recent query).
		ent := e.Value.(*centry[V])
		ent.query = append(ent.query[:0], query...)
		ent.val = val
		c.ll.MoveToFront(e)
		return
	}
	ks := string(key)
	ent := &centry[V]{key: ks, query: append([]float32(nil), query...), val: val}
	c.m[ks] = c.ll.PushFront(ent)
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*centry[V]).key)
		c.evictions++
	}
}

// Invalidate clears the cache and bumps the generation, so in-flight
// Puts computed against the previous corpus are rejected. Call it under
// the same write lock that mutates the index.
func (c *Cache[V]) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.invalidations++
	c.ll.Init()
	clear(c.m)
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns lifetime hit/miss/eviction/invalidation counts.
func (c *Cache[V]) Stats() (hits, misses, evictions, invalidations uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.invalidations
}

func equalVec(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
