package qos

import (
	"math/rand/v2"
	"time"
)

// Backoff computes jittered exponential retry delays. The zero value is
// usable and gives the serving layer's defaults: 50ms base, 2s cap,
// doubling per attempt, ±50% jitter. It is stateless and safe for
// concurrent use — callers pass the attempt number.
//
// Both the router's retry loop and the server's 429 Retry-After hints
// use this so rejected or failed requests never re-converge on the same
// instant (a synchronized retry wave is how one overload becomes the
// next one).
type Backoff struct {
	// Base is the delay before the first retry (default 50ms).
	Base time.Duration
	// Max caps the delay (default 2s).
	Max time.Duration
	// Factor multiplies the delay per attempt (default 2).
	Factor float64
	// Jitter is the fraction of the delay randomized, in [0, 1]
	// (default 0.5): the returned delay is uniform in
	// [d·(1−Jitter), d·(1+Jitter)], clamped to Max.
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.5
	}
	return b
}

// Delay returns the jittered delay before retry number attempt
// (attempt 0 = first retry).
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		// Uniform in [d·(1−j), d·(1+j)].
		d *= 1 - b.Jitter + 2*b.Jitter*rand.Float64()
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// RetryAfterSeconds picks a small whole-second Retry-After hint (1–3s)
// for 429/503 responses, jittered so rejected clients spread out.
func RetryAfterSeconds() int { return 1 + rand.IntN(3) }
