// Package qos is the traffic-shaping layer of the serving path
// (ROADMAP item 4): a dynamic query batcher that coalesces concurrent
// requests into engine batches, per-tenant admission (token-bucket
// quotas, weighted-fair dequeue, interactive vs. bulk priority lanes),
// and a result cache keyed on quantized queries.
//
// The motivation is the paper's Figure 5: the engine is fastest in
// cluster-major mode because inverted-list loads are amortized across a
// batch of queries, but an HTTP server naturally dispatches a batch of
// one per request. The Batcher restores the batch: concurrent requests
// are held for a bounded coalesce window (flushing early at a maximum
// batch size) and executed as a single engine run, with results fanned
// back to the waiting requests. Execution remains per-query independent
// inside the engine, so coalescing is bit-exact with per-request
// serving.
//
// The package is deliberately engine-agnostic — the Batcher is generic
// over the per-query result type and calls back into a RunFunc — so it
// carries no dependency on the index or engine packages and can be
// exercised hermetically in tests.
package qos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Lane is a scheduling priority class. Interactive requests are always
// dequeued into a batch before Bulk requests, so a bulk/backfill flood
// can delay an interactive query by at most the engine batches already
// in flight — never by the length of the bulk backlog.
type Lane int

const (
	// Interactive is the latency-sensitive lane (the default).
	Interactive Lane = iota
	// Bulk is the throughput lane for backfill/batch traffic; it is
	// served only from batch capacity interactive requests left unused.
	Bulk
)

// String returns "interactive" or "bulk".
func (l Lane) String() string {
	if l == Bulk {
		return "bulk"
	}
	return "interactive"
}

// ParseLane parses "interactive" or "bulk" (batch is accepted as an
// alias for bulk).
func ParseLane(s string) (Lane, error) {
	switch s {
	case "interactive", "":
		return Interactive, nil
	case "bulk", "batch":
		return Bulk, nil
	}
	return 0, fmt.Errorf("qos: unknown lane %q (want interactive or bulk)", s)
}

// RunFunc executes one coalesced batch: queries[i] produces results[i].
// It is called outside the batcher's lock and may run concurrently with
// other flushes. ctx is canceled when every request in the batch has
// abandoned (client disconnects), and carries the latest deadline of
// the batch members when all of them have one.
type RunFunc[R any] func(ctx context.Context, queries [][]float32, w, k int) ([]R, error)

// BatchInfo describes the coalesced batch a request rode in.
type BatchInfo struct {
	// Size is the number of queries in the executed engine batch.
	Size int
	// Wait is the time the request spent coalescing before execution
	// started.
	Wait time.Duration
}

// Observer receives batcher events for metrics. Callbacks must be safe
// for concurrent use; nil fields are skipped.
type Observer struct {
	// Flush is called once per executed batch with its size and the
	// queue depth left behind.
	Flush func(size, remaining int)
	// Wait is called once per coalesced query with its coalesce wait.
	Wait func(d time.Duration)
}

// BatcherOptions configure a Batcher.
type BatcherOptions struct {
	// Window bounds how long a request may be held for coalescing
	// (default 1ms).
	Window time.Duration
	// MaxBatch flushes a forming batch early once it holds this many
	// queries (default 64).
	MaxBatch int
	// MaxConcurrent bounds the number of batches executing at once
	// (0 = unlimited). Bounding it is what gives the priority lanes
	// teeth under overload: excess demand backs up in the batcher's
	// queues — where interactive requests jump ahead of bulk — instead
	// of racing into the engine in arrival order.
	MaxConcurrent int
	// Observer receives flush/wait events for metrics.
	Observer Observer
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("qos: batcher closed")

// outcome is what a flush delivers to one waiting request.
type outcome[R any] struct {
	res  R
	info BatchInfo
	err  error
}

// waiter is one request parked in the batcher.
type waiter[R any] struct {
	ctx   context.Context
	query []float32
	enq   time.Time
	ch    chan outcome[R] // buffered(1): a flush never blocks on delivery
}

// tenantQ is one tenant's FIFO within a lane.
type tenantQ[R any] struct {
	name   string
	weight int
	q      []*waiter[R]
}

// laneQ holds the per-tenant queues of one priority lane and dequeues
// them weighted-fair: a round-robin over tenants that grants each up to
// its weight in queries per pass, so a tenant with weight 4 drains 4x
// faster than a weight-1 tenant but can never lock others out.
type laneQ[R any] struct {
	order []*tenantQ[R] // tenants with queued work, arrival order
	rr    int           // next tenant to serve
	n     int           // total queued waiters in the lane
}

func (l *laneQ[R]) enqueue(tenant string, weight int, w *waiter[R]) {
	if weight < 1 {
		weight = 1
	}
	for _, t := range l.order {
		if t.name == tenant {
			t.weight = weight
			t.q = append(t.q, w)
			l.n++
			return
		}
	}
	l.order = append(l.order, &tenantQ[R]{name: tenant, weight: weight, q: []*waiter[R]{w}})
	l.n++
}

// dequeue appends up to max-len(dst) waiters to dst in weighted
// round-robin order and returns the extended slice.
func (l *laneQ[R]) dequeue(dst []*waiter[R], max int) []*waiter[R] {
	for l.n > 0 && len(dst) < max {
		if l.rr >= len(l.order) {
			l.rr = 0
		}
		t := l.order[l.rr]
		for take := t.weight; take > 0 && len(t.q) > 0 && len(dst) < max; take-- {
			dst = append(dst, t.q[0])
			t.q[0] = nil // release for GC; the backing array is kept
			t.q = t.q[1:]
			l.n--
		}
		if len(t.q) == 0 {
			l.order = append(l.order[:l.rr], l.order[l.rr+1:]...)
			// l.rr now points at the next tenant already.
		} else {
			l.rr++
		}
	}
	return dst
}

// class groups waiters that can share one engine batch: a batch has a
// single (W, K), so requests with different knobs coalesce separately.
type class[R any] struct {
	w, k     int
	lanes    [2]laneQ[R] // [Interactive, Bulk]
	timer    *time.Timer
	timerGen uint64 // invalidates timers whose flush was taken over
}

func (c *class[R]) queued() int { return c.lanes[0].n + c.lanes[1].n }

// Batcher coalesces concurrent single-query submissions into bounded
// engine batches. It is safe for concurrent use.
type Batcher[R any] struct {
	run      RunFunc[R]
	window   time.Duration
	maxBatch int
	maxConc  int
	obs      Observer

	mu      sync.Mutex
	classes map[[2]int]*class[R]
	queuedN int
	running int
	closed  bool
	flushWG sync.WaitGroup // one unit per flush goroutine; Drain waits on it
}

// NewBatcher returns a batcher that executes flushes through run.
func NewBatcher[R any](run RunFunc[R], opt BatcherOptions) *Batcher[R] {
	if run == nil {
		panic("qos: NewBatcher requires a RunFunc")
	}
	if opt.Window <= 0 {
		opt.Window = time.Millisecond
	}
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 64
	}
	return &Batcher[R]{
		run:      run,
		window:   opt.Window,
		maxBatch: opt.MaxBatch,
		maxConc:  opt.MaxConcurrent,
		obs:      opt.Observer,
		classes:  map[[2]int]*class[R]{},
	}
}

// canRun reports whether another batch may start. Caller holds b.mu.
func (b *Batcher[R]) canRun() bool {
	return b.maxConc <= 0 || b.running < b.maxConc
}

// QueueDepth returns the number of queries parked in the batcher (not
// yet handed to a running batch).
func (b *Batcher[R]) QueueDepth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queuedN
}

// Submit parks one query for coalescing and blocks until its batch has
// executed (at most Window plus the engine batch time, sooner when the
// batch fills) or ctx is done. The query slice is copied, so the caller
// may recycle its buffer as soon as Submit returns — even on
// cancellation, when the batch may still execute afterwards.
func (b *Batcher[R]) Submit(ctx context.Context, tenant string, lane Lane, weight int, query []float32, w, k int) (R, BatchInfo, error) {
	var zero R
	wt := &waiter[R]{
		ctx:   ctx,
		query: append([]float32(nil), query...),
		enq:   time.Now(),
		ch:    make(chan outcome[R], 1),
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return zero, BatchInfo{}, ErrClosed
	}
	ck := [2]int{w, k}
	c := b.classes[ck]
	if c == nil {
		c = &class[R]{w: w, k: k}
		b.classes[ck] = c
	}
	li := 0
	if lane == Bulk {
		li = 1
	}
	c.lanes[li].enqueue(tenant, weight, wt)
	b.queuedN++
	if c.queued() >= b.maxBatch && b.canRun() {
		// Flush early: take over any pending timer and run now.
		c.timerGen++
		if c.timer != nil {
			c.timer.Stop()
			c.timer = nil
		}
		batch, remaining := b.assemble(c)
		b.running++
		b.flushWG.Add(1)
		b.mu.Unlock()
		go b.executeAndNext(c, batch, remaining)
	} else {
		// Below the size trigger — or at the concurrency limit, in which
		// case a completing batch will flush the backlog. The timer is
		// still armed so an idle-but-bounded wait holds either way.
		if c.timer == nil {
			b.armTimer(c, b.window)
		}
		b.mu.Unlock()
	}

	select {
	case out := <-wt.ch:
		return out.res, out.info, out.err
	case <-ctx.Done():
		// The batch may still execute this query (its copy lives in the
		// queue); the outcome lands in the buffered channel and is
		// dropped.
		return zero, BatchInfo{}, ctx.Err()
	}
}

// armTimer schedules a flush for c after d. Caller holds b.mu.
func (b *Batcher[R]) armTimer(c *class[R], d time.Duration) {
	c.timerGen++
	gen := c.timerGen
	c.timer = time.AfterFunc(d, func() {
		b.mu.Lock()
		if c.timerGen != gen {
			// A size-triggered flush (or Close) took these waiters.
			b.mu.Unlock()
			return
		}
		c.timer = nil
		if !b.canRun() {
			// At the concurrency limit: leave the waiters queued. Every
			// batch completion rescans the queues, and with the timer now
			// nil the next completion flushes this class immediately.
			b.mu.Unlock()
			return
		}
		batch, remaining := b.assemble(c)
		b.running++
		b.flushWG.Add(1)
		b.mu.Unlock()
		b.executeAndNext(c, batch, remaining)
	})
}

// assemble removes up to maxBatch waiters from c — interactive lane
// first, then bulk, each weighted-fair across tenants — and re-arms an
// immediate flush when a backlog remains. Caller holds b.mu.
func (b *Batcher[R]) assemble(c *class[R]) (batch []*waiter[R], remaining int) {
	n := c.queued()
	if n > b.maxBatch {
		n = b.maxBatch
	}
	batch = make([]*waiter[R], 0, n)
	batch = c.lanes[0].dequeue(batch, b.maxBatch)
	batch = c.lanes[1].dequeue(batch, b.maxBatch)
	b.queuedN -= len(batch)
	remaining = c.queued()
	if remaining > 0 && c.timer == nil {
		// Backlog past MaxBatch: flush again as soon as possible rather
		// than making the leftovers wait another full window.
		b.armTimer(c, 0)
	}
	return batch, remaining
}

// execute runs one assembled batch and fans results back out.
func (b *Batcher[R]) execute(c *class[R], batch []*waiter[R], remaining int) {
	// Skip waiters that gave up while queued; their Submit has already
	// returned ctx.Err().
	live := batch[:0]
	for _, w := range batch {
		if w.ctx.Err() == nil {
			live = append(live, w)
		}
	}
	if len(live) == 0 {
		return
	}
	if b.obs.Flush != nil {
		b.obs.Flush(len(live), remaining)
	}
	queries := make([][]float32, len(live))
	for i, w := range live {
		queries[i] = w.query
	}

	// The batch context outlives any single member: it is canceled only
	// once every member has abandoned, and carries the latest member
	// deadline when every member has one (a member with an earlier
	// deadline times out individually in Submit while the batch
	// finishes for the others).
	bctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var latest time.Time
	allBounded := true
	for _, w := range live {
		if d, ok := w.ctx.Deadline(); ok {
			if d.After(latest) {
				latest = d
			}
		} else {
			allBounded = false
		}
	}
	if allBounded {
		var dcancel context.CancelFunc
		bctx, dcancel = context.WithDeadline(bctx, latest)
		defer dcancel()
	}
	alive := int32(len(live))
	stops := make([]func() bool, len(live))
	for i, w := range live {
		stops[i] = context.AfterFunc(w.ctx, func() {
			if atomic.AddInt32(&alive, -1) == 0 {
				cancel()
			}
		})
	}

	start := time.Now()
	res, err := b.run(bctx, queries, c.w, c.k)
	for _, stop := range stops {
		stop()
	}
	if err == nil && len(res) != len(live) {
		err = fmt.Errorf("qos: batch run returned %d results for %d queries", len(res), len(live))
	}
	for i, w := range live {
		out := outcome[R]{info: BatchInfo{Size: len(live), Wait: start.Sub(w.enq)}}
		if err != nil {
			out.err = err
		} else {
			out.res = res[i]
		}
		if b.obs.Wait != nil {
			b.obs.Wait(out.info.Wait)
		}
		w.ch <- out
	}
}

// executeAndNext runs one batch that holds a concurrency slot, then
// hands the slot to queued work: any class with a full batch waiting,
// or whose window already expired while the batcher was at the limit
// (timer nil but waiters queued), is flushed immediately rather than
// waiting another window. Under-full classes with a live timer keep
// coalescing until it fires.
func (b *Batcher[R]) executeAndNext(c *class[R], batch []*waiter[R], remaining int) {
	defer b.flushWG.Done()
	b.execute(c, batch, remaining)
	b.mu.Lock()
	b.running--
	if !b.closed {
		for _, cc := range b.classes {
			if !b.canRun() {
				break
			}
			if cc.queued() == 0 || (cc.queued() < b.maxBatch && cc.timer != nil) {
				continue
			}
			cc.timerGen++
			if cc.timer != nil {
				cc.timer.Stop()
				cc.timer = nil
			}
			next, rem := b.assemble(cc)
			b.running++
			b.flushWG.Add(1)
			go b.executeAndNext(cc, next, rem)
		}
	}
	b.mu.Unlock()
}

// Close flushes every queued request and fails subsequent Submits with
// ErrClosed. It does not wait for in-flight batches.
func (b *Batcher[R]) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	type flush[R2 any] struct {
		c         *class[R2]
		batch     []*waiter[R2]
		remaining int
	}
	var flushes []flush[R]
	for _, c := range b.classes {
		for c.queued() > 0 {
			batch, remaining := b.assemble(c)
			flushes = append(flushes, flush[R]{c, batch, remaining})
		}
		// Invalidate any timer (pre-existing or re-armed by assemble)
		// now that the queues are drained.
		c.timerGen++
		if c.timer != nil {
			c.timer.Stop()
			c.timer = nil
		}
	}
	b.flushWG.Add(len(flushes))
	b.mu.Unlock()
	for _, f := range flushes {
		go func(f flush[R]) {
			defer b.flushWG.Done()
			b.execute(f.c, f.batch, f.remaining)
		}(f)
	}
}

// Drain closes the batcher (flushing every queued request) and then
// blocks until every in-flight batch — including the flushes Close
// spawned — has executed and delivered its outcomes. After Drain
// returns, no batch goroutine is running and no waiter is parked, so
// the engine underneath can be torn down safely.
func (b *Batcher[R]) Drain() {
	b.Close()
	b.flushWG.Wait()
}
