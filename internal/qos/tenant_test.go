package qos

import (
	"testing"
	"time"
)

func TestTokenBucket(t *testing.T) {
	tn := &Tenant{TenantConfig: TenantConfig{Rate: 10, Burst: 5}.normalize("t")}
	now := time.Unix(1000, 0)

	// First touch fills to burst: 5 pass, the 6th fails.
	for i := 0; i < 5; i++ {
		if !tn.allowAt(now, 1) {
			t.Fatalf("request %d rejected inside burst", i)
		}
	}
	if tn.allowAt(now, 1) {
		t.Fatal("request beyond burst allowed")
	}
	// 100ms later one token (rate 10/s) has refilled.
	now = now.Add(100 * time.Millisecond)
	if !tn.allowAt(now, 1) {
		t.Fatal("refilled token rejected")
	}
	if tn.allowAt(now, 1) {
		t.Fatal("second token allowed after single refill")
	}
	// A long idle period refills only to burst.
	now = now.Add(time.Hour)
	for i := 0; i < 5; i++ {
		if !tn.allowAt(now, 1) {
			t.Fatalf("request %d rejected after long idle", i)
		}
	}
	if tn.allowAt(now, 1) {
		t.Fatal("burst cap not enforced after idle refill")
	}
	// Clock going backwards must not mint tokens.
	if tn.allowAt(now.Add(-time.Minute), 1) {
		t.Fatal("backwards clock minted tokens")
	}
}

func TestTenantUnlimited(t *testing.T) {
	tn := &Tenant{TenantConfig: TenantConfig{}.normalize("t")}
	now := time.Unix(1000, 0)
	for i := 0; i < 10000; i++ {
		if !tn.allowAt(now, 1) {
			t.Fatal("unlimited tenant throttled")
		}
	}
}

func TestTenantsResolveDefault(t *testing.T) {
	ts := NewTenants(TenantConfig{Rate: 2, Burst: 2})
	web := ts.Add("web-key", TenantConfig{Name: "web", Weight: 4})

	if got := ts.Resolve("web-key"); got != web {
		t.Fatal("known key did not resolve to its tenant")
	}
	anon1 := ts.Resolve("")
	anon2 := ts.Resolve("never-registered")
	if anon1 != anon2 {
		t.Fatal("unknown keys must share one default tenant")
	}
	if anon1 == nil || anon1.Name != "default" {
		t.Fatalf("default tenant = %+v", anon1)
	}
	// The shared default bucket rate-limits anonymous traffic as one class.
	now := time.Unix(1000, 0)
	anon1.allowAt(now, 1)
	anon1.allowAt(now, 1)
	if anon2.allowAt(now, 1) {
		t.Fatal("anonymous classes have separate buckets")
	}
}

func TestParseTenants(t *testing.T) {
	ts, err := ParseTenants("web=weight:4,rate:1000,burst:2000,lane:interactive,name:frontend; etl=lane:bulk,weight:2 ;;")
	if err != nil {
		t.Fatal(err)
	}
	web := ts.Resolve("web")
	if web.Name != "frontend" || web.Weight != 4 || web.Rate != 1000 || web.Burst != 2000 || web.Lane != Interactive {
		t.Errorf("web = %+v", web.TenantConfig)
	}
	etl := ts.Resolve("etl")
	if etl.Name != "etl" || etl.Weight != 2 || etl.Lane != Bulk || etl.Rate != 0 {
		t.Errorf("etl = %+v", etl.TenantConfig)
	}

	for _, bad := range []string{
		"noequals",
		"=weight:1",
		"k=weight",
		"k=weight:x",
		"k=lane:warp",
		"k=color:red",
	} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad)
		}
	}
}

func TestNormalizeDefaults(t *testing.T) {
	c := TenantConfig{Rate: 50}.normalize("k")
	if c.Name != "k" || c.Weight != 1 || c.Burst != 50 {
		t.Errorf("normalize = %+v", c)
	}
	c = TenantConfig{Rate: 0.25}.normalize("k")
	if c.Burst != 1 {
		t.Errorf("sub-1 burst not clamped: %+v", c)
	}
}
