package qos

import (
	"fmt"
	"testing"
)

func TestCacheHitMissEvict(t *testing.T) {
	c := NewCache[int](2)
	q1 := []float32{1, 2}
	q2 := []float32{3, 4}
	q3 := []float32{5, 6}
	gen := c.Gen()

	if _, ok := c.Get([]byte("a"), q1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put([]byte("a"), q1, 10, gen)
	c.Put([]byte("b"), q2, 20, gen)
	if v, ok := c.Get([]byte("a"), q1); !ok || v != 10 {
		t.Fatalf("Get a = %v, %v", v, ok)
	}
	// "a" is now MRU; inserting "c" must evict "b".
	c.Put([]byte("c"), q3, 30, gen)
	if _, ok := c.Get([]byte("b"), q2); ok {
		t.Error("LRU entry b survived eviction")
	}
	if v, ok := c.Get([]byte("a"), q1); !ok || v != 10 {
		t.Errorf("MRU entry a evicted: %v, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	hits, misses, evictions, _ := c.Stats()
	if hits != 2 || evictions != 1 || misses < 2 {
		t.Errorf("stats hits=%d misses=%d evictions=%d", hits, misses, evictions)
	}
}

// Two distinct queries sharing a PQ code must never see each other's
// results: the stored vector disambiguates.
func TestCacheExactHitOnly(t *testing.T) {
	c := NewCache[int](4)
	key := []byte{1, 2, 3}
	qa := []float32{1, 0}
	qb := []float32{1.0000001, 0} // same code, different vector
	c.Put(key, qa, 1, c.Gen())
	if _, ok := c.Get(key, qb); ok {
		t.Fatal("colliding query served another query's results")
	}
	if v, ok := c.Get(key, qa); !ok || v != 1 {
		t.Fatalf("original query missed: %v, %v", v, ok)
	}
	// The most recent query wins the slot on Put.
	c.Put(key, qb, 2, c.Gen())
	if _, ok := c.Get(key, qa); ok {
		t.Error("stale collision entry served after refresh")
	}
	if v, ok := c.Get(key, qb); !ok || v != 2 {
		t.Errorf("refreshed entry missed: %v, %v", v, ok)
	}
}

// A Put carrying a pre-invalidation generation is dropped: the search
// it came from was computed against the old corpus.
func TestCacheStaleGenerationRejected(t *testing.T) {
	c := NewCache[int](4)
	q := []float32{1}
	gen := c.Gen()                // search starts here...
	c.Invalidate()                // ...corpus changes...
	c.Put([]byte("k"), q, 1, gen) // ...search finishes and tries to store
	if _, ok := c.Get([]byte("k"), q); ok {
		t.Fatal("stale-generation Put was accepted")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after rejected Put", c.Len())
	}
	// A fresh-generation Put works.
	c.Put([]byte("k"), q, 2, c.Gen())
	if v, ok := c.Get([]byte("k"), q); !ok || v != 2 {
		t.Fatalf("fresh Put missed: %v, %v", v, ok)
	}
	_, _, _, invalidations := c.Stats()
	if invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", invalidations)
	}
}

func TestCacheInvalidateClears(t *testing.T) {
	c := NewCache[int](8)
	for i := 0; i < 5; i++ {
		c.Put([]byte{byte(i)}, []float32{float32(i)}, i, c.Gen())
	}
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Invalidate", c.Len())
	}
	for i := 0; i < 5; i++ {
		if _, ok := c.Get([]byte{byte(i)}, []float32{float32(i)}); ok {
			t.Fatalf("entry %d survived Invalidate", i)
		}
	}
}

func TestCachePutCopiesQuery(t *testing.T) {
	c := NewCache[int](4)
	q := []float32{1, 2}
	c.Put([]byte("k"), q, 1, c.Gen())
	q[0] = 99 // caller reuses its buffer
	if _, ok := c.Get([]byte("k"), q); ok {
		t.Fatal("cache aliased the caller's query buffer")
	}
	if _, ok := c.Get([]byte("k"), []float32{1, 2}); !ok {
		t.Fatal("original vector missed after caller mutation")
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := NewCache[[]int64](1024)
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	q := []float32{1, 2, 3, 4}
	c.Put(key, q, []int64{1, 2, 3}, c.Gen())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(key, q); !ok {
			b.Fatal("miss")
		}
	}
}

func ExampleCache() {
	c := NewCache[string](128)
	gen := c.Gen()
	c.Put([]byte{0x1f, 0x2a}, []float32{0.5, 1.5}, "top-k ids", gen)
	v, ok := c.Get([]byte{0x1f, 0x2a}, []float32{0.5, 1.5})
	fmt.Println(v, ok)
	// Output: top-k ids true
}
