package pq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anna/internal/vecmath"
)

func randMatrix(rows, cols int, seed int64) *vecmath.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vecmath.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func testQuantizer(t *testing.T, m, ks int) *Quantizer {
	t.Helper()
	data := randMatrix(1000, 16, 5)
	return Train(data, Config{M: m, Ks: ks, Iters: 8, Seed: 1})
}

func TestTrainShapes(t *testing.T) {
	q := testQuantizer(t, 4, 16)
	if q.D != 16 || q.M != 4 || q.Ks != 16 || q.Dsub != 4 {
		t.Fatalf("bad shape: %+v", q)
	}
	if q.Codebooks.Rows != 64 || q.Codebooks.Cols != 4 {
		t.Fatalf("codebook shape %dx%d", q.Codebooks.Rows, q.Codebooks.Cols)
	}
}

func TestTrainPanics(t *testing.T) {
	data := randMatrix(100, 16, 1)
	for _, cfg := range []Config{
		{M: 3, Ks: 16},  // M does not divide D
		{M: 4, Ks: 1},   // Ks too small
		{M: 4, Ks: 300}, // Ks too large
		{M: 4, Ks: 128}, // more codewords than training vectors
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			Train(data, cfg)
		}()
	}
}

func TestCodeGeometry(t *testing.T) {
	cases := []struct {
		m, ks                      int
		bits, codeBytes, lutB, cbB int
	}{
		{128, 16, 4, 64, 2 * 16 * 128, 2 * 16 * 16}, // k*=16, M=D: 4:1 for 2B floats
		{8, 256, 8, 8, 2 * 256 * 8, 2 * 256 * 16},   // k*=256
		{4, 16, 4, 2, 2 * 16 * 4, 2 * 16 * 16},
	}
	for _, c := range cases {
		q := &Quantizer{D: 16, M: c.m, Ks: c.ks, Dsub: 16 / min(c.m, 16)}
		if got := q.CodeBits(); got != c.bits {
			t.Errorf("M=%d Ks=%d CodeBits=%d want %d", c.m, c.ks, got, c.bits)
		}
		if got := q.CodeBytes(); got != c.codeBytes {
			t.Errorf("M=%d Ks=%d CodeBytes=%d want %d", c.m, c.ks, got, c.codeBytes)
		}
		if got := q.LUTBytes(); got != c.lutB {
			t.Errorf("M=%d Ks=%d LUTBytes=%d want %d", c.m, c.ks, got, c.lutB)
		}
		if got := q.CodebookBytes(); got != c.cbB {
			t.Errorf("M=%d Ks=%d CodebookBytes=%d want %d", c.m, c.ks, got, c.cbB)
		}
	}
	// Paper example (Section III-B): k*=256, D=128 -> 64KB codebook SRAM;
	// k*=256, M=128 -> 64KB... the evaluation uses 64KB codebook and 32KB LUT.
	q := &Quantizer{D: 128, M: 64, Ks: 256, Dsub: 2}
	if q.CodebookBytes() != 65536 {
		t.Errorf("codebook SRAM = %d, want 65536", q.CodebookBytes())
	}
	if q.LUTBytes() != 32768 {
		t.Errorf("LUT SRAM = %d, want 32768", q.LUTBytes())
	}
}

func TestEncodePicksNearestCodeword(t *testing.T) {
	q := testQuantizer(t, 4, 16)
	v := randMatrix(1, 16, 9).Row(0)
	codes := q.Encode(nil, v)
	if len(codes) != 4 {
		t.Fatalf("len(codes) = %d", len(codes))
	}
	for i := 0; i < q.M; i++ {
		sv := v[i*q.Dsub : (i+1)*q.Dsub]
		chosen := vecmath.L2Sq(sv, q.Codeword(i, int(codes[i])))
		for j := 0; j < q.Ks; j++ {
			if d := vecmath.L2Sq(sv, q.Codeword(i, j)); d < chosen-1e-6 {
				t.Errorf("sub %d: codeword %d closer than chosen %d", i, j, codes[i])
			}
		}
	}
}

func TestDecodeRoundTripOnCodewords(t *testing.T) {
	// A vector that IS a concatenation of codewords must round-trip exactly.
	q := testQuantizer(t, 4, 16)
	v := make([]float32, q.D)
	want := []byte{3, 1, 15, 7}
	for i, c := range want {
		copy(v[i*q.Dsub:(i+1)*q.Dsub], q.Codeword(i, int(c)))
	}
	codes := q.Encode(nil, v)
	dec := make([]float32, q.D)
	q.Decode(dec, codes)
	for i := range v {
		if dec[i] != v[i] {
			t.Fatalf("decode mismatch at %d: %v vs %v", i, dec[i], v[i])
		}
	}
}

func TestQuantizationReducesWithMoreCodewords(t *testing.T) {
	data := randMatrix(2000, 16, 3)
	test := randMatrix(100, 16, 4)
	var errs [2]float64
	for i, ks := range []int{16, 256} {
		q := Train(data, Config{M: 4, Ks: ks, Iters: 10, Seed: 2})
		dec := make([]float32, 16)
		for r := 0; r < test.Rows; r++ {
			codes := q.Encode(nil, test.Row(r))
			q.Decode(dec, codes)
			errs[i] += float64(vecmath.L2Sq(dec, test.Row(r)))
		}
	}
	if errs[1] >= errs[0] {
		t.Errorf("Ks=256 error %v not below Ks=16 error %v", errs[1], errs[0])
	}
}

// The memoization identity (Section II-B): the ADC score computed via the
// LUT must equal the direct similarity between the query and the DECODED
// vector.
func TestADCMatchesDecodedSimilarity(t *testing.T) {
	q := testQuantizer(t, 4, 16)
	rng := rand.New(rand.NewSource(6))
	qv := make([]float32, q.D)
	for i := range qv {
		qv[i] = float32(rng.NormFloat64())
	}
	dec := make([]float32, q.D)

	lutIP := NewLUT(q)
	q.FillIP(lutIP, qv)
	lutL2 := NewLUT(q)
	q.FillL2(lutL2, qv)

	for trial := 0; trial < 50; trial++ {
		v := make([]float32, q.D)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		codes := q.Encode(nil, v)
		q.Decode(dec, codes)

		wantIP := vecmath.Dot(qv, dec)
		if got := lutIP.ADC(codes); math.Abs(float64(got-wantIP)) > 1e-4 {
			t.Fatalf("IP ADC = %v, direct = %v", got, wantIP)
		}
		wantL2 := -vecmath.L2Sq(qv, dec)
		if got := lutL2.ADC(codes); math.Abs(float64(got-wantL2)) > 1e-3 {
			t.Fatalf("L2 ADC = %v, direct = %v", got, wantL2)
		}
	}
}

func TestLUTBiasAddsToScore(t *testing.T) {
	l := &LUT{M: 2, Ks: 2, Values: []float32{1, 2, 3, 4}}
	codes := []byte{1, 0}
	if got := l.ADC(codes); got != 5 {
		t.Fatalf("ADC = %v, want 5", got)
	}
	l.Bias = 10
	if got := l.ADC(codes); got != 15 {
		t.Fatalf("ADC with bias = %v, want 15", got)
	}
}

func TestRoundF16(t *testing.T) {
	l := &LUT{M: 1, Ks: 2, Values: []float32{1.0000001, 2.5}, Bias: 3.0000001}
	l.RoundF16()
	if l.Values[0] != 1 || l.Bias != 3 {
		t.Errorf("RoundF16 left %v bias %v", l.Values, l.Bias)
	}
	if got := l.ADCf16([]byte{1}); got != 5.5 {
		t.Errorf("ADCf16 = %v", got)
	}
}

func TestPackUnpack4bit(t *testing.T) {
	q := &Quantizer{D: 8, M: 8, Ks: 16, Dsub: 1}
	codes := []byte{0, 1, 2, 3, 15, 14, 13, 12}
	packed := q.Pack(nil, codes)
	if len(packed) != 4 {
		t.Fatalf("packed len = %d, want 4", len(packed))
	}
	// Low nibble first.
	if packed[0] != 0x10 || packed[2] != 0xEF {
		t.Errorf("packed = %x", packed)
	}
	out := make([]byte, 8)
	if n := q.Unpack(out, packed); n != 4 {
		t.Errorf("Unpack consumed %d", n)
	}
	for i := range codes {
		if out[i] != codes[i] {
			t.Fatalf("unpack[%d] = %d want %d", i, out[i], codes[i])
		}
	}
}

func TestPackUnpack4bitOddM(t *testing.T) {
	q := &Quantizer{D: 3, M: 3, Ks: 16, Dsub: 1}
	codes := []byte{5, 10, 15}
	packed := q.Pack(nil, codes)
	if len(packed) != 2 || q.CodeBytes() != 2 {
		t.Fatalf("packed len = %d (CodeBytes %d)", len(packed), q.CodeBytes())
	}
	out := make([]byte, 3)
	q.Unpack(out, packed)
	for i := range codes {
		if out[i] != codes[i] {
			t.Fatalf("odd-M unpack[%d] = %d", i, out[i])
		}
	}
}

func TestPackUnpack8bit(t *testing.T) {
	q := &Quantizer{D: 4, M: 4, Ks: 256, Dsub: 1}
	codes := []byte{0, 127, 200, 255}
	packed := q.Pack(nil, codes)
	if len(packed) != 4 {
		t.Fatalf("packed len = %d", len(packed))
	}
	out := make([]byte, 4)
	if n := q.Unpack(out, packed); n != 4 {
		t.Errorf("consumed %d", n)
	}
	for i := range codes {
		if out[i] != codes[i] {
			t.Fatalf("unpack[%d] = %d", i, out[i])
		}
	}
}

// Property: pack/unpack round-trips arbitrary 4-bit code strings.
func TestPackRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		q := &Quantizer{D: len(raw), M: len(raw), Ks: 16, Dsub: 1}
		codes := make([]byte, len(raw))
		for i, b := range raw {
			codes[i] = b & 0x0F
		}
		packed := q.Pack(nil, codes)
		if len(packed) != q.CodeBytes() {
			return false
		}
		out := make([]byte, len(raw))
		q.Unpack(out, packed)
		for i := range codes {
			if out[i] != codes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPackedSlice(t *testing.T) {
	q := &Quantizer{D: 4, M: 4, Ks: 16, Dsub: 1}
	var list []byte
	for v := 0; v < 3; v++ {
		list = q.Pack(list, []byte{byte(v), byte(v), byte(v), byte(v)})
	}
	got := q.PackedSlice(list, 1)
	if len(got) != 2 || got[0] != 0x11 {
		t.Errorf("PackedSlice(1) = %x", got)
	}
}

func BenchmarkADC_M64(b *testing.B) {
	l := &LUT{M: 64, Ks: 256, Values: make([]float32, 64*256)}
	codes := make([]byte, 64)
	for i := range codes {
		codes[i] = byte(i * 4)
	}
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = l.ADC(codes)
	}
	_ = sink
}

func BenchmarkEncode(b *testing.B) {
	data := randMatrix(600, 32, 1)
	q := Train(data, Config{M: 8, Ks: 256, Iters: 4, Seed: 1})
	v := data.Row(0)
	b.ResetTimer()
	buf := make([]byte, 0, 8)
	for i := 0; i < b.N; i++ {
		buf = q.Encode(buf[:0], v)
	}
}

func TestMetricStringAndAt(t *testing.T) {
	if InnerProduct.String() != "ip" || L2.String() != "l2" {
		t.Error("metric names")
	}
	if Metric(9).String() != "Metric(9)" {
		t.Errorf("unknown metric name %q", Metric(9))
	}
	l := &LUT{M: 2, Ks: 2, Values: []float32{1, 2, 3, 4}}
	if l.At(1, 0) != 3 || l.At(0, 1) != 2 {
		t.Errorf("At: %v %v", l.At(1, 0), l.At(0, 1))
	}
}
