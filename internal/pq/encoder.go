package pq

// Batch encoding: the build/ingest hot path. Instead of one
// subtract-square L2 scan per (vector, codeword) pair, the encoder uses
// the identity ‖sv−cw‖² = ‖sv‖² − 2·sv·cw + ‖cw‖² with codeword norms
// precomputed once per quantizer, so nearest-codeword search becomes a
// blocked inner-product scan (vecmath.ArgMinNormMinus2Dot). Vectors are
// processed in blocks with a sub-space-outer loop, keeping each 4–8 KB
// codebook slab resident in L1 across the whole block.
//
// Determinism: every row is encoded independently into its own packed
// region, so EncodeBatch output is byte-identical for any worker count.
// Quantizer.Encode / EncodeAnisotropic remain the scalar reference
// definitions; the batch path agrees with them except on exact
// floating-point ties, where the identity arithmetic may round the other
// way (covered by fixed-seed agreement tests).

import (
	"anna/internal/par"
	"anna/internal/vecmath"
)

// encodeBlockRows is how many vectors one cache block spans: the block's
// code scratch (encodeBlockRows×M bytes) plus one codebook slab stay
// cache-resident while each codebook is streamed over the block.
const encodeBlockRows = 128

// encodeChunkRows is the fixed sharding granularity of EncodeBatch — a
// multiple of encodeBlockRows so chunk boundaries never split a block.
const encodeChunkRows = 256

// Encoder encodes blocks of vectors against one quantizer with reusable
// scratch. Not safe for concurrent use; give each worker its own (the
// codeword-norm table is shared and read-only).
type Encoder struct {
	q     *Quantizer
	norms []float32
	codes []byte // encodeBlockRows×M codeword ids, row-major
	// anisotropic scratch, allocated on first use
	dots    []float32 // residual·codeword per codeword of one sub-space
	dirDots []float32 // direction·codeword, same layout
}

// NewEncoder returns an encoder for q, computing (or reusing) the cached
// codeword-norm table. Codebooks must not change afterwards.
func NewEncoder(q *Quantizer) *Encoder {
	return &Encoder{q: q, norms: q.codewordNorms(), codes: make([]byte, encodeBlockRows*q.M)}
}

// subspace returns a view of codebook i and its norm slice.
func (e *Encoder) subspace(i int) (vecmath.Matrix, []float32) {
	q := e.q
	stride := q.Ks * q.Dsub
	view := vecmath.Matrix{Rows: q.Ks, Cols: q.Dsub, Data: q.Codebooks.Data[i*stride : (i+1)*stride]}
	return view, e.norms[i*q.Ks : (i+1)*q.Ks]
}

// EncodePackedRows encodes rows [lo, hi) of vecs, writing row r's packed
// code at dst[r*CodeBytes : (r+1)*CodeBytes]. dst must therefore be at
// least hi*CodeBytes long; regions of distinct rows never overlap, which
// is what lets EncodeBatch shard rows across workers with no staging
// copies.
func (e *Encoder) EncodePackedRows(dst []byte, vecs *vecmath.Matrix, lo, hi int) {
	if vecs.Cols != e.q.D {
		panic("pq: EncodePackedRows dimension mismatch")
	}
	for b0 := lo; b0 < hi; b0 += encodeBlockRows {
		b1 := b0 + encodeBlockRows
		if b1 > hi {
			b1 = hi
		}
		e.encodeBlock(vecs, b0, b1)
		e.packBlock(dst, b0, b1)
	}
}

// EncodePackedRowsAnisotropic is EncodePackedRows under the anisotropic
// loss: row r of resid is encoded against direction row r of points with
// weight eta (see EncodeAnisotropic). eta <= 1 falls back to the plain
// L2 objective.
func (e *Encoder) EncodePackedRowsAnisotropic(dst []byte, resid, points *vecmath.Matrix, eta float32, lo, hi int) {
	if eta <= 1 {
		e.EncodePackedRows(dst, resid, lo, hi)
		return
	}
	if resid.Cols != e.q.D || points.Cols != e.q.D {
		panic("pq: EncodePackedRowsAnisotropic dimension mismatch")
	}
	if e.dots == nil {
		e.dots = make([]float32, e.q.Ks)
		e.dirDots = make([]float32, e.q.Ks)
	}
	for b0 := lo; b0 < hi; b0 += encodeBlockRows {
		b1 := b0 + encodeBlockRows
		if b1 > hi {
			b1 = hi
		}
		e.encodeBlockAnisotropic(resid, points, eta, b0, b1)
		e.packBlock(dst, b0, b1)
	}
}

// encodeBlock fills e.codes with the codeword ids of rows [b0, b1),
// iterating sub-spaces outermost so each codebook slab is loaded once
// per block instead of once per vector.
func (e *Encoder) encodeBlock(vecs *vecmath.Matrix, b0, b1 int) {
	q := e.q
	for i := 0; i < q.M; i++ {
		cb, ns := e.subspace(i)
		lo, hi := i*q.Dsub, (i+1)*q.Dsub
		r := b0
		for ; r+2 <= b1; r += 2 {
			ba, _, bb, _ := vecmath.ArgMinNormMinus2Dot2(&cb, ns, vecs.Row(r)[lo:hi], vecs.Row(r + 1)[lo:hi])
			e.codes[(r-b0)*q.M+i] = byte(ba)
			e.codes[(r+1-b0)*q.M+i] = byte(bb)
		}
		for ; r < b1; r++ {
			best, _ := vecmath.ArgMinNormMinus2Dot(&cb, ns, vecs.Row(r)[lo:hi])
			e.codes[(r-b0)*q.M+i] = byte(best)
		}
	}
}

// encodeBlockAnisotropic is encodeBlock under the anisotropic loss. Per
// (row, sub-space) it needs codeword dots against both the residual and
// the direction; DotBatch2 produces both from one codebook scan, and the
// loss is evaluated through the same identity with the constant ‖sv‖²
// term dropped:
//
//	loss(j) = ‖cw_j‖² − 2·sv·cw_j + (eta−1)·(sv·dir − cw_j·dir)²/‖dir‖²  (+ ‖sv‖²)
func (e *Encoder) encodeBlockAnisotropic(resid, points *vecmath.Matrix, eta float32, b0, b1 int) {
	q := e.q
	for i := 0; i < q.M; i++ {
		cb, ns := e.subspace(i)
		for r := b0; r < b1; r++ {
			sv := resid.Row(r)[i*q.Dsub : (i+1)*q.Dsub]
			dir := points.Row(r)[i*q.Dsub : (i+1)*q.Dsub]
			dirNormSq := vecmath.NormSq(dir)
			var best int
			if dirNormSq > 0 {
				vecmath.DotBatch2(e.dots, e.dirDots, &cb, sv, dir)
				svDir := vecmath.Dot(sv, dir)
				scale := (eta - 1) / dirNormSq
				bv := float32(0)
				for j := 0; j < q.Ks; j++ {
					p := svDir - e.dirDots[j]
					v := ns[j] - 2*e.dots[j] + scale*p*p
					if j == 0 || v < bv {
						best, bv = j, v
					}
				}
			} else {
				best, _ = vecmath.ArgMinNormMinus2Dot(&cb, ns, sv)
			}
			e.codes[(r-b0)*q.M+i] = byte(best)
		}
	}
}

// packBlock packs the block's codeword ids into their per-row regions of
// dst. The three-index slice pins capacity to CodeBytes, so Pack's
// appends land in place without growing.
func (e *Encoder) packBlock(dst []byte, b0, b1 int) {
	q := e.q
	cb := q.CodeBytes()
	for r := b0; r < b1; r++ {
		off := r * cb
		q.Pack(dst[off:off:off+cb], e.codes[(r-b0)*q.M:(r-b0+1)*q.M])
	}
}

// EncodeBatch encodes every row of vecs into dst, which must be exactly
// vecs.Rows*q.CodeBytes() bytes (row r's packed code lands at
// r*CodeBytes). Rows are sharded over workers (0 = GOMAXPROCS) in fixed
// chunks; output bytes are identical for any worker count.
func EncodeBatch(dst []byte, q *Quantizer, vecs *vecmath.Matrix, workers int) {
	if len(dst) != vecs.Rows*q.CodeBytes() {
		panic("pq: EncodeBatch destination size mismatch")
	}
	encs := make([]*Encoder, par.Workers(workers))
	par.Run(vecs.Rows, encodeChunkRows, workers, func(w, lo, hi int) {
		if encs[w] == nil {
			encs[w] = NewEncoder(q)
		}
		encs[w].EncodePackedRows(dst, vecs, lo, hi)
	})
}

// EncodeBatchAnisotropic is EncodeBatch under the anisotropic loss: row
// r of resid is encoded against direction row r of points (see
// EncodeAnisotropic). eta <= 1 reduces to EncodeBatch.
func EncodeBatchAnisotropic(dst []byte, q *Quantizer, resid, points *vecmath.Matrix, eta float32, workers int) {
	if eta <= 1 {
		EncodeBatch(dst, q, resid, workers)
		return
	}
	if len(dst) != resid.Rows*q.CodeBytes() {
		panic("pq: EncodeBatchAnisotropic destination size mismatch")
	}
	if points.Rows != resid.Rows {
		panic("pq: EncodeBatchAnisotropic row count mismatch")
	}
	encs := make([]*Encoder, par.Workers(workers))
	par.Run(resid.Rows, encodeChunkRows, workers, func(w, lo, hi int) {
		if encs[w] == nil {
			encs[w] = NewEncoder(q)
		}
		encs[w].EncodePackedRowsAnisotropic(dst, resid, points, eta, lo, hi)
	})
}
