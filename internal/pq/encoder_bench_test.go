package pq

// Encode-path benchmarks recorded into BENCH_build.json by
// `cmd/benchjson -suite build`. The workload packs 2000 D=32 vectors
// through an M=8/Ks=256 quantizer — the per-vector work of BenchmarkAdd
// without assignment, so encoder changes show up undiluted.

import (
	"testing"

	"anna/internal/vecmath"
)

func benchEncodeSetup(b *testing.B) (*Quantizer, *vecmath.Matrix) {
	b.Helper()
	data := randMatrix(2000, 32, 1)
	q := Train(data, Config{M: 8, Ks: 256, Iters: 6, Seed: 1})
	return q, data
}

// BenchmarkEncodeBatch measures batch-encoding the whole matrix into
// packed codes at Workers=1, so any win over BenchmarkEncodePerVector is
// from the norms-identity blocked kernel alone, not parallelism. (The
// recorded BENCH_build.json "before" figure is the per-vector loop
// below on the identical workload.)
func BenchmarkEncodeBatch(b *testing.B) {
	q, data := benchEncodeSetup(b)
	dst := make([]byte, data.Rows*q.CodeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeBatch(dst, q, data, 1)
	}
}

// BenchmarkEncodePerVector is the scalar reference path (one
// Quantizer.Encode + Pack per row) on the same workload.
func BenchmarkEncodePerVector(b *testing.B) {
	q, data := benchEncodeSetup(b)
	dst := make([]byte, 0, data.Rows*q.CodeBytes())
	codes := make([]byte, 0, q.M)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		for r := 0; r < data.Rows; r++ {
			codes = q.Encode(codes[:0], data.Row(r))
			dst = q.Pack(dst, codes)
		}
	}
}
