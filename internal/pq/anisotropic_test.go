package pq

import (
	"math/rand"
	"testing"

	"anna/internal/vecmath"
)

func TestAnisotropicEtaOneEqualsPlain(t *testing.T) {
	q := testQuantizer(t, 4, 16)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		v := make([]float32, q.D)
		dir := make([]float32, q.D)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
			dir[i] = float32(rng.NormFloat64())
		}
		plain := q.Encode(nil, v)
		an := q.EncodeAnisotropic(nil, v, dir, 1)
		for i := range plain {
			if plain[i] != an[i] {
				t.Fatalf("eta=1 differs from plain at sub %d", i)
			}
		}
		an0 := q.EncodeAnisotropic(nil, v, dir, 0)
		for i := range plain {
			if plain[i] != an0[i] {
				t.Fatalf("eta=0 differs from plain at sub %d", i)
			}
		}
	}
}

func TestAnisotropicChangesAssignments(t *testing.T) {
	q := testQuantizer(t, 4, 16)
	rng := rand.New(rand.NewSource(9))
	changed := 0
	for trial := 0; trial < 200; trial++ {
		v := make([]float32, q.D)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		plain := q.Encode(nil, v)
		an := q.EncodeAnisotropic(nil, v, v, 8)
		for i := range plain {
			if plain[i] != an[i] {
				changed++
				break
			}
		}
	}
	if changed == 0 {
		t.Error("eta=8 never changed any assignment — objective not applied")
	}
}

// The anisotropic objective must reduce the PARALLEL error component it
// penalises, relative to plain encoding, in aggregate.
func TestAnisotropicReducesParallelError(t *testing.T) {
	q := testQuantizer(t, 4, 16)
	rng := rand.New(rand.NewSource(10))
	dec := make([]float32, q.D)
	r := make([]float32, q.D)
	var plainPar, anPar float64
	for trial := 0; trial < 300; trial++ {
		v := make([]float32, q.D)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		parComponent := func(codes []byte) float64 {
			q.Decode(dec, codes)
			vecmath.Sub(r, v, dec)
			// Sum of per-sub parallel components (the surrogate loss).
			var sum float64
			for i := 0; i < q.M; i++ {
				sv := v[i*q.Dsub : (i+1)*q.Dsub]
				rv := r[i*q.Dsub : (i+1)*q.Dsub]
				ns := float64(vecmath.NormSq(sv))
				if ns == 0 {
					continue
				}
				par := float64(vecmath.Dot(rv, sv))
				sum += par * par / ns
			}
			return sum
		}
		plainPar += parComponent(q.Encode(nil, v))
		anPar += parComponent(q.EncodeAnisotropic(nil, v, v, 6))
	}
	if anPar >= plainPar {
		t.Errorf("anisotropic parallel error %v not below plain %v", anPar, plainPar)
	}
}

func TestAnisotropicPanicsOnDimMismatch(t *testing.T) {
	q := testQuantizer(t, 4, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.EncodeAnisotropic(nil, make([]float32, q.D), make([]float32, q.D-1), 4)
}

func TestAnisotropicZeroDirection(t *testing.T) {
	// A zero direction sub-vector degrades gracefully to the plain loss.
	q := testQuantizer(t, 4, 16)
	v := make([]float32, q.D)
	for i := range v {
		v[i] = float32(i%5) * 0.2
	}
	dir := make([]float32, q.D) // all zeros
	plain := q.Encode(nil, v)
	an := q.EncodeAnisotropic(nil, v, dir, 4)
	for i := range plain {
		if plain[i] != an[i] {
			t.Fatalf("zero direction differs from plain at %d", i)
		}
	}
}
