package pq

import (
	"fmt"
	"math/rand"
	"testing"

	"anna/internal/f16"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// fakeQuantizer builds an untrained quantizer with random codebooks —
// kernel tests only need a consistent layout, not a good one.
func fakeQuantizer(m, dsub, ks int, rng *rand.Rand) *Quantizer {
	q := &Quantizer{
		D: m * dsub, M: m, Ks: ks, Dsub: dsub,
		Codebooks: vecmath.NewMatrix(m*ks, dsub),
	}
	for i := range q.Codebooks.Data {
		q.Codebooks.Data[i] = rng.Float32()*2 - 1
	}
	return q
}

// packRandomList encodes n random code vectors and returns (ids, packed).
func packRandomList(q *Quantizer, n int, rng *rand.Rand) ([]int64, []byte) {
	ids := make([]int64, n)
	var packed []byte
	codes := make([]byte, q.M)
	for i := range ids {
		ids[i] = int64(1000 + i)
		for j := range codes {
			codes[j] = byte(rng.Intn(q.Ks))
		}
		packed = q.Pack(packed, codes)
	}
	return ids, packed
}

// TestScanADCBitExact checks the fused kernel against the reference
// Unpack+ADC+Push loop across code widths (including odd M, which
// exercises the nibble tail) and both rounding modes.
func TestScanADCBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, ks := range []int{16, 256} {
		for _, m := range []int{7, 8, 64} {
			for _, hw := range []bool{false, true} {
				t.Run(fmt.Sprintf("Ks%d_M%d_hw%v", ks, m, hw), func(t *testing.T) {
					q := fakeQuantizer(m, 4, ks, rng)
					ids, packed := packRandomList(q, 300, rng)
					l := NewLUT(q)
					for i := range l.Values {
						l.Values[i] = rng.Float32()*2 - 1
					}
					l.Bias = rng.Float32()

					fused := topk.NewSelector(10)
					l.ScanADC(fused, ids, packed, q.CodeBytes(), q.CodeBits() == 4, hw)

					ref := topk.NewSelector(10)
					codeBuf := make([]byte, q.M)
					cb := q.CodeBytes()
					for i, id := range ids {
						q.Unpack(codeBuf, packed[i*cb:])
						s := l.ADC(codeBuf)
						if hw {
							s = f16.Round(s)
						}
						ref.Push(id, s)
					}

					a, b := fused.Results(), ref.Results()
					if len(a) != len(b) {
						t.Fatalf("result counts %d vs %d", len(a), len(b))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("rank %d: fused %+v ref %+v", i, a[i], b[i])
						}
					}
				})
			}
		}
	}
}

// TestADCPackedBitExact checks the single-vector packed kernel used by
// the tombstone-filtered scan path.
func TestADCPackedBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, ks := range []int{16, 256} {
		for _, m := range []int{7, 8, 32} {
			q := fakeQuantizer(m, 2, ks, rng)
			ids, packed := packRandomList(q, 50, rng)
			l := NewLUT(q)
			for i := range l.Values {
				l.Values[i] = rng.Float32()
			}
			l.Bias = -0.5
			codeBuf := make([]byte, q.M)
			cb := q.CodeBytes()
			nibble := q.CodeBits() == 4
			for i := range ids {
				q.Unpack(codeBuf, packed[i*cb:])
				want := l.ADC(codeBuf)
				got := l.ADCPacked(packed[i*cb:], nibble)
				if got != want {
					t.Fatalf("Ks=%d M=%d vec %d: ADCPacked %v, ADC %v", ks, m, i, got, want)
				}
			}
		}
	}
}

// TestScanADCThresholdGate verifies the pruning invariant directly at the
// kernel level: a gated scan into a k-selector returns exactly the top-k
// of an ungated scan that retains every score.
func TestScanADCThresholdGate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := fakeQuantizer(16, 4, 16, rng)
	ids, packed := packRandomList(q, 500, rng)
	l := NewLUT(q)
	for i := range l.Values {
		l.Values[i] = rng.Float32()*4 - 2
	}
	for _, k := range []int{1, 7, 100, 500, 600} {
		gated := topk.NewSelector(k)
		l.ScanADC(gated, ids, packed, q.CodeBytes(), true, false)
		all := topk.NewSelector(len(ids))
		l.ScanADC(all, ids, packed, q.CodeBytes(), true, false)
		want := all.Results()
		if k < len(want) {
			want = want[:k]
		}
		got := gated.Results()
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d rank %d: %+v vs %+v", k, i, got[i], want[i])
			}
		}
	}
}

func BenchmarkScanADC8(b *testing.B) { benchScanADC(b, 256, 64) }
func BenchmarkScanADC4(b *testing.B) { benchScanADC(b, 16, 64) }

func benchScanADC(b *testing.B, ks, m int) {
	rng := rand.New(rand.NewSource(1))
	q := fakeQuantizer(m, 2, ks, rng)
	ids, packed := packRandomList(q, 1000, rng)
	l := NewLUT(q)
	for i := range l.Values {
		l.Values[i] = rng.Float32()
	}
	sel := topk.NewSelector(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.ScanADC(sel, ids, packed, q.CodeBytes(), q.CodeBits() == 4, false)
	}
}
