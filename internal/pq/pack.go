package pq

// Code packing: the inverted lists store one encoded vector as
// M*log2(Ks)/8 bytes. For Ks=256 each identifier is one byte; for Ks=16
// two identifiers share a byte (low nibble first — the layout the EFM
// unpacker hardware shifts apart). Other Ks values are stored one byte
// per identifier for simplicity; ANNA itself only supports 16 and 256.

// Pack appends the packed representation of codes (one identifier per
// sub-space, each < Ks) to dst and returns the extended slice.
func (q *Quantizer) Pack(dst []byte, codes []byte) []byte {
	if len(codes) != q.M {
		panic("pq: Pack code length mismatch")
	}
	if q.CodeBits() == 4 {
		for i := 0; i < len(codes); i += 2 {
			b := codes[i] & 0x0F
			if i+1 < len(codes) {
				b |= (codes[i+1] & 0x0F) << 4
			}
			dst = append(dst, b)
		}
		return dst
	}
	return append(dst, codes...)
}

// Unpack expands one packed vector from src into dst (length M), the
// software equivalent of the EFM unpacker hardware. It returns the number
// of bytes consumed.
func (q *Quantizer) Unpack(dst []byte, src []byte) int {
	if len(dst) != q.M {
		panic("pq: Unpack destination length mismatch")
	}
	if q.CodeBits() == 4 {
		n := (q.M + 1) / 2
		for i := 0; i < q.M; i++ {
			b := src[i/2]
			if i%2 == 0 {
				dst[i] = b & 0x0F
			} else {
				dst[i] = b >> 4
			}
		}
		return n
	}
	copy(dst, src[:q.M])
	return q.M
}

// PackedSlice returns the packed bytes of vector index idx within a
// contiguous packed list.
func (q *Quantizer) PackedSlice(list []byte, idx int) []byte {
	cb := q.CodeBytes()
	return list[idx*cb : (idx+1)*cb]
}
