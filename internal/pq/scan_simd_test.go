package pq

import (
	"fmt"
	"math/rand"
	"testing"

	"anna/internal/simd"
	"anna/internal/topk"
)

// TestScanADCDispatchBitExact runs the same list scan with SIMD enabled
// and disabled and requires identical selector contents — the dispatch
// seam itself must be invisible. List lengths straddle the 256-row block
// boundary and the 16/8-row kernel granularities; M values cover the
// scalar sub-space tail (M > 64 for 4-bit, M%8 != 0 for 8-bit) and the
// odd-M nibble remainder.
func TestScanADCDispatchBitExact(t *testing.T) {
	if !simd.Available() {
		t.Skip("no assembly on this build; both paths are already scalar")
	}
	rng := rand.New(rand.NewSource(31))
	for _, ks := range []int{16, 256} {
		for _, m := range []int{8, 9, 15, 64, 72} {
			for _, n := range []int{16, 17, 100, 255, 256, 257, 700} {
				for _, hw := range []bool{false, true} {
					t.Run(fmt.Sprintf("Ks%d_M%d_n%d_hw%v", ks, m, n, hw), func(t *testing.T) {
						q := fakeQuantizer(m, 2, ks, rng)
						ids, packed := packRandomList(q, n, rng)
						l := NewLUT(q)
						for i := range l.Values {
							l.Values[i] = rng.Float32()*2 - 1
						}
						l.Bias = rng.Float32()
						nib := q.CodeBits() == 4

						on := topk.NewSelector(10)
						l.ScanADC(on, ids, packed, q.CodeBytes(), nib, hw)

						prev := simd.SetEnabled(false)
						off := topk.NewSelector(10)
						l.ScanADC(off, ids, packed, q.CodeBytes(), nib, hw)
						simd.SetEnabled(prev)

						a, b := on.Results(), off.Results()
						if len(a) != len(b) {
							t.Fatalf("result counts %d vs %d", len(a), len(b))
						}
						for i := range a {
							if a[i] != b[i] {
								t.Fatalf("rank %d: simd %+v scalar %+v", i, a[i], b[i])
							}
						}
					})
				}
			}
		}
	}
}

// TestScanADCZeroAlloc pins that the SIMD block scan keeps the
// allocation-free property of the scalar kernel.
func TestScanADCZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, ks := range []int{16, 256} {
		q := fakeQuantizer(32, 2, ks, rng)
		ids, packed := packRandomList(q, 400, rng)
		l := NewLUT(q)
		sel := topk.NewSelector(10)
		nib := q.CodeBits() == 4
		allocs := testing.AllocsPerRun(10, func() {
			sel.Reset()
			l.ScanADC(sel, ids, packed, q.CodeBytes(), nib, false)
		})
		if allocs != 0 {
			t.Fatalf("ks=%d: ScanADC allocates %v per call", ks, allocs)
		}
	}
}
