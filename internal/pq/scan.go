package pq

// Fused list-scan kernels: ADC over a whole inverted list of PACKED codes
// without unpacking into a scratch buffer. The reference path
// (Unpack + LUT.ADC + Selector.Push per vector) pays a function call, a
// bounds-checked copy and an interface-free but still O(M) div/mod loop
// per scanned vector; the kernels below walk the packed bytes directly
// with specialized inner loops for the two layouts ANNA supports (8-bit
// identifiers for k*=256, packed nibbles for k*=16), 4-way unrolled, and
// only touch the top-k selector when a score beats its current threshold.
//
// Accumulation order is IDENTICAL to LUT.ADC (bias first, then sub-space
// 0..M-1, one sequential float32 add each), so the kernels are bit-exact
// against the reference in both the float32 and the HWF16 (round final
// sum to binary16) modes. The threshold gate only skips Push calls that
// Push itself would reject (score <= heap minimum when full), so selector
// contents are also bit-identical.

import (
	"anna/internal/f16"
	"anna/internal/topk"
)

// ScanADC scans an entire packed list, offering each surviving score to
// sel. ids[i] names the vector whose code starts at packed[i*codeBytes];
// nibble selects the 4-bit layout (two identifiers per byte, low nibble
// first). When hwF16 is true the final sum is rounded to binary16 exactly
// as LUT.ADCf16 does. Results are bit-identical to the reference
// Unpack+ADC+Push loop over the same list.
func (l *LUT) ScanADC(sel *topk.Selector, ids []int64, packed []byte, codeBytes int, nibble, hwF16 bool) {
	vals := l.Values
	bias := l.Bias
	ks := l.Ks
	m := l.M
	thresh, full := sel.Threshold()
	if nibble {
		pairs := m / 2 // bytes holding two identifiers
		for i, id := range ids {
			row := packed[i*codeBytes : i*codeBytes+codeBytes]
			s := bias
			off := 0
			j := 0
			for ; j+2 <= pairs; j += 2 { // 4 sub-spaces per iteration
				b0, b1 := row[j], row[j+1]
				s += vals[off+int(b0&0x0F)]
				off += ks
				s += vals[off+int(b0>>4)]
				off += ks
				s += vals[off+int(b1&0x0F)]
				off += ks
				s += vals[off+int(b1>>4)]
				off += ks
			}
			for ; j < pairs; j++ {
				b := row[j]
				s += vals[off+int(b&0x0F)]
				off += ks
				s += vals[off+int(b>>4)]
				off += ks
			}
			if m&1 == 1 { // odd M: last byte carries one identifier
				s += vals[off+int(row[codeBytes-1]&0x0F)]
			}
			if hwF16 {
				s = f16.Round(s)
			}
			if full && s <= thresh {
				continue
			}
			sel.Push(id, s)
			thresh, full = sel.Threshold()
		}
		return
	}
	for i, id := range ids {
		row := packed[i*codeBytes : i*codeBytes+m]
		s := bias
		off := 0
		j := 0
		for ; j+4 <= m; j += 4 {
			c0, c1, c2, c3 := row[j], row[j+1], row[j+2], row[j+3]
			s += vals[off+int(c0)]
			off += ks
			s += vals[off+int(c1)]
			off += ks
			s += vals[off+int(c2)]
			off += ks
			s += vals[off+int(c3)]
			off += ks
		}
		for ; j < m; j++ {
			s += vals[off+int(row[j])]
			off += ks
		}
		if hwF16 {
			s = f16.Round(s)
		}
		if full && s <= thresh {
			continue
		}
		sel.Push(id, s)
		thresh, full = sel.Threshold()
	}
}

// ADCPacked scores the single packed code starting at packed[0] without
// unpacking, bit-identical to Unpack followed by ADC. It is the kernel
// the tombstone-filtered scan path uses, where the gate over deleted IDs
// precludes the straight-line list walk of ScanADC.
func (l *LUT) ADCPacked(packed []byte, nibble bool) float32 {
	vals := l.Values
	ks := l.Ks
	m := l.M
	s := l.Bias
	if nibble {
		pairs := m / 2
		off := 0
		for j := 0; j < pairs; j++ {
			b := packed[j]
			s += vals[off+int(b&0x0F)]
			off += ks
			s += vals[off+int(b>>4)]
			off += ks
		}
		if m&1 == 1 {
			s += vals[off+int(packed[pairs]&0x0F)]
		}
		return s
	}
	off := 0
	for j := 0; j < m; j++ {
		s += vals[off+int(packed[j])]
		off += ks
	}
	return s
}
