package pq

// Fused list-scan kernels: ADC over a whole inverted list of PACKED codes
// without unpacking into a scratch buffer. The reference path
// (Unpack + LUT.ADC + Selector.Push per vector) pays a function call, a
// bounds-checked copy and an interface-free but still O(M) div/mod loop
// per scanned vector; the kernels below walk the packed bytes directly
// with specialized inner loops for the two layouts ANNA supports (8-bit
// identifiers for k*=256, packed nibbles for k*=16), 4-way unrolled, and
// only touch the top-k selector when a score beats its current threshold.
//
// Accumulation order is IDENTICAL to LUT.ADC (bias first, then sub-space
// 0..M-1, one sequential float32 add each), so the kernels are bit-exact
// against the reference in both the float32 and the HWF16 (round final
// sum to binary16) modes. The threshold gate only skips Push calls that
// Push itself would reject (score <= heap minimum when full), so selector
// contents are also bit-identical.

import (
	"anna/internal/f16"
	"anna/internal/simd"
	"anna/internal/topk"
)

// SIMD block-scan parameters. The assembly kernels in internal/simd
// score whole row blocks into a stack buffer; the Go side then walks the
// buffer in row order applying the f16 rounding, the threshold gate and
// the selector pushes — so selector contents stay bit-identical to the
// scalar path (same scores, same visit order).
const (
	// scanBlockRows is the row-block size: big enough to amortize the
	// kernel call, small enough that sums and the nibble plane tables
	// stay comfortably on the stack and in L1.
	scanBlockRows = 256
	// scanMaxGroups caps how many 4-byte code columns (8 sub-spaces
	// each) the 4-bit kernel covers; sub-spaces beyond 8*scanMaxGroups
	// are added by the scalar tail. 8 groups = 64 sub-spaces, the
	// largest M the paper's configurations use.
	scanMaxGroups = 8
)

// useScanSIMD4 reports whether the packed-nibble list scan should take
// the assembly path. ks must be exactly 16: the plane tables pad
// entries >= ks with zeros, so a corrupt code that would panic the
// bounds-checked scalar path would silently score zero through the
// kernel — requiring the full codeword range removes that divergence
// (4-bit is the paper's k*=16 layout, so this costs nothing in
// practice). m >= 8 guarantees at least one full column group.
func useScanSIMD4(ks, m int) bool {
	return simd.Enabled() && ks == 16 && m >= 8
}

// useScanSIMD8 is the 8-bit gate: ks must be exactly 256 so that every
// possible code byte indexes in bounds (the kernel's LUT stride is
// hardwired to 256 entries and it does no per-element bounds checks).
func useScanSIMD8(ks, m int) bool {
	return simd.Enabled() && ks == 256 && m >= 8
}

// ScanADC scans an entire packed list, offering each surviving score to
// sel. ids[i] names the vector whose code starts at packed[i*codeBytes];
// nibble selects the 4-bit layout (two identifiers per byte, low nibble
// first). When hwF16 is true the final sum is rounded to binary16 exactly
// as LUT.ADCf16 does. Results are bit-identical to the reference
// Unpack+ADC+Push loop over the same list.
func (l *LUT) ScanADC(sel *topk.Selector, ids []int64, packed []byte, codeBytes int, nibble, hwF16 bool) {
	vals := l.Values
	bias := l.Bias
	ks := l.Ks
	m := l.M
	if nibble && useScanSIMD4(ks, m) && len(ids) >= 16 {
		l.scanADC4SIMD(sel, ids, packed, codeBytes, hwF16)
		return
	}
	if !nibble && useScanSIMD8(ks, m) && len(ids) >= 8 {
		l.scanADC8SIMD(sel, ids, packed, codeBytes, hwF16)
		return
	}
	thresh, full := sel.Threshold()
	if nibble {
		pairs := m / 2 // bytes holding two identifiers
		for i, id := range ids {
			row := packed[i*codeBytes : i*codeBytes+codeBytes]
			s := bias
			off := 0
			j := 0
			for ; j+2 <= pairs; j += 2 { // 4 sub-spaces per iteration
				b0, b1 := row[j], row[j+1]
				s += vals[off+int(b0&0x0F)]
				off += ks
				s += vals[off+int(b0>>4)]
				off += ks
				s += vals[off+int(b1&0x0F)]
				off += ks
				s += vals[off+int(b1>>4)]
				off += ks
			}
			for ; j < pairs; j++ {
				b := row[j]
				s += vals[off+int(b&0x0F)]
				off += ks
				s += vals[off+int(b>>4)]
				off += ks
			}
			if m&1 == 1 { // odd M: last byte carries one identifier
				s += vals[off+int(row[codeBytes-1]&0x0F)]
			}
			if hwF16 {
				s = f16.Round(s)
			}
			if full && s <= thresh {
				continue
			}
			sel.Push(id, s)
			thresh, full = sel.Threshold()
		}
		return
	}
	for i, id := range ids {
		row := packed[i*codeBytes : i*codeBytes+m]
		s := bias
		off := 0
		j := 0
		for ; j+4 <= m; j += 4 {
			c0, c1, c2, c3 := row[j], row[j+1], row[j+2], row[j+3]
			s += vals[off+int(c0)]
			off += ks
			s += vals[off+int(c1)]
			off += ks
			s += vals[off+int(c2)]
			off += ks
			s += vals[off+int(c3)]
			off += ks
		}
		for ; j < m; j++ {
			s += vals[off+int(row[j])]
			off += ks
		}
		if hwF16 {
			s = f16.Round(s)
		}
		if full && s <= thresh {
			continue
		}
		sel.Push(id, s)
		thresh, full = sel.Threshold()
	}
}

// scanADC4SIMD is the assembly-backed packed-nibble list scan. Blocks of
// scanBlockRows rows go through the 16-lane PSHUFB kernel, which returns
// bias plus the first 8*groups sub-spaces per row; the scalar tail below
// adds any remaining sub-spaces in the same ascending order, so every
// score is bit-identical to the scalar path. The nibble plane tables and
// the block sums live on the stack — the scan allocates nothing.
func (l *LUT) scanADC4SIMD(sel *topk.Selector, ids []int64, packed []byte, codeBytes int, hwF16 bool) {
	groups := l.M / 8
	if groups > scanMaxGroups {
		groups = scanMaxGroups
	}
	mAsm := 8 * groups
	var planes [scanMaxGroups * 8 * 64]byte
	simd.BuildNibblePlanes(planes[:8*groups*64], l.Values, l.Ks, mAsm)
	hasTail := mAsm < l.M
	var sums [scanBlockRows]float32
	thresh, full := sel.Threshold()
	for start := 0; start < len(ids); start += scanBlockRows {
		n := len(ids) - start
		if n > scanBlockRows {
			n = scanBlockRows
		}
		nAsm := n &^ 15
		block := packed[start*codeBytes:]
		simd.ADCSums4(planes[:], l.Bias, block, codeBytes, groups, sums[:nAsm])
		for r := 0; r < n; r++ {
			row := block[r*codeBytes : r*codeBytes+codeBytes]
			var s float32
			switch {
			case r >= nAsm: // sub-16 block remainder: full scalar row
				s = l.adcTail4(row, 0, l.Bias)
			case hasTail:
				s = l.adcTail4(row, mAsm, sums[r])
			default:
				s = sums[r]
			}
			if hwF16 {
				s = f16.Round(s)
			}
			if full && s <= thresh {
				continue
			}
			sel.Push(ids[start+r], s)
			thresh, full = sel.Threshold()
		}
	}
}

// adcTail4 adds sub-spaces fromSub..M-1 of one packed-nibble row to s in
// ascending sub-space order — the scalar kernel's exact accumulation for
// the range the assembly did not cover. fromSub must be even.
func (l *LUT) adcTail4(row []byte, fromSub int, s float32) float32 {
	vals := l.Values
	ks := l.Ks
	m := l.M
	pairs := m / 2
	off := fromSub * ks
	for j := fromSub / 2; j < pairs; j++ {
		b := row[j]
		s += vals[off+int(b&0x0F)]
		off += ks
		s += vals[off+int(b>>4)]
		off += ks
	}
	if m&1 == 1 {
		s += vals[off+int(row[pairs]&0x0F)]
	}
	return s
}

// scanADC8SIMD is the assembly-backed 8-bit list scan (k*=256 layout).
// Structure mirrors scanADC4SIMD: the gather-free kernel covers the
// first m&^7 sub-spaces of 8-row groups, the scalar tail the rest.
func (l *LUT) scanADC8SIMD(sel *topk.Selector, ids []int64, packed []byte, codeBytes int, hwF16 bool) {
	m8 := l.M &^ 7
	hasTail := m8 < l.M
	var sums [scanBlockRows]float32
	thresh, full := sel.Threshold()
	for start := 0; start < len(ids); start += scanBlockRows {
		n := len(ids) - start
		if n > scanBlockRows {
			n = scanBlockRows
		}
		nAsm := n &^ 7
		block := packed[start*codeBytes:]
		simd.ADCSums8(l.Values, l.Bias, block, codeBytes, m8, sums[:nAsm])
		for r := 0; r < n; r++ {
			row := block[r*codeBytes : r*codeBytes+l.M]
			var s float32
			switch {
			case r >= nAsm:
				s = l.adcTail8(row, 0, l.Bias)
			case hasTail:
				s = l.adcTail8(row, m8, sums[r])
			default:
				s = sums[r]
			}
			if hwF16 {
				s = f16.Round(s)
			}
			if full && s <= thresh {
				continue
			}
			sel.Push(ids[start+r], s)
			thresh, full = sel.Threshold()
		}
	}
}

// adcTail8 adds sub-spaces fromSub..M-1 of one 8-bit row to s in
// ascending sub-space order.
func (l *LUT) adcTail8(row []byte, fromSub int, s float32) float32 {
	vals := l.Values
	ks := l.Ks
	off := fromSub * ks
	for j := fromSub; j < l.M; j++ {
		s += vals[off+int(row[j])]
		off += ks
	}
	return s
}

// ADCPacked scores the single packed code starting at packed[0] without
// unpacking, bit-identical to Unpack followed by ADC. It is the kernel
// the tombstone-filtered scan path uses, where the gate over deleted IDs
// precludes the straight-line list walk of ScanADC.
func (l *LUT) ADCPacked(packed []byte, nibble bool) float32 {
	vals := l.Values
	ks := l.Ks
	m := l.M
	s := l.Bias
	if nibble {
		pairs := m / 2
		off := 0
		for j := 0; j < pairs; j++ {
			b := packed[j]
			s += vals[off+int(b&0x0F)]
			off += ks
			s += vals[off+int(b>>4)]
			off += ks
		}
		if m&1 == 1 {
			s += vals[off+int(packed[pairs]&0x0F)]
		}
		return s
	}
	off := 0
	for j := 0; j < m; j++ {
		s += vals[off+int(packed[j])]
		off += ks
	}
	return s
}
