package pq

import "anna/internal/vecmath"

// Anisotropic (score-aware) encoding, the defining idea of Google ScaNN
// [Guo et al., ICML 2020]: for maximum-inner-product search, quantization
// error PARALLEL to the datapoint hurts retrieval more than perpendicular
// error, because the inner product with a query near the datapoint's
// direction is perturbed by exactly the parallel component. ScaNN
// therefore minimises
//
//	eta · ||r_par||² + ||r_perp||²
//
// with eta > 1, instead of the plain L2 reconstruction error (eta = 1,
// which recovers Faiss's assignment).
//
// The exact loss couples PQ sub-spaces (the parallel direction is the
// full vector's); like ScaNN's practical implementation we use the
// separable per-sub-space surrogate, decomposing each sub-residual
// against the sub-vector's own direction. The paper notes ANNA supports
// ScaNN unchanged because the SEARCH computation is identical — only the
// encoded identifiers differ.

// EncodeAnisotropic quantizes v (typically a residual r(x)) into one
// codeword identifier per sub-space, choosing per sub-space the codeword
// minimising the anisotropic loss with respect to the direction vector
// (typically the original datapoint x). eta <= 1 reduces to plain
// Encode. Results are appended to dst.
func (q *Quantizer) EncodeAnisotropic(dst []byte, v, direction []float32, eta float32) []byte {
	if eta <= 1 {
		return q.Encode(dst, v)
	}
	if len(v) != q.D || len(direction) != q.D {
		panic("pq: EncodeAnisotropic dimension mismatch")
	}
	r := make([]float32, q.Dsub)
	for i := 0; i < q.M; i++ {
		sv := v[i*q.Dsub : (i+1)*q.Dsub]
		dir := direction[i*q.Dsub : (i+1)*q.Dsub]
		dirNormSq := vecmath.NormSq(dir)

		best, bestLoss := 0, float32(0)
		for j := 0; j < q.Ks; j++ {
			vecmath.Sub(r, sv, q.Codeword(i, j))
			loss := vecmath.NormSq(r)
			if dirNormSq > 0 {
				par := vecmath.Dot(r, dir)
				loss += (eta - 1) * par * par / dirNormSq
			}
			if j == 0 || loss < bestLoss {
				best, bestLoss = j, loss
			}
		}
		dst = append(dst, byte(best))
	}
	return dst
}
