// Package pq implements product quantization (Section II-B of the paper):
// codebook training, vector encoding into sub-space codeword identifiers,
// packed code storage (4-bit codes for k*=16, 8-bit for k*=256), lookup
// table (LUT) construction for both inner-product and L2 similarity, and
// LUT-based approximate similarity computation ("asymmetric distance
// computation").
//
// Scores follow the paper's convention throughout: larger means more
// similar, so L2 lookup tables store NEGATED squared distances and the
// ADC sum is directly comparable across metrics.
package pq

import (
	"fmt"
	"sync"

	"anna/internal/f16"
	"anna/internal/kmeans"
	"anna/internal/par"
	"anna/internal/vecmath"
)

// Metric selects the similarity function.
type Metric int

const (
	// InnerProduct scores s(q,x) = q·x (MIPS).
	InnerProduct Metric = iota
	// L2 scores s(q,x) = -||q-x||² (negated so larger is more similar).
	L2
)

func (m Metric) String() string {
	switch m {
	case InnerProduct:
		return "ip"
	case L2:
		return "l2"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Quantizer is a trained product quantizer: M codebooks of Ks codewords,
// each codeword spanning Dsub = D/M dimensions.
type Quantizer struct {
	D    int // full vector dimensionality
	M    int // number of sub-spaces
	Ks   int // codewords per codebook (k* in the paper; 16 or 256 on ANNA)
	Dsub int // D / M

	// Codebooks holds M*Ks rows of Dsub values: codeword j of sub-space i
	// is row i*Ks+j.
	Codebooks *vecmath.Matrix

	// norms caches ‖codeword‖² per codebook row (same i*Ks+j layout),
	// computed lazily by codewordNorms for the batch encoder's
	// dot-product identity. Codebooks must not change once the first
	// encoder reads the cache; every construction path (Train, ivf.Build
	// with its f16 rounding pass, the index loader) finalizes codebooks
	// before any encoding starts.
	normsOnce sync.Once
	norms     []float32
}

// codewordNorms returns the cached squared-norm table, computing it on
// first use. Safe for concurrent callers.
func (q *Quantizer) codewordNorms() []float32 {
	q.normsOnce.Do(func() {
		n := make([]float32, q.M*q.Ks)
		for j := range n {
			n[j] = vecmath.NormSq(q.Codebooks.Row(j))
		}
		q.norms = n
	})
	return q.norms
}

// Config controls quantizer training.
type Config struct {
	M          int   // sub-spaces; must divide D
	Ks         int   // codewords per codebook; must fit the code layout (<= 256)
	Iters      int   // k-means iterations per codebook (default 25)
	Seed       int64 // RNG seed
	Workers    int   // k-means parallelism
	MaxSamples int   // per-codebook training subsample (0 = all)
}

// Train learns codebooks from the rows of data (typically residual
// vectors r(x) = x - c). It panics on invalid configuration.
func Train(data *vecmath.Matrix, cfg Config) *Quantizer {
	if cfg.M <= 0 || data.Cols%cfg.M != 0 {
		panic(fmt.Sprintf("pq: M=%d must divide D=%d", cfg.M, data.Cols))
	}
	if cfg.Ks <= 1 || cfg.Ks > 256 {
		panic(fmt.Sprintf("pq: Ks=%d out of range (2..256)", cfg.Ks))
	}
	if data.Rows < cfg.Ks {
		panic(fmt.Sprintf("pq: %d training vectors < Ks=%d", data.Rows, cfg.Ks))
	}
	q := &Quantizer{
		D:         data.Cols,
		M:         cfg.M,
		Ks:        cfg.Ks,
		Dsub:      data.Cols / cfg.M,
		Codebooks: vecmath.NewMatrix(cfg.M*cfg.Ks, data.Cols/cfg.M),
	}
	// The M sub-space k-means runs are independent (each has its own
	// seed cfg.Seed+i and its own codebook rows), so they parallelize
	// with no effect on the trained result: outer workers split the
	// sub-spaces, leftover workers go to each run's internal passes —
	// which are themselves Workers-invariant — and every split yields
	// codebooks bit-identical to the serial loop.
	workers := par.Workers(cfg.Workers)
	outer := workers
	if outer > cfg.M {
		outer = cfg.M
	}
	inner := workers / outer
	subs := make([]*vecmath.Matrix, outer)
	par.Run(q.M, 1, outer, func(w, lo, _ int) {
		i := lo
		if subs[w] == nil {
			subs[w] = vecmath.NewMatrix(data.Rows, q.Dsub)
		}
		sub := subs[w]
		// Slice out sub-space i of every training vector.
		for r := 0; r < data.Rows; r++ {
			copy(sub.Row(r), data.Row(r)[i*q.Dsub:(i+1)*q.Dsub])
		}
		res := kmeans.Train(sub, kmeans.Config{
			K:          cfg.Ks,
			MaxIters:   cfg.Iters,
			Seed:       cfg.Seed + int64(i),
			Workers:    inner,
			MaxSamples: cfg.MaxSamples,
			// Only the codebook is consumed; skip the full-data
			// assignment pass kmeans would otherwise run per sub-space.
			SkipFinalAssign: true,
		})
		for j := 0; j < cfg.Ks; j++ {
			q.Codebooks.SetRow(i*cfg.Ks+j, res.Centroids.Row(j))
		}
	})
	return q
}

// Codeword returns codeword j of sub-space i (shared storage).
func (q *Quantizer) Codeword(i, j int) []float32 { return q.Codebooks.Row(i*q.Ks + j) }

// CodeBits returns the bits per sub-space identifier (log2 Ks, rounded up).
func (q *Quantizer) CodeBits() int {
	bits := 0
	for 1<<bits < q.Ks {
		bits++
	}
	return bits
}

// CodeBytes returns the packed size of one encoded vector:
// M*log2(Ks)/8 bytes (Section II-B).
func (q *Quantizer) CodeBytes() int { return (q.M*q.CodeBits() + 7) / 8 }

// CodebookBytes returns the on-chip storage for all codebooks at 2 bytes
// per element: 2*Ks*D bytes (Section III-B SRAM sizing).
func (q *Quantizer) CodebookBytes() int { return 2 * q.Ks * q.D }

// LUTBytes returns the storage of one full set of M lookup tables at
// 2 bytes per entry: 2*Ks*M bytes (Section III-B SRAM sizing).
func (q *Quantizer) LUTBytes() int { return 2 * q.Ks * q.M }

// Encode quantizes v into one codeword identifier per sub-space, appending
// to dst and returning the extended slice. Each identifier is the codeword
// minimising the squared L2 distance to the sub-vector (the training
// objective), regardless of search metric.
func (q *Quantizer) Encode(dst []byte, v []float32) []byte {
	if len(v) != q.D {
		panic("pq: Encode dimension mismatch")
	}
	for i := 0; i < q.M; i++ {
		sv := v[i*q.Dsub : (i+1)*q.Dsub]
		best, bd := 0, vecmath.L2Sq(sv, q.Codeword(i, 0))
		for j := 1; j < q.Ks; j++ {
			if d := vecmath.L2Sq(sv, q.Codeword(i, j)); d < bd {
				best, bd = j, d
			}
		}
		dst = append(dst, byte(best))
	}
	return dst
}

// Decode reconstructs the quantized vector from one identifier per
// sub-space into dst (length D).
func (q *Quantizer) Decode(dst []float32, codes []byte) {
	if len(codes) != q.M || len(dst) != q.D {
		panic("pq: Decode size mismatch")
	}
	for i := 0; i < q.M; i++ {
		copy(dst[i*q.Dsub:(i+1)*q.Dsub], q.Codeword(i, int(codes[i])))
	}
}

// LUT is a set of M lookup tables with Ks entries each, laid out
// row-major: entry j of table i is Values[i*Ks+j].
type LUT struct {
	M, Ks  int
	Values []float32
	// Bias is added to every ADC sum: q·c for inner-product search with a
	// cluster centroid (Section II-C); zero otherwise.
	Bias float32
}

// NewLUT allocates an empty LUT for quantizer q.
func NewLUT(q *Quantizer) *LUT {
	return &LUT{M: q.M, Ks: q.Ks, Values: make([]float32, q.M*q.Ks)}
}

// At returns entry j of table i.
func (l *LUT) At(i, j int) float32 { return l.Values[i*l.Ks+j] }

// FillIP fills l with inner-product tables for query qv:
// L_i[j] = q_i · B_i[j]. The tables are independent of the cluster, so a
// single fill serves all selected clusters (Section II-C).
func (q *Quantizer) FillIP(l *LUT, qv []float32) {
	if len(qv) != q.D {
		panic("pq: FillIP dimension mismatch")
	}
	for i := 0; i < q.M; i++ {
		sv := qv[i*q.Dsub : (i+1)*q.Dsub]
		for j := 0; j < q.Ks; j++ {
			l.Values[i*q.Ks+j] = vecmath.Dot(sv, q.Codeword(i, j))
		}
	}
	l.Bias = 0
}

// FillL2 fills l with negated squared-L2 tables for the residual query
// rq = q - c: L_i[j] = -||rq_i - B_i[j]||². The tables depend on the
// selected cluster and must be rebuilt per cluster (Section II-C).
func (q *Quantizer) FillL2(l *LUT, rq []float32) {
	if len(rq) != q.D {
		panic("pq: FillL2 dimension mismatch")
	}
	for i := 0; i < q.M; i++ {
		sv := rq[i*q.Dsub : (i+1)*q.Dsub]
		for j := 0; j < q.Ks; j++ {
			l.Values[i*q.Ks+j] = -vecmath.L2Sq(sv, q.Codeword(i, j))
		}
	}
	l.Bias = 0
}

// RoundF16 rounds every table entry (and the bias) through half precision,
// matching the 2-byte LUT SRAM of the accelerator.
func (l *LUT) RoundF16() {
	f16.RoundSlice(l.Values, l.Values)
	l.Bias = f16.Round(l.Bias)
}

// ADC computes the approximate similarity of the encoded vector (one
// identifier per sub-space) against the query represented by l:
// Bias + Σ_i L_i[code_i] (Section II-B memoized computation).
func (l *LUT) ADC(codes []byte) float32 {
	if len(codes) != l.M {
		panic("pq: ADC code length mismatch")
	}
	s := l.Bias
	for i, c := range codes {
		s += l.Values[i*l.Ks+int(c)]
	}
	return s
}

// ADCf16 is ADC with the accumulator rounded to half precision after every
// addition, matching a 16-bit hardware adder tree exactly is not required
// by the paper (the adder tree reduces in higher precision); ANNA stores
// only the final score as f16. ADCf16 therefore computes the full-precision
// sum and rounds once, which is what the top-k unit receives.
func (l *LUT) ADCf16(codes []byte) float32 { return f16.Round(l.ADC(codes)) }
