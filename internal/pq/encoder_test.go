package pq

import (
	"bytes"
	"testing"

	"anna/internal/vecmath"
)

// trainQuantizer builds a small trained quantizer plus fresh evaluation
// data that was not part of training (fixed seeds, no exact FP ties).
func trainQuantizer(t *testing.T, m, ks int) (*Quantizer, *vecmath.Matrix) {
	t.Helper()
	data := randMatrix(600, 16, 7)
	q := Train(data, Config{M: m, Ks: ks, Iters: 5, Seed: 11})
	return q, randMatrix(333, 16, 8) // odd row count exercises block tails
}

// packReference encodes every row through the scalar reference
// (Quantizer.Encode) and packs it — the definitional output EncodeBatch
// must reproduce.
func packReference(q *Quantizer, data *vecmath.Matrix) []byte {
	var out []byte
	codes := make([]byte, 0, q.M)
	for r := 0; r < data.Rows; r++ {
		codes = q.Encode(codes[:0], data.Row(r))
		out = q.Pack(out, codes)
	}
	return out
}

func TestEncodeBatchMatchesEncode(t *testing.T) {
	for _, ks := range []int{16, 256} {
		q, data := trainQuantizer(t, 4, ks)
		want := packReference(q, data)
		got := make([]byte, data.Rows*q.CodeBytes())
		EncodeBatch(got, q, data, 1)
		if !bytes.Equal(got, want) {
			t.Errorf("Ks=%d: EncodeBatch disagrees with per-vector Encode", ks)
		}
	}
}

func TestEncodeBatchWorkerInvariant(t *testing.T) {
	for _, ks := range []int{16, 256} {
		q, data := trainQuantizer(t, 4, ks)
		ref := make([]byte, data.Rows*q.CodeBytes())
		EncodeBatch(ref, q, data, 1)
		for _, w := range []int{2, 3, 8} {
			got := make([]byte, len(ref))
			EncodeBatch(got, q, data, w)
			if !bytes.Equal(got, ref) {
				t.Errorf("Ks=%d workers=%d: output differs from workers=1", ks, w)
			}
		}
	}
}

func TestEncodeBatchAnisotropicMatchesScalar(t *testing.T) {
	const eta = 4.0
	for _, ks := range []int{16, 256} {
		q, resid := trainQuantizer(t, 4, ks)
		points := randMatrix(resid.Rows, q.D, 9)

		var want []byte
		codes := make([]byte, 0, q.M)
		for r := 0; r < resid.Rows; r++ {
			codes = q.EncodeAnisotropic(codes[:0], resid.Row(r), points.Row(r), eta)
			want = q.Pack(want, codes)
		}

		for _, w := range []int{1, 4} {
			got := make([]byte, resid.Rows*q.CodeBytes())
			EncodeBatchAnisotropic(got, q, resid, points, eta, w)
			if !bytes.Equal(got, want) {
				t.Errorf("Ks=%d workers=%d: anisotropic batch disagrees with EncodeAnisotropic", ks, w)
			}
		}

		// eta <= 1 must reduce to the plain objective.
		plain := make([]byte, resid.Rows*q.CodeBytes())
		EncodeBatch(plain, q, resid, 1)
		got := make([]byte, len(plain))
		EncodeBatchAnisotropic(got, q, resid, points, 1, 1)
		if !bytes.Equal(got, plain) {
			t.Errorf("Ks=%d: eta=1 did not reduce to EncodeBatch", ks)
		}
	}
}

// A zero direction vector must fall back to the plain L2 codeword choice
// in both the scalar and batch paths.
func TestEncodeBatchAnisotropicZeroDirection(t *testing.T) {
	q, resid := trainQuantizer(t, 4, 16)
	points := vecmath.NewMatrix(resid.Rows, q.D) // all-zero directions
	got := make([]byte, resid.Rows*q.CodeBytes())
	EncodeBatchAnisotropic(got, q, resid, points, 2, 2)
	plain := make([]byte, len(got))
	EncodeBatch(plain, q, resid, 1)
	if !bytes.Equal(got, plain) {
		t.Error("zero direction did not reduce to the plain objective")
	}
}

func TestEncodeBatchPanics(t *testing.T) {
	q, data := trainQuantizer(t, 4, 16)
	for name, fn := range map[string]func(){
		"short dst": func() {
			EncodeBatch(make([]byte, 1), q, data, 1)
		},
		"aniso dst": func() {
			EncodeBatchAnisotropic(make([]byte, 1), q, data, data, 2, 1)
		},
		"aniso rows": func() {
			pts := vecmath.NewMatrix(data.Rows-1, q.D)
			EncodeBatchAnisotropic(make([]byte, data.Rows*q.CodeBytes()), q, data, pts, 2, 1)
		},
		"dim mismatch": func() {
			bad := vecmath.NewMatrix(4, q.D+1)
			NewEncoder(q).EncodePackedRows(make([]byte, 4*q.CodeBytes()), bad, 0, 4)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Training in parallel must produce the same model for any Workers value.
func TestTrainWorkerInvariant(t *testing.T) {
	data := randMatrix(500, 16, 12)
	ref := Train(data, Config{M: 4, Ks: 16, Iters: 5, Seed: 3, Workers: 1})
	for _, w := range []int{2, 4, 7} {
		got := Train(data, Config{M: 4, Ks: 16, Iters: 5, Seed: 3, Workers: w})
		for i := range ref.Codebooks.Data {
			if got.Codebooks.Data[i] != ref.Codebooks.Data[i] {
				t.Fatalf("workers=%d: codebooks differ at %d", w, i)
			}
		}
	}
}
