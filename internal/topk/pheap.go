package topk

// PHeap models ANNA's hardware top-k selection unit: a P-heap pipelined
// priority queue that tracks the k largest scores it has been offered.
//
// Functional behaviour is identical to Selector. On top of that, PHeap
// tracks the hardware-relevant statistics the simulator consumes:
//
//   - the unit accepts one input per cycle (Offered() == cycles consumed
//     while the unit was fed),
//   - entries are 5 bytes in memory (3 B vector ID + 2 B f16 score, per
//     Section IV-B), so a flush or init moves EntryBytes*k bytes,
//   - two buffer copies exist so flush/init of one copy overlaps top-k
//     processing on the other (double buffering); the simulator uses
//     SwapBuffers to model this.
//
// The structure deliberately keeps hardware quantities (byte widths,
// offered counts) here rather than in the simulator so tests can pin the
// paper's 2k·N_SCM·5 B save/restore traffic formula against it directly.
type PHeap struct {
	sel      *Selector
	offered  int64 // total inputs taken (one per cycle)
	accepted int64 // inputs that displaced or extended the tracked set
}

// EntryBytes is the in-memory size of one top-k entry: 3 bytes of vector
// ID plus 2 bytes of half-precision score (Section IV-B).
const EntryBytes = 5

// MaxID is the largest vector ID representable in the 3-byte hardware ID
// field of a top-k entry.
const MaxID = 1<<24 - 1

// NewPHeap returns a P-heap tracking the k largest scores.
func NewPHeap(k int) *PHeap {
	return &PHeap{sel: NewSelector(k)}
}

// K returns the unit's capacity.
func (p *PHeap) K() int { return p.sel.K() }

// Offer feeds one (id, score) input to the unit, consuming one cycle.
// It reports whether the entry was accepted into the tracked set.
func (p *PHeap) Offer(id int64, score float32) bool {
	p.offered++
	if p.sel.Push(id, score) {
		p.accepted++
		return true
	}
	return false
}

// Offered returns the number of inputs taken so far; since the unit
// processes a single input per cycle this equals its busy cycles.
func (p *PHeap) Offered() int64 { return p.offered }

// Accepted returns how many offered inputs entered the tracked set.
func (p *PHeap) Accepted() int64 { return p.accepted }

// Len returns the number of currently tracked entries.
func (p *PHeap) Len() int { return p.sel.Len() }

// Threshold returns the current admission threshold (see Selector.Threshold).
func (p *PHeap) Threshold() (float32, bool) { return p.sel.Threshold() }

// Flush returns the tracked entries sorted by descending score and empties
// the unit, modelling a flush of the SRAM buffers to main memory.
// FlushBytes reports the traffic this generates.
func (p *PHeap) Flush() []Result {
	out := p.sel.Results()
	p.sel.Reset()
	return out
}

// Init loads previously flushed intermediate results back into the unit,
// modelling initialisation from main memory before a query resumes on a
// new cluster. The unit must be empty.
func (p *PHeap) Init(state []Result) {
	if p.sel.Len() != 0 {
		panic("topk: PHeap.Init on non-empty unit")
	}
	for _, r := range state {
		p.sel.Push(r.ID, r.Score)
	}
}

// FlushBytes returns the memory traffic of flushing n entries.
func FlushBytes(n int) int64 { return int64(n) * EntryBytes }

// SaveRestoreBytes returns the steady-state per-cluster top-k traffic for
// nSCM units of capacity k: each unit stores its previous intermediate
// top-k and loads the next one (2·k·nSCM entries of 5 B, Section IV-B).
func SaveRestoreBytes(k, nSCM int) int64 {
	return 2 * int64(k) * int64(nSCM) * EntryBytes
}

// ResetStats clears the offered/accepted counters without touching the
// tracked contents.
func (p *PHeap) ResetStats() { p.offered, p.accepted = 0, 0 }
