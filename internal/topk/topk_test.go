package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSelectorBasic(t *testing.T) {
	s := NewSelector(3)
	if _, ok := s.Threshold(); ok {
		t.Error("Threshold ok before full")
	}
	for i, sc := range []float32{5, 1, 3, 2, 4} {
		s.Push(int64(i), sc)
	}
	got := s.Results()
	want := []Result{{0, 5}, {4, 4}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d results", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Results[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if th, ok := s.Threshold(); !ok || th != 3 {
		t.Errorf("Threshold = %v,%v want 3,true", th, ok)
	}
}

func TestSelectorFewerThanK(t *testing.T) {
	s := NewSelector(10)
	s.Push(1, 2)
	s.Push(2, 1)
	got := s.Results()
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Errorf("Results = %+v", got)
	}
}

func TestSelectorRejectsEqualToThreshold(t *testing.T) {
	s := NewSelector(1)
	s.Push(1, 5)
	if s.Push(2, 5) {
		t.Error("equal score displaced retained entry")
	}
	if !s.Push(3, 6) {
		t.Error("larger score rejected")
	}
	if got := s.Results()[0].ID; got != 3 {
		t.Errorf("retained ID = %d", got)
	}
}

func TestSelectorPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewSelector(0)
}

func TestSelectorTieBreakByID(t *testing.T) {
	s := NewSelector(3)
	s.Push(9, 1)
	s.Push(3, 1)
	s.Push(7, 1)
	got := s.Results()
	if got[0].ID != 3 || got[1].ID != 7 || got[2].ID != 9 {
		t.Errorf("tie order = %+v", got)
	}
}

// Property: Selector(k) over any stream returns exactly the k largest
// scores, matching a full sort.
func TestSelectorMatchesSort(t *testing.T) {
	f := func(scores []float32, kRaw uint8) bool {
		if len(scores) == 0 {
			return true
		}
		k := int(kRaw)%len(scores) + 1
		s := NewSelector(k)
		ref := make([]Result, len(scores))
		for i, sc := range scores {
			s.Push(int64(i), sc)
			ref[i] = Result{int64(i), sc}
		}
		SortDesc(ref)
		got := s.Results()
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if got[i].Score != ref[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	a := []Result{{1, 10}, {2, 8}}
	b := []Result{{3, 9}, {4, 7}}
	got := Merge(3, a, b)
	want := []Result{{1, 10}, {3, 9}, {2, 8}}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Merge[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Merging per-partition top-k lists must equal the top-k over the union,
// the invariant intra-query SCM parallelism relies on.
func TestMergeEqualsGlobalTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, k, parts = 500, 20, 4
	all := make([]Result, n)
	lists := make([][]Result, parts)
	sels := make([]*Selector, parts)
	for p := range sels {
		sels[p] = NewSelector(k)
	}
	for i := 0; i < n; i++ {
		r := Result{int64(i), rng.Float32()}
		all[i] = r
		sels[i%parts].Push(r.ID, r.Score)
	}
	for p := range sels {
		lists[p] = sels[p].Results()
	}
	got := Merge(k, lists...)
	SortDesc(all)
	for i := 0; i < k; i++ {
		if got[i] != all[i] {
			t.Fatalf("merged[%d] = %+v, want %+v", i, got[i], all[i])
		}
	}
}

func TestSelectorReset(t *testing.T) {
	s := NewSelector(2)
	s.Push(1, 1)
	s.Reset()
	if s.Len() != 0 {
		t.Error("Reset did not empty")
	}
	s.Push(2, 2)
	if got := s.Results(); len(got) != 1 || got[0].ID != 2 {
		t.Errorf("post-Reset Results = %+v", got)
	}
}

func TestPHeapStats(t *testing.T) {
	p := NewPHeap(2)
	accepted := 0
	for i, sc := range []float32{1, 2, 3, 0} {
		if p.Offer(int64(i), sc) {
			accepted++
		}
	}
	if p.Offered() != 4 {
		t.Errorf("Offered = %d", p.Offered())
	}
	if p.Accepted() != int64(accepted) || accepted != 3 {
		t.Errorf("Accepted = %d (counted %d)", p.Accepted(), accepted)
	}
	got := p.Flush()
	if len(got) != 2 || got[0].Score != 3 || got[1].Score != 2 {
		t.Errorf("Flush = %+v", got)
	}
	if p.Len() != 0 {
		t.Error("Flush did not empty the unit")
	}
	p.ResetStats()
	if p.Offered() != 0 || p.Accepted() != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

func TestPHeapInitResumes(t *testing.T) {
	// Save/restore across clusters must give the same answer as one
	// uninterrupted pass.
	rng := rand.New(rand.NewSource(11))
	const n, k = 300, 10
	scores := make([]float32, n)
	for i := range scores {
		scores[i] = rng.Float32()
	}

	whole := NewPHeap(k)
	for i, sc := range scores {
		whole.Offer(int64(i), sc)
	}

	split := NewPHeap(k)
	for i := 0; i < n/2; i++ {
		split.Offer(int64(i), scores[i])
	}
	state := split.Flush()
	if FlushBytes(len(state)) != int64(len(state))*EntryBytes {
		t.Errorf("FlushBytes inconsistent")
	}
	split.Init(state)
	for i := n / 2; i < n; i++ {
		split.Offer(int64(i), scores[i])
	}

	a, b := whole.Flush(), split.Flush()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("resume mismatch at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPHeapInitPanicsNonEmpty(t *testing.T) {
	p := NewPHeap(2)
	p.Offer(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Init([]Result{{2, 2}})
}

func TestSaveRestoreBytes(t *testing.T) {
	// Section IV-B: 2k·N_SCM entries of 5 B each; k=1000, 16 SCMs -> 160 kB.
	if got := SaveRestoreBytes(1000, 16); got != 160000 {
		t.Errorf("SaveRestoreBytes(1000,16) = %d, want 160000", got)
	}
}

func TestSortDescStable(t *testing.T) {
	r := []Result{{5, 1}, {1, 3}, {4, 2}, {2, 3}}
	SortDesc(r)
	want := []Result{{1, 3}, {2, 3}, {4, 2}, {5, 1}}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("SortDesc[%d] = %+v, want %+v", i, r[i], want[i])
		}
	}
	if !sort.SliceIsSorted(r, func(i, j int) bool {
		if r[i].Score != r[j].Score {
			return r[i].Score > r[j].Score
		}
		return r[i].ID < r[j].ID
	}) {
		t.Error("not sorted")
	}
}

func BenchmarkSelectorPush(b *testing.B) {
	s := NewSelector(1000)
	rng := rand.New(rand.NewSource(1))
	scores := make([]float32, 4096)
	for i := range scores {
		scores[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(int64(i), scores[i&4095])
	}
}
