// Package topk implements top-k selection of (id, score) pairs.
//
// Two implementations are provided:
//
//   - Selector: a software bounded min-heap, used by the CPU reference
//     ANNS engine (the role Faiss's HeapArray / ScaNN's top-N plays).
//   - PHeap: a functional + timing model of the P-heap hardware priority
//     queue [Bhagwan & Lin, INFOCOM 2000] used by ANNA's top-k selection
//     units, including the double-buffered flush/init-to-memory behaviour
//     the Section-IV batch optimization relies on.
//
// Scores follow the paper's convention: larger is more similar (L2
// distances are negated before insertion), so both structures keep the k
// LARGEST scores seen.
package topk

// Result is a scored candidate.
type Result struct {
	ID    int64
	Score float32
}

// Selector keeps the k results with the largest scores using a bounded
// min-heap rooted at the current worst retained score.
type Selector struct {
	k    int
	heap []Result // min-heap on Score
}

// NewSelector returns a Selector retaining the top k scores. k must be > 0.
func NewSelector(k int) *Selector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Selector{k: k, heap: make([]Result, 0, k)}
}

// K returns the selector's capacity.
func (s *Selector) K() int { return s.k }

// Len returns the number of results currently retained.
func (s *Selector) Len() int { return len(s.heap) }

// Threshold returns the smallest retained score, or -Inf semantics via
// ok=false while fewer than k results have been pushed. A candidate with
// Score <= Threshold (when full) cannot enter the selector.
func (s *Selector) Threshold() (score float32, ok bool) {
	if len(s.heap) < s.k {
		return 0, false
	}
	return s.heap[0].Score, true
}

// Push offers a candidate. It returns true if the candidate was retained.
func (s *Selector) Push(id int64, score float32) bool {
	if len(s.heap) < s.k {
		s.heap = append(s.heap, Result{id, score})
		s.up(len(s.heap) - 1)
		return true
	}
	if score <= s.heap[0].Score {
		return false
	}
	s.heap[0] = Result{id, score}
	s.down(0)
	return true
}

func (s *Selector) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].Score <= s.heap[i].Score {
			break
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *Selector) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.heap[l].Score < s.heap[m].Score {
			m = l
		}
		if r < n && s.heap[r].Score < s.heap[m].Score {
			m = r
		}
		if m == i {
			return
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		i = m
	}
}

// Results returns the retained results sorted by descending score
// (ties broken by ascending ID for determinism). The selector remains
// usable afterwards.
func (s *Selector) Results() []Result {
	return s.ResultsAppend(make([]Result, 0, len(s.heap)))
}

// ResultsAppend appends the retained results to dst in descending score
// order (ties broken by ascending ID) and returns the extended slice. It
// allocates only when dst lacks capacity, which lets callers drain many
// selectors into slots of one preallocated arena. The selector remains
// usable afterwards.
func (s *Selector) ResultsAppend(dst []Result) []Result {
	start := len(dst)
	dst = append(dst, s.heap...)
	SortDesc(dst[start:])
	return dst
}

// Reset empties the selector, keeping its capacity.
func (s *Selector) Reset() { s.heap = s.heap[:0] }

// SortDesc sorts results by descending score, ascending ID on ties. It
// is hand-rolled (quicksort + insertion sort) rather than sort.Slice so
// that draining a selector allocates nothing — sort.Slice's closure and
// reflect-based swapper cost ~3 heap allocations per call, which
// dominated the engine's steady-state allocation profile.
func SortDesc(r []Result) {
	for len(r) > 12 {
		// Median-of-three pivot to first position.
		mid, last := len(r)/2, len(r)-1
		if before(r[mid], r[0]) {
			r[mid], r[0] = r[0], r[mid]
		}
		if before(r[last], r[0]) {
			r[last], r[0] = r[0], r[last]
		}
		if before(r[last], r[mid]) {
			r[last], r[mid] = r[mid], r[last]
		}
		pivot := r[mid]
		i, j := 0, last
		for i <= j {
			for before(r[i], pivot) {
				i++
			}
			for before(pivot, r[j]) {
				j--
			}
			if i <= j {
				r[i], r[j] = r[j], r[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, iterate on the larger.
		if j+1 < len(r)-i {
			SortDesc(r[:j+1])
			r = r[i:]
		} else {
			SortDesc(r[i:])
			r = r[:j+1]
		}
	}
	// Insertion sort for small runs.
	for i := 1; i < len(r); i++ {
		v := r[i]
		j := i - 1
		for j >= 0 && before(v, r[j]) {
			r[j+1] = r[j]
			j--
		}
		r[j+1] = v
	}
}

// before reports whether a orders strictly ahead of b: larger score
// first, smaller ID on score ties.
func before(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// Merge returns the top-k of the concatenation of several result lists.
// This is the reduction used when intra-query parallelism spreads one
// query across multiple SCMs and their per-SCM top-k lists are combined.
func Merge(k int, lists ...[]Result) []Result {
	s := NewSelector(k)
	for _, l := range lists {
		for _, r := range l {
			s.Push(r.ID, r.Score)
		}
	}
	return s.Results()
}
