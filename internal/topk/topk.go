// Package topk implements top-k selection of (id, score) pairs.
//
// Two implementations are provided:
//
//   - Selector: a software bounded min-heap, used by the CPU reference
//     ANNS engine (the role Faiss's HeapArray / ScaNN's top-N plays).
//   - PHeap: a functional + timing model of the P-heap hardware priority
//     queue [Bhagwan & Lin, INFOCOM 2000] used by ANNA's top-k selection
//     units, including the double-buffered flush/init-to-memory behaviour
//     the Section-IV batch optimization relies on.
//
// Scores follow the paper's convention: larger is more similar (L2
// distances are negated before insertion), so both structures keep the k
// LARGEST scores seen.
package topk

import "sort"

// Result is a scored candidate.
type Result struct {
	ID    int64
	Score float32
}

// Selector keeps the k results with the largest scores using a bounded
// min-heap rooted at the current worst retained score.
type Selector struct {
	k    int
	heap []Result // min-heap on Score
}

// NewSelector returns a Selector retaining the top k scores. k must be > 0.
func NewSelector(k int) *Selector {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Selector{k: k, heap: make([]Result, 0, k)}
}

// K returns the selector's capacity.
func (s *Selector) K() int { return s.k }

// Len returns the number of results currently retained.
func (s *Selector) Len() int { return len(s.heap) }

// Threshold returns the smallest retained score, or -Inf semantics via
// ok=false while fewer than k results have been pushed. A candidate with
// Score <= Threshold (when full) cannot enter the selector.
func (s *Selector) Threshold() (score float32, ok bool) {
	if len(s.heap) < s.k {
		return 0, false
	}
	return s.heap[0].Score, true
}

// Push offers a candidate. It returns true if the candidate was retained.
func (s *Selector) Push(id int64, score float32) bool {
	if len(s.heap) < s.k {
		s.heap = append(s.heap, Result{id, score})
		s.up(len(s.heap) - 1)
		return true
	}
	if score <= s.heap[0].Score {
		return false
	}
	s.heap[0] = Result{id, score}
	s.down(0)
	return true
}

func (s *Selector) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].Score <= s.heap[i].Score {
			break
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *Selector) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.heap[l].Score < s.heap[m].Score {
			m = l
		}
		if r < n && s.heap[r].Score < s.heap[m].Score {
			m = r
		}
		if m == i {
			return
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		i = m
	}
}

// Results returns the retained results sorted by descending score
// (ties broken by ascending ID for determinism). The selector remains
// usable afterwards.
func (s *Selector) Results() []Result {
	out := make([]Result, len(s.heap))
	copy(out, s.heap)
	SortDesc(out)
	return out
}

// Reset empties the selector, keeping its capacity.
func (s *Selector) Reset() { s.heap = s.heap[:0] }

// SortDesc sorts results by descending score, ascending ID on ties.
func SortDesc(r []Result) {
	sort.Slice(r, func(i, j int) bool {
		if r[i].Score != r[j].Score {
			return r[i].Score > r[j].Score
		}
		return r[i].ID < r[j].ID
	})
}

// Merge returns the top-k of the concatenation of several result lists.
// This is the reduction used when intra-query parallelism spreads one
// query across multiple SCMs and their per-SCM top-k lists are combined.
func Merge(k int, lists ...[]Result) []Result {
	s := NewSelector(k)
	for _, l := range lists {
		for _, r := range l {
			s.Push(r.ID, r.Score)
		}
	}
	return s.Results()
}
