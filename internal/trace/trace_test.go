package trace

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate ID %q", id)
		}
		seen[id] = true
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New("abc")
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext returned %v", got)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context returned %v", got)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := New("x")
	tr.AddSpan("select", 2*time.Millisecond)
	tr.AddSpan("scan", 5*time.Millisecond)
	if d := tr.SpanDuration("scan"); d != 5*time.Millisecond {
		t.Errorf("scan span %v", d)
	}
	if d := tr.SpanDuration("missing"); d != 0 {
		t.Errorf("missing span %v", d)
	}
	tr.Finish(200)
	if tr.Status != 200 || tr.Total <= 0 {
		t.Errorf("finish: status=%d total=%v", tr.Status, tr.Total)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 {
		t.Fatalf("cap %d", r.Cap())
	}
	for i := 0; i < 10; i++ {
		r.Put(New(NewID()))
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot holds %d traces, want 4", len(snap))
	}
}

func TestRingSnapshotNewestFirst(t *testing.T) {
	r := NewRing(8)
	for _, id := range []string{"a", "b", "c"} {
		r.Put(New(id))
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].ID != "c" || snap[2].ID != "a" {
		ids := make([]string, len(snap))
		for i, tr := range snap {
			ids[i] = tr.ID
		}
		t.Fatalf("snapshot order %v, want [c b a]", ids)
	}
	if got := r.Get("b"); got == nil || got.ID != "b" {
		t.Fatalf("Get(b) = %v", got)
	}
	if got := r.Get("zz"); got != nil {
		t.Fatalf("Get(zz) = %v", got)
	}
}

// The ring is written and read concurrently by the serving path
// (/search writers, /debug/queries readers). Run with -race.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(16)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				tr := New(NewID())
				tr.AddSpan("scan", time.Duration(i))
				tr.Finish(200)
				r.Put(tr)
			}
		}()
	}
	for rd := 0; rd < 3; rd++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range r.Snapshot() {
					if tr.ID == "" {
						t.Error("snapshot returned zero trace")
						return
					}
					_ = tr.SpanDuration("scan")
				}
				r.Get("no-such-id")
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

func TestRecorderSampling(t *testing.T) {
	rec := NewRecorder(64, 4, 0, nil)
	hits := 0
	for i := 0; i < 100; i++ {
		if rec.ShouldSample() {
			hits++
		}
	}
	if hits != 25 {
		t.Errorf("1-in-4 sampling hit %d/100", hits)
	}
	off := NewRecorder(64, 0, 0, nil)
	for i := 0; i < 100; i++ {
		if off.ShouldSample() {
			t.Fatal("disabled recorder sampled")
		}
	}
}

func TestRecorderSlowLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	rec := NewRecorder(16, 0, 10*time.Millisecond, logger)

	fast := New("fast")
	fast.Total = time.Millisecond
	rec.Record(fast)
	slow := New("slow-one")
	slow.AddSpan("scan", 9*time.Millisecond)
	slow.Total = 20 * time.Millisecond
	slow.Status = 200
	rec.Record(slow)

	if fastT := rec.Get("fast"); fastT == nil || fastT.Slow {
		t.Errorf("fast trace: %+v", fastT)
	}
	if slowT := rec.Get("slow-one"); slowT == nil || !slowT.Slow {
		t.Errorf("slow trace: %+v", slowT)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "slow-one") {
		t.Errorf("slow log output %q", out)
	}
	if strings.Contains(out, `query_id=fast`) {
		t.Errorf("fast query logged as slow: %q", out)
	}
	total, slowN := rec.Recorded()
	if total != 2 || slowN != 1 {
		t.Errorf("recorded %d/%d, want 2/1", total, slowN)
	}
}

// Run with -race: concurrent ShouldSample/Record writers against
// Snapshot/Get readers model /search vs /debug/queries traffic.
func TestRecorderConcurrent(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))
	rec := NewRecorder(32, 2, time.Nanosecond, logger)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if rec.ShouldSample() {
					tr := New(NewID())
					tr.Finish(200)
					rec.Record(tr)
				}
			}
		}()
	}
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				rec.Snapshot()
				rec.Recorded()
			}
		}()
	}
	wg.Wait()
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// The acceptance bar for the whole layer: a query that is not sampled
// must not allocate in the tracing layer — one atomic add for the
// sampling decision, one context lookup, and the (absent) wire-header
// parse, nothing else.
func TestUnsampledPathAllocs(t *testing.T) {
	rec := NewRecorder(256, 1000000, time.Hour, nil)
	ctx := context.Background()
	// An untagged request carries no X-Anna-Trace header; a shard client
	// re-parsing a bare ID must also stay allocation-free.
	bareID := NewID()
	allocs := testing.AllocsPerRun(1000, func() {
		if rec.ShouldSample() {
			t.Fatal("sampled inside alloc window")
		}
		if tr := FromContext(ctx); tr != nil {
			t.Fatal("trace in background context")
		}
		_ = rec.IsSlow(time.Microsecond)
		if id, parent := ParseWire(""); id != "" || parent != "" {
			t.Fatal("empty wire header parsed non-empty")
		}
		if id, _ := ParseWire(bareID); id != bareID {
			t.Fatal("bare wire header did not round-trip")
		}
	})
	if allocs != 0 {
		t.Fatalf("unsampled hot path allocates %.1f/op, want 0", allocs)
	}
}

func TestWireRoundTrip(t *testing.T) {
	cases := []struct{ id, parent string }{
		{"abc-1", "shard2"},
		{"abc-2", ""},
	}
	for _, c := range cases {
		id, parent := ParseWire(FormatWire(c.id, c.parent))
		if id != c.id || parent != c.parent {
			t.Errorf("FormatWire(%q,%q) round-tripped to (%q,%q)", c.id, c.parent, id, parent)
		}
	}
	if id, parent := ParseWire("x;parent="); id != "x" || parent != "" {
		t.Errorf("empty parent parsed as (%q,%q)", id, parent)
	}
}

// Hops are recorded from one goroutine per shard; AddHop must be safe
// under -race and lose nothing.
func TestAddHopConcurrent(t *testing.T) {
	tr := New("hops")
	var wg sync.WaitGroup
	const shards, hops = 8, 50
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < hops; i++ {
				tr.AddHop(Hop{Shard: s, Attempt: i + 1, Kind: "primary"})
			}
		}(s)
	}
	wg.Wait()
	if len(tr.Hops) != shards*hops {
		t.Fatalf("recorded %d hops, want %d", len(tr.Hops), shards*hops)
	}
}

func BenchmarkUnsampledDecision(b *testing.B) {
	rec := NewRecorder(256, 0, 0, nil)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rec.ShouldSample() {
			b.Fatal("sampled")
		}
		if FromContext(ctx) != nil {
			b.Fatal("trace present")
		}
	}
}

func BenchmarkRingPut(b *testing.B) {
	r := NewRing(256)
	tr := New("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Put(tr)
	}
}
