// Package trace is the per-query introspection layer of the serving
// path: lightweight spans for the engine's stages (cluster select, list
// scan, top-k merge, re-rank), a lock-free ring buffer of recent query
// traces behind /debug/queries, and unique query IDs propagated from
// the X-Request-ID header through engine.RunContext into responses and
// logs.
//
// The design constraint is that the NON-traced path costs nothing: a
// query that is neither sampled nor explicitly tagged pays one atomic
// add (the sampling decision) and one context lookup — no allocations,
// no locks (verified by TestUnsampledPathAllocs and
// BenchmarkUnsampledDecision). All the bookkeeping — building the
// Trace, copying spans, logging slow queries — happens only for the
// sampled few or after a query has already proven slow.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed stage of a query. Durations for engine stages are
// summed across workers (CPU time, not wall clock), matching the
// anna_stage_duration_seconds histograms.
type Span struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
}

// Hop is one remote shard attempt of a routed request: the
// cluster-side child span the router records per try (primary, retry,
// or hedge), attributed with everything an operator needs to explain
// the hop — which shard, which attempt, whether it won the race, the
// breaker's state at the time, and the bytes read back.
type Hop struct {
	Shard int `json:"shard"`
	// Attempt numbers logical tries from 1; a hedge shares its
	// primary's attempt number (it races within the same try).
	Attempt int `json:"attempt"`
	// Kind is "primary", "retry", "hedge", or "fastfail" (the breaker
	// refused the request locally; nothing was sent).
	Kind string `json:"kind"`
	// Winner marks the attempt whose response the caller used.
	Winner bool `json:"winner,omitempty"`
	// Breaker is the shard breaker's state when the hop finished.
	Breaker string `json:"breaker,omitempty"`
	Status  int    `json:"status,omitempty"`
	Err     string `json:"error,omitempty"`
	// Bytes is the response body size read from the shard.
	Bytes int64 `json:"bytes,omitempty"`
	// Start is the hop's offset from the trace start; with Duration it
	// places the hop on the request's timeline.
	Start    time.Duration `json:"start_ns"`
	Duration time.Duration `json:"duration_ns"`
}

// Trace is the record of one served query batch. A Trace is built and
// mutated by a single goroutine (the request handler) — except Hops,
// which AddHop guards with a mutex because a scatter-gather router
// records them from concurrent per-shard goroutines — and becomes
// visible to concurrent readers only after Recorder.Record publishes it
// to the ring; it must not be mutated afterwards.
type Trace struct {
	ID    string    `json:"id"`
	Start time.Time `json:"start"`
	// Total is the wall-clock duration of the whole request.
	Total time.Duration `json:"total_ns"`
	// Queries is the batch size; W/K are the effective search knobs.
	Queries int    `json:"queries"`
	W       int    `json:"w,omitempty"`
	K       int    `json:"k,omitempty"`
	Backend string `json:"backend,omitempty"`
	Status  int    `json:"status,omitempty"`
	// Scanned counts (query, vector) similarity computations.
	Scanned int64 `json:"scanned,omitempty"`
	// Tenant is the QoS tenant the request was attributed to.
	Tenant string `json:"tenant,omitempty"`
	// Batch is the size of the coalesced engine batch the query rode in
	// (0 when it was not coalesced).
	Batch int `json:"batch,omitempty"`
	// CacheHit marks queries answered from the result cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// ClustersScanned counts inverted lists actually scanned across the
	// batch — Queries*W on the fixed path, fewer when adaptive early
	// termination stopped scans early.
	ClustersScanned int64 `json:"clusters_scanned,omitempty"`
	// Escalated counts candidates re-scored through the SQ8 precision
	// escalation band (zero when escalation is off or nothing escalated).
	Escalated int64 `json:"escalated,omitempty"`
	// Effort is the adaptive controller's effort level when the query
	// was served (0 = lowest rung; only set under -recall-target).
	Effort int `json:"effort,omitempty"`
	// Slow marks traces captured because they crossed the slow-query
	// threshold (as opposed to being sampled or explicitly tagged).
	Slow  bool   `json:"slow,omitempty"`
	Spans []Span `json:"spans,omitempty"`
	// Parent names the upstream span this trace is a child of, parsed
	// from the X-Anna-Trace wire header (e.g. "shard2" when an
	// annarouter hop produced this shard-side trace).
	Parent string `json:"parent,omitempty"`
	// Hops are the cluster-side child spans: one per shard attempt.
	Hops []Hop `json:"hops,omitempty"`

	hopMu sync.Mutex
}

// New returns a Trace started now with the given query ID.
func New(id string) *Trace {
	return &Trace{ID: id, Start: time.Now()}
}

// AddSpan appends one named stage duration.
func (t *Trace) AddSpan(name string, d time.Duration) {
	t.Spans = append(t.Spans, Span{Name: name, Duration: d})
}

// AddHop appends one cluster hop. Unlike AddSpan it is safe for
// concurrent use: a router's scatter records hops from one goroutine
// per shard.
func (t *Trace) AddHop(h Hop) {
	t.hopMu.Lock()
	t.Hops = append(t.Hops, h)
	t.hopMu.Unlock()
}

// SpanDuration returns the duration of the named span, or zero.
func (t *Trace) SpanDuration(name string) time.Duration {
	for _, s := range t.Spans {
		if s.Name == name {
			return s.Duration
		}
	}
	return 0
}

// Finish stamps the total wall-clock duration and response status.
func (t *Trace) Finish(status int) {
	t.Total = time.Since(t.Start)
	t.Status = status
}

// ctxKey is the private context key type for trace propagation.
type ctxKey struct{}

// NewContext returns ctx carrying t, for propagation into
// engine.RunContext and any layer below it.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the Trace carried by ctx, or nil. The nil path is
// allocation-free, so instrumented code may call it unconditionally.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// idPrefix is a per-process random prefix so IDs from different server
// instances don't collide; idCounter makes them unique within one.
var (
	idPrefix  = func() string { var b [4]byte; rand.Read(b[:]); return hex.EncodeToString(b[:]) }()
	idCounter atomic.Uint64
)

// NewID returns a unique query ID: an 8-hex-digit process prefix plus a
// monotonic counter.
func NewID() string {
	return idPrefix + "-" + strconv.FormatUint(idCounter.Add(1), 16)
}

// HeaderWire is the cross-process trace-context header: a router (or
// any other upstream) stamps it on outbound shard requests so the
// shard's trace shares the caller's ID and names its parent span. The
// value is "<trace-id>;parent=<span>"; the parent part is optional.
const HeaderWire = "X-Anna-Trace"

// wireParentPrefix separates the trace ID from the parent span name in
// HeaderWire values.
const wireParentPrefix = ";parent="

// FormatWire renders a HeaderWire value carrying id and, when non-empty,
// the parent span name. Only traced requests pay this allocation.
func FormatWire(id, parent string) string {
	if parent == "" {
		return id
	}
	return id + wireParentPrefix + parent
}

// ParseWire splits a HeaderWire value into trace ID and parent span
// name. Absent or malformed headers yield ("", ""). The empty-header
// path allocates nothing (substring slicing only), so servers may call
// it unconditionally on every request — pinned, with FromContext, by
// TestUnsampledPathAllocs.
func ParseWire(h string) (id, parent string) {
	if h == "" {
		return "", ""
	}
	if i := strings.Index(h, wireParentPrefix); i >= 0 {
		return h[:i], h[i+len(wireParentPrefix):]
	}
	return h, ""
}

// Ring is a lock-free fixed-capacity buffer of the most recent traces.
// Writers claim slots with one atomic add and publish with one atomic
// pointer store; readers snapshot without blocking writers. Under
// concurrent writes a reader may miss a trace that is being overwritten
// — acceptable for a debug surface, and the price of zero coordination.
type Ring struct {
	slots []atomic.Pointer[Trace]
	mask  uint64
	pos   atomic.Uint64
}

// NewRing returns a ring holding the last n traces (n is rounded up to
// a power of two; minimum 2).
func NewRing(n int) *Ring {
	size := 2
	for size < n {
		size *= 2
	}
	return &Ring{slots: make([]atomic.Pointer[Trace], size), mask: uint64(size - 1)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Put publishes t, evicting the oldest trace once the ring is full.
func (r *Ring) Put(t *Trace) {
	i := r.pos.Add(1) - 1
	r.slots[i&r.mask].Store(t)
}

// Snapshot returns the currently held traces, newest first.
func (r *Ring) Snapshot() []*Trace {
	out := make([]*Trace, 0, len(r.slots))
	pos := r.pos.Load()
	for i := uint64(0); i < uint64(len(r.slots)); i++ {
		// Walk backwards from the most recently claimed slot.
		t := r.slots[(pos-1-i)&r.mask].Load()
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Get returns the held trace with the given ID, or nil.
func (r *Ring) Get(id string) *Trace {
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil && t.ID == id {
			return t
		}
	}
	return nil
}

// Recorder decides which queries are traced and retains the results: a
// 1-in-N sample plus everything that crossed the slow-query threshold,
// in a Ring, with slow queries additionally logged.
type Recorder struct {
	ring *Ring
	// sampleEvery is the 1-in-N sampling rate (0 disables sampling;
	// explicitly tagged and slow queries are still recorded).
	sampleEvery int64
	// slow is the slow-query threshold (0 disables the slow log).
	slow   time.Duration
	logger *slog.Logger

	n       atomic.Int64
	sampled atomic.Uint64
	slowQ   atomic.Uint64
}

// NewRecorder returns a recorder keeping the last ringSize traces,
// sampling 1-in-sampleEvery queries (0 = none), and treating queries at
// or above slow as slow (0 = never). logger receives slow-query lines
// and may be nil.
func NewRecorder(ringSize, sampleEvery int, slow time.Duration, logger *slog.Logger) *Recorder {
	if ringSize <= 0 {
		ringSize = 256
	}
	return &Recorder{
		ring:        NewRing(ringSize),
		sampleEvery: int64(sampleEvery),
		slow:        slow,
		logger:      logger,
	}
}

// ShouldSample reports whether the next query falls in the 1-in-N
// sample. It is a single atomic add — safe and cheap on the hot path.
func (rec *Recorder) ShouldSample() bool {
	if rec.sampleEvery <= 0 {
		return false
	}
	return rec.n.Add(1)%rec.sampleEvery == 0
}

// SlowThreshold returns the configured slow-query threshold (0 = off).
func (rec *Recorder) SlowThreshold() time.Duration { return rec.slow }

// IsSlow reports whether d crosses the slow-query threshold.
func (rec *Recorder) IsSlow(d time.Duration) bool {
	return rec.slow > 0 && d >= rec.slow
}

// Record publishes a finished trace to the ring and logs it when slow.
// The trace must not be mutated afterwards.
func (rec *Recorder) Record(t *Trace) {
	rec.sampled.Add(1)
	if rec.IsSlow(t.Total) {
		t.Slow = true
		rec.slowQ.Add(1)
		if rec.logger != nil {
			rec.logger.Warn("slow query",
				"query_id", t.ID,
				"total", t.Total,
				"queries", t.Queries,
				"w", t.W, "k", t.K,
				"backend", t.Backend,
				"status", t.Status,
				"select", t.SpanDuration("select"),
				"scan", t.SpanDuration("scan"),
				"rerank", t.SpanDuration("rerank"),
				"merge", t.SpanDuration("merge"),
				"clusters_scanned", t.ClustersScanned,
				"escalated", t.Escalated,
				"effort", t.Effort,
			)
		}
	}
	rec.ring.Put(t)
}

// Recorded returns how many traces have been recorded and how many of
// those were slow.
func (rec *Recorder) Recorded() (total, slow uint64) {
	return rec.sampled.Load(), rec.slowQ.Load()
}

// Snapshot returns the retained traces, newest first.
func (rec *Recorder) Snapshot() []*Trace { return rec.ring.Snapshot() }

// Get returns the retained trace with the given ID, or nil.
func (rec *Recorder) Get(id string) *Trace { return rec.ring.Get(id) }
