// Package kmeans implements Lloyd's k-means with k-means++ seeding.
//
// It is the training substrate for both levels of the two-level PQ ANNS
// pipeline (Section II-C of the paper): the coarse clustering that
// produces the |C| centroids, and — run independently per sub-space — the
// per-codebook training that produces the k* codewords of each product
// quantizer codebook.
//
// Every pass (seeding, assignment, centroid reduction) is parallel and
// deterministic: work is split into fixed-size chunks whose boundaries
// depend only on the input size, floating-point partial sums are reduced
// in chunk order, and per-centroid accumulation always visits points in
// ascending row order. A fixed Seed therefore yields a bit-identical
// model for ANY Workers value.
package kmeans

import (
	"math/rand"

	"anna/internal/par"
	"anna/internal/vecmath"
)

// assignChunk is the fixed row-chunk size of every parallel pass. It is
// a constant of the algorithm, not a tuning knob: chunk boundaries (and
// with them the shape of every floating-point reduction) must not depend
// on the worker count.
const assignChunk = 1024

// Config controls a k-means run.
type Config struct {
	K        int   // number of clusters (must be >= 1)
	MaxIters int   // Lloyd iterations; default 25 when zero
	Seed     int64 // RNG seed for reproducible init
	// Workers bounds the parallelism of every pass (seeding distance
	// updates, assignment, centroid reduction); default GOMAXPROCS when
	// zero. The trained result is bit-identical for any value.
	Workers int
	// MaxSamples caps the sample actually used for training; zero
	// disables subsampling (all points used). Faiss trains coarse
	// quantizers on a subsample for speed; we reproduce that knob.
	MaxSamples int
	// SkipFinalAssign skips the full-data assignment pass that normally
	// runs after subsampled training, leaving Assign and Inertia
	// covering the training sample only. Callers that use nothing but
	// Centroids (pq codebook training) set it to save an O(N·K·D) scan.
	SkipFinalAssign bool
}

// Result holds a trained clustering.
type Result struct {
	Centroids *vecmath.Matrix // K x D
	// Assign[i] is the centroid index of input point i. When MaxSamples
	// subsampling is active, a final assignment pass still covers every
	// input row, so Assign spans the full data — unless SkipFinalAssign
	// was set, in which case it covers the training sample only.
	Assign []int32
	// Iters is the number of Lloyd iterations actually run.
	Iters int
	// Inertia is the sum of squared distances to the final centroids
	// over the same points Assign covers (the full input data, even when
	// MaxSamples restricted training to a subsample, unless
	// SkipFinalAssign). Distances come from the norms identity
	// ‖x−c‖² = ‖x‖² − 2·x·c + ‖c‖², clamped at zero per point.
	Inertia float64
}

// Train clusters the rows of data. It panics if cfg.K < 1 or if data has
// fewer rows than K.
func Train(data *vecmath.Matrix, cfg Config) *Result {
	if cfg.K < 1 {
		panic("kmeans: K must be >= 1")
	}
	if data.Rows < cfg.K {
		panic("kmeans: fewer points than clusters")
	}
	if cfg.MaxIters == 0 {
		cfg.MaxIters = 25
	}
	workers := par.Workers(cfg.Workers)
	rng := rand.New(rand.NewSource(cfg.Seed))

	train := data
	if cfg.MaxSamples > 0 && data.Rows > cfg.MaxSamples && cfg.MaxSamples >= cfg.K {
		train = sample(data, cfg.MaxSamples, rng)
	}

	xnorms := pointNorms(train, workers)
	cents := seedPlusPlus(train, xnorms, cfg.K, rng, workers)
	assign := make([]int32, train.Rows)
	counts := make([]int, cfg.K)
	cnorms := make([]float32, cfg.K)
	order := make([]int32, train.Rows)
	offs := make([]int, cfg.K+1)

	var inertia float64
	iters := 0
	for ; iters < cfg.MaxIters; iters++ {
		var moved int64
		inertia, moved = assignAll(train, xnorms, cents, cnorms, assign, workers)
		updateCentroids(train, cents, assign, counts, order, offs, workers)
		repairEmpty(train, cents, assign, counts, rng)
		if moved == 0 {
			iters++
			break
		}
	}

	// If we trained on a subsample, produce assignments for the full data.
	if train != data && !cfg.SkipFinalAssign {
		assign = make([]int32, data.Rows)
		inertia, _ = assignAll(data, pointNorms(data, workers), cents, cnorms, assign, workers)
	}

	return &Result{Centroids: cents, Assign: assign, Iters: iters, Inertia: inertia}
}

func sample(data *vecmath.Matrix, n int, rng *rand.Rand) *vecmath.Matrix {
	idx := rng.Perm(data.Rows)[:n]
	out := vecmath.NewMatrix(n, data.Cols)
	for i, r := range idx {
		out.SetRow(i, data.Row(r))
	}
	return out
}

// pointNorms computes ‖row‖² for every row of data.
func pointNorms(data *vecmath.Matrix, workers int) []float32 {
	n := make([]float32, data.Rows)
	par.Run(data.Rows, assignChunk, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			n[i] = vecmath.NormSq(data.Row(i))
		}
	})
	return n
}

func clamp0(v float32) float32 {
	if v < 0 {
		return 0
	}
	return v
}

// seedPlusPlus implements k-means++ initialisation. The per-centroid
// distance updates run in parallel over fixed chunks; the weighted draw
// itself stays serial on the caller's rng, so the chosen seeds depend
// only on (data, k, rng state), never on Workers.
func seedPlusPlus(data *vecmath.Matrix, xnorms []float32, k int, rng *rand.Rand, workers int) *vecmath.Matrix {
	cents := vecmath.NewMatrix(k, data.Cols)
	first := rng.Intn(data.Rows)
	cents.SetRow(0, data.Row(first))

	nchunks := par.NumChunks(data.Rows, assignChunk)
	partials := make([]float64, nchunks)
	dotBufs := make([][]float32, par.Workers(workers))
	dotBuf := func(w int) []float32 {
		if dotBufs[w] == nil {
			dotBufs[w] = make([]float32, assignChunk)
		}
		return dotBufs[w]
	}

	// dist[i] = squared distance of point i to its closest chosen
	// centroid (via the norms identity, clamped at zero).
	dist := make([]float64, data.Rows)
	cn := vecmath.NormSq(cents.Row(0))
	par.Run(data.Rows, assignChunk, workers, func(w, lo, hi int) {
		view := vecmath.Matrix{Rows: hi - lo, Cols: data.Cols, Data: data.Data[lo*data.Cols : hi*data.Cols]}
		dots := dotBuf(w)[:hi-lo]
		vecmath.DotBatch(dots, &view, cents.Row(0))
		var t float64
		for i := lo; i < hi; i++ {
			d := float64(clamp0(xnorms[i] + (cn - 2*dots[i-lo])))
			dist[i] = d
			t += d
		}
		partials[lo/assignChunk] = t
	})
	total := par.ReduceFloat64(partials)

	for c := 1; c < k; c++ {
		var pick int
		if total <= 0 {
			// All remaining points coincide with chosen centroids; pick
			// uniformly to keep K distinct rows (possibly duplicates).
			pick = rng.Intn(data.Rows)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = data.Rows - 1
			for i, d := range dist {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		cents.SetRow(c, data.Row(pick))
		// Update distances against the new centroid.
		cn = vecmath.NormSq(cents.Row(c))
		par.Run(data.Rows, assignChunk, workers, func(w, lo, hi int) {
			view := vecmath.Matrix{Rows: hi - lo, Cols: data.Cols, Data: data.Data[lo*data.Cols : hi*data.Cols]}
			dots := dotBuf(w)[:hi-lo]
			vecmath.DotBatch(dots, &view, cents.Row(c))
			var t float64
			for i := lo; i < hi; i++ {
				if d := float64(clamp0(xnorms[i] + (cn - 2*dots[i-lo]))); d < dist[i] {
					dist[i] = d
				}
				t += dist[i]
			}
			partials[lo/assignChunk] = t
		})
		total = par.ReduceFloat64(partials)
	}
	return cents
}

// assignAll assigns every point to its nearest centroid in parallel,
// returning the total inertia and the number of points whose assignment
// changed. cnorms is caller-provided scratch (len K) refilled here each
// call because centroids move between iterations. Per-chunk inertia
// partials are reduced in chunk order, so both results are independent
// of the worker count.
func assignAll(data *vecmath.Matrix, xnorms []float32, cents *vecmath.Matrix, cnorms []float32, assign []int32, workers int) (float64, int64) {
	for c := 0; c < cents.Rows; c++ {
		cnorms[c] = vecmath.NormSq(cents.Row(c))
	}
	type chunkStat struct {
		inertia float64
		moved   int64
	}
	stats := make([]chunkStat, par.NumChunks(data.Rows, assignChunk))
	par.Run(data.Rows, assignChunk, workers, func(_, lo, hi int) {
		var st chunkStat
		update := func(i, best int, bv float32) {
			if assign[i] != int32(best) {
				assign[i] = int32(best)
				st.moved++
			}
			st.inertia += float64(clamp0(xnorms[i] + bv))
		}
		i := lo
		for ; i+2 <= hi; i += 2 {
			ba, va, bb, vb := vecmath.ArgMinNormMinus2Dot2(cents, cnorms, data.Row(i), data.Row(i+1))
			update(i, ba, va)
			update(i+1, bb, vb)
		}
		for ; i < hi; i++ {
			best, bv := vecmath.ArgMinNormMinus2Dot(cents, cnorms, data.Row(i))
			update(i, best, bv)
		}
		stats[lo/assignChunk] = st
	})
	var inertia float64
	var moved int64
	for _, st := range stats {
		inertia += st.inertia
		moved += st.moved
	}
	return inertia, moved
}

// updateCentroids recomputes every centroid as the mean of its members.
// A counting sort over assignments builds a per-centroid member list in
// ascending row order; centroids are then reduced in parallel, each one
// summing its members in that fixed order — the identical floating-point
// sequence the old serial accumulation produced, for any Workers.
func updateCentroids(data *vecmath.Matrix, cents *vecmath.Matrix, assign []int32, counts []int, order []int32, offs []int, workers int) {
	for i := range counts {
		counts[i] = 0
	}
	for _, a := range assign {
		counts[a]++
	}
	offs[0] = 0
	for c, n := range counts {
		offs[c+1] = offs[c] + n
	}
	fill := make([]int, cents.Rows)
	copy(fill, offs[:cents.Rows])
	for i, a := range assign {
		order[fill[a]] = int32(i)
		fill[a]++
	}
	par.Run(cents.Rows, 1, workers, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			row := cents.Row(c)
			for i := range row {
				row[i] = 0
			}
			members := order[offs[c]:offs[c+1]]
			for _, r := range members {
				vecmath.Add(row, row, data.Row(int(r)))
			}
			if len(members) > 0 {
				vecmath.Scale(row, 1/float32(len(members)))
			}
		}
	})
}

// repairEmpty re-seeds any empty centroid by splitting the largest cluster,
// the standard Faiss empty-cluster policy.
func repairEmpty(data *vecmath.Matrix, cents *vecmath.Matrix, assign []int32, counts []int, rng *rand.Rand) {
	for c := range counts {
		if counts[c] > 0 {
			continue
		}
		// Find the largest cluster and steal one of its points.
		big := 0
		for j := range counts {
			if counts[j] > counts[big] {
				big = j
			}
		}
		if counts[big] <= 1 {
			continue // nothing to split
		}
		for i := 0; i < data.Rows; i++ {
			if int(assign[i]) == big {
				cents.SetRow(c, data.Row(i))
				// Perturb slightly so the two centroids diverge next round.
				row := cents.Row(c)
				for d := range row {
					row[d] += (rng.Float32() - 0.5) * 1e-4
				}
				assign[i] = int32(c)
				counts[c]++
				counts[big]--
				break
			}
		}
	}
}

// AssignOne returns the nearest centroid index for vector v. It is the
// scalar reference path (exact per-centroid L2); the batched Assigner
// below agrees with it except on exact floating-point ties, where the
// norms-identity arithmetic may round differently.
func AssignOne(cents *vecmath.Matrix, v []float32) int {
	best, bd := 0, vecmath.L2Sq(v, cents.Row(0))
	for c := 1; c < cents.Rows; c++ {
		if d := vecmath.L2Sq(v, cents.Row(c)); d < bd {
			best, bd = c, d
		}
	}
	return best
}

// Assigner performs batched nearest-centroid assignment against a fixed
// centroid table, with ‖c‖² precomputed once so each candidate costs a
// single blocked dot product. The centroid matrix must not change after
// construction. Safe for concurrent AssignBatch calls.
type Assigner struct {
	cents *vecmath.Matrix
	norms []float32
}

// NewAssigner precomputes the squared centroid norms for cents.
func NewAssigner(cents *vecmath.Matrix) *Assigner {
	a := &Assigner{cents: cents, norms: make([]float32, cents.Rows)}
	for c := 0; c < cents.Rows; c++ {
		a.norms[c] = vecmath.NormSq(cents.Row(c))
	}
	return a
}

// AssignBatch writes the nearest-centroid index of every row of data
// into assign (len data.Rows), sharding rows over workers (0 =
// GOMAXPROCS) in fixed chunks. Each row's result is independent of every
// other, so the output is identical for any worker count.
func (a *Assigner) AssignBatch(assign []int32, data *vecmath.Matrix, workers int) {
	if data.Cols != a.cents.Cols {
		panic("kmeans: AssignBatch dimension mismatch")
	}
	if len(assign) != data.Rows {
		panic("kmeans: AssignBatch assign length mismatch")
	}
	par.Run(data.Rows, assignChunk, workers, func(_, lo, hi int) {
		i := lo
		for ; i+2 <= hi; i += 2 {
			ba, _, bb, _ := vecmath.ArgMinNormMinus2Dot2(a.cents, a.norms, data.Row(i), data.Row(i+1))
			assign[i] = int32(ba)
			assign[i+1] = int32(bb)
		}
		for ; i < hi; i++ {
			best, _ := vecmath.ArgMinNormMinus2Dot(a.cents, a.norms, data.Row(i))
			assign[i] = int32(best)
		}
	})
}
