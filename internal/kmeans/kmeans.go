// Package kmeans implements Lloyd's k-means with k-means++ seeding.
//
// It is the training substrate for both levels of the two-level PQ ANNS
// pipeline (Section II-C of the paper): the coarse clustering that
// produces the |C| centroids, and — run independently per sub-space — the
// per-codebook training that produces the k* codewords of each product
// quantizer codebook.
package kmeans

import (
	"math/rand"
	"runtime"
	"sync"

	"anna/internal/vecmath"
)

// Config controls a k-means run.
type Config struct {
	K        int   // number of clusters (must be >= 1)
	MaxIters int   // Lloyd iterations; default 25 when zero
	Seed     int64 // RNG seed for reproducible init
	// Workers bounds assignment parallelism; default GOMAXPROCS when zero.
	Workers int
	// MinPointsPerCentroid caps the sample actually used for training;
	// zero disables subsampling (all points used). Faiss trains coarse
	// quantizers on a subsample for speed; we reproduce that knob.
	MaxSamples int
}

// Result holds a trained clustering.
type Result struct {
	Centroids *vecmath.Matrix // K x D
	// Assign[i] is the centroid index of training point i (only points
	// that participated in training when subsampling is active).
	Assign []int32
	// Iters is the number of Lloyd iterations actually run.
	Iters int
	// Inertia is the final sum of squared distances of training points to
	// their centroids.
	Inertia float64
}

// Train clusters the rows of data. It panics if cfg.K < 1 or if data has
// fewer rows than K.
func Train(data *vecmath.Matrix, cfg Config) *Result {
	if cfg.K < 1 {
		panic("kmeans: K must be >= 1")
	}
	if data.Rows < cfg.K {
		panic("kmeans: fewer points than clusters")
	}
	if cfg.MaxIters == 0 {
		cfg.MaxIters = 25
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	train := data
	if cfg.MaxSamples > 0 && data.Rows > cfg.MaxSamples && cfg.MaxSamples >= cfg.K {
		train = sample(data, cfg.MaxSamples, rng)
	}

	cents := seedPlusPlus(train, cfg.K, rng)
	assign := make([]int32, train.Rows)
	counts := make([]int, cfg.K)

	var inertia float64
	iters := 0
	for ; iters < cfg.MaxIters; iters++ {
		var moved int64
		inertia = assignAll(train, cents, assign, cfg.Workers, &moved)
		updateCentroids(train, cents, assign, counts)
		repairEmpty(train, cents, assign, counts, rng)
		if moved == 0 {
			iters++
			break
		}
	}

	// If we trained on a subsample, produce assignments for the full data.
	if train != data {
		assign = make([]int32, data.Rows)
		var moved int64
		inertia = assignAll(data, cents, assign, cfg.Workers, &moved)
	}

	return &Result{Centroids: cents, Assign: assign, Iters: iters, Inertia: inertia}
}

func sample(data *vecmath.Matrix, n int, rng *rand.Rand) *vecmath.Matrix {
	idx := rng.Perm(data.Rows)[:n]
	out := vecmath.NewMatrix(n, data.Cols)
	for i, r := range idx {
		out.SetRow(i, data.Row(r))
	}
	return out
}

// seedPlusPlus implements k-means++ initialisation.
func seedPlusPlus(data *vecmath.Matrix, k int, rng *rand.Rand) *vecmath.Matrix {
	cents := vecmath.NewMatrix(k, data.Cols)
	first := rng.Intn(data.Rows)
	cents.SetRow(0, data.Row(first))

	// dist[i] = squared distance of point i to its closest chosen centroid.
	dist := make([]float64, data.Rows)
	var total float64
	for i := 0; i < data.Rows; i++ {
		d := float64(vecmath.L2Sq(data.Row(i), cents.Row(0)))
		dist[i] = d
		total += d
	}

	for c := 1; c < k; c++ {
		var pick int
		if total <= 0 {
			// All remaining points coincide with chosen centroids; pick
			// uniformly to keep K distinct rows (possibly duplicates).
			pick = rng.Intn(data.Rows)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = data.Rows - 1
			for i, d := range dist {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		cents.SetRow(c, data.Row(pick))
		// Update distances against the new centroid.
		total = 0
		for i := 0; i < data.Rows; i++ {
			d := float64(vecmath.L2Sq(data.Row(i), cents.Row(c)))
			if d < dist[i] {
				dist[i] = d
			}
			total += dist[i]
		}
	}
	return cents
}

// assignAll assigns every point to its nearest centroid in parallel,
// returning the total inertia and counting points whose assignment changed.
func assignAll(data *vecmath.Matrix, cents *vecmath.Matrix, assign []int32, workers int, moved *int64) float64 {
	if workers < 1 {
		workers = 1
	}
	type chunkStat struct {
		inertia float64
		moved   int64
	}
	stats := make([]chunkStat, workers)
	var wg sync.WaitGroup
	chunk := (data.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > data.Rows {
			hi = data.Rows
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var st chunkStat
			for i := lo; i < hi; i++ {
				row := data.Row(i)
				best, bd := 0, vecmath.L2Sq(row, cents.Row(0))
				for c := 1; c < cents.Rows; c++ {
					if d := vecmath.L2Sq(row, cents.Row(c)); d < bd {
						best, bd = c, d
					}
				}
				if assign[i] != int32(best) {
					assign[i] = int32(best)
					st.moved++
				}
				st.inertia += float64(bd)
			}
			stats[w] = st
		}(w, lo, hi)
	}
	wg.Wait()
	var inertia float64
	for _, st := range stats {
		inertia += st.inertia
		*moved += st.moved
	}
	return inertia
}

func updateCentroids(data *vecmath.Matrix, cents *vecmath.Matrix, assign []int32, counts []int) {
	for i := range counts {
		counts[i] = 0
	}
	for i := range cents.Data {
		cents.Data[i] = 0
	}
	for i := 0; i < data.Rows; i++ {
		c := assign[i]
		counts[c]++
		vecmath.Add(cents.Row(int(c)), cents.Row(int(c)), data.Row(i))
	}
	for c := range counts {
		if counts[c] > 0 {
			vecmath.Scale(cents.Row(c), 1/float32(counts[c]))
		}
	}
}

// repairEmpty re-seeds any empty centroid by splitting the largest cluster,
// the standard Faiss empty-cluster policy.
func repairEmpty(data *vecmath.Matrix, cents *vecmath.Matrix, assign []int32, counts []int, rng *rand.Rand) {
	for c := range counts {
		if counts[c] > 0 {
			continue
		}
		// Find the largest cluster and steal one of its points.
		big := 0
		for j := range counts {
			if counts[j] > counts[big] {
				big = j
			}
		}
		if counts[big] <= 1 {
			continue // nothing to split
		}
		for i := 0; i < data.Rows; i++ {
			if int(assign[i]) == big {
				cents.SetRow(c, data.Row(i))
				// Perturb slightly so the two centroids diverge next round.
				row := cents.Row(c)
				for d := range row {
					row[d] += (rng.Float32() - 0.5) * 1e-4
				}
				assign[i] = int32(c)
				counts[c]++
				counts[big]--
				break
			}
		}
	}
}

// AssignOne returns the nearest centroid index for vector v.
func AssignOne(cents *vecmath.Matrix, v []float32) int {
	best, bd := 0, vecmath.L2Sq(v, cents.Row(0))
	for c := 1; c < cents.Rows; c++ {
		if d := vecmath.L2Sq(v, cents.Row(c)); d < bd {
			best, bd = c, d
		}
	}
	return best
}
