package kmeans

import (
	"math/rand"
	"testing"

	"anna/internal/vecmath"
)

// blob generates n points around each of the given centers with the given
// standard deviation.
func blob(centers [][]float32, nPer int, std float32, seed int64) *vecmath.Matrix {
	rng := rand.New(rand.NewSource(seed))
	d := len(centers[0])
	m := vecmath.NewMatrix(len(centers)*nPer, d)
	for c, ctr := range centers {
		for i := 0; i < nPer; i++ {
			row := m.Row(c*nPer + i)
			for j := 0; j < d; j++ {
				row[j] = ctr[j] + float32(rng.NormFloat64())*std
			}
		}
	}
	return m
}

func TestTrainSeparatedBlobs(t *testing.T) {
	centers := [][]float32{{0, 0}, {10, 10}, {-10, 10}}
	data := blob(centers, 100, 0.5, 1)
	res := Train(data, Config{K: 3, Seed: 42})

	if res.Centroids.Rows != 3 || res.Centroids.Cols != 2 {
		t.Fatalf("centroid shape %dx%d", res.Centroids.Rows, res.Centroids.Cols)
	}
	// Each true center must have a learned centroid within distance 1.
	for _, ctr := range centers {
		found := false
		for c := 0; c < 3; c++ {
			if vecmath.L2Sq(ctr, res.Centroids.Row(c)) < 1 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no centroid near %v: %v", ctr, res.Centroids.Data)
		}
	}
	// All points in a blob share an assignment.
	for b := 0; b < 3; b++ {
		a := res.Assign[b*100]
		for i := 1; i < 100; i++ {
			if res.Assign[b*100+i] != a {
				t.Errorf("blob %d split across clusters", b)
				break
			}
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	data := blob([][]float32{{0, 0}, {5, 5}}, 50, 1, 2)
	a := Train(data, Config{K: 2, Seed: 7})
	b := Train(data, Config{K: 2, Seed: 7})
	for i := range a.Centroids.Data {
		if a.Centroids.Data[i] != b.Centroids.Data[i] {
			t.Fatal("same seed produced different centroids")
		}
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestInertiaDecreasesWithIterations(t *testing.T) {
	data := blob([][]float32{{0, 0}, {3, 3}, {6, 0}, {0, 6}}, 80, 1.5, 3)
	one := Train(data, Config{K: 4, Seed: 9, MaxIters: 1})
	many := Train(data, Config{K: 4, Seed: 9, MaxIters: 30})
	if many.Inertia > one.Inertia*1.0001 {
		t.Errorf("inertia increased: 1 iter %v, 30 iters %v", one.Inertia, many.Inertia)
	}
}

func TestEveryClusterNonEmpty(t *testing.T) {
	// More clusters than natural groups forces empty-cluster repair.
	data := blob([][]float32{{0, 0}}, 200, 1, 4)
	res := Train(data, Config{K: 16, Seed: 5})
	counts := make([]int, 16)
	for _, a := range res.Assign {
		counts[a]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Errorf("cluster %d empty after repair", c)
		}
	}
}

func TestKEqualsN(t *testing.T) {
	data := vecmath.NewMatrix(4, 2)
	data.SetRow(0, []float32{0, 0})
	data.SetRow(1, []float32{1, 0})
	data.SetRow(2, []float32{0, 1})
	data.SetRow(3, []float32{1, 1})
	res := Train(data, Config{K: 4, Seed: 1})
	if res.Inertia > 1e-6 {
		t.Errorf("K==N should reach zero inertia, got %v", res.Inertia)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	data := vecmath.NewMatrix(2, 2)
	for _, cfg := range []Config{{K: 0}, {K: 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for cfg %+v", cfg)
				}
			}()
			Train(data, cfg)
		}()
	}
}

func TestSubsampledTraining(t *testing.T) {
	data := blob([][]float32{{0, 0}, {20, 20}}, 500, 0.5, 6)
	res := Train(data, Config{K: 2, Seed: 8, MaxSamples: 100})
	// Assignments must cover the FULL dataset even though training used
	// a subsample.
	if len(res.Assign) != data.Rows {
		t.Fatalf("Assign len %d, want %d", len(res.Assign), data.Rows)
	}
	if res.Assign[0] == res.Assign[data.Rows-1] {
		t.Error("well separated blobs assigned to the same cluster")
	}
}

func TestAssignOne(t *testing.T) {
	cents := vecmath.NewMatrix(2, 2)
	cents.SetRow(0, []float32{0, 0})
	cents.SetRow(1, []float32{10, 10})
	if got := AssignOne(cents, []float32{1, 1}); got != 0 {
		t.Errorf("AssignOne near origin = %d", got)
	}
	if got := AssignOne(cents, []float32{9, 9}); got != 1 {
		t.Errorf("AssignOne near (10,10) = %d", got)
	}
}

func TestSingleWorkerMatchesParallel(t *testing.T) {
	data := blob([][]float32{{0, 0}, {8, 8}, {-8, 8}}, 120, 1, 10)
	seq := Train(data, Config{K: 3, Seed: 13, Workers: 1})
	par := Train(data, Config{K: 3, Seed: 13, Workers: 8})
	for i := range seq.Assign {
		if seq.Assign[i] != par.Assign[i] {
			t.Fatal("worker count changed the result")
		}
	}
}

func BenchmarkTrain(b *testing.B) {
	data := blob([][]float32{{0, 0}, {5, 5}, {-5, 5}, {5, -5}}, 250, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(data, Config{K: 4, Seed: int64(i), MaxIters: 10})
	}
}

func TestDegenerateDuplicatePoints(t *testing.T) {
	// Many exact duplicates force empty clusters and exercise the
	// repair-by-splitting path (including the counts<=1 guard).
	m := vecmath.NewMatrix(12, 2)
	for i := 0; i < 10; i++ {
		m.SetRow(i, []float32{1, 1})
	}
	m.SetRow(10, []float32{5, 5})
	m.SetRow(11, []float32{-5, -5})
	res := Train(m, Config{K: 4, Seed: 3, MaxIters: 10})
	// Every assignment must be a valid cluster index and inertia finite.
	for i, a := range res.Assign {
		if a < 0 || int(a) >= 4 {
			t.Fatalf("assign[%d] = %d", i, a)
		}
	}
	if res.Inertia < 0 {
		t.Fatalf("inertia %v", res.Inertia)
	}
	// The two outliers must not share a cluster with each other after
	// convergence (they are the farthest-apart points).
	if res.Assign[10] == res.Assign[11] {
		t.Errorf("outliers merged: %v", res.Assign)
	}
}

func TestAllPointsIdentical(t *testing.T) {
	m := vecmath.NewMatrix(8, 2)
	for i := 0; i < 8; i++ {
		m.SetRow(i, []float32{2, 3})
	}
	res := Train(m, Config{K: 3, Seed: 1, MaxIters: 5})
	if res.Inertia > 1e-3 {
		t.Errorf("identical points inertia %v", res.Inertia)
	}
}
