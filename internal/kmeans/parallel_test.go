package kmeans

import (
	"testing"

	"anna/internal/vecmath"
)

// Train must be bit-identical for any Workers value: same centroids,
// same assignments, same Inertia — with and without MaxSamples.
func TestTrainBitIdenticalAcrossWorkers(t *testing.T) {
	data := blob([][]float32{{0, 0, 0, 0}, {6, 6, 0, 0}, {-6, 6, 3, 3}, {0, -6, -3, 3}}, 700, 1.2, 21)
	for _, maxSamples := range []int{0, 900} {
		ref := Train(data, Config{K: 8, Seed: 17, MaxIters: 12, Workers: 1, MaxSamples: maxSamples})
		for _, w := range []int{2, 3, 4, 13} {
			got := Train(data, Config{K: 8, Seed: 17, MaxIters: 12, Workers: w, MaxSamples: maxSamples})
			for i := range ref.Centroids.Data {
				if got.Centroids.Data[i] != ref.Centroids.Data[i] {
					t.Fatalf("maxSamples=%d workers=%d: centroid data differs at %d: %v vs %v",
						maxSamples, w, i, got.Centroids.Data[i], ref.Centroids.Data[i])
				}
			}
			if len(got.Assign) != len(ref.Assign) {
				t.Fatalf("maxSamples=%d workers=%d: Assign len %d vs %d",
					maxSamples, w, len(got.Assign), len(ref.Assign))
			}
			for i := range ref.Assign {
				if got.Assign[i] != ref.Assign[i] {
					t.Fatalf("maxSamples=%d workers=%d: Assign[%d] differs", maxSamples, w, i)
				}
			}
			if got.Inertia != ref.Inertia {
				t.Fatalf("maxSamples=%d workers=%d: Inertia %v vs %v",
					maxSamples, w, got.Inertia, ref.Inertia)
			}
			if got.Iters != ref.Iters {
				t.Fatalf("maxSamples=%d workers=%d: Iters %d vs %d",
					maxSamples, w, got.Iters, ref.Iters)
			}
		}
	}
}

// Under MaxSamples subsampling, Assign and Inertia must cover the FULL
// input (the documented contract): Inertia equals the brute-force sum of
// squared distances of every input row to its assigned final centroid.
func TestInertiaCoversFullDataUnderMaxSamples(t *testing.T) {
	data := blob([][]float32{{0, 0, 0}, {9, 9, 9}, {-9, 9, 0}}, 400, 1, 22)
	res := Train(data, Config{K: 3, Seed: 5, MaxIters: 10, MaxSamples: 300})
	if len(res.Assign) != data.Rows {
		t.Fatalf("Assign len %d, want full data %d", len(res.Assign), data.Rows)
	}
	var want float64
	for i := 0; i < data.Rows; i++ {
		c := res.Centroids.Row(int(res.Assign[i]))
		want += float64(vecmath.L2Sq(data.Row(i), c))
	}
	rel := (res.Inertia - want) / want
	if rel < 0 {
		rel = -rel
	}
	if rel > 1e-4 {
		t.Errorf("Inertia %v, brute force over full data %v (rel %v)", res.Inertia, want, rel)
	}
	// Each assignment must actually be the nearest centroid.
	for i := 0; i < data.Rows; i += 37 {
		if want := AssignOne(res.Centroids, data.Row(i)); int32(want) != res.Assign[i] {
			t.Fatalf("Assign[%d] = %d, nearest is %d", i, res.Assign[i], want)
		}
	}
}

// SkipFinalAssign must skip the full-data pass: Assign covers the
// training sample only, while the centroids are unchanged.
func TestSkipFinalAssign(t *testing.T) {
	data := blob([][]float32{{0, 0}, {7, 7}}, 500, 1, 23)
	full := Train(data, Config{K: 2, Seed: 9, MaxIters: 8, MaxSamples: 200})
	skip := Train(data, Config{K: 2, Seed: 9, MaxIters: 8, MaxSamples: 200, SkipFinalAssign: true})
	for i := range full.Centroids.Data {
		if full.Centroids.Data[i] != skip.Centroids.Data[i] {
			t.Fatal("SkipFinalAssign changed the trained centroids")
		}
	}
	if len(skip.Assign) != 200 {
		t.Errorf("SkipFinalAssign Assign len %d, want sample size 200", len(skip.Assign))
	}
	if len(full.Assign) != data.Rows {
		t.Errorf("full Assign len %d, want %d", len(full.Assign), data.Rows)
	}
}

// The batched Assigner must agree with the scalar AssignOne reference on
// fixed-seed data, and be invariant to the worker count.
func TestAssignerMatchesAssignOne(t *testing.T) {
	data := blob([][]float32{{0, 0, 0, 0, 0, 0, 0, 0}, {4, 4, 4, 4, 0, 0, 0, 0}, {-4, 0, 4, 0, -4, 0, 4, 0}}, 400, 1.5, 24)
	res := Train(data, Config{K: 6, Seed: 31, MaxIters: 8})
	a := NewAssigner(res.Centroids)
	got := make([]int32, data.Rows)
	a.AssignBatch(got, data, 1)
	for i := 0; i < data.Rows; i++ {
		if want := AssignOne(res.Centroids, data.Row(i)); int32(want) != got[i] {
			t.Fatalf("row %d: AssignBatch %d, AssignOne %d", i, got[i], want)
		}
	}
	for _, w := range []int{2, 5} {
		batch := make([]int32, data.Rows)
		a.AssignBatch(batch, data, w)
		for i := range got {
			if batch[i] != got[i] {
				t.Fatalf("workers=%d: AssignBatch differs at row %d", w, i)
			}
		}
	}
}

func TestAssignBatchPanics(t *testing.T) {
	cents := vecmath.NewMatrix(2, 3)
	a := NewAssigner(cents)
	for name, fn := range map[string]func(){
		"dim": func() {
			a.AssignBatch(make([]int32, 2), vecmath.NewMatrix(2, 4), 1)
		},
		"len": func() {
			a.AssignBatch(make([]int32, 1), vecmath.NewMatrix(2, 3), 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
