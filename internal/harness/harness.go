// Package harness regenerates every table and figure of the paper's
// evaluation (Section V): Figure 8 (throughput vs recall), Figure 9
// (latency), Figure 10 (energy efficiency), Table I (area/power), the
// Section V-B memory-traffic-optimization speedups, the exhaustive-search
// QPS footnotes, the related-work comparisons, the Figure 7 timeline, and
// the design-space ablations DESIGN.md calls out.
//
// Methodology: recall is MEASURED by running the functional search on
// scaled synthetic datasets (the paper's datasets are not
// redistributable; see DESIGN.md); throughput/latency/energy at the
// paper's full scale are PROJECTED with the closed-form ANNA model
// (validated against the event simulator on the scaled indexes) and the
// calibrated CPU/GPU cost models. Every experiment also reports the
// simulator's measured numbers at the scaled size where feasible.
package harness

import (
	"fmt"
	"io"
	"sync"

	"anna/internal/anna"
	"anna/internal/dataset"
	"anna/internal/exact"
	"anna/internal/ivf"
	"anna/internal/pq"
)

// Scale controls how far the paper's workloads are scaled down to run on
// a development machine. Paper-scale throughput numbers are extrapolated
// per DESIGN.md; recall comes from these scaled runs.
type Scale struct {
	// MillionN / BillionN are the database sizes standing in for the 1M
	// and 1B datasets.
	MillionN, BillionN int
	// MillionC / BillionC are the cluster counts (paper: 250 / 10000).
	MillionC, BillionC int
	// Queries is the evaluation batch size for recall measurement.
	Queries int
	// RecallX/RecallY define the quality metric recall X@Y (the scaled
	// stand-in for the paper's 100@1000; Y is also the per-query k).
	RecallX, RecallY int
	// WSweep is the list of W values per curve.
	WSweep []int
	// TrainCap bounds k-means training samples per index build.
	TrainCap int
	Seed     int64
	Workers  int
}

// FullScale is the default reproduction scale: large enough for stable
// recall curves, small enough for a minutes-long run on a single core.
func FullScale() Scale {
	return Scale{
		MillionN: 30000, BillionN: 50000,
		MillionC: 250, BillionC: 500,
		Queries: 64, RecallX: 10, RecallY: 100,
		WSweep:   []int{1, 2, 4, 8, 16, 32, 64, 128},
		TrainCap: 6000, Seed: 42,
	}
}

// QuickScale is a reduced scale for unit tests and `go test -bench`.
func QuickScale() Scale {
	return Scale{
		MillionN: 8000, BillionN: 12000,
		MillionC: 48, BillionC: 96,
		Queries: 24, RecallX: 5, RecallY: 50,
		WSweep:   []int{1, 2, 4, 8, 16},
		TrainCap: 4000, Seed: 42,
	}
}

// PaperB and PaperK are the paper's batch size and top-k.
const (
	PaperB = 1000
	PaperK = 1000
)

// WorkloadDef identifies one of the paper's six datasets.
type WorkloadDef struct {
	Key     string
	Million bool // million-scale (else billion-scale)
	PaperN  int
	PaperC  int
	Spec    func(n, q int, seed int64) dataset.Spec
}

// Workloads lists the paper's evaluation datasets (Section V-A).
func Workloads() []WorkloadDef {
	return []WorkloadDef{
		{Key: "SIFT1M", Million: true, PaperN: 1_000_000, PaperC: 250, Spec: dataset.SIFTLike},
		{Key: "Deep1M", Million: true, PaperN: 1_000_000, PaperC: 250, Spec: dataset.DeepLike},
		{Key: "GloVe1M", Million: true, PaperN: 1_000_000, PaperC: 250, Spec: dataset.GloVeLike},
		{Key: "SIFT1B", Million: false, PaperN: 1_000_000_000, PaperC: 10000, Spec: dataset.SIFTLike},
		{Key: "Deep1B", Million: false, PaperN: 1_000_000_000, PaperC: 10000, Spec: dataset.DeepLike},
		{Key: "TTI1B", Million: false, PaperN: 1_000_000_000, PaperC: 10000, Spec: dataset.TTILike},
	}
}

// WorkloadByKey returns the named workload definition.
func WorkloadByKey(key string) (WorkloadDef, error) {
	for _, w := range Workloads() {
		if w.Key == key {
			return w, nil
		}
	}
	return WorkloadDef{}, fmt.Errorf("harness: unknown workload %q", key)
}

// Compression is one of the paper's compression-ratio setups.
type Compression struct {
	Name string
	// MFor returns the sub-space count for a dimensionality and k*
	// (Section V-B: 4:1 uses M=D/2 for k*=256 and M=D for k*=16; 8:1
	// halves both).
	MFor func(d, ks int) int
}

// Compressions returns the paper's 4:1 and 8:1 setups.
func Compressions() []Compression {
	return []Compression{
		{Name: "4:1", MFor: func(d, ks int) int {
			if ks == 256 {
				return d / 2
			}
			return d
		}},
		{Name: "8:1", MFor: func(d, ks int) int {
			if ks == 256 {
				return d / 4
			}
			return d / 2
		}},
	}
}

// CompressionByName returns the named compression setup.
func CompressionByName(name string) (Compression, error) {
	for _, c := range Compressions() {
		if c.Name == name {
			return c, nil
		}
	}
	return Compression{}, fmt.Errorf("harness: unknown compression %q", name)
}

// Harness runs experiments and writes human-readable reports to Out.
type Harness struct {
	Scale Scale
	Out   io.Writer

	mu      sync.Mutex
	dsCache map[string]*dataset.Dataset
	gtCache map[string][][]int64
	ixCache map[string]*ivf.Index
	rcCache map[string]map[int]float64
}

// New returns a harness writing to out.
func New(scale Scale, out io.Writer) *Harness {
	return &Harness{
		Scale:   scale,
		Out:     out,
		dsCache: make(map[string]*dataset.Dataset),
		gtCache: make(map[string][][]int64),
		ixCache: make(map[string]*ivf.Index),
		rcCache: make(map[string]map[int]float64),
	}
}

func (h *Harness) printf(format string, args ...any) {
	fmt.Fprintf(h.Out, format, args...)
}

// scaledNC returns the scaled N and |C| for a workload.
func (h *Harness) scaledNC(w WorkloadDef) (n, c int) {
	if w.Million {
		return h.Scale.MillionN, h.Scale.MillionC
	}
	return h.Scale.BillionN, h.Scale.BillionC
}

// Dataset returns (building and caching) the scaled dataset for a
// workload.
func (h *Harness) Dataset(w WorkloadDef) *dataset.Dataset {
	n, _ := h.scaledNC(w)
	key := fmt.Sprintf("%s/%d/%d", w.Key, n, h.Scale.Queries)
	h.mu.Lock()
	ds, ok := h.dsCache[key]
	h.mu.Unlock()
	if ok {
		return ds
	}
	ds = dataset.Generate(w.Spec(n, h.Scale.Queries, h.Scale.Seed))
	h.mu.Lock()
	h.dsCache[key] = ds
	h.mu.Unlock()
	return ds
}

// GroundTruth returns (computing and caching) exact top-RecallY IDs for
// the workload's queries.
func (h *Harness) GroundTruth(w WorkloadDef) [][]int64 {
	ds := h.Dataset(w)
	key := fmt.Sprintf("%s/%d/%d/%d", w.Key, ds.N(), h.Scale.Queries, h.Scale.RecallY)
	h.mu.Lock()
	gt, ok := h.gtCache[key]
	h.mu.Unlock()
	if ok {
		return gt
	}
	gt = exact.New(ds.Metric, ds.Base).GroundTruth(ds.Queries, h.Scale.RecallY)
	h.mu.Lock()
	h.gtCache[key] = gt
	h.mu.Unlock()
	return gt
}

// ScaNNEta is the anisotropic weight used for the ScaNN-model variant on
// inner-product datasets (score-aware encoding; see pq.EncodeAnisotropic).
const ScaNNEta = 4

// Index returns (building and caching) the scaled trained index for a
// workload, k*, and compression setup — the Faiss-objective model.
func (h *Harness) Index(w WorkloadDef, comp Compression, ks int) *ivf.Index {
	return h.IndexEta(w, comp, ks, 0)
}

// ScaNNIndex returns the ScaNN-objective model: anisotropic encoding for
// inner-product datasets (for L2 datasets the objectives coincide and
// the Faiss model is returned). The paper trains each dataset separately
// per library because "both algorithms utilize different objective
// functions to train codebook"; this reproduces that distinction.
func (h *Harness) ScaNNIndex(w WorkloadDef, comp Compression, ks int) *ivf.Index {
	if h.Dataset(w).Metric != pq.InnerProduct {
		return h.Index(w, comp, ks)
	}
	return h.IndexEta(w, comp, ks, ScaNNEta)
}

// IndexEta builds and caches an index with an explicit anisotropic
// encoding weight.
func (h *Harness) IndexEta(w WorkloadDef, comp Compression, ks int, eta float32) *ivf.Index {
	ds := h.Dataset(w)
	_, c := h.scaledNC(w)
	m := comp.MFor(ds.D(), ks)
	key := fmt.Sprintf("%s/%s/ks%d/m%d/c%d/n%d/eta%g", w.Key, comp.Name, ks, m, c, ds.N(), eta)
	h.mu.Lock()
	idx, ok := h.ixCache[key]
	h.mu.Unlock()
	if ok {
		return idx
	}
	idx = ivf.Build(ds.Base, ds.Metric, ivf.Config{
		NClusters: c, M: m, Ks: ks,
		CoarseIters: 6, PQIters: 6,
		MaxTrain: h.Scale.TrainCap,
		Seed:     h.Scale.Seed, Workers: h.Scale.Workers,
		F16:            true,
		AnisotropicEta: eta,
	})
	h.mu.Lock()
	h.ixCache[key] = idx
	h.mu.Unlock()
	return idx
}

// PaperGeometry returns the full-scale analytic geometry for a workload
// under a compression setup and k*.
func (h *Harness) PaperGeometry(w WorkloadDef, comp Compression, ks int) anna.Geometry {
	ds := h.Dataset(w)
	return anna.Geometry{
		N: w.PaperN, D: ds.D(), M: comp.MFor(ds.D(), ks), Ks: ks,
		C: w.PaperC, Metric: ds.Metric,
	}
}

// wSweepFor clips the configured W sweep to the scaled cluster count.
func (h *Harness) wSweepFor(w WorkloadDef) []int {
	_, c := h.scaledNC(w)
	out := make([]int, 0, len(h.Scale.WSweep))
	for _, v := range h.Scale.WSweep {
		if v <= c {
			out = append(out, v)
		}
	}
	return out
}

// metricName returns a human label for a workload's metric.
func metricName(m pq.Metric) string {
	if m == pq.InnerProduct {
		return "inner product"
	}
	return "L2 distance"
}
