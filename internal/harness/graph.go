package harness

import (
	"time"

	"anna/internal/engine"
	"anna/internal/hnsw"
	"anna/internal/ivfflat"
	"anna/internal/recall"
	"anna/internal/topk"
)

// GraphRow is one point of the graph-vs-compression comparison
// (Sections II-A and VI: graph-based ANNS wins at million scale but its
// memory footprint rules it out at billion scale).
type GraphRow struct {
	System string // "HNSW(ef=..)" or "IVF-PQ(W=..)"
	Recall float64
	// MeasuredQPS is this process's wall-clock throughput on the scaled
	// dataset (single machine, same hardware for both systems).
	MeasuredQPS float64
	// MemoryBytes is the index footprint at the scaled size.
	MemoryBytes int64
}

// GraphComparison is the full experiment result.
type GraphComparison struct {
	Workload string
	Rows     []GraphRow
	// Billion-scale footprint projections (the feasibility argument).
	HNSWBillionBytes int64
	PQBillionBytes   int64
	MachineRAMBytes  int64
}

// RunGraph compares HNSW against the IVF-PQ index on a million-scale
// workload: measured recall/QPS trade-off plus memory footprints, with
// billion-scale projections.
func (h *Harness) RunGraph(wd WorkloadDef) GraphComparison {
	ds := h.Dataset(wd)
	gt := h.GroundTruth(wd)
	comp, _ := CompressionByName("4:1")
	idx := h.Index(wd, comp, 256)

	out := GraphComparison{
		Workload:        wd.Key,
		MachineRAMBytes: 128 << 30, // the evaluated CPU host's 128 GB
	}

	// HNSW (built fresh; build time excluded, as for the PQ index).
	g := hnsw.Build(ds.Base, hnsw.Config{M: 16, EfConstruction: 120,
		Metric: ds.Metric, Seed: h.Scale.Seed})
	for _, ef := range []int{h.Scale.RecallY, 2 * h.Scale.RecallY, 4 * h.Scale.RecallY} {
		res := make([][]topk.Result, ds.Queries.Rows)
		start := time.Now()
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			res[qi] = g.Search(ds.Queries.Row(qi), ef, h.Scale.RecallY)
		}
		elapsed := time.Since(start).Seconds()
		out.Rows = append(out.Rows, GraphRow{
			System:      "HNSW(ef=" + itoa(ef) + ")",
			Recall:      recall.Mean(h.Scale.RecallX, h.Scale.RecallY, gt, res),
			MeasuredQPS: float64(ds.Queries.Rows) / elapsed,
			MemoryBytes: g.MemoryBytes(),
		})
	}

	// IVF-Flat: same coarse filter, exact in-cluster scoring,
	// full-precision memory cost.
	_, c0 := h.scaledNC(wd)
	flat := ivfflat.Build(ds.Base, ds.Metric, ivfflat.Config{
		NClusters: c0, CoarseIters: 6, MaxTrain: h.Scale.TrainCap, Seed: h.Scale.Seed,
	})
	for _, w := range []int{4, 16} {
		if w > c0 {
			continue
		}
		res := make([][]topk.Result, ds.Queries.Rows)
		start := time.Now()
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			res[qi] = flat.Search(ds.Queries.Row(qi), w, h.Scale.RecallY)
		}
		elapsed := time.Since(start).Seconds()
		out.Rows = append(out.Rows, GraphRow{
			System:      "IVF-Flat(W=" + itoa(w) + ")",
			Recall:      recall.Mean(h.Scale.RecallX, h.Scale.RecallY, gt, res),
			MeasuredQPS: float64(ds.Queries.Rows) / elapsed,
			MemoryBytes: flat.MemoryBytes(),
		})
	}

	// IVF-PQ through the same software engine.
	eng := engine.New(idx)
	st := idx.ComputeStats()
	pqMem := st.TotalCodeBytes + st.CentroidBytes + st.CodebookBytes
	for _, w := range []int{4, 16, 64} {
		if w > idx.NClusters() {
			continue
		}
		rep := eng.Run(ds.Queries, engine.Options{
			Mode: engine.ClusterMajor, W: w, K: h.Scale.RecallY,
			Workers: h.Scale.Workers,
		})
		out.Rows = append(out.Rows, GraphRow{
			System:      "IVF-PQ(W=" + itoa(w) + ")",
			Recall:      recall.Mean(h.Scale.RecallX, h.Scale.RecallY, gt, rep.Results),
			MeasuredQPS: rep.QPS,
			MemoryBytes: pqMem,
		})
	}

	// Billion-scale projections.
	out.HNSWBillionBytes = hnsw.EstimateMemoryBytes(1_000_000_000, ds.D(), 16)
	out.PQBillionBytes = int64(1_000_000_000)*int64(comp.MFor(ds.D(), 256)) +
		2*10000*int64(ds.D()) // codes + centroids
	return out
}

// PrintGraph renders the comparison.
func (h *Harness) PrintGraph(c GraphComparison) {
	h.printf("\n=== Graph-based vs compression-based ANNS (%s, measured on this machine) ===\n", c.Workload)
	tw := newTable(h.Out)
	tw.row("system", "recall", "measured QPS", "index memory")
	for _, r := range c.Rows {
		tw.row(r.System, f3(r.Recall), f0(r.MeasuredQPS), bytesHuman(r.MemoryBytes))
	}
	tw.flush()
	h.printf("billion-scale projection: HNSW %s vs IVF-PQ %s (machine RAM %s)\n",
		gb(c.HNSWBillionBytes), gb(c.PQBillionBytes), gb(c.MachineRAMBytes))
	if c.HNSWBillionBytes > c.MachineRAMBytes {
		h.printf("-> HNSW does not fit in memory at billion scale; IVF-PQ does (the paper's Section II-A argument)\n")
	}
}
