package harness

import (
	"strings"
	"testing"
)

func TestGraphComparison(t *testing.T) {
	h, buf := quick(t)
	c := h.RunGraph(oneMillion(t)[0])
	if len(c.Rows) < 5 {
		t.Fatalf("%d rows", len(c.Rows))
	}
	var hnswBest, pqMem int64
	var hnswRecall float64
	for _, r := range c.Rows {
		if r.MeasuredQPS <= 0 || r.MemoryBytes <= 0 {
			t.Errorf("%s: QPS %v mem %d", r.System, r.MeasuredQPS, r.MemoryBytes)
		}
		if strings.HasPrefix(r.System, "HNSW") {
			hnswBest = r.MemoryBytes
			if r.Recall > hnswRecall {
				hnswRecall = r.Recall
			}
		} else {
			pqMem = r.MemoryBytes
		}
	}
	// The paper's million-scale claim: graph methods are effective.
	if hnswRecall < 0.8 {
		t.Errorf("HNSW recall %.3f too low at million-scale regime", hnswRecall)
	}
	// The memory argument: HNSW holds full vectors + links, PQ holds
	// compressed codes — HNSW must cost several times more per vector.
	if hnswBest < 3*pqMem {
		t.Errorf("HNSW memory %d not >> PQ %d", hnswBest, pqMem)
	}
	// Billion-scale projection: HNSW over RAM, PQ under.
	if c.HNSWBillionBytes <= c.MachineRAMBytes {
		t.Errorf("HNSW billion projection %d fits RAM %d", c.HNSWBillionBytes, c.MachineRAMBytes)
	}
	if c.PQBillionBytes >= c.MachineRAMBytes {
		t.Errorf("PQ billion projection %d exceeds RAM", c.PQBillionBytes)
	}
	h.PrintGraph(c)
	if !strings.Contains(buf.String(), "does not fit in memory") {
		t.Error("missing feasibility line")
	}
}
