package harness

import (
	"bytes"
	"strings"
	"testing"

	"anna/internal/pq"
)

// sharedH is one package-wide harness so dataset/index builds are cached
// across tests; each test swaps in its own output buffer.
var sharedH = New(QuickScale(), nil)

// quick returns the shared harness at test scale writing into a fresh
// buffer. Tests run sequentially, so swapping Out is safe.
func quick(t testing.TB) (*Harness, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	sharedH.Out = &buf
	return sharedH, &buf
}

func oneMillion(t testing.TB) []WorkloadDef {
	t.Helper()
	wd, err := WorkloadByKey("SIFT1M")
	if err != nil {
		t.Fatal(err)
	}
	return []WorkloadDef{wd}
}

func fourToOne(t testing.TB) []Compression {
	t.Helper()
	c, err := CompressionByName("4:1")
	if err != nil {
		t.Fatal(err)
	}
	return []Compression{c}
}

func TestWorkloadRegistry(t *testing.T) {
	ws := Workloads()
	if len(ws) != 6 {
		t.Fatalf("%d workloads, want 6", len(ws))
	}
	million, billion := 0, 0
	for _, w := range ws {
		if w.Million {
			million++
			if w.PaperC != 250 {
				t.Errorf("%s: PaperC = %d", w.Key, w.PaperC)
			}
		} else {
			billion++
			if w.PaperC != 10000 {
				t.Errorf("%s: PaperC = %d", w.Key, w.PaperC)
			}
		}
	}
	if million != 3 || billion != 3 {
		t.Errorf("million/billion split %d/%d", million, billion)
	}
	if _, err := WorkloadByKey("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestCompressionMValues(t *testing.T) {
	// Section V-B: 4:1 -> M=D/2 (k*=256) or M=D (k*=16); 8:1 halves both.
	four, _ := CompressionByName("4:1")
	eight, _ := CompressionByName("8:1")
	if four.MFor(128, 256) != 64 || four.MFor(128, 16) != 128 {
		t.Error("4:1 M values")
	}
	if eight.MFor(128, 256) != 32 || eight.MFor(128, 16) != 64 {
		t.Error("8:1 M values")
	}
	// M divides D for every dataset dimensionality the paper uses.
	for _, d := range []int{128, 96, 100} {
		for _, c := range Compressions() {
			for _, ks := range []int{16, 256} {
				m := c.MFor(d, ks)
				if m <= 0 || d%m != 0 {
					t.Errorf("D=%d %s k*=%d -> M=%d does not divide", d, c.Name, ks, m)
				}
			}
		}
	}
	if _, err := CompressionByName("16:1"); err == nil {
		t.Error("unknown compression accepted")
	}
}

func TestCachesReturnSameInstance(t *testing.T) {
	h, _ := quick(t)
	wd := oneMillion(t)[0]
	if h.Dataset(wd) != h.Dataset(wd) {
		t.Error("dataset not cached")
	}
	comp := fourToOne(t)[0]
	if h.Index(wd, comp, 16) != h.Index(wd, comp, 16) {
		t.Error("index not cached")
	}
	gt := h.GroundTruth(wd)
	if len(gt) != h.Scale.Queries {
		t.Errorf("ground truth for %d queries", len(gt))
	}
	if len(gt[0]) != h.Scale.RecallY {
		t.Errorf("ground truth depth %d", len(gt[0]))
	}
}

func TestFig8SingleWorkload(t *testing.T) {
	h, buf := quick(t)
	plots := h.RunFig8(oneMillion(t), fourToOne(t))
	if len(plots) != 1 {
		t.Fatalf("%d plots", len(plots))
	}
	p := plots[0]
	if p.Workload != "SIFT1M" || p.Compression != "4:1" {
		t.Fatalf("plot identity %+v", p)
	}
	if len(p.Series) != 8 {
		t.Fatalf("%d series, want 8", len(p.Series))
	}
	for _, s := range p.Series {
		if len(s.Points) != len(h.wSweepFor(oneMillion(t)[0])) {
			t.Fatalf("%s has %d points", s.Label, len(s.Points))
		}
		last := -1.0
		for _, pt := range s.Points {
			if pt.QPS <= 0 {
				t.Fatalf("%s W=%d QPS=%v", s.Label, pt.W, pt.QPS)
			}
			if pt.Recall < last-0.1 {
				t.Errorf("%s recall fell sharply at W=%d", s.Label, pt.W)
			}
			last = pt.Recall
		}
		// Recall must be increasing overall and meaningful at max W.
		if s.Points[len(s.Points)-1].Recall < 0.3 {
			t.Errorf("%s: final recall %.2f too low", s.Label, s.Points[len(s.Points)-1].Recall)
		}
	}
	// ANNA must beat its corresponding software configs (the paper's
	// headline) on geomean.
	for k, v := range p.Geomean {
		if v <= 1 {
			t.Errorf("geomean %s = %.2f, ANNA should win", k, v)
		}
	}
	h.PrintFig8(plots)
	if !strings.Contains(buf.String(), "Figure 8") || !strings.Contains(buf.String(), "Faiss256(ANNA)") {
		t.Error("PrintFig8 output missing content")
	}
}

func TestFig9(t *testing.T) {
	h, buf := quick(t)
	rows := h.RunFig9(oneMillion(t))
	// 4 software configs x (software row + matching ANNA row) = 8 rows.
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.LatencySeconds <= 0 || r.ANNALatencySeconds <= 0 {
			t.Errorf("%+v has nonpositive latency", r)
		}
		if !strings.HasSuffix(r.Config, "->ANNA") && r.Speedup <= 1 {
			t.Errorf("%s %s: ANNA latency not better (%.2fx)", r.Workload, r.Config, r.Speedup)
		}
	}
	h.PrintFig9(rows)
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("missing output")
	}
}

func TestFig10(t *testing.T) {
	h, buf := quick(t)
	rows := h.RunFig10(oneMillion(t))
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Efficiency <= 10 {
			t.Errorf("%s %s: efficiency %.1fx — paper reports orders of magnitude",
				r.Workload, r.Config, r.Efficiency)
		}
	}
	h.PrintFig10(rows)
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Error("missing output")
	}
}

func TestTable1(t *testing.T) {
	h, buf := quick(t)
	b := h.RunTable1()
	if b.TotalArea < 17 || b.TotalArea > 18 {
		t.Errorf("total area %.2f", b.TotalArea)
	}
	h.PrintTable1(b)
	out := buf.String()
	for _, want := range []string{"Table I", "17.51", "210.12", "Memory Access Interface"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q", want)
		}
	}
}

func TestTraffic(t *testing.T) {
	h, buf := quick(t)
	rows := h.RunTraffic(oneMillion(t), fourToOne(t), 8)
	if len(rows) != 2 { // k*=16 and k*=256
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("traffic optimization speedup %.2fx <= 1 for k*=%s", r.Speedup, r.Config)
		}
		if r.TrafficReduction <= 1 {
			t.Errorf("traffic not reduced (%.2fx)", r.TrafficReduction)
		}
	}
	h.PrintTraffic(rows)
	if !strings.Contains(buf.String(), "memory traffic optimization") {
		t.Error("missing output")
	}
	ex := h.RunWorkedExample()
	if ex.TrafficReduction != 12.8 {
		t.Errorf("worked example reduction = %v, want 12.8", ex.TrafficReduction)
	}
	if ex.SCMsPerQuery != 4 {
		t.Errorf("worked example SCMs/query = %d, want 4", ex.SCMsPerQuery)
	}
}

func TestExactAndRelated(t *testing.T) {
	h, buf := quick(t)
	rows := h.RunExact(oneMillion(t))
	if len(rows) != 1 || rows[0].CPUQPS <= 0 || rows[0].GPUQPS <= rows[0].CPUQPS {
		t.Fatalf("exact rows: %+v", rows)
	}
	h.PrintExact(rows)

	rel := h.RunRelated()
	if len(rel) != 2 {
		t.Fatalf("%d related rows", len(rel))
	}
	// ANNA must beat both related-work claims, as the paper argues.
	if rel[0].ANNAQPS < 50_000 {
		t.Errorf("SIFT1M ANNA QPS %.0f below the FPGA's 50K claim", rel[0].ANNAQPS)
	}
	if rel[1].ANNAQPS < 800 {
		t.Errorf("Deep1B ANNA QPS %.0f below Gemini's 800 claim", rel[1].ANNAQPS)
	}
	h.PrintRelated(rel)
	if !strings.Contains(buf.String(), "related-work") {
		t.Error("missing output")
	}
}

func TestTimeline(t *testing.T) {
	h, buf := quick(t)
	spans := h.RunTimeline(oneMillion(t)[0], 4)
	if len(spans) == 0 {
		t.Fatal("no spans")
	}
	// The trace must show all three unit classes (Figure 7 overlap).
	seen := map[string]bool{}
	for _, s := range spans {
		seen[s.Resource] = true
	}
	if !seen["cpm"] || !seen["dram"] || !seen["scm00"] {
		t.Errorf("trace units: %v", seen)
	}
	h.PrintTimeline(spans, 20)
	if !strings.Contains(buf.String(), "timeline") {
		t.Error("missing output")
	}
}

func TestAblations(t *testing.T) {
	h, buf := quick(t)
	rows := h.RunAblations(oneMillion(t)[0])
	byStudy := map[string][]AblationRow{}
	for _, r := range rows {
		if r.QPS <= 0 {
			t.Errorf("%s/%s QPS = %v", r.Study, r.Variant, r.QPS)
		}
		byStudy[r.Study] = append(byStudy[r.Study], r)
	}
	for _, study := range []string{"double-buffering", "topk-rate-limit",
		"scm-allocation", "query-group", "memory-bandwidth", "evb-size",
		"nscm", "nu", "ncu"} {
		if len(byStudy[study]) < 2 {
			t.Errorf("study %s has %d rows", study, len(byStudy[study]))
		}
	}
	// Double buffering on >= off.
	db := byStudy["double-buffering"]
	if db[0].QPS < db[1].QPS {
		t.Errorf("double buffering hurt: %v vs %v", db[0].QPS, db[1].QPS)
	}
	// Bandwidth monotone.
	bw := byStudy["memory-bandwidth"]
	for i := 1; i < len(bw); i++ {
		if bw[i].QPS < bw[i-1].QPS*0.99 {
			t.Errorf("bandwidth ablation not monotone: %v", bw)
		}
	}
	h.PrintAblations(rows)
	if !strings.Contains(buf.String(), "ablations") {
		t.Error("missing output")
	}
}

func TestMetricName(t *testing.T) {
	if metricName(pq.L2) != "L2 distance" || metricName(pq.InnerProduct) != "inner product" {
		t.Error("metric names")
	}
}
