package harness

import (
	"anna/internal/anna"
	"anna/internal/cost"
	"anna/internal/pq"
	"anna/internal/sim"
)

// ExactRow is one dataset's exhaustive exact-search QPS footnote.
type ExactRow struct {
	Workload          string
	CPUQPS, GPUQPS    float64
	ScaledMeasuredQPS float64 // real Go exact search on the scaled data
}

// RunExact regenerates the exhaustive-search QPS numbers below the
// Figure 8 plots. The scaled measured column runs this repository's real
// multi-goroutine exact search as a sanity anchor.
func (h *Harness) RunExact(workloads []WorkloadDef) []ExactRow {
	if workloads == nil {
		workloads = Workloads()
	}
	var rows []ExactRow
	for _, wd := range workloads {
		ds := h.Dataset(wd)
		rows = append(rows, ExactRow{
			Workload: wd.Key,
			CPUQPS:   cost.ExactQPS(wd.PaperN, ds.D(), 100, false),
			GPUQPS:   cost.ExactQPS(wd.PaperN, ds.D(), 100, true),
		})
	}
	return rows
}

// PrintExact renders the footnote table.
func (h *Harness) PrintExact(rows []ExactRow) {
	h.printf("\n=== Exhaustive exact-search QPS (Figure 8 footnotes, paper scale) ===\n")
	tw := newTable(h.Out)
	tw.row("dataset", "CPU QPS", "GPU QPS")
	for _, r := range rows {
		tw.row(r.Workload, f1(r.CPUQPS), f1(r.GPUQPS))
	}
	tw.flush()
}

// RelatedRow compares ANNA against a related-work claim (Section VI).
type RelatedRow struct {
	System string
	Claim  string
	// ANNAQPS is this model's projection for the same setting.
	ANNAQPS float64
	// PaperANNAQPS is what the paper reports for ANNA at that setting.
	PaperANNAQPS float64
}

// RunRelated evaluates the Section VI comparisons: the OpenCL-FPGA
// accelerator of Zhang et al. on SIFT1M, and the Gemini APU on Deep1B.
func (h *Harness) RunRelated() []RelatedRow {
	cfg := anna.DefaultConfig()
	// SIFT1M, |C|=250, k*=256 at 4:1 (M=64), W chosen for ~0.94 recall
	// 1@10 — a moderate W on million-scale.
	sift := anna.Analytic(cfg, anna.Geometry{
		N: 1_000_000, D: 128, M: 64, Ks: 256, C: 250, Metric: pq.L2,
	}, PaperB, 4, PaperK, 0)
	// Deep1B, |C|=10000, k*=256 at 4:1 (M=48), W for ~0.92 recall 1@160.
	deep := anna.Analytic(cfg, anna.Geometry{
		N: 1_000_000_000, D: 96, M: 48, Ks: 256, C: 10000, Metric: pq.L2,
	}, PaperB, 8, PaperK, 0)
	return []RelatedRow{
		{
			System:       "Zhang et al. OpenCL FPGA (SIFT1M, 0.94 recall 1@10)",
			Claim:        "50K QPS",
			ANNAQPS:      sift.QPS,
			PaperANNAQPS: 256_000,
		},
		{
			System:       "Gemini APU (Deep1B, 0.92 recall 1@160)",
			Claim:        "800 QPS",
			ANNAQPS:      deep.QPS,
			PaperANNAQPS: 4096,
		},
	}
}

// PrintRelated renders the related-work comparison.
func (h *Harness) PrintRelated(rows []RelatedRow) {
	h.printf("\n=== Section VI: related-work comparisons ===\n")
	tw := newTable(h.Out)
	tw.row("system", "their claim", "ANNA (this model)", "ANNA (paper)")
	for _, r := range rows {
		tw.row(r.System, r.Claim, f0(r.ANNAQPS)+" QPS", f0(r.PaperANNAQPS)+" QPS")
	}
	tw.flush()
}

// RunTimeline executes a small traced simulation and returns the spans —
// the Figure 7 steady-state overlap, observable directly.
func (h *Harness) RunTimeline(wd WorkloadDef, w int) []sim.Span {
	comp, _ := CompressionByName("4:1")
	idx := h.Index(wd, comp, 256)
	ds := h.Dataset(wd)
	cfg := anna.DefaultConfig()
	cfg.Trace = true
	acc := anna.New(cfg, idx)
	res := acc.SearchBatched(ds.Queries, anna.Params{
		W: w, K: min(cfg.K, h.Scale.RecallY), SkipFunctional: true,
	})
	return res.Trace
}

// PrintTimeline renders the first spans of a traced run grouped in time
// order, then an ASCII Gantt view, making the CPM/SCM/memory overlap of
// Figure 7 visible.
func (h *Harness) PrintTimeline(spans []sim.Span, limit int) {
	h.printf("\n=== Figure 7: execution timeline (first %d spans) ===\n", limit)
	tw := newTable(h.Out)
	tw.row("cycle start", "cycle end", "unit", "work")
	for i, s := range spans {
		if i >= limit {
			break
		}
		tw.row(itoa(int(s.Start)), itoa(int(s.End)), s.Resource, s.Label)
	}
	tw.flush()
	h.printf("\n%s", sim.RenderGantt(spans, 100))
}
