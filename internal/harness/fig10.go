package harness

import (
	"anna/internal/anna"
	"anna/internal/cost"
	"anna/internal/energy"
)

// Fig10Row is one configuration's per-query energy on one dataset at the
// paper's Figure 10 operating point (4:1 compression, W=32).
type Fig10Row struct {
	Workload string
	Config   string
	// EnergyPerQueryJ is the modeled energy per query.
	EnergyPerQueryJ float64
	// ANNAEnergyPerQueryJ is the corresponding ANNA configuration's
	// chip energy per query.
	ANNAEnergyPerQueryJ float64
	// Efficiency is EnergyPerQueryJ / ANNAEnergyPerQueryJ — the
	// normalized energy-efficiency bar of Figure 10.
	Efficiency float64
	// ANNADRAMPerQueryJ reports ANNA's off-chip DRAM energy separately
	// (the paper's comparison is package power vs accelerator power).
	ANNADRAMPerQueryJ float64
}

// Fig10W is the paper's Figure 10 operating point.
const Fig10W = 32

// RunFig10 regenerates Figure 10 (normalized energy efficiency at 4:1,
// W=32).
func (h *Harness) RunFig10(workloads []WorkloadDef) []Fig10Row {
	if workloads == nil {
		workloads = Workloads()
	}
	comp, _ := CompressionByName("4:1")
	cfg := anna.DefaultConfig()
	breakdown := energy.Model(energy.PaperShape())
	var rows []Fig10Row

	for _, wd := range workloads {
		for _, ks := range []int{16, 256} {
			g := h.PaperGeometry(wd, comp, ks)
			pw := Fig10W * wd.PaperC / 10000 // W=32 defined at |C|=10000
			if pw < 1 {
				pw = 1
			}
			ana := anna.Analytic(cfg, g, PaperB, pw, PaperK, 0)
			act := energy.Activity{
				MakespanSec:  ana.BatchSeconds,
				CPMBusySec:   ana.CPMBusySeconds,
				SCMBusySec:   ana.SCMBusySeconds,
				MemBusySec:   ana.MemBusySeconds,
				TrafficBytes: ana.TrafficBytes,
			}
			annaPerQ := energy.ChipEnergy(breakdown, act) / PaperB
			dramPerQ := energy.DRAMEnergy(act) / PaperB

			platforms := []cost.Platform{cost.Faiss256CPU, cost.Faiss256GPU}
			if ks == 16 {
				platforms = []cost.Platform{cost.ScaNN16CPU, cost.Faiss16CPU}
			}
			for _, p := range platforms {
				wl := cost.Uniform(g.N, g.D, g.M, g.Ks, g.C, PaperB, pw, PaperK, g.Metric)
				est := cost.Model(p, wl)
				perQ := est.EnergyJ / PaperB
				rows = append(rows, Fig10Row{
					Workload: wd.Key, Config: p.String(),
					EnergyPerQueryJ:     perQ,
					ANNAEnergyPerQueryJ: annaPerQ,
					Efficiency:          perQ / annaPerQ,
					ANNADRAMPerQueryJ:   dramPerQ,
				})
			}
		}
	}
	return rows
}

// PrintFig10 renders the energy-efficiency table.
func (h *Harness) PrintFig10(rows []Fig10Row) {
	h.printf("\n=== Figure 10: normalized energy efficiency (4:1, W=%d) ===\n", Fig10W)
	tw := newTable(h.Out)
	tw.row("dataset", "config", "energy/query", "ANNA energy/query", "efficiency", "(ANNA DRAM/query)")
	for _, r := range rows {
		tw.row(r.Workload, r.Config, mj(r.EnergyPerQueryJ), mj(r.ANNAEnergyPerQueryJ),
			f1(r.Efficiency)+"x", mj(r.ANNADRAMPerQueryJ))
	}
	tw.flush()
}
