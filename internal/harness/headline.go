package harness

import "sort"

// Headline aggregates the paper's abstract claims across every dataset
// and configuration: "2.3-61.6x higher throughput, 24.0-620.8x lower
// latency, and multiple orders of magnitude (97x+) higher energy
// efficiency than the conventional CPU or GPU". Each claim is reported
// as this reproduction's measured min/max range next to the paper's.
type Headline struct {
	// ThroughputMin/Max are the geomean ANNA-vs-software QPS ratios
	// across all Figure 8 plots and configuration pairs.
	ThroughputMin, ThroughputMax float64
	// LatencyMin/Max are the per-configuration latency ratios (Figure 9).
	LatencyMin, LatencyMax float64
	// EnergyMin/Max are the per-configuration efficiency ratios (Fig 10).
	EnergyMin, EnergyMax float64
	// Wins counts comparisons where ANNA was strictly better; Total all
	// comparisons made.
	Wins, Total int
}

// RunHeadline computes the three headline ranges over the given
// workloads (nil = all).
func (h *Harness) RunHeadline(workloads []WorkloadDef) Headline {
	var hd Headline
	var thr, lat, en []float64

	for _, plot := range h.RunFig8(workloads, nil) {
		for _, v := range plot.Geomean {
			if v > 0 {
				thr = append(thr, v)
			}
		}
	}
	for _, row := range h.RunFig9(workloads) {
		if row.Speedup > 1.0001 || row.Speedup < 0.9999 { // skip the ANNA self-rows
			lat = append(lat, row.Speedup)
		}
	}
	for _, row := range h.RunFig10(workloads) {
		en = append(en, row.Efficiency)
	}

	rng := func(vs []float64) (float64, float64) {
		if len(vs) == 0 {
			return 0, 0
		}
		sort.Float64s(vs)
		return vs[0], vs[len(vs)-1]
	}
	hd.ThroughputMin, hd.ThroughputMax = rng(thr)
	hd.LatencyMin, hd.LatencyMax = rng(lat)
	hd.EnergyMin, hd.EnergyMax = rng(en)
	for _, vs := range [][]float64{thr, lat, en} {
		for _, v := range vs {
			hd.Total++
			if v > 1 {
				hd.Wins++
			}
		}
	}
	return hd
}

// PrintHeadline renders the claim table.
func (h *Harness) PrintHeadline(hd Headline) {
	h.printf("\n=== Abstract headline claims: paper vs this reproduction ===\n")
	tw := newTable(h.Out)
	tw.row("claim", "paper", "measured range")
	tw.row("throughput vs CPU/GPU", "2.3-61.6x",
		f1(hd.ThroughputMin)+"-"+f1(hd.ThroughputMax)+"x")
	tw.row("latency vs CPU/GPU", "24.0-620.8x",
		f1(hd.LatencyMin)+"-"+f1(hd.LatencyMax)+"x")
	tw.row("energy efficiency", "97x+",
		f1(hd.EnergyMin)+"-"+f1(hd.EnergyMax)+"x")
	tw.flush()
	h.printf("ANNA better in %d/%d comparisons\n", hd.Wins, hd.Total)
}
