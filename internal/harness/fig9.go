package harness

import (
	"anna/internal/anna"
	"anna/internal/cost"
)

// Fig9Row is one configuration's single-query latency on one dataset at
// 4:1 compression, evaluated at the smallest W reaching the recall
// target (or the best-recall W if the target is unreachable — the k*=16
// recall ceiling the paper discusses).
type Fig9Row struct {
	Workload string
	Config   string
	W        int
	Recall   float64
	// LatencySeconds is the paper-scale single-query latency projection.
	LatencySeconds float64
	// ANNALatencySeconds is the matching ANNA configuration's latency.
	ANNALatencySeconds float64
	// Speedup is LatencySeconds / ANNALatencySeconds.
	Speedup float64
}

// RecallTarget is the paper's "high recall" operating point for the
// latency comparison (Figure 9 discussion: 0.9+).
const RecallTarget = 0.9

// RunFig9 regenerates Figure 9 (latency comparison, 4:1 compression).
func (h *Harness) RunFig9(workloads []WorkloadDef) []Fig9Row {
	if workloads == nil {
		workloads = Workloads()
	}
	comp, _ := CompressionByName("4:1")
	cfg := anna.DefaultConfig()
	var rows []Fig9Row

	for _, wd := range workloads {
		// Each software configuration runs on its own trained model and
		// therefore has its own recall curve and operating W.
		configs := []struct {
			platform cost.Platform
			ks       int
			curve    map[int]float64
		}{
			{cost.ScaNN16CPU, 16, h.measureRecallCurve(wd, comp, 16, h.scannEtaFor(wd))},
			{cost.Faiss16CPU, 16, h.measureRecallCurve(wd, comp, 16, 0)},
			{cost.Faiss256CPU, 256, h.measureRecallCurve(wd, comp, 256, 0)},
		}
		configs = append(configs, struct {
			platform cost.Platform
			ks       int
			curve    map[int]float64
		}{cost.Faiss256GPU, 256, configs[2].curve})

		for _, c := range configs {
			wPick, rec := pickW(h.wSweepFor(wd), c.curve)
			g := h.PaperGeometry(wd, comp, c.ks)
			pw := paperW(wPick, h, wd)
			ana := anna.Analytic(cfg, g, PaperB, pw, PaperK, 0)
			wl := cost.Uniform(g.N, g.D, g.M, g.Ks, g.C, PaperB, pw, PaperK, g.Metric)
			est := cost.Model(c.platform, wl)
			rows = append(rows, Fig9Row{
				Workload: wd.Key, Config: c.platform.String(),
				W: wPick, Recall: rec,
				LatencySeconds:     est.LatencySeconds,
				ANNALatencySeconds: ana.LatencySeconds,
				Speedup:            est.LatencySeconds / ana.LatencySeconds,
			}, Fig9Row{
				Workload: wd.Key, Config: c.platform.String() + "->ANNA",
				W: wPick, Recall: rec,
				LatencySeconds:     ana.LatencySeconds,
				ANNALatencySeconds: ana.LatencySeconds,
				Speedup:            1,
			})
		}
	}
	return rows
}

// pickW returns the smallest W whose recall meets RecallTarget, falling
// back to the best-recall W.
func pickW(sweep []int, curve map[int]float64) (int, float64) {
	bestW, bestR := 0, -1.0
	for _, w := range sweep {
		r := curve[w]
		if r >= RecallTarget {
			return w, r
		}
		if r > bestR {
			bestW, bestR = w, r
		}
	}
	return bestW, bestR
}

// PrintFig9 renders the latency table.
func (h *Harness) PrintFig9(rows []Fig9Row) {
	h.printf("\n=== Figure 9: single-query latency, 4:1 compression (target recall %.2f) ===\n", RecallTarget)
	tw := newTable(h.Out)
	tw.row("dataset", "config", "W", "recall", "latency", "vs ANNA")
	for _, r := range rows {
		tw.row(r.Workload, r.Config, itoa(r.W), f3(r.Recall),
			ms(r.LatencySeconds), f1(r.Speedup)+"x")
	}
	tw.flush()
}
