package harness

import (
	"strings"
	"testing"
)

func TestHeadline(t *testing.T) {
	h, buf := quick(t)
	hd := h.RunHeadline(oneMillion(t))
	// The core reproduction claim: ANNA wins every comparison.
	if hd.Wins != hd.Total || hd.Total == 0 {
		t.Fatalf("ANNA won %d of %d comparisons", hd.Wins, hd.Total)
	}
	if hd.ThroughputMin <= 1 || hd.ThroughputMax < hd.ThroughputMin {
		t.Errorf("throughput range %v-%v", hd.ThroughputMin, hd.ThroughputMax)
	}
	if hd.LatencyMin <= 1 {
		t.Errorf("latency min %v", hd.LatencyMin)
	}
	// "Multiple orders of magnitude" energy efficiency: min above 10x.
	if hd.EnergyMin <= 10 {
		t.Errorf("energy efficiency min %v", hd.EnergyMin)
	}
	h.PrintHeadline(hd)
	out := buf.String()
	if !strings.Contains(out, "2.3-61.6x") || !strings.Contains(out, "headline") {
		t.Error("print output incomplete")
	}
}
