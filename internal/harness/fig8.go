package harness

import (
	"fmt"
	"math"
	"sort"

	"anna/internal/anna"
	"anna/internal/cost"
	"anna/internal/engine"
	"anna/internal/pq"
	"anna/internal/recall"
)

// Fig8Point is one (W, recall, QPS) sample of a throughput/recall curve.
type Fig8Point struct {
	W      int
	Recall float64
	QPS    float64
}

// Fig8Series is one configuration's curve in one plot.
type Fig8Series struct {
	Label  string
	Points []Fig8Point
}

// Fig8Plot is one of the twelve Figure 8 plots: a dataset × compression
// pair with every configuration's throughput-vs-recall curve, the
// per-pair geomean ANNA speedups the paper annotates below each plot,
// and the exhaustive-search QPS footnote.
type Fig8Plot struct {
	Workload    string
	Compression string
	Metric      string
	Series      []Fig8Series
	// Geomean maps "ANNA config vs software config" to the geometric
	// mean QPS ratio across the W sweep.
	Geomean map[string]float64
	// ExactCPUQPS / ExactGPUQPS are the brute-force footnote numbers.
	ExactCPUQPS, ExactGPUQPS float64
}

// measureRecallCurve runs the functional (hardware-rounded) search on the
// scaled index for every W and returns recall X@Y per W. Curves are
// cached per (workload, compression, k*, eta): fig9 reuses fig8's sweeps.
func (h *Harness) measureRecallCurve(w WorkloadDef, comp Compression, ks int, eta float32) map[int]float64 {
	key := fmt.Sprintf("%s/%s/ks%d/eta%g", w.Key, comp.Name, ks, eta)
	h.mu.Lock()
	cached, ok := h.rcCache[key]
	h.mu.Unlock()
	if ok {
		return cached
	}
	idx := h.IndexEta(w, comp, ks, eta)
	ds := h.Dataset(w)
	gt := h.GroundTruth(w)
	eng := engine.New(idx)
	out := make(map[int]float64)
	for _, wv := range h.wSweepFor(w) {
		rep := eng.Run(ds.Queries, engine.Options{
			Mode: engine.ClusterMajor, W: wv, K: h.Scale.RecallY,
			Workers: h.Scale.Workers, HWF16: true,
		})
		out[wv] = recall.Mean(h.Scale.RecallX, h.Scale.RecallY, gt, rep.Results)
	}
	h.mu.Lock()
	h.rcCache[key] = out
	h.mu.Unlock()
	return out
}

// scannEtaFor returns the ScaNN-model encoding weight for a workload
// (anisotropic only applies to inner-product metrics).
func (h *Harness) scannEtaFor(w WorkloadDef) float32 {
	if h.Dataset(w).Metric == pq.InnerProduct {
		return ScaNNEta
	}
	return 0
}

// RunFig8 regenerates Figure 8 for the given workloads and compression
// setups (nil means all).
func (h *Harness) RunFig8(workloads []WorkloadDef, comps []Compression) []Fig8Plot {
	if workloads == nil {
		workloads = Workloads()
	}
	if comps == nil {
		comps = Compressions()
	}
	cfg := anna.DefaultConfig()
	var plots []Fig8Plot

	for _, comp := range comps {
		for _, wd := range workloads {
			ds := h.Dataset(wd)
			// Per-library trained models: ScaNN uses its score-aware
			// objective on inner-product datasets, Faiss the plain
			// reconstruction objective — distinct recall curves, as in
			// the paper.
			recallScaNN16 := h.measureRecallCurve(wd, comp, 16, h.scannEtaFor(wd))
			recallFaiss16 := h.measureRecallCurve(wd, comp, 16, 0)
			recall256 := h.measureRecallCurve(wd, comp, 256, 0)
			g16 := h.PaperGeometry(wd, comp, 16)
			g256 := h.PaperGeometry(wd, comp, 256)

			series := map[string][]Fig8Point{}
			for _, wv := range h.wSweepFor(wd) {
				// Paper-scale W: the scaled |C| differs from the paper's,
				// so sweep W as a fraction of |C| when extrapolating.
				pw16 := paperW(wv, h, wd)
				wl16 := cost.Uniform(g16.N, g16.D, g16.M, g16.Ks, g16.C,
					PaperB, pw16, PaperK, g16.Metric)
				wl256 := cost.Uniform(g256.N, g256.D, g256.M, g256.Ks, g256.C,
					PaperB, pw16, PaperK, g256.Metric)

				add := func(label string, rec, qps float64) {
					series[label] = append(series[label],
						Fig8Point{W: wv, Recall: rec, QPS: qps})
				}
				add("ScaNN16(CPU)", recallScaNN16[wv], cost.Model(cost.ScaNN16CPU, wl16).QPS)
				add("Faiss16(CPU)", recallFaiss16[wv], cost.Model(cost.Faiss16CPU, wl16).QPS)
				add("Faiss256(CPU)", recall256[wv], cost.Model(cost.Faiss256CPU, wl256).QPS)
				add("Faiss256(GPU)", recall256[wv], cost.Model(cost.Faiss256GPU, wl256).QPS)

				// ANNA runs each library's trained model natively; the
				// hardware QPS depends only on the geometry, the recall
				// on the model.
				a16 := anna.Analytic(cfg, g16, PaperB, pw16, PaperK, 0)
				a256 := anna.Analytic(cfg, g256, PaperB, pw16, PaperK, 0)
				add("ScaNN16(ANNA)", recallScaNN16[wv], a16.QPS)
				add("Faiss16(ANNA)", recallFaiss16[wv], a16.QPS)
				add("Faiss256(ANNA)", recall256[wv], a256.QPS)
				add("Faiss256(ANNAx12)", recall256[wv], anna.MultiInstanceQPS(a256, 12))
			}

			plot := Fig8Plot{
				Workload:    wd.Key,
				Compression: comp.Name,
				Metric:      metricName(ds.Metric),
				Geomean:     map[string]float64{},
				ExactCPUQPS: cost.ExactQPS(wd.PaperN, ds.D(), 100, false),
				ExactGPUQPS: cost.ExactQPS(wd.PaperN, ds.D(), 100, true),
			}
			labels := make([]string, 0, len(series))
			for l := range series {
				labels = append(labels, l)
			}
			sort.Strings(labels)
			for _, l := range labels {
				plot.Series = append(plot.Series, Fig8Series{Label: l, Points: series[l]})
			}
			plot.Geomean["ScaNN16(ANNA) vs ScaNN16(CPU)"] = geomeanRatio(series["ScaNN16(ANNA)"], series["ScaNN16(CPU)"])
			plot.Geomean["Faiss16(ANNA) vs Faiss16(CPU)"] = geomeanRatio(series["Faiss16(ANNA)"], series["Faiss16(CPU)"])
			plot.Geomean["Faiss256(ANNA) vs Faiss256(CPU)"] = geomeanRatio(series["Faiss256(ANNA)"], series["Faiss256(CPU)"])
			plot.Geomean["Faiss256(ANNAx12) vs Faiss256(GPU)"] = geomeanRatio(series["Faiss256(ANNAx12)"], series["Faiss256(GPU)"])
			plots = append(plots, plot)
		}
	}
	return plots
}

// paperW maps a scaled W onto the paper's cluster count so that the
// fraction of the database inspected matches: W_paper = W · |C|_paper /
// |C|_scaled.
func paperW(w int, h *Harness, wd WorkloadDef) int {
	_, c := h.scaledNC(wd)
	pw := w * wd.PaperC / c
	if pw < 1 {
		pw = 1
	}
	if pw > wd.PaperC {
		pw = wd.PaperC
	}
	return pw
}

// geomeanRatio computes the geometric mean of a.QPS/b.QPS across paired
// points.
func geomeanRatio(a, b []Fig8Point) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	sum := 0.0
	for i := range a {
		if a[i].QPS <= 0 || b[i].QPS <= 0 {
			return 0
		}
		sum += math.Log(a[i].QPS / b[i].QPS)
	}
	return math.Exp(sum / float64(len(a)))
}

// PrintFig8 renders the plots as aligned text tables.
func (h *Harness) PrintFig8(plots []Fig8Plot) {
	for _, p := range plots {
		h.printf("\n=== Figure 8: %s, %s compression (%s) ===\n", p.Workload, p.Compression, p.Metric)
		tw := newTable(h.Out)
		tw.row("config", "W", "recall", "QPS(paper-scale)")
		for _, s := range p.Series {
			for _, pt := range s.Points {
				tw.row(s.Label, itoa(pt.W), f3(pt.Recall), f0(pt.QPS))
			}
		}
		tw.flush()
		keys := make([]string, 0, len(p.Geomean))
		for k := range p.Geomean {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h.printf("geomean speedup %-32s %.2fx\n", k+":", p.Geomean[k])
		}
		h.printf("exact-search QPS: CPU %.1f, GPU %.1f\n", p.ExactCPUQPS, p.ExactGPUQPS)
	}
}
