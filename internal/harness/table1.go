package harness

import "anna/internal/energy"

// RunTable1 computes the Table I breakdown from the component model.
func (h *Harness) RunTable1() energy.Breakdown {
	return energy.Model(energy.PaperShape())
}

// PrintTable1 renders Table I with the paper's published values alongside
// the component model's, plus the effective die-area comparison.
func (h *Harness) PrintTable1(b energy.Breakdown) {
	h.printf("\n=== Table I: area and (peak) power of ANNA (TSMC 40nm GP, 1 GHz) ===\n")
	tw := newTable(h.Out)
	tw.row("module", "area(mm^2)", "paper", "peak(W)", "paper")
	tw.row("Codebook/Cluster Processing Module", f2(b.CPM.AreaMM2), "1.17", f3(b.CPM.PeakW), "0.391")
	tw.row("Encoded Vector Fetch Module", f2(b.EFM.AreaMM2), "2.87", f3(b.EFM.PeakW), "1.065")
	tw.row("Similarity Computation Module (16x)", f2(b.SCMs.AreaMM2), "13.30", f3(b.SCMs.PeakW), "3.795")
	tw.row("Memory Access Interface (MAI)", f2(b.MAI.AreaMM2), "0.17", f3(b.MAI.PeakW), "0.147")
	tw.row("ANNA Accelerator", f2(b.TotalArea), "17.51", f3(b.TotalW), "5.398")
	tw.row("ANNA Accelerators (12x)", f2(12*b.TotalArea), "210.12", f3(12*b.TotalW), "64.776")
	tw.flush()
	h.printf("effective area vs ANNA (normalized to 40nm): CPU %.0fx (paper 151x), GPU %.0fx (paper 517x)\n",
		energy.EffectiveAreaRatio(energy.CPUDieMM2, energy.CPUNodeNM, b.TotalArea),
		energy.EffectiveAreaRatio(energy.GPUDieMM2, energy.GPUNodeNM, b.TotalArea))
}
