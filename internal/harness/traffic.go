package harness

import (
	"fmt"
	"math"

	"anna/internal/anna"
	"anna/internal/dataset"
	"anna/internal/vecmath"
)

// TrafficRow is one dataset × configuration measurement of the Section IV
// memory traffic optimization, from the event simulator on the scaled
// index.
type TrafficRow struct {
	Workload    string
	Compression string
	Config      string // "16" or "256" (k*)
	B, W        int
	// BaselineQPS / BatchedQPS are simulated at the scaled size.
	BaselineQPS, BatchedQPS float64
	// Speedup is BatchedQPS / BaselineQPS (the paper's 5.1x/5.0x/6.9x
	// and 3.9x/3.9x/4.6x numbers).
	Speedup float64
	// TrafficReduction is baseline bytes / batched bytes.
	TrafficReduction float64
}

// trafficBatch returns a query batch sized so that B/|C| matches the
// paper's B=1000 at |C|=10000 regime on the scaled index.
func (h *Harness) trafficBatch(wd WorkloadDef) *vecmath.Matrix {
	_, c := h.scaledNC(wd)
	b := PaperB * c / wd.PaperC
	if b < 32 {
		b = 32
	}
	n, _ := h.scaledNC(wd)
	key := fmt.Sprintf("traffic/%s/%d/%d", wd.Key, n, b)
	h.mu.Lock()
	ds, ok := h.dsCache[key]
	h.mu.Unlock()
	if ok {
		return ds.Queries
	}
	spec := wd.Spec(64, b, h.Scale.Seed+7) // tiny base; we only need queries
	ds = dataset.Generate(spec)
	h.mu.Lock()
	h.dsCache[key] = ds
	h.mu.Unlock()
	return ds.Queries
}

// RunTraffic measures the optimization's speedup for every configuration
// (Section V-B "Impact of ANNA Memory Traffic Optimization").
func (h *Harness) RunTraffic(workloads []WorkloadDef, comps []Compression, w int) []TrafficRow {
	if workloads == nil {
		workloads = Workloads()
	}
	if comps == nil {
		comps = Compressions()
	}
	if w <= 0 {
		w = Fig10W
	}
	cfg := anna.DefaultConfig()
	var rows []TrafficRow
	for _, comp := range comps {
		for _, wd := range workloads {
			_, c := h.scaledNC(wd)
			wv := w
			if wv > c {
				wv = c
			}
			queries := h.trafficBatch(wd)
			for _, ks := range []int{16, 256} {
				idx := h.Index(wd, comp, ks)
				acc := anna.New(cfg, idx)
				p := anna.Params{W: wv, K: min(cfg.K, h.Scale.RecallY), SkipFunctional: true}
				base := acc.SearchBaseline(queries, p)
				opt := acc.SearchBatched(queries, p)
				rows = append(rows, TrafficRow{
					Workload: wd.Key, Compression: comp.Name,
					Config: fmt.Sprintf("%d", ks),
					B:      queries.Rows, W: wv,
					BaselineQPS: base.QPS, BatchedQPS: opt.QPS,
					Speedup:          opt.QPS / base.QPS,
					TrafficReduction: float64(base.TotalTrafficBytes) / float64(opt.TotalTrafficBytes),
				})
			}
		}
	}
	return rows
}

// WorkedExample reproduces the Section IV closed-form example: B=1000,
// |C|=10000, |W|=128 gives a 12.8x code-traffic reduction, and B=1000,
// |C|=10000, |W|=40 gives 4 SCMs per query for 16 SCMs.
type WorkedExample struct {
	TrafficReduction float64
	SCMsPerQuery     int
}

// RunWorkedExample evaluates the Section IV arithmetic through the
// analytic model.
func (h *Harness) RunWorkedExample() WorkedExample {
	g := anna.Geometry{N: 1_000_000_000, D: 128, M: 64, Ks: 256, C: 10000}
	// Ideal code-only reduction: B·W lists vs |C| lists.
	reduction := float64(PaperB*128) / float64(g.C)
	alloc := anna.Analytic(anna.DefaultConfig(), g, PaperB, 40, PaperK, 0)
	return WorkedExample{TrafficReduction: reduction, SCMsPerQuery: alloc.SCMsPerQuery}
}

// PrintTraffic renders the optimization results and the per-compression
// geomeans the paper quotes.
func (h *Harness) PrintTraffic(rows []TrafficRow) {
	h.printf("\n=== Section V-B: impact of the memory traffic optimization (simulated, scaled) ===\n")
	tw := newTable(h.Out)
	tw.row("dataset", "comp", "k*", "B", "W", "baseQPS", "optQPS", "speedup", "traffic reduction")
	for _, r := range rows {
		tw.row(r.Workload, r.Compression, r.Config, itoa(r.B), itoa(r.W),
			f0(r.BaselineQPS), f0(r.BatchedQPS), f2(r.Speedup)+"x", f2(r.TrafficReduction)+"x")
	}
	tw.flush()

	// Geomean per (compression, k*), mirroring the paper's summary.
	type key struct{ comp, ks string }
	agg := map[key][]float64{}
	for _, r := range rows {
		k := key{r.Compression, r.Config}
		agg[k] = append(agg[k], r.Speedup)
	}
	for _, comp := range []string{"4:1", "8:1"} {
		for _, ks := range []string{"16", "256"} {
			vs := agg[key{comp, ks}]
			if len(vs) == 0 {
				continue
			}
			h.printf("geomean speedup %s k*=%s: %.2fx (paper: 5.1/5.0 and 6.9 at 4:1; 3.9/3.9 and 4.6 at 8:1)\n",
				comp, ks, geomean(vs))
		}
	}
	ex := h.RunWorkedExample()
	h.printf("Section IV worked example: ideal traffic reduction %.1fx (paper 12.8x), SCMs/query at W=40: %d (paper 4)\n",
		ex.TrafficReduction, ex.SCMsPerQuery)
}

func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}
