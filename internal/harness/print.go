package harness

import (
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
)

// table is a thin tabwriter wrapper for aligned experiment output.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer) *table {
	return &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, c)
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { t.w.Flush() }

func itoa(v int) string { return strconv.Itoa(v) }

// f0 formats a float with no decimals (QPS-style).
func f0(v float64) string { return strconv.FormatFloat(v, 'f', 0, 64) }

// f1..f3 format with fixed decimals.
func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// ms formats seconds as milliseconds.
func ms(sec float64) string { return strconv.FormatFloat(sec*1e3, 'f', 3, 64) + "ms" }

// mj formats joules as millijoules.
func mj(j float64) string { return strconv.FormatFloat(j*1e3, 'f', 3, 64) + "mJ" }

// gb formats bytes as gigabytes.
func gb(b int64) string { return strconv.FormatFloat(float64(b)/1e9, 'f', 2, 64) + "GB" }

// bytesHuman picks a readable unit.
func bytesHuman(b int64) string {
	switch {
	case b >= 1e9:
		return gb(b)
	case b >= 1e6:
		return strconv.FormatFloat(float64(b)/1e6, 'f', 2, 64) + "MB"
	case b >= 1e3:
		return strconv.FormatFloat(float64(b)/1e3, 'f', 1, 64) + "KB"
	default:
		return strconv.FormatInt(b, 10) + "B"
	}
}
