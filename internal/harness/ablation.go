package harness

import (
	"fmt"

	"anna/internal/anna"
	"anna/internal/energy"
)

// AblationRow is one design-space point: a configuration variant and its
// simulated/projected performance (and silicon cost where it changes).
type AblationRow struct {
	Study   string
	Variant string
	QPS     float64
	// LatencySeconds applies to studies that affect single-query latency.
	LatencySeconds float64
	// AreaMM2/PowerW are filled for silicon-affecting variants.
	AreaMM2, PowerW float64
}

// RunAblations evaluates the design choices DESIGN.md calls out:
// double buffering, the top-k rate limit, SCM allocation policy, the
// CPM query-group size, memory bandwidth, the encoded-vector-buffer
// size, and compute scaling (N_SCM / N_u / N_cu). Simulator studies run
// on the scaled index of the given workload; scaling studies use the
// paper-scale analytic model plus the silicon model.
func (h *Harness) RunAblations(wd WorkloadDef) []AblationRow {
	comp, _ := CompressionByName("4:1")
	idx := h.Index(wd, comp, 256)
	queries := h.trafficBatch(wd)
	_, c := h.scaledNC(wd)
	w := Fig10W
	if w > c {
		w = c
	}
	k := min(anna.DefaultConfig().K, h.Scale.RecallY)
	var rows []AblationRow

	simQPS := func(cfg anna.Config, scmPerQ int) float64 {
		acc := anna.New(cfg, idx)
		return acc.SearchBatched(queries, anna.Params{
			W: w, K: k, SCMsPerQuery: scmPerQ, SkipFunctional: true,
		}).QPS
	}

	// Double buffering (Figure 7's overlap).
	on := anna.DefaultConfig()
	off := anna.DefaultConfig()
	off.DoubleBuffer = false
	rows = append(rows,
		AblationRow{Study: "double-buffering", Variant: "on (paper)", QPS: simQPS(on, 0)},
		AblationRow{Study: "double-buffering", Variant: "off", QPS: simQPS(off, 0)},
	)

	// Top-k input rate limit (1 vector/cycle into the P-heap).
	un := anna.DefaultConfig()
	un.TopKRateLimit = false
	rows = append(rows,
		AblationRow{Study: "topk-rate-limit", Variant: "limited (paper)", QPS: simQPS(on, 0)},
		AblationRow{Study: "topk-rate-limit", Variant: "unlimited", QPS: simQPS(un, 0)},
	)

	// SCM allocation: inter-query vs intra-query (Section IV-A).
	for _, s := range []int{1, 2, 4, 8, 16} {
		rows = append(rows, AblationRow{
			Study:   "scm-allocation",
			Variant: fmt.Sprintf("%d SCMs/query", s),
			QPS:     simQPS(on, s),
		})
	}
	rows = append(rows, AblationRow{
		Study: "scm-allocation", Variant: "auto (paper heuristic)", QPS: simQPS(on, 0),
	})

	// CPM query-group size (centroid stream amortisation; DESIGN.md
	// documents this as an assumption the paper leaves open).
	for _, g := range []int{1, 16, 64, 256} {
		cfg := anna.DefaultConfig()
		cfg.QueryGroupSize = g
		rows = append(rows, AblationRow{
			Study:   "query-group",
			Variant: fmt.Sprintf("G=%d", g),
			QPS:     simQPS(cfg, 0),
		})
	}

	// The remaining studies use the paper-scale analytic model.
	g := h.PaperGeometry(wd, comp, 256)
	pw := paperW(w, h, wd)

	for _, bw := range []float64{32, 64, 75, 128, 256} {
		cfg := anna.DefaultConfig()
		cfg.DRAM.BandwidthBytesPerCycle = bw
		r := anna.Analytic(cfg, g, PaperB, pw, PaperK, 0)
		rows = append(rows, AblationRow{
			Study:   "memory-bandwidth",
			Variant: fmt.Sprintf("%.0f GB/s", bw),
			QPS:     r.QPS, LatencySeconds: r.LatencySeconds,
		})
	}

	for _, evb := range []int64{256 << 10, 1 << 20, 4 << 20, 16 << 20} {
		cfg := anna.DefaultConfig()
		cfg.EVBBytes = evb
		r := anna.Analytic(cfg, g, PaperB, pw, PaperK, 0)
		shape := energy.PaperShape()
		shape.EVBBytes = evb
		b := energy.Model(shape)
		rows = append(rows, AblationRow{
			Study:   "evb-size",
			Variant: fmt.Sprintf("%d KiB", evb>>10),
			QPS:     r.QPS, AreaMM2: b.TotalArea, PowerW: b.TotalW,
		})
	}

	for _, nscm := range []int{4, 8, 16, 32} {
		cfg := anna.DefaultConfig()
		cfg.NSCM = nscm
		r := anna.Analytic(cfg, g, PaperB, pw, PaperK, 0)
		shape := energy.PaperShape()
		shape.NSCM = nscm
		b := energy.Model(shape)
		rows = append(rows, AblationRow{
			Study:   "nscm",
			Variant: fmt.Sprintf("N_SCM=%d", nscm),
			QPS:     r.QPS, AreaMM2: b.TotalArea, PowerW: b.TotalW,
		})
	}

	for _, nu := range []int{32, 64, 128} {
		cfg := anna.DefaultConfig()
		cfg.NU = nu
		r := anna.Analytic(cfg, g, PaperB, pw, PaperK, 0)
		shape := energy.PaperShape()
		shape.NU = nu
		b := energy.Model(shape)
		rows = append(rows, AblationRow{
			Study:   "nu",
			Variant: fmt.Sprintf("N_u=%d", nu),
			QPS:     r.QPS, LatencySeconds: r.LatencySeconds,
			AreaMM2: b.TotalArea, PowerW: b.TotalW,
		})
	}

	for _, ncu := range []int{48, 96, 192} {
		cfg := anna.DefaultConfig()
		cfg.NCU = ncu
		r := anna.Analytic(cfg, g, PaperB, pw, PaperK, 0)
		shape := energy.PaperShape()
		shape.NCU = ncu
		b := energy.Model(shape)
		rows = append(rows, AblationRow{
			Study:   "ncu",
			Variant: fmt.Sprintf("N_cu=%d", ncu),
			QPS:     r.QPS, LatencySeconds: r.LatencySeconds,
			AreaMM2: b.TotalArea, PowerW: b.TotalW,
		})
	}
	return rows
}

// PrintAblations renders the design-space study.
func (h *Harness) PrintAblations(rows []AblationRow) {
	h.printf("\n=== Design-space ablations ===\n")
	tw := newTable(h.Out)
	tw.row("study", "variant", "QPS", "latency", "area(mm^2)", "power(W)")
	for _, r := range rows {
		lat, area, pw := "-", "-", "-"
		if r.LatencySeconds > 0 {
			lat = ms(r.LatencySeconds)
		}
		if r.AreaMM2 > 0 {
			area = f2(r.AreaMM2)
			pw = f2(r.PowerW)
		}
		tw.row(r.Study, r.Variant, f0(r.QPS), lat, area, pw)
	}
	tw.flush()
}
