package pheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"anna/internal/topk"
)

func TestBasicTopK(t *testing.T) {
	p := New(3)
	if p.Capacity() != 3 {
		t.Fatalf("capacity %d", p.Capacity())
	}
	accepted := p.OfferAll([]Entry{
		{Score: 5, ID: 0}, {Score: 1, ID: 1}, {Score: 3, ID: 2},
		{Score: 2, ID: 3}, {Score: 4, ID: 4},
	})
	// 1 and 2 are displaced / rejected: accepted = 3 initial + 2 larger
	// replacements... entries 5,1,3 inserted, then 2 rejected (min is 1?
	// after inserts min=1; 2>1 accepted, displacing 1; then 4>2 accepted.
	if accepted != 5 {
		t.Errorf("accepted = %d, want 5", accepted)
	}
	got := p.Contents()
	sort.Slice(got, func(i, j int) bool { return got[i].Score < got[j].Score })
	want := []float32{3, 4, 5}
	if len(got) != 3 {
		t.Fatalf("%d entries", len(got))
	}
	for i, e := range got {
		if e.Score != want[i] {
			t.Errorf("contents[%d] = %v, want %v", i, e.Score, want[i])
		}
	}
	if min, ok := p.Min(); !ok || min.Score != 3 {
		t.Errorf("Min = %v,%v", min, ok)
	}
}

func TestRejectBelowMin(t *testing.T) {
	p := New(2)
	p.OfferAll([]Entry{{Score: 10, ID: 0}, {Score: 20, ID: 1}})
	acc := p.OfferAll([]Entry{{Score: 5, ID: 2}, {Score: 10, ID: 3}})
	if acc != 0 {
		t.Errorf("accepted %d entries <= min", acc)
	}
}

// The structural P-heap must agree with the abstract top-k selector on
// every input stream.
func TestMatchesAbstractSelector(t *testing.T) {
	f := func(scores []float32, kRaw uint8) bool {
		if len(scores) == 0 || len(scores) > 300 {
			return len(scores) == 0
		}
		k := int(kRaw)%16 + 1
		p := New(k)
		sel := topk.NewSelector(k)
		entries := make([]Entry, len(scores))
		for i, s := range scores {
			entries[i] = Entry{Score: s, ID: int64(i)}
			sel.Push(int64(i), s)
		}
		p.OfferAll(entries)

		got := p.Contents()
		sort.Slice(got, func(i, j int) bool { return got[i].Score > got[j].Score })
		want := sel.Results()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			// Scores must match exactly; IDs may differ under ties.
			if got[i].Score != want[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHeapInvariantMaintained(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := New(63)
	for i := 0; i < 2000; i++ {
		for {
			issued, _ := p.Offer(Entry{Score: rng.Float32(), ID: int64(i)})
			p.Step()
			if issued {
				break
			}
		}
		// Spot-check the min-heap invariant over settled nodes every few
		// operations (in-flight tokens may hold values transiently).
		if i%200 == 199 {
			p.Drain()
			for n := 0; n < len(p.nodes); n++ {
				if !p.valid[n] {
					continue
				}
				for _, c := range []int{2*n + 1, 2*n + 2} {
					if c < len(p.nodes) && p.valid[c] && p.nodes[c].Score < p.nodes[n].Score {
						t.Fatalf("heap violation at %d/%d after %d ops", n, c, i+1)
					}
				}
			}
		}
	}
}

// Pipelining: operations overlap across levels, so total cycles for a
// stream are far below ops × depth.
func TestPipelineOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const k, n = 1000, 5000
	p := New(k) // 10 levels
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Score: rng.Float32(), ID: int64(i)}
	}
	p.OfferAll(entries)
	// Unpipelined cost would be ~n*levels = 50000+ cycles; pipelined is
	// near one issue slot per input.
	if p.Cycles > int64(3*n) {
		t.Errorf("cycles = %d for %d inputs — pipeline not overlapping", p.Cycles, n)
	}
	if p.MaxTokens < 2 {
		t.Errorf("MaxTokens = %d, no concurrent operations observed", p.MaxTokens)
	}
}

func TestCapacityOne(t *testing.T) {
	p := New(1)
	p.OfferAll([]Entry{{Score: 1, ID: 1}, {Score: 3, ID: 3}, {Score: 2, ID: 2}})
	got := p.Contents()
	if len(got) != 1 || got[0].Score != 3 {
		t.Fatalf("contents %+v", got)
	}
}

func TestPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestEmptyMin(t *testing.T) {
	p := New(4)
	if _, ok := p.Min(); ok {
		t.Error("Min ok on empty heap")
	}
}

func BenchmarkOfferAll(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	entries := make([]Entry, 4096)
	for i := range entries {
		entries[i] = Entry{Score: rng.Float32(), ID: int64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := New(256)
		p.OfferAll(entries)
	}
}
