// Package pheap implements the P-heap pipelined hardware priority queue
// of Bhagwan & Lin (INFOCOM 2000), the structure ANNA's top-k selection
// units build on (Section III-B, module 4).
//
// A P-heap is a binary heap stored level by level (one SRAM block per
// level in hardware) in which an insert or replace operation moves down
// the tree one level per cycle. Because an operation at level L only
// touches levels L and L+1, a new operation may enter the root while
// earlier operations are still percolating below — that pipelining is
// what lets the hardware sustain one input per cycle independent of heap
// depth. Each node carries a free-slot counter for its subtree; an
// insert token decrements counters along its path, reserving space so
// concurrent in-flight inserts can never collide (the paper's design
// uses exactly these per-level capacity counters).
//
// ANNA uses the queue "inverted": it tracks the k LARGEST scores by
// keeping a MIN-heap of the current top-k and replacing the minimum
// whenever a larger score arrives. Functional equivalence with the
// abstract selector in internal/topk is pinned by tests.
package pheap

import "fmt"

// Entry is one queue element: a score and its payload (vector ID).
type Entry struct {
	Score float32
	ID    int64
}

// op is a percolating operation token.
type op struct {
	level int   // pipeline stage (tree level) the token occupies
	pos   int   // node index the token operates on
	carry Entry // value being pushed down
	kind  opKind
}

type opKind int

const (
	opNone opKind = iota
	// opReplaceMin replaces the root (current minimum) with carry and
	// sifts it down to restore heap order.
	opReplaceMin
	// opInsert places carry at a reserved free slot on its way down.
	opInsert
)

// PHeap is the structural pipelined priority queue.
type PHeap struct {
	capacity int
	levels   int
	// nodes is the array binary heap of exactly capacity slots: node i
	// has children 2i+1 and 2i+2 when < capacity.
	nodes []Entry
	valid []bool
	// free[i] counts unreserved free slots in the subtree rooted at i.
	free []int
	size int

	// tokens are in-flight operations, at most one per level (one
	// comparator stage per level in hardware).
	tokens []op

	// Cycles counts simulated clock cycles consumed by Step.
	Cycles int64
	// MaxTokens tracks the peak number of concurrent in-flight
	// operations (pipeline occupancy).
	MaxTokens int
}

// New returns a P-heap of capacity k. It panics if k <= 0.
func New(k int) *PHeap {
	if k <= 0 {
		panic("pheap: capacity must be positive")
	}
	levels := 1
	for (1<<levels)-1 < k {
		levels++
	}
	p := &PHeap{
		capacity: k,
		levels:   levels,
		nodes:    make([]Entry, k),
		valid:    make([]bool, k),
		free:     make([]int, k),
		tokens:   make([]op, levels),
	}
	for i := k - 1; i >= 0; i-- {
		p.free[i] = 1 + p.childFree(2*i+1) + p.childFree(2*i+2)
	}
	return p
}

func (p *PHeap) childFree(i int) int {
	if i >= p.capacity {
		return 0
	}
	return p.free[i]
}

// Capacity returns k.
func (p *PHeap) Capacity() int { return p.capacity }

// Len returns the number of stored entries.
func (p *PHeap) Len() int { return p.size }

// Min returns the current minimum (the root). ok is false while the
// root is empty.
func (p *PHeap) Min() (Entry, bool) {
	if !p.valid[0] {
		return Entry{}, false
	}
	return p.nodes[0], true
}

// CanIssue reports whether a new operation may enter the pipeline this
// cycle. An operation at level L touches levels L and L+1, so the
// classic P-heap admits a new op only when both the root stage and the
// level below it are clear (one op every other cycle, Bhagwan & Lin).
// Inputs that lose the root comparison are discarded without creating a
// token, so the unit still sustains one INPUT per cycle in the common
// case — which is how ANNA's top-k unit meets its 1/cycle input rate:
// after warmup almost every candidate is a discard.
func (p *PHeap) CanIssue() bool {
	if p.tokens[0].kind != opNone {
		return false
	}
	return p.levels < 2 || p.tokens[1].kind == opNone
}

// Offer issues one input, mimicking the ANNA top-k unit:
//
//   - with free capacity, the entry is inserted;
//   - else if e beats the current minimum, it replaces it;
//   - else the input is discarded after a single root comparison.
//
// issued is false when the root stage is busy (caller must Step first);
// accepted reports whether the entry entered the heap.
func (p *PHeap) Offer(e Entry) (issued, accepted bool) {
	if !p.CanIssue() {
		return false, false
	}
	if p.free[0] > 0 {
		p.free[0]--
		p.size++
		p.tokens[0] = op{level: 0, pos: 0, carry: e, kind: opInsert}
		return true, true
	}
	min, _ := p.Min()
	if e.Score <= min.Score {
		return true, false
	}
	p.tokens[0] = op{level: 0, pos: 0, carry: e, kind: opReplaceMin}
	return true, true
}

// Step advances every in-flight operation by one level — one hardware
// clock cycle. Deepest tokens move first so a token can enter the stage
// its successor just vacated.
func (p *PHeap) Step() {
	p.Cycles++
	inflight := 0
	for l := p.levels - 1; l >= 0; l-- {
		if p.tokens[l].kind == opNone {
			continue
		}
		inflight++
		p.advance(&p.tokens[l])
	}
	if inflight > p.MaxTokens {
		p.MaxTokens = inflight
	}
}

// advance executes one pipeline stage of token t.
func (p *PHeap) advance(t *op) {
	i := t.pos
	switch t.kind {
	case opInsert:
		if !p.valid[i] {
			// The reservation made on entry to this node is consumed.
			p.nodes[i] = t.carry
			p.valid[i] = true
			t.kind = opNone
			return
		}
		// Min-heap on the way down: keep the smaller value here, carry
		// the larger one toward the reserved slot below.
		if t.carry.Score < p.nodes[i].Score {
			p.nodes[i], t.carry = t.carry, p.nodes[i]
		}
		// Reserve a slot in a child subtree and move there.
		l, r := 2*i+1, 2*i+2
		var next int
		switch {
		case p.childFree(l) > 0:
			next = l
		case p.childFree(r) > 0:
			next = r
		default:
			panic(fmt.Sprintf("pheap: reservation lost under node %d", i))
		}
		p.free[next]--
		t.pos = next
		p.stepLevel(t)
	case opReplaceMin:
		l, r := 2*i+1, 2*i+2
		smallest := -1
		if l < p.capacity && p.valid[l] {
			smallest = l
		}
		if r < p.capacity && p.valid[r] && (smallest == -1 || p.nodes[r].Score < p.nodes[smallest].Score) {
			smallest = r
		}
		if smallest == -1 || p.nodes[smallest].Score >= t.carry.Score {
			p.nodes[i] = t.carry
			p.valid[i] = true
			t.kind = opNone
			return
		}
		p.nodes[i] = p.nodes[smallest]
		// The vacated child slot will be overwritten when the token
		// lands there; mark it filled by the parent value conceptually.
		t.pos = smallest
		p.stepLevel(t)
	}
}

// stepLevel moves the token to the next level's stage; if that stage is
// occupied the token stalls and retries next Step.
func (p *PHeap) stepLevel(t *op) {
	next := t.level + 1
	if next >= p.levels {
		// Deepest level: the operation completes in place this cycle.
		p.land(t)
		return
	}
	if p.tokens[next].kind != opNone {
		return // structural stall
	}
	p.tokens[next] = op{level: next, pos: t.pos, carry: t.carry, kind: t.kind}
	t.kind = opNone
}

// land finalises a token whose destination is at the deepest level.
func (p *PHeap) land(t *op) {
	p.nodes[t.pos] = t.carry
	p.valid[t.pos] = true
	t.kind = opNone
}

// Drain runs the pipeline until no tokens remain in flight.
func (p *PHeap) Drain() {
	for {
		busy := false
		for l := range p.tokens {
			if p.tokens[l].kind != opNone {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
		p.Step()
	}
}

// OfferAll feeds entries one per cycle (stepping the pipeline as the
// hardware would) and returns how many were accepted.
func (p *PHeap) OfferAll(entries []Entry) int {
	accepted := 0
	for _, e := range entries {
		for {
			issued, acc := p.Offer(e)
			p.Step()
			if issued {
				if acc {
					accepted++
				}
				break
			}
		}
	}
	p.Drain()
	return accepted
}

// Contents returns the stored entries in arbitrary order.
func (p *PHeap) Contents() []Entry {
	out := make([]Entry, 0, p.size)
	for i, ok := range p.valid {
		if ok {
			out = append(out, p.nodes[i])
		}
	}
	return out
}
