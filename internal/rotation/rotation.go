// Package rotation provides random orthonormal transforms of the vector
// space. Rotating the database (and queries) before product quantization
// is the core of OPQ [Ge et al.]; the paper notes ANNA supports OPQ
// unchanged "since their computation pattern for the search remains the
// same" (Section VI). A random rotation is the standard
// training-free variant: it spreads variance evenly across PQ sub-spaces,
// which helps when a few dimensions dominate.
package rotation

import (
	"fmt"
	"math"
	"math/rand"

	"anna/internal/vecmath"
)

// Matrix is an orthonormal D×D transform.
type Matrix struct {
	D int
	// Rows holds the D orthonormal basis vectors, row-major.
	Rows []float32
}

// NewRandom samples a random rotation by Gram-Schmidt orthonormalisation
// of a Gaussian matrix (Haar-ish; exact distribution does not matter for
// OPQ-style preconditioning). It panics if d <= 0.
func NewRandom(d int, seed int64) *Matrix {
	if d <= 0 {
		panic(fmt.Sprintf("rotation: invalid dimension %d", d))
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Matrix{D: d, Rows: make([]float32, d*d)}
	for attempt := 0; ; attempt++ {
		for i := range m.Rows {
			m.Rows[i] = float32(rng.NormFloat64())
		}
		if m.gramSchmidt() {
			return m
		}
		if attempt > 4 {
			panic("rotation: repeated rank deficiency (should be impossible)")
		}
	}
}

// Identity returns the identity transform.
func Identity(d int) *Matrix {
	m := &Matrix{D: d, Rows: make([]float32, d*d)}
	for i := 0; i < d; i++ {
		m.Rows[i*d+i] = 1
	}
	return m
}

// gramSchmidt orthonormalises the rows in place, reporting false on rank
// deficiency.
func (m *Matrix) gramSchmidt() bool {
	d := m.D
	for i := 0; i < d; i++ {
		ri := m.row(i)
		// Subtract projections onto previous rows (twice, for stability).
		for pass := 0; pass < 2; pass++ {
			for j := 0; j < i; j++ {
				rj := m.row(j)
				dot := vecmath.Dot(ri, rj)
				vecmath.AXPY(ri, -dot, rj)
			}
		}
		n := vecmath.Norm(ri)
		if n < 1e-6 {
			return false
		}
		vecmath.Scale(ri, 1/n)
	}
	return true
}

func (m *Matrix) row(i int) []float32 { return m.Rows[i*m.D : (i+1)*m.D] }

// Apply stores R·src into dst. dst must not alias src.
// It panics on dimension mismatch.
func (m *Matrix) Apply(dst, src []float32) {
	if len(dst) != m.D || len(src) != m.D {
		panic("rotation: Apply dimension mismatch")
	}
	for i := 0; i < m.D; i++ {
		dst[i] = vecmath.Dot(m.row(i), src)
	}
}

// ApplyAll returns a new matrix with every row of src rotated.
func (m *Matrix) ApplyAll(src *vecmath.Matrix) *vecmath.Matrix {
	if src.Cols != m.D {
		panic("rotation: ApplyAll dimension mismatch")
	}
	out := vecmath.NewMatrix(src.Rows, src.Cols)
	for r := 0; r < src.Rows; r++ {
		m.Apply(out.Row(r), src.Row(r))
	}
	return out
}

// OrthonormalityError returns max |R·Rᵀ - I| over all entries — a test
// and validation helper.
func (m *Matrix) OrthonormalityError() float64 {
	var worst float64
	for i := 0; i < m.D; i++ {
		for j := i; j < m.D; j++ {
			dot := float64(vecmath.Dot(m.row(i), m.row(j)))
			want := 0.0
			if i == j {
				want = 1
			}
			if e := math.Abs(dot - want); e > worst {
				worst = e
			}
		}
	}
	return worst
}
