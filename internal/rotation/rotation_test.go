package rotation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anna/internal/vecmath"
)

func TestOrthonormality(t *testing.T) {
	for _, d := range []int{1, 2, 16, 128} {
		m := NewRandom(d, 7)
		if e := m.OrthonormalityError(); e > 1e-4 {
			t.Errorf("d=%d orthonormality error %v", d, e)
		}
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	if e := id.OrthonormalityError(); e != 0 {
		t.Errorf("identity error %v", e)
	}
	src := []float32{1, 2, 3, 4}
	dst := make([]float32, 4)
	id.Apply(dst, src)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("identity changed the vector: %v", dst)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := NewRandom(8, 3)
	b := NewRandom(8, 3)
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatal("same seed, different rotation")
		}
	}
	c := NewRandom(8, 4)
	same := true
	for i := range a.Rows {
		if a.Rows[i] != c.Rows[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical rotation")
	}
}

// Rotations preserve norms and pairwise distances/inner products — the
// property that makes OPQ search-compatible.
func TestIsometryProperty(t *testing.T) {
	m := NewRandom(8, 11)
	f := func(raw [16]float32) bool {
		for _, v := range raw {
			if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 1e3 {
				return true
			}
		}
		a, b := raw[:8], raw[8:]
		ra, rb := make([]float32, 8), make([]float32, 8)
		m.Apply(ra, a)
		m.Apply(rb, b)
		tol := 1e-3 * (1 + float64(vecmath.Norm(a))*float64(vecmath.Norm(b)))
		if math.Abs(float64(vecmath.Dot(ra, rb)-vecmath.Dot(a, b))) > tol {
			return false
		}
		return math.Abs(float64(vecmath.L2Sq(ra, rb)-vecmath.L2Sq(a, b))) < 4*tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestApplyAll(t *testing.T) {
	m := NewRandom(4, 5)
	src := vecmath.NewMatrix(3, 4)
	rng := rand.New(rand.NewSource(1))
	for i := range src.Data {
		src.Data[i] = float32(rng.NormFloat64())
	}
	out := m.ApplyAll(src)
	for r := 0; r < 3; r++ {
		want := make([]float32, 4)
		m.Apply(want, src.Row(r))
		for i := range want {
			if out.Row(r)[i] != want[i] {
				t.Fatalf("ApplyAll row %d differs", r)
			}
		}
	}
}

func TestPanics(t *testing.T) {
	m := NewRandom(4, 1)
	for _, f := range []func(){
		func() { NewRandom(0, 1) },
		func() { m.Apply(make([]float32, 3), make([]float32, 4)) },
		func() { m.ApplyAll(vecmath.NewMatrix(1, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
