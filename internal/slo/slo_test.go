package slo

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"anna/internal/metrics"
	"anna/internal/tsdb"
)

var update = flag.Bool("update", false, "rewrite golden files")

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// buildScenario replays a deterministic 20-scrape timeline: 10 healthy
// seconds, then 10 seconds at a 50% error rate with recall dipping
// under target. Returns the engine after its final evaluation and the
// timestamp of that evaluation.
func buildScenario(t *testing.T, logger *slog.Logger) (*Engine, time.Time) {
	t.Helper()
	var reqs, errs atomic.Uint64
	var recallMilli atomic.Uint64
	db := tsdb.New(64,
		tsdb.Series{Name: "requests", Kind: tsdb.CounterKind, Sample: func() float64 { return float64(reqs.Load()) }},
		tsdb.Series{Name: "errors_5xx", Kind: tsdb.CounterKind, Sample: func() float64 { return float64(errs.Load()) }},
		tsdb.Series{Name: "recall", Kind: tsdb.GaugeKind, Sample: func() float64 { return float64(recallMilli.Load()) / 1000 }},
	)
	eng := New(Options{
		FastShort: 2 * time.Second, FastLong: 8 * time.Second,
		SlowShort: 4 * time.Second, SlowLong: 16 * time.Second,
		Logger: logger,
	},
		SLO{Name: "availability", Objective: 0.99, BadRatio: BadShare(db, "requests", Part{Series: "errors_5xx", Weight: 1})},
		SLO{Name: "recall", Objective: 0.99, BadRatio: BadBelow(db, "recall", 0.99, true)},
	)
	db.OnScrape(eng.EvaluateAt)

	base := time.UnixMilli(1_700_000_000_000)
	var at time.Time
	for i := 0; i < 20; i++ {
		reqs.Add(100)
		if i >= 10 {
			errs.Add(50)
			recallMilli.Store(950)
		} else {
			recallMilli.Store(995)
		}
		at = base.Add(time.Duration(i) * time.Second)
		db.ScrapeAt(at)
	}
	return eng, at
}

func TestAlertsGolden(t *testing.T) {
	eng, _ := buildScenario(t, quietLogger())

	rec := httptest.NewRecorder()
	eng.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/alerts", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, rec.Body.Bytes(), "", "  "); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}

	golden := filepath.Join("testdata", "alerts.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(pretty.Bytes(), want) {
		t.Errorf("alerts JSON drifted from golden:\ngot:\n%s\nwant:\n%s", pretty.Bytes(), want)
	}
}

func TestScenarioFires(t *testing.T) {
	var log bytes.Buffer
	eng, _ := buildScenario(t, slog.New(slog.NewTextHandler(&log, nil)))
	byName := map[string]Alert{}
	for _, a := range eng.Status() {
		byName[a.SLO] = a
	}
	if byName["availability"].State != Firing {
		t.Errorf("availability state %s, want firing", byName["availability"].State)
	}
	if byName["recall"].State != Firing {
		t.Errorf("recall state %s, want firing", byName["recall"].State)
	}
	if b := byName["availability"].BudgetRemaining; b != 0 {
		t.Errorf("availability budget remaining %v, want 0 under 50%% errors", b)
	}
	if !strings.Contains(log.String(), "slo alert firing") {
		t.Errorf("fire transition not logged:\n%s", log.String())
	}
}

// The core acceptance shape: ok while healthy, firing under sustained
// errors, back to ok once the fault clears and the windows drain.
func TestTransitionsOKFiringOK(t *testing.T) {
	var reqs, errs atomic.Uint64
	db := tsdb.New(256,
		tsdb.Series{Name: "requests", Kind: tsdb.CounterKind, Sample: func() float64 { return float64(reqs.Load()) }},
		tsdb.Series{Name: "errors_5xx", Kind: tsdb.CounterKind, Sample: func() float64 { return float64(errs.Load()) }},
	)
	var log bytes.Buffer
	eng := New(Options{
		FastShort: 2 * time.Second, FastLong: 6 * time.Second,
		SlowShort: 4 * time.Second, SlowLong: 10 * time.Second,
		Logger: slog.New(slog.NewTextHandler(&log, nil)),
	}, SLO{Name: "availability", Objective: 0.99, BadRatio: BadShare(db, "requests", Part{Series: "errors_5xx", Weight: 1})})
	db.OnScrape(eng.EvaluateAt)

	base := time.UnixMilli(0)
	state := func() State { return eng.Status()[0].State }
	step := func(i int, bad bool) {
		reqs.Add(100)
		if bad {
			errs.Add(50)
		}
		db.ScrapeAt(base.Add(time.Duration(i) * time.Second))
	}
	i := 0
	for ; i < 10; i++ {
		step(i, false)
	}
	if got := state(); got != OK {
		t.Fatalf("healthy phase state %s, want ok", got)
	}
	for ; i < 20; i++ {
		step(i, true)
	}
	if got := state(); got != Firing {
		t.Fatalf("fault phase state %s, want firing", got)
	}
	// Fault clears; after the fast-short window drains of bad scrapes the
	// fast pair stops confirming, and once every window drains we are ok.
	for ; i < 40; i++ {
		step(i, false)
	}
	if got := state(); got != OK {
		t.Fatalf("recovered state %s, want ok", got)
	}
	if !strings.Contains(log.String(), "slo alert cleared") {
		t.Errorf("clear transition not logged:\n%s", log.String())
	}
}

func TestNoTrafficIsNotBurning(t *testing.T) {
	db := tsdb.New(16,
		tsdb.Series{Name: "requests", Kind: tsdb.CounterKind, Sample: func() float64 { return 0 }},
	)
	eng := New(Options{Logger: quietLogger()},
		SLO{Name: "availability", Objective: 0.999, BadRatio: BadShare(db, "requests")})
	db.OnScrape(eng.EvaluateAt)
	for i := 0; i < 5; i++ {
		db.ScrapeAt(time.UnixMilli(int64(i) * 1000))
	}
	a := eng.Status()[0]
	if a.State != OK || a.BudgetRemaining != 1 {
		t.Errorf("idle service: state %s budget %v, want ok/1", a.State, a.BudgetRemaining)
	}
}

func TestPartialWeight(t *testing.T) {
	var reqs, partials atomic.Uint64
	db := tsdb.New(16,
		tsdb.Series{Name: "requests", Kind: tsdb.CounterKind, Sample: func() float64 { return float64(reqs.Load()) }},
		tsdb.Series{Name: "partials", Kind: tsdb.CounterKind, Sample: func() float64 { return float64(partials.Load()) }},
	)
	bad := BadShare(db, "requests", Part{Series: "partials", Weight: 0.5})
	base := time.UnixMilli(0)
	db.ScrapeAt(base)
	reqs.Add(100)
	partials.Add(10)
	db.ScrapeAt(base.Add(time.Second))
	got, ok := bad(time.Minute, base.Add(time.Second))
	if !ok || got != 0.05 {
		t.Errorf("partial-weighted bad ratio = %v ok=%v, want 0.05", got, ok)
	}
}

func TestRegisterPublishesGauges(t *testing.T) {
	eng, _ := buildScenario(t, quietLogger())
	reg := metrics.NewRegistry()
	eng.Register(reg)
	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`anna_slo_burn_rate{slo="availability",window="2s"}`,
		`anna_slo_budget_remaining{slo="recall"}`,
		`anna_slo_state{slo="availability"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDashHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	DashHandler("annaserve test").ServeHTTP(rec, httptest.NewRequest("GET", "/debug/dash", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"annaserve test", "/alerts", "/debug/tsdb", "/debug/queries"} {
		if !strings.Contains(body, want) {
			t.Errorf("dash page missing %q", want)
		}
	}
	if strings.Contains(body, "http://") || strings.Contains(body, "https://") {
		t.Error("dash page references external assets; must be self-contained")
	}
}
