package slo

import "net/http"

// DashHandler serves /debug/dash: a single self-contained HTML page —
// no external assets, styles and script inline — that polls the
// process's own /alerts, /debug/tsdb and /debug/queries endpoints and
// renders SLO state, error-budget bars, sparklines per series, and the
// slowest recent traces. The same page works for annaserve and
// annarouter because it only speaks those three endpoints.
func DashHandler(title string) http.Handler {
	page := []byte(`<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>` + title + ` — anna dashboard</title>
<style>
 body{font:13px/1.5 -apple-system,"Segoe UI",Roboto,sans-serif;margin:0;background:#0d1117;color:#c9d1d9}
 header{padding:10px 18px;background:#161b22;border-bottom:1px solid #30363d;display:flex;gap:14px;align-items:baseline}
 header h1{font-size:15px;margin:0;color:#e6edf3}
 header .sub{color:#8b949e;font-size:12px}
 main{padding:14px 18px;max-width:1100px}
 h2{font-size:13px;color:#8b949e;text-transform:uppercase;letter-spacing:.06em;margin:18px 0 8px}
 .cards{display:flex;flex-wrap:wrap;gap:10px}
 .card{background:#161b22;border:1px solid #30363d;border-radius:6px;padding:10px 14px;min-width:220px}
 .card .name{font-weight:600;color:#e6edf3}
 .state{display:inline-block;padding:1px 8px;border-radius:10px;font-size:11px;font-weight:600;margin-left:8px}
 .state.ok{background:#1a7f37;color:#fff}.state.pending{background:#9e6a03;color:#fff}.state.firing{background:#da3633;color:#fff}
 .budget{height:6px;background:#30363d;border-radius:3px;margin-top:8px;overflow:hidden}
 .budget i{display:block;height:100%;background:#2ea043}
 .budget i.low{background:#da3633}
 .burns{color:#8b949e;font-size:11px;margin-top:6px}
 table{border-collapse:collapse;width:100%}
 td,th{padding:3px 10px 3px 0;text-align:left;font-size:12px;border-bottom:1px solid #21262d}
 th{color:#8b949e;font-weight:500}
 td.num{font-variant-numeric:tabular-nums}
 .spark{display:grid;grid-template-columns:repeat(auto-fill,minmax(240px,1fr));gap:10px}
 .spark .card{min-width:0}
 .spark .name{font-size:11px;color:#8b949e;font-weight:500;word-break:break-all}
 svg{display:block;margin-top:4px}
 .err{color:#f85149}
 a{color:#58a6ff;text-decoration:none}
</style>
</head>
<body>
<header><h1>` + title + `</h1><span class="sub" id="updated">loading…</span></header>
<main>
<h2>SLOs</h2><div class="cards" id="slos"><span class="sub">no SLO engine configured</span></div>
<h2>Series</h2><div class="spark" id="series"></div>
<h2>Slowest queries</h2><div id="queries"><span class="sub">no traces yet</span></div>
</main>
<script>
"use strict";
function esc(s){return String(s).replace(/[&<>"]/g,c=>({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));}
function fmtMs(ns){return (ns/1e6).toFixed(2)+"ms";}
function sparkline(pts){
  const w=230,h=36;
  if(!pts||pts.length<2)return '<svg width="'+w+'" height="'+h+'"></svg>';
  let min=Infinity,max=-Infinity;
  for(const p of pts){if(p.v<min)min=p.v;if(p.v>max)max=p.v;}
  if(max===min){max=min+1;}
  const t0=pts[0].t,t1=pts[pts.length-1].t||t0+1;
  const xy=pts.map(p=>{
    const x=t1===t0?0:(p.t-t0)/(t1-t0)*(w-2)+1;
    const y=h-2-((p.v-min)/(max-min))*(h-4);
    return x.toFixed(1)+","+y.toFixed(1);
  }).join(" ");
  const last=pts[pts.length-1].v;
  return '<svg width="'+w+'" height="'+h+'" viewBox="0 0 '+w+' '+h+'">'+
    '<polyline fill="none" stroke="#58a6ff" stroke-width="1.2" points="'+xy+'"/></svg>'+
    '<span class="sub">last '+(Math.abs(last)>=1000?last.toExponential(2):+last.toPrecision(4))+'</span>';
}
async function getJSON(url){
  const r=await fetch(url,{cache:"no-store"});
  if(!r.ok)throw new Error(url+" → "+r.status);
  return r.json();
}
async function refresh(){
  const errs=[];
  try{
    const a=await getJSON("/alerts");
    const el=document.getElementById("slos");
    if(a.slos&&a.slos.length){
      el.innerHTML=a.slos.map(s=>{
        const pct=Math.round(s.budget_remaining*100);
        const burns=s.burn_rates.map(b=>b.window+": "+b.burn_rate.toFixed(2)+"x").join(" · ");
        return '<div class="card"><span class="name">'+esc(s.slo)+'</span>'+
          '<span class="state '+esc(s.state)+'">'+esc(s.state)+'</span>'+
          '<div class="budget"><i class="'+(pct<25?"low":"")+'" style="width:'+pct+'%"></i></div>'+
          '<div class="sub">budget remaining '+pct+'% · objective '+s.objective+'</div>'+
          '<div class="burns">'+esc(burns)+'</div></div>';
      }).join("");
    }
  }catch(e){errs.push(e.message);}
  try{
    const t=await getJSON("/debug/tsdb");
    const names=Object.keys(t.series).sort();
    document.getElementById("series").innerHTML=names.map(n=>
      '<div class="card"><span class="name">'+esc(n)+'</span>'+sparkline(t.series[n])+'</div>'
    ).join("");
  }catch(e){errs.push(e.message);}
  try{
    const q=await getJSON("/debug/queries?n=10");
    // annaserve returns trace objects; annarouter wraps each as
    // {trace, shard_ns} — unwrap either shape.
    const list=(Array.isArray(q)?q:(q.traces||[])).map(e=>e&&e.trace?e.trace:e);
    if(list.length){
      document.getElementById("queries").innerHTML=
        '<table><tr><th>trace</th><th>total</th><th>spans / hops</th></tr>'+
        list.map(tr=>{
          const parts=[];
          for(const sp of (tr.spans||[]))parts.push(esc(sp.name)+" "+fmtMs(sp.duration_ns));
          for(const hp of (tr.hops||[]))parts.push("shard"+hp.shard+"/"+esc(hp.kind)+(hp.winner?"*":"")+" "+fmtMs(hp.duration_ns));
          return '<tr><td><a href="/debug/trace/'+esc(tr.id)+'">'+esc(tr.id)+'</a></td>'+
            '<td class="num">'+fmtMs(tr.total_ns)+'</td><td>'+parts.join(" · ")+'</td></tr>';
        }).join("")+'</table>';
    }
  }catch(e){errs.push(e.message);}
  document.getElementById("updated").innerHTML=
    errs.length?'<span class="err">'+esc(errs.join("; "))+'</span>':"updated "+new Date().toLocaleTimeString();
}
refresh();setInterval(refresh,2000);
</script>
</body>
</html>
`)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(page)
	})
}
