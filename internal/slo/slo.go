// Package slo evaluates service-level objectives over the embedded
// tsdb (internal/tsdb) with multi-window burn-rate alerting, the
// SRE-workbook shape: an alert fires when both windows of a pair burn
// error budget faster than the pair's threshold — a fast pair (default
// 5m/1h at 14.4x budget) that pages quickly on hard outages, and a slow
// pair (default 30m/6h at 6x) that catches sustained simmering burn.
// The short window of each pair also clears the alert promptly once the
// condition ends.
//
// Every SLO is expressed the same way: an objective (the good-event
// ratio target, e.g. 0.999) and a BadRatio function returning the
// bad-event ratio over a window. Burn rate = bad ratio / (1 −
// objective): burning exactly the budget is 1.0, a total outage on a
// 99.9% objective is 1000.
package slo

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"anna/internal/metrics"
	"anna/internal/tsdb"
)

// State is an alert's lifecycle position.
type State string

const (
	OK State = "ok"
	// Pending means a short window is burning hot but its pair's long
	// window has not confirmed yet — the stage before firing.
	Pending State = "pending"
	Firing  State = "firing"
)

// Options shape the engine's windows and thresholds. Zero values take
// the documented defaults.
type Options struct {
	FastShort, FastLong time.Duration // default 5m, 1h
	SlowShort, SlowLong time.Duration // default 30m, 6h
	FastBurn, SlowBurn  float64       // default 14.4, 6
	// Logger receives fire/clear transitions (nil = slog.Default()).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.FastShort <= 0 {
		o.FastShort = 5 * time.Minute
	}
	if o.FastLong <= 0 {
		o.FastLong = time.Hour
	}
	if o.SlowShort <= 0 {
		o.SlowShort = 30 * time.Minute
	}
	if o.SlowLong <= 0 {
		o.SlowLong = 6 * time.Hour
	}
	if o.FastBurn <= 0 {
		o.FastBurn = 14.4
	}
	if o.SlowBurn <= 0 {
		o.SlowBurn = 6
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// BadRatioFunc returns the bad-event ratio (0..1) over the window
// ending at now; ok=false means the window holds no signal (no traffic,
// no scrapes yet) and the engine treats it as not burning.
type BadRatioFunc func(window time.Duration, now time.Time) (bad float64, ok bool)

// SLO is one objective under watch.
type SLO struct {
	// Name labels the alert, metrics and log lines ("latency_p99",
	// "availability", "recall").
	Name string
	// Objective is the good-ratio target in (0,1); the error budget is
	// 1 − Objective.
	Objective float64
	// BadRatio supplies the windowed bad-event ratio.
	BadRatio BadRatioFunc
}

// WindowBurn is one window's burn rate in an Alert.
type WindowBurn struct {
	Window string  `json:"window"`
	Burn   float64 `json:"burn_rate"`
}

// Alert is one SLO's evaluated state, the /alerts wire shape.
type Alert struct {
	SLO       string  `json:"slo"`
	State     State   `json:"state"`
	Objective float64 `json:"objective"`
	// BudgetRemaining is the fraction of the error budget left over the
	// slow-long window (clamped to [0,1]).
	BudgetRemaining float64      `json:"budget_remaining"`
	Burn            []WindowBurn `json:"burn_rates"`
	// SinceMS is when the current state was entered (UnixMilli).
	SinceMS int64 `json:"since_ms,omitempty"`
}

// sloState is the engine's mutable per-SLO record.
type sloState struct {
	state  State
	since  time.Time
	burns  [4]float64 // fastShort, fastLong, slowShort, slowLong
	budget float64    // remaining fraction
}

// Engine evaluates a set of SLOs. Hook EvaluateAt to a tsdb scraper
// (db.OnScrape(e.EvaluateAt)) so evaluation ticks with the data.
type Engine struct {
	opt  Options
	slos []SLO

	mu     sync.Mutex
	states []sloState
	lastAt time.Time
}

// New returns an engine over the given SLOs.
func New(opt Options, slos ...SLO) *Engine {
	e := &Engine{opt: opt.withDefaults(), slos: slos, states: make([]sloState, len(slos))}
	for i := range e.states {
		e.states[i] = sloState{state: OK, budget: 1}
	}
	return e
}

// windows returns the four evaluation windows in burn-slot order.
func (e *Engine) windows() [4]time.Duration {
	return [4]time.Duration{e.opt.FastShort, e.opt.FastLong, e.opt.SlowShort, e.opt.SlowLong}
}

// EvaluateAt runs one evaluation tick at the given time. It is
// deterministic: same tsdb contents and now, same resulting state.
func (e *Engine) EvaluateAt(now time.Time) {
	wins := e.windows()
	type verdict struct {
		burns  [4]float64
		budget float64
		state  State
	}
	verdicts := make([]verdict, len(e.slos))
	for i, s := range e.slos {
		budget := 1 - s.Objective
		if budget <= 0 {
			budget = 1e-9 // a 100% objective burns instantly on any error
		}
		var v verdict
		for w, win := range wins {
			if bad, ok := s.BadRatio(win, now); ok {
				v.burns[w] = bad / budget
			}
		}
		v.budget = 1 - v.burns[3] // slow-long burn is budget consumption over the budget window
		if v.budget < 0 {
			v.budget = 0
		}
		if v.budget > 1 {
			v.budget = 1
		}
		fastHot := v.burns[0] >= e.opt.FastBurn
		fastFiring := fastHot && v.burns[1] >= e.opt.FastBurn
		slowHot := v.burns[2] >= e.opt.SlowBurn
		slowFiring := slowHot && v.burns[3] >= e.opt.SlowBurn
		switch {
		case fastFiring || slowFiring:
			v.state = Firing
		case fastHot || slowHot:
			v.state = Pending
		default:
			v.state = OK
		}
		verdicts[i] = v
	}

	e.mu.Lock()
	e.lastAt = now
	type transition struct {
		slo      string
		from, to State
		burns    [4]float64
	}
	var trans []transition
	for i := range e.slos {
		v := verdicts[i]
		st := &e.states[i]
		if v.state != st.state {
			trans = append(trans, transition{slo: e.slos[i].Name, from: st.state, to: v.state, burns: v.burns})
			st.state = v.state
			st.since = now
		} else if st.since.IsZero() {
			st.since = now
		}
		st.burns = v.burns
		st.budget = v.budget
	}
	e.mu.Unlock()

	for _, tr := range trans {
		attrs := []any{
			"slo", tr.slo, "from", string(tr.from), "to", string(tr.to),
			"burn_fast_short", tr.burns[0], "burn_fast_long", tr.burns[1],
			"burn_slow_short", tr.burns[2], "burn_slow_long", tr.burns[3],
		}
		switch tr.to {
		case Firing:
			e.opt.Logger.Warn("slo alert firing", attrs...)
		case OK:
			e.opt.Logger.Info("slo alert cleared", attrs...)
		default:
			e.opt.Logger.Info("slo alert pending", attrs...)
		}
	}
}

// Status returns every SLO's current alert, in registration order.
func (e *Engine) Status() []Alert {
	wins := e.windows()
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, len(e.slos))
	for i, s := range e.slos {
		st := e.states[i]
		a := Alert{
			SLO:             s.Name,
			State:           st.state,
			Objective:       s.Objective,
			BudgetRemaining: st.budget,
			Burn:            make([]WindowBurn, 4),
		}
		for w := range wins {
			a.Burn[w] = WindowBurn{Window: wins[w].String(), Burn: st.burns[w]}
		}
		if !st.since.IsZero() {
			a.SinceMS = st.since.UnixMilli()
		}
		out[i] = a
	}
	return out
}

// Handler serves GET /alerts: the engine's full state as JSON.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, `{"error":"GET required"}`, http.StatusMethodNotAllowed)
			return
		}
		e.mu.Lock()
		at := e.lastAt
		e.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"evaluated_ms": at.UnixMilli(),
			"slos":         e.Status(),
		})
	})
}

// Register publishes the engine's gauges on reg:
// anna_slo_burn_rate{slo,window}, anna_slo_budget_remaining{slo} and
// anna_slo_state{slo} (0 ok, 1 pending, 2 firing).
func (e *Engine) Register(reg *metrics.Registry) {
	wins := e.windows()
	for i := range e.slos {
		i := i
		lbl := metrics.Label{Key: "slo", Value: e.slos[i].Name}
		for w := range wins {
			w := w
			reg.GaugeFunc("anna_slo_burn_rate",
				"Error-budget burn rate per SLO and window (1.0 = burning exactly the budget).",
				func() float64 {
					e.mu.Lock()
					defer e.mu.Unlock()
					return e.states[i].burns[w]
				}, lbl, metrics.Label{Key: "window", Value: wins[w].String()})
		}
		reg.GaugeFunc("anna_slo_budget_remaining",
			"Fraction of the error budget left over the slow-long window.",
			func() float64 {
				e.mu.Lock()
				defer e.mu.Unlock()
				return e.states[i].budget
			}, lbl)
		reg.GaugeFunc("anna_slo_state",
			"Alert state per SLO: 0 ok, 1 pending, 2 firing.",
			func() float64 {
				e.mu.Lock()
				defer e.mu.Unlock()
				switch e.states[i].state {
				case Firing:
					return 2
				case Pending:
					return 1
				}
				return 0
			}, lbl)
	}
}

// BadShare builds a BadRatioFunc from counter-delta series in db: the
// weighted sum of the bad series over the total series within the
// window. The canonical availability signal is
// BadShare(db, "requests", Part{"errors_5xx", 1}); a router adds
// Part{"partials", 0.5} to make availability partial-coverage-aware —
// a degraded answer costs half an error.
func BadShare(db *tsdb.DB, total string, parts ...Part) BadRatioFunc {
	return func(window time.Duration, now time.Time) (float64, bool) {
		tot, n := db.Sum(total, window, now)
		if n == 0 || tot <= 0 {
			return 0, false
		}
		var bad float64
		for _, p := range parts {
			v, _ := db.Sum(p.Series, window, now)
			bad += p.Weight * v
		}
		ratio := bad / tot
		if ratio < 0 {
			ratio = 0
		}
		if ratio > 1 {
			ratio = 1
		}
		return ratio, true
	}
}

// Part is one weighted bad-event series for BadShare.
type Part struct {
	Series string
	Weight float64
}

// BadBelow builds a BadRatioFunc over a gauge series: the fraction of
// scrapes in the window where the gauge sat below min — the recall-SLO
// signal ("the rolling recall estimate must not dip under target").
// Scrapes with no data (zero-valued before the source produced a
// signal) can be excluded by passing skipZero.
func BadBelow(db *tsdb.DB, series string, min float64, skipZero bool) BadRatioFunc {
	return func(window time.Duration, now time.Time) (float64, bool) {
		pts, ok := db.Query(series, window, now)
		if !ok || len(pts) == 0 {
			return 0, false
		}
		bad, n := 0, 0
		for _, p := range pts {
			if skipZero && p.V == 0 {
				continue
			}
			n++
			if p.V < min {
				bad++
			}
		}
		if n == 0 {
			return 0, false
		}
		return float64(bad) / float64(n), true
	}
}
