package tsdb

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCounterDeltasAndGauges(t *testing.T) {
	var c atomic.Uint64
	var g atomic.Int64
	db := New(16,
		Series{Name: "reqs", Kind: CounterKind, Sample: func() float64 { return float64(c.Load()) }},
		Series{Name: "depth", Kind: GaugeKind, Sample: func() float64 { return float64(g.Load()) }},
	)
	base := time.UnixMilli(1_000_000)
	c.Store(10)
	g.Store(3)
	db.ScrapeAt(base) // first scrape: counter baseline, delta 0
	c.Store(25)
	g.Store(7)
	db.ScrapeAt(base.Add(time.Second))
	c.Store(5) // source reset (restart): clamp delta to 0
	db.ScrapeAt(base.Add(2 * time.Second))

	now := base.Add(2 * time.Second)
	pts, ok := db.Query("reqs", 0, now)
	if !ok || len(pts) != 3 {
		t.Fatalf("reqs points %v ok=%v", pts, ok)
	}
	if pts[0].V != 0 || pts[1].V != 15 || pts[2].V != 0 {
		t.Errorf("counter deltas %v, want [0 15 0]", pts)
	}
	gp, _ := db.Query("depth", 0, now)
	if gp[0].V != 3 || gp[1].V != 7 {
		t.Errorf("gauge values %v, want [3 7 7]", gp)
	}
	if sum, n := db.Sum("reqs", time.Second, now); sum != 15 || n != 2 {
		// Window of 1s ending at t=2s covers the scrapes at 1s and 2s.
		t.Errorf("windowed Sum = %v over %d points, want 15 over 2", sum, n)
	}
	if _, ok := db.Query("nope", 0, now); ok {
		t.Error("unknown series reported ok")
	}
}

func TestRingEviction(t *testing.T) {
	db := New(16, Series{Name: "g", Kind: GaugeKind, Sample: func() float64 { return 1 }})
	base := time.UnixMilli(0)
	for i := 0; i < 40; i++ {
		db.ScrapeAt(base.Add(time.Duration(i) * time.Second))
	}
	pts, _ := db.Query("g", 0, base.Add(40*time.Second))
	if len(pts) != 16 {
		t.Fatalf("retained %d points, want 16", len(pts))
	}
	// Oldest retained is scrape 24; order must be oldest first.
	if pts[0].T != base.Add(24*time.Second).UnixMilli() || pts[15].T != base.Add(39*time.Second).UnixMilli() {
		t.Errorf("retained window [%d, %d]", pts[0].T, pts[15].T)
	}
}

func TestNaNSamplesStoreZero(t *testing.T) {
	db := New(16, Series{Name: "q", Kind: GaugeKind, Sample: func() float64 { return math.NaN() }})
	db.ScrapeAt(time.UnixMilli(1000))
	pts, _ := db.Query("q", 0, time.UnixMilli(1000))
	if len(pts) != 1 || pts[0].V != 0 {
		t.Fatalf("NaN sample stored as %v", pts)
	}
}

func TestHandler(t *testing.T) {
	var c atomic.Uint64
	db := New(16,
		Series{Name: "reqs", Kind: CounterKind, Sample: func() float64 { return float64(c.Load()) }},
		Series{Name: "depth", Kind: GaugeKind, Sample: func() float64 { return 2 }},
	)
	now := time.Now()
	db.ScrapeAt(now.Add(-time.Second))
	c.Store(8)
	db.ScrapeAt(now)
	h := db.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tsdb", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		IntervalMS int64              `json:"interval_ms"`
		Series     map[string][]Point `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Series) != 2 || len(resp.Series["reqs"]) != 2 {
		t.Fatalf("response %+v", resp)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tsdb?series=depth&window=10m", nil))
	if rec.Code != 200 {
		t.Fatalf("filtered status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tsdb?series=missing", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown series status %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/tsdb?window=banana", nil))
	if rec.Code != 400 {
		t.Fatalf("bad window status %d, want 400", rec.Code)
	}
}

// The scraper runs on its own goroutine while handlers query — run
// under -race.
func TestScrapeConcurrent(t *testing.T) {
	var c atomic.Uint64
	db := New(64, Series{Name: "c", Kind: CounterKind, Sample: func() float64 { return float64(c.Load()) }})
	var ticks atomic.Int64
	db.OnScrape(func(time.Time) { ticks.Add(1) })
	db.Start(10 * time.Millisecond)
	defer db.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Add(1)
				db.Query("c", time.Minute, time.Now())
				db.Sum("c", time.Minute, time.Now())
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for ticks.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ticks.Load() == 0 {
		t.Fatal("scraper never ticked")
	}
}

func TestCloseWithoutStart(t *testing.T) {
	db := New(16)
	db.Close()
	db.Close() // idempotent
}
