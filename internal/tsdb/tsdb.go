// Package tsdb is an embedded, stdlib-only time-series store for the
// serving path's own metrics: a fixed-size ring of periodic snapshots
// of selected series — counter deltas, gauge values, histogram
// quantiles — scraped on a configurable interval and queryable as JSON
// through /debug/tsdb. It is deliberately tiny: one process, one ring,
// float64 samples, no persistence. Its consumers are the SLO burn-rate
// engine (internal/slo), the /debug/dash sparklines, and an operator
// with curl; a real TSDB scrapes /metrics for everything else.
package tsdb

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind says how a series' raw samples become stored points.
type Kind int

const (
	// GaugeKind stores each sample as-is (pool depths, quantiles).
	GaugeKind Kind = iota
	// CounterKind stores the delta since the previous scrape of a
	// monotonically non-decreasing sample (requests, errors). The first
	// scrape stores 0; a source reset (restart) clamps at 0.
	CounterKind
)

// Series is one scraped signal. Sample is called once per scrape and
// must be safe to call from the scraper goroutine.
type Series struct {
	Name   string
	Kind   Kind
	Sample func() float64
}

// Point is one stored sample: UnixMilli timestamp and value.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// DB is the ring of snapshots. All methods are safe for concurrent use.
type DB struct {
	mu       sync.Mutex
	defs     []Series
	byName   map[string]int
	last     []float64 // previous raw sample, per CounterKind series
	seeded   bool      // first scrape taken (counter baselines set)
	times    []int64   // ring of scrape timestamps, UnixMilli
	vals     [][]float64
	pos, n   int // next write slot, filled count
	interval time.Duration
	onScrape []func(time.Time)

	startOnce sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New returns a DB retaining the last capacity scrapes of the given
// series (capacity minimum 16).
func New(capacity int, series ...Series) *DB {
	if capacity < 16 {
		capacity = 16
	}
	db := &DB{
		defs:   series,
		byName: make(map[string]int, len(series)),
		last:   make([]float64, len(series)),
		times:  make([]int64, capacity),
		vals:   make([][]float64, len(series)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i, s := range series {
		db.byName[s.Name] = i
		db.vals[i] = make([]float64, capacity)
	}
	return db
}

// Names returns the registered series names, sorted.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.defs))
	for _, s := range db.defs {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// Interval returns the scrape interval Start was called with (0 before).
func (db *DB) Interval() time.Duration {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.interval
}

// OnScrape registers fn to run after every scrape (same goroutine as
// the scraper), with the scrape's timestamp. The SLO engine hooks its
// evaluation tick here so burn rates are exactly as fresh as the data.
func (db *DB) OnScrape(fn func(now time.Time)) {
	db.mu.Lock()
	db.onScrape = append(db.onScrape, fn)
	db.mu.Unlock()
}

// Start launches the scraper goroutine on the given interval
// (minimum 10ms). Call Close to stop it. Start is idempotent.
func (db *DB) Start(interval time.Duration) {
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	db.startOnce.Do(func() {
		db.mu.Lock()
		db.interval = interval
		db.mu.Unlock()
		go func() {
			defer close(db.done)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-db.stop:
					return
				case now := <-tick.C:
					db.ScrapeAt(now)
				}
			}
		}()
	})
}

// Close stops the scraper goroutine and waits for it to exit. Safe to
// call more than once; a DB that was never started closes immediately.
func (db *DB) Close() {
	db.closeOnce.Do(func() { close(db.stop) })
	db.startOnce.Do(func() { close(db.done) }) // never started: nothing to wait for
	<-db.done
}

// ScrapeAt takes one snapshot stamped now. Exported so tests (and the
// SLO golden test) can drive deterministic timelines without a ticker.
func (db *DB) ScrapeAt(now time.Time) {
	db.mu.Lock()
	for i, s := range db.defs {
		raw := s.Sample()
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			raw = 0
		}
		v := raw
		if s.Kind == CounterKind {
			v = raw - db.last[i]
			if !db.seeded || v < 0 { // first scrape, or source reset
				v = 0
			}
			db.last[i] = raw
		}
		db.vals[i][db.pos] = v
	}
	db.times[db.pos] = now.UnixMilli()
	db.pos = (db.pos + 1) % len(db.times)
	if db.n < len(db.times) {
		db.n++
	}
	db.seeded = true
	hooks := db.onScrape
	db.mu.Unlock()
	for _, fn := range hooks {
		fn(now)
	}
}

// Query returns the stored points of the named series within the window
// ending at now, oldest first; ok is false for an unknown series. A
// zero window returns everything retained.
func (db *DB) Query(name string, window time.Duration, now time.Time) (pts []Point, ok bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	i, ok := db.byName[name]
	if !ok {
		return nil, false
	}
	cutoff := int64(math.MinInt64)
	if window > 0 {
		cutoff = now.Add(-window).UnixMilli()
	}
	pts = make([]Point, 0, db.n)
	for j := 0; j < db.n; j++ {
		// Oldest first: the ring's oldest entry sits at pos when full.
		slot := (db.pos - db.n + j + len(db.times)) % len(db.times)
		t := db.times[slot]
		if t < cutoff || t > now.UnixMilli() {
			continue
		}
		pts = append(pts, Point{T: t, V: db.vals[i][slot]})
	}
	return pts, true
}

// Sum returns the sum of the named series' points within the window and
// how many points contributed — the burn-rate engine's counter reducer.
func (db *DB) Sum(name string, window time.Duration, now time.Time) (sum float64, n int) {
	pts, ok := db.Query(name, window, now)
	if !ok {
		return 0, 0
	}
	for _, p := range pts {
		sum += p.V
	}
	return sum, len(pts)
}

// Handler serves the store as JSON:
//
//	GET /debug/tsdb?series=a,b&window=5m
//
// series defaults to every registered series; window defaults to the
// full retention. The response maps series name to points plus the
// scrape interval, so clients can rate() counter deltas themselves.
func (db *DB) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, `{"error":"GET required"}`, http.StatusMethodNotAllowed)
			return
		}
		window := time.Duration(0)
		if ws := r.URL.Query().Get("window"); ws != "" {
			d, err := time.ParseDuration(ws)
			if err != nil || d < 0 {
				http.Error(w, `{"error":"bad window"}`, http.StatusBadRequest)
				return
			}
			window = d
		}
		names := db.Names()
		if ss := r.URL.Query().Get("series"); ss != "" {
			names = strings.Split(ss, ",")
		}
		now := time.Now()
		series := make(map[string][]Point, len(names))
		for _, name := range names {
			pts, ok := db.Query(name, window, now)
			if !ok {
				http.Error(w, `{"error":"unknown series `+name+`"}`, http.StatusNotFound)
				return
			}
			series[name] = pts
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"interval_ms": db.Interval().Milliseconds(),
			"series":      series,
		})
	})
}
