// Package exact implements exhaustive (exact) nearest neighbor search,
// serving two roles from the paper: computing ground truth for recall
// evaluation, and the "exhaustive, exact nearest neighbor search" QPS
// baselines quoted under each Figure 8 plot.
package exact

import (
	"runtime"
	"sync"

	"anna/internal/pq"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// Searcher performs brute-force search over a database matrix.
type Searcher struct {
	Metric  pq.Metric
	Base    *vecmath.Matrix
	Workers int // parallelism; default GOMAXPROCS
}

// New returns an exact searcher over base.
func New(metric pq.Metric, base *vecmath.Matrix) *Searcher {
	return &Searcher{Metric: metric, Base: base}
}

// Score returns the similarity (larger = more similar) between q and
// database row i under the searcher's metric.
func (s *Searcher) Score(q []float32, i int) float32 {
	if s.Metric == pq.InnerProduct {
		return vecmath.Dot(q, s.Base.Row(i))
	}
	return -vecmath.L2Sq(q, s.Base.Row(i))
}

// Search returns the exact top-k results for query q.
func (s *Searcher) Search(q []float32, k int) []topk.Result {
	workers := s.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > s.Base.Rows {
		workers = 1
	}
	parts := make([][]topk.Result, workers)
	var wg sync.WaitGroup
	chunk := (s.Base.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > s.Base.Rows {
			hi = s.Base.Rows
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sel := topk.NewSelector(k)
			for i := lo; i < hi; i++ {
				sel.Push(int64(i), s.Score(q, i))
			}
			parts[w] = sel.Results()
		}(w, lo, hi)
	}
	wg.Wait()
	return topk.Merge(k, parts...)
}

// SearchBatch runs Search for every row of queries, parallelising across
// queries, and returns per-query results.
func (s *Searcher) SearchBatch(queries *vecmath.Matrix, k int) [][]topk.Result {
	out := make([][]topk.Result, queries.Rows)
	workers := s.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	inner := *s
	inner.Workers = 1 // avoid nested fan-out
	for qi := 0; qi < queries.Rows; qi++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(qi int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[qi] = inner.Search(queries.Row(qi), k)
		}(qi)
	}
	wg.Wait()
	return out
}

// GroundTruth returns, for each query, the IDs of its exact top-k
// neighbors in descending similarity order.
func (s *Searcher) GroundTruth(queries *vecmath.Matrix, k int) [][]int64 {
	res := s.SearchBatch(queries, k)
	out := make([][]int64, len(res))
	for i, rs := range res {
		ids := make([]int64, len(rs))
		for j, r := range rs {
			ids[j] = r.ID
		}
		out[i] = ids
	}
	return out
}

// FLOPs returns the floating point operations of one exact query:
// N*D multiply-adds counted as 2 ops (plus subtractions for L2).
func (s *Searcher) FLOPs() int64 {
	n, d := int64(s.Base.Rows), int64(s.Base.Cols)
	per := 2 * d // mul + add per dimension
	if s.Metric == pq.L2 {
		per += d // subtraction
	}
	return n * per
}

// Bytes returns the memory traffic of one exact query at 2 bytes per
// element (the paper's 2ND figure for f16 storage).
func (s *Searcher) Bytes() int64 {
	return 2 * int64(s.Base.Rows) * int64(s.Base.Cols)
}
