package exact

import (
	"math/rand"
	"testing"

	"anna/internal/pq"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

func randMatrix(rows, cols int, seed int64) *vecmath.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vecmath.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func bruteForce(metric pq.Metric, base *vecmath.Matrix, q []float32, k int) []topk.Result {
	sel := topk.NewSelector(k)
	for i := 0; i < base.Rows; i++ {
		var s float32
		if metric == pq.InnerProduct {
			s = vecmath.Dot(q, base.Row(i))
		} else {
			s = -vecmath.L2Sq(q, base.Row(i))
		}
		sel.Push(int64(i), s)
	}
	return sel.Results()
}

func TestSearchMatchesSequentialBruteForce(t *testing.T) {
	base := randMatrix(777, 16, 1)
	queries := randMatrix(5, 16, 2)
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		s := New(metric, base)
		for qi := 0; qi < queries.Rows; qi++ {
			q := queries.Row(qi)
			got := s.Search(q, 10)
			want := bruteForce(metric, base, q, 10)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v q%d[%d]: got %+v want %+v", metric, qi, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSearchSelfIsNearest(t *testing.T) {
	base := randMatrix(100, 8, 3)
	s := New(pq.L2, base)
	for i := 0; i < 10; i++ {
		got := s.Search(base.Row(i), 1)
		if got[0].ID != int64(i) {
			t.Errorf("query=row %d: nearest = %d", i, got[0].ID)
		}
		if got[0].Score != 0 {
			t.Errorf("self distance %v", got[0].Score)
		}
	}
}

func TestSearchBatchMatchesSingle(t *testing.T) {
	base := randMatrix(300, 8, 4)
	queries := randMatrix(7, 8, 5)
	s := New(pq.InnerProduct, base)
	batch := s.SearchBatch(queries, 5)
	for qi := 0; qi < queries.Rows; qi++ {
		single := s.Search(queries.Row(qi), 5)
		for i := range single {
			if batch[qi][i] != single[i] {
				t.Fatalf("batch/single mismatch q%d[%d]", qi, i)
			}
		}
	}
}

func TestGroundTruthOrder(t *testing.T) {
	base := vecmath.NewMatrix(3, 1)
	base.SetRow(0, []float32{10})
	base.SetRow(1, []float32{1})
	base.SetRow(2, []float32{5})
	s := New(pq.L2, base)
	q := vecmath.NewMatrix(1, 1)
	q.SetRow(0, []float32{0})
	gt := s.GroundTruth(q, 3)
	want := []int64{1, 2, 0}
	for i := range want {
		if gt[0][i] != want[i] {
			t.Fatalf("gt = %v, want %v", gt[0], want)
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	base := randMatrix(512, 8, 6)
	q := randMatrix(1, 8, 7).Row(0)
	ref := (&Searcher{Metric: pq.L2, Base: base, Workers: 1}).Search(q, 20)
	for _, w := range []int{2, 3, 8, 1000} {
		got := (&Searcher{Metric: pq.L2, Base: base, Workers: w}).Search(q, 20)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d changed result at %d", w, i)
			}
		}
	}
}

func TestCostModelNumbers(t *testing.T) {
	base := vecmath.NewMatrix(1000, 128)
	ip := New(pq.InnerProduct, base)
	if got := ip.FLOPs(); got != 1000*128*2 {
		t.Errorf("IP FLOPs = %d", got)
	}
	l2 := New(pq.L2, base)
	if got := l2.FLOPs(); got != 1000*128*3 {
		t.Errorf("L2 FLOPs = %d", got)
	}
	// Paper: 2ND bytes per exhaustive query.
	if got := ip.Bytes(); got != 2*1000*128 {
		t.Errorf("Bytes = %d", got)
	}
}

func BenchmarkExactSearch(b *testing.B) {
	base := randMatrix(10000, 128, 1)
	q := randMatrix(1, 128, 2).Row(0)
	s := New(pq.L2, base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Search(q, 100)
	}
}
