// Package cost provides analytic performance/energy models of the
// paper's software baselines: Google ScaNN and Facebook Faiss running
// PQ-based ANNS on the evaluated Intel i7-7820X (Skylake-X, 8 cores,
// AVX-512, 64 GB/s) and NVIDIA V100 (80 SMs, 900 GB/s, 32 GB HBM2).
//
// The paper measures these systems directly; this repository cannot (no
// x86 AVX-512 Faiss build, no V100), so it models them from the paper's
// own bottleneck analysis (Section II-D):
//
//   - CPU k*=16 configurations pin 16-entry LUTs in vector registers
//     (PSHUFB) and are usually memory-bandwidth-bound on the encoded
//     vector stream, which has no reuse.
//   - CPU k*=256 configurations cannot keep 256-entry LUTs in registers
//     and fall back to L1-resident gathers, becoming compute-bound.
//   - Faiss16 (CPU) processes batches cluster-major — "similar to ANNA
//     memory traffic optimization" — so its list traffic is amortised
//     across the batch; ScaNN16 and Faiss256 are query-major.
//   - The V100 scan kernel is occupancy-limited to 3 thread blocks/SM by
//     its 32 KB shared-memory LUT, wasting memory-level parallelism, and
//     the k-selection kernel has a small grid and ~4% FMA utilisation.
//
// Constants are calibrated so the paper's headline ratios against ANNA
// hold (2.3–61.6× throughput, 24.0–620.8× latency, ≥97× energy
// efficiency); EXPERIMENTS.md records paper-vs-model for every figure.
package cost

import (
	"fmt"

	"anna/internal/energy"
	"anna/internal/ivf"
	"anna/internal/pq"
)

// Platform identifies one software baseline configuration.
type Platform int

const (
	// ScaNN16CPU is Google ScaNN with k*=16 on the 8-core CPU.
	ScaNN16CPU Platform = iota
	// Faiss16CPU is Facebook Faiss with k*=16 on the 8-core CPU.
	Faiss16CPU
	// Faiss256CPU is Facebook Faiss with k*=256 on the 8-core CPU.
	Faiss256CPU
	// Faiss256GPU is Facebook Faiss with k*=256 on the V100 GPU.
	Faiss256GPU
)

func (p Platform) String() string {
	switch p {
	case ScaNN16CPU:
		return "ScaNN16(CPU)"
	case Faiss16CPU:
		return "Faiss16(CPU)"
	case Faiss256CPU:
		return "Faiss256(CPU)"
	case Faiss256GPU:
		return "Faiss256(GPU)"
	default:
		return fmt.Sprintf("Platform(%d)", int(p))
	}
}

// Ks returns the platform's codebook size (the paper: implementations are
// tightly coupled to a specific k*).
func (p Platform) Ks() int {
	if p == Faiss256CPU || p == Faiss256GPU {
		return 256
	}
	return 16
}

// IsGPU reports whether the platform is the V100 configuration.
func (p Platform) IsGPU() bool { return p == Faiss256GPU }

// PowerW returns the platform's measured package power (Section V-C).
func (p Platform) PowerW() float64 {
	switch p {
	case ScaNN16CPU:
		return energy.ScaNNCPUPowerW
	case Faiss256GPU:
		return energy.GPUPowerW
	default:
		return energy.FaissCPUPowerW
	}
}

// CPU machine constants (Intel i7-7820X).
const (
	cpuMemBW = 64e9 // bytes/s
	// cpuMACRate is the effective f32 multiply-accumulate rate for dense
	// kernels (coarse quantization, LUT builds): 8 cores × 4 GHz ×
	// 32 MAC/cycle at ~65% efficiency.
	cpuMACRate = 6.6e11
	// cpuLookup16 is the LUT-scan rate for k*=16: 16 parallel in-register
	// shuffles + adds per cycle per core across 8 cores at 4 GHz.
	cpuLookup16 = 8 * 4e9 * 16
	// cpuLookup256 is the LUT-scan rate for k*=256: ~0.75 effective lookups per
	// cycle per core: gathers, VPSRLW unpacking and dependent adds (the
	// paper's sub-byte/gather bottleneck analysis).
	cpuLookup256 = 8 * 4e9 * 0.75
	// cpuSelectRate is candidate→top-k filtering throughput.
	cpuSelectRate = 1.6e10
	// cpuMemEff is the fraction of peak bandwidth the scan loop sustains
	// with all threads live: list streams interleave with LUT and top-k
	// accesses, so the achieved bandwidth sits well below STREAM peak.
	// This is why ANNA's dataflow pipeline beats even the cluster-major
	// Faiss16 despite equal raw bandwidth (Figure 8's low-end 2.3×).
	cpuMemEff = 0.55
	// cpuSingleQueryBWFrac is the fraction of peak bandwidth ONE query
	// achieves: Faiss and ScaNN parallelise across queries, so a single
	// query runs on one core (the basis of the paper's 24×+ latency gap).
	cpuSingleQueryBWFrac = 0.125
	// cpuSingleQueryParEff is single-query core scaling: one of 8 cores.
	cpuSingleQueryParEff = 0.125
	// cpuFixedOverheadSec is per-batch dispatch overhead.
	cpuFixedOverheadSec = 30e-6
)

// GPU machine constants (NVIDIA V100).
const (
	gpuMemBW = 900e9
	// gpuOccupancyUtil is the achieved fraction of peak bandwidth with
	// only 3 resident blocks/SM (the 32 KB shared-memory LUT limit).
	gpuOccupancyUtil = 0.55
	// gpuLookupRate is shared-memory LUT lookup+add throughput at the
	// occupancy-limited concurrency.
	gpuLookupRate = 1.1e12
	// gpuMACRate is dense GEMM-style throughput for coarse quantization.
	gpuMACRate = 3.5e12
	// gpuSelectRate is the k-selection kernel's candidate throughput
	// (small grid, ~4% FMA utilisation per the paper's profile).
	gpuSelectRate = 1.2e10
	// gpuFixedOverheadSec covers kernel launches and result transfers.
	gpuFixedOverheadSec = 80e-6
	// gpuSingleQueryUtilFrac scales throughput for tiny batches: a
	// single query cannot fill 80 SMs, and the k-selection kernel's
	// small grid parallelism collapses entirely.
	gpuSingleQueryUtilFrac = 0.03
	// gpuSaturationBatch is the batch size at which the GPU reaches its
	// steady-state rates.
	gpuSaturationBatch = 512.0
)

// Workload captures everything the models need about one search setting.
type Workload struct {
	N, D, M, Ks, C int
	B, W, K        int
	Metric         pq.Metric
	// CodeBytes is the packed bytes per encoded vector.
	CodeBytes int
	// ScannedVectors is the total (query, vector) pairs scanned by the
	// batch (B·W·avg list length when uniform).
	ScannedVectors int64
	// QueryMajorBytes is the list traffic without reuse: every query
	// re-reads its W lists.
	QueryMajorBytes int64
	// ClusterMajorBytes is the list traffic with batch reuse: each
	// visited list read once.
	ClusterMajorBytes int64
}

// FromSelections derives a Workload from per-query cluster selections
// (as returned by ivf.Index.SelectClusters for each query).
func FromSelections(idx *ivf.Index, selections [][]int, k int) Workload {
	wl := Workload{
		N: idx.NTotal, D: idx.D, M: idx.PQ.M, Ks: idx.PQ.Ks,
		C: idx.NClusters(), B: len(selections), K: k,
		Metric:    idx.Metric,
		CodeBytes: idx.PQ.CodeBytes(),
	}
	visited := make(map[int]struct{})
	for _, cs := range selections {
		if len(cs) > wl.W {
			wl.W = len(cs)
		}
		for _, c := range cs {
			n := int64(idx.Lists[c].Len())
			wl.ScannedVectors += n
			wl.QueryMajorBytes += idx.ListBytes(c)
			visited[c] = struct{}{}
		}
	}
	for c := range visited {
		wl.ClusterMajorBytes += idx.ListBytes(c)
	}
	return wl
}

// Uniform builds a Workload analytically from geometry, assuming uniform
// cluster sizes — the right tool for extrapolating to the paper's full
// billion-scale datasets.
func Uniform(n, d, m, ks, c, b, w, k int, metric pq.Metric) Workload {
	bits := 0
	for 1<<bits < ks {
		bits++
	}
	codeBytes := (m*bits + 7) / 8
	avgList := float64(n) / float64(c)
	scanned := int64(float64(b*w) * avgList)
	qm := scanned * int64(codeBytes)
	visited := float64(c) * (1 - powNoE(1-1/float64(c), b*w))
	cm := int64(visited * avgList * float64(codeBytes))
	if cm > qm {
		cm = qm
	}
	return Workload{
		N: n, D: d, M: m, Ks: ks, C: c, B: b, W: w, K: k, Metric: metric,
		CodeBytes: codeBytes, ScannedVectors: scanned,
		QueryMajorBytes: qm, ClusterMajorBytes: cm,
	}
}

// powNoE computes x^n for integer n >= 0 without importing math for a
// hot path this cold; precision is ample for the occupancy estimate.
func powNoE(x float64, n int) float64 {
	r := 1.0
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
	}
	return r
}

// Estimate is a modeled performance/energy projection.
type Estimate struct {
	Platform       Platform
	Seconds        float64 // batch runtime
	QPS            float64
	LatencySeconds float64 // single-query latency
	PowerW         float64
	EnergyJ        float64 // batch energy at package power
	TrafficBytes   int64
	// ComputeBound reports whether compute (rather than memory
	// bandwidth) limited the batch runtime.
	ComputeBound bool
}

// Model produces the platform's projection for a workload.
func Model(p Platform, wl Workload) Estimate {
	if p.IsGPU() {
		return gpuModel(p, wl)
	}
	return cpuModel(p, wl)
}

func cpuModel(p Platform, wl Workload) Estimate {
	// Compute side.
	coarse := float64(wl.B) * float64(wl.C) * float64(wl.D) / cpuMACRate
	lutBuilds := float64(wl.B)
	if wl.Metric == pq.L2 {
		lutBuilds = float64(wl.B) * float64(wl.W) // rebuilt per cluster
	}
	lut := lutBuilds * float64(wl.Ks) * float64(wl.D) / cpuMACRate
	lookupRate := cpuLookup16
	if p.Ks() == 256 {
		lookupRate = cpuLookup256
	}
	scan := float64(wl.ScannedVectors) * float64(wl.M) / lookupRate
	sel := float64(wl.ScannedVectors) / cpuSelectRate
	compute := coarse + lut + scan + sel

	// Memory side: centroid stream + list traffic (discipline-dependent).
	listBytes := wl.QueryMajorBytes
	if p == Faiss16CPU {
		listBytes = wl.ClusterMajorBytes
	}
	// The centroid table (|C|·D f16, ~2.5 MB at billion-scale settings)
	// fits in the CPU's LLC, so it hits DRAM roughly once per batch.
	centroidBytes := int64(wl.C) * int64(wl.D) * 2
	traffic := listBytes + centroidBytes
	mem := float64(traffic) / (cpuMemBW * cpuMemEff)

	seconds := maxf(compute, mem) + cpuFixedOverheadSec
	est := Estimate{
		Platform: p, Seconds: seconds,
		QPS:          float64(wl.B) / seconds,
		PowerW:       p.PowerW(),
		TrafficBytes: traffic,
		ComputeBound: compute > mem,
	}
	est.EnergyJ = est.PowerW * est.Seconds

	// Single-query latency: one query's compute at reduced parallel
	// efficiency vs one query's traffic at the single-query bandwidth.
	perQ := scaleWorkload(wl)
	qCompute := (coarse + lut + scan + sel) * perQ / cpuSingleQueryParEff
	qBytes := float64(wl.QueryMajorBytes) * perQ
	qMem := qBytes / (cpuMemBW * cpuSingleQueryBWFrac)
	est.LatencySeconds = maxf(qCompute, qMem) + cpuFixedOverheadSec
	return est
}

func gpuModel(p Platform, wl Workload) Estimate {
	coarse := float64(wl.B) * float64(wl.C) * float64(wl.D) / gpuMACRate
	// Faiss-GPU builds per-(query,cluster) distance tables on device;
	// table math rides the same dense units as coarse.
	lut := float64(wl.B) * float64(wl.W) * float64(wl.Ks) * float64(wl.D) / gpuMACRate
	scan := float64(wl.ScannedVectors) * float64(wl.M) / gpuLookupRate
	sel := float64(wl.ScannedVectors) / gpuSelectRate
	compute := coarse + lut + scan + sel

	// Query-major traffic at occupancy-limited bandwidth.
	traffic := wl.QueryMajorBytes
	mem := float64(traffic) / (gpuMemBW * gpuOccupancyUtil)

	// Small batches cannot fill the machine; rates ramp up to steady
	// state around gpuSaturationBatch queries.
	batchUtil := gpuSingleQueryUtilFrac + float64(wl.B)/gpuSaturationBatch
	if batchUtil > 1 {
		batchUtil = 1
	}
	seconds := maxf(compute, mem)/batchUtil + gpuFixedOverheadSec
	est := Estimate{
		Platform: p, Seconds: seconds,
		QPS:          float64(wl.B) / seconds,
		PowerW:       p.PowerW(),
		TrafficBytes: traffic,
		ComputeBound: compute > mem,
	}
	est.EnergyJ = est.PowerW * est.Seconds

	perQ := scaleWorkload(wl)
	util := gpuSingleQueryUtilFrac
	qCompute := compute * perQ / util
	qMem := float64(wl.QueryMajorBytes) * perQ / (gpuMemBW * gpuOccupancyUtil * util)
	est.LatencySeconds = maxf(qCompute, qMem) + gpuFixedOverheadSec
	return est
}

// scaleWorkload returns the per-query fraction of batch quantities.
func scaleWorkload(wl Workload) float64 {
	if wl.B <= 0 {
		return 1
	}
	return 1 / float64(wl.B)
}

// ExactQPS models the exhaustive exact-search baselines quoted under
// each Figure 8 plot: a full scan of N D-dimensional f16 vectors per
// query. gpu selects the V100.
func ExactQPS(n, d, b int, gpu bool) float64 {
	bytes := 2 * float64(n) * float64(d) * float64(b)
	macs := float64(n) * float64(d) * float64(b)
	var sec float64
	if gpu {
		sec = maxf(bytes/gpuMemBW, macs/gpuMACRate) + gpuFixedOverheadSec
	} else {
		sec = maxf(bytes/cpuMemBW, macs/cpuMACRate) + cpuFixedOverheadSec
	}
	return float64(b) / sec
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
