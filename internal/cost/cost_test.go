package cost

import (
	"math"
	"testing"

	"anna/internal/dataset"
	"anna/internal/ivf"
	"anna/internal/pq"
)

// billionScale is the paper's billion-scale SIFT1B setting at 4:1
// compression with k*=256 (M=D/2) and |C|=10000, B=1000, W=32.
func billionScale(ks int) Workload {
	m := 64
	if ks == 16 {
		m = 128
	}
	return Uniform(1_000_000_000, 128, m, ks, 10000, 1000, 32, 1000, pq.L2)
}

func TestUniformGeometry(t *testing.T) {
	wl := billionScale(256)
	if wl.CodeBytes != 64 {
		t.Errorf("CodeBytes = %d, want 64 (M=64, 8-bit)", wl.CodeBytes)
	}
	// B*W*avgList = 1000*32*100000.
	if wl.ScannedVectors != 3_200_000_000 {
		t.Errorf("ScannedVectors = %d", wl.ScannedVectors)
	}
	if wl.QueryMajorBytes != wl.ScannedVectors*64 {
		t.Errorf("QueryMajorBytes = %d", wl.QueryMajorBytes)
	}
	// Cluster-major: nearly all 10000 clusters are visited once by the
	// batch, so reuse caps traffic near B·W/|C| = 3.2x below query-major
	// (the Section IV worked example's 12.8x uses W=128).
	if ratio := float64(wl.QueryMajorBytes) / float64(wl.ClusterMajorBytes); ratio < 3 || ratio > 3.4 {
		t.Errorf("cluster-major reduction = %.2fx, want ~3.2x", ratio)
	}
	if wl.ClusterMajorBytes > int64(wl.N)*int64(wl.CodeBytes) {
		t.Errorf("ClusterMajorBytes exceeds database size")
	}
	// k*=16 at 4:1 uses M=D=128 at 4 bits -> also 64 B.
	if got := billionScale(16).CodeBytes; got != 64 {
		t.Errorf("k*=16 CodeBytes = %d, want 64", got)
	}
}

func TestFromSelectionsMatchesHandCount(t *testing.T) {
	spec := dataset.SIFTLike(2000, 8, 1)
	spec.D = 32
	ds := dataset.Generate(spec)
	idx := ivf.Build(ds.Base, pq.L2, ivf.Config{
		NClusters: 10, M: 8, Ks: 16, CoarseIters: 5, PQIters: 5, Seed: 1,
	})
	sel := make([][]int, ds.Queries.Rows)
	for qi := range sel {
		sel[qi] = idx.SelectClusters(ds.Queries.Row(qi), 3)
	}
	wl := FromSelections(idx, sel, 100)

	var scanned, qm int64
	visited := map[int]bool{}
	for _, cs := range sel {
		for _, c := range cs {
			scanned += int64(idx.Lists[c].Len())
			qm += idx.ListBytes(c)
			visited[c] = true
		}
	}
	var cm int64
	for c := range visited {
		cm += idx.ListBytes(c)
	}
	if wl.ScannedVectors != scanned || wl.QueryMajorBytes != qm || wl.ClusterMajorBytes != cm {
		t.Errorf("FromSelections = %+v, hand counts %d/%d/%d", wl, scanned, qm, cm)
	}
	if wl.B != 8 || wl.W != 3 || wl.Ks != 16 {
		t.Errorf("geometry: %+v", wl)
	}
}

// Paper, Figure 8 discussion: Faiss256 (CPU) is the slowest CPU config
// (no in-register LUTs); Faiss16 beats ScaNN16 (cluster-major reuse).
func TestCPUOrderingMatchesPaper(t *testing.T) {
	scann := Model(ScaNN16CPU, billionScale(16))
	faiss16 := Model(Faiss16CPU, billionScale(16))
	faiss256 := Model(Faiss256CPU, billionScale(256))

	if !(faiss16.QPS > scann.QPS) {
		t.Errorf("Faiss16 %.0f QPS not above ScaNN16 %.0f", faiss16.QPS, scann.QPS)
	}
	if !(scann.QPS > faiss256.QPS) {
		t.Errorf("ScaNN16 %.0f QPS not above Faiss256 %.0f", scann.QPS, faiss256.QPS)
	}
	if !faiss256.ComputeBound {
		t.Error("Faiss256 CPU should be compute-bound (gather bottleneck)")
	}
	if scann.ComputeBound {
		t.Error("ScaNN16 should be memory-bound (no list reuse)")
	}
}

// The V100's raw bandwidth gives Faiss256 (GPU) a large throughput edge
// over Faiss256 (CPU) — the paper calls it "very promising in some
// cases" before normalising for bandwidth.
func TestGPUBeatsCPUFor256(t *testing.T) {
	gpu := Model(Faiss256GPU, billionScale(256))
	cpu := Model(Faiss256CPU, billionScale(256))
	if gpu.QPS <= cpu.QPS {
		t.Errorf("GPU %.0f QPS <= CPU %.0f", gpu.QPS, cpu.QPS)
	}
}

// Latency sanity: the fastest CPU config lands near the paper's ~11 ms
// single-query latency for billion-scale, and the GPU near ~5 ms.
func TestLatencyBallparks(t *testing.T) {
	cpu := Model(Faiss16CPU, billionScale(16))
	if cpu.LatencySeconds < 3e-3 || cpu.LatencySeconds > 40e-3 {
		t.Errorf("CPU latency %.2f ms outside 3..40 ms", cpu.LatencySeconds*1e3)
	}
	gpu := Model(Faiss256GPU, billionScale(256))
	if gpu.LatencySeconds < 1e-3 || gpu.LatencySeconds > 30e-3 {
		t.Errorf("GPU latency %.2f ms outside 1..30 ms", gpu.LatencySeconds*1e3)
	}
}

func TestEnergyUsesPaperPower(t *testing.T) {
	wl := billionScale(16)
	for _, p := range []Platform{ScaNN16CPU, Faiss16CPU, Faiss256CPU, Faiss256GPU} {
		est := Model(p, wl)
		if math.Abs(est.EnergyJ-est.PowerW*est.Seconds) > 1e-9 {
			t.Errorf("%v: EnergyJ inconsistent", p)
		}
	}
	if Model(ScaNN16CPU, wl).PowerW != 116 {
		t.Error("ScaNN power")
	}
	if Model(Faiss16CPU, wl).PowerW != 139 {
		t.Error("Faiss power")
	}
	if Model(Faiss256GPU, wl).PowerW != 151.8 {
		t.Error("GPU power")
	}
}

func TestQPSScalesWithW(t *testing.T) {
	lo := Model(Faiss16CPU, Uniform(1e8, 128, 128, 16, 10000, 1000, 8, 1000, pq.L2))
	hi := Model(Faiss16CPU, Uniform(1e8, 128, 128, 16, 10000, 1000, 64, 1000, pq.L2))
	if hi.QPS >= lo.QPS {
		t.Errorf("more clusters inspected should cost throughput: W=8 %.0f, W=64 %.0f", lo.QPS, hi.QPS)
	}
}

func TestExactQPSOrdersOfMagnitude(t *testing.T) {
	// Billion-scale exhaustive search at 2ND bytes/query: 256 GB per
	// query at 64 GB/s -> ~0.25 QPS on CPU; V100 an order faster.
	cpu := ExactQPS(1_000_000_000, 128, 100, false)
	gpu := ExactQPS(1_000_000_000, 128, 100, true)
	if cpu > 1 || cpu < 0.01 {
		t.Errorf("exact CPU QPS = %v", cpu)
	}
	if gpu <= cpu {
		t.Errorf("exact GPU %.2f <= CPU %.2f", gpu, cpu)
	}
	// Million-scale: paper reports hundreds-to-thousands QPS range.
	m := ExactQPS(1_000_000, 128, 100, false)
	if m < 50 || m > 50000 {
		t.Errorf("exact million-scale CPU QPS = %v", m)
	}
}

func TestPlatformAccessors(t *testing.T) {
	if ScaNN16CPU.Ks() != 16 || Faiss256GPU.Ks() != 256 {
		t.Error("Ks mapping")
	}
	if !Faiss256GPU.IsGPU() || Faiss16CPU.IsGPU() {
		t.Error("IsGPU mapping")
	}
	if ScaNN16CPU.String() != "ScaNN16(CPU)" {
		t.Errorf("name %v", ScaNN16CPU)
	}
}

func TestPowNoE(t *testing.T) {
	if got := powNoE(0.5, 3); got != 0.125 {
		t.Errorf("powNoE = %v", got)
	}
	if got := powNoE(0.9, 0); got != 1 {
		t.Errorf("powNoE^0 = %v", got)
	}
	if got := powNoE(0.999, 10000); math.Abs(got-math.Pow(0.999, 10000)) > 1e-9 {
		t.Errorf("powNoE large = %v", got)
	}
}
