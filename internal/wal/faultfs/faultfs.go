// Package faultfs provides the fault-injection primitives the
// durability tests drive: an in-memory wal.File whose writes stay
// volatile until Sync (so crashes with torn tails can be simulated
// exactly), failing/short io.Writers for save-path error propagation,
// and bit-flip corruptors. Nothing here touches the real filesystem, so
// every failure mode — including ones the OS makes hard to provoke — is
// deterministic and fast.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrInjected is the error every injected fault returns.
var ErrInjected = errors.New("faultfs: injected fault")

// File is an in-memory file implementing wal.File with a two-tier crash
// model: Write lands in a volatile buffer, Sync marks the current
// contents durable, and CrashImage returns what a disk could plausibly
// hold after a power cut — all durable bytes plus a caller-chosen torn
// prefix of the unsynced tail.
type File struct {
	mu     sync.Mutex
	data   []byte
	synced int // bytes guaranteed durable
	pos    int64
	closed bool

	written        int64 // total bytes accepted across all writes
	failWriteAfter int64 // -1 = never
	failSyncAfter  int   // remaining Sync calls before failure; -1 = never
	syncs          int
}

// New returns an empty File with no faults armed.
func New() *File {
	return &File{failWriteAfter: -1, failSyncAfter: -1}
}

// FailWriteAfter arms a write fault: once the file has accepted total
// bytes across its lifetime, the offending write applies only a partial
// prefix (a torn write) and returns ErrInjected. Negative disarms.
func (f *File) FailWriteAfter(total int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWriteAfter = total
}

// FailSyncAfter arms a sync fault: the (calls+1)-th Sync from now
// returns ErrInjected without making anything durable. Negative disarms.
func (f *File) FailSyncAfter(calls int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if calls < 0 {
		f.failSyncAfter = -1
		return
	}
	f.failSyncAfter = f.syncs + calls
}

func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, errors.New("faultfs: read on closed file")
	}
	if f.pos >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, errors.New("faultfs: write on closed file")
	}
	accept := len(p)
	injected := false
	if f.failWriteAfter >= 0 && f.written+int64(len(p)) > f.failWriteAfter {
		accept = int(f.failWriteAfter - f.written)
		if accept < 0 {
			accept = 0
		}
		injected = true
	}
	end := f.pos + int64(accept)
	if end > int64(len(f.data)) {
		f.data = append(f.data, make([]byte, end-int64(len(f.data)))...)
	}
	copy(f.data[f.pos:end], p[:accept])
	f.pos = end
	f.written += int64(accept)
	if injected {
		return accept, fmt.Errorf("%w: write failed after %d bytes", ErrInjected, accept)
	}
	return accept, nil
}

func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = int64(len(f.data))
	default:
		return 0, fmt.Errorf("faultfs: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, errors.New("faultfs: negative seek")
	}
	f.pos = np
	return np, nil
}

func (f *File) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < 0 || size > int64(len(f.data)) {
		if size < 0 {
			return errors.New("faultfs: negative truncate")
		}
		// Extending truncate: zero-fill, like a real file.
		f.data = append(f.data, make([]byte, size-int64(len(f.data)))...)
		return nil
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.failSyncAfter >= 0 && f.syncs > f.failSyncAfter {
		return fmt.Errorf("%w: sync failed", ErrInjected)
	}
	f.synced = len(f.data)
	return nil
}

func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

// Written returns the total bytes accepted across the file's lifetime —
// the reference point for arming FailWriteAfter mid-test.
func (f *File) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Bytes returns a copy of the volatile contents — what survives a clean
// shutdown.
func (f *File) Bytes() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.data...)
}

// SyncedBytes returns a copy of only the durable contents.
func (f *File) SyncedBytes() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.data[:f.synced]...)
}

// CrashImage models a power cut: every durable byte survives, plus up to
// torn additional bytes of the unsynced tail (a torn write). torn < 0
// keeps the whole unsynced tail (crash after the page cache flushed but
// before Sync returned).
func (f *File) CrashImage(torn int) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	keep := f.synced
	tail := len(f.data) - f.synced
	switch {
	case torn < 0 || torn > tail:
		keep = len(f.data)
	default:
		keep += torn
	}
	return append([]byte(nil), f.data[:keep]...)
}

// FlipBit returns a copy of b with the given bit inverted — the
// single-event-upset corruptor the recovery tests sweep across every
// offset.
func FlipBit(b []byte, bit int64) []byte {
	out := append([]byte(nil), b...)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}

// Writer is an io.Writer that accepts up to Limit bytes, then fails with
// ErrInjected after a short write — for proving save paths propagate
// mid-stream write errors instead of silently truncating.
type Writer struct {
	Limit int
	n     int
}

func (w *Writer) Write(p []byte) (int, error) {
	if w.n >= w.Limit {
		return 0, ErrInjected
	}
	if w.n+len(p) > w.Limit {
		accept := w.Limit - w.n
		w.n = w.Limit
		return accept, fmt.Errorf("%w: short write", ErrInjected)
	}
	w.n += len(p)
	return len(p), nil
}
