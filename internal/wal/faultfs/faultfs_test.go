package faultfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestTwoTierCrashModel(t *testing.T) {
	f := New()
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("-volatile"))

	if got := string(f.SyncedBytes()); got != "durable" {
		t.Fatalf("synced = %q", got)
	}
	if got := string(f.Bytes()); got != "durable-volatile" {
		t.Fatalf("bytes = %q", got)
	}
	if got := string(f.CrashImage(0)); got != "durable" {
		t.Fatalf("CrashImage(0) = %q", got)
	}
	if got := string(f.CrashImage(4)); got != "durable-vol" {
		t.Fatalf("CrashImage(4) = %q", got)
	}
	if got := string(f.CrashImage(-1)); got != "durable-volatile" {
		t.Fatalf("CrashImage(-1) = %q", got)
	}
}

func TestFailWriteAfterTears(t *testing.T) {
	f := New()
	f.Write([]byte("0123456789"))
	f.FailWriteAfter(f.Written() + 3)
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	if got := string(f.Bytes()); got != "0123456789abc" {
		t.Fatalf("contents %q", got)
	}
	f.FailWriteAfter(-1)
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("disarmed write: %v", err)
	}
}

func TestFailSyncAfter(t *testing.T) {
	f := New()
	f.Write([]byte("x"))
	f.FailSyncAfter(1)
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync: %v", err)
	}
	if len(f.SyncedBytes()) != 1 {
		t.Fatal("failed sync changed durability")
	}
}

func TestSeekReadTruncate(t *testing.T) {
	f := New()
	f.Write([]byte("hello world"))
	if _, err := f.Seek(6, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 16)
	n, _ := f.Read(b)
	if string(b[:n]) != "world" {
		t.Fatalf("read %q", b[:n])
	}
	if _, err := f.Read(b); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	f.Sync()
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if got := string(f.Bytes()); got != "hello" {
		t.Fatalf("after shrink: %q", got)
	}
	if len(f.SyncedBytes()) != 5 {
		t.Fatal("shrink did not clamp the synced watermark")
	}
	if err := f.Truncate(8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Bytes(), []byte("hello\x00\x00\x00")) {
		t.Fatalf("extending truncate: %q", f.Bytes())
	}
}

func TestFlipBit(t *testing.T) {
	orig := []byte{0x00, 0xFF}
	mut := FlipBit(orig, 9)
	if orig[1] != 0xFF {
		t.Fatal("FlipBit mutated its input")
	}
	if mut[1] != 0xFD {
		t.Fatalf("mut = %#v", mut)
	}
}

func TestFailingWriter(t *testing.T) {
	w := &Writer{Limit: 5}
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("within limit: n=%d err=%v", n, err)
	}
	if n, err := w.Write([]byte("defg")); n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if _, err := w.Write([]byte("h")); !errors.Is(err, ErrInjected) {
		t.Fatalf("exhausted: %v", err)
	}
}
