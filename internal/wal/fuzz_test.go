package wal

import (
	"bytes"
	"errors"
	"testing"

	"anna/internal/wal/faultfs"
)

// FuzzLoad hardens the WAL reader: arbitrary bytes must produce either
// intact records or a clean ErrCorrupt stop — never a panic or an
// oversized allocation. (Named FuzzLoad to match the CI smoke job that
// fuzzes every loader in the tree.)
func FuzzLoad(f *testing.F) {
	mk := func(recs ...[]byte) []byte {
		file := faultfs.New()
		l, _, err := Open(file, Options{Policy: SyncNone}, nil)
		if err != nil {
			f.Fatal(err)
		}
		for _, r := range recs {
			if _, err := l.Append(r); err != nil {
				f.Fatal(err)
			}
		}
		l.Close()
		return file.Bytes()
	}
	valid := mk([]byte("alpha"), []byte("beta"), bytes.Repeat([]byte{7}, 300))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:headerSize/2])
	f.Add(mk())
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := Replay(bytes.NewReader(data), func(seq uint64, p []byte) error {
			if len(p) > MaxPayload {
				t.Fatalf("delivered %d-byte payload", len(p))
			}
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("non-corrupt error %v after %d records", err, n)
		}
		// Open must agree with Replay and leave an appendable log.
		file := faultfs.New()
		if _, werr := file.Write(data); werr != nil {
			t.Fatal(werr)
		}
		l, rec, oerr := Open(file, Options{Policy: SyncNone}, nil)
		if oerr != nil {
			t.Fatalf("Open errored on corrupt input: %v", oerr)
		}
		if rec.Records != n {
			t.Fatalf("Open recovered %d records, Replay %d", rec.Records, n)
		}
		if _, aerr := l.Append([]byte("post-recovery")); aerr != nil {
			t.Fatalf("append after recovery: %v", aerr)
		}
		l.Close()
	})
}
