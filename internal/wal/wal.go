// Package wal implements a checksummed write-ahead log for the serving
// path's mutations: each accepted /add batch is appended as one record
// and made durable (per the configured fsync policy) before the client
// sees an acknowledgment, and startup recovery replays the log on top of
// the latest snapshot, truncating at the first corrupt or torn record.
//
// Record framing (little endian):
//
//	seq     uint64  — record ordinal from the start of the file
//	length  uint32  — payload bytes
//	crc32c  uint32  — CRC32C over seq, length and payload
//	payload length bytes
//
// The sequence number pins each record to its position, so stale bytes
// surviving a partial truncation can never replay as fresh records; the
// trailing CRC turns torn writes and bit flips into a clean stop.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

const (
	headerSize = 16
	// MaxPayload bounds a single record, so a corrupt length field
	// cannot demand an absurd allocation.
	MaxPayload = 1 << 30
	// allocChunk bounds upfront allocation while reading a payload:
	// buffers grow only as bytes actually arrive.
	allocChunk = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is wrapped by record-level failures: torn headers or
// payloads, checksum mismatches, implausible lengths, out-of-order
// sequence numbers.
var ErrCorrupt = errors.New("wal: corrupt record")

// Policy selects when appends are fsynced.
type Policy int

const (
	// SyncAlways fsyncs before every Append returns: an acknowledged
	// record survives any crash. The default, and the slowest.
	SyncAlways Policy = iota
	// SyncInterval fsyncs when Options.Interval has elapsed since the
	// last sync (group commit): bounded data loss, amortized fsyncs.
	SyncInterval
	// SyncNone never fsyncs; the OS page cache decides. Fastest, and a
	// power failure can lose everything since the last natural flush.
	SyncNone
)

// Options configure a Log.
type Options struct {
	Policy Policy
	// Interval is the SyncInterval group-commit window (default 100ms).
	Interval time.Duration
}

// File is the storage a Log appends to — *os.File in production,
// faultfs.File under fault injection.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Recovery reports what Open found in an existing log.
type Recovery struct {
	// Records is the number of intact records scanned (and delivered to
	// the replay callback).
	Records int
	// GoodBytes is the byte length of the intact prefix.
	GoodBytes int64
	// TornBytes counts trailing bytes discarded because the first
	// record they contained was torn or corrupt.
	TornBytes int64
}

// Log is an append-only record log. All methods are safe for concurrent
// use.
type Log struct {
	mu       sync.Mutex
	f        File
	opt      Options
	nextSeq  uint64
	end      int64 // offset of the last intact record's end
	lastSync time.Time
	dirty    bool
	broken   error // set when a failed write could not be rolled back
	buf      []byte
	onSync   func()
	syncObs  func(time.Duration)

	appends, fsyncs, bytesWritten atomic.Uint64
}

// Open scans f from the start, delivers every intact record to fn (which
// may be nil), truncates any torn or corrupt tail, and returns a Log
// positioned to append after the last intact record. A non-nil error
// from fn aborts the open; the caller still owns f.
func Open(f File, opt Options, fn func(seq uint64, payload []byte) error) (*Log, Recovery, error) {
	if opt.Policy == SyncInterval && opt.Interval <= 0 {
		opt.Interval = 100 * time.Millisecond
	}
	var rec Recovery
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, rec, err
	}
	br := bufio.NewReader(f)
	seq := uint64(0)
	for {
		payload, n, err := readRecord(br, seq)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn/corrupt tail: everything from here on is untrusted.
			break
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return nil, rec, err
			}
		}
		seq++
		rec.Records++
		rec.GoodBytes += n
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, rec, err
	}
	if size > rec.GoodBytes {
		rec.TornBytes = size - rec.GoodBytes
		if err := f.Truncate(rec.GoodBytes); err != nil {
			return nil, rec, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if _, err := f.Seek(rec.GoodBytes, io.SeekStart); err != nil {
			return nil, rec, err
		}
	}
	l := &Log{f: f, opt: opt, nextSeq: seq, end: rec.GoodBytes, lastSync: time.Now()}
	return l, rec, nil
}

// OpenFile opens (creating if needed) the log at path. See Open.
func OpenFile(path string, opt Options, fn func(seq uint64, payload []byte) error) (*Log, Recovery, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovery{}, err
	}
	l, rec, err := Open(f, opt, fn)
	if err != nil {
		f.Close()
		return nil, rec, err
	}
	return l, rec, nil
}

// AppendFrame appends one framed record — header (seq, length, CRC32C)
// plus payload — to dst and returns the extended slice. It is the
// single encoder behind Append and the tail-read replication stream, so
// bytes produced here are always decodable by readRecord/ReplayFrom.
func AppendFrame(dst []byte, seq uint64, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], seq)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[0:12])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[12:16], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Append writes one record and applies the sync policy. When it returns
// nil under SyncAlways, the record is durable. A failed write is rolled
// back by truncating to the previous record boundary; if even that
// fails, the log is poisoned and every later Append errors (the caller
// must recover by reopening).
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload of %d bytes exceeds limit %d", len(payload), MaxPayload)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return 0, fmt.Errorf("wal: log unusable after write failure: %w", l.broken)
	}
	need := headerSize + len(payload)
	b := AppendFrame(l.buf[:0], l.nextSeq, payload)
	l.buf = b
	if _, err := l.f.Write(b); err != nil {
		// The write may have torn: cut the partial record back off so
		// the log stays appendable.
		if terr := l.f.Truncate(l.end); terr != nil {
			l.broken = err
		} else if _, serr := l.f.Seek(l.end, io.SeekStart); serr != nil {
			l.broken = err
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	seq := l.nextSeq
	l.nextSeq++
	l.end += int64(need)
	l.dirty = true
	l.appends.Add(1)
	l.bytesWritten.Add(uint64(need))
	if err := l.maybeSync(); err != nil {
		return 0, fmt.Errorf("wal: fsync: %w", err)
	}
	return seq, nil
}

func (l *Log) maybeSync() error {
	switch l.opt.Policy {
	case SyncNone:
		return nil
	case SyncInterval:
		if time.Since(l.lastSync) < l.opt.Interval {
			return nil
		}
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.lastSync = time.Now()
	l.fsyncs.Add(1)
	if l.syncObs != nil {
		l.syncObs(l.lastSync.Sub(start))
	}
	if l.onSync != nil {
		l.onSync()
	}
	return nil
}

// Sync forces an fsync regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// Reset truncates the log to empty (after a snapshot has captured its
// records) and fsyncs the truncation.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	l.nextSeq = 0
	l.end = 0
	l.broken = nil
	l.dirty = true
	return l.syncLocked()
}

// Close syncs pending records and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	serr := l.syncLocked()
	cerr := l.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// SetOnSync registers a hook invoked after every successful fsync (a
// metrics counter). It runs with the log lock held; keep it cheap.
func (l *Log) SetOnSync(fn func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onSync = fn
}

// SetSyncObserver registers a hook receiving the measured duration of
// every successful fsync (a latency histogram). Like SetOnSync it runs
// with the log lock held; keep it cheap.
func (l *Log) SetSyncObserver(fn func(time.Duration)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.syncObs = fn
}

// ReadFrom scans the live segment from its beginning and delivers every
// record with seq >= from to fn, in order. It is the tail-read API the
// replication layer streams follower catch-up from: a follower that
// bootstrapped at sequence S asks for [S, Records()). from == Records()
// is valid and delivers nothing; from > Records() is the caller's error.
// The scan revalidates every checksum on the way (a linear pass — the
// live segment is bounded by the snapshot cadence), holds the log lock
// for its duration (appends wait), and restores the append position
// before returning; if that restore fails the log is poisoned like a
// failed Append rollback.
func (l *Log) ReadFrom(from uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("wal: log unusable after write failure: %w", l.broken)
	}
	if from > l.nextSeq {
		return fmt.Errorf("wal: tail read from %d, log ends at %d", from, l.nextSeq)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	scan := func() error {
		br := bufio.NewReader(l.f)
		for seq := uint64(0); seq < l.nextSeq; seq++ {
			payload, _, err := readRecord(br, seq)
			if err != nil {
				return fmt.Errorf("wal: tail read at record %d: %w", seq, err)
			}
			if seq >= from && fn != nil {
				if err := fn(seq, payload); err != nil {
					return err
				}
			}
		}
		return nil
	}
	err := scan()
	if _, serr := l.f.Seek(l.end, io.SeekStart); serr != nil {
		l.broken = serr
		if err == nil {
			err = fmt.Errorf("wal: restoring append position: %w", serr)
		}
	}
	return err
}

// Records returns the number of records in the live segment.
func (l *Log) Records() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Size returns the byte length of the live segment.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Stats returns lifetime counters: appends, fsyncs, and bytes written.
func (l *Log) Stats() (appends, fsyncs, bytes uint64) {
	return l.appends.Load(), l.fsyncs.Load(), l.bytesWritten.Load()
}

// Replay reads records from r in order, calling fn for each. It returns
// the number of intact records delivered; err is nil at a clean end of
// input, wraps ErrCorrupt when a torn or corrupt record stopped the
// scan, or is fn's error.
func Replay(r io.Reader, fn func(seq uint64, payload []byte) error) (int, error) {
	return ReplayFrom(r, 0, fn)
}

// ReplayFrom is Replay for a stream that starts mid-log: the first
// record must carry sequence number from (the follower's catch-up
// position), each subsequent record the next one. This is the decode
// side of Log.ReadFrom — a tail streamed from sequence S replays with
// ReplayFrom(r, S, fn).
func ReplayFrom(r io.Reader, from uint64, fn func(seq uint64, payload []byte) error) (int, error) {
	br := bufio.NewReader(r)
	n := 0
	seq := from
	for {
		payload, _, err := readRecord(br, seq)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return n, err
			}
		}
		seq++
		n++
	}
}

// readRecord decodes one record, verifying position and checksum. It
// returns io.EOF at a clean record boundary; any other failure wraps
// ErrCorrupt.
func readRecord(br *bufio.Reader, wantSeq uint64) ([]byte, int64, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("%w: torn header: %v", ErrCorrupt, err)
	}
	seq := binary.LittleEndian.Uint64(hdr[0:8])
	length := binary.LittleEndian.Uint32(hdr[8:12])
	stored := binary.LittleEndian.Uint32(hdr[12:16])
	if seq != wantSeq {
		return nil, 0, fmt.Errorf("%w: record %d carries sequence %d", ErrCorrupt, wantSeq, seq)
	}
	if length > MaxPayload {
		return nil, 0, fmt.Errorf("%w: record %d claims %d bytes", ErrCorrupt, wantSeq, length)
	}
	payload, err := readChunked(br, int(length))
	if err != nil {
		return nil, 0, fmt.Errorf("%w: torn payload in record %d: %v", ErrCorrupt, wantSeq, err)
	}
	crc := crc32.Update(0, castagnoli, hdr[0:12])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != stored {
		return nil, 0, fmt.Errorf("%w: record %d checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, wantSeq, stored, crc)
	}
	return payload, headerSize + int64(length), nil
}

// readChunked reads need bytes, growing the buffer chunk-by-chunk so a
// hostile length field cannot force a large allocation before the bytes
// exist.
func readChunked(br *bufio.Reader, need int) ([]byte, error) {
	if need == 0 {
		return nil, nil
	}
	var buf []byte
	for len(buf) < need {
		n := need - len(buf)
		if n > allocChunk {
			n = allocChunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(br, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
