package wal

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"anna/internal/wal/faultfs"
)

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte{byte(i)}, i%40)))
	}
	return out
}

// appendAll writes records and returns the log.
func appendAll(t *testing.T, f File, opt Options, recs [][]byte) *Log {
	t.Helper()
	l, rec, err := Open(f, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 0 || rec.TornBytes != 0 {
		t.Fatalf("fresh log recovered %+v", rec)
	}
	for i, p := range recs {
		seq, err := l.Append(p)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d returned seq %d", i, seq)
		}
	}
	return l
}

// replayAll collects every record Open delivers from raw bytes.
func replayAll(t *testing.T, raw []byte) ([][]byte, Recovery) {
	t.Helper()
	f := faultfs.New()
	if _, err := f.Write(raw); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	l, rec, err := Open(f, Options{Policy: SyncNone}, func(seq uint64, p []byte) error {
		if seq != uint64(len(got)) {
			t.Fatalf("out-of-order seq %d", seq)
		}
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	return got, rec
}

func TestAppendReplayRoundTrip(t *testing.T) {
	recs := payloads(25)
	f := faultfs.New()
	l := appendAll(t, f, Options{Policy: SyncAlways}, recs)
	if l.Records() != uint64(len(recs)) {
		t.Fatalf("Records() = %d", l.Records())
	}
	appends, fsyncs, _ := l.Stats()
	if appends != uint64(len(recs)) || fsyncs != uint64(len(recs)) {
		t.Fatalf("SyncAlways stats: %d appends, %d fsyncs", appends, fsyncs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, rec := replayAll(t, f.Bytes())
	if rec.Records != len(recs) || rec.TornBytes != 0 {
		t.Fatalf("recovery %+v", rec)
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestTruncationAtEveryOffset: whatever prefix of the log survives a
// crash, recovery keeps exactly the intact records and discards the torn
// tail — never an error, never a partial record delivered.
func TestTruncationAtEveryOffset(t *testing.T) {
	recs := payloads(10)
	f := faultfs.New()
	l := appendAll(t, f, Options{Policy: SyncNone}, recs)
	l.Close()
	full := f.Bytes()

	// Record boundaries, for computing how many records survive a cut.
	bounds := []int{0}
	for _, p := range recs {
		bounds = append(bounds, bounds[len(bounds)-1]+headerSize+len(p))
	}
	wantIntact := func(n int) int {
		k := 0
		for k+1 < len(bounds) && bounds[k+1] <= n {
			k++
		}
		return k
	}

	for cut := 0; cut <= len(full); cut++ {
		got, rec := replayAll(t, full[:cut])
		want := wantIntact(cut)
		if len(got) != want {
			t.Fatalf("cut %d: %d records recovered, want %d", cut, len(got), want)
		}
		if rec.GoodBytes != int64(bounds[want]) {
			t.Fatalf("cut %d: GoodBytes %d, want %d", cut, rec.GoodBytes, bounds[want])
		}
		if rec.TornBytes != int64(cut-bounds[want]) {
			t.Fatalf("cut %d: TornBytes %d", cut, rec.TornBytes)
		}
		for i := 0; i < want; i++ {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("cut %d: record %d corrupted", cut, i)
			}
		}
	}
}

// TestBitFlipStopsReplayCleanly: a flipped bit anywhere makes recovery
// stop at the last record wholly before the damage; records after it are
// discarded (they cannot be trusted once the sequence is broken).
func TestBitFlipStopsReplayCleanly(t *testing.T) {
	recs := payloads(8)
	f := faultfs.New()
	appendAll(t, f, Options{Policy: SyncNone}, recs).Close()
	full := f.Bytes()

	bounds := []int{0}
	for _, p := range recs {
		bounds = append(bounds, bounds[len(bounds)-1]+headerSize+len(p))
	}
	for bit := int64(0); bit < int64(len(full))*8; bit += 5 {
		mut := faultfs.FlipBit(full, bit)
		got, _ := replayAll(t, mut)
		// Every record before the damaged byte must replay intact; the
		// damaged record and everything after must be dropped.
		damaged := int(bit / 8)
		var wantMax int
		for wantMax+1 < len(bounds) && bounds[wantMax+1] <= damaged {
			wantMax++
		}
		if len(got) > wantMax {
			t.Fatalf("bit %d: replayed %d records past damage at byte %d", bit, len(got), damaged)
		}
		for i := range got {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("bit %d: record %d corrupted in replay", bit, i)
			}
		}
	}
}

// TestStaleBytesCannotReplay: records from an earlier, longer log
// generation must not resurrect after a Reset — the sequence check
// refuses them.
func TestStaleBytesCannotReplay(t *testing.T) {
	f := faultfs.New()
	l := appendAll(t, f, Options{Policy: SyncNone}, payloads(5))
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	fresh := f.Bytes()

	// Simulate a filesystem that lost the truncate but kept the new
	// record: splice stale bytes after the fresh one.
	f2 := faultfs.New()
	stale := faultfs.New()
	appendAll(t, stale, Options{Policy: SyncNone}, payloads(5)).Close()
	f2.Write(fresh)
	f2.Write(stale.Bytes()[:30])
	got, rec := replayAll(t, f2.Bytes())
	if len(got) != 1 || !bytes.Equal(got[0], []byte("fresh")) {
		t.Fatalf("replayed %d records, want only the fresh one", len(got))
	}
	if rec.TornBytes != 30 {
		t.Fatalf("TornBytes %d, want 30", rec.TornBytes)
	}
}

// TestCrashImageRecovery drives the two-tier crash model: every synced
// record must survive any crash; unsynced ones may or may not, but
// recovery must never error or deliver garbage.
func TestCrashImageRecovery(t *testing.T) {
	recs := payloads(6)
	f := faultfs.New()
	l, _, err := Open(f, Options{Policy: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range recs[:4] {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	// Two more records under SyncNone semantics: bypass policy by
	// writing through a second log? Simpler: switch policy via new log on
	// same file is invalid; instead test with an interval log below.
	synced := f.SyncedBytes()
	for torn := 0; torn <= len(f.Bytes())-len(synced); torn++ {
		got, _ := replayAll(t, f.CrashImage(torn))
		if len(got) < 4 {
			t.Fatalf("torn %d: lost synced record (%d/4 recovered)", torn, len(got))
		}
	}

	// Group-commit log: unsynced tail may tear anywhere.
	f2 := faultfs.New()
	l2, _, err := Open(f2, Options{Policy: SyncInterval, Interval: time.Hour}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range recs {
		if _, err := l2.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if len(f2.SyncedBytes()) != 0 {
		t.Fatal("interval log synced unexpectedly")
	}
	for torn := 0; torn <= len(f2.Bytes()); torn += 3 {
		got, _ := replayAll(t, f2.CrashImage(torn))
		for i := range got {
			if !bytes.Equal(got[i], recs[i]) {
				t.Fatalf("torn %d: record %d corrupted", torn, i)
			}
		}
	}
	// An explicit Sync pins everything.
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, f2.SyncedBytes())
	if len(got) != len(recs) {
		t.Fatalf("after Sync only %d/%d records durable", len(got), len(recs))
	}
}

// TestFailedAppendRollsBack: a torn write must leave the log appendable
// and the partial record invisible.
func TestFailedAppendRollsBack(t *testing.T) {
	f := faultfs.New()
	l := appendAll(t, f, Options{Policy: SyncAlways}, payloads(3))
	// Fail the next write after 10 more bytes (mid-record).
	f.FailWriteAfter(f.Written() + 10)
	if _, err := l.Append([]byte("doomed record")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	// Disk recovered: the log must accept appends again, and replay must
	// see 3 old records + 1 new.
	f.FailWriteAfter(-1)
	if _, err := l.Append([]byte("after failure")); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	l.Close()
	got, rec := replayAll(t, f.Bytes())
	if len(got) != 4 || rec.TornBytes != 0 {
		t.Fatalf("recovered %d records, torn %d; want 4, 0", len(got), rec.TornBytes)
	}
	if !bytes.Equal(got[3], []byte("after failure")) {
		t.Fatalf("record 3 = %q", got[3])
	}
}

// TestFailedSyncSurfaces: under SyncAlways a failed fsync must fail the
// Append — the caller must not acknowledge the batch.
func TestFailedSyncSurfaces(t *testing.T) {
	f := faultfs.New()
	l, _, err := Open(f, Options{Policy: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.FailSyncAfter(0)
	if _, err := l.Append([]byte("x")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	f.FailSyncAfter(-1)
	if _, err := l.Append([]byte("y")); err != nil {
		t.Fatalf("append after sync recovered: %v", err)
	}
}

func TestResetEmptiesLog(t *testing.T) {
	f := faultfs.New()
	l := appendAll(t, f, Options{Policy: SyncAlways}, payloads(7))
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 || l.Size() != 0 {
		t.Fatalf("after reset: %d records, %d bytes", l.Records(), l.Size())
	}
	if _, err := l.Append([]byte("post-reset")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, _ := replayAll(t, f.Bytes())
	if len(got) != 1 || !bytes.Equal(got[0], []byte("post-reset")) {
		t.Fatalf("replay after reset: %d records", len(got))
	}
}

func TestOversizePayloadRefused(t *testing.T) {
	f := faultfs.New()
	l, _, err := Open(f, Options{Policy: SyncNone}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversize payload accepted")
	}
}

// TestReplayReader covers the io.Reader-based Replay used by tooling.
func TestReplayReader(t *testing.T) {
	recs := payloads(4)
	f := faultfs.New()
	appendAll(t, f, Options{Policy: SyncNone}, recs).Close()
	n, err := Replay(bytes.NewReader(f.Bytes()), nil)
	if err != nil || n != 4 {
		t.Fatalf("Replay = %d, %v", n, err)
	}
	// A torn tail is reported as ErrCorrupt with the intact count.
	n, err = Replay(bytes.NewReader(f.Bytes()[:len(f.Bytes())-3]), nil)
	if n != 3 || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn Replay = %d, %v", n, err)
	}
}

func TestOpenFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, err := OpenFile(path, Options{Policy: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := payloads(5)
	for _, p := range recs {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got int
	l2, rec, err := OpenFile(path, Options{Policy: SyncAlways}, func(seq uint64, p []byte) error {
		if !bytes.Equal(p, recs[got]) {
			t.Fatalf("record %d mismatch", got)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.Records != 5 || got != 5 {
		t.Fatalf("recovered %d records", rec.Records)
	}
	// And the reopened log continues the sequence.
	if seq, err := l2.Append([]byte("six")); err != nil || seq != 5 {
		t.Fatalf("continuation append: seq %d, %v", seq, err)
	}
}

// AppendFrame produces exactly the bytes Append writes, so a tail
// streamed with it replays like the original log.
func TestAppendFrameMatchesAppend(t *testing.T) {
	recs := payloads(8)
	f := faultfs.New()
	l := appendAll(t, f, Options{Policy: SyncNone}, recs)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	var manual []byte
	for i, p := range recs {
		manual = AppendFrame(manual, uint64(i), p)
	}
	img := f.CrashImage(0)
	if !bytes.Equal(manual, img) {
		t.Fatalf("AppendFrame bytes differ from Append bytes (%d vs %d)", len(manual), len(img))
	}
}

// The tail-read API: ReadFrom(s) delivers exactly the records with
// seq >= s, and a stream re-framed from it decodes with ReplayFrom.
func TestReadFromTail(t *testing.T) {
	recs := payloads(12)
	f := faultfs.New()
	l := appendAll(t, f, Options{Policy: SyncNone}, recs)
	for from := uint64(0); from <= uint64(len(recs)); from++ {
		var stream []byte
		n := 0
		err := l.ReadFrom(from, func(seq uint64, p []byte) error {
			if seq != from+uint64(n) {
				t.Fatalf("from=%d: record %d carries seq %d", from, n, seq)
			}
			stream = AppendFrame(stream, seq, p)
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", from, err)
		}
		if n != len(recs)-int(from) {
			t.Fatalf("ReadFrom(%d) delivered %d records, want %d", from, n, len(recs)-int(from))
		}
		// Decode the re-framed stream with ReplayFrom.
		var got [][]byte
		rn, err := ReplayFrom(bytes.NewReader(stream), from, func(seq uint64, p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil || rn != n {
			t.Fatalf("ReplayFrom(%d): n=%d err=%v", from, rn, err)
		}
		for i, p := range got {
			if !bytes.Equal(p, recs[int(from)+i]) {
				t.Fatalf("from=%d record %d mismatch", from, i)
			}
		}
	}
	// Past the end is a caller error; exactly the end is an empty tail.
	if err := l.ReadFrom(uint64(len(recs))+1, nil); err == nil {
		t.Fatal("ReadFrom past end succeeded")
	}
	// The log still appends after tail reads (position restored).
	if seq, err := l.Append([]byte("after-tail")); err != nil || seq != uint64(len(recs)) {
		t.Fatalf("append after tail read: seq=%d err=%v", seq, err)
	}
	n := 0
	if err := l.ReadFrom(0, func(uint64, []byte) error { n++; return nil }); err != nil || n != len(recs)+1 {
		t.Fatalf("post-append tail: n=%d err=%v", n, err)
	}
}

// Property: for any split point s, replaying the prefix [0,s) and then
// the tail ReadFrom(s) yields the same final state as one full replay.
// "State" is the concatenated record stream — the WAL's contract is
// that state is a pure fold over it.
func TestReplayFromAnySeqMatchesFullReplay(t *testing.T) {
	recs := payloads(25)
	f := faultfs.New()
	l := appendAll(t, f, Options{Policy: SyncNone}, recs)

	var full []byte
	if err := l.ReadFrom(0, func(seq uint64, p []byte) error {
		full = append(full, p...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for s := uint64(0); s <= uint64(len(recs)); s++ {
		var split []byte
		err := l.ReadFrom(0, func(seq uint64, p []byte) error {
			if seq < s {
				split = append(split, p...)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.ReadFrom(s, func(seq uint64, p []byte) error {
			split = append(split, p...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(full, split) {
			t.Fatalf("split at %d diverges from full replay", s)
		}
	}
}

// ReplayFrom refuses a stream whose first record does not carry the
// expected sequence number — a follower can never apply a tail that was
// cut at the wrong place.
func TestReplayFromWrongSeqRefused(t *testing.T) {
	stream := AppendFrame(nil, 7, []byte("x"))
	if _, err := ReplayFrom(bytes.NewReader(stream), 6, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("seq 7 accepted at position 6: %v", err)
	}
	if n, err := ReplayFrom(bytes.NewReader(stream), 7, nil); err != nil || n != 1 {
		t.Fatalf("correct seq refused: n=%d err=%v", n, err)
	}
}
