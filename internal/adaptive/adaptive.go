// Package adaptive holds the per-query effort policies of ROADMAP open
// item 4: early termination of the cluster scan, escalation of a margin
// band of candidates through the SQ8 re-rank machinery, and the
// recall-SLO controller that closes the loop between the serving layer's
// shadow recall estimator and the search knobs.
//
// Everything here is a deterministic, allocation-free state machine so
// the policies can be unit-tested exhaustively and embedded in the
// engine's hot path without synchronization. The policies trade the
// engine's bit-exactness guarantee for a documented recall contract (see
// docs/ARCHITECTURE.md §4j): with termination disabled (Patience == 0)
// and escalation disabled (EscalateFactor <= 1) the adaptive path is
// bit-identical to the fixed-W scan.
package adaptive

import (
	"math"

	"anna/internal/topk"
)

// Params are the per-query effort knobs threaded from the public API
// through the engine into ivf.Searcher.SearchAdaptiveStats. The zero
// value disables both policies (bit-identical to the fixed path).
type Params struct {
	// StopPatience stops the cluster scan once the running kth score has
	// not improved for this many consecutive clusters. 0 (or negative)
	// never stops: all W selected clusters are scanned.
	StopPatience int
	// MinClusters is a floor: termination is never taken before this
	// many clusters have been scanned (values < 1 behave as 1).
	MinClusters int
	// EscalateFactor > 1 enables precision escalation: the PQ scan keeps
	// K*EscalateFactor candidates and the margin band among them is
	// re-scored against the SQ8 reconstructions. <= 1 disables it.
	EscalateFactor int
	// Margin sets the escalation band width as a fraction of the
	// top1-to-kth score spread (see Band). 0 re-scores only the top K.
	Margin float32
}

// Enabled reports whether either adaptive policy is active.
func (p Params) Enabled() bool { return p.StopPatience > 0 || p.EscalateFactor > 1 }

// Termination is the early-termination state machine for one query's
// cluster scan. Reset it, then call Observe after each scanned cluster
// with the selector's current threshold; Observe reports when the scan
// should stop. The policy: stop once the kth-best score has gone
// Patience consecutive clusters without improving, but never before
// MinClusters clusters (or before the selector has filled — an unfilled
// selector improves by definition).
type Termination struct {
	Patience    int // consecutive non-improving clusters before stopping; <= 0 never stops
	MinClusters int // scan at least this many clusters; < 1 behaves as 1

	scanned  int
	stale    int
	best     float32
	haveBest bool
}

// Reset clears the per-query state, keeping the policy knobs.
func (t *Termination) Reset() {
	t.scanned, t.stale, t.best, t.haveBest = 0, 0, 0, false
}

// Observe records the selector state after one scanned cluster — kth is
// Selector.Threshold() and full is its ok result — and reports whether
// the scan should stop before the next cluster.
func (t *Termination) Observe(kth float32, full bool) bool {
	t.scanned++
	switch {
	case !full:
		// Top-k not yet filled: every cluster still contributes.
		t.stale = 0
	case !t.haveBest || kth > t.best:
		t.best, t.haveBest = kth, true
		t.stale = 0
	default:
		t.stale++
	}
	if t.Patience <= 0 {
		return false
	}
	min := t.MinClusters
	if min < 1 {
		min = 1
	}
	return t.scanned >= min && t.stale >= t.Patience
}

// Scanned returns how many clusters have been observed since Reset.
func (t *Termination) Scanned() int { return t.scanned }

// Band returns how many of the leading candidates fall inside the
// escalation band: every candidate whose approximate score lies within
// margin*(top1 - last) of the kth score, where top1-last is the spread
// of the whole candidate list. Normalizing by the full spread (rather
// than top1-kth) keeps the band meaningful on heavily quantized score
// distributions where the entire top k can tie exactly. cands must be
// sorted by descending score (a drained selector). The band always
// includes the top k (the result set must be re-scored to be
// reordered), always includes exact ties with the kth, and never
// exceeds len(cands). margin < 0 behaves as 0; k < 1 behaves as 1.
func Band(cands []topk.Result, k int, margin float32) int {
	if k < 1 {
		k = 1
	}
	if len(cands) <= k {
		return len(cands)
	}
	if margin < 0 {
		margin = 0
	}
	top, last, kth := cands[0].Score, cands[len(cands)-1].Score, cands[k-1].Score
	cut := kth - margin*(top-last)
	n := k
	for n < len(cands) && cands[n].Score >= cut {
		n++
	}
	return n
}

// Knobs is one operating point on the controller's effort ladder: the
// effective search width plus the Params it implies. Higher-effort knobs
// spend more work per query for more recall.
type Knobs struct {
	// W is the effective cluster-filter width applied to requests that
	// do not pin their own (0 = leave the request's W alone).
	W int
	// StopPatience / MinClusters / EscalateFactor / Margin mirror Params.
	StopPatience   int
	MinClusters    int
	EscalateFactor int
	Margin         float32
}

// Params converts the knobs to engine search parameters.
func (k Knobs) Params() Params {
	return Params{
		StopPatience:   k.StopPatience,
		MinClusters:    k.MinClusters,
		EscalateFactor: k.EscalateFactor,
		Margin:         k.Margin,
	}
}

// ControllerConfig configures the recall-SLO controller.
type ControllerConfig struct {
	// Target is the recall SLO in (0, 1]: the controller raises effort
	// while the estimate sits below it and lowers effort only when the
	// estimate clears Target+Deadband (asymmetric: dipping below the SLO
	// is acted on immediately, headroom must clear the deadband).
	Target float64
	// Deadband is the no-action margin above Target (default 0.01).
	Deadband float64
	// Hysteresis is how many consecutive out-of-band observations are
	// required before a step (default 3) — one noisy estimator window
	// never moves the knobs.
	Hysteresis int
	// MinSamples is how many new estimator samples must have been
	// processed since the last step before the controller acts again
	// (default 32), so one window is never double-counted.
	MinSamples uint64
	// Low and High are the effort ladder's endpoints; Levels is its
	// resolution (default 8) and Start the initial level (default
	// Levels, i.e. maximum effort — the controller relaxes from safe).
	Low, High Knobs
	Levels    int
	Start     int
}

func (c *ControllerConfig) defaults() {
	if c.Deadband <= 0 {
		c.Deadband = 0.01
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 3
	}
	if c.MinSamples == 0 {
		c.MinSamples = 32
	}
	if c.Levels <= 0 {
		c.Levels = 8
	}
	if c.Start < 0 {
		c.Start = 0
	}
	if c.Start > c.Levels {
		c.Start = c.Levels
	}
}

// Controller is the closed-loop recall-SLO autotuner: a deterministic
// state machine stepping a single integer effort level up and down the
// ladder between Low and High knobs. Steps are bounded to one level per
// decision, gated by hysteresis (consecutive out-of-band observations)
// and by fresh estimator samples. It is not safe for concurrent use;
// the serving layer drives it from one goroutine and publishes the
// resulting Knobs atomically.
type Controller struct {
	cfg    ControllerConfig
	level  int
	below  int
	above  int
	anchor uint64 // estimator processed-count at the last step
	steps  uint64
}

// NewController returns a controller at cfg.Start effort. cfg.Target
// must be in (0, 1].
func NewController(cfg ControllerConfig) *Controller {
	if cfg.Target <= 0 || cfg.Target > 1 {
		panic("adaptive: controller target must be in (0, 1]")
	}
	cfg.defaults()
	return &Controller{cfg: cfg, level: cfg.Start}
}

// Level returns the current effort level in [0, Levels].
func (c *Controller) Level() int { return c.level }

// MaxLevel returns the top of the effort ladder.
func (c *Controller) MaxLevel() int { return c.cfg.Levels }

// Steps returns how many knob changes the controller has made.
func (c *Controller) Steps() uint64 { return c.steps }

// Knobs returns the operating point for the current level, interpolated
// between the configured Low and High endpoints.
func (c *Controller) Knobs() Knobs {
	t := float64(c.level) / float64(c.cfg.Levels)
	lo, hi := c.cfg.Low, c.cfg.High
	return Knobs{
		W:              lerpInt(lo.W, hi.W, t),
		StopPatience:   lerpInt(lo.StopPatience, hi.StopPatience, t),
		MinClusters:    lerpInt(lo.MinClusters, hi.MinClusters, t),
		EscalateFactor: lerpInt(lo.EscalateFactor, hi.EscalateFactor, t),
		Margin:         float32(float64(lo.Margin) + t*float64(hi.Margin-lo.Margin)),
	}
}

// Observe feeds one controller tick: the estimator's rolling recall and
// its cumulative processed-sample count. It returns the knobs to serve
// with and whether they just changed. Until MinSamples fresh samples
// have accumulated since the last step (or since start), the controller
// holds still — warmup and post-step settling share the same gate.
func (c *Controller) Observe(recall float64, processed uint64) (Knobs, bool) {
	if processed < c.anchor || processed-c.anchor < c.cfg.MinSamples {
		return c.Knobs(), false
	}
	switch {
	case recall < c.cfg.Target:
		c.below++
		c.above = 0
	case recall > c.cfg.Target+c.cfg.Deadband:
		c.above++
		c.below = 0
	default:
		c.below, c.above = 0, 0
	}
	changed := false
	if c.below >= c.cfg.Hysteresis && c.level < c.cfg.Levels {
		c.level++
		changed = true
	} else if c.above >= c.cfg.Hysteresis && c.level > 0 {
		c.level--
		changed = true
	}
	if changed {
		c.below, c.above = 0, 0
		c.anchor = processed
		c.steps++
	}
	return c.Knobs(), changed
}

// lerpInt interpolates between lo and hi at t in [0,1], rounding to
// nearest so the ladder endpoints are hit exactly.
func lerpInt(lo, hi int, t float64) int {
	return lo + int(math.Round(float64(hi-lo)*t))
}
