package adaptive

import (
	"testing"

	"anna/internal/topk"
)

func TestTerminationDisabledNeverStops(t *testing.T) {
	term := Termination{Patience: 0, MinClusters: 1}
	term.Reset()
	for i := 0; i < 1000; i++ {
		if term.Observe(1.0, true) {
			t.Fatalf("Patience=0 stopped after %d clusters", i+1)
		}
	}
	if term.Scanned() != 1000 {
		t.Fatalf("Scanned() = %d, want 1000", term.Scanned())
	}
}

func TestTerminationStopsAfterPatienceStaleClusters(t *testing.T) {
	term := Termination{Patience: 3, MinClusters: 1}
	term.Reset()
	// Improving thresholds: never stops.
	for i := 0; i < 10; i++ {
		if term.Observe(float32(i), true) {
			t.Fatalf("stopped while improving at cluster %d", i+1)
		}
	}
	// Flat thresholds: stops on exactly the Patience-th stale cluster.
	if term.Observe(9, true) || term.Observe(9, true) {
		t.Fatal("stopped before patience exhausted")
	}
	if !term.Observe(9, true) {
		t.Fatal("did not stop after 3 stale clusters")
	}
}

func TestTerminationNotFullResetsStale(t *testing.T) {
	term := Termination{Patience: 2, MinClusters: 1}
	term.Reset()
	// While the selector is unfilled every cluster counts as progress.
	for i := 0; i < 20; i++ {
		if term.Observe(0, false) {
			t.Fatalf("stopped while selector unfilled at cluster %d", i+1)
		}
	}
	// First full observation establishes the baseline (progress), the
	// next two flat ones exhaust patience.
	if term.Observe(5, true) {
		t.Fatal("stopped on first full observation")
	}
	if term.Observe(5, true) {
		t.Fatal("stopped after one stale cluster")
	}
	if !term.Observe(5, true) {
		t.Fatal("did not stop after two stale clusters")
	}
}

func TestTerminationMinClustersFloor(t *testing.T) {
	term := Termination{Patience: 1, MinClusters: 8}
	term.Reset()
	// Flat from the start: patience is exhausted immediately, but the
	// floor defers the stop until cluster 8.
	for i := 0; i < 7; i++ {
		full := i > 0 // first observation sets the baseline
		if term.Observe(1, full) {
			t.Fatalf("stopped at cluster %d, below MinClusters=8", i+1)
		}
	}
	if !term.Observe(1, true) {
		t.Fatal("did not stop at the MinClusters floor")
	}
}

func TestTerminationResetClearsState(t *testing.T) {
	term := Termination{Patience: 1, MinClusters: 1}
	term.Reset()
	term.Observe(1, true)
	if !term.Observe(1, true) {
		t.Fatal("setup: expected stop")
	}
	term.Reset()
	if term.Scanned() != 0 {
		t.Fatalf("Scanned() = %d after Reset", term.Scanned())
	}
	if term.Observe(1, true) {
		t.Fatal("stopped immediately after Reset (stale state leaked)")
	}
}

func band(scores []float32, k int, margin float32) int {
	cands := make([]topk.Result, len(scores))
	for i, s := range scores {
		cands[i] = topk.Result{ID: int64(i), Score: s}
	}
	return Band(cands, k, margin)
}

func TestBand(t *testing.T) {
	scores := []float32{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	cases := []struct {
		k      int
		margin float32
		want   int
	}{
		{k: 3, margin: 0, want: 3},    // zero margin: exactly top k
		{k: 3, margin: 0.25, want: 5}, // cut = 8 - 0.25*9 = 5.75 → scores ≥ 6
		{k: 3, margin: 0.5, want: 7},  // cut = 8 - 0.5*9 = 3.5 → scores ≥ 4
		{k: 3, margin: 100, want: 10}, // huge margin: everything
		{k: 10, margin: 0, want: 10},  // k == len
		{k: 20, margin: 0, want: 10},  // k > len: clamped
		{k: 0, margin: 0, want: 1},    // k < 1 behaves as 1
		{k: 3, margin: -1, want: 3},   // negative margin behaves as 0
		{k: 1, margin: 0.25, want: 3}, // cut = 10 - 2.25 → scores ≥ 8
	}
	for _, c := range cases {
		if got := band(scores, c.k, c.margin); got != c.want {
			t.Errorf("Band(k=%d, margin=%g) = %d, want %d", c.k, c.margin, got, c.want)
		}
	}
}

func TestBandTiedScores(t *testing.T) {
	// All candidates tied with the kth must be included regardless of margin.
	if got := band([]float32{5, 5, 5, 5, 5}, 2, 0); got != 5 {
		t.Fatalf("Band over tied scores = %d, want 5", got)
	}
}

func TestControllerKnobsInterpolation(t *testing.T) {
	c := NewController(ControllerConfig{
		Target: 0.9,
		Levels: 4,
		Start:  0,
		Low:    Knobs{W: 8, StopPatience: 1, MinClusters: 2, EscalateFactor: 2, Margin: 0},
		High:   Knobs{W: 32, StopPatience: 9, MinClusters: 2, EscalateFactor: 4, Margin: 0.4},
	})
	if k := c.Knobs(); k != (Knobs{W: 8, StopPatience: 1, MinClusters: 2, EscalateFactor: 2, Margin: 0}) {
		t.Fatalf("level 0 knobs = %+v, want Low endpoint", k)
	}
	c.level = 4
	if k := c.Knobs(); k != (Knobs{W: 32, StopPatience: 9, MinClusters: 2, EscalateFactor: 4, Margin: 0.4}) {
		t.Fatalf("level max knobs = %+v, want High endpoint", k)
	}
	c.level = 2
	k := c.Knobs()
	if k.W != 20 || k.StopPatience != 5 || k.EscalateFactor != 3 {
		t.Fatalf("midpoint knobs = %+v, want W=20 patience=5 factor=3", k)
	}
	if k.Margin < 0.19 || k.Margin > 0.21 {
		t.Fatalf("midpoint margin = %g, want 0.2", k.Margin)
	}
}

func TestControllerRaisesEffortBelowTarget(t *testing.T) {
	c := NewController(ControllerConfig{
		Target: 0.9, Hysteresis: 2, MinSamples: 10, Levels: 4, Start: 1,
		Low:  Knobs{W: 8},
		High: Knobs{W: 32},
	})
	samples := uint64(100)
	// First decision needs MinSamples fresh samples AND Hysteresis
	// consecutive below-target observations.
	if _, changed := c.Observe(0.5, 5); changed {
		t.Fatal("stepped without fresh samples")
	}
	if _, changed := c.Observe(0.5, samples); changed {
		t.Fatal("stepped before hysteresis")
	}
	if _, changed := c.Observe(0.5, samples); !changed {
		t.Fatal("did not step after hysteresis below target")
	}
	if c.Level() != 2 {
		t.Fatalf("level = %d, want 2", c.Level())
	}
	// The step re-anchors the sample gate: no further action until
	// MinSamples new samples arrive.
	if _, changed := c.Observe(0.5, samples+5); changed {
		t.Fatal("stepped again without fresh samples")
	}
	// Drive to the top: the level saturates at Levels.
	for i := 0; i < 20; i++ {
		samples += 10
		c.Observe(0.5, samples)
	}
	if c.Level() != 4 {
		t.Fatalf("level = %d, want saturation at 4", c.Level())
	}
}

func TestControllerLowersEffortWithHeadroom(t *testing.T) {
	c := NewController(ControllerConfig{
		Target: 0.9, Deadband: 0.02, Hysteresis: 2, MinSamples: 1, Levels: 4, Start: 4,
		Low:  Knobs{W: 8},
		High: Knobs{W: 32},
	})
	samples := uint64(1)
	// Recall inside the deadband: hold.
	for i := 0; i < 10; i++ {
		samples++
		if _, changed := c.Observe(0.91, samples); changed {
			t.Fatal("stepped inside the deadband")
		}
	}
	// Clear headroom: steps down one level per hysteresis run.
	for i := 0; i < 2; i++ {
		samples++
		c.Observe(0.99, samples)
	}
	if c.Level() != 3 {
		t.Fatalf("level = %d, want 3", c.Level())
	}
	// Mixed signal resets the run: below-target clears the above count.
	samples++
	c.Observe(0.99, samples)
	samples++
	c.Observe(0.5, samples)
	samples++
	if _, changed := c.Observe(0.99, samples); changed {
		t.Fatal("hysteresis run survived an opposite observation")
	}
	// Floor at level 0.
	for i := 0; i < 20; i++ {
		samples++
		c.Observe(0.99, samples)
	}
	if c.Level() != 0 {
		t.Fatalf("level = %d, want floor at 0", c.Level())
	}
}

func TestControllerStepsBounded(t *testing.T) {
	// One decision moves at most one level, however far recall is from
	// target.
	c := NewController(ControllerConfig{
		Target: 0.95, Hysteresis: 1, MinSamples: 1, Levels: 8, Start: 4,
		Low:  Knobs{W: 4},
		High: Knobs{W: 64},
	})
	if _, changed := c.Observe(0.0, 10); !changed {
		t.Fatal("expected a step")
	}
	if c.Level() != 5 {
		t.Fatalf("level = %d, want 5 (bounded step)", c.Level())
	}
	if c.Steps() != 1 {
		t.Fatalf("Steps() = %d, want 1", c.Steps())
	}
}
