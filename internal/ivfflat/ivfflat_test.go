package ivfflat

import (
	"testing"

	"anna/internal/dataset"
	"anna/internal/exact"
	"anna/internal/pq"
	"anna/internal/recall"
	"anna/internal/topk"
)

func build(t testing.TB, metric pq.Metric) (*Index, *dataset.Dataset) {
	t.Helper()
	spec := dataset.SIFTLike(3000, 12, 1)
	spec.D = 32
	spec.Metric = metric
	ds := dataset.Generate(spec)
	return Build(ds.Base, metric, Config{NClusters: 20, CoarseIters: 6, Seed: 2}), ds
}

func TestFullWidthEqualsExact(t *testing.T) {
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		x, ds := build(t, metric)
		ex := exact.New(metric, ds.Base)
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			q := ds.Queries.Row(qi)
			got := x.Search(q, x.Centroids.Rows, 10)
			want := ex.Search(q, 10)
			for i := range want {
				if got[i].Score != want[i].Score {
					t.Fatalf("%v q%d rank %d: %v vs %v", metric, qi, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPartitionComplete(t *testing.T) {
	x, ds := build(t, pq.L2)
	seen := map[int64]bool{}
	total := 0
	for c := range x.IDs {
		if len(x.Vecs[c]) != len(x.IDs[c])*x.D {
			t.Fatalf("cluster %d storage inconsistent", c)
		}
		for _, id := range x.IDs[c] {
			if seen[id] {
				t.Fatalf("vector %d stored twice", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != ds.N() {
		t.Fatalf("%d stored, want %d", total, ds.N())
	}
}

func TestRecallBetweenPQAndExact(t *testing.T) {
	// IVF-Flat at width W has no quantization error: its recall equals
	// the cluster-filtering recall ceiling.
	x, ds := build(t, pq.L2)
	gt := exact.New(pq.L2, ds.Base).GroundTruth(ds.Queries, 10)
	got := make([][]topk.Result, ds.Queries.Rows)
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		got[qi] = x.Search(ds.Queries.Row(qi), 8, 100)
	}
	if r := recall.Mean(10, 100, gt, got); r < 0.7 {
		t.Errorf("IVF-Flat recall %.3f at W=8", r)
	}
}

func TestMemoryBytes(t *testing.T) {
	x, ds := build(t, pq.L2)
	want := 2*int64(ds.N()*ds.D()) + 2*int64(20*ds.D()) + 8*int64(ds.N())
	if got := x.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestPanics(t *testing.T) {
	x, ds := build(t, pq.L2)
	for _, f := range []func(){
		func() { x.Search(ds.Queries.Row(0), 0, 5) },
		func() { x.Search(ds.Queries.Row(0), 4, 0) },
		func() { x.Search(make([]float32, 3), 4, 5) },
		func() { Build(ds.Base, pq.L2, Config{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
