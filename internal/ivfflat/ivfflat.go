// Package ivfflat implements IVF-Flat: coarse clustering with
// uncompressed per-cluster vector storage. It is the midpoint between
// exhaustive search and IVF-PQ — the same cluster filtering as the
// two-level scheme of Section II-C, but exact in-cluster scoring and
// full-precision memory cost (2·N·D bytes). The harness's graph/memory
// comparison uses it to show what PQ's compression buys.
package ivfflat

import (
	"fmt"

	"anna/internal/kmeans"
	"anna/internal/pq"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// Config controls index construction.
type Config struct {
	NClusters   int
	CoarseIters int // default 20
	MaxTrain    int
	Seed        int64
	Workers     int
}

// Index is a built IVF-Flat index.
type Index struct {
	Metric    pq.Metric
	D         int
	Centroids *vecmath.Matrix
	// IDs[c] and Vecs[c] hold cluster c's members; Vecs[c] is row-major
	// len(IDs[c]) x D.
	IDs  [][]int64
	Vecs [][]float32
	N    int
}

// Build clusters and stores the rows of data.
func Build(data *vecmath.Matrix, metric pq.Metric, cfg Config) *Index {
	if cfg.NClusters <= 0 {
		panic("ivfflat: NClusters must be positive")
	}
	if cfg.CoarseIters == 0 {
		cfg.CoarseIters = 20
	}
	res := kmeans.Train(data, kmeans.Config{
		K: cfg.NClusters, MaxIters: cfg.CoarseIters, Seed: cfg.Seed,
		Workers: cfg.Workers, MaxSamples: cfg.MaxTrain,
	})
	x := &Index{
		Metric: metric, D: data.Cols, Centroids: res.Centroids,
		IDs: make([][]int64, cfg.NClusters), Vecs: make([][]float32, cfg.NClusters),
		N: data.Rows,
	}
	for i := 0; i < data.Rows; i++ {
		c := res.Assign[i]
		x.IDs[c] = append(x.IDs[c], int64(i))
		x.Vecs[c] = append(x.Vecs[c], data.Row(i)...)
	}
	return x
}

// Search returns the exact top-k among the w nearest clusters' members.
func (x *Index) Search(q []float32, w, k int) []topk.Result {
	if w <= 0 || k <= 0 {
		panic(fmt.Sprintf("ivfflat: invalid params w=%d k=%d", w, k))
	}
	if len(q) != x.D {
		panic("ivfflat: query dimension mismatch")
	}
	// Cluster filtering.
	if w > x.Centroids.Rows {
		w = x.Centroids.Rows
	}
	csel := topk.NewSelector(w)
	for c := 0; c < x.Centroids.Rows; c++ {
		var s float32
		if x.Metric == pq.InnerProduct {
			s = vecmath.Dot(q, x.Centroids.Row(c))
		} else {
			s = -vecmath.L2Sq(q, x.Centroids.Row(c))
		}
		csel.Push(int64(c), s)
	}
	// Exact scan of the selected clusters.
	sel := topk.NewSelector(k)
	for _, cr := range csel.Results() {
		c := int(cr.ID)
		vecs := x.Vecs[c]
		for i, id := range x.IDs[c] {
			v := vecs[i*x.D : (i+1)*x.D]
			var s float32
			if x.Metric == pq.InnerProduct {
				s = vecmath.Dot(q, v)
			} else {
				s = -vecmath.L2Sq(q, v)
			}
			sel.Push(id, s)
		}
	}
	return sel.Results()
}

// MemoryBytes is the index footprint: full-precision vectors at 2 B per
// element (the f16 storage the paper assumes) plus centroids and IDs.
func (x *Index) MemoryBytes() int64 {
	return 2*int64(x.N)*int64(x.D) +
		2*int64(x.Centroids.Rows)*int64(x.D) +
		8*int64(x.N)
}
