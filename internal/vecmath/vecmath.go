// Package vecmath provides the dense float32 vector kernels used across
// the ANNA reproduction: inner products, squared L2 distances, norms, and
// batched variants of each. These are the primitives both the software
// ANNS reference and the accelerator's functional datapath are built on.
//
// On amd64 with AVX2+FMA the reduction kernels dispatch to the assembly
// in internal/simd (see simd.go in this package for the dispatch policy
// and the accuracy contract of each kernel class).
package vecmath

import (
	"math"

	"anna/internal/simd"
)

// Dot returns the inner product of a and b. It panics if the lengths
// differ. With SIMD enabled, vectors of at least simdMinLen elements use
// the FMA kernel, whose result can differ from the scalar loop in the
// last bits (see internal/simd for the tested error bound).
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: length mismatch")
	}
	if useSIMD(len(a)) {
		return simd.Dot(a, b)
	}
	var s float32
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// L2Sq returns the squared Euclidean distance between a and b.
// It panics if the lengths differ. Dispatch and accuracy follow Dot.
func L2Sq(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: length mismatch")
	}
	if useSIMD(len(a)) {
		return simd.L2Sq(a, b)
	}
	var s float32
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return s
}

// NormSq returns the squared L2 norm of a. Dispatch and accuracy follow
// Dot (a norm is the self inner product, and the SIMD path computes it
// as exactly that, so NormSq(a) == Dot(a, a) in every dispatch mode).
func NormSq(a []float32) float32 {
	if useSIMD(len(a)) {
		return simd.Dot(a, a)
	}
	var s float32
	for _, x := range a {
		s += x * x
	}
	return s
}

// Norm returns the L2 norm of a.
func Norm(a []float32) float32 { return float32(math.Sqrt(float64(NormSq(a)))) }

// Normalize scales a in place to unit L2 norm. Zero vectors are left as is.
func Normalize(a []float32) {
	n := Norm(a)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
}

// Sub stores a-b into dst. dst may alias a or b.
// It panics if the lengths differ.
func Sub(dst, a, b []float32) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vecmath: length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Add stores a+b into dst. dst may alias a or b.
// It panics if the lengths differ.
func Add(dst, a, b []float32) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vecmath: length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Scale multiplies a in place by s.
func Scale(a []float32, s float32) {
	for i := range a {
		a[i] *= s
	}
}

// AXPY computes dst += s*a. It panics if the lengths differ.
func AXPY(dst []float32, s float32, a []float32) {
	if len(dst) != len(a) {
		panic("vecmath: length mismatch")
	}
	for i := range dst {
		dst[i] += s * a[i]
	}
}

// Matrix is a dense row-major matrix of float32 values. Rows typically
// hold vectors (database points, centroids, codewords).
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a slice sharing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
}

// SetRow copies v into row i. It panics if len(v) != Cols.
func (m *Matrix) SetRow(i int, v []float32) {
	if len(v) != m.Cols {
		panic("vecmath: SetRow length mismatch")
	}
	copy(m.Row(i), v)
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// DotBatch computes the inner product of q with every row of m, storing
// the results in out. Rows are scanned four at a time (see Dot4) so each
// element of q is loaded once per four rows; the values are bit-identical
// to a per-row Dot loop. It panics if dimensions disagree.
func DotBatch(out []float32, m *Matrix, q []float32) {
	if len(q) != m.Cols || len(out) != m.Rows {
		panic("vecmath: DotBatch dimension mismatch")
	}
	d := m.Cols
	if useSIMD(d) {
		// Per-row FMA kernel: same kernel Dot dispatches to, so the
		// bit-identity with a per-row Dot loop is preserved.
		for i := 0; i < m.Rows; i++ {
			out[i] = simd.Dot(q, m.Data[i*d:(i+1)*d])
		}
		return
	}
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		base := i * d
		out[i], out[i+1], out[i+2], out[i+3] = Dot4(q,
			m.Data[base:base+d],
			m.Data[base+d:base+2*d],
			m.Data[base+2*d:base+3*d],
			m.Data[base+3*d:base+4*d])
	}
	for ; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), q)
	}
}

// L2SqBatch computes the squared L2 distance of q to every row of m,
// storing the results in out. It panics if dimensions disagree.
func L2SqBatch(out []float32, m *Matrix, q []float32) {
	if len(q) != m.Cols || len(out) != m.Rows {
		panic("vecmath: L2SqBatch dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		out[i] = L2Sq(m.Row(i), q)
	}
}

// ArgMin returns the index of the smallest element of s (first on ties)
// and its value. It panics on an empty slice.
func ArgMin(s []float32) (int, float32) {
	if len(s) == 0 {
		panic("vecmath: ArgMin of empty slice")
	}
	best, bv := 0, s[0]
	for i, v := range s[1:] {
		if v < bv {
			best, bv = i+1, v
		}
	}
	return best, bv
}

// ArgMax returns the index of the largest element of s (first on ties)
// and its value. It panics on an empty slice.
func ArgMax(s []float32) (int, float32) {
	if len(s) == 0 {
		panic("vecmath: ArgMax of empty slice")
	}
	best, bv := 0, s[0]
	for i, v := range s[1:] {
		if v > bv {
			best, bv = i+1, v
		}
	}
	return best, bv
}

// Mean computes the per-dimension mean of the rows of m whose indices are
// listed in idx, storing the result in dst (length m.Cols). An empty idx
// leaves dst zeroed.
func Mean(dst []float32, m *Matrix, idx []int) {
	for i := range dst {
		dst[i] = 0
	}
	if len(idx) == 0 {
		return
	}
	for _, r := range idx {
		row := m.Row(r)
		for i, v := range row {
			dst[i] += v
		}
	}
	inv := 1 / float32(len(idx))
	for i := range dst {
		dst[i] *= inv
	}
}
