package vecmath

import (
	"math"
	"math/rand"
	"testing"

	"anna/internal/simd"
)

// The dispatch-seam tests: contracts that must hold identically whether
// the SIMD kernels are enabled or not.

func randVecN(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32()*2 - 1
	}
	return v
}

// TestDotConsistencyContracts checks, in the active dispatch mode, every
// bit-identity this package documents between single- and multi-vector
// entry points: Dot4 == 4x Dot, DotBatch == per-row Dot, DotBatch2 ==
// per-row Dot, NormSq == Dot(a, a), L2SqBatch == per-row L2Sq.
func TestDotConsistencyContracts(t *testing.T) {
	modes := []bool{false}
	if simd.Available() {
		modes = append(modes, true)
	}
	for _, mode := range modes {
		prev := simd.SetEnabled(mode)
		func() {
			defer simd.SetEnabled(prev)
			rng := rand.New(rand.NewSource(77))
			for _, d := range []int{2, 8, 15, 16, 17, 32, 100} {
				q := randVecN(rng, d)
				q2 := randVecN(rng, d)
				m := &Matrix{Rows: 9, Cols: d, Data: randVecN(rng, 9*d)}

				s0, s1, s2, s3 := Dot4(q, m.Row(0), m.Row(1), m.Row(2), m.Row(3))
				for i, s := range []float32{s0, s1, s2, s3} {
					if want := Dot(q, m.Row(i)); s != want {
						t.Fatalf("mode=%v d=%d: Dot4[%d]=%v, Dot=%v", mode, d, i, s, want)
					}
				}

				out := make([]float32, m.Rows)
				DotBatch(out, m, q)
				o1 := make([]float32, m.Rows)
				o2 := make([]float32, m.Rows)
				DotBatch2(o1, o2, m, q, q2)
				l2 := make([]float32, m.Rows)
				L2SqBatch(l2, m, q)
				for j := 0; j < m.Rows; j++ {
					if want := Dot(m.Row(j), q); out[j] != want {
						t.Fatalf("mode=%v d=%d: DotBatch[%d]=%v, Dot=%v", mode, d, j, out[j], want)
					}
					if w1, w2 := Dot(q, m.Row(j)), Dot(q2, m.Row(j)); o1[j] != w1 || o2[j] != w2 {
						t.Fatalf("mode=%v d=%d: DotBatch2[%d]=(%v,%v), want (%v,%v)",
							mode, d, j, o1[j], o2[j], w1, w2)
					}
					if want := L2Sq(m.Row(j), q); l2[j] != want {
						t.Fatalf("mode=%v d=%d: L2SqBatch[%d]=%v, L2Sq=%v", mode, d, j, l2[j], want)
					}
				}

				if got, want := NormSq(q), Dot(q, q); got != want {
					t.Fatalf("mode=%v d=%d: NormSq=%v, Dot(a,a)=%v", mode, d, got, want)
				}
			}
		}()
	}
}

// TestArgMinDispatchBitExact requires the argmin result — value bits and
// index — to be identical across dispatch modes for the small dimensions
// (the kernels are specified bit-exact, unlike the FMA reductions).
func TestArgMinDispatchBitExact(t *testing.T) {
	if !simd.Available() {
		t.Skip("no assembly on this build")
	}
	rng := rand.New(rand.NewSource(78))
	for _, d := range []int{2, 4, 8} {
		for _, rows := range []int{8, 9, 16, 100, 257} {
			m := &Matrix{Rows: rows, Cols: d, Data: randVecN(rng, rows*d)}
			norms := make([]float32, rows)
			for j := range norms {
				norms[j] = NormSq(m.Row(j))
			}
			q := randVecN(rng, d)
			qb := randVecN(rng, d)

			gi, gv := ArgMinNormMinus2Dot(m, norms, q)
			ga, va, gb, vb := ArgMinNormMinus2Dot2(m, norms, q, qb)

			prev := simd.SetEnabled(false)
			wi, wv := ArgMinNormMinus2Dot(m, norms, q)
			wa, wva, wb, wvb := ArgMinNormMinus2Dot2(m, norms, q, qb)
			simd.SetEnabled(prev)

			if gi != wi || math.Float32bits(gv) != math.Float32bits(wv) {
				t.Fatalf("d=%d rows=%d: simd (%d,%v) scalar (%d,%v)", d, rows, gi, gv, wi, wv)
			}
			if ga != wa || gb != wb ||
				math.Float32bits(va) != math.Float32bits(wva) ||
				math.Float32bits(vb) != math.Float32bits(wvb) {
				t.Fatalf("d=%d rows=%d: ArgMinNormMinus2Dot2 diverges across dispatch", d, rows)
			}
		}
	}
}

// TestDotDispatchTolerance bounds the FMA-vs-scalar difference with the
// same class of bound the simd package pins, at the vecmath call sites.
func TestDotDispatchTolerance(t *testing.T) {
	if !simd.Available() {
		t.Skip("no assembly on this build")
	}
	rng := rand.New(rand.NewSource(79))
	for _, d := range []int{16, 64, 333, 1024} {
		a := randVecN(rng, d)
		b := randVecN(rng, d)
		on := Dot(a, b)
		prev := simd.SetEnabled(false)
		off := Dot(a, b)
		simd.SetEnabled(prev)
		var mag float64
		for i := range a {
			mag += math.Abs(float64(a[i]) * float64(b[i]))
		}
		bound := 8 * float64(d) * (1.0 / (1 << 24)) * (mag + 1e-30)
		if diff := math.Abs(float64(on) - float64(off)); diff > bound {
			t.Fatalf("d=%d: |simd-scalar| = %g > bound %g", d, diff, bound)
		}
	}
}
