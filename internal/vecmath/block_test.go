package vecmath

import (
	"math/rand"
	"testing"
)

func randVec(n int, rng *rand.Rand) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func randMat(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// Dot4 is documented bit-identical to four separate Dot calls.
func TestDot4MatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 2, 3, 7, 16, 33} {
		q := randVec(d, rng)
		r := [][]float32{randVec(d, rng), randVec(d, rng), randVec(d, rng), randVec(d, rng)}
		s0, s1, s2, s3 := Dot4(q, r[0], r[1], r[2], r[3])
		for i, s := range []float32{s0, s1, s2, s3} {
			if want := Dot(q, r[i]); s != want {
				t.Errorf("d=%d: Dot4 result %d = %v, Dot = %v", d, i, s, want)
			}
		}
	}
}

// naiveArgMin is the definitional reference: scalar norms[j] − 2·q·row_j
// with left-to-right dots, first-wins ties.
func naiveArgMin(m *Matrix, norms, q []float32) (int, float32) {
	best, bv := 0, float32(0)
	for j := 0; j < m.Rows; j++ {
		var dot float32
		row := m.Row(j)
		for i, x := range q {
			dot += x * row[i]
		}
		if v := norms[j] - 2*dot; j == 0 || v < bv {
			best, bv = j, v
		}
	}
	return best, bv
}

// The argmin index must match the scalar reference on every dimension
// path (unrolled 2/4/8 kernels and the generic blocked loop). The value
// may differ in the last bit on the unrolled paths (pairwise-tree
// association), so indices are compared exactly and values loosely.
func TestArgMinNormMinus2DotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{2, 3, 4, 5, 8, 16, 32} {
		for _, rows := range []int{1, 2, 3, 4, 5, 7, 16, 100, 257} {
			m := randMat(rows, d, rng)
			norms := make([]float32, rows)
			for j := range norms {
				norms[j] = NormSq(m.Row(j))
			}
			q := randVec(d, rng)
			gi, gv := ArgMinNormMinus2Dot(m, norms, q)
			ni, nv := naiveArgMin(m, norms, q)
			if gi != ni {
				t.Fatalf("d=%d rows=%d: argmin %d (%v), naive %d (%v)", d, rows, gi, gv, ni, nv)
			}
			rel := float64(gv-nv) / (1 + float64(nv)*float64(nv))
			if rel < 0 {
				rel = -rel
			}
			if rel > 1e-4 {
				t.Fatalf("d=%d rows=%d: value %v vs naive %v", d, rows, gv, nv)
			}
		}
	}
}

// Ties must resolve to the lowest index on the generic path (the
// documented contract; kernels start from +Inf so row 0 always wins its
// own value).
func TestArgMinTiesFirstWins(t *testing.T) {
	for _, d := range []int{2, 4, 8, 16} {
		m := NewMatrix(5, d)
		row := make([]float32, d)
		for i := range row {
			row[i] = 1
		}
		for j := 0; j < 5; j++ {
			m.SetRow(j, row) // all rows identical → all values tie
		}
		norms := make([]float32, 5)
		for j := range norms {
			norms[j] = NormSq(m.Row(j))
		}
		q := make([]float32, d)
		q[0] = 3
		if best, _ := ArgMinNormMinus2Dot(m, norms, q); best != 0 {
			t.Errorf("d=%d: tie resolved to %d, want 0", d, best)
		}
	}
}

// ArgMinNormMinus2Dot2 is documented bit-identical to two single-query
// calls on every dimension path.
func TestArgMin2MatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{2, 3, 4, 8, 16} {
		for _, rows := range []int{1, 4, 33, 256} {
			m := randMat(rows, d, rng)
			norms := make([]float32, rows)
			for j := range norms {
				norms[j] = NormSq(m.Row(j))
			}
			qa, qb := randVec(d, rng), randVec(d, rng)
			ia, va, ib, vb := ArgMinNormMinus2Dot2(m, norms, qa, qb)
			wia, wva := ArgMinNormMinus2Dot(m, norms, qa)
			wib, wvb := ArgMinNormMinus2Dot(m, norms, qb)
			if ia != wia || va != wva || ib != wib || vb != wvb {
				t.Fatalf("d=%d rows=%d: pair (%d,%v,%d,%v), single (%d,%v,%d,%v)",
					d, rows, ia, va, ib, vb, wia, wva, wib, wvb)
			}
		}
	}
}

func TestArgMinPanics(t *testing.T) {
	m := randMat(3, 4, rand.New(rand.NewSource(4)))
	norms := []float32{0, 0, 0}
	for name, fn := range map[string]func(){
		"dim mismatch":   func() { ArgMinNormMinus2Dot(m, norms, make([]float32, 5)) },
		"norms mismatch": func() { ArgMinNormMinus2Dot(m, norms[:2], make([]float32, 4)) },
		"empty":          func() { ArgMinNormMinus2Dot(&Matrix{Cols: 4}, nil, make([]float32, 4)) },
		"pair mismatch":  func() { ArgMinNormMinus2Dot2(m, norms, make([]float32, 4), make([]float32, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// DotBatch2 must agree with per-row Dot on both outputs.
func TestDotBatch2MatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range []int{1, 4, 9, 32} {
		m := randMat(17, d, rng)
		q1, q2 := randVec(d, rng), randVec(d, rng)
		o1 := make([]float32, m.Rows)
		o2 := make([]float32, m.Rows)
		DotBatch2(o1, o2, m, q1, q2)
		for j := 0; j < m.Rows; j++ {
			if want := Dot(q1, m.Row(j)); o1[j] != want {
				t.Errorf("d=%d row %d: out1 %v, want %v", d, j, o1[j], want)
			}
			if want := Dot(q2, m.Row(j)); o2[j] != want {
				t.Errorf("d=%d row %d: out2 %v, want %v", d, j, o2[j], want)
			}
		}
	}
}
