package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, -5, 6}
	if got := Dot(a, b); got != 12 {
		t.Errorf("Dot = %v, want 12", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestL2Sq(t *testing.T) {
	a := []float32{0, 0}
	b := []float32{3, 4}
	if got := L2Sq(a, b); got != 25 {
		t.Errorf("L2Sq = %v, want 25", got)
	}
	if got := L2Sq(b, b); got != 0 {
		t.Errorf("L2Sq(x,x) = %v, want 0", got)
	}
}

func TestNorms(t *testing.T) {
	v := []float32{3, 4}
	if got := NormSq(v); got != 25 {
		t.Errorf("NormSq = %v", got)
	}
	if got := Norm(v); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	Normalize(v)
	if !almostEq(float64(Norm(v)), 1, 1e-6) {
		t.Errorf("Normalize: norm = %v, want 1", Norm(v))
	}
	z := []float32{0, 0}
	Normalize(z) // must not NaN
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Normalize(0) changed the vector: %v", z)
	}
}

func TestSubAddScaleAXPY(t *testing.T) {
	a := []float32{5, 7}
	b := []float32{2, 3}
	dst := make([]float32, 2)
	Sub(dst, a, b)
	if dst[0] != 3 || dst[1] != 4 {
		t.Errorf("Sub = %v", dst)
	}
	Add(dst, dst, b)
	if dst[0] != 5 || dst[1] != 7 {
		t.Errorf("Add = %v", dst)
	}
	Scale(dst, 2)
	if dst[0] != 10 || dst[1] != 14 {
		t.Errorf("Scale = %v", dst)
	}
	AXPY(dst, -1, a)
	if dst[0] != 5 || dst[1] != 7 {
		t.Errorf("AXPY = %v", dst)
	}
	// In-place aliasing.
	Sub(a, a, a)
	if a[0] != 0 || a[1] != 0 {
		t.Errorf("aliased Sub = %v", a)
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(3, 2)
	m.SetRow(0, []float32{1, 2})
	m.SetRow(1, []float32{3, 4})
	m.SetRow(2, []float32{5, 6})
	if r := m.Row(1); r[0] != 3 || r[1] != 4 {
		t.Errorf("Row(1) = %v", r)
	}
	c := m.Clone()
	c.Row(0)[0] = 99
	if m.Row(0)[0] != 1 {
		t.Error("Clone shares storage")
	}

	out := make([]float32, 3)
	q := []float32{1, 1}
	DotBatch(out, m, q)
	want := []float32{3, 7, 11}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("DotBatch[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	L2SqBatch(out, m, q)
	want = []float32{1, 13, 41}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("L2SqBatch[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestRowAppendCannotClobber(t *testing.T) {
	// Row returns a full-capacity-limited slice: appending to it must not
	// overwrite the next row.
	m := NewMatrix(2, 2)
	m.SetRow(1, []float32{7, 8})
	r := m.Row(0)
	r = append(r, 99)
	_ = r
	if m.Row(1)[0] != 7 {
		t.Error("append to Row(0) clobbered Row(1)")
	}
}

func TestArgMinMax(t *testing.T) {
	s := []float32{3, 1, 4, 1, 5}
	if i, v := ArgMin(s); i != 1 || v != 1 {
		t.Errorf("ArgMin = %d,%v", i, v)
	}
	if i, v := ArgMax(s); i != 4 || v != 5 {
		t.Errorf("ArgMax = %d,%v", i, v)
	}
	// First on ties.
	s = []float32{2, 2, 2}
	if i, _ := ArgMin(s); i != 0 {
		t.Errorf("ArgMin tie = %d, want 0", i)
	}
	if i, _ := ArgMax(s); i != 0 {
		t.Errorf("ArgMax tie = %d, want 0", i)
	}
}

func TestMean(t *testing.T) {
	m := NewMatrix(3, 2)
	m.SetRow(0, []float32{0, 0})
	m.SetRow(1, []float32{2, 4})
	m.SetRow(2, []float32{4, 8})
	dst := []float32{9, 9}
	Mean(dst, m, []int{1, 2})
	if dst[0] != 3 || dst[1] != 6 {
		t.Errorf("Mean = %v", dst)
	}
	Mean(dst, m, nil)
	if dst[0] != 0 || dst[1] != 0 {
		t.Errorf("Mean(empty) = %v, want zeros", dst)
	}
}

// Property: the polarization identity ||a-b||² = ||a||² + ||b||² - 2<a,b>
// relates L2Sq and Dot.
func TestPolarizationIdentity(t *testing.T) {
	f := func(raw [8]float32) bool {
		a, b := raw[:4], raw[4:]
		for _, v := range raw {
			if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 1e6 {
				return true
			}
		}
		lhs := float64(L2Sq(a, b))
		rhs := float64(NormSq(a)) + float64(NormSq(b)) - 2*float64(Dot(a, b))
		scale := math.Max(1, math.Max(math.Abs(lhs), math.Abs(rhs)))
		return almostEq(lhs, rhs, 1e-3*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |<a,b>| <= ||a||*||b||.
func TestCauchySchwarz(t *testing.T) {
	f := func(raw [8]float32) bool {
		a, b := raw[:4], raw[4:]
		for _, v := range raw {
			if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 1e6 {
				return true
			}
		}
		lhs := math.Abs(float64(Dot(a, b)))
		rhs := float64(Norm(a)) * float64(Norm(b))
		return lhs <= rhs*(1+1e-4)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDot128(b *testing.B) {
	x := make([]float32, 128)
	y := make([]float32, 128)
	for i := range x {
		x[i], y[i] = float32(i), float32(i)*0.5
	}
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = Dot(x, y)
	}
	_ = sink
}

func BenchmarkL2Sq128(b *testing.B) {
	x := make([]float32, 128)
	y := make([]float32, 128)
	for i := range x {
		x[i], y[i] = float32(i), float32(i)*0.5
	}
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = L2Sq(x, y)
	}
	_ = sink
}

func TestSetRowPanics(t *testing.T) {
	m := NewMatrix(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.SetRow(0, []float32{1})
}
