package vecmath

import "anna/internal/simd"

// SIMD dispatch policy for this package.
//
// Two kernel classes cross the simd boundary with different contracts:
//
//   - FMA reductions (Dot, L2Sq, NormSq and everything built on them):
//     the AVX2 kernel fuses multiply-adds and reassociates across lanes,
//     so results differ from the scalar loops in the last bits — within
//     the error bound pinned by the simd package's differential tests.
//     Each function's multi-row variants keep their documented
//     bit-identities (Dot4 == four Dot calls, DotBatch == per-row Dot)
//     in BOTH dispatch modes, because they route through the same
//     single-vector kernel whenever SIMD is on.
//
//   - Small-dimension argmin (ArgMinNormMinus2Dot for Cols 2/4/8): the
//     assembly reproduces the scalar pairwise association exactly (no
//     FMA), so values AND indices are bit-identical to the scalar
//     kernels regardless of dispatch mode. Build artifacts that depend
//     on these paths (PQ code assignments) are therefore reproducible
//     across scalar and SIMD builds.
//
// Dispatch is decided per call from simd.Enabled(), which is fixed at
// process start (CPUID + ANNA_NOSIMD); within one process every call of
// a given shape takes the same path, preserving the determinism
// guarantees the batch encoder documents.

// simdMinLen is the vector length at which the AVX2 reduction kernels
// overtake the scalar loops (call overhead plus one stride of warm-up).
const simdMinLen = 16

func useSIMD(n int) bool { return n >= simdMinLen && simd.Enabled() }

// useSIMDArgmin reports whether the dim-d argmin over n rows should use
// the bit-exact assembly kernel (needs at least one full 8-row block).
func useSIMDArgmin(d, n int) bool {
	return (d == 2 || d == 4 || d == 8) && n >= 8 && simd.Enabled()
}
