package vecmath

import (
	"math"

	"anna/internal/simd"
)

// Blocked multi-row kernels for the build/ingest pipeline. Nearest-
// codeword and nearest-centroid searches are reformulated through the
// identity ‖q−r‖² = ‖q‖² − 2·q·r + ‖r‖²: with row norms precomputed
// once, each candidate costs one fused dot instead of a subtract-square
// pass, and scanning rows four at a time reuses every loaded element of
// q across four codewords, keeping the hot codebook slab resident in L1.

// Dot4 computes the inner products of q with four equal-length vectors
// in a single pass, loading each element of q once per four rows. Each
// sum accumulates in the same element order as Dot, so the four results
// are bit-identical to four separate Dot calls. It panics if any length
// differs from len(q).
func Dot4(q, r0, r1, r2, r3 []float32) (s0, s1, s2, s3 float32) {
	if len(r0) != len(q) || len(r1) != len(q) || len(r2) != len(q) || len(r3) != len(q) {
		panic("vecmath: length mismatch")
	}
	if useSIMD(len(q)) {
		// Four independent FMA-kernel calls: exactly what the contract
		// above promises, and each one is fast enough that the blocked
		// scalar reuse no longer pays.
		return simd.Dot(q, r0), simd.Dot(q, r1), simd.Dot(q, r2), simd.Dot(q, r3)
	}
	r0 = r0[:len(q)]
	r1 = r1[:len(q)]
	r2 = r2[:len(q)]
	r3 = r3[:len(q)]
	for i, x := range q {
		s0 += x * r0[i]
		s1 += x * r1[i]
		s2 += x * r2[i]
		s3 += x * r3[i]
	}
	return
}

// ArgMinNormMinus2Dot returns the index j of the row of m minimizing
// norms[j] − 2·(q·row_j), and that minimal value. With norms[j] = ‖row_j‖²
// this orders rows by squared L2 distance to q shifted by the constant
// −‖q‖², so the argmin is the nearest row without any per-element
// subtraction; add ‖q‖² back (clamping at zero) to recover the distance.
// Ties resolve to the lowest index. The result is a pure function of
// (m, norms, q) — independent of scheduling and worker count — which is
// what makes the batch encode/assign paths bit-reproducible. It panics
// on an empty matrix or mismatched dimensions.
func ArgMinNormMinus2Dot(m *Matrix, norms, q []float32) (int, float32) {
	if len(q) != m.Cols || len(norms) != m.Rows {
		panic("vecmath: ArgMinNormMinus2Dot dimension mismatch")
	}
	if m.Rows == 0 {
		panic("vecmath: ArgMinNormMinus2Dot of empty matrix")
	}
	// PQ sub-spaces are tiny (Dsub is 2, 4 or 8 for the paper's shapes);
	// there the loop overhead of the generic path dwarfs the arithmetic,
	// so fully unrolled one-row-per-iteration kernels take over — or, with
	// SIMD enabled, the assembly kernels in internal/simd, which replay
	// the same pairwise association with eight rows in flight and are
	// bit-identical to the scalar kernels in value AND index.
	if useSIMDArgmin(m.Cols, m.Rows) {
		return simd.ArgMinNM2(m.Data, norms, q, m.Cols)
	}
	switch m.Cols {
	case 2:
		return argMinNM2Dim2(m.Data, norms, q)
	case 4:
		return argMinNM2Dim4(m.Data, norms, q)
	case 8:
		return argMinNM2Dim8(m.Data, norms, q)
	}
	best := 0
	bv := float32(math.Inf(1))
	d := m.Cols
	j := 0
	for ; j+4 <= m.Rows; j += 4 {
		base := j * d
		s0, s1, s2, s3 := Dot4(q,
			m.Data[base:base+d],
			m.Data[base+d:base+2*d],
			m.Data[base+2*d:base+3*d],
			m.Data[base+3*d:base+4*d])
		if v := norms[j] - 2*s0; v < bv {
			best, bv = j, v
		}
		if v := norms[j+1] - 2*s1; v < bv {
			best, bv = j+1, v
		}
		if v := norms[j+2] - 2*s2; v < bv {
			best, bv = j+2, v
		}
		if v := norms[j+3] - 2*s3; v < bv {
			best, bv = j+3, v
		}
	}
	for ; j < m.Rows; j++ {
		if v := norms[j] - 2*Dot(q, m.Row(j)); v < bv {
			best, bv = j, v
		}
	}
	return best, bv
}

// Small-dimension argmin kernels. Each unrolled dot reduces as a
// pairwise tree — a fixed association order, so results are fully
// deterministic, but the rounding can differ from the generic
// left-to-right loop on the last bit. Dimension dispatch is by Cols,
// so any given matrix shape always takes the same path.

func argMinNM2Dim2(data, norms, q []float32) (int, float32) {
	q0, q1 := q[0], q[1]
	best, bv := 0, float32(math.Inf(1))
	for j := range norms {
		b := j * 2
		s := q0*data[b] + q1*data[b+1]
		if v := norms[j] - 2*s; v < bv {
			best, bv = j, v
		}
	}
	return best, bv
}

func argMinNM2Dim4(data, norms, q []float32) (int, float32) {
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	best, bv := 0, float32(math.Inf(1))
	for j := range norms {
		b := j * 4
		s := (q0*data[b] + q1*data[b+1]) + (q2*data[b+2] + q3*data[b+3])
		if v := norms[j] - 2*s; v < bv {
			best, bv = j, v
		}
	}
	return best, bv
}

func argMinNM2Dim8(data, norms, q []float32) (int, float32) {
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	q4, q5, q6, q7 := q[4], q[5], q[6], q[7]
	best, bv := 0, float32(math.Inf(1))
	for j := range norms {
		b := j * 8
		s := ((q0*data[b] + q1*data[b+1]) + (q2*data[b+2] + q3*data[b+3])) +
			((q4*data[b+4] + q5*data[b+5]) + (q6*data[b+6] + q7*data[b+7]))
		if v := norms[j] - 2*s; v < bv {
			best, bv = j, v
		}
	}
	return best, bv
}

// ArgMinNormMinus2Dot2 runs ArgMinNormMinus2Dot for two queries in one
// pass over m, loading each row once for both — the assign/encode inner
// loops feed point pairs through it to double the independent
// floating-point chains in flight. Results are bit-identical to two
// separate single-query calls (identical association order).
func ArgMinNormMinus2Dot2(m *Matrix, norms, qa, qb []float32) (besta int, bva float32, bestb int, bvb float32) {
	if len(qa) != m.Cols || len(qb) != m.Cols || len(norms) != m.Rows {
		panic("vecmath: ArgMinNormMinus2Dot2 dimension mismatch")
	}
	if m.Rows == 0 {
		panic("vecmath: ArgMinNormMinus2Dot2 of empty matrix")
	}
	// The SIMD argmin already runs eight rows per iteration, so the
	// two-query fusion below has nothing left to amortize; two single
	// calls keep the documented bit-identity by construction.
	if useSIMDArgmin(m.Cols, m.Rows) {
		besta, bva = simd.ArgMinNM2(m.Data, norms, qa, m.Cols)
		bestb, bvb = simd.ArgMinNM2(m.Data, norms, qb, m.Cols)
		return
	}
	switch m.Cols {
	case 2:
		return argMinNM2Dim2x2(m.Data, norms, qa, qb)
	case 4:
		return argMinNM2Dim4x2(m.Data, norms, qa, qb)
	}
	besta, bva = ArgMinNormMinus2Dot(m, norms, qa)
	bestb, bvb = ArgMinNormMinus2Dot(m, norms, qb)
	return
}

func argMinNM2Dim2x2(data, norms, qa, qb []float32) (ia int, va float32, ib int, vb float32) {
	a0, a1 := qa[0], qa[1]
	b0, b1 := qb[0], qb[1]
	va, vb = float32(math.Inf(1)), float32(math.Inf(1))
	for j := range norms {
		p := j * 2
		d0, d1 := data[p], data[p+1]
		n := norms[j]
		if v := n - 2*(a0*d0+a1*d1); v < va {
			ia, va = j, v
		}
		if v := n - 2*(b0*d0+b1*d1); v < vb {
			ib, vb = j, v
		}
	}
	return
}

func argMinNM2Dim4x2(data, norms, qa, qb []float32) (ia int, va float32, ib int, vb float32) {
	a0, a1, a2, a3 := qa[0], qa[1], qa[2], qa[3]
	b0, b1, b2, b3 := qb[0], qb[1], qb[2], qb[3]
	va, vb = float32(math.Inf(1)), float32(math.Inf(1))
	for j := range norms {
		p := j * 4
		d0, d1, d2, d3 := data[p], data[p+1], data[p+2], data[p+3]
		n := norms[j]
		sa := (a0*d0 + a1*d1) + (a2*d2 + a3*d3)
		sb := (b0*d0 + b1*d1) + (b2*d2 + b3*d3)
		if v := n - 2*sa; v < va {
			ia, va = j, v
		}
		if v := n - 2*sb; v < vb {
			ib, vb = j, v
		}
	}
	return
}

// DotBatch2 computes q1·row and q2·row for every row of m in one pass,
// loading each row element once for both queries. The anisotropic batch
// encoder uses it to get codeword dots against both the residual and the
// parallel direction from a single codebook scan. It panics if
// dimensions disagree.
func DotBatch2(out1, out2 []float32, m *Matrix, q1, q2 []float32) {
	if len(q1) != m.Cols || len(q2) != m.Cols || len(out1) != m.Rows || len(out2) != m.Rows {
		panic("vecmath: DotBatch2 dimension mismatch")
	}
	if useSIMD(m.Cols) {
		// Per-row FMA kernel keeps the agreement with per-row Dot.
		d := m.Cols
		for j := 0; j < m.Rows; j++ {
			r := m.Data[j*d : (j+1)*d]
			out1[j] = simd.Dot(q1, r)
			out2[j] = simd.Dot(q2, r)
		}
		return
	}
	q2 = q2[:len(q1)]
	for j := 0; j < m.Rows; j++ {
		r := m.Row(j)[:len(q1)]
		var s1, s2 float32
		for i, x := range r {
			s1 += x * q1[i]
			s2 += x * q2[i]
		}
		out1[j] = s1
		out2[j] = s2
	}
}
