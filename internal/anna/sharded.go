package anna

import (
	"sync"

	"anna/internal/dram"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// SearchSharded models the paper's multi-instance configuration (ANNA
// ×12, each instance paired with its own memory system): the query batch
// is partitioned round-robin across n independent accelerators, each
// holding a replica of the index, and the batch completes when the
// slowest shard does. Traffic, busy counters and energy-relevant
// statistics are summed across instances.
func (a *Accelerator) SearchSharded(queries *vecmath.Matrix, p Params, n int) *Result {
	if n <= 1 {
		return a.SearchBatched(queries, p)
	}
	if err := p.validate(a); err != nil {
		panic(err)
	}

	// Partition queries round-robin.
	shards := make([]*vecmath.Matrix, 0, n)
	owners := make([][]int, 0, n) // original query index per shard row
	for s := 0; s < n; s++ {
		var rows []int
		for qi := s; qi < queries.Rows; qi += n {
			rows = append(rows, qi)
		}
		if len(rows) == 0 {
			continue
		}
		m := vecmath.NewMatrix(len(rows), queries.Cols)
		for i, qi := range rows {
			m.SetRow(i, queries.Row(qi))
		}
		shards = append(shards, m)
		owners = append(owners, rows)
	}

	results := make([]*Result, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = a.SearchBatched(shards[i], p)
		}(i)
	}
	wg.Wait()

	agg := &Result{Queries: queries.Rows, Traffic: map[dram.StreamClass]int64{}}
	if !p.SkipFunctional {
		agg.PerQuery = make([][]topk.Result, queries.Rows)
	}
	for i, r := range results {
		if r.Cycles > agg.Cycles {
			agg.Cycles = r.Cycles
		}
		if r.MeanLatencySeconds > agg.MeanLatencySeconds {
			agg.MeanLatencySeconds = r.MeanLatencySeconds
		}
		for cls, b := range r.Traffic {
			agg.Traffic[cls] += b
		}
		agg.TotalTrafficBytes += r.TotalTrafficBytes
		agg.CPMBusy += r.CPMBusy
		agg.SCMBusy += r.SCMBusy
		agg.DRAMBusy += r.DRAMBusy
		agg.TopKOffered += r.TopKOffered
		if !p.SkipFunctional {
			for j, rs := range r.PerQuery {
				agg.PerQuery[owners[i][j]] = rs
			}
		}
	}
	agg.Seconds = float64(agg.Cycles) / (a.cfg.FreqGHz * 1e9)
	if agg.Seconds > 0 {
		agg.QPS = float64(queries.Rows) / agg.Seconds
	}
	return agg
}
