package anna

import (
	"anna/internal/dram"
	"anna/internal/ivf"
	"anna/internal/pq"
	"anna/internal/sim"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// SearchBatched processes the batch with the Section-IV memory traffic
// optimization (the right of Figure 5): cluster filtering runs first for
// every query, the per-cluster query lists are materialised in memory,
// and then each visited cluster's encoded vectors are loaded once and
// reused by all queries visiting it, with N_SCM SCMs working in parallel
// and intermediate top-k state saved/restored around each pass
// (Figure 7 steady state).
func (a *Accelerator) SearchBatched(queries *vecmath.Matrix, p Params) *Result {
	if err := p.validate(a); err != nil {
		panic(err)
	}
	queries = a.idx.PrepQueries(queries) // OPQ rotation, when trained with one
	m := newMachine(a.cfg, a.idx)
	res := &Result{Queries: queries.Rows}
	B := queries.Rows

	// --- Phase 1: cluster filtering for all queries -------------------
	//
	// The CPM buffers QueryGroupSize queries and computes their centroid
	// similarities on one streaming pass over C, so centroid traffic is
	// amortised across the group (see Config.QueryGroupSize).
	perQueryClusters := make([][]int, B)
	var filterEnd sim.Cycles
	g := m.cfg.QueryGroupSize
	for lo := 0; lo < B; lo += g {
		hi := lo + g
		if hi > B {
			hi = B
		}
		dataAt := m.ch.Read(filterEnd, m.centroidBytes(), dram.Centroids, "filter:centroids")
		_, compEnd := m.cpm.Schedule(filterEnd, sim.Cycles(int64(hi-lo))*m.filterCycles(), "filter")
		m.phases.Filter += sim.Cycles(int64(hi-lo)) * m.filterCycles()
		filterEnd = sim.Max(dataAt, compEnd)
		for qi := lo; qi < hi; qi++ {
			perQueryClusters[qi] = a.idx.SelectClusters(queries.Row(qi), p.W)
		}
	}

	// Record the queries visiting each cluster: one masked write per
	// (query, selected cluster) into the array-of-arrays (Section IV-A).
	clusterQueries := make([][]int, a.idx.NClusters())
	var pairs int64
	for qi, cs := range perQueryClusters {
		for _, c := range cs {
			clusterQueries[c] = append(clusterQueries[c], qi)
			pairs++
		}
	}
	listsWritten := m.ch.Write(filterEnd, pairs*QueryIDBytes, dram.QueryLists, "querylists:w")

	// --- SCM allocation (Section IV-A) --------------------------------
	s := p.SCMsPerQuery
	if s <= 0 {
		s = scmAlloc(m.cfg.NSCM, float64(B)*float64(p.W)/float64(a.idx.NClusters()))
	}
	if s > m.cfg.NSCM {
		s = m.cfg.NSCM
	}
	queriesPerPass := m.cfg.NSCM / s
	if queriesPerPass < 1 {
		queriesPerPass = 1
	}

	// --- Phase 2: cluster-major scanning -------------------------------
	nonEmpty := make([]int, 0, a.idx.NClusters())
	for c, qs := range clusterQueries {
		if len(qs) > 0 {
			nonEmpty = append(nonEmpty, c)
		}
	}

	var (
		lut     *pq.LUT
		scratch []float32
		codeBuf []byte
		states  map[int][]topk.Result // per-query intermediate top-k
	)
	if !p.SkipFunctional {
		lut = pq.NewLUT(a.idx.PQ)
		scratch = make([]float32, a.idx.D)
		codeBuf = make([]byte, a.idx.PQ.M)
		states = make(map[int][]topk.Result, B)
	}
	ph := topk.NewPHeap(p.K)

	// Pass-granularity double buffering history (LUT copies) and
	// cluster-granularity EVB history.
	var passEnds []sim.Cycles
	passBufFree := func(i int) sim.Cycles {
		back := 2
		if !m.cfg.DoubleBuffer {
			back = 1
		}
		if i-back < 0 {
			return 0
		}
		return passEnds[i-back]
	}
	clusterEnds := make([]sim.Cycles, 0, len(nonEmpty))
	evbFree := func(i int) sim.Cycles {
		back := 2
		if !m.cfg.DoubleBuffer {
			back = 1
		}
		if i-back < 0 {
			return 0
		}
		return clusterEnds[i-back]
	}

	passIdx := 0
	for ci, c := range nonEmpty {
		qs := clusterQueries[c]
		n := a.idx.Lists[c].Len()
		bytes := m.listBytes(c)
		fits := bytes <= m.cfg.EVBBytes

		ready := sim.Max(listsWritten, evbFree(ci))
		// Cluster metadata, then the query-ID list for this cluster.
		metaAt := m.ch.Read(ready, ClusterMetaBytes, dram.ClusterMeta, "efm:meta")
		qlAt := m.ch.Read(ready, int64(len(qs))*QueryIDBytes, dram.QueryLists, "querylists:r")

		// First code fetch (or the whole list if it fits the EVB).
		first := bytes
		if first > m.cfg.EVBBytes {
			first = m.cfg.EVBBytes
		}
		firstAt := m.ch.Read(sim.Max(metaAt, ready), first, dram.Codes, "efm:codes")
		lastAt := firstAt
		if rest := bytes - first; rest > 0 {
			lastAt = m.ch.Read(firstAt, rest, dram.Codes, "efm:codes+")
		}
		fetchedOnce := false

		var clusterEnd sim.Cycles
		for lo := 0; lo < len(qs); lo += queriesPerPass {
			hi := lo + queriesPerPass
			if hi > len(qs) {
				hi = len(qs)
			}
			passQs := qs[lo:hi]
			ready := sim.Max(qlAt, passBufFree(passIdx))

			// Oversized lists must be re-streamed on every pass after the
			// first (the EVB cannot hold them across passes).
			codesFirst, codesLast := firstAt, lastAt
			if !fits && fetchedOnce {
				codesFirst = m.ch.Read(ready, m.cfg.EVBBytes, dram.Codes, "efm:codes(re)")
				codesLast = m.ch.Read(codesFirst, bytes-m.cfg.EVBBytes, dram.Codes, "efm:codes(re)+")
			}
			fetchedOnce = true

			// Intermediate top-k restore for the pass's queries (one unit
			// per active SCM), overlapped with the previous pass by the
			// unit's double-buffered SRAM.
			activeSCMs := len(passQs) * s
			if activeSCMs > m.cfg.NSCM {
				activeSCMs = m.cfg.NSCM
			}
			restoreBytes := int64(activeSCMs) * topk.FlushBytes(p.K)
			restoreAt := m.ch.Read(ready, restoreBytes, dram.TopK, "topk:restore")

			// CPM work per pass: for L2, a residual and a full LUT fill
			// per query (Figure 7: N_scm·k*·D/N_cu). For IP the table
			// contents are cluster-invariant, but the pass's SCM LUT
			// SRAMs are time-shared across rotating queries, so the CPM
			// re-materialises them (same fill cost, plus the q·c bias
			// dot product at the residual's D/N_cu cost); the CPM is
			// never the bottleneck for IP either way.
			cAt := m.ch.Read(ready, m.oneCentroidBytes(), dram.Centroids, "lut:centroid")
			cpmCycles := sim.Cycles(int64(len(passQs))) * (m.residualCycles() + m.lutFillCycles())
			_, lutEnd := m.cpm.Schedule(sim.Max(cAt, ready), cpmCycles, "lut:"+a.idx.Metric.String())
			m.phases.LUT += cpmCycles

			// Scans: with intra-query parallelism each of the s SCMs
			// assigned to a query covers n/s vectors; with inter-query
			// parallelism each SCM covers the full list for its query.
			per := (n + s - 1) / s
			scanReady := sim.Max(sim.Max(lutEnd, codesFirst), restoreAt)
			var passEnd sim.Cycles
			scm := 0
			for range passQs {
				for part := 0; part < s && part*per < n; part++ {
					cnt := per
					if rem := n - part*per; cnt > rem {
						cnt = rem
					}
					_, e := m.scms[scm%m.cfg.NSCM].Schedule(scanReady, m.scanCycles(cnt), "scan")
					m.phases.Scan += m.scanCycles(cnt)
					passEnd = sim.Max(passEnd, e)
					scm++
				}
			}
			passEnd = sim.Max(passEnd, codesLast)

			// Save the pass's intermediate top-k state.
			m.ch.Write(passEnd, restoreBytes, dram.TopK, "topk:save")

			if !p.SkipFunctional {
				for _, qi := range passQs {
					a.idx.BuildLUT(lut, queries.Row(qi), c, scratch, true)
					ph.ResetStats()
					ph.Init(states[qi])
					scanListPHeap(a.idx, ph, lut, c, codeBuf)
					res.TopKOffered += ph.Offered()
					states[qi] = ph.Flush()
				}
			}

			passEnds = append(passEnds, passEnd)
			passIdx++
			clusterEnd = sim.Max(clusterEnd, passEnd)
		}
		clusterEnds = append(clusterEnds, clusterEnd)
	}

	var end sim.Cycles
	if len(clusterEnds) > 0 {
		end = clusterEnds[len(clusterEnds)-1]
	} else {
		end = listsWritten
	}
	// Intra-query parallelism epilogue: merge each query's s partial
	// lists through top-k units (pipelined across SCMs).
	if s > 1 {
		var mergeEnd sim.Cycles
		perSCM := (B + m.cfg.NSCM - 1) / m.cfg.NSCM
		for i := 0; i < m.cfg.NSCM && i*perSCM < B; i++ {
			cnt := perSCM
			if rem := B - i*perSCM; cnt > rem {
				cnt = rem
			}
			_, e := m.scms[i].Schedule(end, sim.Cycles(int64(cnt))*m.mergeCycles(s, p.K), "merge")
			m.phases.Merge += sim.Cycles(int64(cnt)) * m.mergeCycles(s, p.K)
			mergeEnd = sim.Max(mergeEnd, e)
		}
		end = mergeEnd
	}
	// Final result writeback for the whole batch.
	end = m.ch.Write(end, int64(B)*topk.FlushBytes(p.K), dram.Results, "results")

	if !p.SkipFunctional {
		res.PerQuery = make([][]topk.Result, B)
		for qi := 0; qi < B; qi++ {
			res.PerQuery[qi] = states[qi]
		}
	}
	res.MeanLatencySeconds = m.seconds(end)
	m.finishResult(res)
	return res
}

// TrafficModel returns the closed-form worst-case code traffic of the two
// execution modes for a batch of B queries (Section IV's 12.8× example):
// baseline loads B·W lists, batched loads at most every non-empty list
// once per EVB-resident pass.
func TrafficModel(idx *ivf.Index, b, w int) (baselineBytes, batchedBytes int64) {
	var mean int64
	for c := range idx.Lists {
		mean += idx.ListBytes(c)
	}
	baselineBytes = int64(b) * int64(w) * mean / int64(idx.NClusters())
	batchedBytes = mean // all lists once, worst case
	return baselineBytes, batchedBytes
}
