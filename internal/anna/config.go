// Package anna models the ANNA accelerator (Sections III and IV of the
// paper): the Cluster/Codebook Processing Module (CPM), the Encoded
// Vector Fetch Module (EFM), the Similarity Computation Modules (SCMs)
// with their P-heap top-k units, the Memory Access Interface, and the
// Section-IV memory-traffic-optimized batch scheduler.
//
// The model is both functional and timed: a search returns the actual
// top-k vector IDs (computed through the same f16-rounded LUT datapath
// the hardware would use, and tested to match the software reference)
// together with cycle counts, per-stream memory traffic, and per-module
// busy counters. Cycle costs use the paper's closed forms:
//
//	cluster filtering   D·|C|/N_cu     cycles on the CPM
//	residual (L2)       D/N_cu         cycles on the CPM
//	LUT fill            D·k*/N_cu      cycles on the CPM (per cluster for
//	                                   L2, once per query for IP)
//	list scan           |C_i|·M/N_u    cycles on an SCM
//	top-k save/restore  2·k·5 B        memory traffic per query handoff
//
// scheduled on serial resources with the double-buffering overlaps of
// Figure 7 (LUT and encoded-vector buffers each have two copies).
package anna

import (
	"fmt"

	"anna/internal/dram"
)

// Config is the hardware configuration of one ANNA instance.
type Config struct {
	// NCU is the number of compute units in the CPM (N_cu, 96 in the
	// paper's evaluation).
	NCU int
	// NU is the number of LUT entries one SCM sum-reduces per cycle
	// (N_u, 64 in the paper).
	NU int
	// NSCM is the number of Similarity Computation Modules (16).
	NSCM int
	// K is the capacity of each top-k selection unit (1000).
	K int
	// FreqGHz is the clock (1.0 in the paper; TSMC 40 nm synthesis).
	FreqGHz float64
	// EVBBytes is the size of ONE encoded vector buffer copy (1 MB);
	// two copies exist for double buffering.
	EVBBytes int64
	// QueryGroupSize is how many queries the CPM filters per streaming
	// pass over the centroids in batched mode. The paper does not
	// specify this amortisation; the default of 64 keeps the query
	// buffer at 16 KB for D=128. Set to 1 to model a fully
	// re-streaming CPM. (Ablated in the harness.)
	QueryGroupSize int
	// TopKRateLimit caps an SCM's scan throughput at one vector per
	// cycle (the top-k unit takes one input per cycle, Section III-B).
	// Disabling it reproduces the paper's unclamped |C_i|·M/N_u form
	// even when M < N_u. Default on.
	TopKRateLimit bool
	// DoubleBuffer enables the two-copy LUT/EVB overlap of Figure 7.
	// Disabling it serialises LUT fill, fetch and scan (an ablation).
	DoubleBuffer bool
	// DRAM is the memory system (64 GB/s per instance in the paper).
	DRAM dram.Config
	// Trace records per-module spans for timeline output.
	Trace bool
}

// DefaultConfig returns the paper's evaluated design point:
// N_cu=96, N_u=64, N_SCM=16, k=1000, 1 MB encoded vector buffer,
// 1 GHz, 64 GB/s memory.
func DefaultConfig() Config {
	return Config{
		NCU:            96,
		NU:             64,
		NSCM:           16,
		K:              1000,
		FreqGHz:        1.0,
		EVBBytes:       1 << 20,
		QueryGroupSize: 64,
		TopKRateLimit:  true,
		DoubleBuffer:   true,
		DRAM:           dram.DefaultConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NCU <= 0:
		return fmt.Errorf("anna: NCU must be positive, got %d", c.NCU)
	case c.NU <= 0:
		return fmt.Errorf("anna: NU must be positive, got %d", c.NU)
	case c.NSCM <= 0:
		return fmt.Errorf("anna: NSCM must be positive, got %d", c.NSCM)
	case c.K <= 0:
		return fmt.Errorf("anna: K must be positive, got %d", c.K)
	case c.FreqGHz <= 0:
		return fmt.Errorf("anna: FreqGHz must be positive, got %v", c.FreqGHz)
	case c.EVBBytes <= 0:
		return fmt.Errorf("anna: EVBBytes must be positive, got %d", c.EVBBytes)
	case c.QueryGroupSize <= 0:
		return fmt.Errorf("anna: QueryGroupSize must be positive, got %d", c.QueryGroupSize)
	case c.DRAM.BandwidthBytesPerCycle <= 0:
		return fmt.Errorf("anna: DRAM bandwidth must be positive")
	}
	return nil
}

// ClusterMetaBytes is the size of one cluster's metadata record in main
// memory: 8 B start address + 4 B size, padded to one 16 B row.
const ClusterMetaBytes = 16

// QueryIDBytes is the size of one query ID in the batch optimization's
// array-of-arrays (Section IV-A records 3 B counts; IDs are stored as
// 4 B words for alignment).
const QueryIDBytes = 4
