package anna

import (
	"anna/internal/pq"
	"anna/internal/sim"
	"anna/internal/topk"
)

// Geometry describes a workload analytically, with uniform cluster
// sizes. It is how the harness extrapolates the simulator to the paper's
// full billion-scale datasets, whose inverted lists (hundreds of GB)
// cannot be materialised: every cost in ANNA's steady state (Figure 7 /
// Section IV-B) is a closed form in these parameters, and the event
// simulator is validated against this model on scaled indexes.
type Geometry struct {
	N, D, M, Ks, C int
	Metric         pq.Metric
}

// CodeBytes is the packed size of one encoded vector.
func (g Geometry) CodeBytes() int {
	bits := 0
	for 1<<bits < g.Ks {
		bits++
	}
	return (g.M*bits + 7) / 8
}

// AvgList is the mean inverted-list length.
func (g Geometry) AvgList() float64 { return float64(g.N) / float64(g.C) }

// AnalyticResult is the closed-form projection of one ANNA instance.
type AnalyticResult struct {
	// BatchSeconds is the batched-mode (Section IV) runtime for B queries.
	BatchSeconds float64
	// QPS is B/BatchSeconds.
	QPS float64
	// LatencySeconds is the single-query latency in baseline mode.
	LatencySeconds float64
	// TrafficBytes is the batched-mode total memory traffic.
	TrafficBytes int64
	// BaselineTrafficBytes is the query-at-a-time traffic for the batch.
	BaselineTrafficBytes int64
	// ComputeBound reports whether the steady-state interval was limited
	// by SCM compute rather than memory.
	ComputeBound bool
	// SCMsPerQuery echoes the allocation used.
	SCMsPerQuery int
	// Busy-time estimates for the batched run, for energy accounting
	// (energy.Activity): CPM busy, SUMMED SCM busy, and memory-channel
	// busy seconds.
	CPMBusySeconds float64
	SCMBusySeconds float64
	MemBusySeconds float64
}

// Analytic projects batched-mode throughput and baseline-mode latency for
// a uniform workload on one ANNA instance, using the Section IV-B
// steady-state analysis. scmPerQuery <= 0 selects the paper's heuristic.
func Analytic(cfg Config, g Geometry, b, w, k, scmPerQuery int) AnalyticResult {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	bw := cfg.DRAM.BandwidthBytesPerCycle
	cyclesPerSec := cfg.FreqGHz * 1e9

	d, ks, c := int64(g.D), int64(g.Ks), int64(g.C)
	avgList := g.AvgList()
	listBytes := avgList * float64(g.CodeBytes())

	// SCM allocation heuristic (Section IV-A), shared with the simulator.
	s := scmPerQuery
	if s <= 0 {
		s = scmAlloc(cfg.NSCM, float64(b)*float64(w)/float64(g.C))
	}
	if s > cfg.NSCM {
		s = cfg.NSCM
	}
	qpp := cfg.NSCM / s
	if qpp < 1 {
		qpp = 1
	}

	// Per-module unit costs in cycles.
	filterCyc := float64(sim.CeilDiv(d*c, int64(cfg.NCU)))
	lutCyc := float64(sim.CeilDiv(d*ks, int64(cfg.NCU))) +
		float64(sim.CeilDiv(d, int64(cfg.NCU)))
	scanVec := float64(g.M) / float64(cfg.NU)
	if cfg.TopKRateLimit && scanVec < 1 {
		scanVec = 1
	}

	// --- batched mode --------------------------------------------------
	// Phase 1: filtering. Compute B·D·|C|/N_cu; centroid stream once per
	// query group.
	centroidBytes := 2 * float64(c) * float64(d)
	groups := float64((b + cfg.QueryGroupSize - 1) / cfg.QueryGroupSize)
	filterCycles := maxf(float64(b)*filterCyc, groups*centroidBytes/bw)

	// Phase 2: per visited cluster. Expected queries per visited cluster
	// and the visited-cluster count under uniform random selection.
	visited := float64(g.C) * (1 - powN(1-1/float64(g.C), b*w))
	if visited < 1 {
		visited = 1
	}
	qPerVisited := float64(b) * float64(w) / visited
	// Expected passes per visited cluster. This is an expectation over
	// clusters with varying query counts, so it stays fractional —
	// applying ceil to the average would overstate work whenever the
	// average sits just above a multiple of the group size.
	passes := qPerVisited / float64(qpp)
	if passes < 1 {
		passes = 1
	}

	// One pass: all SCMs run in parallel; each covers avgList/s vectors
	// of its query (s=1, inter-query mode, means the full list).
	passScan := scanVec * avgList / float64(s)
	passLUT := float64(qpp) * lutCyc
	clusterCompute := passes * maxf(passScan, passLUT)

	// Memory per cluster: the list once (re-streamed per extra pass when
	// it exceeds the EVB), top-k save/restore per pass, query lists.
	listFetches := 1.0
	if listBytes > float64(cfg.EVBBytes) {
		listFetches = passes
	}
	// Each query visiting the cluster saves and restores the state of its
	// s top-k units once (2·k·5 B per unit, Section IV-B).
	topkBytes := 2 * qPerVisited * float64(s) * float64(topk.FlushBytes(k))
	clusterBytes := listBytes*listFetches + topkBytes +
		qPerVisited*QueryIDBytes + ClusterMetaBytes + centroidPer(g)
	clusterMem := clusterBytes / bw

	clusterInterval := maxf(clusterCompute, clusterMem)
	batchCycles := filterCycles + visited*clusterInterval +
		float64(b)*float64(topk.FlushBytes(k))/bw

	res := AnalyticResult{
		BatchSeconds: batchCycles / cyclesPerSec,
		TrafficBytes: int64(groups*centroidBytes + visited*clusterBytes +
			float64(b*w)*QueryIDBytes + float64(b)*float64(topk.FlushBytes(k))),
		ComputeBound: clusterCompute > clusterMem,
		SCMsPerQuery: s,
	}
	res.QPS = float64(b) / res.BatchSeconds

	// Busy-time estimates for energy accounting. Every (query, cluster)
	// visit scans avgList vectors at scanVec cycles each (summed across
	// the s SCMs covering it); the CPM pays the filter for every query
	// plus a LUT fill per (query, visited cluster); the memory channel is
	// occupied for the whole traffic volume.
	res.SCMBusySeconds = float64(b) * float64(w) * scanVec * avgList / cyclesPerSec
	res.CPMBusySeconds = (float64(b)*filterCyc + float64(b)*float64(w)*lutCyc) / cyclesPerSec
	res.MemBusySeconds = float64(res.TrafficBytes) / bw / cyclesPerSec

	// --- baseline mode (single-query latency) --------------------------
	// Filter, then W pipelined cluster intervals with all SCMs on the
	// one query; each interval is the max of scan, LUT fill, and fetch.
	qFilter := maxf(filterCyc, centroidBytes/bw)
	perCluster := maxf(scanVec*avgList/float64(cfg.NSCM),
		maxf(lutCyc, listBytes/bw))
	// Pipeline fill: the first cluster pays LUT+fetch before scanning,
	// and the dependent metadata→codes→scan chains at query start expose
	// a few DRAM round-trips that steady state later hides.
	latencyCycles := qFilter + maxf(lutCyc, listBytes/bw) +
		float64(w)*perCluster + float64(cfg.NSCM)*float64(k) +
		float64(topk.FlushBytes(k))/bw + 3*float64(cfg.DRAM.LatencyCycles)
	res.LatencySeconds = latencyCycles / cyclesPerSec

	res.BaselineTrafficBytes = int64(float64(b) * (centroidBytes +
		float64(w)*(listBytes+ClusterMetaBytes+centroidPer(g)) +
		float64(topk.FlushBytes(k))))
	return res
}

// centroidPer is the per-cluster centroid reload for L2 LUT construction.
func centroidPer(g Geometry) float64 {
	if g.Metric == pq.L2 {
		return 2 * float64(g.D)
	}
	return 2 * float64(g.D) // IP reads the centroid for the q·c bias term
}

// MultiInstanceQPS scales a single-instance projection to n data-parallel
// ANNA instances (the paper's ANNA ×12 configuration, each instance
// paired with its own memory system).
func MultiInstanceQPS(r AnalyticResult, n int) float64 { return r.QPS * float64(n) }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func powN(x float64, n int) float64 {
	r := 1.0
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
	}
	return r
}
