package anna

import (
	"math"
	"testing"

	"anna/internal/dataset"
	"anna/internal/ivf"
	"anna/internal/pq"
)

// paperGeometry is SIFT1B at 4:1 with k*=256: N=1B, D=128, M=64, |C|=10000.
func paperGeometry() Geometry {
	return Geometry{N: 1_000_000_000, D: 128, M: 64, Ks: 256, C: 10000, Metric: pq.L2}
}

func TestGeometryHelpers(t *testing.T) {
	g := paperGeometry()
	if g.CodeBytes() != 64 {
		t.Errorf("CodeBytes = %d", g.CodeBytes())
	}
	if g.AvgList() != 100000 {
		t.Errorf("AvgList = %v", g.AvgList())
	}
	g16 := Geometry{N: 1, D: 128, M: 128, Ks: 16, C: 1}
	if g16.CodeBytes() != 64 {
		t.Errorf("k*=16 CodeBytes = %d", g16.CodeBytes())
	}
}

func TestAnalyticBillionScaleBallparks(t *testing.T) {
	r := Analytic(DefaultConfig(), paperGeometry(), 1000, 32, 1000, 0)
	// Memory floor: the batch must move at least the visited lists
	// (~61 GB) at 64 GB/s -> close to 1 s; with overheads the QPS lands
	// in the hundreds-to-low-thousands, matching Figure 8's ANNA curves.
	if r.QPS < 200 || r.QPS > 5000 {
		t.Errorf("billion-scale QPS = %.0f, outside plausible band", r.QPS)
	}
	// Paper: ANNA reaches 0.9+ recall at sub-ms latency on billion-scale
	// datasets; W=32 is well past that recall there.
	if r.LatencySeconds > 5e-3 {
		t.Errorf("latency = %.3f ms, expected low single-digit ms", r.LatencySeconds*1e3)
	}
	if r.LatencySeconds < 100e-6 {
		t.Errorf("latency = %v suspiciously low", r.LatencySeconds)
	}
	// Traffic optimization: baseline traffic must exceed batched.
	if r.BaselineTrafficBytes <= r.TrafficBytes {
		t.Errorf("baseline traffic %d <= batched %d", r.BaselineTrafficBytes, r.TrafficBytes)
	}
}

func TestAnalyticTrafficReductionNearWorkedExample(t *testing.T) {
	// Section IV: B=1000, |C|=10000, W=128 -> 12.8x fewer list bytes.
	g := paperGeometry()
	r := Analytic(DefaultConfig(), g, 1000, 128, 1000, 0)
	ratio := float64(r.BaselineTrafficBytes) / float64(r.TrafficBytes)
	// Top-k save/restore and query lists eat into the ideal 12.8x.
	if ratio < 6 || ratio > 13 {
		t.Errorf("traffic reduction = %.1fx, want within [6,13] of the 12.8x ideal", ratio)
	}
}

func TestAnalyticSCMHeuristic(t *testing.T) {
	g := paperGeometry()
	// B=1000, |C|=10000, W=40 -> 4 queries/cluster -> 4 SCMs per query
	// (the paper's worked example).
	r := Analytic(DefaultConfig(), g, 1000, 40, 1000, 0)
	if r.SCMsPerQuery != 4 {
		t.Errorf("SCMsPerQuery = %d, paper example says 4", r.SCMsPerQuery)
	}
	// Dense visiting -> inter-query mode.
	r = Analytic(DefaultConfig(), g, 10000, 128, 1000, 0)
	if r.SCMsPerQuery != 1 {
		t.Errorf("dense batch SCMsPerQuery = %d, want 1", r.SCMsPerQuery)
	}
	// Explicit override respected and clamped.
	r = Analytic(DefaultConfig(), g, 1000, 32, 1000, 64)
	if r.SCMsPerQuery != 16 {
		t.Errorf("clamp: %d", r.SCMsPerQuery)
	}
}

func TestAnalyticMonotonicInW(t *testing.T) {
	g := paperGeometry()
	prev := math.Inf(1)
	for _, w := range []int{4, 16, 64, 256} {
		r := Analytic(DefaultConfig(), g, 1000, w, 1000, 0)
		if r.QPS > prev*1.001 {
			t.Errorf("QPS increased with W=%d: %.0f > %.0f", w, r.QPS, prev)
		}
		prev = r.QPS
	}
}

func TestAnalyticBandwidthScaling(t *testing.T) {
	g := paperGeometry()
	slow := DefaultConfig()
	fast := DefaultConfig()
	fast.DRAM.BandwidthBytesPerCycle = 128
	rs := Analytic(slow, g, 1000, 64, 1000, 0)
	rf := Analytic(fast, g, 1000, 64, 1000, 0)
	if rf.QPS <= rs.QPS {
		t.Errorf("double bandwidth did not help a memory-bound point: %.0f vs %.0f", rf.QPS, rs.QPS)
	}
}

func TestMultiInstanceQPS(t *testing.T) {
	g := paperGeometry()
	r := Analytic(DefaultConfig(), g, 1000, 32, 1000, 0)
	if got := MultiInstanceQPS(r, 12); math.Abs(got-12*r.QPS) > 1e-9 {
		t.Errorf("x12 QPS = %v", got)
	}
}

// The event-driven simulator and the closed-form model must agree on a
// scaled workload with realistically long inverted lists (steady state
// dominating) — this pins the billion-scale extrapolation methodology.
func TestAnalyticMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("index build too heavy for -short")
	}
	spec := dataset.SIFTLike(20000, 16, 1)
	spec.D = 32
	ds := dataset.Generate(spec)
	idx := ivf.Build(ds.Base, pq.L2, ivf.Config{
		NClusters: 20, M: 8, Ks: 16, CoarseIters: 5, PQIters: 5, Seed: 2,
		MaxTrain: 5000,
	})
	cfg := smallConfig()
	acc := New(cfg, idx)
	p := Params{W: 8, K: 10, SkipFunctional: true, SCMsPerQuery: 1}
	simRes := acc.SearchBatched(ds.Queries, p)

	g := Geometry{N: idx.NTotal, D: idx.D, M: idx.PQ.M, Ks: idx.PQ.Ks,
		C: idx.NClusters(), Metric: idx.Metric}
	ana := Analytic(cfg, g, ds.Queries.Rows, 8, 10, 1)

	ratio := ana.BatchSeconds / simRes.Seconds
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("analytic vs simulated runtime ratio = %.2f (ana %.3gs, sim %.3gs)",
			ratio, ana.BatchSeconds, simRes.Seconds)
	}
	tRatio := float64(ana.TrafficBytes) / float64(simRes.TotalTrafficBytes)
	if tRatio < 0.6 || tRatio > 1.6 {
		t.Errorf("analytic/simulated traffic ratio = %.2f", tRatio)
	}

	base := acc.SearchBaseline(ds.Queries, p)
	lRatio := ana.LatencySeconds / base.MeanLatencySeconds
	if lRatio < 0.4 || lRatio > 2.5 {
		t.Errorf("analytic/simulated latency ratio = %.2f (ana %.3g, sim %.3g)",
			lRatio, ana.LatencySeconds, base.MeanLatencySeconds)
	}
}
