package anna

import (
	"fmt"

	"anna/internal/dram"
	"anna/internal/ivf"
	"anna/internal/pq"
	"anna/internal/sim"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// Accelerator is one configured ANNA instance bound to a trained index
// (the host has already placed centroids and encoded vectors in ANNA
// main memory and the codebook in on-chip SRAM, Section III-A).
type Accelerator struct {
	cfg Config
	idx *ivf.Index
}

// New returns an accelerator. It panics on invalid configuration or if
// the index's codebook exceeds the codebook SRAM the configuration
// implies (2·k*·D bytes).
func New(cfg Config, idx *ivf.Index) *Accelerator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if idx.PQ.Ks != 16 && idx.PQ.Ks != 256 {
		panic(fmt.Sprintf("anna: hardware supports k* of 16 or 256, index has %d", idx.PQ.Ks))
	}
	return &Accelerator{cfg: cfg, idx: idx}
}

// Config returns the accelerator's configuration.
func (a *Accelerator) Config() Config { return a.cfg }

// Index returns the bound index.
func (a *Accelerator) Index() *ivf.Index { return a.idx }

// Params control one search command.
type Params struct {
	// W is the number of clusters inspected per query.
	W int
	// K is the number of results returned per query (<= Config.K).
	K int
	// SCMsPerQuery selects intra-query parallelism in batched mode:
	// each query's cluster scan is split across this many SCMs.
	// 0 selects the paper's heuristic N_SCM·|C|/(B·W), clamped to
	// [1, N_SCM] (Section IV-A).
	SCMsPerQuery int
	// SkipFunctional runs the timing model only (cluster filtering still
	// executes — the schedule depends on which lists are visited — but
	// list scans are not computed and PerQuery results are nil). Used
	// for large parameter sweeps.
	SkipFunctional bool
}

func (p Params) validate(a *Accelerator) error {
	if p.W <= 0 {
		return fmt.Errorf("anna: W must be positive, got %d", p.W)
	}
	if p.K <= 0 || p.K > a.cfg.K {
		return fmt.Errorf("anna: K must be in 1..%d, got %d", a.cfg.K, p.K)
	}
	return nil
}

// Result reports one search command's outcome and cost.
type Result struct {
	// PerQuery holds each query's top-k (descending similarity); nil
	// when SkipFunctional was set.
	PerQuery [][]topk.Result
	// Queries is the batch size B.
	Queries int
	// Cycles is the makespan of the command.
	Cycles sim.Cycles
	// Seconds is Cycles at the configured clock.
	Seconds float64
	// QPS is Queries/Seconds.
	QPS float64
	// MeanLatencySeconds is the average per-query latency: per-query
	// completion time in baseline mode, the batch makespan in batched
	// mode (a query is not done until its last cluster pass).
	MeanLatencySeconds float64
	// QueryLatencies holds each query's latency in seconds (baseline
	// mode only; nil in batched mode, where all queries complete with
	// the batch).
	QueryLatencies []float64
	// Traffic is per-stream memory bytes; TotalTrafficBytes their sum.
	Traffic           map[dram.StreamClass]int64
	TotalTrafficBytes int64
	// Busy cycles per module class, for utilisation and energy.
	CPMBusy  sim.Cycles
	SCMBusy  sim.Cycles // summed over all SCMs
	DRAMBusy sim.Cycles
	// TopKOffered counts inputs consumed by top-k units (energy model).
	TopKOffered int64
	// Phases breaks busy cycles down by search phase.
	Phases PhaseCycles
	// Trace holds timeline spans when Config.Trace is set.
	Trace []sim.Span
}

func (m *machine) finishResult(r *Result) {
	r.Cycles = m.eng.Makespan()
	r.Seconds = m.seconds(r.Cycles)
	if r.Seconds > 0 {
		r.QPS = float64(r.Queries) / r.Seconds
	}
	r.Traffic = m.ch.TrafficByClass()
	r.TotalTrafficBytes = m.ch.TotalTraffic()
	r.CPMBusy = m.cpm.Busy()
	for _, s := range m.scms {
		r.SCMBusy += s.Busy()
	}
	r.DRAMBusy = m.ch.Busy()
	r.Phases = m.phases
	if m.cfg.Trace {
		r.Trace = m.eng.Trace()
	}
}

// SearchBaseline processes the batch one query at a time — the
// conventional execution on the left of Figure 5. Each query streams
// the centroids, selects W clusters, and scans each selected cluster's
// encoded vectors, fetching them from main memory with no cross-query
// reuse. All N_SCM SCMs cooperate on the single in-flight query
// (intra-query parallelism), and double buffering overlaps LUT
// construction, code fetch and similarity computation per Figure 7.
func (a *Accelerator) SearchBaseline(queries *vecmath.Matrix, p Params) *Result {
	if err := p.validate(a); err != nil {
		panic(err)
	}
	queries = a.idx.PrepQueries(queries) // OPQ rotation, when trained with one
	m := newMachine(a.cfg, a.idx)
	res := &Result{Queries: queries.Rows}
	if !p.SkipFunctional {
		res.PerQuery = make([][]topk.Result, queries.Rows)
	}

	lut := pq.NewLUT(a.idx.PQ)
	scratch := make([]float32, a.idx.D)
	codeBuf := make([]byte, a.idx.PQ.M)
	var totalLatency float64

	var t sim.Cycles // current query's earliest issue time
	for qi := 0; qi < queries.Rows; qi++ {
		q := queries.Row(qi)
		qStart := t

		// Step 1: cluster filtering. Centroids stream from memory while
		// the CPM computes; the top-|W| unit absorbs results at line rate.
		dataAt := m.ch.Read(qStart, m.centroidBytes(), dram.Centroids, "filter:centroids")
		_, compEnd := m.cpm.Schedule(qStart, m.filterCycles(), "filter")
		m.phases.Filter += m.filterCycles()
		filterEnd := sim.Max(dataAt, compEnd)
		clusters := a.idx.SelectClusters(q, p.W)

		// The EFM can prefetch all selected clusters' metadata as soon as
		// the selection is known.
		metaAt := m.ch.Read(filterEnd, int64(len(clusters))*ClusterMetaBytes,
			dram.ClusterMeta, "efm:meta")

		ph := topk.NewPHeap(p.K)

		// Inner-product LUT is filled once per query (Section II-C).
		lutReady := filterEnd
		if a.idx.Metric == pq.InnerProduct {
			_, lutReady = m.cpm.Schedule(filterEnd, m.lutFillCycles(), "lut:ip")
			m.phases.LUT += m.lutFillCycles()
			if !p.SkipFunctional {
				a.idx.PQ.FillIP(lut, q)
				lut.RoundF16()
			}
		}

		// scanEnds[j] is when the scan of the j-th selected cluster
		// finished; double buffering lets fill/fetch for cluster j start
		// once cluster j-2 released its buffer copy.
		scanEnds := make([]sim.Cycles, 0, len(clusters))
		bufFree := func(j int) sim.Cycles {
			back := 2
			if !m.cfg.DoubleBuffer {
				back = 1
			}
			if j-back < 0 {
				return 0
			}
			return scanEnds[j-back]
		}

		for j, c := range clusters {
			ready := sim.Max(metaAt, bufFree(j))

			// L2: reload the centroid, compute the residual, refill the
			// LUT for this cluster (Section III-A, L2 path).
			clusterLUTReady := lutReady
			if a.idx.Metric == pq.L2 {
				cAt := m.ch.Read(ready, m.oneCentroidBytes(), dram.Centroids, "lut:centroid")
				_, rEnd := m.cpm.Schedule(sim.Max(cAt, ready), m.residualCycles(), "resid")
				_, clusterLUTReady = m.cpm.Schedule(rEnd, m.lutFillCycles(), "lut:l2")
				m.phases.LUT += m.residualCycles() + m.lutFillCycles()
			}

			// EFM code fetch, chunked by the encoded vector buffer size.
			n := a.idx.Lists[c].Len()
			bytes := m.listBytes(c)
			first := bytes
			if first > m.cfg.EVBBytes {
				first = m.cfg.EVBBytes
			}
			firstAt := m.ch.Read(ready, first, dram.Codes, "efm:codes")
			lastAt := firstAt
			if rest := bytes - first; rest > 0 {
				lastAt = m.ch.Read(firstAt, rest, dram.Codes, "efm:codes+")
			}

			// Scan split across all SCMs (intra-query parallelism).
			per := (n + m.cfg.NSCM - 1) / m.cfg.NSCM
			var scanEnd sim.Cycles
			for s := 0; s < m.cfg.NSCM && s*per < n; s++ {
				cnt := per
				if rem := n - s*per; cnt > rem {
					cnt = rem
				}
				_, e := m.scms[s].Schedule(sim.Max(clusterLUTReady, firstAt),
					m.scanCycles(cnt), "scan")
				m.phases.Scan += m.scanCycles(cnt)
				scanEnd = sim.Max(scanEnd, e)
			}
			scanEnd = sim.Max(scanEnd, lastAt) // cannot outrun the data
			scanEnds = append(scanEnds, scanEnd)

			if !p.SkipFunctional {
				if a.idx.Metric == pq.L2 {
					a.idx.BuildLUT(lut, q, c, scratch, true)
				} else {
					a.idx.RebiasLUT(lut, q, c, true)
				}
				scanListPHeap(a.idx, ph, lut, c, codeBuf)
			}
		}

		queryEnd := filterEnd
		if len(scanEnds) > 0 {
			queryEnd = scanEnds[len(scanEnds)-1]
		}
		// Merge the per-SCM partial top-k lists, then write results back.
		_, mergeEnd := m.scms[0].Schedule(queryEnd, m.mergeCycles(m.cfg.NSCM, p.K), "merge")
		m.phases.Merge += m.mergeCycles(m.cfg.NSCM, p.K)
		queryEnd = m.ch.Write(mergeEnd, topk.FlushBytes(p.K), dram.Results, "results")

		if !p.SkipFunctional {
			res.PerQuery[qi] = ph.Flush()
			res.TopKOffered += ph.Offered()
		}
		lat := m.seconds(queryEnd - qStart)
		res.QueryLatencies = append(res.QueryLatencies, lat)
		totalLatency += lat
		t = queryEnd // queries processed strictly one at a time
	}

	res.MeanLatencySeconds = totalLatency / float64(queries.Rows)
	m.finishResult(res)
	return res
}

// scanListPHeap is the functional datapath of one SCM pass over cluster
// c: unpack codes, LUT-reduce with f16 score rounding, feed the P-heap.
// Tombstoned IDs are filtered the way the host-side result collection
// would drop them.
func scanListPHeap(idx *ivf.Index, ph *topk.PHeap, lut *pq.LUT, c int, codeBuf []byte) {
	lst := &idx.Lists[c]
	cb := idx.PQ.CodeBytes()
	filtered := idx.HasDeletions()
	for i := 0; i < lst.Len(); i++ {
		if filtered && idx.Deleted(lst.IDs[i]) {
			continue
		}
		idx.PQ.Unpack(codeBuf, lst.Codes[i*cb:])
		ph.Offer(lst.IDs[i], lut.ADCf16(codeBuf))
	}
}
