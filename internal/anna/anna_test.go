package anna

import (
	"testing"

	"anna/internal/dataset"
	"anna/internal/dram"
	"anna/internal/ivf"
	"anna/internal/pq"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// testIndex builds a small deterministic index shared by the tests.
func testIndex(t testing.TB, metric pq.Metric, ks int) (*ivf.Index, *dataset.Dataset) {
	t.Helper()
	spec := dataset.SIFTLike(3000, 16, 1)
	spec.D = 32
	spec.Metric = metric
	ds := dataset.Generate(spec)
	idx := ivf.Build(ds.Base, metric, ivf.Config{
		NClusters: 25, M: 8, Ks: ks, CoarseIters: 6, PQIters: 6, Seed: 2, F16: true,
	})
	return idx, ds
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.K = 64 // small top-k keeps tests fast
	return cfg
}

func sameResults(t *testing.T, label string, a, b [][]topk.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: query counts %d vs %d", label, len(a), len(b))
	}
	for qi := range a {
		if len(a[qi]) != len(b[qi]) {
			t.Fatalf("%s q%d: lengths %d vs %d", label, qi, len(a[qi]), len(b[qi]))
		}
		for i := range a[qi] {
			if a[qi][i] != b[qi][i] {
				t.Fatalf("%s q%d rank %d: %+v vs %+v", label, qi, i, a[qi][i], b[qi][i])
			}
		}
	}
}

// The accelerator's functional datapath must return exactly what the
// software reference computes with hardware f16 rounding enabled.
func TestBaselineMatchesSoftwareReference(t *testing.T) {
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		idx, ds := testIndex(t, metric, 16)
		acc := New(smallConfig(), idx)
		res := acc.SearchBaseline(ds.Queries, Params{W: 6, K: 10})

		want := make([][]topk.Result, ds.Queries.Rows)
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			want[qi] = idx.Search(ds.Queries.Row(qi), ivf.SearchParams{W: 6, K: 10, HWF16: true})
		}
		sameResults(t, metric.String(), res.PerQuery, want)
	}
}

// sameResultsTies compares result lists rank-by-rank on scores only;
// differing IDs are accepted when their scores tie (top-k under equal
// scores is non-unique, and the Section IV reordering changes which of
// two equal-scoring vectors is retained).
func sameResultsTies(t *testing.T, label string, a, b [][]topk.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: query counts %d vs %d", label, len(a), len(b))
	}
	for qi := range a {
		if len(a[qi]) != len(b[qi]) {
			t.Fatalf("%s q%d: lengths %d vs %d", label, qi, len(a[qi]), len(b[qi]))
		}
		for i := range a[qi] {
			if a[qi][i].Score != b[qi][i].Score {
				t.Fatalf("%s q%d rank %d: score %v vs %v",
					label, qi, i, a[qi][i].Score, b[qi][i].Score)
			}
		}
	}
}

// The batch-optimized execution must be functionally identical to the
// baseline: the Section IV reordering may not change any answer (up to
// which of two equal-scoring vectors is kept).
func TestBatchedMatchesBaseline(t *testing.T) {
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		idx, ds := testIndex(t, metric, 16)
		acc := New(smallConfig(), idx)
		base := acc.SearchBaseline(ds.Queries, Params{W: 6, K: 10})
		for _, s := range []int{0, 1, 4, 16} {
			batch := acc.SearchBatched(ds.Queries, Params{W: 6, K: 10, SCMsPerQuery: s})
			sameResultsTies(t, metric.String(), batch.PerQuery, base.PerQuery)
		}
	}
}

func TestCycleFormulas(t *testing.T) {
	idx, _ := testIndex(t, pq.L2, 16)
	cfg := smallConfig()
	m := newMachine(cfg, idx)

	// D=32, |C|=25, N_cu=96: ceil(32*25/96) = 9.
	if got := m.filterCycles(); got != 9 {
		t.Errorf("filterCycles = %d, want 9", got)
	}
	// ceil(32/96) = 1.
	if got := m.residualCycles(); got != 1 {
		t.Errorf("residualCycles = %d, want 1", got)
	}
	// ceil(32*16/96) = 6.
	if got := m.lutFillCycles(); got != 6 {
		t.Errorf("lutFillCycles = %d, want 6", got)
	}
	// M=8, N_u=64: 100 vectors -> ceil(800/64)=13, but top-k rate limit
	// floors at 100.
	if got := m.scanCycles(100); got != 100 {
		t.Errorf("scanCycles rate-limited = %d, want 100", got)
	}
	cfg.TopKRateLimit = false
	m2 := newMachine(cfg, idx)
	if got := m2.scanCycles(100); got != 13 {
		t.Errorf("scanCycles unclamped = %d, want 13", got)
	}
	// Paper example: M=128, N_u=64 -> 2 cycles per vector.
	idx.PQ.M = 128
	if got := m2.scanCycles(1); got != 2 {
		t.Errorf("scanCycles(1) with M=128 = %d, want 2", got)
	}
	idx.PQ.M = 8
}

func TestBaselineCodeTrafficIsBWLists(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	acc := New(smallConfig(), idx)
	const w = 6
	res := acc.SearchBaseline(ds.Queries, Params{W: w, K: 10, SkipFunctional: true})

	var want int64
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		for _, c := range idx.SelectClusters(ds.Queries.Row(qi), w) {
			want += idx.ListBytes(c)
		}
	}
	if got := res.Traffic[dram.Codes]; got != want {
		t.Errorf("baseline code traffic = %d, want %d", got, want)
	}
}

func TestBatchedCodeTrafficIsVisitedListsOnce(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	cfg := smallConfig()
	acc := New(cfg, idx)
	const w = 6
	// Inter-query mode with queries/cluster <= N_SCM: one pass per
	// cluster, each visited list fetched exactly once.
	res := acc.SearchBatched(ds.Queries, Params{W: w, K: 10, SCMsPerQuery: 1, SkipFunctional: true})

	visited := map[int]bool{}
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		for _, c := range idx.SelectClusters(ds.Queries.Row(qi), w) {
			visited[c] = true
		}
	}
	var want int64
	for c := range visited {
		want += idx.ListBytes(c)
	}
	if got := res.Traffic[dram.Codes]; got != want {
		t.Errorf("batched code traffic = %d, want %d", got, want)
	}
	if res.Traffic[dram.Codes] >= New(cfg, idx).SearchBaseline(ds.Queries,
		Params{W: w, K: 10, SkipFunctional: true}).Traffic[dram.Codes] {
		t.Errorf("optimization did not reduce code traffic")
	}
}

func TestBatchedFasterThanBaselineAtScale(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	acc := New(smallConfig(), idx)
	p := Params{W: 8, K: 10, SkipFunctional: true}
	base := acc.SearchBaseline(ds.Queries, p)
	opt := acc.SearchBatched(ds.Queries, p)
	if opt.Cycles >= base.Cycles {
		t.Errorf("batched %d cycles >= baseline %d", opt.Cycles, base.Cycles)
	}
	if opt.QPS <= base.QPS {
		t.Errorf("batched QPS %v <= baseline %v", opt.QPS, base.QPS)
	}
}

func TestDoubleBufferingHelps(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	on := smallConfig()
	off := smallConfig()
	off.DoubleBuffer = false
	p := Params{W: 8, K: 10, SkipFunctional: true}
	rOn := New(on, idx).SearchBaseline(ds.Queries, p)
	rOff := New(off, idx).SearchBaseline(ds.Queries, p)
	if rOn.Cycles > rOff.Cycles {
		t.Errorf("double buffering slower: %d vs %d", rOn.Cycles, rOff.Cycles)
	}
	// Functional results unaffected by the ablation.
	a := New(on, idx).SearchBaseline(ds.Queries, Params{W: 4, K: 5})
	b := New(off, idx).SearchBaseline(ds.Queries, Params{W: 4, K: 5})
	sameResults(t, "doublebuffer", a.PerQuery, b.PerQuery)
}

func TestTopKSaveRestoreTraffic(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	cfg := smallConfig()
	acc := New(cfg, idx)
	res := acc.SearchBatched(ds.Queries, Params{W: 6, K: 10, SCMsPerQuery: 1, SkipFunctional: true})
	// Every pass moves 2*activeSCMs*k*5 bytes; with 16 queries and W=6
	// there are B*W (query,cluster) pairs, each restored+saved once.
	wantPairs := int64(ds.Queries.Rows * 6)
	want := 2 * wantPairs * topk.FlushBytes(10)
	if got := res.Traffic[dram.TopK]; got != want {
		t.Errorf("topk traffic = %d, want %d", got, want)
	}
}

func TestIntraQueryIncreasesTopKTraffic(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	acc := New(smallConfig(), idx)
	inter := acc.SearchBatched(ds.Queries, Params{W: 6, K: 10, SCMsPerQuery: 1, SkipFunctional: true})
	intra := acc.SearchBatched(ds.Queries, Params{W: 6, K: 10, SCMsPerQuery: 8, SkipFunctional: true})
	if intra.Traffic[dram.TopK] <= inter.Traffic[dram.TopK] {
		t.Errorf("intra-query topk traffic %d <= inter %d (paper says it increases)",
			intra.Traffic[dram.TopK], inter.Traffic[dram.TopK])
	}
}

func TestTrafficModelPaperExample(t *testing.T) {
	// Section IV: B=1000, |C|=10000, |W|=128 -> 12.8x reduction.
	idx := &ivf.Index{Lists: make([]ivf.List, 10000),
		Centroids: vecmath.NewMatrix(10000, 1)}
	for c := range idx.Lists {
		idx.Lists[c].Codes = make([]byte, 100) // uniform lists
	}
	base, opt := TrafficModel(idx, 1000, 128)
	if ratio := float64(base) / float64(opt); ratio != 12.8 {
		t.Errorf("traffic reduction = %v, want 12.8", ratio)
	}
}

func TestValidation(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	acc := New(smallConfig(), idx)
	for _, p := range []Params{{W: 0, K: 10}, {W: 4, K: 0}, {W: 4, K: 100000}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", p)
				}
			}()
			acc.SearchBaseline(ds.Queries, p)
		}()
	}
	// Bad hardware config.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for bad config")
			}
		}()
		New(Config{}, idx)
	}()
	// Unsupported k*.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for unsupported k*")
			}
		}()
		bad := *idx
		bad.PQ = &pq.Quantizer{
			D: idx.PQ.D, M: idx.PQ.M, Ks: 32, Dsub: idx.PQ.Dsub,
			Codebooks: idx.PQ.Codebooks,
		}
		New(smallConfig(), &bad)
	}()
}

func TestTraceRecorded(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	cfg := smallConfig()
	cfg.Trace = true
	res := New(cfg, idx).SearchBaseline(ds.Queries, Params{W: 2, K: 5, SkipFunctional: true})
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	seen := map[string]bool{}
	for _, sp := range res.Trace {
		seen[sp.Resource] = true
		if sp.End < sp.Start {
			t.Fatalf("span ends before start: %+v", sp)
		}
	}
	for _, r := range []string{"cpm", "scm00", "dram"} {
		if !seen[r] {
			t.Errorf("resource %s missing from trace", r)
		}
	}
}

func TestPhaseCyclesAccounting(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	acc := New(smallConfig(), idx)
	for _, mode := range []string{"baseline", "batched"} {
		var res *Result
		if mode == "baseline" {
			res = acc.SearchBaseline(ds.Queries, Params{W: 6, K: 10, SkipFunctional: true})
		} else {
			res = acc.SearchBatched(ds.Queries, Params{W: 6, K: 10, SkipFunctional: true})
		}
		ph := res.Phases
		if ph.Filter <= 0 || ph.LUT <= 0 || ph.Scan <= 0 {
			t.Errorf("%s: phases %+v have zero entries", mode, ph)
		}
		// CPM phases must sum to the CPM busy time; SCM phases to SCM busy.
		if ph.Filter+ph.LUT != res.CPMBusy {
			t.Errorf("%s: filter+lut %d != CPM busy %d", mode, ph.Filter+ph.LUT, res.CPMBusy)
		}
		if ph.Scan+ph.Merge != res.SCMBusy {
			t.Errorf("%s: scan+merge %d != SCM busy %d", mode, ph.Scan+ph.Merge, res.SCMBusy)
		}
	}
}

func TestSkipFunctionalSameTiming(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	acc := New(smallConfig(), idx)
	a := acc.SearchBatched(ds.Queries, Params{W: 4, K: 5})
	b := acc.SearchBatched(ds.Queries, Params{W: 4, K: 5, SkipFunctional: true})
	if a.Cycles != b.Cycles || a.TotalTrafficBytes != b.TotalTrafficBytes {
		t.Errorf("timing depends on SkipFunctional: %d/%d vs %d/%d",
			a.Cycles, a.TotalTrafficBytes, b.Cycles, b.TotalTrafficBytes)
	}
	if b.PerQuery != nil {
		t.Error("SkipFunctional returned results")
	}
}

func TestKs256Supported(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 256)
	acc := New(smallConfig(), idx)
	res := acc.SearchBaseline(ds.Queries, Params{W: 4, K: 10})
	want := make([][]topk.Result, ds.Queries.Rows)
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		want[qi] = idx.Search(ds.Queries.Row(qi), ivf.SearchParams{W: 4, K: 10, HWF16: true})
	}
	sameResults(t, "ks256", res.PerQuery, want)
}

func TestMoreBandwidthNotSlower(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	slow := smallConfig()
	slow.DRAM.BandwidthBytesPerCycle = 8
	fast := smallConfig()
	fast.DRAM.BandwidthBytesPerCycle = 256
	p := Params{W: 8, K: 10, SkipFunctional: true}
	rs := New(slow, idx).SearchBatched(ds.Queries, p)
	rf := New(fast, idx).SearchBatched(ds.Queries, p)
	if rf.Cycles > rs.Cycles {
		t.Errorf("more bandwidth slower: %d vs %d", rf.Cycles, rs.Cycles)
	}
}

func TestMeanLatencyBaselineVsBatch(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	acc := New(smallConfig(), idx)
	p := Params{W: 4, K: 5, SkipFunctional: true}
	base := acc.SearchBaseline(ds.Queries, p)
	opt := acc.SearchBatched(ds.Queries, p)
	// Baseline per-query latency is far below the batch makespan; the
	// batched mode trades latency for throughput.
	if base.MeanLatencySeconds >= opt.MeanLatencySeconds {
		t.Errorf("baseline latency %v >= batched %v",
			base.MeanLatencySeconds, opt.MeanLatencySeconds)
	}
}

func BenchmarkBaselineTiming(b *testing.B) {
	idx, ds := testIndex(b, pq.L2, 16)
	acc := New(smallConfig(), idx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.SearchBaseline(ds.Queries, Params{W: 8, K: 10, SkipFunctional: true})
	}
}

func BenchmarkBatchedTiming(b *testing.B) {
	idx, ds := testIndex(b, pq.L2, 16)
	acc := New(smallConfig(), idx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.SearchBatched(ds.Queries, Params{W: 8, K: 10, SkipFunctional: true})
	}
}
