package anna

import (
	"testing"

	"anna/internal/pq"
)

func TestShardedMatchesSingleResults(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	acc := New(smallConfig(), idx)
	p := Params{W: 6, K: 10}
	single := acc.SearchBatched(ds.Queries, p)
	sharded := acc.SearchSharded(ds.Queries, p, 4)
	// Sharding only partitions queries; per-query answers are identical
	// (no cross-query interaction in the functional datapath).
	sameResultsTies(t, "sharded", sharded.PerQuery, single.PerQuery)
}

func TestShardedSpeedsUpThroughput(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	acc := New(smallConfig(), idx)
	p := Params{W: 8, K: 10, SkipFunctional: true}
	one := acc.SearchSharded(ds.Queries, p, 1)
	twelve := acc.SearchSharded(ds.Queries, p, 12)
	if twelve.QPS <= one.QPS {
		t.Errorf("12 instances %.0f QPS <= 1 instance %.0f", twelve.QPS, one.QPS)
	}
	// Aggregate traffic grows (each instance streams centroids and its
	// shard's lists), never shrinks.
	if twelve.TotalTrafficBytes < one.TotalTrafficBytes {
		t.Errorf("sharded traffic %d < single %d", twelve.TotalTrafficBytes, one.TotalTrafficBytes)
	}
}

func TestShardedOneInstanceIsBatched(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	acc := New(smallConfig(), idx)
	p := Params{W: 4, K: 5, SkipFunctional: true}
	a := acc.SearchSharded(ds.Queries, p, 1)
	b := acc.SearchBatched(ds.Queries, p)
	if a.Cycles != b.Cycles || a.TotalTrafficBytes != b.TotalTrafficBytes {
		t.Errorf("n=1 sharding changed the schedule")
	}
}

func TestShardedMoreInstancesThanQueries(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	acc := New(smallConfig(), idx)
	res := acc.SearchSharded(ds.Queries, Params{W: 4, K: 5}, 100)
	if len(res.PerQuery) != ds.Queries.Rows {
		t.Fatalf("%d results", len(res.PerQuery))
	}
	for qi, rs := range res.PerQuery {
		if len(rs) == 0 {
			t.Fatalf("query %d lost", qi)
		}
	}
}

// Figure 7's defining property: in batched steady state, CPM LUT
// construction for the next pass overlaps SCM scanning of the current
// one, and EFM prefetch overlaps both.
func TestSteadyStateOverlap(t *testing.T) {
	idx, ds := testIndex(t, pq.L2, 16)
	cfg := smallConfig()
	cfg.Trace = true
	// Narrow the channel so code fetches take long enough to observe
	// against the (tiny) scaled cluster scans.
	cfg.DRAM.BandwidthBytesPerCycle = 2
	acc := New(cfg, idx)
	res := acc.SearchBatched(ds.Queries, Params{W: 8, K: 10, SkipFunctional: true})

	type span struct{ start, end int64 }
	var luts, scans, fetches []span
	for _, sp := range res.Trace {
		s := span{int64(sp.Start), int64(sp.End)}
		switch {
		case sp.Resource == "cpm" && sp.Label == "lut:l2":
			luts = append(luts, s)
		case sp.Label == "scan":
			scans = append(scans, s)
		case sp.Label == "efm:codes":
			fetches = append(fetches, s)
		}
	}
	if len(luts) == 0 || len(scans) == 0 || len(fetches) == 0 {
		t.Fatalf("trace incomplete: %d luts, %d scans, %d fetches", len(luts), len(scans), len(fetches))
	}
	overlap := func(a, b []span) bool {
		for _, x := range a {
			for _, y := range b {
				if x.start < y.end && y.start < x.end {
					return true
				}
			}
		}
		return false
	}
	if !overlap(luts, scans) {
		t.Error("no CPM-LUT / SCM-scan overlap — double buffering broken")
	}
	if !overlap(fetches, scans) {
		t.Error("no EFM-fetch / SCM-scan overlap — prefetching broken")
	}
}
