package anna

import (
	"fmt"

	"anna/internal/dram"
	"anna/internal/ivf"
	"anna/internal/sim"
)

// machine wires one ANNA instance's resources onto a fresh sim engine.
// A machine is built per search call; the Accelerator owning it is
// reusable and stateless across searches.
type machine struct {
	cfg Config
	idx *ivf.Index

	eng  *sim.Engine
	cpm  *sim.Resource   // compute units of the CPM (serial, N_cu wide internally)
	scms []*sim.Resource // one per SCM
	ch   *dram.Channel

	phases PhaseCycles
}

// PhaseCycles breaks module busy time down by search phase — the
// utilisation view behind the paper's "actual power (2-3W) is lower than
// peak" observation and the annasim per-phase report.
type PhaseCycles struct {
	// Filter is CPM time in cluster filtering (step 1).
	Filter sim.Cycles
	// LUT is CPM time in residual + lookup-table construction (step 2).
	LUT sim.Cycles
	// Scan is summed SCM time in similarity computation (step 3).
	Scan sim.Cycles
	// Merge is SCM time merging per-SCM top-k lists.
	Merge sim.Cycles
}

func newMachine(cfg Config, idx *ivf.Index) *machine {
	m := &machine{cfg: cfg, idx: idx, eng: sim.NewEngine(cfg.Trace)}
	m.cpm = m.eng.NewResource("cpm")
	m.scms = make([]*sim.Resource, cfg.NSCM)
	for i := range m.scms {
		m.scms[i] = m.eng.NewResource(fmt.Sprintf("scm%02d", i))
	}
	m.ch = dram.NewChannel(m.eng, cfg.DRAM)
	return m
}

// --- CPM cycle formulas (Section III-B, module (1)) ---

// filterCycles is Mode 1: similarity of one query against all |C|
// centroids, D·|C|/N_cu cycles.
func (m *machine) filterCycles() sim.Cycles {
	d, c := int64(m.idx.D), int64(m.idx.NClusters())
	return sim.Cycles(sim.CeilDiv(d*c, int64(m.cfg.NCU)))
}

// residualCycles is Mode 2: vector subtraction q−c, D/N_cu cycles.
func (m *machine) residualCycles() sim.Cycles {
	return sim.Cycles(sim.CeilDiv(int64(m.idx.D), int64(m.cfg.NCU)))
}

// lutFillCycles is Mode 3: filling one full set of M lookup tables,
// D·k*/N_cu cycles.
func (m *machine) lutFillCycles() sim.Cycles {
	d, ks := int64(m.idx.D), int64(m.idx.PQ.Ks)
	return sim.Cycles(sim.CeilDiv(d*ks, int64(m.cfg.NCU)))
}

// --- SCM cycle formula (Section III-B, module (3)) ---

// scanCycles is the similarity computation over n encoded vectors:
// n·M/N_u cycles, optionally floored at one vector per cycle by the
// top-k unit's input rate.
func (m *machine) scanCycles(n int) sim.Cycles {
	cyc := sim.CeilDiv(int64(n)*int64(m.idx.PQ.M), int64(m.cfg.NU))
	if m.cfg.TopKRateLimit && cyc < int64(n) {
		cyc = int64(n)
	}
	return sim.Cycles(cyc)
}

// mergeCycles is the cost of merging s per-SCM top-k lists of k entries
// through a top-k unit at one entry per cycle (intra-query parallelism
// epilogue).
func (m *machine) mergeCycles(s, k int) sim.Cycles {
	if s <= 1 {
		return 0
	}
	return sim.Cycles(int64(s) * int64(k))
}

// --- memory sizes ---

// centroidBytes is the streaming footprint of all centroids (f16).
func (m *machine) centroidBytes() int64 {
	return 2 * int64(m.idx.NClusters()) * int64(m.idx.D)
}

// oneCentroidBytes is a single centroid vector (f16).
func (m *machine) oneCentroidBytes() int64 { return 2 * int64(m.idx.D) }

// listBytes is cluster c's packed code bytes.
func (m *machine) listBytes(c int) int64 { return m.idx.ListBytes(c) }

// seconds converts cycles to wall-clock seconds at the configured clock.
func (m *machine) seconds(c sim.Cycles) float64 {
	return float64(c) / (m.cfg.FreqGHz * 1e9)
}

// scmAlloc implements the Section IV-A allocation heuristic: with
// `expected` queries visiting each cluster on average, give each query
// about N_SCM/expected SCMs so the SCM array stays full. The result is
// rounded down to a power of two so N_SCM (itself a power of two in the
// evaluated design) divides evenly into query groups.
func scmAlloc(nSCM int, expected float64) int {
	if expected < 1 {
		expected = 1
	}
	target := float64(nSCM) / expected
	s := 1
	for s*2 <= nSCM && float64(s*2) <= target {
		s *= 2
	}
	return s
}
