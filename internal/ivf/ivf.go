// Package ivf implements the two-level product-quantization ANNS index of
// Section II-C: database vectors are grouped into |C| clusters by k-means,
// each vector is encoded as the PQ code of its residual against the
// cluster centroid, and codes are stored in per-cluster inverted lists
// together with the centroid.
//
// The same trained index feeds every execution backend in this repository:
// the software reference search in this package, the multi-threaded CPU
// engine (internal/engine), and the simulated ANNA accelerator
// (internal/anna) — mirroring how one trained Faiss/ScaNN model is shared
// by the CPU, GPU and ANNA configurations in the paper's evaluation.
package ivf

import (
	"fmt"
	"sync"

	"anna/internal/f16"
	"anna/internal/kmeans"
	"anna/internal/par"
	"anna/internal/pq"
	"anna/internal/rotation"
	"anna/internal/sq"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// Config controls index construction.
type Config struct {
	// NClusters is |C|, the number of coarse clusters. The paper uses
	// 10000 for billion-scale and 250 for million-scale datasets.
	NClusters int
	// M and Ks configure the product quantizer (Section II-B).
	M, Ks int
	// CoarseIters / PQIters are the k-means iteration budgets
	// (defaults 20 / 20).
	CoarseIters, PQIters int
	// MaxTrain caps the vectors used for coarse and PQ training
	// (0 = all).
	MaxTrain int
	Seed     int64
	Workers  int
	// F16 rounds centroids and codebooks through half precision after
	// training, matching what ANNA holds in its SRAM. Leave false for a
	// pure-software float32 index.
	F16 bool
	// Rotate applies a random orthonormal rotation to the data before
	// quantization (OPQ-style preconditioning, Section VI: ANNA supports
	// OPQ unchanged). Queries are rotated automatically at search time.
	Rotate bool
	// AnisotropicEta enables ScaNN-style score-aware encoding when > 1:
	// codewords are chosen to penalise quantization error parallel to
	// the datapoint by this factor (see pq.EncodeAnisotropic). The
	// search computation is unchanged — only the stored identifiers
	// differ — which is exactly why ANNA runs ScaNN models natively.
	AnisotropicEta float32
	// Rerank retains an 8-bit scalar-quantized copy of every vector
	// (D bytes each) so SearchRerank can refine PQ candidate order —
	// "re-rank with source coding".
	Rerank bool
}

// List is one inverted list: the vectors of a single cluster.
type List struct {
	IDs   []int64 // database vector IDs
	Codes []byte  // packed PQ codes, CodeBytes() per vector
}

// Len returns the number of vectors in the list.
func (l *List) Len() int { return len(l.IDs) }

// Index is a trained two-level PQ index.
type Index struct {
	Metric    pq.Metric
	D         int
	Centroids *vecmath.Matrix // |C| x D
	PQ        *pq.Quantizer
	Lists     []List
	// NTotal is the number of indexed vectors.
	NTotal int
	// Rot is the optional OPQ-style rotation applied to data at build
	// time and to queries at search time (nil when unused).
	Rot *rotation.Matrix
	// AnisotropicEta records the encoding objective so Add() encodes new
	// vectors consistently (0 or 1 = plain L2 assignment).
	AnisotropicEta float32
	// SQ holds optional 8-bit reconstructions for SearchRerank (nil when
	// the index was built without Config.Rerank).
	SQ *sq.Store
	// deleted holds tombstoned IDs (see Delete/Compact); nil when none.
	deleted map[int64]struct{}
	// nextID is the ID the next Add assigns (always maxID+1, which can
	// exceed NTotal after Compact leaves ID gaps).
	nextID int64
	// searcherPool recycles fused-search contexts for the single-query
	// Search API (engines hold their own Searchers instead). Held by
	// pointer so Index values stay copyable; nil (zero-value Index)
	// simply disables pooling.
	searcherPool *sync.Pool
	// IngestWorkers bounds the parallelism of Add's batched
	// assign+encode pipeline; 0 means GOMAXPROCS. The ingested lists are
	// byte-identical for any value. Set it between (not during) Adds.
	IngestWorkers int
	// assigner caches the batched nearest-centroid structure for Add;
	// lazily built on first use (centroids never move after training or
	// loading). nil on a fresh or loaded index.
	assigner *kmeans.Assigner
}

// Build trains and populates an index over the rows of data.
func Build(data *vecmath.Matrix, metric pq.Metric, cfg Config) *Index {
	if cfg.NClusters <= 0 {
		panic("ivf: NClusters must be positive")
	}
	if cfg.CoarseIters == 0 {
		cfg.CoarseIters = 20
	}
	if cfg.PQIters == 0 {
		cfg.PQIters = 20
	}

	var rot *rotation.Matrix
	if cfg.Rotate {
		rot = rotation.NewRandom(data.Cols, cfg.Seed+2)
		data = rot.ApplyAll(data)
	}

	coarse := kmeans.Train(data, kmeans.Config{
		K: cfg.NClusters, MaxIters: cfg.CoarseIters, Seed: cfg.Seed,
		Workers: cfg.Workers, MaxSamples: cfg.MaxTrain,
	})
	centroids := coarse.Centroids
	if cfg.F16 {
		f16.RoundSlice(centroids.Data, centroids.Data)
	}

	// Residuals for PQ training (optionally subsampled by kmeans itself).
	resid := vecmath.NewMatrix(data.Rows, data.Cols)
	par.Run(data.Rows, 1024, cfg.Workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			vecmath.Sub(resid.Row(i), data.Row(i), centroids.Row(int(coarse.Assign[i])))
		}
	})
	quant := pq.Train(resid, pq.Config{
		M: cfg.M, Ks: cfg.Ks, Iters: cfg.PQIters, Seed: cfg.Seed + 1,
		Workers: cfg.Workers, MaxSamples: cfg.MaxTrain,
	})
	if cfg.F16 {
		f16.RoundSlice(quant.Codebooks.Data, quant.Codebooks.Data)
	}

	idx := &Index{
		Metric:         metric,
		D:              data.Cols,
		Centroids:      centroids,
		PQ:             quant,
		Lists:          make([]List, cfg.NClusters),
		NTotal:         data.Rows,
		Rot:            rot,
		AnisotropicEta: cfg.AnisotropicEta,
		searcherPool:   &sync.Pool{},
	}
	// Encode every residual in parallel into a flat row-indexed staging
	// buffer (disjoint per-row regions, so no worker coordination), then
	// fill the lists serially in ascending row order — list contents are
	// byte-identical for any Workers value.
	cb := quant.CodeBytes()
	allCodes := make([]byte, data.Rows*cb)
	pq.EncodeBatchAnisotropic(allCodes, quant, resid, data, cfg.AnisotropicEta, cfg.Workers)
	listLen := make([]int, cfg.NClusters)
	for _, c := range coarse.Assign {
		listLen[c]++
	}
	for c, n := range listLen {
		if n > 0 {
			idx.Lists[c].IDs = make([]int64, 0, n)
			idx.Lists[c].Codes = make([]byte, 0, n*cb)
		}
	}
	for i := 0; i < data.Rows; i++ {
		lst := &idx.Lists[coarse.Assign[i]]
		lst.IDs = append(lst.IDs, int64(i))
		lst.Codes = append(lst.Codes, allCodes[i*cb:(i+1)*cb]...)
	}
	if cfg.Rerank {
		idx.enableRerank(data) // index-space (post-rotation) copies
	}
	idx.nextID = int64(data.Rows)
	return idx
}

// NClusters returns |C|.
func (x *Index) NClusters() int { return x.Centroids.Rows }

// NextID returns the ID the next Add will assign to its first vector.
// The durability layer records it in WAL entries so replay can detect
// records already covered by a snapshot.
func (x *Index) NextID() int64 { return x.nextID }

// PrepQuery returns the query in index space: a rotated copy when the
// index was built with Rotate, otherwise q itself.
func (x *Index) PrepQuery(q []float32) []float32 {
	if x.Rot == nil {
		return q
	}
	out := make([]float32, len(q))
	x.Rot.Apply(out, q)
	return out
}

// PrepQueries returns the query batch in index space (see PrepQuery).
// Execution engines call it once at entry so every later per-query use
// sees index-space vectors.
func (x *Index) PrepQueries(qm *vecmath.Matrix) *vecmath.Matrix {
	if x.Rot == nil {
		return qm
	}
	return x.Rot.ApplyAll(qm)
}

// Add encodes and appends new vectors to the index using the existing
// trained model (centroids, codebooks, rotation), returning the ID of
// the first added vector. IDs continue from the current NTotal. The
// batch is assigned and encoded in parallel (bounded by IngestWorkers)
// into per-row staging regions, then merged into the lists in ascending
// row order — the resulting lists are byte-identical for any worker
// count. It panics on dimension mismatch.
func (x *Index) Add(data *vecmath.Matrix) int64 {
	if data.Cols != x.D {
		panic(fmt.Sprintf("ivf: Add dimension %d, index %d", data.Cols, x.D))
	}
	if x.Rot != nil {
		data = x.Rot.ApplyAll(data)
	}
	first := x.nextID
	n := data.Rows
	if x.assigner == nil {
		x.assigner = kmeans.NewAssigner(x.Centroids)
	}
	assign := make([]int32, n)
	x.assigner.AssignBatch(assign, data, x.IngestWorkers)
	resid := vecmath.NewMatrix(n, x.D)
	par.Run(n, 1024, x.IngestWorkers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			vecmath.Sub(resid.Row(i), data.Row(i), x.Centroids.Row(int(assign[i])))
		}
	})
	cb := x.PQ.CodeBytes()
	codes := make([]byte, n*cb)
	pq.EncodeBatchAnisotropic(codes, x.PQ, resid, data, x.AnisotropicEta, x.IngestWorkers)
	for i := 0; i < n; i++ {
		lst := &x.Lists[assign[i]]
		lst.IDs = append(lst.IDs, first+int64(i))
		lst.Codes = append(lst.Codes, codes[i*cb:(i+1)*cb]...)
	}
	x.appendRerank(data, first)
	x.NTotal += n
	x.nextID += int64(n)
	return first
}

// CentroidScore returns the similarity of q to centroid c under the
// index metric (larger = more similar).
func (x *Index) CentroidScore(q []float32, c int) float32 {
	if x.Metric == pq.InnerProduct {
		return vecmath.Dot(q, x.Centroids.Row(c))
	}
	return -vecmath.L2Sq(q, x.Centroids.Row(c))
}

// SelectClusters performs search step 1 (cluster filtering): it returns
// the indices of the W centroids most similar to q, in descending
// similarity order. It allocates fresh scratch per call; hot paths reuse
// a ClusterSelection via SelectClustersBatch instead.
func (x *Index) SelectClusters(q []float32, w int) []int {
	cs := x.NewClusterSelection(w)
	x.SelectClustersBatch(cs, q)
	out := make([]int, len(cs.Clusters))
	copy(out, cs.Clusters)
	return out
}

// BuildLUT performs search step 2 (lookup table construction) for query q
// and cluster c. For inner product the table contents are
// cluster-independent and Bias carries the q·c term; for L2 the table is
// built from the residual q-c (Section II-C). scratch, if non-nil and of
// length D, avoids an allocation. When hwF16 is true the table is rounded
// through half precision as ANNA's 2-byte LUT SRAM would store it.
func (x *Index) BuildLUT(l *pq.LUT, q []float32, c int, scratch []float32, hwF16 bool) {
	if x.Metric == pq.InnerProduct {
		x.PQ.FillIP(l, q)
		l.Bias = vecmath.Dot(q, x.Centroids.Row(c))
	} else {
		if len(scratch) != x.D {
			scratch = make([]float32, x.D)
		}
		vecmath.Sub(scratch, q, x.Centroids.Row(c))
		x.PQ.FillL2(l, scratch)
	}
	if hwF16 {
		l.RoundF16()
	}
}

// RebiasLUT updates an inner-product LUT for a new cluster without
// refilling the tables (the reuse the paper highlights for IP search).
// It panics for L2 indexes, whose tables are cluster-dependent.
func (x *Index) RebiasLUT(l *pq.LUT, q []float32, c int, hwF16 bool) {
	if x.Metric != pq.InnerProduct {
		panic("ivf: RebiasLUT only valid for inner-product indexes")
	}
	l.Bias = vecmath.Dot(q, x.Centroids.Row(c))
	if hwF16 {
		l.Bias = f16.Round(l.Bias)
	}
}

// ScanList performs search step 3 (similarity computation) over cluster
// c's list, offering every vector to sel. codeBuf must have length M (it
// is the unpacker scratch). When hwF16 is true the final score is rounded
// to half precision as the hardware adder-tree output register would.
//
// This is the REFERENCE scan: one Unpack, one ADC and one Push per
// vector. The production path is ScanListADC (scan.go), which is proven
// bit-identical against this implementation by the tests.
func (x *Index) ScanList(sel *topk.Selector, l *pq.LUT, c int, codeBuf []byte, hwF16 bool) {
	lst := &x.Lists[c]
	cb := x.PQ.CodeBytes()
	filtered := len(x.deleted) > 0
	for i := 0; i < lst.Len(); i++ {
		if filtered {
			if _, dead := x.deleted[lst.IDs[i]]; dead {
				continue
			}
		}
		x.PQ.Unpack(codeBuf, lst.Codes[i*cb:])
		var s float32
		if hwF16 {
			s = l.ADCf16(codeBuf)
		} else {
			s = l.ADC(codeBuf)
		}
		sel.Push(lst.IDs[i], s)
	}
}

// SearchParams control a query.
type SearchParams struct {
	W int // clusters to inspect (nprobe)
	K int // results to return
	// HWF16 rounds LUT entries and scores through half precision,
	// matching the accelerator datapath bit-for-bit.
	HWF16 bool
}

// Search runs the full three-step search for a single query and returns
// the top-k results in descending similarity order, via the fused scan
// path (see scan.go). Callers issuing many queries should hold a
// Searcher to reuse its buffers across calls.
func (x *Index) Search(q []float32, p SearchParams) []topk.Result {
	var s *Searcher
	if x.searcherPool != nil {
		s, _ = x.searcherPool.Get().(*Searcher)
	}
	if s == nil || s.idx != x {
		// No pooled context (or one from a copied Index) — start fresh.
		s = x.NewSearcher()
	}
	res := s.Search(q, p)
	if x.searcherPool != nil {
		x.searcherPool.Put(s)
	}
	return res
}

// SearchReference is the unfused three-step search — per-row cluster
// scoring, per-vector Unpack+ADC, unconditional selector pushes. It is
// retained as the spec the fused path is tested bit-identical against.
func (x *Index) SearchReference(q []float32, p SearchParams) []topk.Result {
	if p.W <= 0 || p.K <= 0 {
		panic(fmt.Sprintf("ivf: invalid search params W=%d K=%d", p.W, p.K))
	}
	q = x.PrepQuery(q)
	if p.W > x.NClusters() {
		p.W = x.NClusters()
	}
	sel := topk.NewSelector(p.W)
	for c := 0; c < x.NClusters(); c++ {
		sel.Push(int64(c), x.CentroidScore(q, c))
	}
	clusters := make([]int, 0, p.W)
	for _, r := range sel.Results() {
		clusters = append(clusters, int(r.ID))
	}
	out := topk.NewSelector(p.K)
	lut := pq.NewLUT(x.PQ)
	scratch := make([]float32, x.D)
	codeBuf := make([]byte, x.PQ.M)

	if x.Metric == pq.InnerProduct {
		// Fill once, rebias per cluster (Section II-C reuse).
		x.PQ.FillIP(lut, q)
		if p.HWF16 {
			lut.RoundF16()
		}
		for _, c := range clusters {
			x.RebiasLUT(lut, q, c, p.HWF16)
			x.ScanList(out, lut, c, codeBuf, p.HWF16)
		}
	} else {
		for _, c := range clusters {
			x.BuildLUT(lut, q, c, scratch, p.HWF16)
			x.ScanList(out, lut, c, codeBuf, p.HWF16)
		}
	}
	return out.Results()
}

// ListBytes returns the packed code bytes of cluster c's list, the
// quantity the EFM fetches from main memory.
func (x *Index) ListBytes(c int) int64 {
	return int64(len(x.Lists[c].Codes))
}

// Stats summarises index shape for harness reports.
type Stats struct {
	NTotal, NClusters int
	MinList, MaxList  int
	MeanList          float64
	CodeBytes         int   // per vector
	TotalCodeBytes    int64 // whole database
	CentroidBytes     int64 // 2 bytes/element
	CodebookBytes     int64
	CompressionRatio  float64 // raw f16 size / code size
}

// ComputeStats returns index statistics.
func (x *Index) ComputeStats() Stats {
	st := Stats{
		NTotal:    x.NTotal,
		NClusters: x.NClusters(),
		CodeBytes: x.PQ.CodeBytes(),
		MinList:   int(^uint(0) >> 1),
	}
	for c := range x.Lists {
		n := x.Lists[c].Len()
		if n < st.MinList {
			st.MinList = n
		}
		if n > st.MaxList {
			st.MaxList = n
		}
		st.TotalCodeBytes += int64(len(x.Lists[c].Codes))
	}
	st.MeanList = float64(x.NTotal) / float64(x.NClusters())
	st.CentroidBytes = 2 * int64(x.Centroids.Rows) * int64(x.Centroids.Cols)
	st.CodebookBytes = int64(x.PQ.CodebookBytes())
	raw := 2 * int64(x.NTotal) * int64(x.D)
	if st.TotalCodeBytes > 0 {
		st.CompressionRatio = float64(raw) / float64(st.TotalCodeBytes)
	}
	return st
}
