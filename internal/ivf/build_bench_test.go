package ivf

// Build/ingest-path benchmarks. `cmd/benchjson -suite build` runs them
// (together with pq's BenchmarkEncodeBatch) and records before/after
// figures into BENCH_build.json at the repo root; the recorded "before"
// column is the serial pre-pipeline implementation measured on the same
// workload.

import (
	"testing"

	"anna/internal/dataset"
	"anna/internal/pq"
	"anna/internal/vecmath"
)

// benchBuildConfig is the BenchmarkBuild workload: a 100k-vector
// synthetic dataset under the ingest-benchmark shape (annatrain-style
// defaults scaled to D=32 so one serial build stays in benchmark
// territory: Ks=256 codebooks, 100 coarse clusters, subsampled
// training).
func benchBuildConfig() Config {
	return Config{
		NClusters:   100,
		M:           8,
		Ks:          256,
		CoarseIters: 8,
		PQIters:     8,
		MaxTrain:    20000,
		Seed:        1,
	}
}

func benchBuildData(n int, seed int64) *vecmath.Matrix {
	spec := dataset.SIFTLike(n, 1, seed)
	spec.D = 32
	return dataset.Generate(spec).Base
}

// BenchmarkBuild measures full index construction (coarse training, PQ
// training, residual encode) over 100k vectors with default Workers
// (GOMAXPROCS).
func BenchmarkBuild(b *testing.B) {
	data := benchBuildData(100000, 1)
	cfg := benchBuildConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(data, pq.L2, cfg)
	}
}

// BenchmarkAdd measures online ingest: encoding and appending a
// 1000-vector batch into an already-trained index (the WAL-acked /add
// path) with default Workers.
func BenchmarkAdd(b *testing.B) {
	data := benchBuildData(20000, 1)
	cfg := benchBuildConfig()
	cfg.MaxTrain = 10000
	idx := Build(data, pq.L2, cfg)
	batch := benchBuildData(1000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Add(batch)
	}
}
