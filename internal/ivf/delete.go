package ivf

import "fmt"

// Deletion uses tombstones: removed IDs stay in the inverted lists but
// are filtered at result collection, and Compact rewrites the lists to
// reclaim space. This mirrors production ANNS services, where codes are
// append-only on the fast path (ANNA's encoded-vector layout is a
// packed stream; in-place removal would reshuffle cluster extents).

// Delete tombstones the given vector IDs. Unknown or already-deleted IDs
// are ignored. It returns how many IDs were newly tombstoned.
func (x *Index) Delete(ids ...int64) int {
	if x.deleted == nil {
		x.deleted = make(map[int64]struct{})
	}
	n := 0
	for _, id := range ids {
		if id < 0 || id >= x.nextID {
			continue
		}
		if _, dup := x.deleted[id]; dup {
			continue
		}
		x.deleted[id] = struct{}{}
		n++
	}
	return n
}

// Deleted reports whether id is tombstoned.
func (x *Index) Deleted(id int64) bool {
	_, ok := x.deleted[id]
	return ok
}

// HasDeletions reports whether any tombstones exist (a cheap guard for
// scan loops).
func (x *Index) HasDeletions() bool { return len(x.deleted) > 0 }

// DeletedCount returns the number of tombstoned vectors.
func (x *Index) DeletedCount() int { return len(x.deleted) }

// Live returns the number of searchable vectors.
func (x *Index) Live() int { return x.NTotal - len(x.deleted) }

// Compact rewrites every inverted list without the tombstoned entries
// and clears the tombstone set. IDs are NOT renumbered — gaps remain, so
// external references stay valid (SQ rerank storage keeps its addressing
// too; reclaiming its rows would renumber). It returns the number of
// entries removed.
func (x *Index) Compact() int {
	if len(x.deleted) == 0 {
		return 0
	}
	cb := x.PQ.CodeBytes()
	removed := 0
	for c := range x.Lists {
		lst := &x.Lists[c]
		outIDs := lst.IDs[:0]
		outCodes := lst.Codes[:0]
		for i, id := range lst.IDs {
			if _, dead := x.deleted[id]; dead {
				removed++
				continue
			}
			outIDs = append(outIDs, id)
			outCodes = append(outCodes, lst.Codes[i*cb:(i+1)*cb]...)
		}
		lst.IDs = outIDs
		lst.Codes = outCodes
	}
	x.NTotal -= removed
	if x.SQ != nil && removed > 0 {
		// SQ storage is addressed by original ID; compacting the lists
		// does not move it. Verify the invariant that no live ID exceeds
		// the store.
		for c := range x.Lists {
			for _, id := range x.Lists[c].IDs {
				if id >= int64(x.SQ.N) {
					panic(fmt.Sprintf("ivf: live id %d beyond SQ store %d", id, x.SQ.N))
				}
			}
		}
	}
	x.deleted = nil
	return removed
}
