package ivf

import (
	"bytes"
	"testing"

	"anna/internal/dataset"
	"anna/internal/exact"
	"anna/internal/pq"
	"anna/internal/recall"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

func buildRotated(t *testing.T) (*Index, *dataset.Dataset) {
	t.Helper()
	spec := dataset.SIFTLike(2000, 16, 1)
	spec.D = 32
	ds := dataset.Generate(spec)
	idx := Build(ds.Base, pq.L2, Config{
		NClusters: 16, M: 8, Ks: 16, CoarseIters: 6, PQIters: 6, Seed: 3,
		Rotate: true,
	})
	return idx, ds
}

func TestRotatedIndexRecall(t *testing.T) {
	idx, ds := buildRotated(t)
	if idx.Rot == nil {
		t.Fatal("rotation not stored")
	}
	// Ground truth in the ORIGINAL space; rotation must be transparent.
	gt := exact.New(pq.L2, ds.Base).GroundTruth(ds.Queries, 10)
	got := make([][]topk.Result, ds.Queries.Rows)
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		got[qi] = idx.Search(ds.Queries.Row(qi), SearchParams{W: idx.NClusters(), K: 100})
	}
	if r := recall.Mean(10, 100, gt, got); r < 0.5 {
		t.Errorf("rotated-index recall 10@100 = %.2f, rotation not transparent?", r)
	}
}

func TestRotatedSaveLoad(t *testing.T) {
	idx, ds := buildRotated(t)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rot == nil {
		t.Fatal("rotation lost in serialization")
	}
	q := ds.Queries.Row(0)
	a := idx.Search(q, SearchParams{W: 8, K: 10})
	b := got.Search(q, SearchParams{W: 8, K: 10})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded rotated index differs at rank %d", i)
		}
	}
}

func TestPrepQueriesIdentityWithoutRotation(t *testing.T) {
	spec := dataset.SIFTLike(600, 4, 2)
	spec.D = 16
	ds := dataset.Generate(spec)
	idx := Build(ds.Base, pq.L2, Config{
		NClusters: 8, M: 4, Ks: 16, CoarseIters: 4, PQIters: 4, Seed: 1,
	})
	if got := idx.PrepQueries(ds.Queries); got != ds.Queries {
		t.Error("PrepQueries copied without rotation")
	}
	q := ds.Queries.Row(0)
	if got := idx.PrepQuery(q); &got[0] != &q[0] {
		t.Error("PrepQuery copied without rotation")
	}
}

func TestAddAppendsSearchableVectors(t *testing.T) {
	spec := dataset.SIFTLike(1500, 4, 5)
	spec.D = 32
	ds := dataset.Generate(spec)
	idx := Build(ds.Base, pq.L2, Config{
		NClusters: 12, M: 8, Ks: 16, CoarseIters: 5, PQIters: 5, Seed: 2,
	})
	before := idx.NTotal

	extraSpec := dataset.SIFTLike(200, 1, 6)
	extraSpec.D = 32
	extra := dataset.Generate(extraSpec).Base
	first := idx.Add(extra)
	if first != int64(before) {
		t.Fatalf("first ID = %d, want %d", first, before)
	}
	if idx.NTotal != before+200 {
		t.Fatalf("NTotal = %d", idx.NTotal)
	}

	// Every added vector is stored exactly once.
	count := 0
	for c := range idx.Lists {
		lst := &idx.Lists[c]
		if len(lst.Codes) != lst.Len()*idx.PQ.CodeBytes() {
			t.Fatalf("list %d codes inconsistent after Add", c)
		}
		for _, id := range lst.IDs {
			if id >= first {
				count++
			}
		}
	}
	if count != 200 {
		t.Fatalf("%d added vectors stored", count)
	}

	// Querying with an added vector finds it (or its quantization twin).
	q := extra.Row(7)
	res := idx.Search(q, SearchParams{W: idx.NClusters(), K: 5})
	found := false
	for _, r := range res {
		if r.ID == first+7 {
			found = true
		}
	}
	if !found {
		t.Errorf("added vector not retrieved: %+v", res)
	}
}

func TestAddWithRotation(t *testing.T) {
	idx, ds := buildRotated(t)
	extra := vecmath.NewMatrix(5, ds.D())
	for i := 0; i < 5; i++ {
		extra.SetRow(i, ds.Base.Row(i))
	}
	first := idx.Add(extra)
	// A duplicate of an existing vector lands in the same cluster and
	// must be retrievable by querying with the original-space vector.
	res := idx.Search(ds.Base.Row(0), SearchParams{W: idx.NClusters(), K: 10})
	found := false
	for _, r := range res {
		if r.ID == first || r.ID == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("rotated Add not retrievable: %+v", res)
	}
}

func TestAddPanicsOnDimMismatch(t *testing.T) {
	idx, _ := buildRotated(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	idx.Add(vecmath.NewMatrix(1, idx.D+1))
}
