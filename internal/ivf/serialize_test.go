package ivf

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anna/internal/wal/faultfs"
)

func TestSaveLoadV3RoundTrip(t *testing.T) {
	idx, ds := buildFeatureful(t)
	idx.Delete(3, 17, 41)

	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:8]); got != magicV3 {
		t.Fatalf("magic %q, want %q", got, magicV3)
	}
	if got := string(buf.Bytes()[buf.Len()-8:]); got != trailerV3 {
		t.Fatalf("trailer %q, want %q", got, trailerV3)
	}

	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NTotal != idx.NTotal || got.D != idx.D {
		t.Fatalf("geometry mismatch: N=%d D=%d", got.NTotal, got.D)
	}
	// Tombstones survive the round trip (they were silently dropped by
	// the v2 writer).
	for _, id := range []int64{3, 17, 41} {
		if !got.Deleted(id) {
			t.Fatalf("tombstone %d lost", id)
		}
	}
	if got.DeletedCount() != idx.DeletedCount() {
		t.Fatalf("deleted count %d, want %d", got.DeletedCount(), idx.DeletedCount())
	}
	if got.nextID != idx.nextID {
		t.Fatalf("nextID %d, want %d", got.nextID, idx.nextID)
	}
	sameSearchResults(t, idx, got, ds)
}

// TestSaveDeterministic: identical indexes serialize byte-identically
// (tombstones are emitted sorted, so map order cannot leak in).
func TestSaveDeterministic(t *testing.T) {
	idx, _ := buildFeatureful(t)
	idx.Delete(9, 2, 55, 31)
	var a, b bytes.Buffer
	if err := idx.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := idx.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same index differ")
	}
}

// TestLoadRejectsEveryCorruptByte is the property the checksummed format
// exists for: flip any single byte anywhere in the artifact and Load
// must return an error — never panic, never silently decode. The XOR
// with 0x01 also covers the nastiest flip, magic "ANNAIVF3" ->
// "ANNAIVF2" at offset 7, which routes the blob into the legacy parser.
func TestLoadRejectsEveryCorruptByte(t *testing.T) {
	idx, _ := buildFeatureful(t)
	idx.Delete(5)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("pristine blob must load: %v", err)
	}
	for _, mask := range []byte{0x01, 0xFF} {
		for off := range valid {
			mut := append([]byte(nil), valid...)
			mut[off] ^= mask
			if _, err := Load(bytes.NewReader(mut)); err == nil {
				t.Fatalf("byte %d ^ %#02x: corrupt blob loaded without error", off, mask)
			}
		}
	}
}

// TestLoadRejectsEveryBitFlip sweeps single-bit upsets across the whole
// artifact through the fault harness's corruptor.
func TestLoadRejectsEveryBitFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("bit-level sweep")
	}
	idx, _ := buildFeatureful(t)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for bit := int64(0); bit < int64(len(valid))*8; bit += 7 { // stride keeps it fast, offsets still cover every byte
		mut := faultfs.FlipBit(valid, bit)
		if _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit %d: corrupt blob loaded without error", bit)
		}
	}
}

func TestLoadRejectsEveryTruncation(t *testing.T) {
	idx, _ := buildFeatureful(t)
	idx.Delete(1, 2)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for n := 0; n < len(valid); n++ {
		if _, err := Load(bytes.NewReader(valid[:n])); err == nil {
			t.Fatalf("%d-byte truncation loaded without error", n)
		}
	}
}

func TestLoadFileRejectsTrailingGarbage(t *testing.T) {
	idx, _ := buildFeatureful(t)
	path := filepath.Join(t.TempDir(), "index.anna")
	if err := idx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := LoadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: got %v, want ErrCorrupt", err)
	}
}

func TestLoadErrorsAreTyped(t *testing.T) {
	for name, blob := range map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTANIDX________"),
		"truncated": []byte(magicV3),
	} {
		if _, err := Load(bytes.NewReader(blob)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// hostileHeader emits a well-checksummed ANNAIVF3 prefix with the given
// raw header fields, so validation — not a checksum mismatch — is what
// must reject it.
func hostileHeader(metric uint8, d uint32, nTotal uint64, nc, m, ks uint32) []byte {
	var b bytes.Buffer
	b.WriteString(magicV3)
	b.WriteByte(metric)
	le := func(v any) { binary.Write(&b, binary.LittleEndian, v) }
	le(d)
	le(nTotal)
	le(nc)
	le(m)
	le(ks)
	b.WriteByte(0) // hasRot
	le(uint32(0))  // eta bits
	b.WriteByte(0) // hasSQ
	crc := crc32.Checksum(b.Bytes(), castagnoli)
	le(crc)
	return b.Bytes()
}

// TestLoadRejectsHostileHeaders: implausible counts must be refused
// before any count-derived allocation. The old loader would attempt the
// multi-GB make() (or overflow D*D) first; run with -timeout to catch
// regressions as OOM/panic, and assert the typed error here.
func TestLoadRejectsHostileHeaders(t *testing.T) {
	cases := map[string][]byte{
		"oversized dim":      hostileHeader(0, maxDim+1, 100, 4, 4, 16),
		"oversized clusters": hostileHeader(0, 16, 100, maxClusters+1, 4, 16),
		"oversized vectors":  hostileHeader(0, 16, maxVectors+1, 4, 4, 16),
		"zero dim":           hostileHeader(0, 0, 100, 4, 4, 16),
		"m not dividing d":   hostileHeader(0, 16, 100, 4, 3, 16),
		"ks out of range":    hostileHeader(0, 16, 100, 4, 4, 257),
		"bad metric":         hostileHeader(2, 16, 100, 4, 4, 16),
		// Counts inside the caps but far beyond the bytes present: the
		// size-bounded path must refuse, the stream path must not
		// pre-allocate ahead of the bytes actually read.
		"counts exceed input": hostileHeader(0, 1024, 1<<30, 1<<20, 4, 16),
	}
	for name, blob := range cases {
		if _, err := Load(bytes.NewReader(blob)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: got %v, want ErrCorrupt", name, err)
		}
		path := filepath.Join(t.TempDir(), "hostile.anna")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s (file): got %v, want ErrCorrupt", name, err)
		}
	}
}

// TestLoadRejectsHostileV2Headers covers the legacy parser with the same
// attacks — this is the unvalidated-size bug fix.
func TestLoadRejectsHostileV2Headers(t *testing.T) {
	v2Header := func(d uint32, nTotal uint64, nc uint32) []byte {
		var b bytes.Buffer
		b.WriteString(magicV2)
		b.WriteByte(0)
		le := func(v any) { binary.Write(&b, binary.LittleEndian, v) }
		le(d)
		le(nTotal)
		le(nc)
		le(uint32(4))  // m
		le(uint32(16)) // ks
		b.WriteByte(0) // hasRot
		return b.Bytes()
	}
	cases := map[string][]byte{
		"giant dim (d*d overflows int32)": v2Header(1<<31-1, 100, 4),
		"giant cluster count":             v2Header(16, 100, 1<<31-1),
		"giant vector count":              v2Header(16, 1<<60, 4),
	}
	for name, blob := range cases {
		if _, err := Load(bytes.NewReader(blob)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// TestSaveFileAtomic: an interrupted save must never damage the
// previous artifact, and a successful one must leave no temp files.
func TestSaveFileAtomic(t *testing.T) {
	idx, ds := buildFeatureful(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.anna")
	if err := idx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place: the rename swaps a fully-written temp file in.
	idx.Delete(7)
	if err := idx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Deleted(7) {
		t.Fatal("second save not visible after load")
	}
	sameSearchResults(t, idx, got, ds)
}

// TestSavePropagatesWriteErrors drives Save into the harness's failing
// writer at several cut points: the error must surface, not vanish into
// a silently truncated artifact.
func TestSavePropagatesWriteErrors(t *testing.T) {
	idx, _ := buildFeatureful(t)
	var full bytes.Buffer
	if err := idx.Save(&full); err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{0, 1, 8, 100, full.Len() / 2, full.Len() - 1} {
		w := &faultfs.Writer{Limit: limit}
		if err := idx.Save(w); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("limit %d: got %v, want ErrInjected", limit, err)
		}
	}
}
