package ivf

// Adaptive per-query effort (ROADMAP open item 4): the fused search of
// scan.go with two policies from internal/adaptive threaded through it.
//
//   - Early termination: clusters are scanned in selection order (most
//     similar centroid first), and the scan stops once the selector's
//     kth score has gone StopPatience consecutive clusters without
//     improving. The stop test rides the Selector.Threshold() value the
//     scan kernel already maintains, so it costs one comparison per
//     cluster.
//   - Precision escalation: the cheap 4-bit/f16 PQ scan keeps an
//     inflated candidate set (K*EscalateFactor), and only the margin
//     band among them — candidates whose approximate score lies within
//     Margin*(top1-kth) of the kth — is re-scored in full float32
//     precision against the SQ8 reconstructions (the SearchRerank
//     machinery). The final top-K comes from the re-scored band.
//
// Recall contract (replaces the fixed path's bit-exactness guarantee):
// with both policies disabled the results are bit-identical to
// SearchPreppedStats (pinned by TestAdaptiveDisabledBitIdentical).
// With termination enabled, the result set is the fixed-W result set
// minus anything only found in clusters past the stop point — on
// clustered data the kth score stabilizes after a few lists, so the
// loss is bounded by the patience knob. With escalation enabled, the
// returned top-K is the EXACT float32 ordering over the escalation
// band, which always contains the approximate top-K; PQ ordering errors
// inside the band are corrected, errors that kept a true neighbor out
// of the wide candidate set entirely are not. Deleted IDs can never
// resurface: escalation re-scores only candidates that survived the
// tombstone-gated list scan.

import (
	"time"

	"anna/internal/adaptive"
	"anna/internal/pq"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// SearchAdaptive is SearchAdaptiveStats without caller-visible stats.
func (s *Searcher) SearchAdaptive(q []float32, p SearchParams, ap adaptive.Params) []topk.Result {
	var st ScanStats
	return s.SearchAdaptiveStats(nil, q, p, ap, &st)
}

// SearchAdaptiveStats runs the fused search with adaptive per-query
// effort, appending the top-K into dst and accumulating work counters
// into st. Like SearchPrepped, q must already be in index space (the
// engine rotates batches up front). Escalation silently degrades to the
// plain PQ ordering when the index retains no SQ8 store.
func (s *Searcher) SearchAdaptiveStats(dst []topk.Result, q []float32, p SearchParams, ap adaptive.Params, st *ScanStats) []topk.Result {
	x := s.idx
	escalate := ap.EscalateFactor > 1 && x.SQ != nil
	inner := p
	if escalate {
		inner.K = p.K * ap.EscalateFactor
	}
	s.prepare(inner)
	t0 := time.Now()
	x.SelectClustersBatch(s.cs, q)
	t1 := time.Now()
	st.Select += t1.Sub(t0)

	s.term.Patience = ap.StopPatience
	s.term.MinClusters = ap.MinClusters
	s.term.Reset()
	if x.Metric == pq.InnerProduct {
		x.PQ.FillIP(s.lut, q)
		if p.HWF16 {
			s.lut.RoundF16()
		}
		for i, c := range s.cs.Clusters {
			x.RebiasLUTFromScore(s.lut, s.cs.Scores[i], p.HWF16)
			x.ScanListADC(s.sel, s.lut, c, p.HWF16)
			st.Scanned += int64(x.Lists[c].Len())
			st.ListBytes += x.ListBytes(c)
			st.Clusters++
			if kth, full := s.sel.Threshold(); s.term.Observe(kth, full) {
				break
			}
		}
	} else {
		for _, c := range s.cs.Clusters {
			x.BuildLUT(s.lut, q, c, s.scratch, p.HWF16)
			x.ScanListADC(s.sel, s.lut, c, p.HWF16)
			st.Scanned += int64(x.Lists[c].Len())
			st.ListBytes += x.ListBytes(c)
			st.Clusters++
			if kth, full := s.sel.Threshold(); s.term.Observe(kth, full) {
				break
			}
		}
	}
	t2 := time.Now()
	st.Scan += t2.Sub(t1)

	if !escalate {
		res := s.sel.ResultsAppend(dst)
		st.Merge += time.Since(t2)
		return res
	}

	// Escalation: drain the wide selector (descending approximate
	// score), cut the margin band, and re-score the band in float32
	// against the SQ8 reconstructions. Only re-scored candidates can
	// reach the final top-K, so the returned order is exact over the
	// band.
	s.escCands = s.sel.ResultsAppend(s.escCands[:0])
	band := adaptive.Band(s.escCands, p.K, ap.Margin)
	if s.escSel == nil || s.escSel.K() != p.K {
		s.escSel = topk.NewSelector(p.K)
	} else {
		s.escSel.Reset()
	}
	if len(s.escDec) != x.D {
		s.escDec = make([]float32, x.D)
	}
	for _, c := range s.escCands[:band] {
		x.SQ.Decode(s.escDec, int(c.ID))
		var sc float32
		if x.Metric == pq.InnerProduct {
			sc = vecmath.Dot(q, s.escDec)
		} else {
			sc = -vecmath.L2Sq(q, s.escDec)
		}
		s.escSel.Push(c.ID, sc)
	}
	st.Escalated += int64(band)
	t3 := time.Now()
	st.Rerank += t3.Sub(t2)
	res := s.escSel.ResultsAppend(dst)
	st.Merge += time.Since(t3)
	return res
}
