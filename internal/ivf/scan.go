package ivf

// Fused search path: batched cluster filtering plus the allocation-free
// packed-code scan kernel of internal/pq. Search (and the CPU engine's
// workers) run entirely through this file; ScanList in ivf.go remains the
// reference implementation the kernels are proven bit-identical against.

import (
	"fmt"
	"time"

	"anna/internal/adaptive"
	"anna/internal/f16"
	"anna/internal/pq"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// ClusterSelection is the reusable scratch for batched cluster filtering
// (search step 1). One instance serves any number of sequential queries
// without allocating; each engine worker owns one.
type ClusterSelection struct {
	w       int
	scores  []float32 // |C| centroid scores, filled by a batched kernel
	sel     *topk.Selector
	results []topk.Result

	// Clusters holds the selected cluster indices in descending
	// similarity order after SelectClustersBatch; Scores holds the
	// matching centroid scores (q·c for inner product, -||q-c||² for L2).
	Clusters []int
	Scores   []float32
}

// NewClusterSelection returns scratch for selecting the top w of the
// index's clusters (w is clamped to |C|).
func (x *Index) NewClusterSelection(w int) *ClusterSelection {
	if w > x.NClusters() {
		w = x.NClusters()
	}
	if w <= 0 {
		panic(fmt.Sprintf("ivf: NewClusterSelection w=%d", w))
	}
	return &ClusterSelection{
		w:        w,
		scores:   make([]float32, x.NClusters()),
		sel:      topk.NewSelector(w),
		results:  make([]topk.Result, 0, w),
		Clusters: make([]int, 0, w),
		Scores:   make([]float32, 0, w),
	}
}

// SelectClustersBatch performs search step 1 with batched centroid
// scoring: one DotBatch/L2SqBatch sweep over the centroid matrix into the
// reusable scratch instead of |C| per-row calls. The selected clusters
// (and their scores) land in cs.Clusters/cs.Scores, bit-identical to
// SelectClusters' per-row loop.
func (x *Index) SelectClustersBatch(cs *ClusterSelection, q []float32) {
	if x.Metric == pq.InnerProduct {
		vecmath.DotBatch(cs.scores, x.Centroids, q)
	} else {
		vecmath.L2SqBatch(cs.scores, x.Centroids, q)
		for i, s := range cs.scores {
			cs.scores[i] = -s
		}
	}
	cs.sel.Reset()
	for c, s := range cs.scores {
		cs.sel.Push(int64(c), s)
	}
	cs.results = cs.sel.ResultsAppend(cs.results[:0])
	cs.Clusters = cs.Clusters[:0]
	cs.Scores = cs.Scores[:0]
	for _, r := range cs.results {
		cs.Clusters = append(cs.Clusters, int(r.ID))
		cs.Scores = append(cs.Scores, r.Score)
	}
}

// RebiasLUTFromScore is RebiasLUT fed by a centroid score that cluster
// filtering already computed (the score IS q·c for inner-product
// indexes), skipping the D-wide dot product. It panics for L2 indexes.
func (x *Index) RebiasLUTFromScore(l *pq.LUT, score float32, hwF16 bool) {
	if x.Metric != pq.InnerProduct {
		panic("ivf: RebiasLUTFromScore only valid for inner-product indexes")
	}
	l.Bias = score
	if hwF16 {
		l.Bias = f16.Round(l.Bias)
	}
}

// ScanListADC is the fused version of ScanList (search step 3): it walks
// cluster c's packed codes directly — no per-vector Unpack — and offers a
// candidate to sel only when its score beats the selector's current
// threshold. Results are bit-identical to ScanList for both metrics, both
// code widths and both rounding modes, with or without tombstones.
func (x *Index) ScanListADC(sel *topk.Selector, l *pq.LUT, c int, hwF16 bool) {
	lst := &x.Lists[c]
	cb := x.PQ.CodeBytes()
	nibble := x.PQ.CodeBits() == 4
	if len(x.deleted) == 0 {
		l.ScanADC(sel, lst.IDs, lst.Codes, cb, nibble, hwF16)
		return
	}
	// Tombstone path: same kernel arithmetic, gated per vector.
	thresh, full := sel.Threshold()
	for i, id := range lst.IDs {
		if _, dead := x.deleted[id]; dead {
			continue
		}
		s := l.ADCPacked(lst.Codes[i*cb:], nibble)
		if hwF16 {
			s = f16.Round(s)
		}
		if full && s <= thresh {
			continue
		}
		sel.Push(id, s)
		thresh, full = sel.Threshold()
	}
}

// Searcher bundles every per-thread buffer a fused search needs — cluster
// selection scratch, LUT, residual scratch, rotation scratch and top-k
// selector — so repeated searches allocate nothing beyond the returned
// result slice (and not even that via SearchAppend). A Searcher is NOT
// safe for concurrent use; create one per goroutine.
type Searcher struct {
	idx     *Index
	cs      *ClusterSelection
	lut     *pq.LUT
	scratch []float32 // residual q-c for L2 LUT fills
	rotBuf  []float32 // OPQ-rotated query
	sel     *topk.Selector

	// Adaptive-path scratch (see adaptive.go): early-termination state,
	// the drained wide candidate list, the escalation selector and the
	// SQ8 decode buffer. Unused (nil) on the fixed path.
	term     adaptive.Termination
	escCands []topk.Result
	escSel   *topk.Selector
	escDec   []float32
}

// NewSearcher returns a reusable fused-search context over x. Buffers are
// sized lazily from the first query's parameters and re-sized only when
// the parameters change.
func (x *Index) NewSearcher() *Searcher { return &Searcher{idx: x} }

func (s *Searcher) prepare(p SearchParams) {
	if p.W <= 0 || p.K <= 0 {
		panic(fmt.Sprintf("ivf: invalid search params W=%d K=%d", p.W, p.K))
	}
	w := p.W
	if w > s.idx.NClusters() {
		w = s.idx.NClusters()
	}
	if s.cs == nil || s.cs.w != w {
		s.cs = s.idx.NewClusterSelection(w)
	}
	if s.sel == nil || s.sel.K() != p.K {
		s.sel = topk.NewSelector(p.K)
	} else {
		s.sel.Reset()
	}
	if s.lut == nil {
		s.lut = pq.NewLUT(s.idx.PQ)
	}
	if len(s.scratch) != s.idx.D {
		s.scratch = make([]float32, s.idx.D)
	}
}

// ScanStats accumulates the work and per-stage wall time of fused
// searches run through one Searcher. Scanned counts (query, vector)
// similarity computations (list lengths, tombstones included, matching
// the engine's accounting); ListBytes counts inverted-list code bytes
// read. Select/Scan/Merge split each search into the paper's three
// stages: cluster filtering, LUT build + list scan, and the final top-k
// result merge. The struct is accumulated across calls so a worker can
// report once per batch; zero it to restart.
type ScanStats struct {
	Scanned   int64
	ListBytes int64
	// Clusters counts inverted lists actually scanned — W per query on
	// the fixed path, possibly fewer under adaptive early termination.
	Clusters int64
	// Escalated counts candidates re-scored through the SQ8 escalation
	// band (zero on the fixed path); Rerank is the time that took.
	Escalated int64
	Select    time.Duration
	Scan      time.Duration
	Rerank    time.Duration
	Merge     time.Duration
}

// Add accumulates o into s.
func (s *ScanStats) Add(o ScanStats) {
	s.Scanned += o.Scanned
	s.ListBytes += o.ListBytes
	s.Clusters += o.Clusters
	s.Escalated += o.Escalated
	s.Select += o.Select
	s.Scan += o.Scan
	s.Rerank += o.Rerank
	s.Merge += o.Merge
}

// Search runs the fused three-step search for one query, returning the
// top-k in descending similarity order. Results are bit-identical to the
// reference Index.Search.
func (s *Searcher) Search(q []float32, p SearchParams) []topk.Result {
	res, _, _ := s.SearchAppend(nil, q, p)
	return res
}

// SearchAppend is Search appending into dst (pass a zero-length slice
// with capacity K for an allocation-free call). It also reports the scan
// work done: vectors scored and inverted-list code bytes read.
func (s *Searcher) SearchAppend(dst []topk.Result, q []float32, p SearchParams) (res []topk.Result, scanned, listBytes int64) {
	if s.idx.Rot != nil {
		if len(s.rotBuf) != s.idx.D {
			s.rotBuf = make([]float32, s.idx.D)
		}
		s.idx.Rot.Apply(s.rotBuf, q)
		q = s.rotBuf
	}
	return s.searchPrepped(dst, q, p)
}

// SearchPrepped is SearchAppend for a query already in index space (the
// engine rotates whole batches up front via PrepQueries).
func (s *Searcher) SearchPrepped(dst []topk.Result, q []float32, p SearchParams) (res []topk.Result, scanned, listBytes int64) {
	return s.searchPrepped(dst, q, p)
}

func (s *Searcher) searchPrepped(dst []topk.Result, q []float32, p SearchParams) (res []topk.Result, scanned, listBytes int64) {
	var st ScanStats
	res = s.SearchPreppedStats(dst, q, p, &st)
	return res, st.Scanned, st.ListBytes
}

// SearchPreppedStats is SearchPrepped accumulating work counters AND
// per-stage wall time into st (which must be non-nil). The three
// time.Now() calls cost ~100ns against a query's hundreds of
// microseconds, so the instrumented path IS the production path.
func (s *Searcher) SearchPreppedStats(dst []topk.Result, q []float32, p SearchParams, st *ScanStats) []topk.Result {
	s.prepare(p)
	x := s.idx
	t0 := time.Now()
	x.SelectClustersBatch(s.cs, q)
	t1 := time.Now()
	st.Select += t1.Sub(t0)
	if x.Metric == pq.InnerProduct {
		// Fill once, rebias per cluster from the phase-1 centroid score.
		x.PQ.FillIP(s.lut, q)
		if p.HWF16 {
			s.lut.RoundF16()
		}
		for i, c := range s.cs.Clusters {
			x.RebiasLUTFromScore(s.lut, s.cs.Scores[i], p.HWF16)
			x.ScanListADC(s.sel, s.lut, c, p.HWF16)
			st.Scanned += int64(x.Lists[c].Len())
			st.ListBytes += x.ListBytes(c)
		}
	} else {
		for _, c := range s.cs.Clusters {
			x.BuildLUT(s.lut, q, c, s.scratch, p.HWF16)
			x.ScanListADC(s.sel, s.lut, c, p.HWF16)
			st.Scanned += int64(x.Lists[c].Len())
			st.ListBytes += x.ListBytes(c)
		}
	}
	st.Clusters += int64(len(s.cs.Clusters))
	t2 := time.Now()
	st.Scan += t2.Sub(t1)
	res := s.sel.ResultsAppend(dst)
	st.Merge += time.Since(t2)
	return res
}
