package ivf

import (
	"bytes"
	"testing"

	"anna/internal/dataset"
	"anna/internal/exact"
	"anna/internal/pq"
	"anna/internal/recall"
	"anna/internal/topk"
)

// ScaNN's score-aware objective must improve MIPS recall at equal
// compression — the reason ScaNN16 can match Faiss256's quality in some
// of the paper's plots.
func TestAnisotropicImprovesMIPSRecall(t *testing.T) {
	ds := dataset.Generate(dataset.GloVeLike(6000, 32, 1))
	gt := exact.New(pq.InnerProduct, ds.Base).GroundTruth(ds.Queries, 10)

	measure := func(eta float32) float64 {
		idx := Build(ds.Base, pq.InnerProduct, Config{
			NClusters: 40, M: 25, Ks: 16, CoarseIters: 6, PQIters: 6, Seed: 3,
			AnisotropicEta: eta,
		})
		got := make([][]topk.Result, ds.Queries.Rows)
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			got[qi] = idx.Search(ds.Queries.Row(qi), SearchParams{W: 8, K: 100})
		}
		return recall.Mean(10, 100, gt, got)
	}

	plain := measure(0)
	aniso := measure(4)
	if aniso <= plain {
		t.Errorf("anisotropic recall %.3f not above plain %.3f", aniso, plain)
	}
}

func TestAnisotropicEtaSurvivesSaveLoadAndAdd(t *testing.T) {
	spec := dataset.GloVeLike(1500, 4, 2)
	ds := dataset.Generate(spec)
	idx := Build(ds.Base, pq.InnerProduct, Config{
		NClusters: 10, M: 20, Ks: 16, CoarseIters: 4, PQIters: 4, Seed: 1,
		AnisotropicEta: 4,
	})
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.AnisotropicEta != 4 {
		t.Fatalf("eta lost: %v", got.AnisotropicEta)
	}

	// Add on the loaded index uses the anisotropic objective: adding the
	// same vector to both indexes must produce identical codes.
	extra := ds.Queries
	firstA := idx.Add(extra)
	firstB := got.Add(extra)
	if firstA != firstB {
		t.Fatalf("IDs diverged: %d vs %d", firstA, firstB)
	}
	for c := range idx.Lists {
		a, b := idx.Lists[c], got.Lists[c]
		if len(a.Codes) != len(b.Codes) {
			t.Fatalf("cluster %d code lengths differ after Add", c)
		}
		for i := range a.Codes {
			if a.Codes[i] != b.Codes[i] {
				t.Fatalf("cluster %d codes differ after Add", c)
			}
		}
	}
}
