package ivf

import (
	"path/filepath"
	"testing"

	"anna/internal/pq"
	"anna/internal/vecmath"
)

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	path := filepath.Join(t.TempDir(), "x.anna")
	if err := idx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Queries.Row(0)
	a := idx.Search(q, SearchParams{W: 4, K: 5})
	b := got.Search(q, SearchParams{W: 4, K: 5})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("file round trip differs at %d", i)
		}
	}
	if err := idx.SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Error("SaveFile to missing directory succeeded")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("LoadFile of missing path succeeded")
	}
}

func TestListBytes(t *testing.T) {
	idx, _ := buildSmall(t, pq.L2)
	for c := 0; c < idx.NClusters(); c++ {
		want := int64(idx.Lists[c].Len() * idx.PQ.CodeBytes())
		if got := idx.ListBytes(c); got != want {
			t.Fatalf("ListBytes(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestBuildLUTScratchAllocation(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	q := ds.Queries.Row(0)
	lut := pq.NewLUT(idx.PQ)
	// nil scratch must work (allocates internally).
	idx.BuildLUT(lut, q, 0, nil, false)
	ref := pq.NewLUT(idx.PQ)
	scratch := make([]float32, idx.D)
	idx.BuildLUT(ref, q, 0, scratch, false)
	for i := range ref.Values {
		if lut.Values[i] != ref.Values[i] {
			t.Fatalf("nil-scratch LUT differs at %d", i)
		}
	}
}

func TestPrepQueriesWithRotationCopies(t *testing.T) {
	idx, ds := buildRotated(t)
	out := idx.PrepQueries(ds.Queries)
	if out == ds.Queries {
		t.Fatal("rotation returned the input matrix")
	}
	if out.Rows != ds.Queries.Rows || out.Cols != ds.Queries.Cols {
		t.Fatalf("shape %dx%d", out.Rows, out.Cols)
	}
	// Rotation preserves norms.
	for r := 0; r < out.Rows; r++ {
		a := vecmath.Norm(ds.Queries.Row(r))
		b := vecmath.Norm(out.Row(r))
		if diff := a - b; diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("row %d norm changed: %v vs %v", r, a, b)
		}
	}
}
