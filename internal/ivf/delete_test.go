package ivf

import (
	"bytes"
	"testing"

	"anna/internal/pq"
	"anna/internal/vecmath"
)

func TestDeleteHidesFromResults(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	q := ds.Base.Row(42)
	before := idx.Search(q, SearchParams{W: idx.NClusters(), K: 20})
	present := false
	for _, r := range before {
		if r.ID == 42 {
			present = true
		}
	}
	if !present {
		t.Fatalf("self-query did not surface 42 before delete: %+v", before[:5])
	}
	if n := idx.Delete(42); n != 1 {
		t.Fatalf("Delete returned %d", n)
	}
	if !idx.Deleted(42) || !idx.HasDeletions() {
		t.Fatal("tombstone not recorded")
	}
	after := idx.Search(q, SearchParams{W: idx.NClusters(), K: 20})
	for _, r := range after {
		if r.ID == 42 {
			t.Fatalf("deleted vector still returned: %+v", after)
		}
	}
	if idx.Live() != idx.NTotal-1 {
		t.Errorf("Live = %d", idx.Live())
	}
	// Duplicate and out-of-range deletes are ignored.
	if n := idx.Delete(42, -1, 1<<40); n != 0 {
		t.Errorf("bogus Delete returned %d", n)
	}
}

func TestCompactReclaimsAndPreservesResults(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	total := idx.NTotal
	idx.Delete(1, 2, 3, 500, 999)
	q := ds.Queries.Row(0)
	before := idx.Search(q, SearchParams{W: 8, K: 10})

	removed := idx.Compact()
	if removed != 5 {
		t.Fatalf("Compact removed %d, want 5", removed)
	}
	if idx.NTotal != total-5 || idx.DeletedCount() != 0 {
		t.Fatalf("NTotal=%d deleted=%d after compact", idx.NTotal, idx.DeletedCount())
	}
	after := idx.Search(q, SearchParams{W: 8, K: 10})
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("compact changed results at rank %d: %+v vs %+v", i, before[i], after[i])
		}
	}
	// Idempotent.
	if idx.Compact() != 0 {
		t.Error("second Compact removed entries")
	}
	// List storage is consistent.
	for c := range idx.Lists {
		if len(idx.Lists[c].Codes) != idx.Lists[c].Len()*idx.PQ.CodeBytes() {
			t.Fatalf("cluster %d storage inconsistent after compact", c)
		}
	}
}

func TestAddAfterCompactDoesNotReuseIDs(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	total := int64(idx.NTotal)
	idx.Delete(0, 1, 2)
	idx.Compact()

	extra := vecmath.NewMatrix(4, ds.D())
	for i := 0; i < 4; i++ {
		extra.SetRow(i, ds.Base.Row(100+i))
	}
	first := idx.Add(extra)
	if first != total {
		t.Fatalf("Add after Compact assigned %d, want %d (no reuse of live IDs)", first, total)
	}
	// No duplicate IDs anywhere.
	seen := map[int64]bool{}
	for c := range idx.Lists {
		for _, id := range idx.Lists[c].IDs {
			if seen[id] {
				t.Fatalf("duplicate ID %d after compact+add", id)
			}
			seen[id] = true
		}
	}
}

func TestCompactSurvivesSaveLoad(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	idx.Delete(5, 6, 7)
	idx.Compact()
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// nextID reconstructed as maxID+1, so Add cannot collide.
	extra := vecmath.NewMatrix(1, ds.D())
	extra.SetRow(0, ds.Base.Row(9))
	first := got.Add(extra)
	if first != idx.nextID {
		t.Fatalf("loaded Add assigned %d, want %d", first, idx.nextID)
	}
}

func TestDeleteVisibleToAccelScan(t *testing.T) {
	// The tombstone filter also applies through ScanList with a fresh
	// selector (the path engine and simulator share).
	idx, ds := buildSmall(t, pq.L2)
	idx.Delete(int64(ds.Base.Rows - 1))
	res := idx.Search(ds.Base.Row(ds.Base.Rows-1), SearchParams{W: idx.NClusters(), K: 3})
	for _, r := range res {
		if r.ID == int64(ds.Base.Rows-1) {
			t.Fatal("tombstoned ID surfaced")
		}
	}
}
