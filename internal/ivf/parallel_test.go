package ivf

import (
	"bytes"
	"fmt"
	"testing"

	"anna/internal/dataset"
	"anna/internal/pq"
	"anna/internal/vecmath"
)

// sameIndex fails the test unless a and b hold the identical trained
// model and byte-identical inverted lists.
func sameIndex(t *testing.T, label string, a, b *Index) {
	t.Helper()
	for i := range a.Centroids.Data {
		if a.Centroids.Data[i] != b.Centroids.Data[i] {
			t.Fatalf("%s: centroids differ at %d", label, i)
		}
	}
	for i := range a.PQ.Codebooks.Data {
		if a.PQ.Codebooks.Data[i] != b.PQ.Codebooks.Data[i] {
			t.Fatalf("%s: codebooks differ at %d", label, i)
		}
	}
	if len(a.Lists) != len(b.Lists) {
		t.Fatalf("%s: %d vs %d lists", label, len(a.Lists), len(b.Lists))
	}
	for c := range a.Lists {
		la, lb := &a.Lists[c], &b.Lists[c]
		if len(la.IDs) != len(lb.IDs) {
			t.Fatalf("%s: list %d holds %d vs %d vectors", label, c, len(la.IDs), len(lb.IDs))
		}
		for i := range la.IDs {
			if la.IDs[i] != lb.IDs[i] {
				t.Fatalf("%s: list %d IDs differ at %d", label, c, i)
			}
		}
		if !bytes.Equal(la.Codes, lb.Codes) {
			t.Fatalf("%s: list %d codes differ", label, c)
		}
	}
}

// buildCases is the determinism matrix: metric × Ks crossed with the
// rotation, anisotropic, and f16 build variants.
func buildCases() []Config {
	base := Config{NClusters: 12, M: 8, Ks: 16, CoarseIters: 5, PQIters: 5, Seed: 3}
	var cases []Config
	// Two configs per metric (the metric itself is not part of Config;
	// caseMetric maps case index → metric passed to Build).
	for range []pq.Metric{pq.L2, pq.InnerProduct} {
		for _, ks := range []int{16, 256} {
			c := base
			c.Ks = ks
			cases = append(cases, c)
		}
	}
	rot := base
	rot.Rotate = true
	cases = append(cases, rot)
	aniso := base
	aniso.Ks = 256
	aniso.AnisotropicEta = 2
	cases = append(cases, aniso)
	both := base
	both.Rotate = true
	both.AnisotropicEta = 2
	cases = append(cases, both)
	f16 := base
	f16.Ks = 256
	f16.F16 = true
	cases = append(cases, f16)
	return cases
}

func caseMetric(i int) pq.Metric {
	// The first four cases alternate metrics; the variants use L2.
	if i == 2 || i == 3 {
		return pq.InnerProduct
	}
	return pq.L2
}

// Build must produce a byte-identical index — trained model and inverted
// lists — for any Workers value, across the full configuration matrix.
func TestBuildBitIdenticalAcrossWorkers(t *testing.T) {
	spec := dataset.SIFTLike(1500, 1, 5)
	spec.D = 32
	data := dataset.Generate(spec).Base
	for i, cfg := range buildCases() {
		metric := caseMetric(i)
		cfg.Workers = 1
		ref := Build(data, metric, cfg)
		for _, w := range []int{4, 7} {
			c := cfg
			c.Workers = w
			got := Build(data, metric, c)
			sameIndex(t, fmt.Sprintf("case %d (ks=%d rot=%v eta=%v f16=%v) workers=%d",
				i, cfg.Ks, cfg.Rotate, cfg.AnisotropicEta, cfg.F16, w), ref, got)
		}
	}
}

// Add must extend the lists identically for any IngestWorkers value.
func TestAddBitIdenticalAcrossWorkers(t *testing.T) {
	spec := dataset.SIFTLike(1200, 1, 6)
	spec.D = 32
	data := dataset.Generate(spec).Base
	batchSpec := dataset.SIFTLike(500, 1, 7)
	batchSpec.D = 32
	batch := dataset.Generate(batchSpec).Base

	for _, cfg := range []Config{
		{NClusters: 10, M: 8, Ks: 16, CoarseIters: 5, PQIters: 5, Seed: 4},
		{NClusters: 10, M: 8, Ks: 256, CoarseIters: 5, PQIters: 5, Seed: 4, Rotate: true, AnisotropicEta: 2},
	} {
		ref := Build(data, pq.L2, cfg)
		ref.IngestWorkers = 1
		ref.Add(batch)
		for _, w := range []int{3, 8} {
			got := Build(data, pq.L2, cfg)
			got.IngestWorkers = w
			got.Add(batch)
			sameIndex(t, fmt.Sprintf("ks=%d ingestWorkers=%d", cfg.Ks, w), ref, got)
		}
	}
}

// Empty clusters must keep nil list slices (not zero-length allocations),
// matching what the serial append-based build produced — serialization
// and comparison code rely on it.
func TestBuildEmptyListsStayNil(t *testing.T) {
	// 8 identical points with 4 clusters: repair keeps centroids distinct
	// but duplicates leave some lists empty.
	data := vecmath.NewMatrix(8, 8)
	for i := 0; i < 8; i++ {
		data.SetRow(i, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	}
	idx := Build(data, pq.L2, Config{NClusters: 4, M: 4, Ks: 4, CoarseIters: 3, PQIters: 3, Seed: 1})
	sawEmpty := false
	for c := range idx.Lists {
		if idx.Lists[c].Len() == 0 {
			sawEmpty = true
			if idx.Lists[c].IDs != nil || idx.Lists[c].Codes != nil {
				t.Fatalf("empty list %d allocated non-nil slices", c)
			}
		}
	}
	if !sawEmpty {
		t.Skip("no empty cluster produced; nothing to check")
	}
}
