package ivf

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"anna/internal/dataset"
	"anna/internal/pq"
)

// saveV2 replicates the legacy ANNAIVF2 writer byte for byte (no
// checksums, flags interleaved with their payloads, no tombstones, no
// footer) so the read-compat path stays covered after the production
// writer moved to ANNAIVF3.
func saveV2(x *Index, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicV2); err != nil {
		return err
	}
	writeU8 := func(v uint8) { bw.WriteByte(v) }
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		bw.Write(b[:])
	}
	writeU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		bw.Write(b[:])
	}
	writeF32s := func(vs []float32) {
		var b [4]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			bw.Write(b[:])
		}
	}

	writeU8(uint8(x.Metric))
	writeU32(uint32(x.D))
	writeU64(uint64(x.NTotal))
	writeU32(uint32(x.NClusters()))
	writeU32(uint32(x.PQ.M))
	writeU32(uint32(x.PQ.Ks))
	if x.Rot != nil {
		writeU8(1)
		writeF32s(x.Rot.Rows)
	} else {
		writeU8(0)
	}
	writeF32s([]float32{x.AnisotropicEta})
	if x.SQ != nil {
		writeU8(1)
		writeF32s(x.SQ.Q.Min)
		writeF32s(x.SQ.Q.Scale)
		bw.Write(x.SQ.Codes)
	} else {
		writeU8(0)
	}
	writeF32s(x.Centroids.Data)
	writeF32s(x.PQ.Codebooks.Data)
	for c := range x.Lists {
		lst := &x.Lists[c]
		writeU32(uint32(lst.Len()))
		for _, id := range lst.IDs {
			writeU64(uint64(id))
		}
		bw.Write(lst.Codes)
	}
	return bw.Flush()
}

// buildFeatureful returns a small index exercising every optional model
// component: rotation, anisotropic encoding and the SQ rerank store.
func buildFeatureful(t testing.TB) (*Index, *dataset.Dataset) {
	t.Helper()
	spec := dataset.SIFTLike(600, 3, 1)
	spec.D = 16
	spec.Metric = pq.InnerProduct
	ds := dataset.Generate(spec)
	idx := Build(ds.Base, pq.InnerProduct, Config{
		NClusters: 6, M: 4, Ks: 16, CoarseIters: 4, PQIters: 4, Seed: 7,
		Rotate: true, AnisotropicEta: 2, Rerank: true,
	})
	return idx, ds
}

// sameSearchResults asserts both indexes return identical results for
// the dataset's query set.
func sameSearchResults(t *testing.T, want, got *Index, ds *dataset.Dataset) {
	t.Helper()
	for qi := 0; qi < ds.Queries.Rows && qi < 10; qi++ {
		q := ds.Queries.Row(qi)
		a := want.Search(q, SearchParams{W: 4, K: 5})
		b := got.Search(q, SearchParams{W: 4, K: 5})
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", qi, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
				t.Fatalf("query %d rank %d: (%d, %v) vs (%d, %v)",
					qi, i, a[i].ID, a[i].Score, b[i].ID, b[i].Score)
			}
		}
	}
}

func TestLoadV2Compat(t *testing.T) {
	idx, ds := buildFeatureful(t)
	var buf bytes.Buffer
	if err := saveV2(idx, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("loading ANNAIVF2 blob: %v", err)
	}
	if got.D != idx.D || got.NTotal != idx.NTotal || got.PQ.M != idx.PQ.M ||
		got.PQ.Ks != idx.PQ.Ks || got.NClusters() != idx.NClusters() {
		t.Fatalf("geometry mismatch after v2 load")
	}
	if got.Rot == nil || got.SQ == nil || got.AnisotropicEta != idx.AnisotropicEta {
		t.Fatalf("model components lost: rot=%v sq=%v eta=%v",
			got.Rot != nil, got.SQ != nil, got.AnisotropicEta)
	}
	sameSearchResults(t, idx, got, ds)
}

// TestLoadV2ThenSaveV3RoundTrip is the upgrade path: an old artifact is
// read, re-saved in the checksummed format, and read back unchanged.
func TestLoadV2ThenSaveV3RoundTrip(t *testing.T) {
	idx, ds := buildFeatureful(t)
	var v2 bytes.Buffer
	if err := saveV2(idx, &v2); err != nil {
		t.Fatal(err)
	}
	mid, err := Load(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "upgraded.anna")
	if err := mid.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:8]) != magicV3 {
		t.Fatalf("re-save produced magic %q, want %q", b[:8], magicV3)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameSearchResults(t, idx, got, ds)
}

// TestLoadFileV2Compat exercises the size-bounded path over legacy bytes.
func TestLoadFileV2Compat(t *testing.T) {
	idx, ds := buildFeatureful(t)
	path := filepath.Join(t.TempDir(), "legacy.anna")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := saveV2(idx, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameSearchResults(t, idx, got, ds)
}
