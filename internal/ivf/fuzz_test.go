package ivf

import (
	"bytes"
	"testing"

	"anna/internal/dataset"
	"anna/internal/pq"
)

// FuzzLoad hardens the index deserializer against corrupt inputs: it
// must return an error, never panic or allocate absurdly, whatever the
// bytes are. The seed corpus includes a valid index and truncations.
func FuzzLoad(f *testing.F) {
	spec := dataset.SIFTLike(500, 2, 1)
	spec.D = 16
	ds := dataset.Generate(spec)
	idx := Build(ds.Base, pq.L2, Config{
		NClusters: 4, M: 4, Ks: 16, CoarseIters: 3, PQIters: 3, Seed: 1,
	})
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-4]) // missing trailer
	var v2 bytes.Buffer
	if err := saveV2(idx, &v2); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v2.Bytes()[:v2.Len()/2])
	f.Add([]byte("ANNAIVF2"))
	f.Add([]byte("ANNAIVF3"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Must not panic; errors are fine. Mutated-but-valid headers can
		// decode to a working index, which must then be searchable.
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.D <= 0 || got.PQ.M <= 0 {
			t.Fatalf("accepted index with bad geometry: D=%d M=%d", got.D, got.PQ.M)
		}
		q := make([]float32, got.D)
		got.Search(q, SearchParams{W: 1, K: 1})
	})
}
