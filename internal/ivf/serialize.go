package ivf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"anna/internal/pq"
	"anna/internal/rotation"
	"anna/internal/sq"
	"anna/internal/vecmath"
)

// Binary index format (little endian):
//
//	magic "ANNAIVF2" (8 bytes)
//	metric uint8, D uint32, NTotal uint64, NClusters uint32
//	PQ: M uint32, Ks uint32
//	hasRotation uint8; if 1: D*D float32 rotation rows
//	anisotropicEta float32 (0 or 1 = plain encoding)
//	hasSQ uint8; if 1: D float32 mins, D float32 scales, NTotal*D code bytes
//	centroids: NClusters*D float32
//	codebooks: M*Ks*(D/M) float32
//	per list: n uint32, ids n*uint64, codes n*CodeBytes
//
// This mirrors the host-side "place the set of necessary data structures
// in ANNA main memory" step (Section III-A): everything the accelerator
// needs is in this one artifact.

const magic = "ANNAIVF2"

// Save writes the index to w.
func (x *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	writeU8 := func(v uint8) { bw.WriteByte(v) }
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		bw.Write(b[:])
	}
	writeU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		bw.Write(b[:])
	}
	writeF32s := func(vs []float32) {
		var b [4]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			bw.Write(b[:])
		}
	}

	writeU8(uint8(x.Metric))
	writeU32(uint32(x.D))
	writeU64(uint64(x.NTotal))
	writeU32(uint32(x.NClusters()))
	writeU32(uint32(x.PQ.M))
	writeU32(uint32(x.PQ.Ks))
	if x.Rot != nil {
		writeU8(1)
		writeF32s(x.Rot.Rows)
	} else {
		writeU8(0)
	}
	writeF32s([]float32{x.AnisotropicEta})
	if x.SQ != nil {
		writeU8(1)
		writeF32s(x.SQ.Q.Min)
		writeF32s(x.SQ.Q.Scale)
		bw.Write(x.SQ.Codes)
	} else {
		writeU8(0)
	}
	writeF32s(x.Centroids.Data)
	writeF32s(x.PQ.Codebooks.Data)
	for c := range x.Lists {
		lst := &x.Lists[c]
		writeU32(uint32(lst.Len()))
		for _, id := range lst.IDs {
			writeU64(uint64(id))
		}
		bw.Write(lst.Codes)
	}
	return bw.Flush()
}

// SaveFile writes the index to path.
func (x *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := x.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an index written by Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("ivf: reading magic: %w", err)
	}
	if string(hdr) != magic {
		return nil, fmt.Errorf("ivf: bad magic %q", hdr)
	}
	readU8 := func() (uint8, error) { return br.ReadByte() }
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	readF32s := func(dst []float32) error {
		buf := make([]byte, 4*len(dst))
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		return nil
	}

	metric, err := readU8()
	if err != nil {
		return nil, err
	}
	if metric > 1 {
		return nil, fmt.Errorf("ivf: unknown metric %d", metric)
	}
	d, err := readU32()
	if err != nil {
		return nil, err
	}
	nTotal, err := readU64()
	if err != nil {
		return nil, err
	}
	nClusters, err := readU32()
	if err != nil {
		return nil, err
	}
	m, err := readU32()
	if err != nil {
		return nil, err
	}
	ks, err := readU32()
	if err != nil {
		return nil, err
	}
	if d == 0 || m == 0 || ks < 2 || ks > 256 || d%m != 0 {
		return nil, fmt.Errorf("ivf: inconsistent header D=%d M=%d Ks=%d", d, m, ks)
	}
	if nClusters == 0 || nClusters > 1<<24 {
		return nil, fmt.Errorf("ivf: implausible cluster count %d", nClusters)
	}
	if nTotal > 1<<33 {
		return nil, fmt.Errorf("ivf: implausible vector count %d", nTotal)
	}

	hasRot, err := readU8()
	if err != nil {
		return nil, err
	}
	if hasRot > 1 {
		return nil, fmt.Errorf("ivf: bad rotation flag %d", hasRot)
	}
	var rot *rotation.Matrix
	if hasRot == 1 {
		rot = &rotation.Matrix{D: int(d), Rows: make([]float32, int(d)*int(d))}
		if err := readF32s(rot.Rows); err != nil {
			return nil, fmt.Errorf("ivf: reading rotation: %w", err)
		}
	}

	var etaBuf [1]float32
	if err := readF32s(etaBuf[:]); err != nil {
		return nil, fmt.Errorf("ivf: reading anisotropic eta: %w", err)
	}
	if etaBuf[0] < 0 || etaBuf[0] != etaBuf[0] { // negative or NaN
		return nil, fmt.Errorf("ivf: invalid anisotropic eta %v", etaBuf[0])
	}

	hasSQ, err := readU8()
	if err != nil {
		return nil, err
	}
	if hasSQ > 1 {
		return nil, fmt.Errorf("ivf: bad SQ flag %d", hasSQ)
	}
	var store *sq.Store
	if hasSQ == 1 {
		quant := &sq.Quantizer{
			D:     int(d),
			Min:   make([]float32, d),
			Scale: make([]float32, d),
		}
		if err := readF32s(quant.Min); err != nil {
			return nil, fmt.Errorf("ivf: reading SQ mins: %w", err)
		}
		if err := readF32s(quant.Scale); err != nil {
			return nil, fmt.Errorf("ivf: reading SQ scales: %w", err)
		}
		codes := make([]byte, int(nTotal)*int(d))
		if _, err := io.ReadFull(br, codes); err != nil {
			return nil, fmt.Errorf("ivf: reading SQ codes: %w", err)
		}
		store = &sq.Store{Q: quant, Codes: codes, N: int(nTotal)}
	}

	x := &Index{
		Metric:         pq.Metric(metric),
		Rot:            rot,
		AnisotropicEta: etaBuf[0],
		SQ:             store,
		D:              int(d),
		NTotal:         int(nTotal),
		PQ: &pq.Quantizer{
			D: int(d), M: int(m), Ks: int(ks), Dsub: int(d / m),
			Codebooks: vecmath.NewMatrix(int(m*ks), int(d/m)),
		},
		Centroids:    vecmath.NewMatrix(int(nClusters), int(d)),
		Lists:        make([]List, nClusters),
		searcherPool: &sync.Pool{},
	}
	if err := readF32s(x.Centroids.Data); err != nil {
		return nil, fmt.Errorf("ivf: reading centroids: %w", err)
	}
	if err := readF32s(x.PQ.Codebooks.Data); err != nil {
		return nil, fmt.Errorf("ivf: reading codebooks: %w", err)
	}
	cb := x.PQ.CodeBytes()
	var total int
	for c := 0; c < int(nClusters); c++ {
		n, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("ivf: reading list %d header: %w", c, err)
		}
		lst := &x.Lists[c]
		lst.IDs = make([]int64, n)
		for i := range lst.IDs {
			v, err := readU64()
			if err != nil {
				return nil, fmt.Errorf("ivf: reading list %d ids: %w", c, err)
			}
			lst.IDs[i] = int64(v)
		}
		lst.Codes = make([]byte, int(n)*cb)
		if _, err := io.ReadFull(br, lst.Codes); err != nil {
			return nil, fmt.Errorf("ivf: reading list %d codes: %w", c, err)
		}
		total += int(n)
	}
	if total != x.NTotal {
		return nil, fmt.Errorf("ivf: list sizes sum to %d, header says %d", total, x.NTotal)
	}
	// Compact leaves ID gaps, so the next assignable ID is maxID+1, not
	// the live count.
	x.nextID = int64(x.NTotal)
	for c := range x.Lists {
		for _, id := range x.Lists[c].IDs {
			if id >= x.nextID {
				x.nextID = id + 1
			}
		}
	}
	return x, nil
}

// LoadFile reads an index from path.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
