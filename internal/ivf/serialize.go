package ivf

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"anna/internal/pq"
	"anna/internal/rotation"
	"anna/internal/sq"
	"anna/internal/vecmath"
)

// Binary index format ANNAIVF3 (little endian). The artifact is split
// into three sections, each followed by a CRC32C of its bytes, and
// closed by a length-prefixed footer so truncation, torn writes and bit
// flips are all detected before any decoded value is trusted:
//
//	magic "ANNAIVF3" (8 bytes)
//	header section:
//	    metric uint8, D uint32, NTotal uint64, NClusters uint32,
//	    M uint32, Ks uint32, hasRotation uint8, anisotropicEta float32,
//	    hasSQ uint8
//	header crc32c uint32 (covers magic + header)
//	model section:
//	    [rotation rows D*D float32]           (if hasRotation)
//	    [SQ mins D float32, scales D float32] (if hasSQ)
//	    centroids NClusters*D float32
//	    codebooks M*Ks*(D/M) float32
//	model crc32c uint32
//	data section:
//	    [SQ codes NTotal*D bytes]             (if hasSQ)
//	    per list: n uint32, ids n*uint64, codes n*CodeBytes
//	    nDeleted uint32, deleted ids nDeleted*uint64 (sorted)
//	data crc32c uint32
//	footer: payloadLen uint64 (bytes from offset 0 through the data
//	        crc32c inclusive), trailer "ANNAEND3" (8 bytes)
//
// Load also reads the previous unchecksummed ANNAIVF2 layout (same
// fields, flags interleaved with their payloads, no tombstones, no
// footer) so indexes written by earlier versions keep working.
//
// This mirrors the host-side "place the set of necessary data structures
// in ANNA main memory" step (Section III-A): everything the accelerator
// needs is in this one artifact — which is exactly why it must be
// verifiable before it is trusted.

const (
	magicV3   = "ANNAIVF3"
	magicV2   = "ANNAIVF2"
	trailerV3 = "ANNAEND3"

	// Hard plausibility caps, enforced before any count-derived
	// allocation. They bound every size product far below int64/size_t
	// overflow (maxVectors*maxDim = 2^49).
	maxDim      = 1 << 16
	maxClusters = 1 << 24
	maxVectors  = 1 << 33

	// allocChunk bounds upfront allocation when the input size is
	// unknown (pure streams): buffers grow only as bytes actually
	// arrive, so a hostile header cannot force a multi-GB make().
	allocChunk = 1 << 20
)

// castagnoli is the CRC32C polynomial table (the checksum used by iSCSI,
// ext4 and most storage formats; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is wrapped by every Load failure caused by the input bytes
// — bad magic, checksum mismatch, truncation, implausible or
// inconsistent counts. Callers use errors.Is(err, ErrCorrupt) to tell a
// damaged artifact from an I/O failure.
var ErrCorrupt = errors.New("corrupt index")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("ivf: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// secWriter tracks a running CRC32C and byte count across buffered
// writes; write errors are sticky and surfaced by the caller.
type secWriter struct {
	bw      *bufio.Writer
	crc     uint32
	n       uint64
	err     error
	scratch [8]byte
}

func (sw *secWriter) bytes(b []byte) {
	if sw.err != nil {
		return
	}
	if _, err := sw.bw.Write(b); err != nil {
		sw.err = err
		return
	}
	sw.crc = crc32.Update(sw.crc, castagnoli, b)
	sw.n += uint64(len(b))
}

func (sw *secWriter) u8(v uint8) {
	sw.scratch[0] = v
	sw.bytes(sw.scratch[:1])
}

func (sw *secWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(sw.scratch[:4], v)
	sw.bytes(sw.scratch[:4])
}

func (sw *secWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(sw.scratch[:8], v)
	sw.bytes(sw.scratch[:8])
}

func (sw *secWriter) f32s(vs []float32) {
	for _, v := range vs {
		sw.u32(math.Float32bits(v))
	}
}

// endSection emits the CRC of the section written so far (the CRC bytes
// themselves are not covered) and starts a fresh section.
func (sw *secWriter) endSection() {
	if sw.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(sw.scratch[:4], sw.crc)
	if _, err := sw.bw.Write(sw.scratch[:4]); err != nil {
		sw.err = err
		return
	}
	sw.n += 4
	sw.crc = 0
}

// Save writes the index to w in the ANNAIVF3 format.
func (x *Index) Save(w io.Writer) error {
	sw := &secWriter{bw: bufio.NewWriter(w)}
	sw.bytes([]byte(magicV3))
	sw.u8(uint8(x.Metric))
	sw.u32(uint32(x.D))
	sw.u64(uint64(x.NTotal))
	sw.u32(uint32(x.NClusters()))
	sw.u32(uint32(x.PQ.M))
	sw.u32(uint32(x.PQ.Ks))
	if x.Rot != nil {
		sw.u8(1)
	} else {
		sw.u8(0)
	}
	sw.u32(math.Float32bits(x.AnisotropicEta))
	if x.SQ != nil {
		sw.u8(1)
	} else {
		sw.u8(0)
	}
	sw.endSection()

	if x.Rot != nil {
		sw.f32s(x.Rot.Rows)
	}
	if x.SQ != nil {
		sw.f32s(x.SQ.Q.Min)
		sw.f32s(x.SQ.Q.Scale)
	}
	sw.f32s(x.Centroids.Data)
	sw.f32s(x.PQ.Codebooks.Data)
	sw.endSection()

	if x.SQ != nil {
		sw.bytes(x.SQ.Codes)
	}
	for c := range x.Lists {
		lst := &x.Lists[c]
		sw.u32(uint32(lst.Len()))
		for _, id := range lst.IDs {
			sw.u64(uint64(id))
		}
		sw.bytes(lst.Codes)
	}
	// Tombstones, sorted so identical indexes serialize byte-identically.
	dead := make([]int64, 0, len(x.deleted))
	for id := range x.deleted {
		dead = append(dead, id)
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	sw.u32(uint32(len(dead)))
	for _, id := range dead {
		sw.u64(uint64(id))
	}
	sw.endSection()

	sw.u64(sw.n)
	sw.bytes([]byte(trailerV3))
	if sw.err != nil {
		return sw.err
	}
	return sw.bw.Flush()
}

// SaveFile writes the index to path atomically: the bytes go to a
// temporary file in the same directory, which is fsynced and renamed
// over path only after a complete write, so a crash mid-save never
// leaves a truncated index where a good one used to be.
func (x *Index) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := x.Save(tmp); err != nil {
		return fail(fmt.Errorf("ivf: writing %s: %w", tmpName, err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("ivf: syncing %s: %w", tmpName, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ivf: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Make the rename itself durable. Directory fsync is best-effort:
	// some filesystems refuse it, and the data file is already safe.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// secReader mirrors secWriter: every read is counted, bounds-checked
// against the remaining input when the total size is known, and folded
// into a running CRC32C checked at section boundaries.
type secReader struct {
	br      *bufio.Reader
	crc     uint32
	n       int64 // bytes consumed
	size    int64 // total input size; -1 when unknown (pure stream)
	scratch [8]byte
}

// readRaw fills b without touching the CRC (stored checksums, footer).
func (sr *secReader) readRaw(b []byte) error {
	if _, err := io.ReadFull(sr.br, b); err != nil {
		return err
	}
	sr.n += int64(len(b))
	return nil
}

func (sr *secReader) read(b []byte) error {
	if err := sr.readRaw(b); err != nil {
		return err
	}
	sr.crc = crc32.Update(sr.crc, castagnoli, b)
	return nil
}

func (sr *secReader) u8() (uint8, error) {
	err := sr.read(sr.scratch[:1])
	return sr.scratch[0], err
}

func (sr *secReader) u32() (uint32, error) {
	err := sr.read(sr.scratch[:4])
	return binary.LittleEndian.Uint32(sr.scratch[:4]), err
}

func (sr *secReader) u64() (uint64, error) {
	err := sr.read(sr.scratch[:8])
	return binary.LittleEndian.Uint64(sr.scratch[:8]), err
}

func (sr *secReader) f32() (float32, error) {
	v, err := sr.u32()
	return math.Float32frombits(v), err
}

// endSection reads the stored section checksum and compares it to the
// computed one (v2 inputs never call this — they carry no checksums).
func (sr *secReader) endSection(what string) error {
	want := sr.crc
	if err := sr.readRaw(sr.scratch[:4]); err != nil {
		return corruptf("reading %s checksum: %v", what, err)
	}
	got := binary.LittleEndian.Uint32(sr.scratch[:4])
	if got != want {
		return corruptf("%s checksum mismatch: stored %08x, computed %08x", what, got, want)
	}
	sr.crc = 0
	return nil
}

// bytesN reads need bytes, refusing counts that exceed the remaining
// input when the size is known and growing the buffer chunk-by-chunk
// when it is not, so allocation never outruns the bytes actually
// present.
func (sr *secReader) bytesN(need uint64, what string) ([]byte, error) {
	if need == 0 {
		return nil, nil
	}
	if need > math.MaxInt64/2 {
		return nil, corruptf("%s: implausible size %d", what, need)
	}
	if sr.size >= 0 {
		if int64(need) > sr.size-sr.n {
			return nil, corruptf("%s: needs %d bytes, %d remain", what, need, sr.size-sr.n)
		}
		b := make([]byte, need)
		if err := sr.read(b); err != nil {
			return nil, corruptf("reading %s: %v", what, err)
		}
		return b, nil
	}
	var buf []byte
	for uint64(len(buf)) < need {
		n := need - uint64(len(buf))
		if n > allocChunk {
			n = allocChunk
		}
		start := len(buf)
		buf = append(buf, make([]byte, n)...)
		if err := sr.read(buf[start:]); err != nil {
			return nil, corruptf("reading %s: %v", what, err)
		}
	}
	return buf, nil
}

// f32sN reads need float32s (the float buffer is only allocated after
// the underlying bytes were successfully read).
func (sr *secReader) f32sN(need uint64, what string) ([]float32, error) {
	b, err := sr.bytesN(need*4, what)
	if err != nil {
		return nil, err
	}
	out := make([]float32, need)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// header is the decoded, not-yet-validated index geometry.
type header struct {
	metric         uint8
	d, nc, m, ks   uint32
	nTotal         uint64
	hasRot, hasSQ  uint8
	anisotropicEta float32
}

// validate applies the strict bounds every count must satisfy before a
// single count-derived allocation happens. The caps keep all later size
// products far below int64 overflow.
func (h *header) validate() error {
	if h.metric > 1 {
		return corruptf("unknown metric %d", h.metric)
	}
	if h.d == 0 || h.d > maxDim {
		return corruptf("dimension %d out of range 1..%d", h.d, maxDim)
	}
	if h.m == 0 || h.m > h.d || h.d%h.m != 0 {
		return corruptf("inconsistent header D=%d M=%d Ks=%d", h.d, h.m, h.ks)
	}
	if h.ks < 2 || h.ks > 256 {
		return corruptf("Ks=%d out of range 2..256", h.ks)
	}
	if h.nc == 0 || h.nc > maxClusters {
		return corruptf("implausible cluster count %d", h.nc)
	}
	if h.nTotal > maxVectors {
		return corruptf("implausible vector count %d", h.nTotal)
	}
	if h.hasRot > 1 {
		return corruptf("bad rotation flag %d", h.hasRot)
	}
	if h.hasSQ > 1 {
		return corruptf("bad SQ flag %d", h.hasSQ)
	}
	eta := h.anisotropicEta
	if eta < 0 || eta != eta || math.IsInf(float64(eta), 0) {
		return corruptf("invalid anisotropic eta %v", eta)
	}
	return nil
}

// shell allocates the Index skeleton for a validated header (model and
// list payloads are filled in by the caller).
func (h *header) shell() *Index {
	d, m, ks := int(h.d), int(h.m), int(h.ks)
	return &Index{
		Metric:         pq.Metric(h.metric),
		AnisotropicEta: h.anisotropicEta,
		D:              d,
		NTotal:         int(h.nTotal),
		PQ: &pq.Quantizer{
			D: d, M: m, Ks: ks, Dsub: d / m,
			Codebooks: vecmath.NewMatrix(m*ks, d/m),
		},
		searcherPool: &sync.Pool{},
	}
}

// Load reads an index written by Save (ANNAIVF3) or by earlier versions
// (ANNAIVF2). Any malformed input yields an error wrapping ErrCorrupt;
// Load never panics and never allocates more than the input could
// justify. Prefer LoadFile, which additionally bounds every section
// against the file size and verifies exact consumption.
func Load(r io.Reader) (*Index, error) {
	return load(r, -1)
}

func load(r io.Reader, size int64) (*Index, error) {
	sr := &secReader{br: bufio.NewReader(r), size: size}
	hdr := make([]byte, len(magicV3))
	if err := sr.read(hdr); err != nil {
		return nil, corruptf("reading magic: %v", err)
	}
	switch string(hdr) {
	case magicV3:
		return loadV3(sr)
	case magicV2:
		return loadV2(sr)
	default:
		return nil, corruptf("bad magic %q", hdr)
	}
}

// loadV3 reads the checksummed sectioned layout.
func loadV3(sr *secReader) (*Index, error) {
	var h header
	var err error
	read := func(dst any) {
		if err != nil {
			return
		}
		switch p := dst.(type) {
		case *uint8:
			*p, err = sr.u8()
		case *uint32:
			*p, err = sr.u32()
		case *uint64:
			*p, err = sr.u64()
		case *float32:
			*p, err = sr.f32()
		}
	}
	read(&h.metric)
	read(&h.d)
	read(&h.nTotal)
	read(&h.nc)
	read(&h.m)
	read(&h.ks)
	read(&h.hasRot)
	read(&h.anisotropicEta)
	read(&h.hasSQ)
	if err != nil {
		return nil, corruptf("reading header: %v", err)
	}
	if err := sr.endSection("header"); err != nil {
		return nil, err
	}
	if err := h.validate(); err != nil {
		return nil, err
	}

	x := h.shell()
	d, nc := uint64(h.d), uint64(h.nc)
	if h.hasRot == 1 {
		rows, err := sr.f32sN(d*d, "rotation")
		if err != nil {
			return nil, err
		}
		x.Rot = &rotation.Matrix{D: int(h.d), Rows: rows}
	}
	var quant *sq.Quantizer
	if h.hasSQ == 1 {
		quant = &sq.Quantizer{D: int(h.d)}
		if quant.Min, err = sr.f32sN(d, "SQ mins"); err != nil {
			return nil, err
		}
		if quant.Scale, err = sr.f32sN(d, "SQ scales"); err != nil {
			return nil, err
		}
	}
	cents, err := sr.f32sN(nc*d, "centroids")
	if err != nil {
		return nil, err
	}
	x.Centroids = &vecmath.Matrix{Rows: int(h.nc), Cols: int(h.d), Data: cents}
	books, err := sr.f32sN(uint64(h.m)*uint64(h.ks)*(d/uint64(h.m)), "codebooks")
	if err != nil {
		return nil, err
	}
	x.PQ.Codebooks.Data = books
	if err := sr.endSection("model"); err != nil {
		return nil, err
	}

	if h.hasSQ == 1 {
		codes, err := sr.bytesN(h.nTotal*d, "SQ codes")
		if err != nil {
			return nil, err
		}
		x.SQ = &sq.Store{Q: quant, Codes: codes, N: int(h.nTotal)}
	}
	if err := readLists(sr, x, int(h.nc)); err != nil {
		return nil, err
	}
	finishLoad(x)
	if err := readTombstones(sr, x); err != nil {
		return nil, err
	}
	if err := sr.endSection("data"); err != nil {
		return nil, err
	}

	payload := uint64(sr.n)
	length, err := sr.footerU64()
	if err != nil {
		return nil, corruptf("reading footer: %v", err)
	}
	if length != payload {
		return nil, corruptf("footer says %d payload bytes, consumed %d (truncated or torn)", length, payload)
	}
	trailer := make([]byte, len(trailerV3))
	if err := sr.readRaw(trailer); err != nil {
		return nil, corruptf("reading trailer: %v", err)
	}
	if string(trailer) != trailerV3 {
		return nil, corruptf("bad trailer %q", trailer)
	}
	if sr.size >= 0 && sr.n != sr.size {
		return nil, corruptf("%d trailing bytes after index", sr.size-sr.n)
	}
	return x, nil
}

func (sr *secReader) footerU64() (uint64, error) {
	if err := sr.readRaw(sr.scratch[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(sr.scratch[:8]), nil
}

// loadV2 reads the legacy unchecksummed layout with the same strict
// bounds validation (historically this loader trusted header counts
// blindly — a hostile file could demand multi-GB allocations or
// overflow D*D into a panic).
func loadV2(sr *secReader) (*Index, error) {
	var h header
	var err error
	if h.metric, err = sr.u8(); err == nil {
		if h.d, err = sr.u32(); err == nil {
			if h.nTotal, err = sr.u64(); err == nil {
				if h.nc, err = sr.u32(); err == nil {
					if h.m, err = sr.u32(); err == nil {
						h.ks, err = sr.u32()
					}
				}
			}
		}
	}
	if err != nil {
		return nil, corruptf("reading header: %v", err)
	}
	if h.hasRot, err = sr.u8(); err != nil {
		return nil, corruptf("reading rotation flag: %v", err)
	}
	// Validate before the flag-gated payloads: rotation size needs d.
	h.hasSQ = 0 // not read yet; flag bounds re-checked below
	if err := h.validate(); err != nil {
		return nil, err
	}
	x := h.shell()
	d, nc := uint64(h.d), uint64(h.nc)
	if h.hasRot == 1 {
		rows, err := sr.f32sN(d*d, "rotation")
		if err != nil {
			return nil, err
		}
		x.Rot = &rotation.Matrix{D: int(h.d), Rows: rows}
	}
	if x.AnisotropicEta, err = sr.f32(); err != nil {
		return nil, corruptf("reading anisotropic eta: %v", err)
	}
	eta := x.AnisotropicEta
	if eta < 0 || eta != eta || math.IsInf(float64(eta), 0) {
		return nil, corruptf("invalid anisotropic eta %v", eta)
	}
	if h.hasSQ, err = sr.u8(); err != nil {
		return nil, corruptf("reading SQ flag: %v", err)
	}
	if h.hasSQ > 1 {
		return nil, corruptf("bad SQ flag %d", h.hasSQ)
	}
	if h.hasSQ == 1 {
		quant := &sq.Quantizer{D: int(h.d)}
		if quant.Min, err = sr.f32sN(d, "SQ mins"); err != nil {
			return nil, err
		}
		if quant.Scale, err = sr.f32sN(d, "SQ scales"); err != nil {
			return nil, err
		}
		codes, err := sr.bytesN(h.nTotal*d, "SQ codes")
		if err != nil {
			return nil, err
		}
		x.SQ = &sq.Store{Q: quant, Codes: codes, N: int(h.nTotal)}
	}
	cents, err := sr.f32sN(nc*d, "centroids")
	if err != nil {
		return nil, err
	}
	x.Centroids = &vecmath.Matrix{Rows: int(h.nc), Cols: int(h.d), Data: cents}
	books, err := sr.f32sN(uint64(h.m)*uint64(h.ks)*(d/uint64(h.m)), "codebooks")
	if err != nil {
		return nil, err
	}
	x.PQ.Codebooks.Data = books
	if err := readLists(sr, x, int(h.nc)); err != nil {
		return nil, err
	}
	finishLoad(x)
	return x, nil
}

// readLists decodes the per-cluster inverted lists, clamping every count
// against the header total (and, through bytesN, against the remaining
// input) before allocating. The Lists slice itself grows with the bytes
// actually consumed — each list costs at least its 4-byte length prefix
// — so a hostile cluster count in an otherwise tiny input cannot force a
// large upfront allocation.
func readLists(sr *secReader, x *Index, nc int) error {
	cb := x.PQ.CodeBytes()
	reserve := nc
	if sr.size >= 0 && int64(reserve) > (sr.size-sr.n)/4 {
		return corruptf("%d lists cannot fit in %d remaining bytes", nc, sr.size-sr.n)
	}
	if reserve > allocChunk/4 {
		reserve = allocChunk / 4
	}
	x.Lists = make([]List, 0, reserve)
	total := 0
	for c := 0; c < nc; c++ {
		n32, err := sr.u32()
		if err != nil {
			return corruptf("reading list %d header: %v", c, err)
		}
		n := int(n32)
		if total+n > x.NTotal {
			return corruptf("list %d: %d vectors would exceed header total %d", c, n, x.NTotal)
		}
		idBytes, err := sr.bytesN(uint64(n)*8, fmt.Sprintf("list %d ids", c))
		if err != nil {
			return err
		}
		var lst List
		lst.IDs = make([]int64, n)
		for i := range lst.IDs {
			id := int64(binary.LittleEndian.Uint64(idBytes[8*i:]))
			if id < 0 {
				return corruptf("list %d: negative vector id %d", c, id)
			}
			lst.IDs[i] = id
		}
		if lst.Codes, err = sr.bytesN(uint64(n)*uint64(cb), fmt.Sprintf("list %d codes", c)); err != nil {
			return err
		}
		x.Lists = append(x.Lists, lst)
		total += n
	}
	if total != x.NTotal {
		return corruptf("list sizes sum to %d, header says %d", total, x.NTotal)
	}
	return nil
}

// readTombstones decodes the deleted-ID set (ANNAIVF3 only; earlier
// formats silently dropped tombstones on save).
func readTombstones(sr *secReader, x *Index) error {
	n32, err := sr.u32()
	if err != nil {
		return corruptf("reading tombstone count: %v", err)
	}
	n := int(n32)
	if n == 0 {
		return nil
	}
	if n > x.NTotal {
		return corruptf("%d tombstones exceed %d vectors", n, x.NTotal)
	}
	b, err := sr.bytesN(uint64(n)*8, "tombstones")
	if err != nil {
		return err
	}
	x.deleted = make(map[int64]struct{}, n)
	for i := 0; i < n; i++ {
		id := int64(binary.LittleEndian.Uint64(b[8*i:]))
		if id < 0 || id >= x.nextID {
			return corruptf("tombstone id %d outside 0..%d", id, x.nextID-1)
		}
		x.deleted[id] = struct{}{}
	}
	return nil
}

// finishLoad recomputes nextID: Compact leaves ID gaps, so the next
// assignable ID is maxID+1, not the live count.
func finishLoad(x *Index) {
	x.nextID = int64(x.NTotal)
	for c := range x.Lists {
		for _, id := range x.Lists[c].IDs {
			if id >= x.nextID {
				x.nextID = id + 1
			}
		}
	}
}

// LoadFile reads an index from path. Knowing the file size lets every
// section be bounds-checked before allocation and lets trailing garbage
// be rejected.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	size := int64(-1)
	if st, err := f.Stat(); err == nil && st.Mode().IsRegular() {
		size = st.Size()
	}
	x, lerr := load(f, size)
	if cerr := f.Close(); cerr != nil && lerr == nil {
		return nil, fmt.Errorf("ivf: closing %s: %w", path, cerr)
	}
	if lerr != nil {
		return nil, fmt.Errorf("ivf: loading %s: %w", path, lerr)
	}
	return x, nil
}
