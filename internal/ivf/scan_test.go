package ivf

import (
	"fmt"
	"testing"

	"anna/internal/dataset"
	"anna/internal/pq"
	"anna/internal/topk"
)

func buildScanIndex(t testing.TB, metric pq.Metric, ks int) (*Index, *dataset.Dataset) {
	t.Helper()
	spec := dataset.SIFTLike(1200, 8, 7)
	spec.D = 32
	spec.Metric = metric
	ds := dataset.Generate(spec)
	idx := Build(ds.Base, metric, Config{
		NClusters: 12, M: 8, Ks: ks, CoarseIters: 4, PQIters: 4, Seed: 5,
	})
	return idx, ds
}

func requireIdentical(t *testing.T, label string, got, want []topk.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s rank %d: fused %+v, reference %+v", label, i, got[i], want[i])
		}
	}
}

// TestFusedSearchBitExact proves the tentpole invariant: the fused path
// (batched cluster selection + packed-code scan + threshold-gated push)
// returns bit-identical results to the unfused reference across
// {L2, IP} x {Ks=16, Ks=256} x {HWF16 on/off} x {with/without deletions}.
func TestFusedSearchBitExact(t *testing.T) {
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		for _, ks := range []int{16, 256} {
			idx, ds := buildScanIndex(t, metric, ks)
			check := func(t *testing.T, stage string) {
				for _, hw := range []bool{false, true} {
					for _, w := range []int{3, idx.NClusters()} {
						for qi := 0; qi < ds.Queries.Rows; qi++ {
							p := SearchParams{W: w, K: 10, HWF16: hw}
							got := idx.Search(ds.Queries.Row(qi), p)
							want := idx.SearchReference(ds.Queries.Row(qi), p)
							requireIdentical(t,
								fmt.Sprintf("%s hw=%v w=%d q%d", stage, hw, w, qi),
								got, want)
						}
					}
				}
			}
			t.Run(fmt.Sprintf("%v_Ks%d", metric, ks), func(t *testing.T) {
				check(t, "live")
				// Tombstone a spread of IDs (including some certain to be
				// near the top for query 0) and re-verify the fused
				// deletion path.
				top := idx.Search(ds.Queries.Row(0), SearchParams{W: idx.NClusters(), K: 5})
				dead := []int64{0, 7, 500, 1100}
				for _, r := range top {
					dead = append(dead, r.ID)
				}
				if idx.Delete(dead...) == 0 {
					t.Fatal("no deletions applied")
				}
				check(t, "deleted")
			})
		}
	}
}

// TestScanListADCMatchesScanList compares the fused list scan against the
// reference at the single-cluster level, where every pushed score is
// visible (not just the final top-k).
func TestScanListADCMatchesScanList(t *testing.T) {
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		for _, ks := range []int{16, 256} {
			idx, ds := buildScanIndex(t, metric, ks)
			q := idx.PrepQuery(ds.Queries.Row(0))
			lut := pq.NewLUT(idx.PQ)
			scratch := make([]float32, idx.D)
			codeBuf := make([]byte, idx.PQ.M)
			for _, hw := range []bool{false, true} {
				for c := 0; c < idx.NClusters(); c++ {
					idx.BuildLUT(lut, q, c, scratch, hw)
					n := idx.Lists[c].Len()
					if n == 0 {
						continue
					}
					fused := topk.NewSelector(n + 1)
					idx.ScanListADC(fused, lut, c, hw)
					ref := topk.NewSelector(n + 1)
					idx.ScanList(ref, lut, c, codeBuf, hw)
					requireIdentical(t,
						fmt.Sprintf("%v Ks=%d hw=%v cluster %d", metric, ks, hw, c),
						fused.Results(), ref.Results())
				}
			}
		}
	}
}

// TestThresholdGatePruning is the Selector.Threshold property test: for
// any k, the threshold-gated scan retains exactly what an unguarded scan
// pushing every candidate into the same k-selector retains, and its
// scores equal the truncated full ranking rank-by-rank (IDs at the
// boundary may differ only between equal scores, where a bounded
// selector keeps the first-scanned tied candidate).
func TestThresholdGatePruning(t *testing.T) {
	idx, ds := buildScanIndex(t, pq.L2, 16)
	q := idx.PrepQuery(ds.Queries.Row(1))
	lut := pq.NewLUT(idx.PQ)
	scratch := make([]float32, idx.D)
	codeBuf := make([]byte, idx.PQ.M)
	for _, k := range []int{1, 3, 17, 100} {
		gated := topk.NewSelector(k)
		unguarded := topk.NewSelector(k)
		all := topk.NewSelector(idx.NTotal)
		for c := 0; c < idx.NClusters(); c++ {
			idx.BuildLUT(lut, q, c, scratch, false)
			idx.ScanListADC(gated, lut, c, false)
			idx.ScanList(unguarded, lut, c, codeBuf, false)
			idx.ScanListADC(all, lut, c, false)
		}
		requireIdentical(t, fmt.Sprintf("k=%d vs unguarded", k),
			gated.Results(), unguarded.Results())
		full := all.Results()
		if k < len(full) {
			full = full[:k]
		}
		got := gated.Results()
		if len(got) != len(full) {
			t.Fatalf("k=%d: %d results, want %d", k, len(got), len(full))
		}
		for i := range got {
			if got[i].Score != full[i].Score {
				t.Fatalf("k=%d rank %d: score %v, full ranking has %v",
					k, i, got[i].Score, full[i].Score)
			}
		}
	}
}

// TestSelectClustersBatchMatchesPerRow pins the batched cluster filter to
// the per-row scoring loop it replaced.
func TestSelectClustersBatchMatchesPerRow(t *testing.T) {
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		idx, ds := buildScanIndex(t, metric, 16)
		cs := idx.NewClusterSelection(5)
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			q := ds.Queries.Row(qi)
			// Per-row reference: old SelectClusters body.
			sel := topk.NewSelector(5)
			for c := 0; c < idx.NClusters(); c++ {
				sel.Push(int64(c), idx.CentroidScore(q, c))
			}
			want := sel.Results()
			idx.SelectClustersBatch(cs, q)
			if len(cs.Clusters) != len(want) {
				t.Fatalf("%v q%d: %d clusters, want %d", metric, qi, len(cs.Clusters), len(want))
			}
			for i, r := range want {
				if cs.Clusters[i] != int(r.ID) || cs.Scores[i] != r.Score {
					t.Fatalf("%v q%d rank %d: (%d, %v) want (%d, %v)", metric, qi, i,
						cs.Clusters[i], cs.Scores[i], r.ID, r.Score)
				}
			}
		}
	}
}

// TestSearcherReuseAcrossParams checks that one Searcher survives W/K
// changes and rotation, still matching the reference.
func TestSearcherReuseAcrossParams(t *testing.T) {
	spec := dataset.SIFTLike(800, 4, 3)
	spec.D = 32
	ds := dataset.Generate(spec)
	idx := Build(ds.Base, pq.L2, Config{
		NClusters: 10, M: 8, Ks: 16, CoarseIters: 4, PQIters: 4, Seed: 2, Rotate: true,
	})
	s := idx.NewSearcher()
	for _, p := range []SearchParams{
		{W: 2, K: 5}, {W: 8, K: 20}, {W: 2, K: 5, HWF16: true}, {W: 100, K: 3},
	} {
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			got := s.Search(ds.Queries.Row(qi), p)
			want := idx.SearchReference(ds.Queries.Row(qi), p)
			requireIdentical(t, fmt.Sprintf("p=%+v q%d", p, qi), got, want)
		}
	}
}
