package ivf

import (
	"fmt"
	"testing"

	"anna/internal/pq"
	"anna/internal/simd"
	"anna/internal/topk"
)

// TestScanListADCDispatchBitExact is the index-level half of the SIMD
// differential matrix: the fused per-cluster ADC scan must return
// identical selector contents with the assembly kernels enabled and
// disabled, for both code layouts and both rounding modes, on an index
// built through the normal training path. (The ADC scan kernels are
// specified bit-exact, so this holds even though the index was built
// once — the scan dispatch seam cannot leak into results.)
func TestScanListADCDispatchBitExact(t *testing.T) {
	if !simd.Available() {
		t.Skip("no assembly on this build; both paths are already scalar")
	}
	for _, ks := range []int{16, 256} {
		idx, ds := buildScanIndex(t, pq.L2, ks)
		q := idx.PrepQuery(ds.Queries.Row(0))
		lut := pq.NewLUT(idx.PQ)
		scratch := make([]float32, idx.D)
		for _, hw := range []bool{false, true} {
			for c := 0; c < idx.NClusters(); c++ {
				idx.BuildLUT(lut, q, c, scratch, hw)
				n := idx.Lists[c].Len()
				if n == 0 {
					continue
				}
				on := topk.NewSelector(n + 1)
				idx.ScanListADC(on, lut, c, hw)

				prev := simd.SetEnabled(false)
				off := topk.NewSelector(n + 1)
				idx.ScanListADC(off, lut, c, hw)
				simd.SetEnabled(prev)

				requireIdentical(t,
					fmt.Sprintf("Ks=%d hw=%v cluster %d", ks, hw, c),
					on.Results(), off.Results())
			}
		}
	}
}
