package ivf

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"anna/internal/dataset"
	"anna/internal/exact"
	"anna/internal/f16"
	"anna/internal/pq"
	"anna/internal/recall"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

func buildSmall(t *testing.T, metric pq.Metric) (*Index, *dataset.Dataset) {
	t.Helper()
	spec := dataset.SIFTLike(2000, 20, 1)
	spec.D = 32
	spec.Metric = metric
	ds := dataset.Generate(spec)
	idx := Build(ds.Base, metric, Config{
		NClusters: 20, M: 8, Ks: 16, CoarseIters: 8, PQIters: 8, Seed: 3,
	})
	return idx, ds
}

func TestBuildInvariants(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	if idx.NClusters() != 20 {
		t.Fatalf("NClusters = %d", idx.NClusters())
	}
	if idx.NTotal != ds.N() {
		t.Fatalf("NTotal = %d", idx.NTotal)
	}
	// Every vector appears exactly once across lists.
	seen := make(map[int64]bool)
	total := 0
	for c := range idx.Lists {
		lst := &idx.Lists[c]
		if len(lst.Codes) != lst.Len()*idx.PQ.CodeBytes() {
			t.Fatalf("list %d: %d code bytes for %d vectors", c, len(lst.Codes), lst.Len())
		}
		for _, id := range lst.IDs {
			if seen[id] {
				t.Fatalf("vector %d in two lists", id)
			}
			seen[id] = true
		}
		total += lst.Len()
	}
	if total != ds.N() {
		t.Fatalf("lists hold %d vectors, want %d", total, ds.N())
	}
}

func TestVectorsAssignedToNearestCentroid(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	// Spot-check: each vector's list centroid is its argmin-L2 centroid.
	for c := range idx.Lists {
		for _, id := range idx.Lists[c].IDs[:min(2, idx.Lists[c].Len())] {
			v := ds.Base.Row(int(id))
			best, bd := 0, vecmath.L2Sq(v, idx.Centroids.Row(0))
			for j := 1; j < idx.NClusters(); j++ {
				if d := vecmath.L2Sq(v, idx.Centroids.Row(j)); d < bd {
					best, bd = j, d
				}
			}
			if best != c {
				t.Fatalf("vector %d stored in cluster %d, nearest is %d", id, c, best)
			}
		}
	}
}

func TestSelectClustersOrdering(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	q := ds.Queries.Row(0)
	sel := idx.SelectClusters(q, 5)
	if len(sel) != 5 {
		t.Fatalf("len = %d", len(sel))
	}
	for i := 1; i < len(sel); i++ {
		if idx.CentroidScore(q, sel[i-1]) < idx.CentroidScore(q, sel[i]) {
			t.Fatalf("clusters not in descending similarity order")
		}
	}
	// W larger than |C| clamps.
	if got := idx.SelectClusters(q, 100); len(got) != idx.NClusters() {
		t.Fatalf("W clamp: %d", len(got))
	}
}

// Searching with W = |C| must equal a brute-force scan over DECODED
// (quantized) vectors — the quantization is then the only approximation.
func TestFullWidthSearchMatchesDecodedExact(t *testing.T) {
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		idx, ds := buildSmall(t, metric)

		// Reconstruct the quantized database: centroid + decoded residual.
		recon := vecmath.NewMatrix(ds.N(), ds.D())
		dec := make([]float32, ds.D())
		codes := make([]byte, idx.PQ.M)
		for c := range idx.Lists {
			lst := &idx.Lists[c]
			for i, id := range lst.IDs {
				idx.PQ.Unpack(codes, lst.Codes[i*idx.PQ.CodeBytes():])
				idx.PQ.Decode(dec, codes)
				row := recon.Row(int(id))
				vecmath.Add(row, dec, idx.Centroids.Row(c))
			}
		}
		ex := exact.New(metric, recon)

		for qi := 0; qi < 5; qi++ {
			q := ds.Queries.Row(qi)
			got := idx.Search(q, SearchParams{W: idx.NClusters(), K: 10})
			want := ex.Search(q, 10)
			for i := range want {
				// IDs may differ when scores tie; compare scores.
				if math.Abs(float64(got[i].Score-want[i].Score)) > 1e-3 {
					t.Fatalf("%v q%d rank %d: score %v want %v",
						metric, qi, i, got[i].Score, want[i].Score)
				}
			}
		}
	}
}

func TestRecallImprovesWithW(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	gt := exact.New(pq.L2, ds.Base).GroundTruth(ds.Queries, 10)

	prev := -1.0
	for _, w := range []int{1, 4, 20} {
		got := make([][]topk.Result, ds.Queries.Rows)
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			got[qi] = idx.Search(ds.Queries.Row(qi), SearchParams{W: w, K: 100})
		}
		r := recall.Mean(10, 100, gt, got)
		if r < prev-0.05 { // allow tiny non-monotonic noise
			t.Fatalf("recall dropped sharply: W=%d r=%v prev=%v", w, r, prev)
		}
		prev = r
	}
	if prev < 0.5 {
		t.Errorf("recall 10@100 at full W = %v, suspiciously low", prev)
	}
}

func TestHWF16CloseToFloat32(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	q := ds.Queries.Row(0)
	sw := idx.Search(q, SearchParams{W: 8, K: 10})
	hw := idx.Search(q, SearchParams{W: 8, K: 10, HWF16: true})
	// Rounding can permute near-ties but top-1 should agree nearly always
	// and scores stay within f16 epsilon of each other.
	if sw[0].ID != hw[0].ID {
		t.Logf("top-1 differs under f16 rounding: %v vs %v (tolerated)", sw[0], hw[0])
	}
	for i := range hw {
		if math.Abs(float64(hw[i].Score-sw[i].Score)) > math.Abs(float64(sw[i].Score))*0.01+0.1 {
			t.Fatalf("rank %d: f16 score %v far from f32 %v", i, hw[i].Score, sw[i].Score)
		}
	}
}

func TestRebiasLUTPanicsForL2(t *testing.T) {
	idx, _ := buildSmall(t, pq.L2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	idx.RebiasLUT(pq.NewLUT(idx.PQ), make([]float32, idx.D), 0, false)
}

func TestSearchPanicsOnBadParams(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	idx.Search(ds.Queries.Row(0), SearchParams{W: 0, K: 10})
}

func TestComputeStats(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	st := idx.ComputeStats()
	if st.NTotal != ds.N() || st.NClusters != 20 {
		t.Fatalf("stats identity: %+v", st)
	}
	if st.CodeBytes != idx.PQ.CodeBytes() {
		t.Errorf("CodeBytes = %d", st.CodeBytes)
	}
	if st.TotalCodeBytes != int64(ds.N()*idx.PQ.CodeBytes()) {
		t.Errorf("TotalCodeBytes = %d", st.TotalCodeBytes)
	}
	if st.MinList > st.MaxList || st.MaxList == 0 {
		t.Errorf("list sizes: min %d max %d", st.MinList, st.MaxList)
	}
	// D=32, M=8, Ks=16: code 4B vs raw 64B -> 16:1.
	if st.CompressionRatio != 16 {
		t.Errorf("CompressionRatio = %v, want 16", st.CompressionRatio)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		idx, ds := buildSmall(t, metric)
		var buf bytes.Buffer
		if err := idx.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Metric != idx.Metric || got.D != idx.D || got.NTotal != idx.NTotal {
			t.Fatalf("header mismatch")
		}
		// Identical search results.
		q := ds.Queries.Row(0)
		a := idx.Search(q, SearchParams{W: 8, K: 10})
		b := got.Search(q, SearchParams{W: 8, K: 10})
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: loaded index differs at rank %d", metric, i)
			}
		}
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	idx, _ := buildSmall(t, pq.L2)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, raw...)
	bad[0] = 'X'
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncation at several points.
	for _, n := range []int{4, 12, 40, len(raw) / 2} {
		if _, err := Load(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestBuildPanicsOnZeroClusters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(vecmath.NewMatrix(10, 4), pq.L2, Config{NClusters: 0, M: 2, Ks: 4})
}

func TestF16BuildRoundsModel(t *testing.T) {
	spec := dataset.SIFTLike(600, 5, 2)
	spec.D = 16
	ds := dataset.Generate(spec)
	idx := Build(ds.Base, pq.L2, Config{
		NClusters: 8, M: 4, Ks: 16, CoarseIters: 4, PQIters: 4, Seed: 1, F16: true,
	})
	for _, v := range idx.Centroids.Data {
		if v != float32(math.Float32frombits(math.Float32bits(v))) {
			break // trivially true; real check below
		}
	}
	// Check values survive an f16 round-trip unchanged (they were rounded).
	for i, v := range idx.Centroids.Data {
		if f16.Round(v) != v {
			t.Fatalf("centroid %d = %v not f16-representable", i, v)
		}
	}
	for i, v := range idx.PQ.Codebooks.Data {
		if f16.Round(v) != v {
			t.Fatalf("codebook %d = %v not f16-representable", i, v)
		}
	}
}

func BenchmarkSearchW8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	_ = rng
	spec := dataset.SIFTLike(20000, 1, 1)
	ds := dataset.Generate(spec)
	idx := Build(ds.Base, pq.L2, Config{
		NClusters: 64, M: 32, Ks: 16, CoarseIters: 5, PQIters: 5, Seed: 1,
	})
	q := ds.Queries.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(q, SearchParams{W: 8, K: 100})
	}
}
