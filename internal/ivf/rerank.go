package ivf

import (
	"fmt"

	"anna/internal/pq"
	"anna/internal/sq"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// Re-ranking ("re-rank with source coding", the paper's SIFT1B reference
// [23]): the PQ stage is approximate, so its candidate ORDER near the
// top can be wrong even when the right vectors are present in a larger
// candidate set. Retaining an 8-bit scalar-quantized copy of each vector
// lets the index re-score a shortlist almost exactly and fix the order,
// trading D bytes/vector of memory for recall at small k. On ANNA this
// refinement runs on the host over the returned top-k candidates; the
// accelerator's output is exactly the shortlist this code consumes.

// EnableRerank attaches an SQ8 store built from data (index-space, i.e.
// pre-rotated data must NOT be passed here — Build handles that).
func (x *Index) enableRerank(data *vecmath.Matrix) {
	q := sq.Train(data)
	x.SQ = sq.NewStore(q, data)
}

// CanRerank reports whether the index retains reconstructions.
func (x *Index) CanRerank() bool { return x.SQ != nil }

// SearchRerank runs the PQ search for p.K*factor candidates and
// re-scores them against the SQ8 reconstructions, returning the top p.K
// in refined order. factor < 1 is treated as 1 (plain re-scoring of the
// top-K). It panics if the index was built without rerank storage.
func (x *Index) SearchRerank(q []float32, p SearchParams, factor int) []topk.Result {
	if x.SQ == nil {
		panic("ivf: index built without rerank storage (Config.Rerank)")
	}
	if factor < 1 {
		factor = 1
	}
	wide := p
	wide.K = p.K * factor
	cands := x.Search(q, wide)

	qs := x.PrepQuery(q)
	dec := make([]float32, x.D)
	sel := topk.NewSelector(p.K)
	for _, c := range cands {
		x.SQ.Decode(dec, int(c.ID))
		var s float32
		if x.Metric == pq.InnerProduct {
			s = vecmath.Dot(qs, dec)
		} else {
			s = -vecmath.L2Sq(qs, dec)
		}
		sel.Push(c.ID, s)
	}
	return sel.Results()
}

// appendRerank extends the SQ store for Add (data already in index
// space). It panics on ID discontinuity, which would corrupt addressing.
func (x *Index) appendRerank(data *vecmath.Matrix, firstID int64) {
	if x.SQ == nil {
		return
	}
	if int64(x.SQ.N) != firstID {
		panic(fmt.Sprintf("ivf: rerank store has %d vectors, expected %d", x.SQ.N, firstID))
	}
	x.SQ.Append(data)
}
