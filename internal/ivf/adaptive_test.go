package ivf

import (
	"testing"

	"anna/internal/adaptive"
	"anna/internal/exact"
	"anna/internal/pq"
	"anna/internal/recall"
	"anna/internal/topk"
)

// The deterministic pin of the recall contract's base case: with both
// policies disabled — and separately with termination enabled but given
// infinite patience — the adaptive path must be bit-identical to the
// fixed-W scan, for both metrics and both rounding modes.
func TestAdaptiveDisabledBitIdentical(t *testing.T) {
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		for _, hw := range []bool{false, true} {
			idx, ds := buildSmall(t, metric)
			p := SearchParams{W: 10, K: 10, HWF16: hw}
			aps := map[string]adaptive.Params{
				"disabled":          {},
				"infinite-patience": {StopPatience: idx.NClusters() + 1, MinClusters: 1},
			}
			for name, ap := range aps {
				fixed, adapt := idx.NewSearcher(), idx.NewSearcher()
				for qi := 0; qi < ds.Queries.Rows; qi++ {
					q := ds.Queries.Row(qi)
					var fs, as ScanStats
					want := fixed.SearchPreppedStats(nil, q, p, &fs)
					got := adapt.SearchAdaptiveStats(nil, q, p, ap, &as)
					if len(got) != len(want) {
						t.Fatalf("%v/%s hw=%v q%d: %d results, want %d", metric, name, hw, qi, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%v/%s hw=%v q%d result %d: got %+v, want %+v",
								metric, name, hw, qi, i, got[i], want[i])
						}
					}
					if as.Clusters != fs.Clusters || as.Scanned != fs.Scanned {
						t.Fatalf("%v/%s hw=%v q%d: stats diverged (clusters %d vs %d, scanned %d vs %d)",
							metric, name, hw, qi, as.Clusters, fs.Clusters, as.Scanned, fs.Scanned)
					}
				}
			}
		}
	}
}

// Early termination must actually cut work: on clustered data with a
// small patience the mean clusters scanned stays well under W, and
// recall against the fixed scan stays high.
func TestAdaptiveTerminationCutsClustersScanned(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	w := idx.NClusters() // probe everything, let termination decide
	p := SearchParams{W: w, K: 10}
	ap := adaptive.Params{StopPatience: 3, MinClusters: 4}

	s := idx.NewSearcher()
	var st ScanStats
	adaptRes := make([][]topk.Result, ds.Queries.Rows)
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		adaptRes[qi] = s.SearchAdaptiveStats(nil, ds.Queries.Row(qi), p, ap, &st)
	}
	mean := float64(st.Clusters) / float64(ds.Queries.Rows)
	if mean >= float64(w) {
		t.Fatalf("mean clusters scanned %.1f did not drop below W=%d", mean, w)
	}
	if st.Escalated != 0 {
		t.Fatalf("Escalated = %d without escalation enabled", st.Escalated)
	}

	gt := exact.New(pq.L2, ds.Base).GroundTruth(ds.Queries, 10)
	fixedRes := make([][]topk.Result, ds.Queries.Rows)
	fs := idx.NewSearcher()
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		fixedRes[qi], _, _ = fs.SearchPrepped(nil, ds.Queries.Row(qi), p)
	}
	ra := recall.Mean(10, 10, gt, adaptRes)
	rf := recall.Mean(10, 10, gt, fixedRes)
	if ra < rf-0.1 {
		t.Fatalf("terminated recall %.3f fell more than 10pts below fixed %.3f", ra, rf)
	}
	t.Logf("mean clusters %.1f/%d, recall %.3f vs fixed %.3f", mean, w, ra, rf)
}

// Escalation must improve recall over the plain PQ ordering at the same
// W (it corrects PQ misordering inside the band), and with a band wide
// enough to cover every wide candidate it must match SearchRerank
// exactly — same candidates, same float32 re-scoring.
func TestAdaptiveEscalationMatchesRerank(t *testing.T) {
	idx, ds := buildRerank(t, false) // no rotation: prepped == raw query
	p := SearchParams{W: 10, K: 10}
	const factor = 8

	gt := exact.New(pq.L2, ds.Base).GroundTruth(ds.Queries, 10)
	s := idx.NewSearcher()
	var st ScanStats
	plain := make([][]topk.Result, ds.Queries.Rows)
	escal := make([][]topk.Result, ds.Queries.Rows)
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		q := ds.Queries.Row(qi)
		plain[qi], _, _ = s.SearchPrepped(nil, q, p)
		escal[qi] = s.SearchAdaptiveStats(nil, q, p, adaptive.Params{EscalateFactor: factor, Margin: 1e9}, &st)

		want := idx.SearchRerank(q, p, factor)
		if len(escal[qi]) != len(want) {
			t.Fatalf("q%d: %d results, want %d", qi, len(escal[qi]), len(want))
		}
		for i := range want {
			if escal[qi][i] != want[i] {
				t.Fatalf("q%d result %d: escalation %+v vs SearchRerank %+v", qi, i, escal[qi][i], want[i])
			}
		}
	}
	if st.Escalated == 0 {
		t.Fatal("no candidates escalated")
	}
	rp := recall.Mean(10, 10, gt, plain)
	re := recall.Mean(10, 10, gt, escal)
	if re <= rp {
		t.Errorf("escalated recall %.3f not above plain %.3f", re, rp)
	}
}

// A narrow band escalates fewer candidates than the full wide set while
// still always covering the top K.
func TestAdaptiveMarginBoundsEscalation(t *testing.T) {
	idx, ds := buildRerank(t, false)
	p := SearchParams{W: 10, K: 10}
	s := idx.NewSearcher()
	var narrow, wide ScanStats
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		q := ds.Queries.Row(qi)
		s.SearchAdaptiveStats(nil, q, p, adaptive.Params{EscalateFactor: 8, Margin: 0.05}, &narrow)
		s.SearchAdaptiveStats(nil, q, p, adaptive.Params{EscalateFactor: 8, Margin: 1e9}, &wide)
	}
	if narrow.Escalated < int64(p.K*ds.Queries.Rows) {
		t.Fatalf("narrow band escalated %d < K per query", narrow.Escalated)
	}
	if narrow.Escalated >= wide.Escalated {
		t.Fatalf("narrow band escalated %d, not below full band %d", narrow.Escalated, wide.Escalated)
	}
}

// Tombstoned IDs must never resurface through the escalation band: the
// band is drawn from the tombstone-gated scan, never from the SQ store.
func TestAdaptiveEscalationRespectsTombstones(t *testing.T) {
	idx, ds := buildRerank(t, false)
	p := SearchParams{W: idx.NClusters(), K: 10}
	ap := adaptive.Params{StopPatience: 3, MinClusters: 4, EscalateFactor: 8, Margin: 0.5}
	s := idx.NewSearcher()
	q := ds.Queries.Row(0)

	before := s.SearchAdaptive(q, p, ap)
	dead := make(map[int64]bool)
	for _, r := range before[:5] {
		dead[r.ID] = true
		idx.Delete(r.ID)
	}
	after := s.SearchAdaptive(q, p, ap)
	if len(after) == 0 {
		t.Fatal("no results after deletes")
	}
	for _, r := range after {
		if dead[r.ID] {
			t.Fatalf("deleted ID %d resurfaced through escalation", r.ID)
		}
	}
}

// Escalation with no SQ8 store degrades to the plain PQ ordering
// instead of panicking (the serving layer may enable escalation on an
// index loaded without rerank storage).
func TestAdaptiveEscalationWithoutStoreDegrades(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	p := SearchParams{W: 10, K: 10}
	s := idx.NewSearcher()
	q := ds.Queries.Row(0)
	got := s.SearchAdaptive(q, p, adaptive.Params{EscalateFactor: 4, Margin: 0.2})
	want, _, _ := idx.NewSearcher().SearchPrepped(nil, q, p)
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
