package ivf

import (
	"bytes"
	"testing"

	"anna/internal/dataset"
	"anna/internal/exact"
	"anna/internal/pq"
	"anna/internal/recall"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

func buildRerank(t *testing.T, rotate bool) (*Index, *dataset.Dataset) {
	t.Helper()
	spec := dataset.SIFTLike(3000, 24, 1)
	spec.D = 32
	ds := dataset.Generate(spec)
	idx := Build(ds.Base, pq.L2, Config{
		NClusters: 20, M: 8, Ks: 16, CoarseIters: 6, PQIters: 6, Seed: 3,
		Rerank: true, Rotate: rotate,
	})
	return idx, ds
}

// Re-ranking must improve recall at small k: the PQ stage misorders
// near-ties that the SQ8 re-scoring fixes.
func TestRerankImprovesSmallKRecall(t *testing.T) {
	idx, ds := buildRerank(t, false)
	if !idx.CanRerank() {
		t.Fatal("rerank storage missing")
	}
	gt := exact.New(pq.L2, ds.Base).GroundTruth(ds.Queries, 10)

	plain := make([][]topk.Result, ds.Queries.Rows)
	refined := make([][]topk.Result, ds.Queries.Rows)
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		q := ds.Queries.Row(qi)
		plain[qi] = idx.Search(q, SearchParams{W: 10, K: 10})
		refined[qi] = idx.SearchRerank(q, SearchParams{W: 10, K: 10}, 8)
	}
	rp := recall.Mean(10, 10, gt, plain)
	rr := recall.Mean(10, 10, gt, refined)
	if rr <= rp {
		t.Errorf("rerank recall %.3f not above plain %.3f", rr, rp)
	}
}

func TestRerankWithRotation(t *testing.T) {
	idx, ds := buildRerank(t, true)
	q := ds.Queries.Row(0)
	res := idx.SearchRerank(q, SearchParams{W: idx.NClusters(), K: 5}, 4)
	if len(res) != 5 {
		t.Fatalf("%d results", len(res))
	}
	// The refined scores approximate exact similarities closely (SQ8
	// error), so the refined top-1 should be the exact top-1 almost
	// always on well-separated data.
	ex := exact.New(pq.L2, ds.Base).Search(q, 1)
	if res[0].ID != ex[0].ID {
		t.Logf("refined top-1 %d vs exact %d (SQ8 tie, tolerated)", res[0].ID, ex[0].ID)
	}
}

func TestRerankSerialization(t *testing.T) {
	idx, ds := buildRerank(t, false)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CanRerank() {
		t.Fatal("rerank store lost in serialization")
	}
	q := ds.Queries.Row(0)
	a := idx.SearchRerank(q, SearchParams{W: 8, K: 5}, 4)
	b := got.SearchRerank(q, SearchParams{W: 8, K: 5}, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded rerank differs at %d", i)
		}
	}
}

func TestRerankAdd(t *testing.T) {
	idx, ds := buildRerank(t, false)
	extra := vecmath.NewMatrix(10, ds.D())
	for i := 0; i < 10; i++ {
		extra.SetRow(i, ds.Base.Row(i*3))
	}
	first := idx.Add(extra)
	if idx.SQ.N != idx.NTotal {
		t.Fatalf("SQ store %d vs NTotal %d", idx.SQ.N, idx.NTotal)
	}
	// The added vector is retrievable with refined scoring.
	res := idx.SearchRerank(extra.Row(2), SearchParams{W: idx.NClusters(), K: 10}, 4)
	found := false
	for _, r := range res {
		if r.ID == first+2 || r.ID == 6 { // duplicate of base row 6
			found = true
		}
	}
	if !found {
		t.Errorf("added vector not retrieved after rerank: %+v", res)
	}
}

func TestRerankPanicsWithoutStorage(t *testing.T) {
	idx, ds := buildSmall(t, pq.L2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	idx.SearchRerank(ds.Queries.Row(0), SearchParams{W: 2, K: 2}, 2)
}

func TestRerankFactorFloor(t *testing.T) {
	idx, ds := buildRerank(t, false)
	// factor < 1 behaves as plain re-scoring of the top-K (no panic).
	res := idx.SearchRerank(ds.Queries.Row(0), SearchParams{W: 4, K: 5}, 0)
	if len(res) != 5 {
		t.Fatalf("%d results", len(res))
	}
}

// factor < 1 (zero or negative) must clamp to 1: identical results to
// an explicit factor of 1 — plain re-scoring of the top-K.
func TestRerankFactorClampBitIdentical(t *testing.T) {
	idx, ds := buildRerank(t, false)
	p := SearchParams{W: 8, K: 10}
	for _, factor := range []int{0, -3} {
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			q := ds.Queries.Row(qi)
			want := idx.SearchRerank(q, p, 1)
			got := idx.SearchRerank(q, p, factor)
			if len(got) != len(want) {
				t.Fatalf("factor=%d q%d: %d results, want %d", factor, qi, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("factor=%d q%d result %d: got %+v, want %+v", factor, qi, i, got[i], want[i])
				}
			}
		}
	}
}

// K larger than the candidate pool: the refined list returns every
// candidate the probed lists held, in exact descending refined order,
// without panicking in the SQ decode loop.
func TestRerankKExceedsCandidates(t *testing.T) {
	idx, ds := buildRerank(t, false)
	q := ds.Queries.Row(0)
	k := idx.NTotal + 10
	res := idx.SearchRerank(q, SearchParams{W: idx.NClusters(), K: k}, 4)
	if len(res) != idx.NTotal {
		t.Fatalf("%d results, want every indexed vector (%d)", len(res), idx.NTotal)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatalf("results not sorted at %d: %g > %g", i, res[i].Score, res[i-1].Score)
		}
	}
}

// Tombstoned IDs must never resurface through the SQ8 shortlist: the
// rerank candidates come from the tombstone-gated PQ search, and the
// SQ store (which still holds deleted vectors' codes) is only ever
// indexed by those surviving candidates.
func TestRerankTombstonesNeverResurface(t *testing.T) {
	idx, ds := buildRerank(t, false)
	p := SearchParams{W: idx.NClusters(), K: 10}
	q := ds.Queries.Row(0)
	before := idx.SearchRerank(q, p, 8)
	dead := make(map[int64]bool)
	for _, r := range before[:5] {
		dead[r.ID] = true
	}
	for id := range dead {
		idx.Delete(id)
	}
	after := idx.SearchRerank(q, p, 8)
	if len(after) != p.K {
		t.Fatalf("%d results after deletes, want %d", len(after), p.K)
	}
	for _, r := range after {
		if dead[r.ID] {
			t.Fatalf("deleted ID %d resurfaced through the SQ8 shortlist", r.ID)
		}
	}
}
