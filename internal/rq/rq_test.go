package rq

import (
	"math"
	"math/rand"
	"testing"

	"anna/internal/pq"
	"anna/internal/vecmath"
)

func randMatrix(rows, cols int, seed int64) *vecmath.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vecmath.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func TestTrainShapes(t *testing.T) {
	data := randMatrix(800, 16, 1)
	q := Train(data, Config{M: 4, Ks: 16, Iters: 6, Seed: 2})
	if q.D != 16 || q.M != 4 || q.Ks != 16 {
		t.Fatalf("shape %+v", q)
	}
	if q.Codebooks.Rows != 64 || q.Codebooks.Cols != 16 {
		t.Fatalf("codebooks %dx%d (full-dimensional codewords expected)",
			q.Codebooks.Rows, q.Codebooks.Cols)
	}
	if q.CodeBytes() != 2 { // 4 stages x 4 bits
		t.Errorf("CodeBytes = %d", q.CodeBytes())
	}
}

func TestStagesReduceResidual(t *testing.T) {
	data := randMatrix(1000, 16, 3)
	test := randMatrix(50, 16, 4)
	prev := math.Inf(1)
	for _, m := range []int{1, 2, 4} {
		q := Train(data, Config{M: m, Ks: 16, Iters: 8, Seed: 5})
		dec := make([]float32, 16)
		var err float64
		for r := 0; r < test.Rows; r++ {
			codes := q.Encode(nil, test.Row(r))
			q.Decode(dec, codes)
			err += float64(vecmath.L2Sq(dec, test.Row(r)))
		}
		if err >= prev {
			t.Errorf("M=%d error %v not below previous %v", m, err, prev)
		}
		prev = err
	}
}

// The ADC identity: LUT-sum equals the inner product with the decoded
// vector — the property that makes the SCM hardware consume RQ codes
// unchanged.
func TestADCMatchesDecodedIP(t *testing.T) {
	data := randMatrix(800, 12, 6)
	q := Train(data, Config{M: 3, Ks: 16, Iters: 6, Seed: 7})
	rng := rand.New(rand.NewSource(8))
	qv := make([]float32, 12)
	for i := range qv {
		qv[i] = float32(rng.NormFloat64())
	}
	var lut LUT
	q.FillIP(&lut, qv)
	dec := make([]float32, 12)
	for trial := 0; trial < 40; trial++ {
		v := make([]float32, 12)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		codes := q.Encode(nil, v)
		q.Decode(dec, codes)
		want := vecmath.Dot(qv, dec)
		if got := lut.ADC(codes); math.Abs(float64(got-want)) > 1e-3 {
			t.Fatalf("ADC %v vs direct %v", got, want)
		}
	}
}

// At equal code size, additive codewords (full-dimensional) reconstruct
// better than PQ's sub-space codewords on correlated data — the quality
// motivation for the AQ family.
func TestBeatsPQOnCorrelatedData(t *testing.T) {
	// Correlated dimensions: low-rank structure.
	rng := rand.New(rand.NewSource(9))
	data := vecmath.NewMatrix(1500, 16)
	for r := 0; r < data.Rows; r++ {
		a, b := float32(rng.NormFloat64()), float32(rng.NormFloat64())
		row := data.Row(r)
		for j := range row {
			row[j] = a*float32(j%4) + b*float32(j/4) + float32(rng.NormFloat64())*0.1
		}
	}
	test := vecmath.NewMatrix(60, 16)
	for r := 0; r < test.Rows; r++ {
		copy(test.Row(r), data.Row(r*20))
	}

	rqQ := Train(data, Config{M: 4, Ks: 16, Iters: 8, Seed: 1})
	pqQ := pq.Train(data, pq.Config{M: 4, Ks: 16, Iters: 8, Seed: 1})

	dec := make([]float32, 16)
	var rqErr, pqErr float64
	for r := 0; r < test.Rows; r++ {
		rqQ.Decode(dec, rqQ.Encode(nil, test.Row(r)))
		rqErr += float64(vecmath.L2Sq(dec, test.Row(r)))
		codes := pqQ.Encode(nil, test.Row(r))
		pqDec := make([]float32, 16)
		pqQ.Decode(pqDec, codes)
		pqErr += float64(vecmath.L2Sq(pqDec, test.Row(r)))
	}
	if rqErr >= pqErr {
		t.Errorf("RQ error %v not below PQ %v on correlated data", rqErr, pqErr)
	}
}

func TestFillCyclesIsMTimesPQ(t *testing.T) {
	q := &Quantizer{D: 128, M: 64, Ks: 256}
	// PQ fill is D*k*/N_cu = 128*256/96 = 342; RQ is M x that.
	if got := q.FillCycles(96); got != (64*128*256+95)/96 {
		t.Errorf("FillCycles = %d", got)
	}
}

func TestPanics(t *testing.T) {
	data := randMatrix(100, 8, 1)
	q := Train(data, Config{M: 2, Ks: 8, Iters: 3})
	for _, f := range []func(){
		func() { Train(data, Config{M: 0, Ks: 8}) },
		func() { Train(data, Config{M: 2, Ks: 1}) },
		func() { Train(randMatrix(4, 8, 1), Config{M: 2, Ks: 8}) },
		func() { q.Encode(nil, make([]float32, 7)) },
		func() { q.Decode(make([]float32, 8), make([]byte, 1)) },
		func() { q.FillIP(&LUT{}, make([]float32, 7)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
