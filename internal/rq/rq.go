// Package rq implements residual (additive) quantization: M codebooks of
// FULL-dimensional codewords, a vector encoded as the sum of one codeword
// per stage. This is the additive-quantization family (AQ [Babenko &
// Lempitsky]) the paper says ANNA "can be slightly extended to support...
// which utilizes M identifiers each associated with D-dimensional
// codeword" (Section VI).
//
// For inner-product search the compatibility is exact: the score
// decomposes as s(q, x̃) = Σᵢ q·Cᵢ[eᵢ(x)], so the hardware's lookup
// tables simply hold q·Cᵢ[j] — the only change from PQ is that each
// table entry is computed from a D-dimensional (not D/M-dimensional)
// codeword, which costs the CPM M× more fill cycles (M·D·k*/N_cu) and
// leaves the SCM scan loop untouched. L2 additive search needs
// cross-term corrections and is out of scope here, as in the paper.
package rq

import (
	"fmt"

	"anna/internal/kmeans"
	"anna/internal/vecmath"
)

// Quantizer holds M stages of Ks full-dimensional codewords.
type Quantizer struct {
	D, M, Ks int
	// Codebooks has M*Ks rows of D values: stage i's codeword j is row
	// i*Ks+j.
	Codebooks *vecmath.Matrix
}

// Config controls training.
type Config struct {
	M, Ks   int
	Iters   int // k-means iterations per stage (default 15)
	Seed    int64
	Workers int
}

// Train learns the stage codebooks greedily: stage i clusters the
// residuals left by stages 0..i-1 (the standard RQ construction).
func Train(data *vecmath.Matrix, cfg Config) *Quantizer {
	if cfg.M <= 0 || cfg.Ks < 2 || cfg.Ks > 256 {
		panic(fmt.Sprintf("rq: invalid config M=%d Ks=%d", cfg.M, cfg.Ks))
	}
	if data.Rows < cfg.Ks {
		panic("rq: fewer training vectors than codewords")
	}
	if cfg.Iters == 0 {
		cfg.Iters = 15
	}
	q := &Quantizer{
		D: data.Cols, M: cfg.M, Ks: cfg.Ks,
		Codebooks: vecmath.NewMatrix(cfg.M*cfg.Ks, data.Cols),
	}
	resid := data.Clone()
	for i := 0; i < cfg.M; i++ {
		res := kmeans.Train(resid, kmeans.Config{
			K: cfg.Ks, MaxIters: cfg.Iters, Seed: cfg.Seed + int64(i),
			Workers: cfg.Workers,
		})
		for j := 0; j < cfg.Ks; j++ {
			q.Codebooks.SetRow(i*cfg.Ks+j, res.Centroids.Row(j))
		}
		// Peel this stage off the residuals.
		for r := 0; r < resid.Rows; r++ {
			vecmath.Sub(resid.Row(r), resid.Row(r), res.Centroids.Row(int(res.Assign[r])))
		}
	}
	return q
}

// Codeword returns stage i's codeword j (shared storage).
func (q *Quantizer) Codeword(i, j int) []float32 { return q.Codebooks.Row(i*q.Ks + j) }

// CodeBytes is the packed code size (one byte per stage for Ks<=256;
// nibble packing applies for Ks=16 as in PQ, handled by the caller's
// layout — here codes are unpacked identifiers).
func (q *Quantizer) CodeBytes() int {
	bits := 0
	for 1<<bits < q.Ks {
		bits++
	}
	return (q.M*bits + 7) / 8
}

// Encode greedily quantizes v stage by stage, appending one identifier
// per stage to dst.
func (q *Quantizer) Encode(dst []byte, v []float32) []byte {
	if len(v) != q.D {
		panic("rq: Encode dimension mismatch")
	}
	resid := make([]float32, q.D)
	copy(resid, v)
	for i := 0; i < q.M; i++ {
		best, bd := 0, vecmath.L2Sq(resid, q.Codeword(i, 0))
		for j := 1; j < q.Ks; j++ {
			if d := vecmath.L2Sq(resid, q.Codeword(i, j)); d < bd {
				best, bd = j, d
			}
		}
		dst = append(dst, byte(best))
		vecmath.Sub(resid, resid, q.Codeword(i, best))
	}
	return dst
}

// Decode reconstructs the additive approximation into dst (length D).
func (q *Quantizer) Decode(dst []float32, codes []byte) {
	if len(codes) != q.M || len(dst) != q.D {
		panic("rq: Decode size mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i, c := range codes {
		vecmath.Add(dst, dst, q.Codeword(i, int(c)))
	}
}

// LUT is the per-query inner-product table set: Values[i*Ks+j] = q·Cᵢ[j].
// Identical in shape to the PQ LUT, so ANNA's SCM consumes it unchanged.
type LUT struct {
	M, Ks  int
	Values []float32
}

// FillIP builds the tables for query qv. Cost note: each entry is a
// D-dimensional dot product, so the CPM fill time is M·D·k*/N_cu cycles
// (M× the PQ cost) — the "slight extension" the paper mentions.
func (q *Quantizer) FillIP(l *LUT, qv []float32) {
	if len(qv) != q.D {
		panic("rq: FillIP dimension mismatch")
	}
	if l.Values == nil {
		l.M, l.Ks = q.M, q.Ks
		l.Values = make([]float32, q.M*q.Ks)
	}
	for i := 0; i < q.M; i++ {
		for j := 0; j < q.Ks; j++ {
			l.Values[i*q.Ks+j] = vecmath.Dot(qv, q.Codeword(i, j))
		}
	}
}

// ADC computes the approximate inner product Σᵢ Lᵢ[codeᵢ] — the exact
// same M-lookup sum-reduction the SCM hardware performs for PQ.
func (l *LUT) ADC(codes []byte) float32 {
	var s float32
	for i, c := range codes {
		s += l.Values[i*l.Ks+int(c)]
	}
	return s
}

// FillCycles returns the CPM cycles to fill one LUT set at nCU
// multiply-accumulators: M·D·k*/N_cu (vs D·k*/N_cu for PQ).
func (q *Quantizer) FillCycles(nCU int) int64 {
	return (int64(q.M)*int64(q.D)*int64(q.Ks) + int64(nCU) - 1) / int64(nCU)
}
