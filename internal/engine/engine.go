// Package engine is the software ANNS runtime: a multi-goroutine CPU
// implementation of two-level PQ search over an ivf.Index. It provides
// the two execution disciplines the paper contrasts (Section II-D and
// Figure 5):
//
//   - QueryAtATime: each query independently selects W clusters and scans
//     them, the ScaNN-style discipline with no cross-query list reuse.
//   - ClusterMajor: per-cluster query lists are built first and each
//     visited cluster is scanned once for all its queries — the
//     discipline Faiss16's CPU implementation approximates and ANNA's
//     Section IV optimization implements in hardware.
//
// Both disciplines return identical results; they differ in wall-clock
// behaviour and memory traffic, which the real measured QPS reported by
// Run exposes. This is the repository's genuine CPU baseline alongside
// the calibrated analytic models of internal/cost.
//
// The runtime is a fixed worker pool, not a goroutine per query: each
// worker owns one reusable ivf.Searcher (LUT + cluster-selection scratch
// + top-k selector) for its whole lifetime, pulls work items off an
// atomic counter, and runs the fused scan kernel (ivf.ScanListADC).
// Worker searchers and result arenas are pooled on the Engine across Run
// calls, so the steady state allocates only the per-Run report and
// per-query result headers.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"anna/internal/adaptive"
	"anna/internal/ivf"
	"anna/internal/pq"
	"anna/internal/simd"
	"anna/internal/topk"
	"anna/internal/trace"
	"anna/internal/vecmath"
)

// Mode selects the execution discipline.
type Mode int

const (
	// QueryAtATime processes each query independently (no list reuse).
	QueryAtATime Mode = iota
	// ClusterMajor groups queries by visited cluster and scans each
	// cluster once for all of them.
	ClusterMajor
)

func (m Mode) String() string {
	switch m {
	case QueryAtATime:
		return "query-at-a-time"
	case ClusterMajor:
		return "cluster-major"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configure a run.
type Options struct {
	Mode    Mode
	W       int
	K       int
	Workers int // default GOMAXPROCS
	// HWF16 matches the accelerator's half-precision LUT/score rounding,
	// for bit-exact comparisons against the simulator.
	HWF16 bool
	// Adaptive enables per-query effort policies (early termination of
	// the cluster scan and/or SQ8 precision escalation — see
	// internal/adaptive). When enabled the run always uses the
	// query-at-a-time discipline regardless of Mode: termination is a
	// per-query sequential decision over that query's clusters, which
	// cluster-major's cross-query scan order cannot honour.
	Adaptive adaptive.Params
}

// Report is the outcome of a run.
type Report struct {
	Results [][]topk.Result
	// Elapsed is the wall-clock duration of the search phase.
	Elapsed time.Duration
	// QPS is Queries/Elapsed.
	QPS float64
	// ScannedVectors counts (query, vector) similarity computations.
	ScannedVectors int64
	// ListBytesTouched is the code bytes read, counting a list once per
	// visiting query in QueryAtATime and once per visited cluster in
	// ClusterMajor (the traffic difference of Figure 5).
	ListBytesTouched int64
	// SelectTime / ScanTime / MergeTime split the run into the paper's
	// stages — cluster filtering, LUT build + list scan, top-k result
	// merge. They are summed across workers (CPU time, not wall clock),
	// so their total can exceed Elapsed on multi-worker runs.
	SelectTime, ScanTime, MergeTime time.Duration
	// SIMD names the kernel dispatch the run used ("avx2" or "scalar",
	// see internal/simd) — fixed per process, recorded so benchmark
	// reports and A/B comparisons can't silently mix kernel classes.
	SIMD string
	// ClustersScanned counts inverted lists actually scanned across the
	// batch: n*W on the fixed path (and in cluster-major, where it
	// counts (query, cluster) visits), possibly fewer under adaptive
	// early termination.
	ClustersScanned int64
	// Escalations counts candidates re-scored through the SQ8
	// escalation band; RerankTime is the worker time that took (zero
	// unless Options.Adaptive enabled escalation).
	Escalations int64
	RerankTime  time.Duration
}

// Engine wraps an index for repeated searches. It pools per-worker
// search state across Run calls; an Engine is safe for concurrent Runs.
type Engine struct {
	idx *ivf.Index

	// Worker-pool saturation gauges, exposed live for the serving
	// layer's /metrics endpoint. queued counts work items (queries in
	// query-at-a-time and cluster-major phase 1, visited clusters in
	// phase 2) admitted to the pool but not yet picked up by a worker;
	// inflight counts items a worker is executing right now. Both drop
	// back to zero between runs, including after a cancelled run.
	queued   int64
	inflight int64

	mu        sync.Mutex
	searchers []*ivf.Searcher
	selectors []*topk.Selector // cluster-major per-query selectors
	luts      []*pq.LUT        // cluster-major per-query IP tables
}

// QueueDepth returns the number of work items admitted to the worker
// pool but not yet started (see Engine.queued).
func (e *Engine) QueueDepth() int64 { return atomic.LoadInt64(&e.queued) }

// InFlight returns the number of work items workers are executing now.
func (e *Engine) InFlight() int64 { return atomic.LoadInt64(&e.inflight) }

// New returns an engine over idx.
func New(idx *ivf.Index) *Engine { return &Engine{idx: idx} }

// grabSearchers checks n worker contexts out of the pool, creating any
// the pool cannot supply.
func (e *Engine) grabSearchers(n int) []*ivf.Searcher {
	out := make([]*ivf.Searcher, 0, n)
	e.mu.Lock()
	for len(out) < n && len(e.searchers) > 0 {
		out = append(out, e.searchers[len(e.searchers)-1])
		e.searchers = e.searchers[:len(e.searchers)-1]
	}
	e.mu.Unlock()
	for len(out) < n {
		out = append(out, e.idx.NewSearcher())
	}
	return out
}

func (e *Engine) releaseSearchers(ss []*ivf.Searcher) {
	e.mu.Lock()
	e.searchers = append(e.searchers, ss...)
	e.mu.Unlock()
}

// grabSelectors checks n reset selectors of capacity k out of the pool;
// pooled selectors built for a different k are discarded.
func (e *Engine) grabSelectors(n, k int) []*topk.Selector {
	out := make([]*topk.Selector, 0, n)
	e.mu.Lock()
	for len(out) < n && len(e.selectors) > 0 {
		s := e.selectors[len(e.selectors)-1]
		e.selectors = e.selectors[:len(e.selectors)-1]
		if s.K() != k {
			continue
		}
		s.Reset()
		out = append(out, s)
	}
	e.mu.Unlock()
	for len(out) < n {
		out = append(out, topk.NewSelector(k))
	}
	return out
}

func (e *Engine) releaseSelectors(ss []*topk.Selector) {
	e.mu.Lock()
	e.selectors = append(e.selectors, ss...)
	e.mu.Unlock()
}

// grabLUTs checks n LUTs (all sized for the index's quantizer) out of
// the pool.
func (e *Engine) grabLUTs(n int) []*pq.LUT {
	out := make([]*pq.LUT, 0, n)
	e.mu.Lock()
	for len(out) < n && len(e.luts) > 0 {
		out = append(out, e.luts[len(e.luts)-1])
		e.luts = e.luts[:len(e.luts)-1]
	}
	e.mu.Unlock()
	for len(out) < n {
		out = append(out, pq.NewLUT(e.idx.PQ))
	}
	return out
}

func (e *Engine) releaseLUTs(ls []*pq.LUT) {
	e.mu.Lock()
	e.luts = append(e.luts, ls...)
	e.mu.Unlock()
}

// Run executes the batch and returns results plus measured performance.
// It never fails; deadline-aware callers use RunContext.
func (e *Engine) Run(queries *vecmath.Matrix, opt Options) *Report {
	rep, _ := e.RunContext(context.Background(), queries, opt)
	return rep
}

// RunContext is Run with cancellation: workers re-check ctx between work
// items (per query, and per visited cluster in cluster-major phase 2),
// so a cancelled batch stops within one item's latency per worker. On
// cancellation it returns ctx's error and a nil report; pool gauges are
// unwound so QueueDepth/InFlight read zero afterwards.
//
// When ctx carries a trace.Trace (trace.NewContext), the run attaches
// its per-stage timings as select/scan/merge spans and its scanned
// count to the trace. An untraced context pays one allocation-free
// lookup.
func (e *Engine) RunContext(ctx context.Context, queries *vecmath.Matrix, opt Options) (*Report, error) {
	if opt.W <= 0 || opt.K <= 0 {
		panic(fmt.Sprintf("engine: invalid options W=%d K=%d", opt.W, opt.K))
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	queries = e.idx.PrepQueries(queries) // OPQ rotation, when trained with one
	mode := opt.Mode
	if opt.Adaptive.Enabled() {
		// Per-query early termination is sequential in one query's
		// cluster order; cluster-major interleaves clusters across
		// queries, so adaptive runs force the query-at-a-time discipline.
		mode = QueryAtATime
	}
	var rep *Report
	var err error
	switch mode {
	case QueryAtATime:
		rep, err = e.runQueryMajor(ctx, queries, opt)
	case ClusterMajor:
		rep, err = e.runClusterMajor(ctx, queries, opt)
	default:
		panic(fmt.Sprintf("engine: unknown mode %d", opt.Mode))
	}
	if err == nil {
		rep.SIMD = simd.Dispatch()
		if tr := trace.FromContext(ctx); tr != nil {
			tr.AddSpan("select", rep.SelectTime)
			tr.AddSpan("scan", rep.ScanTime)
			if rep.RerankTime > 0 {
				tr.AddSpan("rerank", rep.RerankTime)
			}
			tr.AddSpan("merge", rep.MergeTime)
			tr.Scanned += rep.ScannedVectors
			tr.ClustersScanned += rep.ClustersScanned
			tr.Escalated += rep.Escalations
		}
	}
	return rep, err
}

func (e *Engine) runQueryMajor(ctx context.Context, queries *vecmath.Matrix, opt Options) (*Report, error) {
	n := queries.Rows
	rep := &Report{Results: make([][]topk.Result, n)}
	workers := opt.Workers
	if workers > n {
		workers = n
	}
	searchers := e.grabSearchers(workers)
	defer e.releaseSearchers(searchers)
	// One arena backs every query's results; slots are disjoint, so
	// workers write without coordination. The arena is handed to the
	// caller inside rep.Results and therefore NOT pooled.
	arena := make([]topk.Result, n*opt.K)

	var next, processed int64
	var stats ivf.ScanStats
	var statsMu sync.Mutex
	atomic.AddInt64(&e.queued, int64(n))
	p := ivf.SearchParams{W: opt.W, K: opt.K, HWF16: opt.HWF16}
	adapt := opt.Adaptive.Enabled()
	start := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(s *ivf.Searcher) {
			defer wg.Done()
			var st ivf.ScanStats
			var done int64
			for ctx.Err() == nil {
				qi := int(atomic.AddInt64(&next, 1)) - 1
				if qi >= n {
					break
				}
				atomic.AddInt64(&e.queued, -1)
				atomic.AddInt64(&e.inflight, 1)
				slot := arena[qi*opt.K : qi*opt.K : (qi+1)*opt.K]
				if adapt {
					rep.Results[qi] = s.SearchAdaptiveStats(slot, queries.Row(qi), p, opt.Adaptive, &st)
				} else {
					rep.Results[qi] = s.SearchPreppedStats(slot, queries.Row(qi), p, &st)
				}
				atomic.AddInt64(&e.inflight, -1)
				done++
			}
			atomic.AddInt64(&processed, done)
			statsMu.Lock()
			stats.Add(st)
			statsMu.Unlock()
		}(searchers[wi])
	}
	wg.Wait()
	// Release the queue claims of items a cancelled run never started.
	atomic.AddInt64(&e.queued, atomic.LoadInt64(&processed)-int64(n))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep.Elapsed = time.Since(start)
	rep.ScannedVectors = stats.Scanned
	rep.ListBytesTouched = stats.ListBytes
	rep.SelectTime = stats.Select
	rep.ScanTime = stats.Scan
	rep.MergeTime = stats.Merge
	rep.ClustersScanned = stats.Clusters
	rep.Escalations = stats.Escalated
	rep.RerankTime = stats.Rerank
	if rep.Elapsed > 0 {
		rep.QPS = float64(n) / rep.Elapsed.Seconds()
	}
	return rep, nil
}

// scoredCluster is one cluster a query selected in phase 1, with its
// centroid score (q·c for inner product) retained for phase-2 reuse.
type scoredCluster struct {
	c     int
	score float32
}

// clusterVisit is one (query, cluster) pairing of cluster-major phase 2,
// carrying the phase-1 centroid score so inner-product scans can rebias
// their per-query LUT without recomputing q·c.
type clusterVisit struct {
	qi    int
	score float32
}

func (e *Engine) runClusterMajor(ctx context.Context, queries *vecmath.Matrix, opt Options) (*Report, error) {
	n := queries.Rows
	rep := &Report{Results: make([][]topk.Result, n)}
	workers := opt.Workers
	isIP := e.idx.Metric == pq.InnerProduct
	w := opt.W
	if w > e.idx.NClusters() {
		w = e.idx.NClusters()
	}
	start := time.Now()

	// Phase 1: cluster filtering for every query on a fixed worker pool.
	// Selected clusters AND their centroid scores are retained; for
	// inner product each query's LUT is filled exactly once here and only
	// rebias'd per cluster in phase 2 (the Section II-C reuse).
	perQuery := make([][]scoredCluster, n)
	selArena := make([]scoredCluster, n*w)
	var luts []*pq.LUT
	if isIP {
		luts = e.grabLUTs(n)
		defer e.releaseLUTs(luts)
	}
	var next, processed, selectNs int64
	atomic.AddInt64(&e.queued, int64(n))
	var wg sync.WaitGroup
	pw := workers
	if pw > n {
		pw = n
	}
	for wi := 0; wi < pw; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wstart := time.Now()
			var done int64
			cs := e.idx.NewClusterSelection(w)
			for ctx.Err() == nil {
				qi := int(atomic.AddInt64(&next, 1)) - 1
				if qi >= n {
					break
				}
				atomic.AddInt64(&e.queued, -1)
				atomic.AddInt64(&e.inflight, 1)
				q := queries.Row(qi)
				e.idx.SelectClustersBatch(cs, q)
				sel := selArena[qi*w : qi*w : (qi+1)*w]
				for i, c := range cs.Clusters {
					sel = append(sel, scoredCluster{c: c, score: cs.Scores[i]})
				}
				perQuery[qi] = sel
				if isIP {
					e.idx.PQ.FillIP(luts[qi], q)
					if opt.HWF16 {
						luts[qi].RoundF16()
					}
				}
				atomic.AddInt64(&e.inflight, -1)
				done++
			}
			atomic.AddInt64(&processed, done)
			atomic.AddInt64(&selectNs, int64(time.Since(wstart)))
		}()
	}
	wg.Wait()
	atomic.AddInt64(&e.queued, atomic.LoadInt64(&processed)-int64(n))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Invert to per-cluster visit lists (qi + phase-1 score), carved out
	// of one counted arena so the inversion never reallocates.
	nc := e.idx.NClusters()
	counts := make([]int, nc)
	total := 0
	for _, sel := range perQuery {
		for _, sc := range sel {
			counts[sc.c]++
			total++
		}
	}
	visitBacking := make([]clusterVisit, total)
	clusterVisits := make([][]clusterVisit, nc)
	nonEmpty := make([]int, 0, nc)
	off := 0
	for c, cnt := range counts {
		if cnt == 0 {
			continue
		}
		clusterVisits[c] = visitBacking[off : off : off+cnt]
		off += cnt
		nonEmpty = append(nonEmpty, c)
	}
	for qi, sel := range perQuery {
		for _, sc := range sel {
			clusterVisits[sc.c] = append(clusterVisits[sc.c], clusterVisit{qi: qi, score: sc.score})
		}
	}

	// Per-query selectors (pooled across Runs), each guarded by its own
	// mutex: different clusters touching the same query serialise only on
	// that query.
	sels := e.grabSelectors(n, opt.K)
	defer e.releaseSelectors(sels)
	locks := make([]sync.Mutex, n)

	// Phase 2: scan each visited cluster once, for all its queries, on a
	// fixed worker pool pulling clusters off an atomic counter.
	var scanned, bytes, scanNs int64
	next, processed = 0, 0
	nWork := int64(len(nonEmpty))
	atomic.AddInt64(&e.queued, nWork)
	cw := workers
	if cw > len(nonEmpty) {
		cw = len(nonEmpty)
	}
	for wi := 0; wi < cw; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wstart := time.Now()
			var done int64
			var lut *pq.LUT
			var scratch []float32
			if !isIP {
				lut = pq.NewLUT(e.idx.PQ)
				scratch = make([]float32, e.idx.D)
			}
			var myScanned, myBytes int64
			for ctx.Err() == nil {
				ci := int(atomic.AddInt64(&next, 1)) - 1
				if ci >= len(nonEmpty) {
					break
				}
				atomic.AddInt64(&e.queued, -1)
				atomic.AddInt64(&e.inflight, 1)
				c := nonEmpty[ci]
				for _, v := range clusterVisits[c] {
					if isIP {
						l := luts[v.qi]
						locks[v.qi].Lock()
						e.idx.RebiasLUTFromScore(l, v.score, opt.HWF16)
						e.idx.ScanListADC(sels[v.qi], l, c, opt.HWF16)
						locks[v.qi].Unlock()
					} else {
						e.idx.BuildLUT(lut, queries.Row(v.qi), c, scratch, opt.HWF16)
						locks[v.qi].Lock()
						e.idx.ScanListADC(sels[v.qi], lut, c, opt.HWF16)
						locks[v.qi].Unlock()
					}
					myScanned += int64(e.idx.Lists[c].Len())
				}
				myBytes += e.idx.ListBytes(c) // list touched once, reused by all queries
				atomic.AddInt64(&e.inflight, -1)
				done++
			}
			atomic.AddInt64(&scanned, myScanned)
			atomic.AddInt64(&bytes, myBytes)
			atomic.AddInt64(&processed, done)
			atomic.AddInt64(&scanNs, int64(time.Since(wstart)))
		}()
	}
	wg.Wait()
	atomic.AddInt64(&e.queued, atomic.LoadInt64(&processed)-nWork)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	mergeStart := time.Now()
	arena := make([]topk.Result, 0, n*opt.K)
	for qi := range sels {
		lo := len(arena)
		arena = sels[qi].ResultsAppend(arena)
		rep.Results[qi] = arena[lo:len(arena):len(arena)]
	}
	rep.MergeTime = time.Since(mergeStart)
	rep.Elapsed = time.Since(start)
	rep.ScannedVectors = scanned
	rep.ListBytesTouched = bytes
	rep.ClustersScanned = int64(total) // (query, cluster) visits; W per query
	rep.SelectTime = time.Duration(selectNs)
	rep.ScanTime = time.Duration(scanNs)
	if rep.Elapsed > 0 {
		rep.QPS = float64(n) / rep.Elapsed.Seconds()
	}
	return rep, nil
}
