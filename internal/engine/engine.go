// Package engine is the software ANNS runtime: a multi-goroutine CPU
// implementation of two-level PQ search over an ivf.Index. It provides
// the two execution disciplines the paper contrasts (Section II-D and
// Figure 5):
//
//   - QueryAtATime: each query independently selects W clusters and scans
//     them, the ScaNN-style discipline with no cross-query list reuse.
//   - ClusterMajor: per-cluster query lists are built first and each
//     visited cluster is scanned once for all its queries — the
//     discipline Faiss16's CPU implementation approximates and ANNA's
//     Section IV optimization implements in hardware.
//
// Both disciplines return identical results; they differ in wall-clock
// behaviour and memory traffic, which the real measured QPS reported by
// Run exposes. This is the repository's genuine CPU baseline alongside
// the calibrated analytic models of internal/cost.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"anna/internal/ivf"
	"anna/internal/pq"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// Mode selects the execution discipline.
type Mode int

const (
	// QueryAtATime processes each query independently (no list reuse).
	QueryAtATime Mode = iota
	// ClusterMajor groups queries by visited cluster and scans each
	// cluster once for all of them.
	ClusterMajor
)

func (m Mode) String() string {
	switch m {
	case QueryAtATime:
		return "query-at-a-time"
	case ClusterMajor:
		return "cluster-major"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configure a run.
type Options struct {
	Mode    Mode
	W       int
	K       int
	Workers int // default GOMAXPROCS
	// HWF16 matches the accelerator's half-precision LUT/score rounding,
	// for bit-exact comparisons against the simulator.
	HWF16 bool
}

// Report is the outcome of a run.
type Report struct {
	Results [][]topk.Result
	// Elapsed is the wall-clock duration of the search phase.
	Elapsed time.Duration
	// QPS is Queries/Elapsed.
	QPS float64
	// ScannedVectors counts (query, vector) similarity computations.
	ScannedVectors int64
	// ListBytesTouched is the code bytes read, counting a list once per
	// visiting query in QueryAtATime and once per visited cluster in
	// ClusterMajor (the traffic difference of Figure 5).
	ListBytesTouched int64
}

// Engine wraps an index for repeated searches.
type Engine struct {
	idx *ivf.Index
}

// New returns an engine over idx.
func New(idx *ivf.Index) *Engine { return &Engine{idx: idx} }

// Run executes the batch and returns results plus measured performance.
func (e *Engine) Run(queries *vecmath.Matrix, opt Options) *Report {
	if opt.W <= 0 || opt.K <= 0 {
		panic(fmt.Sprintf("engine: invalid options W=%d K=%d", opt.W, opt.K))
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	queries = e.idx.PrepQueries(queries) // OPQ rotation, when trained with one
	switch opt.Mode {
	case QueryAtATime:
		return e.runQueryMajor(queries, opt)
	case ClusterMajor:
		return e.runClusterMajor(queries, opt)
	default:
		panic(fmt.Sprintf("engine: unknown mode %d", opt.Mode))
	}
}

func (e *Engine) runQueryMajor(queries *vecmath.Matrix, opt Options) *Report {
	rep := &Report{Results: make([][]topk.Result, queries.Rows)}
	var scanned, bytes int64
	var mu sync.Mutex

	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Workers)
	for qi := 0; qi < queries.Rows; qi++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(qi int) {
			defer wg.Done()
			defer func() { <-sem }()
			q := queries.Row(qi)
			clusters := e.idx.SelectClusters(q, opt.W)
			sel := topk.NewSelector(opt.K)
			lut := pq.NewLUT(e.idx.PQ)
			scratch := make([]float32, e.idx.D)
			codeBuf := make([]byte, e.idx.PQ.M)
			var myScanned, myBytes int64

			if e.idx.Metric == pq.InnerProduct {
				e.idx.PQ.FillIP(lut, q)
				if opt.HWF16 {
					lut.RoundF16()
				}
				for _, c := range clusters {
					e.idx.RebiasLUT(lut, q, c, opt.HWF16)
					e.idx.ScanList(sel, lut, c, codeBuf, opt.HWF16)
					myScanned += int64(e.idx.Lists[c].Len())
					myBytes += e.idx.ListBytes(c)
				}
			} else {
				for _, c := range clusters {
					e.idx.BuildLUT(lut, q, c, scratch, opt.HWF16)
					e.idx.ScanList(sel, lut, c, codeBuf, opt.HWF16)
					myScanned += int64(e.idx.Lists[c].Len())
					myBytes += e.idx.ListBytes(c)
				}
			}
			rep.Results[qi] = sel.Results()
			mu.Lock()
			scanned += myScanned
			bytes += myBytes
			mu.Unlock()
		}(qi)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	rep.ScannedVectors = scanned
	rep.ListBytesTouched = bytes
	if rep.Elapsed > 0 {
		rep.QPS = float64(queries.Rows) / rep.Elapsed.Seconds()
	}
	return rep
}

func (e *Engine) runClusterMajor(queries *vecmath.Matrix, opt Options) *Report {
	rep := &Report{Results: make([][]topk.Result, queries.Rows)}
	start := time.Now()

	// Phase 1: cluster filtering for every query, in parallel.
	perQuery := make([][]int, queries.Rows)
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Workers)
	for qi := 0; qi < queries.Rows; qi++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(qi int) {
			defer wg.Done()
			defer func() { <-sem }()
			perQuery[qi] = e.idx.SelectClusters(queries.Row(qi), opt.W)
		}(qi)
	}
	wg.Wait()

	clusterQueries := make([][]int, e.idx.NClusters())
	for qi, cs := range perQuery {
		for _, c := range cs {
			clusterQueries[c] = append(clusterQueries[c], qi)
		}
	}

	// Per-query selectors, each guarded by its own mutex: different
	// clusters touching the same query serialise only on that query.
	sels := make([]*topk.Selector, queries.Rows)
	locks := make([]sync.Mutex, queries.Rows)
	for qi := range sels {
		sels[qi] = topk.NewSelector(opt.K)
	}

	// Phase 2: scan each visited cluster once, for all its queries.
	var scanned, bytes int64
	var statMu sync.Mutex
	for c := 0; c < e.idx.NClusters(); c++ {
		if len(clusterQueries[c]) == 0 {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(c int) {
			defer wg.Done()
			defer func() { <-sem }()
			lut := pq.NewLUT(e.idx.PQ)
			scratch := make([]float32, e.idx.D)
			codeBuf := make([]byte, e.idx.PQ.M)
			var myScanned int64
			for _, qi := range clusterQueries[c] {
				e.idx.BuildLUT(lut, queries.Row(qi), c, scratch, opt.HWF16)
				locks[qi].Lock()
				e.idx.ScanList(sels[qi], lut, c, codeBuf, opt.HWF16)
				locks[qi].Unlock()
				myScanned += int64(e.idx.Lists[c].Len())
			}
			statMu.Lock()
			scanned += myScanned
			bytes += e.idx.ListBytes(c) // list touched once, reused by all queries
			statMu.Unlock()
		}(c)
	}
	wg.Wait()

	for qi := range sels {
		rep.Results[qi] = sels[qi].Results()
	}
	rep.Elapsed = time.Since(start)
	rep.ScannedVectors = scanned
	rep.ListBytesTouched = bytes
	if rep.Elapsed > 0 {
		rep.QPS = float64(queries.Rows) / rep.Elapsed.Seconds()
	}
	return rep
}
