// Package engine is the software ANNS runtime: a multi-goroutine CPU
// implementation of two-level PQ search over an ivf.Index. It provides
// the two execution disciplines the paper contrasts (Section II-D and
// Figure 5):
//
//   - QueryAtATime: each query independently selects W clusters and scans
//     them, the ScaNN-style discipline with no cross-query list reuse.
//   - ClusterMajor: per-cluster query lists are built first and each
//     visited cluster is scanned once for all its queries — the
//     discipline Faiss16's CPU implementation approximates and ANNA's
//     Section IV optimization implements in hardware.
//
// Both disciplines return identical results; they differ in wall-clock
// behaviour and memory traffic, which the real measured QPS reported by
// Run exposes. This is the repository's genuine CPU baseline alongside
// the calibrated analytic models of internal/cost.
//
// The runtime is a fixed worker pool, not a goroutine per query: each
// worker owns one reusable ivf.Searcher (LUT + cluster-selection scratch
// + top-k selector) for its whole lifetime, pulls work items off an
// atomic counter, and runs the fused scan kernel (ivf.ScanListADC).
// Worker searchers and result arenas are pooled on the Engine across Run
// calls, so the steady state allocates only the per-Run report and
// per-query result headers.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"anna/internal/ivf"
	"anna/internal/pq"
	"anna/internal/topk"
	"anna/internal/vecmath"
)

// Mode selects the execution discipline.
type Mode int

const (
	// QueryAtATime processes each query independently (no list reuse).
	QueryAtATime Mode = iota
	// ClusterMajor groups queries by visited cluster and scans each
	// cluster once for all of them.
	ClusterMajor
)

func (m Mode) String() string {
	switch m {
	case QueryAtATime:
		return "query-at-a-time"
	case ClusterMajor:
		return "cluster-major"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configure a run.
type Options struct {
	Mode    Mode
	W       int
	K       int
	Workers int // default GOMAXPROCS
	// HWF16 matches the accelerator's half-precision LUT/score rounding,
	// for bit-exact comparisons against the simulator.
	HWF16 bool
}

// Report is the outcome of a run.
type Report struct {
	Results [][]topk.Result
	// Elapsed is the wall-clock duration of the search phase.
	Elapsed time.Duration
	// QPS is Queries/Elapsed.
	QPS float64
	// ScannedVectors counts (query, vector) similarity computations.
	ScannedVectors int64
	// ListBytesTouched is the code bytes read, counting a list once per
	// visiting query in QueryAtATime and once per visited cluster in
	// ClusterMajor (the traffic difference of Figure 5).
	ListBytesTouched int64
}

// Engine wraps an index for repeated searches. It pools per-worker
// search state across Run calls; an Engine is safe for concurrent Runs.
type Engine struct {
	idx *ivf.Index

	mu        sync.Mutex
	searchers []*ivf.Searcher
	selectors []*topk.Selector // cluster-major per-query selectors
	luts      []*pq.LUT        // cluster-major per-query IP tables
}

// New returns an engine over idx.
func New(idx *ivf.Index) *Engine { return &Engine{idx: idx} }

// grabSearchers checks n worker contexts out of the pool, creating any
// the pool cannot supply.
func (e *Engine) grabSearchers(n int) []*ivf.Searcher {
	out := make([]*ivf.Searcher, 0, n)
	e.mu.Lock()
	for len(out) < n && len(e.searchers) > 0 {
		out = append(out, e.searchers[len(e.searchers)-1])
		e.searchers = e.searchers[:len(e.searchers)-1]
	}
	e.mu.Unlock()
	for len(out) < n {
		out = append(out, e.idx.NewSearcher())
	}
	return out
}

func (e *Engine) releaseSearchers(ss []*ivf.Searcher) {
	e.mu.Lock()
	e.searchers = append(e.searchers, ss...)
	e.mu.Unlock()
}

// grabSelectors checks n reset selectors of capacity k out of the pool;
// pooled selectors built for a different k are discarded.
func (e *Engine) grabSelectors(n, k int) []*topk.Selector {
	out := make([]*topk.Selector, 0, n)
	e.mu.Lock()
	for len(out) < n && len(e.selectors) > 0 {
		s := e.selectors[len(e.selectors)-1]
		e.selectors = e.selectors[:len(e.selectors)-1]
		if s.K() != k {
			continue
		}
		s.Reset()
		out = append(out, s)
	}
	e.mu.Unlock()
	for len(out) < n {
		out = append(out, topk.NewSelector(k))
	}
	return out
}

func (e *Engine) releaseSelectors(ss []*topk.Selector) {
	e.mu.Lock()
	e.selectors = append(e.selectors, ss...)
	e.mu.Unlock()
}

// grabLUTs checks n LUTs (all sized for the index's quantizer) out of
// the pool.
func (e *Engine) grabLUTs(n int) []*pq.LUT {
	out := make([]*pq.LUT, 0, n)
	e.mu.Lock()
	for len(out) < n && len(e.luts) > 0 {
		out = append(out, e.luts[len(e.luts)-1])
		e.luts = e.luts[:len(e.luts)-1]
	}
	e.mu.Unlock()
	for len(out) < n {
		out = append(out, pq.NewLUT(e.idx.PQ))
	}
	return out
}

func (e *Engine) releaseLUTs(ls []*pq.LUT) {
	e.mu.Lock()
	e.luts = append(e.luts, ls...)
	e.mu.Unlock()
}

// Run executes the batch and returns results plus measured performance.
func (e *Engine) Run(queries *vecmath.Matrix, opt Options) *Report {
	if opt.W <= 0 || opt.K <= 0 {
		panic(fmt.Sprintf("engine: invalid options W=%d K=%d", opt.W, opt.K))
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	queries = e.idx.PrepQueries(queries) // OPQ rotation, when trained with one
	switch opt.Mode {
	case QueryAtATime:
		return e.runQueryMajor(queries, opt)
	case ClusterMajor:
		return e.runClusterMajor(queries, opt)
	default:
		panic(fmt.Sprintf("engine: unknown mode %d", opt.Mode))
	}
}

func (e *Engine) runQueryMajor(queries *vecmath.Matrix, opt Options) *Report {
	n := queries.Rows
	rep := &Report{Results: make([][]topk.Result, n)}
	workers := opt.Workers
	if workers > n {
		workers = n
	}
	searchers := e.grabSearchers(workers)
	defer e.releaseSearchers(searchers)
	// One arena backs every query's results; slots are disjoint, so
	// workers write without coordination. The arena is handed to the
	// caller inside rep.Results and therefore NOT pooled.
	arena := make([]topk.Result, n*opt.K)

	var next, scanned, bytes int64
	p := ivf.SearchParams{W: opt.W, K: opt.K, HWF16: opt.HWF16}
	start := time.Now()
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(s *ivf.Searcher) {
			defer wg.Done()
			var myScanned, myBytes int64
			for {
				qi := int(atomic.AddInt64(&next, 1)) - 1
				if qi >= n {
					break
				}
				slot := arena[qi*opt.K : qi*opt.K : (qi+1)*opt.K]
				res, sc, by := s.SearchPrepped(slot, queries.Row(qi), p)
				rep.Results[qi] = res
				myScanned += sc
				myBytes += by
			}
			atomic.AddInt64(&scanned, myScanned)
			atomic.AddInt64(&bytes, myBytes)
		}(searchers[wi])
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	rep.ScannedVectors = scanned
	rep.ListBytesTouched = bytes
	if rep.Elapsed > 0 {
		rep.QPS = float64(n) / rep.Elapsed.Seconds()
	}
	return rep
}

// scoredCluster is one cluster a query selected in phase 1, with its
// centroid score (q·c for inner product) retained for phase-2 reuse.
type scoredCluster struct {
	c     int
	score float32
}

// clusterVisit is one (query, cluster) pairing of cluster-major phase 2,
// carrying the phase-1 centroid score so inner-product scans can rebias
// their per-query LUT without recomputing q·c.
type clusterVisit struct {
	qi    int
	score float32
}

func (e *Engine) runClusterMajor(queries *vecmath.Matrix, opt Options) *Report {
	n := queries.Rows
	rep := &Report{Results: make([][]topk.Result, n)}
	workers := opt.Workers
	isIP := e.idx.Metric == pq.InnerProduct
	w := opt.W
	if w > e.idx.NClusters() {
		w = e.idx.NClusters()
	}
	start := time.Now()

	// Phase 1: cluster filtering for every query on a fixed worker pool.
	// Selected clusters AND their centroid scores are retained; for
	// inner product each query's LUT is filled exactly once here and only
	// rebias'd per cluster in phase 2 (the Section II-C reuse).
	perQuery := make([][]scoredCluster, n)
	selArena := make([]scoredCluster, n*w)
	var luts []*pq.LUT
	if isIP {
		luts = e.grabLUTs(n)
		defer e.releaseLUTs(luts)
	}
	var next int64
	var wg sync.WaitGroup
	pw := workers
	if pw > n {
		pw = n
	}
	for wi := 0; wi < pw; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cs := e.idx.NewClusterSelection(w)
			for {
				qi := int(atomic.AddInt64(&next, 1)) - 1
				if qi >= n {
					break
				}
				q := queries.Row(qi)
				e.idx.SelectClustersBatch(cs, q)
				sel := selArena[qi*w : qi*w : (qi+1)*w]
				for i, c := range cs.Clusters {
					sel = append(sel, scoredCluster{c: c, score: cs.Scores[i]})
				}
				perQuery[qi] = sel
				if isIP {
					e.idx.PQ.FillIP(luts[qi], q)
					if opt.HWF16 {
						luts[qi].RoundF16()
					}
				}
			}
		}()
	}
	wg.Wait()

	// Invert to per-cluster visit lists (qi + phase-1 score), carved out
	// of one counted arena so the inversion never reallocates.
	nc := e.idx.NClusters()
	counts := make([]int, nc)
	total := 0
	for _, sel := range perQuery {
		for _, sc := range sel {
			counts[sc.c]++
			total++
		}
	}
	visitBacking := make([]clusterVisit, total)
	clusterVisits := make([][]clusterVisit, nc)
	nonEmpty := make([]int, 0, nc)
	off := 0
	for c, cnt := range counts {
		if cnt == 0 {
			continue
		}
		clusterVisits[c] = visitBacking[off : off : off+cnt]
		off += cnt
		nonEmpty = append(nonEmpty, c)
	}
	for qi, sel := range perQuery {
		for _, sc := range sel {
			clusterVisits[sc.c] = append(clusterVisits[sc.c], clusterVisit{qi: qi, score: sc.score})
		}
	}

	// Per-query selectors (pooled across Runs), each guarded by its own
	// mutex: different clusters touching the same query serialise only on
	// that query.
	sels := e.grabSelectors(n, opt.K)
	defer e.releaseSelectors(sels)
	locks := make([]sync.Mutex, n)

	// Phase 2: scan each visited cluster once, for all its queries, on a
	// fixed worker pool pulling clusters off an atomic counter.
	var scanned, bytes int64
	next = 0
	cw := workers
	if cw > len(nonEmpty) {
		cw = len(nonEmpty)
	}
	for wi := 0; wi < cw; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lut *pq.LUT
			var scratch []float32
			if !isIP {
				lut = pq.NewLUT(e.idx.PQ)
				scratch = make([]float32, e.idx.D)
			}
			var myScanned, myBytes int64
			for {
				ci := int(atomic.AddInt64(&next, 1)) - 1
				if ci >= len(nonEmpty) {
					break
				}
				c := nonEmpty[ci]
				for _, v := range clusterVisits[c] {
					if isIP {
						l := luts[v.qi]
						locks[v.qi].Lock()
						e.idx.RebiasLUTFromScore(l, v.score, opt.HWF16)
						e.idx.ScanListADC(sels[v.qi], l, c, opt.HWF16)
						locks[v.qi].Unlock()
					} else {
						e.idx.BuildLUT(lut, queries.Row(v.qi), c, scratch, opt.HWF16)
						locks[v.qi].Lock()
						e.idx.ScanListADC(sels[v.qi], lut, c, opt.HWF16)
						locks[v.qi].Unlock()
					}
					myScanned += int64(e.idx.Lists[c].Len())
				}
				myBytes += e.idx.ListBytes(c) // list touched once, reused by all queries
			}
			atomic.AddInt64(&scanned, myScanned)
			atomic.AddInt64(&bytes, myBytes)
		}()
	}
	wg.Wait()

	arena := make([]topk.Result, 0, n*opt.K)
	for qi := range sels {
		lo := len(arena)
		arena = sels[qi].ResultsAppend(arena)
		rep.Results[qi] = arena[lo:len(arena):len(arena)]
	}
	rep.Elapsed = time.Since(start)
	rep.ScannedVectors = scanned
	rep.ListBytesTouched = bytes
	if rep.Elapsed > 0 {
		rep.QPS = float64(n) / rep.Elapsed.Seconds()
	}
	return rep
}
