package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"anna/internal/pq"
	"anna/internal/trace"
)

// A pre-cancelled context aborts the run before any query executes and
// surfaces the context's error, in both disciplines.
func TestRunContextCancelled(t *testing.T) {
	idx, ds := testIndex(t, pq.L2)
	e := New(idx)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []Mode{QueryAtATime, ClusterMajor} {
		rep, err := e.RunContext(ctx, ds.Queries, Options{Mode: mode, W: 6, K: 10})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", mode, err)
		}
		if rep != nil {
			t.Errorf("%v: got a report from a cancelled run", mode)
		}
		// Pool gauges must unwind even when the run is abandoned.
		if q, f := e.QueueDepth(), e.InFlight(); q != 0 || f != 0 {
			t.Errorf("%v: gauges after cancel: queued %d, inflight %d", mode, q, f)
		}
	}
}

func TestRunContextDeadline(t *testing.T) {
	idx, ds := testIndex(t, pq.InnerProduct)
	e := New(idx)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := e.RunContext(ctx, ds.Queries, Options{Mode: ClusterMajor, W: 6, K: 10})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

// A cancelled run must not poison the engine: the next Run on the same
// engine (same pooled searchers/selectors) returns correct results.
func TestRunAfterCancelledRun(t *testing.T) {
	idx, ds := testIndex(t, pq.L2)
	e := New(idx)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	want := referenceResults(idx, ds, 6, 10, false)
	for _, mode := range []Mode{QueryAtATime, ClusterMajor} {
		e.RunContext(ctx, ds.Queries, Options{Mode: mode, W: 6, K: 10})
		rep := e.Run(ds.Queries, Options{Mode: mode, W: 6, K: 10})
		// Cluster-major tie order depends on worker scheduling, so (like
		// the reference-equality tests) compare scores, not IDs.
		scoresEqual(t, mode.String()+" after cancel", rep.Results, want)
	}
}

// A context carrying a trace.Trace comes back with per-stage spans and
// the scanned-vector count attached; a cancelled run attaches nothing.
func TestRunContextAttachesTraceSpans(t *testing.T) {
	idx, ds := testIndex(t, pq.L2)
	e := New(idx)
	for _, mode := range []Mode{QueryAtATime, ClusterMajor} {
		tr := trace.New("t1")
		ctx := trace.NewContext(context.Background(), tr)
		rep, err := e.RunContext(ctx, ds.Queries, Options{Mode: mode, W: 6, K: 10})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for _, span := range []string{"select", "scan", "merge"} {
			if tr.SpanDuration(span) != rep.stageTime(span) {
				t.Errorf("%v: span %s = %v, report says %v",
					mode, span, tr.SpanDuration(span), rep.stageTime(span))
			}
		}
		if tr.SpanDuration("select") <= 0 || tr.SpanDuration("scan") <= 0 {
			t.Errorf("%v: zero-valued stage spans: %+v", mode, tr.Spans)
		}
		if tr.Scanned != rep.ScannedVectors {
			t.Errorf("%v: trace scanned %d, report %d", mode, tr.Scanned, rep.ScannedVectors)
		}
	}

	// Cancelled runs attach no spans.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := trace.New("t2")
	e.RunContext(trace.NewContext(ctx, tr), ds.Queries, Options{Mode: ClusterMajor, W: 6, K: 10})
	if len(tr.Spans) != 0 {
		t.Errorf("cancelled run attached spans: %+v", tr.Spans)
	}
}

// stageTime maps a span name back to the report field it mirrors.
func (r *Report) stageTime(span string) time.Duration {
	switch span {
	case "select":
		return r.SelectTime
	case "scan":
		return r.ScanTime
	default:
		return r.MergeTime
	}
}

// Every completed run reports non-zero select and scan stage times, and
// the pool gauges read zero when idle.
func TestStageTimesAndGauges(t *testing.T) {
	idx, ds := testIndex(t, pq.L2)
	e := New(idx)
	for _, mode := range []Mode{QueryAtATime, ClusterMajor} {
		rep := e.Run(ds.Queries, Options{Mode: mode, W: 6, K: 10})
		if rep.SelectTime <= 0 {
			t.Errorf("%v: SelectTime %v", mode, rep.SelectTime)
		}
		if rep.ScanTime <= 0 {
			t.Errorf("%v: ScanTime %v", mode, rep.ScanTime)
		}
		if rep.MergeTime < 0 {
			t.Errorf("%v: MergeTime %v", mode, rep.MergeTime)
		}
		if q, f := e.QueueDepth(), e.InFlight(); q != 0 || f != 0 {
			t.Errorf("%v: idle gauges: queued %d, inflight %d", mode, q, f)
		}
	}
}
