package engine

import (
	"testing"

	"anna/internal/adaptive"
	"anna/internal/dataset"
	"anna/internal/ivf"
	"anna/internal/pq"
)

// The engine-level half of the bit-exactness pin: an adaptive run with
// termination enabled but infinite patience must produce exactly the
// fixed run's results, for both metrics.
func TestAdaptiveInfinitePatienceMatchesFixed(t *testing.T) {
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		idx, ds := testIndex(t, metric)
		e := New(idx)
		fixed := e.Run(ds.Queries, Options{Mode: QueryAtATime, W: 10, K: 10})
		adapt := e.Run(ds.Queries, Options{Mode: QueryAtATime, W: 10, K: 10,
			Adaptive: adaptive.Params{StopPatience: idx.NClusters() + 1, MinClusters: 1}})
		scoresEqual(t, metric.String()+" adaptive-infinite-patience", fixed.Results, adapt.Results)
		if adapt.ClustersScanned != fixed.ClustersScanned {
			t.Fatalf("%v: clusters scanned %d vs fixed %d", metric, adapt.ClustersScanned, fixed.ClustersScanned)
		}
	}
}

// An adaptive run requesting ClusterMajor must be forced onto the
// query-at-a-time discipline and actually terminate early: clusters
// scanned drops below n*W while results stay valid.
func TestAdaptiveForcesQueryMajorAndTerminates(t *testing.T) {
	idx, ds := testIndex(t, pq.L2)
	e := New(idx)
	w := idx.NClusters()
	rep := e.Run(ds.Queries, Options{Mode: ClusterMajor, W: w, K: 10,
		Adaptive: adaptive.Params{StopPatience: 2, MinClusters: 3}})
	full := int64(ds.Queries.Rows * w)
	if rep.ClustersScanned >= full {
		t.Fatalf("ClustersScanned = %d, want < %d (no early termination happened)", rep.ClustersScanned, full)
	}
	if rep.ClustersScanned < int64(ds.Queries.Rows*3) {
		t.Fatalf("ClustersScanned = %d, below the MinClusters floor", rep.ClustersScanned)
	}
	for qi, rs := range rep.Results {
		if len(rs) != 10 {
			t.Fatalf("q%d: %d results", qi, len(rs))
		}
	}
}

// Escalation through the engine: Escalations and RerankTime are
// reported, and the per-batch report matches a per-query ivf run.
func TestAdaptiveEscalationReported(t *testing.T) {
	spec := dataset.SIFTLike(3000, 12, 1)
	spec.D = 32
	ds := dataset.Generate(spec)
	idx := ivf.Build(ds.Base, pq.L2, ivf.Config{
		NClusters: 25, M: 8, Ks: 16, CoarseIters: 6, PQIters: 6, Seed: 2, Rerank: true,
	})
	e := New(idx)
	ap := adaptive.Params{EscalateFactor: 4, Margin: 0.2}
	rep := e.Run(ds.Queries, Options{Mode: QueryAtATime, W: 10, K: 10, Adaptive: ap})
	if rep.Escalations < int64(10*ds.Queries.Rows) {
		t.Fatalf("Escalations = %d, want >= K per query", rep.Escalations)
	}
	if rep.RerankTime <= 0 {
		t.Fatalf("RerankTime = %v, want > 0", rep.RerankTime)
	}

	s := idx.NewSearcher()
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		var st ivf.ScanStats
		want := s.SearchAdaptiveStats(nil, ds.Queries.Row(qi), ivf.SearchParams{W: 10, K: 10}, ap, &st)
		got := rep.Results[qi]
		if len(got) != len(want) {
			t.Fatalf("q%d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("q%d result %d: engine %+v vs ivf %+v", qi, i, got[i], want[i])
			}
		}
	}
}
