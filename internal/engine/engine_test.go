package engine

import (
	"testing"

	"anna/internal/dataset"
	"anna/internal/ivf"
	"anna/internal/pq"
	"anna/internal/topk"
)

func testIndex(t testing.TB, metric pq.Metric) (*ivf.Index, *dataset.Dataset) {
	t.Helper()
	spec := dataset.SIFTLike(3000, 12, 1)
	spec.D = 32
	spec.Metric = metric
	ds := dataset.Generate(spec)
	idx := ivf.Build(ds.Base, metric, ivf.Config{
		NClusters: 25, M: 8, Ks: 16, CoarseIters: 6, PQIters: 6, Seed: 2,
	})
	return idx, ds
}

func referenceResults(idx *ivf.Index, ds *dataset.Dataset, w, k int, hw bool) [][]topk.Result {
	out := make([][]topk.Result, ds.Queries.Rows)
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		// Anchor against the unfused reference scan, so these tests prove
		// the whole fused engine path end to end.
		out[qi] = idx.SearchReference(ds.Queries.Row(qi), ivf.SearchParams{W: w, K: k, HWF16: hw})
	}
	return out
}

func scoresEqual(t *testing.T, label string, a, b [][]topk.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths %d vs %d", label, len(a), len(b))
	}
	for qi := range a {
		if len(a[qi]) != len(b[qi]) {
			t.Fatalf("%s q%d: %d vs %d results", label, qi, len(a[qi]), len(b[qi]))
		}
		for i := range a[qi] {
			if a[qi][i].Score != b[qi][i].Score {
				t.Fatalf("%s q%d rank %d: %v vs %v", label, qi, i, a[qi][i], b[qi][i])
			}
		}
	}
}

func TestQueryMajorMatchesReference(t *testing.T) {
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		idx, ds := testIndex(t, metric)
		rep := New(idx).Run(ds.Queries, Options{Mode: QueryAtATime, W: 6, K: 10})
		want := referenceResults(idx, ds, 6, 10, false)
		for qi := range want {
			for i := range want[qi] {
				if rep.Results[qi][i] != want[qi][i] {
					t.Fatalf("%v q%d rank %d: %+v vs %+v",
						metric, qi, i, rep.Results[qi][i], want[qi][i])
				}
			}
		}
	}
}

func TestClusterMajorMatchesQueryMajorScores(t *testing.T) {
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		idx, ds := testIndex(t, metric)
		e := New(idx)
		qm := e.Run(ds.Queries, Options{Mode: QueryAtATime, W: 6, K: 10})
		cm := e.Run(ds.Queries, Options{Mode: ClusterMajor, W: 6, K: 10})
		// Cluster visit order differs, so equal-scoring boundary entries
		// may swap; scores must agree exactly rank-by-rank.
		scoresEqual(t, metric.String(), cm.Results, qm.Results)
	}
}

func TestHWF16MatchesAcceleratorReference(t *testing.T) {
	idx, ds := testIndex(t, pq.L2)
	rep := New(idx).Run(ds.Queries, Options{Mode: QueryAtATime, W: 6, K: 10, HWF16: true})
	want := referenceResults(idx, ds, 6, 10, true)
	for qi := range want {
		for i := range want[qi] {
			if rep.Results[qi][i] != want[qi][i] {
				t.Fatalf("q%d rank %d: %+v vs %+v", qi, i, rep.Results[qi][i], want[qi][i])
			}
		}
	}
}

func TestWorkerCountInvariant(t *testing.T) {
	idx, ds := testIndex(t, pq.L2)
	e := New(idx)
	ref := e.Run(ds.Queries, Options{Mode: ClusterMajor, W: 6, K: 10, Workers: 1})
	for _, w := range []int{2, 4, 16} {
		got := e.Run(ds.Queries, Options{Mode: ClusterMajor, W: 6, K: 10, Workers: w})
		scoresEqual(t, "workers", got.Results, ref.Results)
	}
}

func TestTrafficAccountingReflectsReuse(t *testing.T) {
	idx, ds := testIndex(t, pq.L2)
	e := New(idx)
	qm := e.Run(ds.Queries, Options{Mode: QueryAtATime, W: 6, K: 10})
	cm := e.Run(ds.Queries, Options{Mode: ClusterMajor, W: 6, K: 10})
	// Identical scan work…
	if qm.ScannedVectors != cm.ScannedVectors {
		t.Errorf("scanned: %d vs %d", qm.ScannedVectors, cm.ScannedVectors)
	}
	// …but cluster-major touches each visited list once.
	if cm.ListBytesTouched >= qm.ListBytesTouched {
		t.Errorf("cluster-major bytes %d >= query-major %d",
			cm.ListBytesTouched, qm.ListBytesTouched)
	}
	// Query-major bytes equal the sum over (query, cluster) pairs.
	var want int64
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		for _, c := range idx.SelectClusters(ds.Queries.Row(qi), 6) {
			want += idx.ListBytes(c)
		}
	}
	if qm.ListBytesTouched != want {
		t.Errorf("query-major bytes = %d, want %d", qm.ListBytesTouched, want)
	}
}

func TestRunPanicsOnBadOptions(t *testing.T) {
	idx, ds := testIndex(t, pq.L2)
	for _, o := range []Options{{W: 0, K: 1}, {W: 1, K: 0}, {Mode: Mode(9), W: 1, K: 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", o)
				}
			}()
			New(idx).Run(ds.Queries, o)
		}()
	}
}

func TestReportFields(t *testing.T) {
	idx, ds := testIndex(t, pq.L2)
	rep := New(idx).Run(ds.Queries, Options{Mode: QueryAtATime, W: 3, K: 5})
	if rep.QPS <= 0 || rep.Elapsed <= 0 {
		t.Errorf("QPS=%v Elapsed=%v", rep.QPS, rep.Elapsed)
	}
	if rep.ScannedVectors <= 0 || rep.ListBytesTouched <= 0 {
		t.Errorf("counters: %d %d", rep.ScannedVectors, rep.ListBytesTouched)
	}
	if len(rep.Results) != ds.Queries.Rows {
		t.Errorf("results len %d", len(rep.Results))
	}
}

func TestModeString(t *testing.T) {
	if QueryAtATime.String() != "query-at-a-time" || ClusterMajor.String() != "cluster-major" {
		t.Error("mode names")
	}
}

// TestResultsSurviveSubsequentRuns guards the result-arena design: a
// Report's results must stay valid after later Runs on the same Engine
// (worker scratch is pooled, result storage is not).
func TestResultsSurviveSubsequentRuns(t *testing.T) {
	idx, ds := testIndex(t, pq.L2)
	e := New(idx)
	opt := Options{Mode: QueryAtATime, W: 6, K: 10}
	first := e.Run(ds.Queries, opt)
	snapshot := make([][]topk.Result, len(first.Results))
	for qi, rs := range first.Results {
		snapshot[qi] = append([]topk.Result(nil), rs...)
	}
	for i := 0; i < 3; i++ {
		e.Run(ds.Queries, opt)
		e.Run(ds.Queries, Options{Mode: ClusterMajor, W: 6, K: 10})
	}
	scoresEqual(t, "after reuse", first.Results, snapshot)
	for qi := range snapshot {
		for i := range snapshot[qi] {
			if first.Results[qi][i] != snapshot[qi][i] {
				t.Fatalf("q%d rank %d mutated by a later Run", qi, i)
			}
		}
	}
}

// TestEngineWithDeletions checks both disciplines against the reference
// when tombstones force the filtered scan path.
func TestEngineWithDeletions(t *testing.T) {
	for _, metric := range []pq.Metric{pq.L2, pq.InnerProduct} {
		idx, ds := testIndex(t, metric)
		idx.Delete(0, 5, 100, 101, 102, 2000, 2999)
		want := referenceResults(idx, ds, 6, 10, false)
		e := New(idx)
		qm := e.Run(ds.Queries, Options{Mode: QueryAtATime, W: 6, K: 10})
		cm := e.Run(ds.Queries, Options{Mode: ClusterMajor, W: 6, K: 10})
		for qi := range want {
			for i := range want[qi] {
				if qm.Results[qi][i] != want[qi][i] {
					t.Fatalf("%v query-major q%d rank %d: %+v vs %+v",
						metric, qi, i, qm.Results[qi][i], want[qi][i])
				}
			}
		}
		scoresEqual(t, metric.String()+" cluster-major", cm.Results, want)
	}
}

// TestClusterMajorIPLUTReuse pins the satellite fix: inner-product
// cluster-major must match the reference bit-for-bit under HWF16, where
// any stray FillIP-per-cluster or recomputed bias would show up as a
// rounding difference.
func TestClusterMajorIPLUTReuse(t *testing.T) {
	idx, ds := testIndex(t, pq.InnerProduct)
	want := referenceResults(idx, ds, 8, 10, true)
	rep := New(idx).Run(ds.Queries, Options{Mode: ClusterMajor, W: 8, K: 10, HWF16: true})
	scoresEqual(t, "ip cluster-major hwf16", rep.Results, want)
}

func BenchmarkQueryMajor(b *testing.B) {
	idx, ds := testIndex(b, pq.L2)
	e := New(idx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(ds.Queries, Options{Mode: QueryAtATime, W: 8, K: 100})
	}
}

func BenchmarkClusterMajor(b *testing.B) {
	idx, ds := testIndex(b, pq.L2)
	e := New(idx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(ds.Queries, Options{Mode: ClusterMajor, W: 8, K: 100})
	}
}

// benchEngineSearch measures the steady-state cost per QUERY of the
// worker-pool engine on a larger batch: one warmup Run populates the
// searcher pool, then allocations per query are reported alongside
// ns/query. These are the numbers BENCH_engine.json records.
func benchEngineSearch(b *testing.B, mode Mode) {
	spec := dataset.SIFTLike(20000, 256, 1)
	ds := dataset.Generate(spec)
	idx := ivf.Build(ds.Base, pq.L2, ivf.Config{
		NClusters: 64, M: 32, Ks: 16, CoarseIters: 5, PQIters: 5, Seed: 1,
	})
	e := New(idx)
	opt := Options{Mode: mode, W: 8, K: 100}
	e.Run(ds.Queries, opt) // warm the searcher pool
	nq := float64(ds.Queries.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	var qps float64
	for i := 0; i < b.N; i++ {
		qps = e.Run(ds.Queries, opt).QPS
	}
	b.StopTimer()
	b.ReportMetric(qps, "qps")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*nq), "ns/query")
}

func BenchmarkEngineSearchQueryMajor(b *testing.B)   { benchEngineSearch(b, QueryAtATime) }
func BenchmarkEngineSearchClusterMajor(b *testing.B) { benchEngineSearch(b, ClusterMajor) }
