package sim

import (
	"strings"
	"testing"
)

func TestRenderGanttBasic(t *testing.T) {
	spans := []Span{
		{Resource: "cpm", Label: "a", Start: 0, End: 50},
		{Resource: "scm", Label: "b", Start: 50, End: 100},
	}
	out := RenderGantt(spans, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// cpm (first active) listed before scm.
	if !strings.HasPrefix(lines[1], "cpm") || !strings.HasPrefix(lines[2], "scm") {
		t.Errorf("row order:\n%s", out)
	}
	// cpm busy in the first half, idle in the second; scm the reverse.
	cpm := lines[1][9:]
	scm := lines[2][9:]
	if cpm[0] != '#' || cpm[9] != '.' {
		t.Errorf("cpm row %q", cpm)
	}
	if scm[0] != '.' || scm[9] != '#' {
		t.Errorf("scm row %q", scm)
	}
}

func TestRenderGanttPartial(t *testing.T) {
	// A span covering 30% of a bucket renders '+'.
	spans := []Span{{Resource: "x", Label: "a", Start: 0, End: 3}}
	out := RenderGantt(spans, 1)
	_ = out
	spans = []Span{
		{Resource: "x", Label: "a", Start: 0, End: 30},
		{Resource: "x", Label: "pad", Start: 99, End: 100},
	}
	row := strings.Split(RenderGantt(spans, 10), "\n")[1]
	cells := row[9:]
	if cells[0] != '#' {
		t.Errorf("first bucket %q", cells)
	}
	if cells[5] != '.' {
		t.Errorf("middle bucket %q", cells)
	}
}

func TestRenderGanttEmpty(t *testing.T) {
	if got := RenderGantt(nil, 10); !strings.Contains(got, "no spans") {
		t.Errorf("empty render %q", got)
	}
}

func TestRenderGanttDefaults(t *testing.T) {
	spans := []Span{{Resource: "x", Label: "a", Start: 0, End: 1}}
	out := RenderGantt(spans, 0)
	if !strings.Contains(out, "x") {
		t.Error("default width render broken")
	}
}
