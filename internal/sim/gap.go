package sim

// GapResource is a serially-occupied resource whose scheduler may place a
// new task in any idle gap, not just after the last booking. This models
// hardware that reorders requests across independent streams — ANNA's
// Memory Access Interface keeps 64 outstanding 64 B requests precisely so
// the memory controller can fill gaps like this. Without it, a transfer
// booked with a far-future ready time (e.g. a top-k save that must wait
// for a scan) would artificially block later-issued prefetches.
type GapResource struct {
	Name string
	// intervals are the booked [start, end) spans, sorted by start and
	// non-overlapping.
	intervals []interval
	busy      Cycles
	eng       *Engine
	// hint is the index where the previous search ended; ready times are
	// mostly non-decreasing, so this keeps scheduling near O(1) per call.
	hint int
}

type interval struct{ start, end Cycles }

// NewGapResource registers a gap-filling resource on the engine.
func (e *Engine) NewGapResource(name string) *GapResource {
	r := &GapResource{Name: name, eng: e}
	e.gaps = append(e.gaps, r)
	return r
}

// Schedule books dur contiguous cycles starting no earlier than ready, in
// the earliest idle gap that fits. It returns the span's start and end.
func (r *GapResource) Schedule(ready Cycles, dur Cycles, label string) (start, end Cycles) {
	if dur < 0 {
		panic("sim: negative duration on " + r.Name)
	}
	if dur == 0 {
		return ready, ready
	}
	start = ready
	// Resume from the hint if it is safely before the region of interest.
	i := r.hint
	if i > len(r.intervals) {
		i = len(r.intervals)
	}
	for i > 0 && r.intervals[i-1].end > start {
		i--
	}
	for ; i < len(r.intervals); i++ {
		iv := r.intervals[i]
		if iv.end <= start {
			continue
		}
		if iv.start >= start+dur {
			break // the gap before this interval fits
		}
		start = iv.end // push past this booking
	}
	end = start + dur
	r.intervals = append(r.intervals, interval{})
	copy(r.intervals[i+1:], r.intervals[i:])
	r.intervals[i] = interval{start, end}
	r.hint = i
	r.busy += dur
	if r.eng.tracing {
		r.eng.trace = append(r.eng.trace, Span{r.Name, label, start, end})
	}
	return start, end
}

// Busy returns total booked cycles.
func (r *GapResource) Busy() Cycles { return r.busy }

// FreeAt returns the end of the last booking (the resource is also free
// in any interior gaps; FreeAt is used for makespan accounting).
func (r *GapResource) FreeAt() Cycles {
	if len(r.intervals) == 0 {
		return 0
	}
	return r.intervals[len(r.intervals)-1].end
}

// Utilization returns busy/makespan.
func (r *GapResource) Utilization(makespan Cycles) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(r.busy) / float64(makespan)
}

func (r *GapResource) reset() {
	r.intervals = r.intervals[:0]
	r.busy = 0
	r.hint = 0
}
