package sim

import "testing"

func TestScheduleSerializes(t *testing.T) {
	e := NewEngine(false)
	r := e.NewResource("cu")
	s1, e1 := r.Schedule(0, 10, "a")
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first task [%d,%d]", s1, e1)
	}
	// Ready earlier than the resource is free: starts when free.
	s2, e2 := r.Schedule(5, 10, "b")
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second task [%d,%d], want [10,20]", s2, e2)
	}
	// Ready later than free: starts at ready (idle gap).
	s3, e3 := r.Schedule(100, 5, "c")
	if s3 != 100 || e3 != 105 {
		t.Fatalf("third task [%d,%d]", s3, e3)
	}
	if r.Busy() != 25 {
		t.Errorf("busy = %d, want 25", r.Busy())
	}
	if r.FreeAt() != 105 {
		t.Errorf("freeAt = %d", r.FreeAt())
	}
}

func TestZeroDurationTask(t *testing.T) {
	e := NewEngine(true)
	r := e.NewResource("x")
	r.Schedule(0, 10, "real")
	s, end := r.Schedule(0, 0, "nop")
	if s != 10 || end != 10 {
		t.Fatalf("zero task [%d,%d]", s, end)
	}
	if r.Busy() != 10 {
		t.Errorf("zero task counted busy")
	}
	if len(e.Trace()) != 1 {
		t.Errorf("zero task traced")
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	e := NewEngine(false)
	r := e.NewResource("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Schedule(0, -1, "bad")
}

func TestPipelineOverlapTwoResources(t *testing.T) {
	// Producer/consumer double buffering: consumer of item i depends on
	// producer end of item i and its own previous end. With equal
	// durations the pipeline reaches steady state immediately.
	e := NewEngine(false)
	prod := e.NewResource("prod")
	cons := e.NewResource("cons")
	var prodEnd, consEnd Cycles
	for i := 0; i < 5; i++ {
		_, pe := prod.Schedule(prodEnd, 10, "p")
		prodEnd = pe
		_, ce := cons.Schedule(Max(pe, consEnd), 10, "c")
		consEnd = ce
	}
	// 5 items, 10 cycles each, one pipeline fill stage: 60 cycles.
	if consEnd != 60 {
		t.Fatalf("pipelined makespan = %d, want 60", consEnd)
	}
	if e.Makespan() != 60 {
		t.Fatalf("Makespan = %d", e.Makespan())
	}
}

func TestUtilization(t *testing.T) {
	e := NewEngine(false)
	r := e.NewResource("u")
	r.Schedule(0, 50, "w")
	if got := r.Utilization(100); got != 0.5 {
		t.Errorf("utilization = %v", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Errorf("utilization at 0 makespan = %v", got)
	}
}

func TestTraceSorted(t *testing.T) {
	e := NewEngine(true)
	a := e.NewResource("a")
	b := e.NewResource("b")
	b.Schedule(5, 10, "late")
	a.Schedule(0, 3, "early")
	tr := e.Trace()
	if len(tr) != 2 || tr[0].Label != "early" || tr[1].Label != "late" {
		t.Fatalf("trace order: %+v", tr)
	}
}

func TestReset(t *testing.T) {
	e := NewEngine(true)
	r := e.NewResource("r")
	r.Schedule(0, 10, "x")
	e.Reset()
	if r.Busy() != 0 || r.FreeAt() != 0 || len(e.Trace()) != 0 {
		t.Error("Reset incomplete")
	}
	if len(e.Resources()) != 1 {
		t.Error("Reset dropped registrations")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {128, 64, 2},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv(1,0) did not panic")
		}
	}()
	CeilDiv(1, 0)
}
