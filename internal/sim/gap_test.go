package sim

import (
	"math/rand"
	"testing"
)

func TestGapBackfill(t *testing.T) {
	e := NewEngine(false)
	r := e.NewGapResource("mem")
	// A far-future booking must not block an earlier one.
	s1, e1 := r.Schedule(1000, 10, "late")
	if s1 != 1000 || e1 != 1010 {
		t.Fatalf("late booking [%d,%d]", s1, e1)
	}
	s2, e2 := r.Schedule(0, 10, "early")
	if s2 != 0 || e2 != 10 {
		t.Fatalf("early booking [%d,%d] — gap not backfilled", s2, e2)
	}
	if r.Busy() != 20 {
		t.Errorf("busy = %d", r.Busy())
	}
	if r.FreeAt() != 1010 {
		t.Errorf("FreeAt = %d", r.FreeAt())
	}
	if e.Makespan() != 1010 {
		t.Errorf("Makespan = %d", e.Makespan())
	}
}

func TestGapFitsBetweenBookings(t *testing.T) {
	e := NewEngine(false)
	r := e.NewGapResource("mem")
	r.Schedule(0, 10, "a")              // [0,10)
	r.Schedule(30, 10, "b")             // [30,40)
	s, end := r.Schedule(5, 10, "fits") // gap [10,30) fits after ready push
	if s != 10 || end != 20 {
		t.Fatalf("gap fill [%d,%d], want [10,20]", s, end)
	}
	// A task too big for the gap goes after the last booking.
	s, end = r.Schedule(5, 15, "big")
	if s != 40 || end != 55 {
		t.Fatalf("oversized gap task [%d,%d], want [40,55]", s, end)
	}
}

func TestGapZeroAndNegative(t *testing.T) {
	e := NewEngine(false)
	r := e.NewGapResource("mem")
	s, end := r.Schedule(7, 0, "zero")
	if s != 7 || end != 7 || r.Busy() != 0 {
		t.Errorf("zero-duration booking [%d,%d] busy=%d", s, end, r.Busy())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative duration did not panic")
		}
	}()
	r.Schedule(0, -1, "bad")
}

func TestGapNoOverlapInvariant(t *testing.T) {
	// Random bookings must never overlap and never start before ready.
	e := NewEngine(false)
	r := e.NewGapResource("mem")
	rng := rand.New(rand.NewSource(3))
	type iv struct{ s, e Cycles }
	var booked []iv
	for i := 0; i < 500; i++ {
		ready := Cycles(rng.Intn(2000))
		dur := Cycles(rng.Intn(20) + 1)
		s, end := r.Schedule(ready, dur, "x")
		if s < ready {
			t.Fatalf("started %d before ready %d", s, ready)
		}
		if end-s != dur {
			t.Fatalf("duration %d, want %d", end-s, dur)
		}
		for _, b := range booked {
			if s < b.e && b.s < end {
				t.Fatalf("overlap: [%d,%d) vs [%d,%d)", s, end, b.s, b.e)
			}
		}
		booked = append(booked, iv{s, end})
	}
	var total Cycles
	for _, b := range booked {
		total += b.e - b.s
	}
	if r.Busy() != total {
		t.Errorf("busy = %d, want %d", r.Busy(), total)
	}
}

func TestGapTraceAndReset(t *testing.T) {
	e := NewEngine(true)
	r := e.NewGapResource("mem")
	r.Schedule(0, 5, "traced")
	if len(e.Trace()) != 1 || e.Trace()[0].Label != "traced" {
		t.Errorf("trace: %+v", e.Trace())
	}
	if got := r.Utilization(10); got != 0.5 {
		t.Errorf("utilization %v", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Errorf("utilization at zero %v", got)
	}
	e.Reset()
	if r.Busy() != 0 || r.FreeAt() != 0 || len(e.Trace()) != 0 {
		t.Error("reset incomplete")
	}
}
