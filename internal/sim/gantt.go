package sim

import (
	"fmt"
	"sort"
	"strings"
)

// RenderGantt draws spans as an ASCII Gantt chart — a textual Figure 7.
// One row per resource, time bucketed into width columns; a cell shows
// '#' when the resource is busy for most of the bucket, '+' when partly
// busy, '.' when idle. Rows are ordered by first activity.
func RenderGantt(spans []Span, width int) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	if width <= 0 {
		width = 80
	}
	var tEnd Cycles
	for _, s := range spans {
		if s.End > tEnd {
			tEnd = s.End
		}
	}
	if tEnd == 0 {
		tEnd = 1
	}
	bucket := float64(tEnd) / float64(width)
	if bucket <= 0 {
		bucket = 1
	}

	type rowInfo struct {
		first Cycles
		busy  []float64 // busy cycles per bucket
	}
	rows := map[string]*rowInfo{}
	for _, s := range spans {
		r, ok := rows[s.Resource]
		if !ok {
			r = &rowInfo{first: s.Start, busy: make([]float64, width)}
			rows[s.Resource] = r
		}
		if s.Start < r.first {
			r.first = s.Start
		}
		// Distribute the span over its buckets.
		lo, hi := float64(s.Start), float64(s.End)
		for b := int(lo / bucket); b < width && float64(b)*bucket < hi; b++ {
			bs, be := float64(b)*bucket, float64(b+1)*bucket
			ov := minf(be, hi) - maxf(bs, lo)
			if ov > 0 {
				r.busy[b] += ov
			}
		}
	}

	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := rows[names[i]], rows[names[j]]
		if a.first != b.first {
			return a.first < b.first
		}
		return names[i] < names[j]
	})

	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles 0..%d, %d per column ('#' busy, '+' partial, '.' idle)\n",
		tEnd, int(bucket)+1)
	for _, n := range names {
		r := rows[n]
		fmt.Fprintf(&sb, "%-8s ", n)
		for b := 0; b < width; b++ {
			frac := r.busy[b] / bucket
			switch {
			case frac >= 0.6:
				sb.WriteByte('#')
			case frac > 0:
				sb.WriteByte('+')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
