// Package sim provides the cycle-level simulation kernel underneath the
// ANNA accelerator model: serial hardware resources, dependency-driven
// greedy scheduling, and span tracing for timeline visualisation
// (Figure 7 of the paper).
//
// The model is the standard one for dataflow accelerators: each hardware
// unit (the CPM, each SCM, the memory channel) is a serial resource;
// each piece of work is a task with a known duration in cycles and a
// ready time derived from its data dependencies (e.g. "the SCM may scan
// cluster i+1 once the CPM finished LUT i+1 AND the EFM finished
// fetching cluster i+1 AND the SCM itself finished cluster i"). Greedy
// scheduling of tasks in dependency order on serial resources yields the
// same makespan a cycle-by-cycle simulation of the double-buffered
// pipeline would, while remaining fast enough to simulate million-vector
// searches.
package sim

import (
	"fmt"
	"sort"
)

// Cycles counts clock cycles (1 GHz in the paper's configuration).
type Cycles int64

// Max returns the later of two times.
func Max(a, b Cycles) Cycles {
	if a > b {
		return a
	}
	return b
}

// Resource is a serially-occupied hardware unit.
type Resource struct {
	Name   string
	freeAt Cycles
	busy   Cycles
	eng    *Engine
}

// Engine owns resources and the optional trace.
type Engine struct {
	resources []*Resource
	gaps      []*GapResource
	trace     []Span
	tracing   bool
}

// Span is one scheduled occupancy of a resource, for timeline output.
type Span struct {
	Resource string
	Label    string
	Start    Cycles
	End      Cycles
}

// NewEngine returns an empty engine. Set tracing to record spans.
func NewEngine(tracing bool) *Engine {
	return &Engine{tracing: tracing}
}

// NewResource registers a serial resource.
func (e *Engine) NewResource(name string) *Resource {
	r := &Resource{Name: name, eng: e}
	e.resources = append(e.resources, r)
	return r
}

// Schedule books dur cycles on r, starting no earlier than ready and no
// earlier than the resource's previous booking. It returns the span's
// start and end times. A zero-duration task completes at its start time
// without occupying the resource.
func (r *Resource) Schedule(ready Cycles, dur Cycles, label string) (start, end Cycles) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative duration %d on %s", dur, r.Name))
	}
	start = Max(ready, r.freeAt)
	end = start + dur
	if dur > 0 {
		r.freeAt = end
		r.busy += dur
		if r.eng.tracing {
			r.eng.trace = append(r.eng.trace, Span{r.Name, label, start, end})
		}
	}
	return start, end
}

// FreeAt returns the time at which the resource next becomes idle.
func (r *Resource) FreeAt() Cycles { return r.freeAt }

// Busy returns the resource's total booked cycles.
func (r *Resource) Busy() Cycles { return r.busy }

// Utilization returns busy/total for a run that ended at makespan.
func (r *Resource) Utilization(makespan Cycles) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(r.busy) / float64(makespan)
}

// Reset clears resource state (but keeps registrations) and the trace.
func (e *Engine) Reset() {
	for _, r := range e.resources {
		r.freeAt, r.busy = 0, 0
	}
	for _, g := range e.gaps {
		g.reset()
	}
	e.trace = e.trace[:0]
}

// Trace returns the recorded spans sorted by start time.
func (e *Engine) Trace() []Span {
	out := make([]Span, len(e.trace))
	copy(out, e.trace)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}

// Resources returns the registered resources in creation order.
func (e *Engine) Resources() []*Resource { return e.resources }

// Makespan returns the latest FreeAt across all resources.
func (e *Engine) Makespan() Cycles {
	var m Cycles
	for _, r := range e.resources {
		if r.freeAt > m {
			m = r.freeAt
		}
	}
	for _, g := range e.gaps {
		if f := g.FreeAt(); f > m {
			m = f
		}
	}
	return m
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("sim: CeilDiv by non-positive divisor")
	}
	return (a + b - 1) / b
}
