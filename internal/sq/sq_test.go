package sq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anna/internal/vecmath"
)

func randMatrix(rows, cols int, seed int64) *vecmath.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vecmath.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64()) * 5
	}
	return m
}

func TestRoundTripError(t *testing.T) {
	data := randMatrix(500, 16, 1)
	q := Train(data)
	dec := make([]float32, 16)
	for r := 0; r < data.Rows; r++ {
		code := q.Encode(nil, data.Row(r))
		if len(code) != 16 {
			t.Fatalf("code length %d", len(code))
		}
		q.Decode(dec, code)
		for d := range dec {
			// Error bounded by half a quantization step.
			if e := math.Abs(float64(dec[d] - data.Row(r)[d])); e > float64(q.Scale[d])*0.51+1e-6 {
				t.Fatalf("row %d dim %d error %v > step %v", r, d, e, q.Scale[d])
			}
		}
	}
}

func TestBoundsClamping(t *testing.T) {
	data := randMatrix(100, 4, 2)
	q := Train(data)
	// Values outside the training range clamp rather than wrap.
	huge := []float32{1e6, -1e6, 0, 0}
	code := q.Encode(nil, huge)
	if code[0] != 255 || code[1] != 0 {
		t.Errorf("clamping: %v", code[:2])
	}
}

func TestConstantDimension(t *testing.T) {
	m := vecmath.NewMatrix(10, 2)
	for r := 0; r < 10; r++ {
		m.SetRow(r, []float32{7, float32(r)})
	}
	q := Train(m)
	code := q.Encode(nil, []float32{7, 3})
	dec := make([]float32, 2)
	q.Decode(dec, code)
	if dec[0] != 7 {
		t.Errorf("constant dimension reconstructed as %v", dec[0])
	}
}

func TestStore(t *testing.T) {
	data := randMatrix(50, 8, 3)
	q := Train(data)
	s := NewStore(q, data)
	if s.N != 50 || len(s.Codes) != 50*8 {
		t.Fatalf("store shape N=%d codes=%d", s.N, len(s.Codes))
	}
	dec := make([]float32, 8)
	s.Decode(dec, 7)
	want := make([]float32, 8)
	q.Decode(want, q.Encode(nil, data.Row(7)))
	for d := range want {
		if dec[d] != want[d] {
			t.Fatalf("store decode differs at %d", d)
		}
	}

	extra := randMatrix(5, 8, 4)
	first := s.Append(extra)
	if first != 50 || s.N != 55 {
		t.Fatalf("append: first=%d N=%d", first, s.N)
	}
	s.Decode(dec, 52)

	defer func() {
		if recover() == nil {
			t.Error("out-of-range Decode did not panic")
		}
	}()
	s.Decode(dec, 55)
}

// Property: quantization is monotone per dimension.
func TestMonotoneProperty(t *testing.T) {
	data := randMatrix(200, 1, 5)
	q := Train(data)
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		ca := q.Encode(nil, []float32{a})
		cb := q.Encode(nil, []float32{b})
		return ca[0] <= cb[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPanics(t *testing.T) {
	q := Train(randMatrix(10, 4, 6))
	for _, f := range []func(){
		func() { Train(vecmath.NewMatrix(0, 4)) },
		func() { q.Encode(nil, make([]float32, 3)) },
		func() { q.Decode(make([]float32, 4), make([]byte, 3)) },
		func() { NewStore(q, vecmath.NewMatrix(1, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
