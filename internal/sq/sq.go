// Package sq implements 8-bit scalar quantization: each dimension is
// linearly mapped to 0..255 using per-dimension bounds learned from the
// data. It is the compact storage used for RE-RANKING: after the PQ
// stage returns candidates, their SQ8 reconstructions refine the order
// ("re-rank with source coding", Jégou et al. — the paper's own SIFT1B
// reference [23]). SQ8 costs D bytes per vector versus the PQ codes'
// M·log2(k*)/8, so it is an optional, memory-for-recall trade.
package sq

import (
	"fmt"

	"anna/internal/vecmath"
)

// Quantizer holds per-dimension affine maps.
type Quantizer struct {
	D int
	// Min and Scale define value = Min[d] + code*Scale[d].
	Min, Scale []float32
}

// Train learns per-dimension bounds from the rows of data.
func Train(data *vecmath.Matrix) *Quantizer {
	if data.Rows == 0 {
		panic("sq: no training data")
	}
	q := &Quantizer{
		D:     data.Cols,
		Min:   make([]float32, data.Cols),
		Scale: make([]float32, data.Cols),
	}
	maxs := make([]float32, data.Cols)
	copy(q.Min, data.Row(0))
	copy(maxs, data.Row(0))
	for r := 1; r < data.Rows; r++ {
		row := data.Row(r)
		for d, v := range row {
			if v < q.Min[d] {
				q.Min[d] = v
			}
			if v > maxs[d] {
				maxs[d] = v
			}
		}
	}
	for d := range q.Scale {
		q.Scale[d] = (maxs[d] - q.Min[d]) / 255
	}
	return q
}

// Encode appends the D-byte code of v to dst.
func (q *Quantizer) Encode(dst []byte, v []float32) []byte {
	if len(v) != q.D {
		panic(fmt.Sprintf("sq: Encode dim %d, want %d", len(v), q.D))
	}
	for d, x := range v {
		var c int
		if q.Scale[d] > 0 {
			c = int((x-q.Min[d])/q.Scale[d] + 0.5)
		}
		if c < 0 {
			c = 0
		}
		if c > 255 {
			c = 255
		}
		dst = append(dst, byte(c))
	}
	return dst
}

// Decode reconstructs a vector from its code into dst (length D).
func (q *Quantizer) Decode(dst []float32, code []byte) {
	if len(code) != q.D || len(dst) != q.D {
		panic("sq: Decode size mismatch")
	}
	for d, c := range code {
		dst[d] = q.Min[d] + float32(c)*q.Scale[d]
	}
}

// Bytes is the storage per vector.
func (q *Quantizer) Bytes() int { return q.D }

// Store is a flat SQ8 vector store addressed by vector ID.
type Store struct {
	Q     *Quantizer
	Codes []byte // N*D bytes
	N     int
}

// NewStore encodes every row of data.
func NewStore(q *Quantizer, data *vecmath.Matrix) *Store {
	if data.Cols != q.D {
		panic("sq: NewStore dimension mismatch")
	}
	s := &Store{Q: q, N: data.Rows, Codes: make([]byte, 0, data.Rows*q.D)}
	for r := 0; r < data.Rows; r++ {
		s.Codes = q.Encode(s.Codes, data.Row(r))
	}
	return s
}

// Append encodes and appends more vectors, returning the first new ID.
func (s *Store) Append(data *vecmath.Matrix) int {
	if data.Cols != s.Q.D {
		panic("sq: Append dimension mismatch")
	}
	first := s.N
	for r := 0; r < data.Rows; r++ {
		s.Codes = s.Q.Encode(s.Codes, data.Row(r))
	}
	s.N += data.Rows
	return first
}

// Decode reconstructs vector id into dst.
func (s *Store) Decode(dst []float32, id int) {
	if id < 0 || id >= s.N {
		panic(fmt.Sprintf("sq: id %d out of range [0,%d)", id, s.N))
	}
	s.Q.Decode(dst, s.Codes[id*s.Q.D:(id+1)*s.Q.D])
}
