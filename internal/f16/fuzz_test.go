package f16

import (
	"math"
	"testing"
)

// FuzzRoundTrip checks the conversion invariants over arbitrary bit
// patterns: half->single->half is the identity for non-NaN values, and
// single->half never panics and preserves sign.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint32(0))
	f.Add(uint16(0x3C00), math.Float32bits(1))
	f.Add(uint16(0x7BFF), math.Float32bits(65504))
	f.Add(uint16(0xFC00), math.Float32bits(float32(math.Inf(-1))))
	f.Add(uint16(0x0001), math.Float32bits(5.96e-8))

	f.Fuzz(func(t *testing.T, h uint16, fb uint32) {
		hb := Bits(h)
		if !hb.IsNaN() {
			if got := FromFloat32(hb.ToFloat32()); got != hb {
				t.Fatalf("half round trip %#04x -> %#04x", hb, got)
			}
		}
		x := math.Float32frombits(fb)
		r := FromFloat32(x)
		if math.IsNaN(float64(x)) {
			if !r.IsNaN() {
				t.Fatalf("NaN lost: %#04x", r)
			}
			return
		}
		// Sign preservation (except NaN).
		if math.Signbit(float64(x)) != (r&0x8000 != 0) {
			t.Fatalf("sign flipped for %v -> %#04x", x, r)
		}
		// Idempotence of rounding.
		if Round(Round(x)) != Round(x) {
			t.Fatalf("rounding not idempotent for %v", x)
		}
	})
}
