// Package f16 implements IEEE 754 binary16 (half precision) conversion.
//
// ANNA stores database vectors, centroids, lookup-table entries and
// similarity scores as 2-byte values ("16-bit datatype" in the paper).
// This package provides the conversions so the simulator's functional
// datapath can round intermediate values exactly as the hardware would,
// and so the software reference can optionally match the accelerator
// bit-for-bit.
package f16

import "math"

// Bits is an IEEE 754 binary16 value stored in a uint16.
type Bits uint16

const (
	signMask     = 0x8000
	expMask      = 0x7C00
	fracMask     = 0x03FF
	expBias      = 15
	maxFinite    = 65504.0
	minSubnormal = 5.960464477539063e-08 // 2^-24
)

// PositiveInfinity and NegativeInfinity are the half-precision infinities.
const (
	PositiveInfinity Bits = 0x7C00
	NegativeInfinity Bits = 0xFC00
)

// MaxValue is the largest finite half-precision value (65504).
const MaxValue = maxFinite

// FromFloat32 converts a float32 to binary16 with round-to-nearest-even,
// the rounding mode hardware FP converters use.
func FromFloat32(f float32) Bits {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & signMask
	exp := int32(b>>23) & 0xFF
	frac := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if frac != 0 {
			// NaN: preserve a quiet NaN payload bit.
			return Bits(sign | expMask | 0x0200)
		}
		return Bits(sign | expMask)
	case exp == 0 && frac == 0:
		return Bits(sign) // signed zero
	}

	// Unbiased exponent of the float32 value.
	e := exp - 127
	switch {
	case e > 15:
		// Overflows half range: round to infinity.
		return Bits(sign | expMask)
	case e >= -14:
		// Normal half-precision range. Keep 10 fraction bits, round the
		// discarded 13 bits to nearest even.
		halfExp := uint16(e+expBias) << 10
		halfFrac := uint16(frac >> 13)
		round := frac & 0x1FFF
		if round > 0x1000 || (round == 0x1000 && halfFrac&1 == 1) {
			// Carry may propagate into the exponent; uint16 addition
			// handles that naturally (frac overflow increments exp).
			return Bits((sign | halfExp | halfFrac) + 1)
		}
		return Bits(sign | halfExp | halfFrac)
	case e >= -24:
		// Subnormal half-precision. Implicit leading 1 becomes explicit.
		frac |= 0x800000
		shift := uint32(-e - 14 + 13)
		halfFrac := uint16(frac >> shift)
		rem := frac & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && halfFrac&1 == 1) {
			halfFrac++
		}
		return Bits(sign | halfFrac)
	default:
		// Underflows to signed zero.
		return Bits(sign)
	}
}

// ToFloat32 converts a binary16 value to float32 (always exact).
func (h Bits) ToFloat32() float32 {
	sign := uint32(h&signMask) << 16
	exp := uint32(h&expMask) >> 10
	frac := uint32(h & fracMask)

	switch {
	case exp == 0x1F: // Inf or NaN
		if frac != 0 {
			return math.Float32frombits(sign | 0x7F800000 | frac<<13 | 0x400000)
		}
		return math.Float32frombits(sign | 0x7F800000)
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: normalise.
		e := uint32(127 - 15 + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= fracMask
		return math.Float32frombits(sign | e<<23 | frac<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | frac<<13)
	}
}

// Round rounds a float32 through half precision and back, mimicking a
// store-to-SRAM / load-from-SRAM pair in the accelerator datapath.
func Round(f float32) float32 { return FromFloat32(f).ToFloat32() }

// RoundSlice rounds every element of src through half precision into dst.
// dst and src may alias. It panics if len(dst) < len(src).
func RoundSlice(dst, src []float32) {
	for i, v := range src {
		dst[i] = Round(v)
	}
}

// IsNaN reports whether h is a half-precision NaN.
func (h Bits) IsNaN() bool { return h&expMask == expMask && h&fracMask != 0 }

// IsInf reports whether h is a half-precision infinity.
func (h Bits) IsInf() bool { return h&expMask == expMask && h&fracMask == 0 }

// Encode appends the little-endian byte representation of h to dst.
func (h Bits) Encode(dst []byte) { dst[0] = byte(h); dst[1] = byte(h >> 8) }

// Decode reads a little-endian binary16 from src.
func Decode(src []byte) Bits { return Bits(src[0]) | Bits(src[1])<<8 }

// EncodeSlice packs src (rounded to half precision) into dst, 2 bytes per
// element, little endian. It panics if len(dst) < 2*len(src).
func EncodeSlice(dst []byte, src []float32) {
	for i, v := range src {
		FromFloat32(v).Encode(dst[2*i:])
	}
}

// DecodeSlice unpacks len(dst) half-precision values from src into dst.
func DecodeSlice(dst []float32, src []byte) {
	for i := range dst {
		dst[i] = Decode(src[2*i:]).ToFloat32()
	}
}
