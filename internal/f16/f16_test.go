package f16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Bits
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},
		{-65504, 0xFBFF},
		{5.960464477539063e-08, 0x0001}, // smallest subnormal
		{6.103515625e-05, 0x0400},       // smallest normal
		{0.333251953125, 0x3555},        // nearest half to 1/3
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.bits {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if got := c.bits.ToFloat32(); got != c.f {
			t.Errorf("ToFloat32(%#04x) = %v, want %v", c.bits, got, c.f)
		}
	}
}

func TestNegativeZero(t *testing.T) {
	nz := FromFloat32(float32(math.Copysign(0, -1)))
	if nz != 0x8000 {
		t.Fatalf("FromFloat32(-0) = %#04x, want 0x8000", nz)
	}
	back := nz.ToFloat32()
	if back != 0 || !math.Signbit(float64(back)) {
		t.Fatalf("ToFloat32(0x8000) = %v, want -0", back)
	}
}

func TestOverflowToInf(t *testing.T) {
	if got := FromFloat32(70000); got != PositiveInfinity {
		t.Errorf("FromFloat32(70000) = %#04x, want +Inf", got)
	}
	if got := FromFloat32(-70000); got != NegativeInfinity {
		t.Errorf("FromFloat32(-70000) = %#04x, want -Inf", got)
	}
	// 65504 is the max finite; 65520 rounds to +Inf (ties away from 65504).
	if got := FromFloat32(65520); got != PositiveInfinity {
		t.Errorf("FromFloat32(65520) = %#04x, want +Inf", got)
	}
	if got := FromFloat32(65519.996); got != 0x7BFF {
		t.Errorf("FromFloat32(65519.996) = %#04x, want 0x7BFF (max finite)", got)
	}
}

func TestUnderflowToZero(t *testing.T) {
	if got := FromFloat32(1e-9); got != 0 {
		t.Errorf("FromFloat32(1e-9) = %#04x, want 0", got)
	}
	if got := FromFloat32(-1e-9); got != 0x8000 {
		t.Errorf("FromFloat32(-1e-9) = %#04x, want -0", got)
	}
}

func TestInfNaN(t *testing.T) {
	if got := FromFloat32(float32(math.Inf(1))); got != PositiveInfinity {
		t.Errorf("FromFloat32(+Inf) = %#04x", got)
	}
	if got := FromFloat32(float32(math.Inf(-1))); got != NegativeInfinity {
		t.Errorf("FromFloat32(-Inf) = %#04x", got)
	}
	nan := FromFloat32(float32(math.NaN()))
	if !nan.IsNaN() {
		t.Errorf("FromFloat32(NaN) = %#04x, not NaN", nan)
	}
	if !math.IsNaN(float64(nan.ToFloat32())) {
		t.Errorf("round-trip NaN lost NaN-ness")
	}
	if !PositiveInfinity.IsInf() || !NegativeInfinity.IsInf() {
		t.Errorf("IsInf false for infinities")
	}
	if PositiveInfinity.IsNaN() {
		t.Errorf("IsNaN true for +Inf")
	}
	if got := PositiveInfinity.ToFloat32(); !math.IsInf(float64(got), 1) {
		t.Errorf("ToFloat32(+Inf bits) = %v", got)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and 1+2^-10: rounds to even (1).
	if got := FromFloat32(1 + 1.0/2048); got != 0x3C00 {
		t.Errorf("halfway tie rounded to %#04x, want 0x3C00 (even)", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds up to even.
	if got := FromFloat32(1 + 3.0/2048); got != 0x3C02 {
		t.Errorf("halfway tie rounded to %#04x, want 0x3C02 (even)", got)
	}
	// Just above halfway rounds up.
	if got := FromFloat32(1 + 1.1/2048); got != 0x3C01 {
		t.Errorf("above-halfway rounded to %#04x, want 0x3C01", got)
	}
}

// Round-trip property: every half-precision bit pattern except NaN survives
// half→float32→half exactly.
func TestRoundTripAllBits(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		h := Bits(i)
		if h.IsNaN() {
			continue
		}
		got := FromFloat32(h.ToFloat32())
		if got != h {
			t.Fatalf("round-trip %#04x -> %v -> %#04x", h, h.ToFloat32(), got)
		}
	}
}

// Property: rounding is idempotent and the error bound holds for values in
// the normal range.
func TestRoundProperties(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		// Clamp into finite half range to avoid overflow-to-Inf cases.
		if x > maxFinite {
			x = maxFinite
		}
		if x < -maxFinite {
			x = -maxFinite
		}
		r := Round(x)
		if Round(r) != r {
			return false // not idempotent
		}
		// Relative error ≤ 2^-11 for normal values.
		if ax := math.Abs(float64(x)); ax >= 6.103515625e-05 {
			if math.Abs(float64(r-x)) > ax/2048 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestMonotonicity(t *testing.T) {
	// Conversion must be monotone: x <= y implies Round(x) <= Round(y).
	f := func(x, y float32) bool {
		if math.IsNaN(float64(x)) || math.IsNaN(float64(y)) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		return Round(x) <= Round(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeSlice(t *testing.T) {
	src := []float32{0, 1, -1, 0.5, 1000, -65504, 3.14159}
	buf := make([]byte, 2*len(src))
	EncodeSlice(buf, src)
	dst := make([]float32, len(src))
	DecodeSlice(dst, buf)
	for i := range src {
		if dst[i] != Round(src[i]) {
			t.Errorf("slice round-trip [%d]: got %v want %v", i, dst[i], Round(src[i]))
		}
	}
}

func TestRoundSliceAliasing(t *testing.T) {
	v := []float32{1.0000001, 2.0000001, 3.0000001}
	RoundSlice(v, v)
	for i, x := range v {
		if x != Round(x) {
			t.Errorf("in-place round [%d] = %v not idempotent", i, x)
		}
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	var sink Bits
	for i := 0; i < b.N; i++ {
		sink = FromFloat32(float32(i) * 0.1)
	}
	_ = sink
}

func BenchmarkToFloat32(b *testing.B) {
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = Bits(i & 0x7BFF).ToFloat32()
	}
	_ = sink
}
