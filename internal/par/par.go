// Package par is the tiny parallel-for substrate of the build/ingest
// pipeline: fixed-size chunks of an index range fanned out over a
// bounded set of goroutines.
//
// Determinism contract: chunk boundaries depend only on (n, chunkSize) —
// never on the worker count — so a caller whose chunk results are
// written to disjoint, chunk-indexed locations (or reduced afterwards in
// chunk order) produces bit-identical output for ANY worker count,
// including 1. Every parallel stage of the build pipeline (k-means
// assignment, k-means++ seeding, centroid reduction, residual fill,
// batch encoding, batch assignment) is written against this contract.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values <= 0 mean GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run processes the range [0, n) in fixed chunkSize chunks on at most
// workers goroutines (0 = GOMAXPROCS). fn is invoked once per chunk as
// fn(w, lo, hi), where w in [0, workers) identifies the executing
// goroutine — use it to index per-worker scratch. Which worker runs
// which chunk is scheduling-dependent; fn's output must depend only on
// [lo, hi). Run returns when every chunk has been processed. With one
// worker (or a single chunk) everything runs inline on the caller's
// goroutine.
func Run(n, chunkSize, workers int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunkSize <= 0 {
		chunkSize = n
	}
	chunks := (n + chunkSize - 1) / chunkSize
	workers = Workers(workers)
	if workers > chunks {
		workers = chunks
	}
	if workers == 1 {
		for c := 0; c < chunks; c++ {
			lo := c * chunkSize
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			fn(0, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * chunkSize
				hi := lo + chunkSize
				if hi > n {
					hi = n
				}
				fn(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// ReduceFloat64 sums per-chunk partial totals in ascending chunk order,
// the fixed reduction tree that keeps floating-point accumulations
// independent of the worker count. partials must be indexed by chunk
// ordinal (lo / chunkSize).
func ReduceFloat64(partials []float64) float64 {
	var s float64
	for _, p := range partials {
		s += p
	}
	return s
}

// NumChunks returns how many chunks Run will produce for (n, chunkSize),
// for sizing chunk-indexed partial buffers.
func NumChunks(n, chunkSize int) int {
	if n <= 0 {
		return 0
	}
	if chunkSize <= 0 {
		return 1
	}
	return (n + chunkSize - 1) / chunkSize
}
