package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestNumChunks(t *testing.T) {
	cases := []struct{ n, chunk, want int }{
		{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {9, 4, 3},
	}
	for _, c := range cases {
		if got := NumChunks(c.n, c.chunk); got != c.want {
			t.Errorf("NumChunks(%d, %d) = %d, want %d", c.n, c.chunk, got, c.want)
		}
	}
}

// Run must visit every index exactly once, in chunks whose boundaries
// depend only on (n, chunkSize), for any worker count.
func TestRunCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 100, 1000} {
		for _, chunk := range []int{1, 7, 64, 256} {
			for _, workers := range []int{1, 2, 4, 9} {
				visits := make([]int32, n)
				Run(n, chunk, workers, func(w, lo, hi int) {
					if w < 0 || w >= workers {
						t.Errorf("worker index %d out of [0, %d)", w, workers)
					}
					if lo%chunk != 0 {
						t.Errorf("chunk start %d not a multiple of %d", lo, chunk)
					}
					if hi-lo > chunk || hi > n || lo >= hi {
						t.Errorf("bad chunk [%d, %d) for n=%d chunk=%d", lo, hi, n, chunk)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("n=%d chunk=%d workers=%d: index %d visited %d times",
							n, chunk, workers, i, v)
					}
				}
			}
		}
	}
}

// A single chunk (or workers == 1) must run inline on the caller's
// goroutine with worker index 0.
func TestRunInline(t *testing.T) {
	calls := 0
	Run(10, 100, 8, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 10 {
			t.Errorf("inline chunk (w=%d, lo=%d, hi=%d)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("single-chunk Run made %d calls", calls)
	}
}

// ReduceFloat64 must sum in slice (chunk) order — the property the
// deterministic inertia/seeding totals rely on.
func TestReduceFloat64Order(t *testing.T) {
	// Catastrophic-cancellation probe: order matters for these values
	// (summed via variables so the compiler cannot fold exactly).
	p := []float64{1e16, 1, -1e16, 1}
	want := 0.0
	for _, v := range p {
		want += v // left-to-right
	}
	if got := ReduceFloat64(p); got != want {
		t.Errorf("ReduceFloat64 = %v, want left-to-right %v", got, want)
	}
	if got := ReduceFloat64(nil); got != 0 {
		t.Errorf("ReduceFloat64(nil) = %v", got)
	}
}
