package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"anna/internal/vecmath"
)

// The fvecs/ivecs/bvecs formats used by the SIFT/Deep/GloVe benchmark
// suites store each vector as a 4-byte little-endian dimension count
// followed by that many elements (4-byte float32, 4-byte int32, or 1-byte
// uint8 respectively).

// WriteFvecs writes the rows of m in fvecs format.
func WriteFvecs(w io.Writer, m *vecmath.Matrix) error {
	bw := bufio.NewWriter(w)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(m.Cols))
	buf := make([]byte, 4*m.Cols)
	for r := 0; r < m.Rows; r++ {
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		row := m.Row(r)
		for i, v := range row {
			binary.LittleEndian.PutUint32(buf[4*i:], floatBits(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFvecs reads at most maxRows vectors (all when maxRows <= 0) from an
// fvecs stream.
func ReadFvecs(r io.Reader, maxRows int) (*vecmath.Matrix, error) {
	br := bufio.NewReader(r)
	var rows [][]float32
	dim := -1
	for maxRows <= 0 || len(rows) < maxRows {
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		d := int(binary.LittleEndian.Uint32(hdr[:]))
		if d <= 0 || d > 1<<20 {
			return nil, fmt.Errorf("dataset: implausible fvecs dimension %d", d)
		}
		if dim == -1 {
			dim = d
		} else if d != dim {
			return nil, fmt.Errorf("dataset: inconsistent fvecs dimension %d vs %d", d, dim)
		}
		buf := make([]byte, 4*d)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: truncated fvecs vector: %w", err)
		}
		row := make([]float32, d)
		for i := range row {
			row[i] = bitsFloat(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty fvecs stream")
	}
	m := vecmath.NewMatrix(len(rows), dim)
	for i, row := range rows {
		m.SetRow(i, row)
	}
	return m, nil
}

// WriteBvecs writes rows as bvecs (uint8 elements, values clamped to 0..255).
func WriteBvecs(w io.Writer, m *vecmath.Matrix) error {
	bw := bufio.NewWriter(w)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(m.Cols))
	buf := make([]byte, m.Cols)
	for r := 0; r < m.Rows; r++ {
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		for i, v := range m.Row(r) {
			switch {
			case v <= 0:
				buf[i] = 0
			case v >= 255:
				buf[i] = 255
			default:
				buf[i] = byte(v + 0.5)
			}
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBvecs reads at most maxRows vectors (all when maxRows <= 0) from a
// bvecs stream into float32 rows.
func ReadBvecs(r io.Reader, maxRows int) (*vecmath.Matrix, error) {
	br := bufio.NewReader(r)
	var rows [][]float32
	dim := -1
	for maxRows <= 0 || len(rows) < maxRows {
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		d := int(binary.LittleEndian.Uint32(hdr[:]))
		if d <= 0 || d > 1<<20 {
			return nil, fmt.Errorf("dataset: implausible bvecs dimension %d", d)
		}
		if dim == -1 {
			dim = d
		} else if d != dim {
			return nil, fmt.Errorf("dataset: inconsistent bvecs dimension %d vs %d", d, dim)
		}
		buf := make([]byte, d)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: truncated bvecs vector: %w", err)
		}
		row := make([]float32, d)
		for i, b := range buf {
			row[i] = float32(b)
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty bvecs stream")
	}
	m := vecmath.NewMatrix(len(rows), dim)
	for i, row := range rows {
		m.SetRow(i, row)
	}
	return m, nil
}

// WriteIvecs writes integer rows (e.g. ground-truth neighbor lists).
func WriteIvecs(w io.Writer, rows [][]int32) error {
	bw := bufio.NewWriter(w)
	var hdr [4]byte
	for _, row := range rows {
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(row)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		buf := make([]byte, 4*len(row))
		for i, v := range row {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadIvecs reads all integer rows from an ivecs stream.
func ReadIvecs(r io.Reader) ([][]int32, error) {
	br := bufio.NewReader(r)
	var rows [][]int32
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		d := int(binary.LittleEndian.Uint32(hdr[:]))
		if d < 0 || d > 1<<24 {
			return nil, fmt.Errorf("dataset: implausible ivecs length %d", d)
		}
		buf := make([]byte, 4*d)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: truncated ivecs row: %w", err)
		}
		row := make([]int32, d)
		for i := range row {
			row[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// LoadFvecsFile reads an fvecs file from disk.
func LoadFvecsFile(path string, maxRows int) (*vecmath.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFvecs(f, maxRows)
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func bitsFloat(u uint32) float32 { return math.Float32frombits(u) }
