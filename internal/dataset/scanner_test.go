package dataset

import (
	"bytes"
	"testing"

	"anna/internal/vecmath"
)

func TestFvecsScannerRoundTrip(t *testing.T) {
	m := vecmath.NewMatrix(5, 3)
	for i := range m.Data {
		m.Data[i] = float32(i) * 0.5
	}
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	sc := NewFvecsScanner(&buf)
	if sc.Dim() != -1 {
		t.Error("Dim known before first Next")
	}
	r := 0
	for sc.Next() {
		if sc.Dim() != 3 {
			t.Fatalf("dim %d", sc.Dim())
		}
		for j, v := range sc.Row() {
			if v != m.Row(r)[j] {
				t.Fatalf("row %d col %d: %v vs %v", r, j, v, m.Row(r)[j])
			}
		}
		r++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if r != 5 || sc.Count() != 5 {
		t.Fatalf("read %d rows (Count %d)", r, sc.Count())
	}
	// Next after EOF stays false without error.
	if sc.Next() {
		t.Error("Next true after EOF")
	}
}

func TestFvecsScannerRowIsReused(t *testing.T) {
	m := vecmath.NewMatrix(2, 2)
	m.SetRow(0, []float32{1, 2})
	m.SetRow(1, []float32{3, 4})
	var buf bytes.Buffer
	WriteFvecs(&buf, m)
	sc := NewFvecsScanner(&buf)
	sc.Next()
	first := sc.Row()
	sc.Next()
	if first[0] != 3 {
		t.Error("Row() is documented as reused; copy semantics changed")
	}
}

func TestFvecsScannerErrors(t *testing.T) {
	// Truncated payload.
	bad := []byte{2, 0, 0, 0, 1, 2, 3}
	sc := NewFvecsScanner(bytes.NewReader(bad))
	if sc.Next() {
		t.Error("truncated record accepted")
	}
	if sc.Err() == nil {
		t.Error("no error for truncated record")
	}
	// Implausible dimension.
	bad = []byte{0xFF, 0xFF, 0xFF, 0x7F}
	sc = NewFvecsScanner(bytes.NewReader(bad))
	if sc.Next() || sc.Err() == nil {
		t.Error("implausible dimension accepted")
	}
	// Inconsistent dimension between records.
	m1 := vecmath.NewMatrix(1, 2)
	m2 := vecmath.NewMatrix(1, 3)
	var buf bytes.Buffer
	WriteFvecs(&buf, m1)
	WriteFvecs(&buf, m2)
	sc = NewFvecsScanner(&buf)
	if !sc.Next() {
		t.Fatal("first record rejected")
	}
	if sc.Next() || sc.Err() == nil {
		t.Error("dimension change accepted")
	}
	// Clean empty stream: no rows, no error.
	sc = NewFvecsScanner(bytes.NewReader(nil))
	if sc.Next() || sc.Err() != nil {
		t.Errorf("empty stream: next=%v err=%v", false, sc.Err())
	}
}
