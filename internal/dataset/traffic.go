package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// QueryMix draws indices into a query pool with optional Zipfian skew,
// modelling production query streams where a small set of hot queries
// dominates (the regime a result cache exploits). Skew 0 is uniform;
// s > 1 enables a Zipf distribution with exponent s over the pool. The
// hot ranks are scattered across the pool by a seeded permutation so
// skewed traffic does not concentrate on the low indices (which for
// generated pools are correlated with the first mixture components).
//
// A QueryMix is not safe for concurrent use; give each load-generator
// worker its own (seeded differently so workers don't draw in lockstep).
type QueryMix struct {
	r    *rand.Rand
	zipf *rand.Zipf
	perm []int
}

// NewQueryMix returns a mix over pool indices [0, n). s <= 1 gives the
// uniform distribution (rand.Zipf requires s > 1); larger s concentrates
// mass: at s = 1.1 roughly half the draws land on the hottest ~5% of a
// 1k pool.
func NewQueryMix(n int, s float64, seed int64) *QueryMix {
	if n <= 0 {
		panic("dataset: QueryMix over empty pool")
	}
	r := rand.New(rand.NewSource(seed))
	m := &QueryMix{r: r, perm: r.Perm(n)}
	if s > 1 {
		m.zipf = rand.NewZipf(r, s, 1, uint64(n-1))
	}
	return m
}

// Next draws one pool index.
func (m *QueryMix) Next() int {
	if m.zipf != nil {
		return m.perm[m.zipf.Uint64()]
	}
	return m.perm[m.r.Intn(len(m.perm))]
}

// TenantShare is one tenant's slice of the generated traffic.
type TenantShare struct {
	Key    string // API key presented by the generated requests
	Weight int    // relative share of requests
}

// TenantMix draws tenant API keys with the configured relative weights.
// Like QueryMix it is single-goroutine; clone per worker.
type TenantMix struct {
	r      *rand.Rand
	shares []TenantShare
	cum    []int
	total  int
}

// NewTenantMix builds a mix from shares. Weights < 1 are treated as 1.
// An empty share list yields a mix that always returns "" (anonymous
// traffic, mapped to the server's default tenant).
func NewTenantMix(shares []TenantShare, seed int64) *TenantMix {
	m := &TenantMix{r: rand.New(rand.NewSource(seed))}
	for _, s := range shares {
		if s.Weight < 1 {
			s.Weight = 1
		}
		m.total += s.Weight
		m.shares = append(m.shares, s)
		m.cum = append(m.cum, m.total)
	}
	return m
}

// Next draws one tenant key ("" when the mix is empty).
func (m *TenantMix) Next() string {
	if m.total == 0 {
		return ""
	}
	n := m.r.Intn(m.total)
	i := sort.SearchInts(m.cum, n+1)
	return m.shares[i].Key
}

// Shares returns the configured tenant shares.
func (m *TenantMix) Shares() []TenantShare { return m.shares }

// ParseTenantMix parses a "key:weight,key:weight" traffic-mix spec
// (weight defaults to 1 when omitted): "web:9,batch:1".
func ParseTenantMix(spec string) ([]TenantShare, error) {
	var shares []TenantShare
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		share := TenantShare{Weight: 1}
		if i := strings.IndexByte(part, ':'); i >= 0 {
			w, err := strconv.Atoi(part[i+1:])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("dataset: tenant mix %q: weight %q must be a positive integer", part, part[i+1:])
			}
			share.Weight = w
			part = part[:i]
		}
		if part == "" {
			return nil, fmt.Errorf("dataset: tenant mix entry with empty key")
		}
		share.Key = part
		shares = append(shares, share)
	}
	return shares, nil
}
