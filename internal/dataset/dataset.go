// Package dataset provides the evaluation workloads: synthetic generators
// that stand in for the paper's datasets (SIFT1M/1B, Deep1M/1B, GloVe,
// TTI1B — not redistributable and hundreds of GB at full scale), readers
// and writers for the standard fvecs/ivecs/bvecs file formats so real
// data can be used when available, and exact ground-truth computation.
//
// Each synthetic generator reproduces the properties that drive both the
// algorithmic behaviour (recall vs W) and the hardware costs (traffic,
// cycle counts): dimensionality, metric, value distribution, and a
// non-uniform cluster structure so inverted lists have realistic skew.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"anna/internal/pq"
	"anna/internal/vecmath"
)

// Dataset is an in-memory evaluation workload.
type Dataset struct {
	Name    string
	Metric  pq.Metric
	Base    *vecmath.Matrix // N x D database vectors
	Queries *vecmath.Matrix // Q x D query vectors
	Train   *vecmath.Matrix // training vectors (may alias Base)
}

// N returns the number of database vectors.
func (d *Dataset) N() int { return d.Base.Rows }

// D returns the dimensionality.
func (d *Dataset) D() int { return d.Base.Cols }

// Spec describes a synthetic workload to generate.
type Spec struct {
	Name   string
	Metric pq.Metric
	N      int // database vectors
	Q      int // query vectors
	D      int // dimensionality
	Groups int // latent Gaussian mixture components (cluster structure)
	Std    float32
	// Zipf skews the mixture weights; 0 gives uniform groups, larger
	// values concentrate mass in few groups the way real embedding
	// corpora do (hot clusters).
	Zipf float64
	// Unit normalizes every vector to the unit sphere (Deep-style
	// descriptors).
	Unit bool
	// Offset shifts all values (SIFT-style non-negative histograms).
	Offset float32
	Seed   int64
}

// SIFTLike mimics SIFT descriptors: D=128, L2 metric, non-negative values.
func SIFTLike(n, q int, seed int64) Spec {
	return Spec{Name: "sift", Metric: pq.L2, N: n, Q: q, D: 128,
		Groups: 64, Std: 0.18, Zipf: 0.8, Offset: 0.5, Seed: seed}
}

// DeepLike mimics Deep1B descriptors: D=96, L2 metric, unit-normalized.
func DeepLike(n, q int, seed int64) Spec {
	return Spec{Name: "deep", Metric: pq.L2, N: n, Q: q, D: 96,
		Groups: 64, Std: 0.25, Zipf: 0.6, Unit: true, Seed: seed}
}

// GloVeLike mimics GloVe word embeddings: D=100, inner-product metric.
func GloVeLike(n, q int, seed int64) Spec {
	return Spec{Name: "glove", Metric: pq.InnerProduct, N: n, Q: q, D: 100,
		Groups: 48, Std: 0.35, Zipf: 1.0, Seed: seed}
}

// TTILike mimics the Yandex text-to-image set: D=128, inner-product,
// queries drawn from a different (shifted) distribution than the base,
// the defining property of TTI (cross-modal).
func TTILike(n, q int, seed int64) Spec {
	return Spec{Name: "tti", Metric: pq.InnerProduct, N: n, Q: q, D: 128,
		Groups: 64, Std: 0.3, Zipf: 0.9, Seed: seed}
}

// Generate builds the synthetic dataset described by s.
func Generate(s Spec) *Dataset {
	if s.N <= 0 || s.Q <= 0 || s.D <= 0 {
		panic(fmt.Sprintf("dataset: invalid spec N=%d Q=%d D=%d", s.N, s.Q, s.D))
	}
	if s.Groups <= 0 {
		s.Groups = 32
	}
	if s.Std <= 0 {
		s.Std = 0.25
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// Latent mixture component centers.
	centers := vecmath.NewMatrix(s.Groups, s.D)
	for i := range centers.Data {
		centers.Data[i] = float32(rng.NormFloat64())
	}
	if s.Unit {
		for g := 0; g < s.Groups; g++ {
			vecmath.Normalize(centers.Row(g))
		}
	}

	weights := mixtureWeights(s.Groups, s.Zipf)

	base := vecmath.NewMatrix(s.N, s.D)
	sampleMixture(base, centers, weights, s, rng)

	// TTI-style cross-modal queries come from perturbed centers rather
	// than the base distribution itself.
	queries := vecmath.NewMatrix(s.Q, s.D)
	qs := s
	if s.Name == "tti" {
		qs.Std *= 1.5
	}
	sampleMixture(queries, centers, weights, qs, rng)

	return &Dataset{Name: s.Name, Metric: s.Metric, Base: base, Queries: queries, Train: base}
}

// mixtureWeights returns normalized Zipf-skewed mixture weights.
func mixtureWeights(groups int, zipf float64) []float64 {
	w := make([]float64, groups)
	var sum float64
	for i := range w {
		if zipf <= 0 {
			w[i] = 1
		} else {
			w[i] = 1 / math.Pow(float64(i+1), zipf)
		}
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

func sampleMixture(dst *vecmath.Matrix, centers *vecmath.Matrix, weights []float64, s Spec, rng *rand.Rand) {
	// Cumulative weights for component sampling.
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	for r := 0; r < dst.Rows; r++ {
		u := rng.Float64()
		g := len(cum) - 1
		for i, c := range cum {
			if u <= c {
				g = i
				break
			}
		}
		row := dst.Row(r)
		ctr := centers.Row(g)
		for j := range row {
			row[j] = ctr[j] + float32(rng.NormFloat64())*s.Std + s.Offset
		}
		if s.Unit {
			vecmath.Normalize(row)
		}
	}
}
