package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// FvecsScanner iterates an fvecs stream one vector at a time with O(D)
// memory — the building block for streaming billion-scale index
// construction, where the raw data (256 GB at N=1B, D=128) cannot be
// loaded at once.
type FvecsScanner struct {
	br  *bufio.Reader
	dim int
	row []float32
	buf []byte
	err error
	n   int
}

// NewFvecsScanner wraps r. The dimension is learned from the first record.
func NewFvecsScanner(r io.Reader) *FvecsScanner {
	return &FvecsScanner{br: bufio.NewReaderSize(r, 1<<16), dim: -1}
}

// Next advances to the next vector, returning false at EOF or on error
// (distinguish via Err).
func (s *FvecsScanner) Next() bool {
	if s.err != nil {
		return false
	}
	var hdr [4]byte
	if _, err := io.ReadFull(s.br, hdr[:]); err != nil {
		if err != io.EOF {
			s.err = fmt.Errorf("dataset: reading fvecs header: %w", err)
		}
		return false
	}
	d := int(binary.LittleEndian.Uint32(hdr[:]))
	if d <= 0 || d > 1<<20 {
		s.err = fmt.Errorf("dataset: implausible fvecs dimension %d", d)
		return false
	}
	if s.dim == -1 {
		s.dim = d
		s.row = make([]float32, d)
		s.buf = make([]byte, 4*d)
	} else if d != s.dim {
		s.err = fmt.Errorf("dataset: inconsistent fvecs dimension %d vs %d", d, s.dim)
		return false
	}
	if _, err := io.ReadFull(s.br, s.buf); err != nil {
		s.err = fmt.Errorf("dataset: truncated fvecs vector: %w", err)
		return false
	}
	for i := range s.row {
		s.row[i] = math.Float32frombits(binary.LittleEndian.Uint32(s.buf[4*i:]))
	}
	s.n++
	return true
}

// Row returns the current vector. The slice is reused by Next; copy it
// to retain.
func (s *FvecsScanner) Row() []float32 { return s.row }

// Dim returns the stream's dimensionality (-1 before the first Next).
func (s *FvecsScanner) Dim() int { return s.dim }

// Count returns how many vectors have been read.
func (s *FvecsScanner) Count() int { return s.n }

// Err returns the first error encountered (nil at clean EOF).
func (s *FvecsScanner) Err() error { return s.err }
