package dataset

import (
	"bytes"
	"math"
	"os"
	"testing"

	"anna/internal/pq"
	"anna/internal/vecmath"
)

func TestGenerateShapes(t *testing.T) {
	for _, spec := range []Spec{
		SIFTLike(500, 20, 1),
		DeepLike(500, 20, 2),
		GloVeLike(500, 20, 3),
		TTILike(500, 20, 4),
	} {
		ds := Generate(spec)
		if ds.N() != 500 || ds.Queries.Rows != 20 {
			t.Errorf("%s: N=%d Q=%d", spec.Name, ds.N(), ds.Queries.Rows)
		}
		if ds.D() != spec.D {
			t.Errorf("%s: D=%d want %d", spec.Name, ds.D(), spec.D)
		}
		if ds.Metric != spec.Metric {
			t.Errorf("%s: metric %v", spec.Name, ds.Metric)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SIFTLike(100, 5, 7))
	b := Generate(SIFTLike(100, 5, 7))
	for i := range a.Base.Data {
		if a.Base.Data[i] != b.Base.Data[i] {
			t.Fatal("same seed, different data")
		}
	}
	c := Generate(SIFTLike(100, 5, 8))
	same := true
	for i := range a.Base.Data {
		if a.Base.Data[i] != c.Base.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestDeepLikeUnitNorm(t *testing.T) {
	ds := Generate(DeepLike(200, 10, 1))
	for r := 0; r < ds.N(); r++ {
		n := float64(vecmath.Norm(ds.Base.Row(r)))
		if math.Abs(n-1) > 1e-5 {
			t.Fatalf("row %d norm %v, want 1", r, n)
		}
	}
}

func TestSIFTLikeNonNegativeMean(t *testing.T) {
	ds := Generate(SIFTLike(500, 10, 2))
	var mean float64
	for _, v := range ds.Base.Data {
		mean += float64(v)
	}
	mean /= float64(len(ds.Base.Data))
	if mean < 0.2 {
		t.Errorf("SIFT-like mean %v, expected positive offset", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	w := mixtureWeights(10, 1.0)
	if w[0] <= w[9] {
		t.Errorf("Zipf weights not decreasing: %v", w)
	}
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	u := mixtureWeights(10, 0)
	for _, x := range u {
		if math.Abs(x-0.1) > 1e-9 {
			t.Errorf("uniform weights = %v", u)
		}
	}
}

func TestGeneratePanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Spec{N: 0, Q: 1, D: 4})
}

func TestFvecsRoundTrip(t *testing.T) {
	m := vecmath.NewMatrix(3, 4)
	for i := range m.Data {
		m.Data[i] = float32(i) * 1.5
	}
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 3*(4+16) {
		t.Errorf("fvecs size %d", buf.Len())
	}
	got, err := ReadFvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 3 || got.Cols != 4 {
		t.Fatalf("shape %dx%d", got.Rows, got.Cols)
	}
	for i := range m.Data {
		if got.Data[i] != m.Data[i] {
			t.Fatalf("data[%d] = %v want %v", i, got.Data[i], m.Data[i])
		}
	}
}

func TestFvecsMaxRows(t *testing.T) {
	m := vecmath.NewMatrix(5, 2)
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFvecs(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 2 {
		t.Errorf("maxRows ignored: %d rows", got.Rows)
	}
}

func TestFvecsErrors(t *testing.T) {
	if _, err := ReadFvecs(bytes.NewReader(nil), 0); err == nil {
		t.Error("empty stream accepted")
	}
	// Truncated payload.
	bad := []byte{4, 0, 0, 0, 1, 2}
	if _, err := ReadFvecs(bytes.NewReader(bad), 0); err == nil {
		t.Error("truncated stream accepted")
	}
	// Implausible dimension.
	bad = []byte{0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := ReadFvecs(bytes.NewReader(bad), 0); err == nil {
		t.Error("implausible dimension accepted")
	}
}

func TestBvecsRoundTripAndClamp(t *testing.T) {
	m := vecmath.NewMatrix(2, 3)
	m.SetRow(0, []float32{-5, 0, 127.6})
	m.SetRow(1, []float32{255, 300, 42})
	var buf bytes.Buffer
	if err := WriteBvecs(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBvecs(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 0, 128, 255, 255, 42}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Errorf("bvecs[%d] = %v want %v", i, got.Data[i], want[i])
		}
	}
}

func TestIvecsRoundTrip(t *testing.T) {
	rows := [][]int32{{1, 2, 3}, {7}, {}}
	var buf bytes.Buffer
	if err := WriteIvecs(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIvecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(got[0]) != 3 || len(got[1]) != 1 || len(got[2]) != 0 {
		t.Fatalf("shape mismatch: %v", got)
	}
	if got[0][2] != 3 || got[1][0] != 7 {
		t.Errorf("values: %v", got)
	}
}

func TestMetricAssignment(t *testing.T) {
	if Generate(GloVeLike(50, 5, 1)).Metric != pq.InnerProduct {
		t.Error("GloVe should be IP")
	}
	if Generate(SIFTLike(50, 5, 1)).Metric != pq.L2 {
		t.Error("SIFT should be L2")
	}
}

func TestLoadFvecsFile(t *testing.T) {
	m := vecmath.NewMatrix(4, 3)
	for i := range m.Data {
		m.Data[i] = float32(i)
	}
	dir := t.TempDir()
	path := dir + "/v.fvecs"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFvecs(f, m); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := LoadFvecsFile(path, 2)
	if err != nil || got.Rows != 2 {
		t.Fatalf("LoadFvecsFile: %v rows=%d", err, got.Rows)
	}
	if _, err := LoadFvecsFile(dir+"/missing", 0); err == nil {
		t.Error("missing file accepted")
	}
}
