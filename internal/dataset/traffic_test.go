package dataset

import (
	"math"
	"testing"
)

func TestQueryMixUniform(t *testing.T) {
	const n, draws = 64, 64 * 400
	m := NewQueryMix(n, 0, 1)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		idx := m.Next()
		if idx < 0 || idx >= n {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("uniform mix never drew index %d", i)
		}
	}
	// No index should dominate: expect ~400 each, allow generous slack.
	for i, c := range counts {
		if c > 4*draws/n {
			t.Errorf("uniform mix drew index %d %d times (expected ~%d)", i, c, draws/n)
		}
	}
}

func TestQueryMixZipfSkew(t *testing.T) {
	const n, draws = 1000, 20000
	m := NewQueryMix(n, 1.2, 1)
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		counts[m.Next()]++
	}
	// The hottest single index should carry far more than the uniform
	// share, and the support should be much smaller than the pool.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 10*draws/n {
		t.Errorf("zipf mix max count %d, want heavy skew (>%d)", max, 10*draws/n)
	}
	if len(counts) >= n {
		t.Errorf("zipf mix touched all %d indices in %d draws; expected concentration", n, draws)
	}
}

func TestQueryMixDeterministic(t *testing.T) {
	a, b := NewQueryMix(100, 1.3, 7), NewQueryMix(100, 1.3, 7)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, x, y)
		}
	}
}

func TestTenantMixWeights(t *testing.T) {
	m := NewTenantMix([]TenantShare{{Key: "web", Weight: 9}, {Key: "batch", Weight: 1}}, 3)
	counts := map[string]int{}
	const draws = 10000
	for i := 0; i < draws; i++ {
		counts[m.Next()]++
	}
	frac := float64(counts["web"]) / draws
	if math.Abs(frac-0.9) > 0.03 {
		t.Errorf("web share %.3f, want ~0.9", frac)
	}
	if counts["web"]+counts["batch"] != draws {
		t.Errorf("draws leaked outside the mix: %v", counts)
	}
}

func TestTenantMixEmpty(t *testing.T) {
	m := NewTenantMix(nil, 1)
	if got := m.Next(); got != "" {
		t.Errorf("empty mix drew %q, want anonymous", got)
	}
}

func TestParseTenantMix(t *testing.T) {
	shares, err := ParseTenantMix("web:9, batch ,bulk:2")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantShare{{"web", 9}, {"batch", 1}, {"bulk", 2}}
	if len(shares) != len(want) {
		t.Fatalf("got %v", shares)
	}
	for i := range want {
		if shares[i] != want[i] {
			t.Errorf("share %d: got %+v want %+v", i, shares[i], want[i])
		}
	}
	for _, bad := range []string{"web:0", "web:x", ":3"} {
		if _, err := ParseTenantMix(bad); err == nil {
			t.Errorf("ParseTenantMix(%q) accepted", bad)
		}
	}
}
