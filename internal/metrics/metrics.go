// Package metrics is the stdlib-only observability substrate of the
// serving path: atomic counters, gauges and log-scaled latency
// histograms collected into a Registry that renders the Prometheus text
// exposition format (version 0.0.4). Every instrument is safe for
// concurrent use from any number of goroutines; the recording fast paths
// are a handful of atomic operations with no locks and no allocation.
//
// Instruments are get-or-create: asking the registry twice for the same
// name+labels returns the same instrument, which lets dynamically
// labelled series (e.g. a per-status-code request counter) be fetched on
// the request path without pre-declaring every label value.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key="value" pair attached to an instrument.
type Label struct {
	Key, Value string
}

// metric is the interface every instrument implements for exposition.
type metric interface {
	meta() *desc
	writeSamples(w io.Writer)
}

// desc carries the identity shared by all instrument kinds.
type desc struct {
	name   string // family name, e.g. anna_stage_duration_seconds
	help   string
	kind   string // "counter" | "gauge" | "histogram"
	labels string // pre-rendered `key="value",...` (no braces), may be ""
}

// labelString renders labels in the given order; callers pass a stable
// order so the same series always maps to the same registry key.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the exposition-format label escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series renders `name{labels}` or bare `name`, optionally with extra
// label text appended (used for histogram le buckets).
func (d *desc) series(extra string) string {
	return seriesWith(d.name, d.labels, extra)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Registry holds instruments and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]metric
	order []metric // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]metric{}}
}

// lookup returns the instrument registered under name+labels, or
// registers the one built by mk. It panics if the existing instrument is
// of a different kind — mixing kinds under one family name is a
// programming error the exposition format cannot represent.
func (r *Registry) lookup(d desc, mk func() metric) metric {
	key := d.name + "{" + d.labels + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.meta().kind != d.kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s, was %s", key, d.kind, m.meta().kind))
		}
		return m
	}
	m := mk()
	r.byKey[key] = m
	r.order = append(r.order, m)
	return m
}

// WriteText renders every registered instrument in the Prometheus text
// exposition format, emitting HELP/TYPE once per family. Output order
// is deterministic regardless of registration order — families sort by
// name and series within a family by label string — so scrapes of
// equal state are byte-identical and diff-stable, and a family's
// series are always contiguous (which the exposition format requires
// even when dynamically labelled series were registered interleaved
// with other families).
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	ms := make([]metric, len(r.order))
	copy(ms, r.order)
	r.mu.Unlock()

	sort.SliceStable(ms, func(i, j int) bool {
		di, dj := ms[i].meta(), ms[j].meta()
		if di.name != dj.name {
			return di.name < dj.name
		}
		return di.labels < dj.labels
	})
	last := ""
	for i, m := range ms {
		d := m.meta()
		if i == 0 || d.name != last {
			last = d.name
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", d.name, d.help, d.name, d.kind)
		}
		m.writeSamples(w)
	}
}

// Handler serves the registry as a /metrics scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// Counter is a monotonically increasing integer.
type Counter struct {
	d desc
	v atomic.Uint64
}

// Counter returns (creating if needed) the counter name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	d := desc{name: name, help: help, kind: "counter", labels: labelString(labels)}
	return r.lookup(d, func() metric { return &Counter{d: d} }).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) meta() *desc { return &c.d }
func (c *Counter) writeSamples(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.d.series(""), c.v.Load())
}

// Gauge is an integer value that can go up and down.
type Gauge struct {
	d desc
	v atomic.Int64
}

// Gauge returns (creating if needed) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	d := desc{name: name, help: help, kind: "gauge", labels: labelString(labels)}
	return r.lookup(d, func() metric { return &Gauge{d: d} }).(*Gauge)
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) meta() *desc { return &g.d }
func (g *Gauge) writeSamples(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", g.d.series(""), g.v.Load())
}

// gaugeFunc samples a callback at scrape time — for values owned
// elsewhere (pool depths, index sizes) that need no double bookkeeping.
type gaugeFunc struct {
	d  desc
	fn func() float64
}

// GaugeFunc registers a gauge whose value is fn() at scrape time. The
// callback must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	d := desc{name: name, help: help, kind: "gauge", labels: labelString(labels)}
	r.lookup(d, func() metric { return &gaugeFunc{d: d, fn: fn} })
}

func (g *gaugeFunc) meta() *desc { return &g.d }
func (g *gaugeFunc) writeSamples(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.d.series(""), formatFloat(g.fn()))
}

// counterFunc samples a callback at scrape time, exposed with counter
// semantics — for monotonic values owned elsewhere (lifetime WAL
// appends, shadow-sampler totals) that need no double bookkeeping.
type counterFunc struct {
	d  desc
	fn func() uint64
}

// CounterFunc registers a counter whose value is fn() at scrape time.
// fn must be monotonically non-decreasing and safe to call from any
// goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	d := desc{name: name, help: help, kind: "counter", labels: labelString(labels)}
	r.lookup(d, func() metric { return &counterFunc{d: d, fn: fn} })
}

func (c *counterFunc) meta() *desc { return &c.d }
func (c *counterFunc) writeSamples(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.d.series(""), c.fn())
}

// atomicFloat64 is a float accumulated with CAS on its bit pattern.
type atomicFloat64 struct{ bits atomic.Uint64 }

func (f *atomicFloat64) Add(v float64) {
	for {
		old := f.bits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

func (f *atomicFloat64) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observations and
// exposition are lock-free; a concurrent scrape may see a count/sum a
// few observations apart, which Prometheus semantics tolerate.
type Histogram struct {
	d      desc
	upper  []float64 // ascending finite upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    atomicFloat64
	count  atomic.Uint64
}

// ExpBuckets returns n log-scaled bucket upper bounds starting at min
// and growing by factor: min, min*factor, ..., min*factor^(n-1).
func ExpBuckets(min, factor float64, n int) []float64 {
	if min <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: ExpBuckets(%v, %v, %d)", min, factor, n))
	}
	out := make([]float64, n)
	v := min
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets are the default duration buckets: powers of two from
// 1µs to ~33.5s (26 buckets), matching the µs-to-tens-of-seconds span a
// query can take from a single cluster probe to a cold billion-scale
// batch.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 2, 26) }

// Histogram returns (creating if needed) the histogram name{labels}
// with the given ascending bucket upper bounds (nil = LatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	d := desc{name: name, help: help, kind: "histogram", labels: labelString(labels)}
	return r.lookup(d, func() metric {
		if buckets == nil {
			buckets = LatencyBuckets()
		}
		if !sort.Float64sAreSorted(buckets) {
			panic("metrics: histogram buckets must be ascending")
		}
		up := make([]float64, len(buckets))
		copy(up, buckets)
		return &Histogram{d: d, upper: up, counts: make([]atomic.Uint64, len(up)+1)}
	}).(*Histogram)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v (le is inclusive)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// BucketCounts returns per-bucket (non-cumulative) counts; the last
// entry is the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// CountLE returns the cumulative number of observations in buckets
// whose upper bound is <= bound — the histogram's exact count of
// values known to be at or under bound, the way a Prometheus
// `le="bound"` bucket series reads. Callers building latency-SLO
// signals pass a bucket bound (see NearestBound); a bound between
// bucket edges undercounts by the partial bucket.
func (h *Histogram) CountLE(bound float64) uint64 {
	var cum uint64
	for i, up := range h.upper {
		if up > bound {
			break
		}
		cum += h.counts[i].Load()
	}
	return cum
}

// NearestBound returns the smallest bucket upper bound >= v (clamped to
// the largest finite bound), i.e. the tightest threshold CountLE can
// answer exactly for this histogram.
func (h *Histogram) NearestBound(v float64) float64 {
	i := sort.SearchFloat64s(h.upper, v)
	if i == len(h.upper) {
		i = len(h.upper) - 1
	}
	return h.upper[i]
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the bucket containing it, the same estimate
// Prometheus's histogram_quantile computes. Values in the +Inf bucket
// clamp to the largest finite bound. It returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.upper) { // +Inf bucket
				return h.upper[len(h.upper)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			return lo + (h.upper[i]-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return h.upper[len(h.upper)-1]
}

func (h *Histogram) meta() *desc { return &h.d }
func (h *Histogram) writeSamples(w io.Writer) {
	bucket := h.d.name + "_bucket"
	var cum uint64
	for i, up := range h.upper {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s %d\n", seriesWith(bucket, h.d.labels, `le="`+formatFloat(up)+`"`), cum)
	}
	cum += h.counts[len(h.upper)].Load()
	fmt.Fprintf(w, "%s %d\n", seriesWith(bucket, h.d.labels, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s %s\n", seriesWith(h.d.name+"_sum", h.d.labels, ""), formatFloat(h.sum.Load()))
	fmt.Fprintf(w, "%s %d\n", seriesWith(h.d.name+"_count", h.d.labels, ""), h.count.Load())
}

// seriesWith renders name{labels,extra}, omitting empty parts.
func seriesWith(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}
