package metrics

import (
	"math"
	rm "runtime/metrics"
	"sync"
)

// Runtime-health gauges sourced from the runtime/metrics package: the
// four signals that explain most "the process feels sick" reports —
// goroutine count (leak or stall fan-out), heap in use (live set
// growth), GC pause p99 (latency spikes stolen by the collector), and
// scheduler latency p99 (CPU starvation: runnable goroutines waiting
// for a thread).

const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// runtimeSampler reads the four series in one runtime/metrics.Read call
// per scrape, shared by the gauges so a /metrics render is one read,
// not four.
type runtimeSampler struct {
	mu      sync.Mutex
	samples []rm.Sample
}

func newRuntimeSampler() *runtimeSampler {
	s := &runtimeSampler{samples: make([]rm.Sample, 4)}
	for i, name := range []string{rmGoroutines, rmHeapBytes, rmGCPauses, rmSchedLat} {
		s.samples[i].Name = name
	}
	return s
}

// value reads all series and returns the sample at index i: a plain
// float for counters/gauges, the p99 for histogram-valued series.
func (s *runtimeSampler) value(i int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	rm.Read(s.samples)
	v := s.samples[i].Value
	switch v.Kind() {
	case rm.KindUint64:
		return float64(v.Uint64())
	case rm.KindFloat64:
		return v.Float64()
	case rm.KindFloat64Histogram:
		return histQuantile(v.Float64Histogram(), 0.99)
	default:
		return 0
	}
}

// histQuantile estimates the q-th quantile of a runtime/metrics
// cumulative histogram, returning the upper edge of the bucket holding
// the rank (0 when empty; +Inf edges clamp to the last finite edge).
// runtime histograms are cumulative over the process lifetime, so this
// is a lifetime p99, not a windowed one — stable, and exactly what a
// "has this process ever been starved" gauge should read.
func histQuantile(h *rm.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			// Bucket i spans Buckets[i] .. Buckets[i+1].
			edge := h.Buckets[i+1]
			if math.IsInf(edge, 1) {
				edge = h.Buckets[i]
			}
			return edge
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// RegisterRuntime exposes the Go runtime health gauges on r:
// anna_go_goroutines, anna_go_heap_inuse_bytes,
// anna_go_gc_pause_p99_seconds and anna_go_sched_latency_p99_seconds.
// Safe to call more than once on the same registry (get-or-create).
func RegisterRuntime(r *Registry) {
	s := newRuntimeSampler()
	r.GaugeFunc("anna_go_goroutines",
		"Live goroutines (runtime/metrics /sched/goroutines).",
		func() float64 { return s.value(0) })
	r.GaugeFunc("anna_go_heap_inuse_bytes",
		"Bytes occupied by live and dead heap objects (/memory/classes/heap/objects).",
		func() float64 { return s.value(1) })
	r.GaugeFunc("anna_go_gc_pause_p99_seconds",
		"p99 stop-the-world GC pause over the process lifetime (/gc/pauses).",
		func() float64 { return s.value(2) })
	r.GaugeFunc("anna_go_sched_latency_p99_seconds",
		"p99 time runnable goroutines waited for a thread, process lifetime (/sched/latencies).",
		func() float64 { return s.value(3) })
}
