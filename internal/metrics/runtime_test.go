package metrics

import (
	"runtime"
	"strings"
	"testing"
)

func TestRegisterRuntime(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	RegisterRuntime(reg) // idempotent: get-or-create, no panic

	// Force some GC history so the pause histogram has samples.
	runtime.GC()

	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	for _, name := range []string{
		"anna_go_goroutines",
		"anna_go_heap_inuse_bytes",
		"anna_go_gc_pause_p99_seconds",
		"anna_go_sched_latency_p99_seconds",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}

	s := newRuntimeSampler()
	if g := s.value(0); g < 1 {
		t.Errorf("goroutines gauge %v, want >= 1", g)
	}
	if h := s.value(1); h <= 0 {
		t.Errorf("heap gauge %v, want > 0", h)
	}
	if p := s.value(2); p < 0 {
		t.Errorf("gc pause p99 %v, want >= 0", p)
	}
}

func TestHistogramCountLE(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t", "", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5} {
		h.Observe(v)
	}
	if got := h.CountLE(0.01); got != 2 {
		t.Errorf("CountLE(0.01) = %d, want 2", got)
	}
	if got := h.CountLE(0.1); got != 3 {
		t.Errorf("CountLE(0.1) = %d, want 3", got)
	}
	// A mid-bucket bound only counts fully-contained buckets.
	if got := h.CountLE(0.05); got != 2 {
		t.Errorf("CountLE(0.05) = %d, want 2", got)
	}
	if got := h.NearestBound(0.05); got != 0.1 {
		t.Errorf("NearestBound(0.05) = %v, want 0.1", got)
	}
	if got := h.NearestBound(5); got != 0.1 {
		t.Errorf("NearestBound(5) = %v, want clamp to 0.1", got)
	}
}
