package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	if len(b) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(b), len(want))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Errorf("bucket %d: %g, want %g", i, b[i], want[i])
		}
	}
	if got := LatencyBuckets(); len(got) != 26 || got[0] != 1e-6 {
		t.Errorf("LatencyBuckets: %d buckets starting %g", len(got), got[0])
	}
}

// Observations land in the bucket whose upper bound is the first >= the
// value: le boundaries are inclusive, like Prometheus.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "test", []float64{1, 10, 100})
	h.Observe(0.5) // bucket 0 (le 1)
	h.Observe(1)   // bucket 0: boundary is inclusive
	h.Observe(1.5) // bucket 1 (le 10)
	h.Observe(10)  // bucket 1
	h.Observe(99)  // bucket 2 (le 100)
	h.Observe(101) // +Inf overflow
	got := h.BucketCounts()
	want := []uint64{2, 2, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d: count %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-213) > 1e-9 {
		t.Errorf("sum %g, want 213", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "test", ExpBuckets(1, 2, 10)) // 1..512
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	// 100 observations uniform in (0, 100].
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	// The estimate interpolates within buckets, so allow a bucket's
	// worth of slack — the same guarantee histogram_quantile gives.
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 50, 20},
		{0.95, 95, 35},
		{0.99, 99, 35},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%v: %g, want %g ± %g", tc.q, got, tc.want, tc.tol)
		}
	}
	// Monotone in q.
	if h.Quantile(0.5) > h.Quantile(0.95) || h.Quantile(0.95) > h.Quantile(0.99) {
		t.Error("quantiles not monotone")
	}
	// Values past the last finite bound clamp to it.
	h2 := r.Histogram("lat2", "test", []float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile %g, want clamp to 2", got)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", Label{"handler", "search"}, Label{"code", "200"})
	c.Add(3)
	g := r.Gauge("inflight", "in-flight requests")
	g.Set(2)
	r.GaugeFunc(`vectors`, "index size", func() float64 { return 42 })
	h := r.Histogram("dur_seconds", "latency", []float64{0.1, 1}, Label{"stage", "scan"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP reqs_total requests\n# TYPE reqs_total counter\n",
		`reqs_total{handler="search",code="200"} 3`,
		"# TYPE inflight gauge",
		"inflight 2",
		"vectors 42",
		"# TYPE dur_seconds histogram",
		`dur_seconds_bucket{stage="scan",le="0.1"} 1`,
		`dur_seconds_bucket{stage="scan",le="1"} 2`,
		`dur_seconds_bucket{stage="scan",le="+Inf"} 3`,
		`dur_seconds_sum{stage="scan"} 5.55`,
		`dur_seconds_count{stage="scan"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// Exposition order is deterministic and diff-stable: families sort by
// name, series within a family by label string, regardless of the
// order instruments were registered in. The golden string pins the
// exact byte output so any ordering regression shows as a diff.
func TestExpositionDeterministicGolden(t *testing.T) {
	build := func(scrambled bool) string {
		r := NewRegistry()
		reg := []func(){
			func() { r.Counter("zz_total", "last family").Add(7) },
			func() { r.Counter("aa_total", "first family", Label{"code", "500"}).Add(2) },
			func() { r.Counter("aa_total", "first family", Label{"code", "200"}).Add(1) },
			func() { r.Gauge("mm_depth", "middle family").Set(3) },
			func() {
				h := r.Histogram("mm_seconds", "histogram family", []float64{1, 2}, Label{"stage", "scan"})
				h.Observe(1.5)
			},
			func() {
				h := r.Histogram("mm_seconds", "histogram family", []float64{1, 2}, Label{"stage", "merge"})
				h.Observe(0.5)
			},
			func() { r.CounterFunc("ff_total", "callback counter", func() uint64 { return 9 }) },
		}
		if scrambled {
			for i := len(reg) - 1; i >= 0; i-- {
				reg[i]()
			}
		} else {
			for _, f := range reg {
				f()
			}
		}
		var b strings.Builder
		r.WriteText(&b)
		return b.String()
	}

	golden := `# HELP aa_total first family
# TYPE aa_total counter
aa_total{code="200"} 1
aa_total{code="500"} 2
# HELP ff_total callback counter
# TYPE ff_total counter
ff_total 9
# HELP mm_depth middle family
# TYPE mm_depth gauge
mm_depth 3
# HELP mm_seconds histogram family
# TYPE mm_seconds histogram
mm_seconds_bucket{stage="merge",le="1"} 1
mm_seconds_bucket{stage="merge",le="2"} 1
mm_seconds_bucket{stage="merge",le="+Inf"} 1
mm_seconds_sum{stage="merge"} 0.5
mm_seconds_count{stage="merge"} 1
mm_seconds_bucket{stage="scan",le="1"} 0
mm_seconds_bucket{stage="scan",le="2"} 1
mm_seconds_bucket{stage="scan",le="+Inf"} 1
mm_seconds_sum{stage="scan"} 1.5
mm_seconds_count{stage="scan"} 1
# HELP zz_total last family
# TYPE zz_total counter
zz_total 7
`
	if got := build(false); got != golden {
		t.Errorf("in-order registration exposition:\n%s\nwant:\n%s", got, golden)
	}
	if got := build(true); got != golden {
		t.Errorf("scrambled registration exposition:\n%s\nwant:\n%s", got, golden)
	}
}

func TestCounterFunc(t *testing.T) {
	r := NewRegistry()
	v := uint64(0)
	r.CounterFunc("cb_total", "callback", func() uint64 { return v })
	v = 41
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), "cb_total 41") {
		t.Errorf("exposition %q", b.String())
	}
	if !strings.Contains(b.String(), "# TYPE cb_total counter") {
		t.Errorf("counterFunc not typed as counter: %q", b.String())
	}
}

// Get-or-create returns the same instrument for the same name+labels and
// distinct ones otherwise.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h", Label{"k", "v"})
	b := r.Counter("c", "h", Label{"k", "v"})
	if a != b {
		t.Error("same series returned distinct counters")
	}
	other := r.Counter("c", "h", Label{"k", "w"})
	if a == other {
		t.Error("distinct labels shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("c", "h", Label{"k", "v"})
}

// Concurrent recording must be exact (run under -race in CI).
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	g := r.Gauge("depth", "depth")
	h := r.Histogram("lat", "lat", ExpBuckets(1e-6, 2, 20))
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%1000) * 1e-6)
				if i%64 == 0 {
					var b strings.Builder
					r.WriteText(&b) // concurrent scrape
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Errorf("counter %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != 0 {
		t.Errorf("gauge %d, want 0", g.Value())
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count %d, want %d", h.Count(), workers*perWorker)
	}
	var total uint64
	for _, n := range h.BucketCounts() {
		total += n
	}
	if total != h.Count() {
		t.Errorf("bucket total %d != count %d", total, h.Count())
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", "d", nil) // default latency buckets
	h.ObserveDuration(3 * time.Millisecond)
	if h.Count() != 1 || math.Abs(h.Sum()-0.003) > 1e-12 {
		t.Errorf("count %d sum %g", h.Count(), h.Sum())
	}
}
