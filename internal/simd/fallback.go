//go:build !amd64 || noasm

package simd

import "runtime"

const goArch = runtime.GOARCH

var (
	available         = false
	unavailableReason = fallbackReason()
	featureString     = ""
)

func fallbackReason() string {
	if runtime.GOARCH == "amd64" {
		return "noasm build tag"
	}
	return ""
}

// On fallback builds the exported kernels run their pure-Go references,
// so a caller that forgets to gate on Enabled() is still correct — just
// not faster.

func adcSums4(planes []byte, bias float32, packed []byte, codeBytes, groups int, sums []float32) {
	adcSums4Generic(planes, bias, packed, codeBytes, groups, sums)
}

func adcSums8(vals []float32, bias float32, packed []byte, codeBytes, m8 int, sums []float32) {
	adcSums8Generic(vals, bias, packed, codeBytes, m8, sums)
}

func dotKernel(a, b []float32) float32 { return dotGeneric(a, b) }

func l2sqKernel(a, b []float32) float32 { return l2sqGeneric(a, b) }

func argminLanes(data, norms, q []float32, d, n8 int, outV *[8]float32, outI *[8]int32) {
	argminLanesGeneric(data, norms, q, d, n8, outV, outI)
}
