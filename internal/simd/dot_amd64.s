//go:build amd64 && !noasm

#include "textflag.h"

// FMA reduction kernels. Both use the same shape: two 8-lane YMM
// accumulators over 16-element strides, an optional single 8-element
// stride into acc0, the fixed lane-reduction tree
// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)), then a serial scalar-FMA tail.
// This order is mirrored (minus the fusing) by dotGeneric/l2sqGeneric.

// func dotAsm(a, b *float32, n int) float32
TEXT ·dotAsm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0 // acc0
	VXORPS Y1, Y1, Y1 // acc1
	MOVQ CX, DX
	SHRQ $4, DX       // DX = n/16 full strides
	JZ   dtail8

dloop16:
	VMOVUPS (SI), Y2
	VMOVUPS 32(SI), Y3
	VFMADD231PS (DI), Y2, Y0
	VFMADD231PS 32(DI), Y3, Y1
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ DX
	JNZ  dloop16

dtail8:
	TESTQ $8, CX
	JZ    dreduce
	VMOVUPS (SI), Y2
	VFMADD231PS (DI), Y2, Y0
	ADDQ $32, SI
	ADDQ $32, DI

dreduce:
	VADDPS       Y1, Y0, Y0         // acc = acc0 + acc1
	VEXTRACTF128 $1, Y0, X2
	VADDPS       X2, X0, X0         // x[l] = acc[l] + acc[l+4]
	VSHUFPS      $0x0E, X0, X0, X2  // X2 = [x2, x3, _, _]
	VADDPS       X2, X0, X0         // [x0+x2, x1+x3, _, _]
	VMOVSHDUP    X0, X2             // X2 lane0 = x1+x3
	VADDSS       X2, X0, X0         // (x0+x2) + (x1+x3)
	ANDQ         $7, CX
	JZ           ddone

dtailloop:
	VMOVSS (SI), X2
	VFMADD231SS (DI), X2, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  dtailloop

ddone:
	VMOVSS  X0, ret+24(FP)
	VZEROUPPER
	RET

// func l2sqAsm(a, b *float32, n int) float32
TEXT ·l2sqAsm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0 // acc0
	VXORPS Y1, Y1, Y1 // acc1
	MOVQ CX, DX
	SHRQ $4, DX
	JZ   ltail8

lloop16:
	VMOVUPS (SI), Y2
	VMOVUPS 32(SI), Y3
	VSUBPS  (DI), Y2, Y2 // d = a - b
	VSUBPS  32(DI), Y3, Y3
	VFMADD231PS Y2, Y2, Y0
	VFMADD231PS Y3, Y3, Y1
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ DX
	JNZ  lloop16

ltail8:
	TESTQ $8, CX
	JZ    lreduce
	VMOVUPS (SI), Y2
	VSUBPS  (DI), Y2, Y2
	VFMADD231PS Y2, Y2, Y0
	ADDQ $32, SI
	ADDQ $32, DI

lreduce:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X2
	VADDPS       X2, X0, X0
	VSHUFPS      $0x0E, X0, X0, X2
	VADDPS       X2, X0, X0
	VMOVSHDUP    X0, X2
	VADDSS       X2, X0, X0
	ANDQ         $7, CX
	JZ           ldone

ltailloop:
	VMOVSS (SI), X2
	VSUBSS (DI), X2, X2
	VFMADD231SS X2, X2, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  ltailloop

ldone:
	VMOVSS  X0, ret+24(FP)
	VZEROUPPER
	RET
