//go:build amd64 && !noasm

#include "textflag.h"

// ADC list-scan kernels. Both vectorize ACROSS vectors — each SIMD lane
// owns one packed row and accumulates its float32 LUT entries in
// ascending sub-space order — so the sums are bit-identical to the
// scalar kernel in pq (same additions, same order, no FMA).
//
// adcSums4Asm: 16 rows at a time. Per 4-byte code column group it loads
// one dword per row, transposes the 16x4 byte block in-register
// (PSHUFB + PUNPCK[LH]DQ + PUNPCK[LH]QDQ) into four 16-byte columns, and
// for each column's two nibble sub-spaces looks the float32 LUT entries
// up with four PSHUFBs over the byte-plane tables built by
// BuildNibblePlanes (the paper's in-register shuffle LUT for k*=16),
// reassembling floats with unpack interleaves. No gathers anywhere.
//
// adcSums8Asm: 8 rows at a time for the k*=256 layout (LUT stride fixed
// at 256 entries). A 256-float table cannot live in registers, so each
// sub-space does eight independent scalar loads built into two XMM
// accumulator updates (gather-free: VPGATHER is slow or penalized on
// several production microarchitectures).

// 16x4 byte transpose shuffle: groups byte columns within one row dword.
DATA shufTranspose<>+0(SB)/8, $0x0d0905010c080400
DATA shufTranspose<>+8(SB)/8, $0x0f0b07030e0a0602
GLOBL shufTranspose<>(SB), RODATA|NOPTR, $16

DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $16

// LOADROWS loads one code dword from each of four consecutive rows
// (stride DX) into the four lanes of XD, advancing the walker BX.
#define LOADROWS(XD) \
	VMOVD   (BX), XD          \
	ADDQ    DX, BX            \
	VPINSRD $1, (BX), XD, XD  \
	ADDQ    DX, BX            \
	VPINSRD $2, (BX), XD, XD  \
	ADDQ    DX, BX            \
	VPINSRD $3, (BX), XD, XD  \
	ADDQ    DX, BX

// SUBSPACE16 adds one sub-space's LUT values (16 rows) to the four
// accumulators. KIDX holds the 16 nibble indices; the plane table is at
// POFF(R12). Four PSHUFB byte-plane lookups, then byte->word->dword
// interleaves rebuild the float32s in row order.
#define SUBSPACE16(KIDX, POFF) \
	VMOVDQU    POFF(R12), X6       \
	VMOVDQU    POFF+16(R12), X7    \
	VMOVDQU    POFF+32(R12), X10   \
	VMOVDQU    POFF+48(R12), X11   \
	VPSHUFB    KIDX, X6, X6        \
	VPSHUFB    KIDX, X7, X7        \
	VPSHUFB    KIDX, X10, X10      \
	VPSHUFB    KIDX, X11, X11      \
	VPUNPCKLBW X7, X6, X4          \
	VPUNPCKHBW X7, X6, X6          \
	VPUNPCKLBW X11, X10, X7        \
	VPUNPCKHBW X11, X10, X10       \
	VPUNPCKLWD X7, X4, X11         \
	VADDPS     X11, X12, X12       \
	VPUNPCKHWD X7, X4, X4          \
	VADDPS     X4, X13, X13        \
	VPUNPCKLWD X10, X6, X7         \
	VADDPS     X7, X14, X14        \
	VPUNPCKHWD X10, X6, X6         \
	VADDPS     X6, X15, X15

// COLUMN processes one 16-byte code column K: low-nibble sub-space from
// the plane table at the cursor, high-nibble sub-space from the next,
// then advances the plane cursor by two tables.
#define COLUMN(K) \
	VPAND  X8, K, X4       \
	VPSRLW $4, K, X5       \
	VPAND  X8, X5, X5      \
	SUBSPACE16(X4, 0)      \
	SUBSPACE16(X5, 64)     \
	ADDQ   $128, R12

// func adcSums4Asm(planes *byte, packed *byte, codeBytes, groups int, sums *float32, n16 int, bias float32)
TEXT ·adcSums4Asm(SB), NOSPLIT, $0-52
	MOVQ planes+0(FP), R13
	MOVQ packed+8(FP), SI
	MOVQ codeBytes+16(FP), DX
	MOVQ sums+32(FP), R9
	MOVQ n16+40(FP), R10
	SHRQ $4, R10             // 16-row blocks
	JZ   s4done
	VMOVDQU shufTranspose<>(SB), X9
	VMOVDQU nibbleMask<>(SB), X8

s4rowblock:
	VBROADCASTSS bias+48(FP), X12
	VMOVAPS X12, X13
	VMOVAPS X12, X14
	VMOVAPS X12, X15
	MOVQ    SI, R11          // current column-group base
	MOVQ    R13, R12         // plane-table cursor
	MOVQ    groups+24(FP), CX

s4group:
	// Gather-free strided load: one dword (4 code bytes) per row.
	MOVQ R11, BX
	LOADROWS(X0)
	LOADROWS(X1)
	LOADROWS(X2)
	LOADROWS(X3)

	// Transpose 16 rows x 4 bytes into 4 columns x 16 rows.
	VPSHUFB X9, X0, X0
	VPSHUFB X9, X1, X1
	VPSHUFB X9, X2, X2
	VPSHUFB X9, X3, X3
	VPUNPCKLDQ  X1, X0, X4
	VPUNPCKHDQ  X1, X0, X5
	VPUNPCKLDQ  X3, X2, X6
	VPUNPCKHDQ  X3, X2, X7
	VPUNPCKLQDQ X6, X4, X0
	VPUNPCKHQDQ X6, X4, X1
	VPUNPCKLQDQ X7, X5, X2
	VPUNPCKHQDQ X7, X5, X3

	COLUMN(X0)
	COLUMN(X1)
	COLUMN(X2)
	COLUMN(X3)

	ADDQ $4, R11
	DECQ CX
	JNZ  s4group

	VMOVUPS X12, (R9)
	VMOVUPS X13, 16(R9)
	VMOVUPS X14, 32(R9)
	VMOVUPS X15, 48(R9)
	ADDQ    $64, R9
	MOVQ    DX, AX
	SHLQ    $4, AX
	ADDQ    AX, SI           // next 16 rows
	DECQ    R10
	JNZ     s4rowblock

s4done:
	RET

// LOADVAL4 builds an XMM of four LUT values for one sub-space from four
// consecutive rows' code bytes (walker R8, stride DX, table base DI).
#define LOADVAL4(XD) \
	MOVBLZX   (R8), AX                   \
	VMOVSS    (DI)(AX*4), XD             \
	ADDQ      DX, R8                     \
	MOVBLZX   (R8), AX                   \
	VINSERTPS $0x10, (DI)(AX*4), XD, XD  \
	ADDQ      DX, R8                     \
	MOVBLZX   (R8), AX                   \
	VINSERTPS $0x20, (DI)(AX*4), XD, XD  \
	ADDQ      DX, R8                     \
	MOVBLZX   (R8), AX                   \
	VINSERTPS $0x30, (DI)(AX*4), XD, XD  \
	ADDQ      DX, R8

// func adcSums8Asm(vals *float32, packed *byte, codeBytes, m8 int, sums *float32, n8 int, bias float32)
TEXT ·adcSums8Asm(SB), NOSPLIT, $0-52
	MOVQ vals+0(FP), R11
	MOVQ packed+8(FP), SI
	MOVQ codeBytes+16(FP), DX
	MOVQ sums+32(FP), R12
	MOVQ n8+40(FP), R10
	SHRQ $3, R10             // 8-row blocks
	JZ   s8done

s8rowblock:
	VBROADCASTSS bias+48(FP), X14
	VMOVAPS X14, X15
	MOVQ    R11, DI          // LUT cursor, advances 256 floats per sub-space
	MOVQ    SI, R9           // code-column cursor
	MOVQ    m8+24(FP), CX

s8subspace:
	MOVQ R9, R8
	LOADVAL4(X0)
	LOADVAL4(X1)
	VADDPS X0, X14, X14
	VADDPS X1, X15, X15
	ADDQ   $1024, DI
	INCQ   R9
	DECQ   CX
	JNZ    s8subspace

	VMOVUPS X14, (R12)
	VMOVUPS X15, 16(R12)
	ADDQ    $32, R12
	MOVQ    DX, AX
	SHLQ    $3, AX
	ADDQ    AX, SI           // next 8 rows
	DECQ    R10
	JNZ     s8rowblock

s8done:
	RET
