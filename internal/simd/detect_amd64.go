//go:build amd64 && !noasm

package simd

import "strings"

// cpuidAsm executes CPUID with the given EAX/ECX inputs.
func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbvAsm reads XCR0 (requires OSXSAVE, checked by the caller).
func xgetbvAsm() (eax, edx uint32)

const goArch = "amd64"

var (
	available         bool
	unavailableReason string
	featureString     string
)

func init() {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		unavailableReason = "cpu lacks avx2+fma"
		return
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const (
		bitSSE3    = 1 << 0
		bitSSSE3   = 1 << 9
		bitFMA     = 1 << 12
		bitSSE41   = 1 << 19
		bitOSXSAVE = 1 << 27
		bitAVX     = 1 << 28
	)
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const (
		bitAVX2    = 1 << 5
		bitAVX512F = 1 << 16
	)

	var feats []string
	if ecx1&bitSSSE3 != 0 {
		feats = append(feats, "ssse3")
	}
	if ecx1&bitSSE41 != 0 {
		feats = append(feats, "sse4.1")
	}
	if ecx1&bitAVX != 0 {
		feats = append(feats, "avx")
	}
	if ebx7&bitAVX2 != 0 {
		feats = append(feats, "avx2")
	}
	if ecx1&bitFMA != 0 {
		feats = append(feats, "fma")
	}
	if ebx7&bitAVX512F != 0 {
		feats = append(feats, "avx512f") // detected and reported, not used
	}
	featureString = strings.Join(feats, " ")

	need := uint32(bitSSE3 | bitSSSE3 | bitFMA | bitSSE41 | bitOSXSAVE | bitAVX)
	if ecx1&need != need || ebx7&bitAVX2 == 0 {
		unavailableReason = "cpu lacks avx2+fma"
		return
	}
	// The OS must have enabled XMM+YMM state saving (XCR0 bits 1 and 2),
	// otherwise executing VEX.256 instructions faults.
	xcr0, _ := xgetbvAsm()
	if xcr0&0x6 != 0x6 {
		unavailableReason = "os has not enabled ymm state"
		return
	}
	available = true
}
