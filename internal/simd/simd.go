// Package simd holds the hand-written assembly kernels behind ANNA's two
// hot loops — the ADC list scan on the serving path and the dot/argmin
// primitives on the build path — together with the runtime CPU-feature
// dispatch that decides, once at init, whether they may run at all.
//
// Design rules (see docs/ARCHITECTURE.md §"SIMD kernels"):
//
//   - Every kernel has a pure-Go reference in this package (generic.go)
//     and the packages that call the kernels (pq, vecmath) keep their own
//     scalar implementations as the canonical semantics. The assembly is
//     an implementation detail that must never change results beyond the
//     documented tolerance class of the kernel.
//
//   - Bit-exact kernels (the ADC scan sums and the small-dimension argmin
//     kernels) vectorize ACROSS vectors: each SIMD lane owns one vector
//     and performs its float32 additions in exactly the scalar order, so
//     the result is bit-identical to the reference for every input. No
//     FMA, no reassociation.
//
//   - Tolerance kernels (Dot, L2Sq) use FMA and an 8-lane split
//     accumulator, which reassociates the reduction. They are NOT
//     bit-identical to the scalar loop; the differential tests pin both
//     implementations to a documented error bound against a float64
//     reference (see DotErrorBound) and callers opt in knowing that.
//
//   - Dispatch is all-or-nothing and decided once: amd64 with AVX2+FMA
//     (and OS-enabled YMM state) runs the assembly, everything else runs
//     the scalar paths. The `noasm` build tag removes the assembly at
//     compile time; the ANNA_NOSIMD environment variable (any non-empty
//     value) forces the scalar path at run time on a binary that has it.
package simd

import "os"

// enabled is the single dispatch switch, set once by init and flipped
// only by SetEnabled (a test hook). Callers read it through Enabled()
// before every kernel call; it is a plain bool because after init it is
// only written by serial test code, never concurrently with searches.
var enabled bool

// reason explains a scalar dispatch ("" when the assembly is active).
var reason string

func init() {
	if !available {
		enabled = false
		if unavailableReason != "" {
			reason = unavailableReason
		} else {
			reason = "no assembly for " + goArch
		}
		return
	}
	if os.Getenv("ANNA_NOSIMD") != "" {
		enabled = false
		reason = "ANNA_NOSIMD set"
		return
	}
	enabled = true
}

// Available reports whether this binary contains assembly kernels the
// current CPU can execute (independent of the ANNA_NOSIMD override).
func Available() bool { return available }

// Enabled reports whether kernel calls will take the assembly path.
// Packages gate every kernel call on this.
func Enabled() bool { return enabled }

// SetEnabled flips the dispatch and returns the previous value. Enabling
// on a machine without kernel support is a no-op (stays false). It exists
// for differential tests and benchmarks that must run both paths in one
// process; it is not safe to call concurrently with running searches.
func SetEnabled(v bool) bool {
	prev := enabled
	if v && !available {
		return prev
	}
	enabled = v
	return prev
}

// Features returns the detected CPU feature flags relevant to the
// kernels (e.g. "avx2 fma avx512f"), or "" when detection found none.
func Features() string { return featureString }

// Dispatch names the active kernel set: "avx2" or "scalar".
func Dispatch() string {
	if enabled {
		return "avx2"
	}
	return "scalar"
}

// Reason explains a scalar Dispatch(): "ANNA_NOSIMD set", "noasm build
// tag", "cpu lacks avx2+fma", or "no assembly for <arch>". Empty when
// the assembly path is active.
func Reason() string {
	if enabled {
		return ""
	}
	return reason
}
