//go:build amd64 && !noasm

package simd

// Assembly entry points. Every stub takes raw pointers (validated by the
// exported wrappers in generic.go) and is NOSPLIT-safe: no calls back
// into Go, no write barriers, bounded stack.

//go:noescape
func dotAsm(a, b *float32, n int) float32

//go:noescape
func l2sqAsm(a, b *float32, n int) float32

//go:noescape
func adcSums4Asm(planes *byte, packed *byte, codeBytes, groups int, sums *float32, n16 int, bias float32)

//go:noescape
func adcSums8Asm(vals *float32, packed *byte, codeBytes, m8 int, sums *float32, n8 int, bias float32)

//go:noescape
func argminD2Asm(data, norms *float32, n8 int, q *float32, outV *[8]float32, outI *[8]int32)

//go:noescape
func argminD4Asm(data, norms *float32, n8 int, q *float32, outV *[8]float32, outI *[8]int32)

//go:noescape
func argminD8Asm(data, norms *float32, n8 int, q *float32, outV *[8]float32, outI *[8]int32)

// The kernel dispatchers guard on `available` (not Enabled) so that the
// exported wrappers are safe to call on any CPU; Enabled() is the
// caller-facing policy switch, `available` is the hard capability check.

func dotKernel(a, b []float32) float32 {
	if available {
		return dotAsm(&a[0], &b[0], len(a))
	}
	return dotGeneric(a, b)
}

func l2sqKernel(a, b []float32) float32 {
	if available {
		return l2sqAsm(&a[0], &b[0], len(a))
	}
	return l2sqGeneric(a, b)
}

func adcSums4(planes []byte, bias float32, packed []byte, codeBytes, groups int, sums []float32) {
	if available {
		adcSums4Asm(&planes[0], &packed[0], codeBytes, groups, &sums[0], len(sums), bias)
		return
	}
	adcSums4Generic(planes, bias, packed, codeBytes, groups, sums)
}

func adcSums8(vals []float32, bias float32, packed []byte, codeBytes, m8 int, sums []float32) {
	if available {
		adcSums8Asm(&vals[0], &packed[0], codeBytes, m8, &sums[0], len(sums), bias)
		return
	}
	adcSums8Generic(vals, bias, packed, codeBytes, m8, sums)
}

func argminLanes(data, norms, q []float32, d, n8 int, outV *[8]float32, outI *[8]int32) {
	if !available {
		argminLanesGeneric(data, norms, q, d, n8, outV, outI)
		return
	}
	switch d {
	case 2:
		argminD2Asm(&data[0], &norms[0], n8, &q[0], outV, outI)
	case 4:
		argminD4Asm(&data[0], &norms[0], n8, &q[0], outV, outI)
	case 8:
		argminD8Asm(&data[0], &norms[0], n8, &q[0], outV, outI)
	default:
		panic("simd: argmin dimension must be 2, 4 or 8")
	}
}
