package simd

import "math"

// Pure-Go references for every kernel. They define the exact semantics
// the assembly must reproduce (bit-exact for the ADC-sum and argmin
// kernels, within the documented error bound for the FMA reductions) and
// they ARE the implementation on fallback builds. The differential test
// matrix and the fuzzers run assembly and reference on identical inputs.

// planeBytes is the byte-plane table size of one 16-entry sub-space LUT:
// 4 planes of 16 bytes, plane p holding byte p of each float32 entry.
const planeBytes = 64

// BuildNibblePlanes fills planes (nSub*64 bytes) with the byte-plane
// transpose of the first nSub sub-space tables of vals (stride ks
// entries, ks <= 16). Entries k >= ks are left zero; 4-bit codes can
// never select them when ks is the quantizer's codeword count. The
// transposed layout is what lets the scan kernel look a float32 up with
// four in-register PSHUFBs instead of a memory gather.
func BuildNibblePlanes(planes []byte, vals []float32, ks, nSub int) {
	if ks <= 0 || ks > 16 {
		panic("simd: BuildNibblePlanes ks out of range")
	}
	if len(planes) < nSub*planeBytes || len(vals) < nSub*ks {
		panic("simd: BuildNibblePlanes buffer too small")
	}
	for s := 0; s < nSub; s++ {
		base := s * planeBytes
		row := vals[s*ks : s*ks+ks]
		for k, v := range row {
			bits := math.Float32bits(v)
			planes[base+k] = byte(bits)
			planes[base+16+k] = byte(bits >> 8)
			planes[base+32+k] = byte(bits >> 16)
			planes[base+48+k] = byte(bits >> 24)
		}
	}
}

// ADCSums4 computes, for each of the len(sums) packed rows, the partial
// ADC sum over the first 8*groups sub-spaces of the 4-bit code layout:
//
//	sums[r] = bias + Σ_{s=0}^{8g-1} value(s, nibble(r, s))
//
// with the additions performed in ascending sub-space order per row —
// bit-identical to the scalar kernel in pq. nibble(r, s) is the low
// (even s) or high (odd s) nibble of packed[r*codeBytes + s/2]; values
// come from the plane table built by BuildNibblePlanes. len(sums) must
// be a multiple of 16 and groups counts 4-byte code columns (8
// sub-spaces each).
func ADCSums4(planes []byte, bias float32, packed []byte, codeBytes, groups int, sums []float32) {
	n := len(sums)
	if n == 0 {
		return
	}
	if n%16 != 0 {
		panic("simd: ADCSums4 row count not a multiple of 16")
	}
	if groups <= 0 || 4*groups > codeBytes {
		panic("simd: ADCSums4 groups out of range")
	}
	if len(packed) < (n-1)*codeBytes+4*groups {
		panic("simd: ADCSums4 packed too short")
	}
	if len(planes) < 8*groups*planeBytes {
		panic("simd: ADCSums4 planes too short")
	}
	adcSums4(planes, bias, packed, codeBytes, groups, sums)
}

func adcSums4Generic(planes []byte, bias float32, packed []byte, codeBytes, groups int, sums []float32) {
	nSub := 8 * groups
	for r := range sums {
		row := packed[r*codeBytes:]
		s := bias
		for ss := 0; ss < nSub; ss++ {
			b := row[ss/2]
			var idx int
			if ss&1 == 0 {
				idx = int(b & 0x0F)
			} else {
				idx = int(b >> 4)
			}
			base := ss * planeBytes
			bits := uint32(planes[base+idx]) |
				uint32(planes[base+16+idx])<<8 |
				uint32(planes[base+32+idx])<<16 |
				uint32(planes[base+48+idx])<<24
			s += math.Float32frombits(bits)
		}
		sums[r] = s
	}
}

// ADCSums8 is ADCSums4 for the 8-bit code layout with ks=256 (one full
// byte per sub-space identifier, LUT stride 256 entries):
//
//	sums[r] = bias + Σ_{j=0}^{m8-1} vals[j*256 + packed[r*codeBytes+j]]
//
// additions in ascending sub-space order per row, bit-identical to the
// scalar kernel. len(sums) must be a multiple of 8 and m8 a multiple of
// 8. The fixed 256-entry stride is what makes any code byte a valid
// index, so the kernel needs no per-element bounds logic.
func ADCSums8(vals []float32, bias float32, packed []byte, codeBytes, m8 int, sums []float32) {
	n := len(sums)
	if n == 0 {
		return
	}
	if n%8 != 0 {
		panic("simd: ADCSums8 row count not a multiple of 8")
	}
	if m8 <= 0 || m8%8 != 0 || m8 > codeBytes {
		panic("simd: ADCSums8 m8 out of range")
	}
	if len(packed) < (n-1)*codeBytes+m8 {
		panic("simd: ADCSums8 packed too short")
	}
	if len(vals) < m8*256 {
		panic("simd: ADCSums8 vals too short")
	}
	adcSums8(vals, bias, packed, codeBytes, m8, sums)
}

func adcSums8Generic(vals []float32, bias float32, packed []byte, codeBytes, m8 int, sums []float32) {
	for r := range sums {
		row := packed[r*codeBytes:]
		s := bias
		off := 0
		for j := 0; j < m8; j++ {
			s += vals[off+int(row[j])]
			off += 256
		}
		sums[r] = s
	}
}

// Dot returns the inner product of a and b using the FMA kernel when the
// assembly is compiled in (regardless of Enabled — callers gate). The
// reduction splits the input into two 8-lane accumulators over 16-element
// strides, adds them lane-wise, reduces the 8 lanes pairwise
// ((l0+l4)+(l2+l6) style tree) and folds the tail elements in serially.
// Because of the reassociation and the fused multiply-adds the result is
// NOT bit-identical to a sequential scalar loop; both stay within the
// error bound pinned by TestDotErrorBound (on the order of
// len(a)*2^-24*Σ|a_i*b_i| relative to an exact float64 reduction).
// It panics if the lengths differ.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("simd: Dot length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	return dotKernel(a, b)
}

// dotGeneric mirrors the assembly's lane structure (two 8-lane
// accumulators, pairwise lane reduction, serial tail) without FMA; it is
// the fallback-build implementation and the shape the differential tests
// compare the assembly against.
func dotGeneric(a, b []float32) float32 {
	var acc0, acc1 [8]float32
	i := 0
	for ; i+16 <= len(a); i += 16 {
		for l := 0; l < 8; l++ {
			acc0[l] += a[i+l] * b[i+l]
			acc1[l] += a[i+8+l] * b[i+8+l]
		}
	}
	if i+8 <= len(a) {
		for l := 0; l < 8; l++ {
			acc0[l] += a[i+l] * b[i+l]
		}
		i += 8
	}
	s := laneReduce(&acc0, &acc1)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// laneReduce folds acc0+acc1 with the exact tree the assembly uses:
// lane-wise add, fold high half onto low, then (x0+x2)+(x1+x3).
func laneReduce(acc0, acc1 *[8]float32) float32 {
	var acc [8]float32
	for l := 0; l < 8; l++ {
		acc[l] = acc0[l] + acc1[l]
	}
	var x [4]float32
	for l := 0; l < 4; l++ {
		x[l] = acc[l] + acc[l+4]
	}
	return (x[0] + x[2]) + (x[1] + x[3])
}

// L2Sq returns the squared L2 distance of a and b with the same
// accumulator structure (d = a-b, acc += d*d fused) and tolerance class
// as Dot. It panics if the lengths differ.
func L2Sq(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("simd: L2Sq length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	return l2sqKernel(a, b)
}

func l2sqGeneric(a, b []float32) float32 {
	var acc0, acc1 [8]float32
	i := 0
	for ; i+16 <= len(a); i += 16 {
		for l := 0; l < 8; l++ {
			d0 := a[i+l] - b[i+l]
			acc0[l] += d0 * d0
			d1 := a[i+8+l] - b[i+8+l]
			acc1[l] += d1 * d1
		}
	}
	if i+8 <= len(a) {
		for l := 0; l < 8; l++ {
			d := a[i+l] - b[i+l]
			acc0[l] += d * d
		}
		i += 8
	}
	s := laneReduce(&acc0, &acc1)
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// lanePerm maps SIMD lane l to the row offset it owns within each
// 8-row block of the argmin kernels. The horizontal-add trees of the
// different dimensions emit rows in different lane orders; the table is
// part of the kernel contract and shared by assembly, reference and
// tests.
func lanePerm(d int) *[8]int32 {
	switch d {
	case 2:
		return &permD2
	case 4:
		return &permD4
	case 8:
		return &permD8
	}
	panic("simd: argmin dimension must be 2, 4 or 8")
}

var (
	permD2 = [8]int32{0, 1, 4, 5, 2, 3, 6, 7}
	permD4 = [8]int32{0, 2, 4, 6, 1, 3, 5, 7}
	permD8 = [8]int32{0, 1, 2, 3, 4, 5, 6, 7}
)

// pairTreeDot is the fixed-association pairwise dot product of the
// small-dimension argmin kernels — identical to the unrolled scalar
// kernels in vecmath (no FMA, so the SIMD lanes reproduce it exactly).
func pairTreeDot(row, q []float32, d int) float32 {
	switch d {
	case 2:
		return q[0]*row[0] + q[1]*row[1]
	case 4:
		return (q[0]*row[0] + q[1]*row[1]) + (q[2]*row[2] + q[3]*row[3])
	case 8:
		return ((q[0]*row[0] + q[1]*row[1]) + (q[2]*row[2] + q[3]*row[3])) +
			((q[4]*row[4] + q[5]*row[5]) + (q[6]*row[6] + q[7]*row[7]))
	}
	panic("simd: argmin dimension must be 2, 4 or 8")
}

func argminLanesGeneric(data, norms, q []float32, d, n8 int, outV *[8]float32, outI *[8]int32) {
	perm := lanePerm(d)
	for base := 0; base < n8; base += 8 {
		for l := 0; l < 8; l++ {
			j := base + int(perm[l])
			s := pairTreeDot(data[j*d:(j+1)*d], q, d)
			v := norms[j] - 2*s
			if v < outV[l] {
				outV[l] = v
				outI[l] = int32(j)
			}
		}
	}
}

// ArgMinNM2 returns the index j minimizing norms[j] - 2*dot(q, row_j)
// over the len(norms) rows of dim-d row-major data, and that minimal
// value — bit-identical (value AND index, ties to the lowest index) to
// the unrolled scalar kernels in vecmath for d in {2, 4, 8}. Eight SIMD
// lanes each own every eighth row and perform the exact scalar pairwise
// arithmetic, so no tolerance is needed; the lane results merge by
// (value, index) order. len(norms) must be at least 8.
func ArgMinNM2(data, norms, q []float32, d int) (int, float32) {
	n := len(norms)
	if n < 8 {
		panic("simd: ArgMinNM2 needs at least 8 rows")
	}
	if len(q) != d || len(data) < n*d {
		panic("simd: ArgMinNM2 dimension mismatch")
	}
	n8 := n &^ 7
	inf := float32(math.Inf(1))
	outV := [8]float32{inf, inf, inf, inf, inf, inf, inf, inf}
	var outI [8]int32
	argminLanes(data, norms, q, d, n8, &outV, &outI)
	// Merge: smallest value wins; on exactly-equal values the smallest
	// row index wins, which reproduces the scalar first-strict-min scan.
	best, bv := int(outI[0]), outV[0]
	for l := 1; l < 8; l++ {
		if outV[l] < bv || (outV[l] == bv && outI[l] < int32(best)) {
			best, bv = int(outI[l]), outV[l]
		}
	}
	for j := n8; j < n; j++ {
		s := pairTreeDot(data[j*d:(j+1)*d], q, d)
		if v := norms[j] - 2*s; v < bv {
			best, bv = j, v
		}
	}
	return best, bv
}
