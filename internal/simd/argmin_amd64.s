//go:build amd64 && !noasm

#include "textflag.h"

// Small-dimension argmin kernels for the PQ batch encoder's inner loop:
// minimize norms[j] - 2*dot(q, row_j) over row-major data with d in
// {2, 4, 8}. Eight lanes each own every eighth row. The VHADDPS trees
// reproduce the exact pairwise association of the unrolled scalar
// kernels in vecmath (no FMA anywhere), 2*s is computed as s+s, and the
// candidate update uses a strict VCMPPS LT_OQ — so each lane's (value,
// first index achieving it) pair is bit-identical to a scalar scan of
// that lane's rows. The Go wrapper merges the 8 lane results by
// (value, index) order, which equals the scalar first-strict-min.
//
// The horizontal adds emit row sums in a shuffled lane order; each
// kernel's order is published as lanePerm(d) in generic.go. norms are
// VPERMPS-permuted into the same order, and the per-lane row-index
// vectors start at the permutation and step by 8.

DATA permD2<>+0(SB)/4, $0
DATA permD2<>+4(SB)/4, $1
DATA permD2<>+8(SB)/4, $4
DATA permD2<>+12(SB)/4, $5
DATA permD2<>+16(SB)/4, $2
DATA permD2<>+20(SB)/4, $3
DATA permD2<>+24(SB)/4, $6
DATA permD2<>+28(SB)/4, $7
GLOBL permD2<>(SB), RODATA|NOPTR, $32

DATA permD4<>+0(SB)/4, $0
DATA permD4<>+4(SB)/4, $2
DATA permD4<>+8(SB)/4, $4
DATA permD4<>+12(SB)/4, $6
DATA permD4<>+16(SB)/4, $1
DATA permD4<>+20(SB)/4, $3
DATA permD4<>+24(SB)/4, $5
DATA permD4<>+28(SB)/4, $7
GLOBL permD4<>(SB), RODATA|NOPTR, $32

DATA permD8<>+0(SB)/4, $0
DATA permD8<>+4(SB)/4, $1
DATA permD8<>+8(SB)/4, $2
DATA permD8<>+12(SB)/4, $3
DATA permD8<>+16(SB)/4, $4
DATA permD8<>+20(SB)/4, $5
DATA permD8<>+24(SB)/4, $6
DATA permD8<>+28(SB)/4, $7
GLOBL permD8<>(SB), RODATA|NOPTR, $32

// +Inf x8 — initial best values (matches the Go wrapper's prefill).
DATA infInit<>+0(SB)/8, $0x7f8000007f800000
DATA infInit<>+8(SB)/8, $0x7f8000007f800000
DATA infInit<>+16(SB)/8, $0x7f8000007f800000
DATA infInit<>+24(SB)/8, $0x7f8000007f800000
GLOBL infInit<>(SB), RODATA|NOPTR, $32

DATA eightD<>+0(SB)/4, $8
GLOBL eightD<>(SB), RODATA|NOPTR, $4

// ARGMIN_HEAD: shared prologue. Loads args, computes the block count,
// and initializes bestv (+Inf), besti (0), the lane row-index vector
// (= perm) and the +8 increment. Y8 (query vector) and Y9 (perm) are
// loaded by the per-dimension code before this macro runs on Y10..Y13.
#define ARGMIN_HEAD \
	VMOVUPS      infInit<>(SB), Y10      \
	VPXOR        Y11, Y11, Y11           \
	VMOVDQU      Y9, Y12                 \
	VPBROADCASTD eightD<>(SB), Y13

// ARGMIN_STEP: shared candidate update + advance. Y0 = candidate values
// v (lane order = perm). Strict less-than keeps the FIRST row achieving
// a value, because per lane the row indices only increase.
#define ARGMIN_STEP \
	VCMPPS    $0x11, Y10, Y0, Y1    \
	VBLENDVPS Y1, Y0, Y10, Y10      \
	VBLENDVPS Y1, Y12, Y11, Y11     \
	VPADDD    Y13, Y12, Y12

// ARGMIN_TAIL: store the 8 (value, index) lane results.
#define ARGMIN_TAIL \
	MOVQ       outV+32(FP), AX      \
	VMOVUPS    Y10, (AX)            \
	MOVQ       outI+40(FP), AX      \
	VMOVDQU    Y11, (AX)            \
	VZEROUPPER

// func argminD2Asm(data, norms *float32, n8 int, q *float32, outV *[8]float32, outI *[8]int32)
TEXT ·argminD2Asm(SB), NOSPLIT, $0-48
	MOVQ data+0(FP), SI
	MOVQ norms+8(FP), DI
	MOVQ n8+16(FP), CX
	MOVQ q+24(FP), AX
	SHRQ $3, CX
	JZ   am2done
	VBROADCASTSD (AX), Y8          // [q0 q1] x4
	VMOVDQU      permD2<>(SB), Y9
	ARGMIN_HEAD

am2loop:
	// 8 rows x 2 floats = 2 YMM loads.
	VMOVUPS (SI), Y0               // rows 0..3
	VMOVUPS 32(SI), Y1             // rows 4..7
	VMULPS  Y8, Y0, Y0
	VMULPS  Y8, Y1, Y1
	VHADDPS Y1, Y0, Y0             // s = [r0 r1 r4 r5 | r2 r3 r6 r7]
	VADDPS  Y0, Y0, Y0             // 2*s, computed as s+s like the scalar
	VMOVUPS (DI), Y1
	VPERMPS Y1, Y9, Y1             // norms into lane order
	VSUBPS  Y0, Y1, Y0             // v = norms - 2*s
	ARGMIN_STEP
	ADDQ $64, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  am2loop

	ARGMIN_TAIL
am2done:
	VZEROUPPER
	RET

// func argminD4Asm(data, norms *float32, n8 int, q *float32, outV *[8]float32, outI *[8]int32)
TEXT ·argminD4Asm(SB), NOSPLIT, $0-48
	MOVQ data+0(FP), SI
	MOVQ norms+8(FP), DI
	MOVQ n8+16(FP), CX
	MOVQ q+24(FP), AX
	SHRQ $3, CX
	JZ   am4done
	VBROADCASTF128 (AX), Y8        // [q0..q3] x2
	VMOVDQU        permD4<>(SB), Y9
	ARGMIN_HEAD

am4loop:
	// 8 rows x 4 floats = 4 YMM loads, two rows per register.
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VMOVUPS 64(SI), Y2
	VMOVUPS 96(SI), Y3
	VMULPS  Y8, Y0, Y0
	VMULPS  Y8, Y1, Y1
	VMULPS  Y8, Y2, Y2
	VMULPS  Y8, Y3, Y3
	VHADDPS Y1, Y0, Y0             // pair sums of rows 0..3
	VHADDPS Y3, Y2, Y2             // pair sums of rows 4..7
	VHADDPS Y2, Y0, Y0             // s = [r0 r2 r4 r6 | r1 r3 r5 r7]
	VADDPS  Y0, Y0, Y0
	VMOVUPS (DI), Y1
	VPERMPS Y1, Y9, Y1
	VSUBPS  Y0, Y1, Y0
	ARGMIN_STEP
	ADDQ $128, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  am4loop

	ARGMIN_TAIL
am4done:
	VZEROUPPER
	RET

// func argminD8Asm(data, norms *float32, n8 int, q *float32, outV *[8]float32, outI *[8]int32)
TEXT ·argminD8Asm(SB), NOSPLIT, $0-48
	MOVQ data+0(FP), SI
	MOVQ norms+8(FP), DI
	MOVQ n8+16(FP), CX
	MOVQ q+24(FP), AX
	SHRQ $3, CX
	JZ   am8done
	VMOVUPS (AX), Y8               // full 8-float query
	VMOVDQU permD8<>(SB), Y9
	ARGMIN_HEAD

am8loop:
	// Rows 0..3: each row is one full YMM; hadd tree halves are the
	// scalar kernel's (p0..p3) and (p4..p7) sub-trees, whose final add
	// happens in the VADDPS after the extract.
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VMOVUPS 64(SI), Y2
	VMOVUPS 96(SI), Y3
	VMULPS  Y8, Y0, Y0
	VMULPS  Y8, Y1, Y1
	VMULPS  Y8, Y2, Y2
	VMULPS  Y8, Y3, Y3
	VHADDPS Y1, Y0, Y0
	VHADDPS Y3, Y2, Y2
	VHADDPS Y2, Y0, Y0             // [lo(r0..r3) | hi(r0..r3)]
	VEXTRACTF128 $1, Y0, X1
	VADDPS  X1, X0, X0             // X0 = s(r0..r3)
	// Rows 4..7.
	VMOVUPS 128(SI), Y1
	VMOVUPS 160(SI), Y2
	VMOVUPS 192(SI), Y3
	VMOVUPS 224(SI), Y4
	VMULPS  Y8, Y1, Y1
	VMULPS  Y8, Y2, Y2
	VMULPS  Y8, Y3, Y3
	VMULPS  Y8, Y4, Y4
	VHADDPS Y2, Y1, Y1
	VHADDPS Y4, Y3, Y3
	VHADDPS Y3, Y1, Y1
	VEXTRACTF128 $1, Y1, X2
	VADDPS  X2, X1, X1             // X1 = s(r4..r7)
	VINSERTF128 $1, X1, Y0, Y0     // s = [r0..r3 | r4..r7]
	VADDPS  Y0, Y0, Y0
	VMOVUPS (DI), Y1               // perm is identity for d=8
	VSUBPS  Y0, Y1, Y0
	ARGMIN_STEP
	ADDQ $256, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  am8loop

	ARGMIN_TAIL
am8done:
	VZEROUPPER
	RET
