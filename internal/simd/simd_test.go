package simd

import (
	"math"
	"math/rand"
	"testing"
)

// The differential matrix runs every assembly kernel against its pure-Go
// reference on identical inputs. On builds without the assembly
// (noasm, non-amd64) the dispatchers already point at the references, so
// the comparisons are trivially true and the tests still exercise the
// reference paths. Bit-exact kernels (ADC sums, argmin) compare with ==
// on the raw float bits; the FMA reductions compare against an exact
// float64 reduction within the documented bound.

func randSlice(rng *rand.Rand, n int, scale float64) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32((rng.Float64()*2 - 1) * scale)
	}
	return s
}

func TestDetectReporting(t *testing.T) {
	t.Logf("available=%v enabled=%v dispatch=%q features=%q reason=%q",
		Available(), Enabled(), Dispatch(), Features(), Reason())
	if Enabled() && Reason() != "" {
		t.Fatalf("enabled but reason = %q", Reason())
	}
	if !Available() && Enabled() {
		t.Fatal("enabled without available")
	}
	prev := SetEnabled(false)
	if Enabled() {
		t.Fatal("SetEnabled(false) did not take effect")
	}
	if Dispatch() != "scalar" {
		t.Fatalf("disabled dispatch = %q, want scalar", Dispatch())
	}
	SetEnabled(prev)
	if Enabled() != prev {
		t.Fatal("SetEnabled did not restore")
	}
}

// --- ADC 4-bit ---

func buildRandomLUT4(rng *rand.Rand, nSub, ks int) (planes []byte, vals []float32) {
	vals = make([]float32, nSub*ks)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	planes = make([]byte, nSub*planeBytes)
	BuildNibblePlanes(planes, vals, ks, nSub)
	return planes, vals
}

func packRandom4(rng *rand.Rand, n, codeBytes, ks int) []byte {
	packed := make([]byte, n*codeBytes)
	for i := range packed {
		lo := byte(rng.Intn(ks))
		hi := byte(rng.Intn(ks))
		packed[i] = lo | hi<<4
	}
	return packed
}

func TestBuildNibblePlanes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ks := range []int{1, 7, 16} {
		planes, vals := buildRandomLUT4(rng, 3, ks)
		for s := 0; s < 3; s++ {
			for k := 0; k < 16; k++ {
				var want uint32
				if k < ks {
					want = math.Float32bits(vals[s*ks+k])
				}
				base := s * planeBytes
				got := uint32(planes[base+k]) |
					uint32(planes[base+16+k])<<8 |
					uint32(planes[base+32+k])<<16 |
					uint32(planes[base+48+k])<<24
				if got != want {
					t.Fatalf("ks=%d sub=%d k=%d: plane bits %#x, want %#x", ks, s, k, got, want)
				}
			}
		}
	}
}

func TestADCSums4Diff(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct {
		n, codeBytes, groups, ks int
	}{
		{16, 4, 1, 16},
		{16, 32, 8, 16},
		{256, 32, 8, 16},
		{48, 7, 1, 16},   // odd codeBytes: tail bytes ignored by the kernel
		{160, 13, 3, 16}, // unaligned stride, partial coverage
		{32, 32, 8, 9},   // ks < 16: upper plane entries are zero padding
		{1024, 24, 6, 16},
	} {
		planes, _ := buildRandomLUT4(rng, 8*tc.groups, tc.ks)
		packed := packRandom4(rng, tc.n, tc.codeBytes, tc.ks)
		bias := float32(rng.NormFloat64())

		want := make([]float32, tc.n)
		adcSums4Generic(planes, bias, packed, tc.codeBytes, tc.groups, want)
		got := make([]float32, tc.n)
		ADCSums4(planes, bias, packed, tc.codeBytes, tc.groups, got)

		for r := range want {
			if math.Float32bits(want[r]) != math.Float32bits(got[r]) {
				t.Fatalf("%+v row %d: asm %v (%#x) != ref %v (%#x)",
					tc, r, got[r], math.Float32bits(got[r]), want[r], math.Float32bits(want[r]))
			}
		}
	}
}

// --- ADC 8-bit ---

func TestADCSums8Diff(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		n, codeBytes, m8 int
	}{
		{8, 8, 8},
		{8, 64, 64},
		{256, 64, 64},
		{64, 13, 8}, // odd stride, tail sub-spaces left to the caller
		{120, 37, 32},
		{1024, 48, 48},
	} {
		vals := make([]float32, tc.m8*256)
		for i := range vals {
			vals[i] = float32(rng.NormFloat64())
		}
		packed := make([]byte, tc.n*tc.codeBytes)
		rng.Read(packed) // any byte value is a valid ks=256 index
		bias := float32(rng.NormFloat64())

		want := make([]float32, tc.n)
		adcSums8Generic(vals, bias, packed, tc.codeBytes, tc.m8, want)
		got := make([]float32, tc.n)
		ADCSums8(vals, bias, packed, tc.codeBytes, tc.m8, got)

		for r := range want {
			if math.Float32bits(want[r]) != math.Float32bits(got[r]) {
				t.Fatalf("%+v row %d: asm %v != ref %v", tc, r, got[r], want[r])
			}
		}
	}
}

// --- FMA reductions ---

// dotExact is the float64 reference both implementations are measured
// against.
func dotExact(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func l2sqExact(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// dotBound is the documented tolerance for the FMA reductions: a small
// multiple of len * ulp * sum(|a_i*b_i|), covering both the assembly's
// fused rounding and the reference's reassociation.
func dotBound(a, b []float32) float64 {
	var mag float64
	for i := range a {
		mag += math.Abs(float64(a[i]) * float64(b[i]))
	}
	return 4 * float64(len(a)+8) * (1.0 / (1 << 24)) * (mag + 1e-30)
}

func TestDotDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 63, 64, 100, 128, 333, 1024} {
		a := randSlice(rng, n, 1)
		b := randSlice(rng, n, 1)
		exact := dotExact(a, b)
		bound := dotBound(a, b)
		for name, got := range map[string]float32{
			"kernel":  Dot(a, b),
			"generic": dotGeneric(a, b),
		} {
			if d := math.Abs(float64(got) - exact); d > bound {
				t.Fatalf("n=%d %s: |%v - %v| = %g > bound %g", n, name, got, exact, d, bound)
			}
		}
	}
	if Dot(nil, nil) != 0 {
		t.Fatal("Dot(nil, nil) != 0")
	}
}

// TestDotErrorBound pins the documented bound on adversarial
// (large-magnitude, cancelling) inputs, not just uniform noise.
func TestDotErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(512)
		a := randSlice(rng, n, 1e4)
		b := randSlice(rng, n, 1e4)
		// Force cancellation: mirror half the products negatively.
		for i := 0; i+1 < n; i += 2 {
			a[i+1] = a[i]
			b[i+1] = -b[i] * (1 + float32(rng.Float64())*1e-3)
		}
		exact := dotExact(a, b)
		bound := dotBound(a, b)
		if d := math.Abs(float64(Dot(a, b)) - exact); d > bound {
			t.Fatalf("trial %d n=%d: err %g > bound %g", trial, n, d, bound)
		}
	}
}

func TestL2SqDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 7, 8, 9, 16, 17, 31, 32, 64, 100, 128, 500} {
		a := randSlice(rng, n, 10)
		b := randSlice(rng, n, 10)
		exact := l2sqExact(a, b)
		// |d*d| sums: reuse dotBound on the difference vector.
		diff := make([]float32, n)
		for i := range diff {
			diff[i] = a[i] - b[i]
		}
		bound := dotBound(diff, diff)
		for name, got := range map[string]float32{
			"kernel":  L2Sq(a, b),
			"generic": l2sqGeneric(a, b),
		} {
			if d := math.Abs(float64(got) - exact); d > bound {
				t.Fatalf("n=%d %s: |%v - %v| = %g > bound %g", n, name, got, exact, d, bound)
			}
		}
	}
}

// --- argmin ---

// argminScalar reproduces vecmath's unrolled kernels: sequential scan,
// strict <, fixed pairwise dot association.
func argminScalar(data, norms, q []float32, d int) (int, float32) {
	best, bv := 0, float32(math.Inf(1))
	for j := 0; j < len(norms); j++ {
		s := pairTreeDot(data[j*d:(j+1)*d], q, d)
		if v := norms[j] - 2*s; v < bv {
			best, bv = j, v
		}
	}
	return best, bv
}

func TestArgMinNM2Diff(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{2, 4, 8} {
		for _, n := range []int{8, 9, 15, 16, 17, 64, 100, 256, 1000} {
			data := randSlice(rng, n*d, 1)
			norms := make([]float32, n)
			for j := 0; j < n; j++ {
				var s float32
				for k := 0; k < d; k++ {
					s += data[j*d+k] * data[j*d+k]
				}
				norms[j] = s
			}
			q := randSlice(rng, d, 1)
			wi, wv := argminScalar(data, norms, q, d)
			gi, gv := ArgMinNM2(data, norms, q, d)
			if gi != wi || math.Float32bits(gv) != math.Float32bits(wv) {
				t.Fatalf("d=%d n=%d: asm (%d, %v) != scalar (%d, %v)", d, n, gi, gv, wi, wv)
			}
		}
	}
}

// TestArgMinNM2Ties forces exact value ties across lanes and verifies the
// first (lowest-index) row wins, as in the scalar scan.
func TestArgMinNM2Ties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, d := range []int{2, 4, 8} {
		for _, n := range []int{16, 33, 64} {
			data := make([]float32, n*d) // all-zero rows: every v == norms[j]
			norms := make([]float32, n)
			for j := range norms {
				norms[j] = float32(1 + rng.Intn(3)) // many duplicate values
			}
			q := randSlice(rng, d, 1)
			wi, wv := argminScalar(data, norms, q, d)
			gi, gv := ArgMinNM2(data, norms, q, d)
			if gi != wi || gv != wv {
				t.Fatalf("d=%d n=%d: asm (%d, %v) != scalar (%d, %v)", d, n, gi, gv, wi, wv)
			}
		}
	}
}

// TestArgMinNM2NonFinite checks NaN/Inf rows: strict < means NaN
// candidates never win, matching the scalar kernels.
func TestArgMinNM2NonFinite(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	for _, d := range []int{2, 4, 8} {
		n := 24
		data := make([]float32, n*d)
		norms := make([]float32, n)
		for j := range norms {
			norms[j] = float32(j)
		}
		norms[3] = nan
		norms[5] = inf
		norms[7] = float32(math.Inf(-1))
		q := make([]float32, d)
		wi, wv := argminScalar(data, norms, q, d)
		gi, gv := ArgMinNM2(data, norms, q, d)
		if gi != wi || math.Float32bits(gv) != math.Float32bits(wv) {
			t.Fatalf("d=%d: asm (%d, %v) != scalar (%d, %v)", d, gi, gv, wi, wv)
		}

		// All-NaN: nothing beats +Inf prefill; scalar returns (0, +Inf).
		for j := range norms {
			norms[j] = nan
		}
		wi, wv = argminScalar(data, norms, q, d)
		gi, gv = ArgMinNM2(data, norms, q, d)
		if gi != wi || math.Float32bits(gv) != math.Float32bits(wv) {
			t.Fatalf("d=%d all-NaN: asm (%d, %v) != scalar (%d, %v)", d, gi, gv, wi, wv)
		}
	}
}

// --- scalar-forced paths (ANNA_NOSIMD / SetEnabled coverage) ---

func TestSetEnabledRoundTrip(t *testing.T) {
	if !Available() {
		t.Skip("no assembly on this build")
	}
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	// Kernels still dispatch on `available`, so results stay identical;
	// this pins that the policy switch doesn't change kernel results.
	rng := rand.New(rand.NewSource(9))
	a := randSlice(rng, 64, 1)
	b := randSlice(rng, 64, 1)
	off := Dot(a, b)
	SetEnabled(true)
	on := Dot(a, b)
	if math.Float32bits(off) != math.Float32bits(on) {
		t.Fatalf("Dot differs across SetEnabled: %v vs %v", off, on)
	}
}

// --- fuzzers (also run with -fuzz in CI's differential fuzz job) ---

func FuzzScanADCDiff(f *testing.F) {
	f.Add(uint16(16), uint8(8), uint8(1), []byte{0x21, 0x43, 0x65, 0x87})
	f.Add(uint16(64), uint8(13), uint8(3), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, nRaw uint16, cbRaw, gRaw uint8, seedBytes []byte) {
		n := (int(nRaw)%512 + 16) &^ 15
		groups := int(gRaw)%8 + 1
		codeBytes := 4*groups + int(cbRaw)%8
		var seed int64
		for _, b := range seedBytes {
			seed = seed*131 + int64(b)
		}
		rng := rand.New(rand.NewSource(seed))

		planes, _ := buildRandomLUT4(rng, 8*groups, 16)
		packed := make([]byte, n*codeBytes)
		rng.Read(packed)
		// Splice fuzz bytes in for adversarial nibble patterns.
		copy(packed, seedBytes)
		bias := float32(rng.NormFloat64())

		want := make([]float32, n)
		adcSums4Generic(planes, bias, packed, codeBytes, groups, want)
		got := make([]float32, n)
		ADCSums4(planes, bias, packed, codeBytes, groups, got)
		for r := range want {
			if math.Float32bits(want[r]) != math.Float32bits(got[r]) {
				t.Fatalf("row %d: asm %v != ref %v (n=%d codeBytes=%d groups=%d)",
					r, got[r], want[r], n, codeBytes, groups)
			}
		}

		// 8-bit kernel on the same packed block where it fits.
		m8 := 8 * (int(gRaw)%4 + 1)
		if m8 <= codeBytes {
			vals := make([]float32, m8*256)
			for i := range vals {
				vals[i] = float32(rng.NormFloat64())
			}
			n8 := n &^ 7
			want8 := make([]float32, n8)
			adcSums8Generic(vals, bias, packed, codeBytes, m8, want8)
			got8 := make([]float32, n8)
			ADCSums8(vals, bias, packed, codeBytes, m8, got8)
			for r := range want8 {
				if math.Float32bits(want8[r]) != math.Float32bits(got8[r]) {
					t.Fatalf("8-bit row %d: asm %v != ref %v", r, got8[r], want8[r])
				}
			}
		}
	})
}

func FuzzDotDiff(f *testing.F) {
	f.Add(uint16(17), int64(1))
	f.Add(uint16(256), int64(42))
	f.Fuzz(func(t *testing.T, nRaw uint16, seed int64) {
		n := int(nRaw)%2048 + 1
		rng := rand.New(rand.NewSource(seed))
		a := randSlice(rng, n, 100)
		b := randSlice(rng, n, 100)

		if d := math.Abs(float64(Dot(a, b)) - dotExact(a, b)); d > dotBound(a, b) {
			t.Fatalf("Dot n=%d seed=%d: err %g > bound %g", n, seed, d, dotBound(a, b))
		}
		diff := make([]float32, n)
		for i := range diff {
			diff[i] = a[i] - b[i]
		}
		if d := math.Abs(float64(L2Sq(a, b)) - l2sqExact(a, b)); d > dotBound(diff, diff) {
			t.Fatalf("L2Sq n=%d seed=%d: err %g > bound %g", n, seed, d, dotBound(diff, diff))
		}

		// Argmin differential ride-along: d cycles through 2/4/8.
		d := []int{2, 4, 8}[n%3]
		rows := n%97 + 8
		data := randSlice(rng, rows*d, 1)
		norms := randSlice(rng, rows, 2)
		q := randSlice(rng, d, 1)
		wi, wv := argminScalar(data, norms, q, d)
		gi, gv := ArgMinNM2(data, norms, q, d)
		if gi != wi || math.Float32bits(gv) != math.Float32bits(wv) {
			t.Fatalf("argmin d=%d rows=%d: asm (%d, %v) != scalar (%d, %v)", d, rows, gi, gv, wi, wv)
		}
	})
}

// --- benchmarks ---

func BenchmarkDot(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := randSlice(rng, 128, 1)
	y := randSlice(rng, 128, 1)
	b.SetBytes(128 * 4 * 2)
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkADCSums4(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	const n, groups = 1024, 8
	codeBytes := 4 * groups
	planes, _ := buildRandomLUT4(rng, 8*groups, 16)
	packed := packRandom4(rng, n, codeBytes, 16)
	sums := make([]float32, n)
	b.SetBytes(int64(n * codeBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ADCSums4(planes, 0, packed, codeBytes, groups, sums)
	}
}

func BenchmarkADCSums8(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	const n, m8 = 1024, 32
	vals := make([]float32, m8*256)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	packed := make([]byte, n*m8)
	rng.Read(packed)
	sums := make([]float32, n)
	b.SetBytes(int64(n * m8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ADCSums8(vals, 0, packed, m8, m8, sums)
	}
}

func BenchmarkArgMinNM2(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	const n, d = 256, 8
	data := randSlice(rng, n*d, 1)
	norms := randSlice(rng, n, 2)
	q := randSlice(rng, d, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ArgMinNM2(data, norms, q, d)
	}
}
