package recall

import (
	"testing"

	"anna/internal/topk"
)

func res(ids ...int64) []topk.Result {
	out := make([]topk.Result, len(ids))
	for i, id := range ids {
		out[i] = topk.Result{ID: id, Score: float32(len(ids) - i)}
	}
	return out
}

func TestXAtYPerfect(t *testing.T) {
	truth := []int64{1, 2, 3}
	got := res(3, 1, 2)
	if r := XAtY(3, 3, truth, got); r != 1 {
		t.Errorf("recall = %v, want 1", r)
	}
}

func TestXAtYPartial(t *testing.T) {
	truth := []int64{1, 2, 3, 4}
	got := res(1, 9, 8, 4)
	if r := XAtY(4, 4, truth, got); r != 0.5 {
		t.Errorf("recall = %v, want 0.5", r)
	}
	// Only first Y candidates count.
	if r := XAtY(4, 1, truth, got); r != 0.25 {
		t.Errorf("recall 4@1 = %v, want 0.25", r)
	}
}

func TestXAtYShortCandidateList(t *testing.T) {
	truth := []int64{1, 2}
	got := res(2)
	if r := XAtY(2, 10, truth, got); r != 0.5 {
		t.Errorf("recall with short list = %v, want 0.5", r)
	}
}

func TestXAtYZero(t *testing.T) {
	if r := XAtY(2, 2, []int64{1, 2}, res(5, 6)); r != 0 {
		t.Errorf("recall = %v, want 0", r)
	}
}

func TestXAtYPanics(t *testing.T) {
	for _, f := range []func(){
		func() { XAtY(0, 1, []int64{1}, res(1)) },
		func() { XAtY(1, 0, []int64{1}, res(1)) },
		func() { XAtY(3, 3, []int64{1}, res(1)) }, // truth too short
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMean(t *testing.T) {
	truth := [][]int64{{1}, {2}}
	got := [][]topk.Result{res(1), res(3)}
	if m := Mean(1, 1, truth, got); m != 0.5 {
		t.Errorf("Mean = %v, want 0.5", m)
	}
	if m := Mean(1, 1, nil, nil); m != 0 {
		t.Errorf("Mean(empty) = %v", m)
	}
}

func TestMeanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mean(1, 1, [][]int64{{1}}, nil)
}
