// Package recall computes the paper's quality metric: recall X@Y, "the
// portion of retrieved top X items among submitted Y candidates"
// (Section V-A). Figure 8 uses recall 100@1000.
package recall

import (
	"fmt"

	"anna/internal/topk"
)

// XAtY computes recall X@Y for one query: of the X true nearest
// neighbors, the fraction found anywhere in the first Y returned
// candidates. truth must contain at least X IDs; extra entries beyond Y
// in got are ignored.
func XAtY(x, y int, truth []int64, got []topk.Result) float64 {
	if x <= 0 || y <= 0 {
		panic("recall: X and Y must be positive")
	}
	if len(truth) < x {
		panic(fmt.Sprintf("recall: ground truth has %d entries, need %d", len(truth), x))
	}
	if y > len(got) {
		y = len(got)
	}
	retrieved := make(map[int64]struct{}, y)
	for _, r := range got[:y] {
		retrieved[r.ID] = struct{}{}
	}
	hits := 0
	for _, id := range truth[:x] {
		if _, ok := retrieved[id]; ok {
			hits++
		}
	}
	return float64(hits) / float64(x)
}

// Mean computes the average recall X@Y across queries. The slices must
// have equal length.
func Mean(x, y int, truth [][]int64, got [][]topk.Result) float64 {
	if len(truth) != len(got) {
		panic("recall: query count mismatch")
	}
	if len(truth) == 0 {
		return 0
	}
	var sum float64
	for i := range truth {
		sum += XAtY(x, y, truth[i], got[i])
	}
	return sum / float64(len(truth))
}
