// Package dram models ANNA's main-memory system: a bandwidth-limited
// channel (64 GB/s per accelerator instance in the paper's evaluation,
// matching the CPU baseline's memory system) with first-word latency,
// plus per-stream traffic accounting so the harness can report exactly
// which data classes consume bandwidth (the Section IV analysis).
package dram

import (
	"fmt"

	"anna/internal/sim"
)

// StreamClass labels a class of memory traffic for accounting.
type StreamClass int

const (
	// Centroids is the streaming read of C during cluster filtering.
	Centroids StreamClass = iota
	// ClusterMeta is the per-cluster metadata read (start address + size).
	ClusterMeta
	// Codes is the encoded-vector fetch of the selected clusters.
	Codes
	// TopK is the intermediate top-k save/restore traffic (Section IV).
	TopK
	// QueryLists is the query-ID array-of-arrays write/read traffic of the
	// batch optimization.
	QueryLists
	// Results is the final top-k result writeback.
	Results
	numClasses
)

var classNames = [...]string{"centroids", "clustermeta", "codes", "topk", "querylists", "results"}

func (c StreamClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("StreamClass(%d)", int(c))
}

// Config describes the memory system.
type Config struct {
	// BandwidthBytesPerCycle is the sustainable bandwidth. At the paper's
	// 1 GHz clock, 64 GB/s is 64 bytes/cycle.
	BandwidthBytesPerCycle float64
	// LatencyCycles is the first-word read latency. Prefetching memory
	// readers hide it in steady state; it shows up on dependent reads
	// (e.g. cluster metadata before codes).
	LatencyCycles sim.Cycles
	// BurstBytes is the minimum transfer granularity (64 B requests via
	// the MAI); partial bursts round up.
	BurstBytes int64
}

// DefaultConfig is the paper's evaluated memory system: 64 GB/s at 1 GHz,
// 64 B bursts.
func DefaultConfig() Config {
	return Config{BandwidthBytesPerCycle: 64, LatencyCycles: 100, BurstBytes: 64}
}

// Channel is the simulated memory channel. It schedules transfers with
// gap filling (sim.GapResource): the MAI's outstanding-request buffers
// let independent streams reorder around each other, so a transfer with
// a late ready time (a top-k save waiting on a scan) does not block an
// already-issued prefetch from using the idle channel before it.
type Channel struct {
	cfg     Config
	res     *sim.GapResource
	traffic [numClasses]int64
}

// NewChannel registers a memory channel on engine e.
func NewChannel(e *sim.Engine, cfg Config) *Channel {
	if cfg.BandwidthBytesPerCycle <= 0 {
		panic("dram: bandwidth must be positive")
	}
	if cfg.BurstBytes <= 0 {
		cfg.BurstBytes = 64
	}
	return &Channel{cfg: cfg, res: e.NewGapResource("dram")}
}

// OccupancyCycles returns the channel cycles consumed by a transfer of
// the given size, after burst rounding.
func (ch *Channel) OccupancyCycles(bytes int64) sim.Cycles {
	if bytes <= 0 {
		return 0
	}
	bursts := sim.CeilDiv(bytes, ch.cfg.BurstBytes)
	eff := bursts * ch.cfg.BurstBytes
	return sim.Cycles(sim.CeilDiv(eff*1000, int64(ch.cfg.BandwidthBytesPerCycle*1000)))
}

// Read books a read transfer on the channel. ready is when the requester
// issues the request. The returned dataAt is when the last byte is
// available to the requester (including first-word latency); the channel
// itself is occupied only for the bandwidth-determined duration, so
// independent transfers pipeline behind each other.
func (ch *Channel) Read(ready sim.Cycles, bytes int64, class StreamClass, label string) (dataAt sim.Cycles) {
	if bytes < 0 {
		panic("dram: negative read size")
	}
	ch.traffic[class] += bytes
	if bytes == 0 {
		return ready
	}
	_, end := ch.res.Schedule(ready, ch.OccupancyCycles(bytes), label)
	return end + ch.cfg.LatencyCycles
}

// Write books a write transfer. Writes are buffered by the MAI, so the
// returned time is when the channel accepted the data (no added latency).
func (ch *Channel) Write(ready sim.Cycles, bytes int64, class StreamClass, label string) (done sim.Cycles) {
	if bytes < 0 {
		panic("dram: negative write size")
	}
	ch.traffic[class] += bytes
	if bytes == 0 {
		return ready
	}
	_, end := ch.res.Schedule(ready, ch.OccupancyCycles(bytes), label)
	return end
}

// Traffic returns the accumulated bytes for a stream class.
func (ch *Channel) Traffic(class StreamClass) int64 { return ch.traffic[class] }

// TotalTraffic returns the accumulated bytes across all classes.
func (ch *Channel) TotalTraffic() int64 {
	var t int64
	for _, v := range ch.traffic {
		t += v
	}
	return t
}

// TrafficByClass returns a copy of the per-class byte counters indexed by
// StreamClass.
func (ch *Channel) TrafficByClass() map[StreamClass]int64 {
	out := make(map[StreamClass]int64, numClasses)
	for c := StreamClass(0); c < numClasses; c++ {
		if ch.traffic[c] != 0 {
			out[c] = ch.traffic[c]
		}
	}
	return out
}

// Busy returns the channel's booked cycles.
func (ch *Channel) Busy() sim.Cycles { return ch.res.Busy() }

// FreeAt returns when the channel next becomes idle.
func (ch *Channel) FreeAt() sim.Cycles { return ch.res.FreeAt() }

// Config returns the channel configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// ResetTraffic clears the traffic counters (resource state is owned by
// the engine and cleared by Engine.Reset).
func (ch *Channel) ResetTraffic() {
	for i := range ch.traffic {
		ch.traffic[i] = 0
	}
}
