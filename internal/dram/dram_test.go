package dram

import (
	"testing"

	"anna/internal/sim"
)

func newCh(t *testing.T) (*sim.Engine, *Channel) {
	t.Helper()
	e := sim.NewEngine(false)
	return e, NewChannel(e, Config{BandwidthBytesPerCycle: 64, LatencyCycles: 100, BurstBytes: 64})
}

func TestOccupancyCycles(t *testing.T) {
	_, ch := newCh(t)
	cases := []struct {
		bytes int64
		want  sim.Cycles
	}{
		{0, 0},
		{1, 1}, // rounds to one 64B burst = 1 cycle at 64 B/c
		{64, 1},
		{65, 2}, // two bursts
		{6400, 100},
	}
	for _, c := range cases {
		if got := ch.OccupancyCycles(c.bytes); got != c.want {
			t.Errorf("OccupancyCycles(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestFractionalBandwidth(t *testing.T) {
	e := sim.NewEngine(false)
	ch := NewChannel(e, Config{BandwidthBytesPerCycle: 12.8, LatencyCycles: 0, BurstBytes: 64})
	// 128 bytes at 12.8 B/cycle = 10 cycles.
	if got := ch.OccupancyCycles(128); got != 10 {
		t.Errorf("fractional bandwidth occupancy = %d, want 10", got)
	}
}

func TestReadAddsLatencyWriteDoesNot(t *testing.T) {
	_, ch := newCh(t)
	dataAt := ch.Read(0, 64, Codes, "r")
	if dataAt != 101 { // 1 cycle transfer + 100 latency
		t.Errorf("read dataAt = %d, want 101", dataAt)
	}
	done := ch.Write(0, 64, Results, "w")
	// Channel was busy cycle 0-1 from the read; write occupies 1-2.
	if done != 2 {
		t.Errorf("write done = %d, want 2", done)
	}
}

func TestTransfersPipelineOnChannel(t *testing.T) {
	_, ch := newCh(t)
	a := ch.Read(0, 640, Codes, "a") // occupies 0..10
	b := ch.Read(0, 640, Codes, "b") // occupies 10..20
	if a != 110 || b != 120 {
		t.Errorf("pipelined reads: a=%d b=%d, want 110,120", a, b)
	}
	if ch.Busy() != 20 {
		t.Errorf("busy = %d", ch.Busy())
	}
}

func TestTrafficAccounting(t *testing.T) {
	_, ch := newCh(t)
	ch.Read(0, 100, Centroids, "c")
	ch.Read(0, 200, Codes, "d")
	ch.Write(0, 50, TopK, "t")
	ch.Write(0, 50, TopK, "t2")
	if ch.Traffic(Centroids) != 100 || ch.Traffic(Codes) != 200 || ch.Traffic(TopK) != 100 {
		t.Errorf("traffic: %v", ch.TrafficByClass())
	}
	if ch.TotalTraffic() != 400 {
		t.Errorf("total = %d", ch.TotalTraffic())
	}
	m := ch.TrafficByClass()
	if len(m) != 3 {
		t.Errorf("class map = %v", m)
	}
	ch.ResetTraffic()
	if ch.TotalTraffic() != 0 {
		t.Error("ResetTraffic incomplete")
	}
}

func TestZeroByteTransferFree(t *testing.T) {
	_, ch := newCh(t)
	if got := ch.Read(7, 0, Codes, "z"); got != 7 {
		t.Errorf("zero read at %d", got)
	}
	if ch.Busy() != 0 || ch.TotalTraffic() != 0 {
		t.Error("zero transfer consumed resources")
	}
}

func TestNegativePanics(t *testing.T) {
	_, ch := newCh(t)
	for _, f := range []func(){
		func() { ch.Read(0, -1, Codes, "r") },
		func() { ch.Write(0, -1, Codes, "w") },
		func() { NewChannel(sim.NewEngine(false), Config{BandwidthBytesPerCycle: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestClassNames(t *testing.T) {
	if Centroids.String() != "centroids" || TopK.String() != "topk" {
		t.Errorf("names: %v %v", Centroids, TopK)
	}
	if QueryLists.String() != "querylists" {
		t.Errorf("%v", QueryLists)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	// 64 GB/s at 1 GHz = 64 B/cycle (Section V-A).
	if cfg.BandwidthBytesPerCycle != 64 {
		t.Errorf("default bandwidth = %v", cfg.BandwidthBytesPerCycle)
	}
	if cfg.BurstBytes != 64 { // MAI 64B buffers (Section III-B)
		t.Errorf("default burst = %v", cfg.BurstBytes)
	}
}

func TestAccessors(t *testing.T) {
	_, ch := newCh(t)
	if ch.Config().BandwidthBytesPerCycle != 64 {
		t.Errorf("Config: %+v", ch.Config())
	}
	ch.Read(0, 64, Codes, "r")
	if ch.FreeAt() <= 0 {
		t.Errorf("FreeAt = %v", ch.FreeAt())
	}
	if got := StreamClass(99).String(); got != "StreamClass(99)" {
		t.Errorf("unknown class name %q", got)
	}
	for c := Centroids; c < StreamClass(6); c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
}
