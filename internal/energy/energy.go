// Package energy models ANNA's silicon cost and energy: a component-level
// area/power model at TSMC 40 nm / 1 GHz that reproduces Table I of the
// paper from the hardware configuration, activity-based energy accounting
// for simulated runs, and the CPU/GPU power figures the paper measured
// (Intel RAPL / nvprof) for the energy-efficiency comparison of Figure 10.
//
// The component constants (mm² and W per SRAM byte, compute unit, adder,
// CAM entry, …) are calibrated against the paper's synthesis results —
// the role the TSMC 40 nm GP standard cell library plays for the authors.
// Given those constants the per-module numbers follow from the same
// configuration parameters the simulator uses (N_cu, N_u, N_SCM, SRAM
// sizes), so design-space ablations (harness `scaling` experiment) get
// consistent area/power alongside their cycle counts.
package energy

// Technology and component constants (TSMC 40 nm GP, 1 GHz).
const (
	// SRAMAreaPerByte is single-ported SRAM area (mm²/byte).
	SRAMAreaPerByte = 1.3e-6
	// LUTPortMultiplier inflates the SCM lookup-table SRAM for the
	// heavy banking that serves N_u parallel lookups per cycle.
	LUTPortMultiplier = 8.0
	// CUArea is one CPM compute unit (f16 multiply-accumulate + control).
	CUArea = 0.0105
	// AdderArea is one f16 adder of the SCM reduction tree.
	AdderArea = 0.0012
	// CPMCtrlArea covers the CPM's top-|W| unit and sequencing.
	CPMCtrlArea = 0.077
	// EFMLogicArea covers the unpacker and the two memory readers.
	EFMLogicArea = 0.144
	// SCMCtrlArea covers one SCM's P-heap comparators and control.
	SCMCtrlArea = 0.0599
	// MAICAMArea is the MAI's associative outstanding-request table.
	MAICAMArea = 0.12
	// MAIBufBytes is the MAI's 64 reservation buffers of 64 B.
	MAIBufBytes = 64 * 64
	// MAIArbArea is the MAI response arbiter.
	MAIArbArea = 0.0395

	// Peak power constants (W).
	CUPower       = 0.003  // one compute unit at full rate
	AdderPower    = 0.0008 // one reduction-tree adder
	CodebookPower = 0.07   // codebook SRAM at 2·N_cu B/cycle
	CPMCtrlPower  = 0.033
	EVBPower      = 0.9 // encoded vector buffers at line rate
	EFMLogicPower = 0.165
	LUTPower      = 0.14 // one SCM's LUT SRAM at N_u lookups/cycle
	SCMTopKPower  = 0.047
	MAIPower      = 0.147
	IdleFraction  = 0.15  // leakage + clock tree as a fraction of peak
	DRAMPJPerByte = 150.0 // off-chip DRAM access energy (reported separately)
)

// Measured baseline powers from the paper (Section V-C).
const (
	ScaNNCPUPowerW = 116.0
	FaissCPUPowerW = 139.0
	GPUPowerW      = 151.8
)

// Die sizes and nodes of the evaluated CPU and GPU (Section V-C).
const (
	CPUDieMM2  = 325.4
	CPUNodeNM  = 14.0
	GPUDieMM2  = 815.0
	GPUNodeNM  = 12.0
	ANNANodeNM = 40.0
)

// HWShape is the subset of the accelerator configuration the silicon
// model needs.
type HWShape struct {
	NCU, NU, NSCM int
	// CodebookBytes is the codebook SRAM (2·k*·D).
	CodebookBytes int64
	// LUTBytes is ONE copy of one SCM's lookup tables (2·k*·M).
	LUTBytes int64
	// TopKEntries is the top-k unit capacity (k).
	TopKEntries int
	// EVBBytes is ONE copy of the encoded vector buffer.
	EVBBytes int64
}

// PaperShape is the evaluated design point behind Table I: N_cu=96,
// N_u=64, N_SCM=16, 64 KB codebook, 32 KB LUT, k=1000, 1 MB EVB.
func PaperShape() HWShape {
	return HWShape{
		NCU: 96, NU: 64, NSCM: 16,
		CodebookBytes: 64 << 10,
		LUTBytes:      32 << 10,
		TopKEntries:   1000,
		EVBBytes:      1 << 20,
	}
}

// Module is one row of Table I.
type Module struct {
	Name    string
	AreaMM2 float64
	PeakW   float64
}

// Breakdown is the full Table I: per-module and total silicon cost.
type Breakdown struct {
	CPM, EFM, SCMs, MAI Module
	TotalArea, TotalW   float64
	// NSCM is the SCM count aggregated in the SCMs row.
	NSCM int
}

// Model computes the Table I breakdown for a hardware shape.
func Model(s HWShape) Breakdown {
	topkBytes := int64(s.TopKEntries) * 5 // 3 B ID + 2 B score

	cpm := Module{
		Name: "Codebook/Cluster Processing Module",
		AreaMM2: float64(s.CodebookBytes)*SRAMAreaPerByte +
			float64(s.NCU)*CUArea + CPMCtrlArea,
		PeakW: float64(s.NCU)*CUPower + CodebookPower + CPMCtrlPower,
	}
	efm := Module{
		Name: "Encoded Vector Fetch Module",
		// Two EVB copies for double buffering.
		AreaMM2: 2*float64(s.EVBBytes)*SRAMAreaPerByte + EFMLogicArea,
		PeakW:   EVBPower + EFMLogicPower,
	}
	scmOne := Module{
		// Two LUT copies (double buffered), banked for N_u lookups;
		// two top-k buffer copies; N_u-1 adder tree; P-heap control.
		AreaMM2: 2*float64(s.LUTBytes)*SRAMAreaPerByte*LUTPortMultiplier +
			2*float64(topkBytes)*SRAMAreaPerByte +
			float64(s.NU-1)*AdderArea + SCMCtrlArea,
		PeakW: LUTPower + float64(s.NU-1)*AdderPower + SCMTopKPower,
	}
	scms := Module{
		Name:    "Similarity Computation Module",
		AreaMM2: float64(s.NSCM) * scmOne.AreaMM2,
		PeakW:   float64(s.NSCM) * scmOne.PeakW,
	}
	mai := Module{
		Name:    "Memory Access Interface (MAI)",
		AreaMM2: MAICAMArea + MAIBufBytes*SRAMAreaPerByte + MAIArbArea,
		PeakW:   MAIPower,
	}
	b := Breakdown{CPM: cpm, EFM: efm, SCMs: scms, MAI: mai, NSCM: s.NSCM}
	b.TotalArea = cpm.AreaMM2 + efm.AreaMM2 + scms.AreaMM2 + mai.AreaMM2
	b.TotalW = cpm.PeakW + efm.PeakW + scms.PeakW + mai.PeakW
	return b
}

// EffectiveAreaRatio returns how much larger a die at a finer node is
// than ANNA once both are normalised to 40 nm (the paper's "effectively
// 151×/517× larger" comparison).
func EffectiveAreaRatio(dieMM2, nodeNM, annaMM2 float64) float64 {
	scale := (ANNANodeNM / nodeNM) * (ANNANodeNM / nodeNM)
	return dieMM2 * scale / annaMM2
}

// Activity summarises a simulated run for energy accounting; the harness
// fills it from an anna.Result.
type Activity struct {
	// MakespanSec is the run's wall-clock duration.
	MakespanSec float64
	// CPMBusySec is the CPM's busy time.
	CPMBusySec float64
	// SCMBusySec is the SUM of all SCMs' busy time.
	SCMBusySec float64
	// MemBusySec is the memory channel's busy time (EFM + MAI activity).
	MemBusySec float64
	// TrafficBytes is total off-chip traffic (DRAM energy, reported
	// separately from chip energy).
	TrafficBytes int64
}

// EnergyBreakdown is the per-module share of a run's chip energy.
type EnergyBreakdown struct {
	CPMJ, SCMJ, MemJ, IdleJ float64
}

// Total returns the summed chip energy.
func (e EnergyBreakdown) Total() float64 { return e.CPMJ + e.SCMJ + e.MemJ + e.IdleJ }

// ChipEnergy returns the accelerator's energy in joules for a run:
// per-module peak power during busy time plus IdleFraction of peak
// while idle. DRAM energy is excluded (see DRAMEnergy).
func ChipEnergy(b Breakdown, a Activity) float64 {
	return ChipEnergyBreakdown(b, a).Total()
}

// ChipEnergyBreakdown splits the run's chip energy by module class:
// CPM active, SCM active (summed over units), EFM+MAI active during
// memory traffic, and idle leakage across everything.
func ChipEnergyBreakdown(b Breakdown, a Activity) EnergyBreakdown {
	nSCM := float64(b.NSCM)
	if nSCM < 1 {
		nSCM = 1
	}
	perSCMW := b.SCMs.PeakW / nSCM

	// SCMBusySec is summed across SCMs, so it multiplies per-SCM power.
	out := EnergyBreakdown{
		CPMJ: b.CPM.PeakW * a.CPMBusySec,
		SCMJ: perSCMW * a.SCMBusySec,
		MemJ: (b.EFM.PeakW + b.MAI.PeakW) * a.MemBusySec,
	}
	// Idle leakage: each module dissipates IdleFraction of its peak
	// during the part of the makespan it is not active.
	out.IdleJ = IdleFraction * (b.CPM.PeakW*maxf(0, a.MakespanSec-a.CPMBusySec) +
		perSCMW*maxf(0, nSCM*a.MakespanSec-a.SCMBusySec) +
		(b.EFM.PeakW+b.MAI.PeakW)*maxf(0, a.MakespanSec-a.MemBusySec))
	return out
}

// DRAMEnergy returns the off-chip memory energy of a run in joules.
func DRAMEnergy(a Activity) float64 {
	return float64(a.TrafficBytes) * DRAMPJPerByte * 1e-12
}

// BaselineEnergy returns energy in joules for a software run: the
// paper's measured package power times the runtime.
func BaselineEnergy(powerW, seconds float64) float64 { return powerW * seconds }

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
