package energy

import (
	"math"
	"testing"
)

func within(got, want, tolFrac float64) bool {
	return math.Abs(got-want) <= want*tolFrac
}

// The component model must reproduce Table I of the paper from the
// evaluated design point.
func TestModelReproducesTableI(t *testing.T) {
	b := Model(PaperShape())
	cases := []struct {
		name     string
		gotArea  float64
		wantArea float64
		gotW     float64
		wantW    float64
	}{
		{"CPM", b.CPM.AreaMM2, 1.17, b.CPM.PeakW, 0.391},
		{"EFM", b.EFM.AreaMM2, 2.87, b.EFM.PeakW, 1.065},
		{"SCMx16", b.SCMs.AreaMM2, 13.30, b.SCMs.PeakW, 3.795},
		{"MAI", b.MAI.AreaMM2, 0.17, b.MAI.PeakW, 0.147},
		{"Total", b.TotalArea, 17.51, b.TotalW, 5.398},
	}
	for _, c := range cases {
		if !within(c.gotArea, c.wantArea, 0.05) {
			t.Errorf("%s area = %.3f mm², paper %.2f", c.name, c.gotArea, c.wantArea)
		}
		if !within(c.gotW, c.wantW, 0.05) {
			t.Errorf("%s power = %.3f W, paper %.3f", c.name, c.gotW, c.wantW)
		}
	}
	if b.NSCM != 16 {
		t.Errorf("NSCM = %d", b.NSCM)
	}
}

func TestTwelveInstances(t *testing.T) {
	b := Model(PaperShape())
	// Table I: 12x ANNA = 210.12 mm², 64.776 W.
	if got := 12 * b.TotalArea; !within(got, 210.12, 0.05) {
		t.Errorf("12x area = %.2f", got)
	}
	if got := 12 * b.TotalW; !within(got, 64.776, 0.05) {
		t.Errorf("12x power = %.3f", got)
	}
}

func TestEffectiveAreaRatios(t *testing.T) {
	b := Model(PaperShape())
	// Paper: CPU effectively 151x larger, GPU 517x larger.
	cpu := EffectiveAreaRatio(CPUDieMM2, CPUNodeNM, b.TotalArea)
	gpu := EffectiveAreaRatio(GPUDieMM2, GPUNodeNM, b.TotalArea)
	if !within(cpu, 151, 0.03) {
		t.Errorf("CPU ratio = %.1f, paper 151", cpu)
	}
	if !within(gpu, 517, 0.03) {
		t.Errorf("GPU ratio = %.1f, paper 517", gpu)
	}
}

func TestModelScalesWithShape(t *testing.T) {
	base := Model(PaperShape())

	bigger := PaperShape()
	bigger.NSCM = 32
	b2 := Model(bigger)
	if b2.SCMs.AreaMM2 <= base.SCMs.AreaMM2 || b2.TotalW <= base.TotalW {
		t.Error("doubling NSCM did not grow SCM area/power")
	}
	if !within(b2.SCMs.AreaMM2, 2*base.SCMs.AreaMM2, 1e-9) {
		t.Error("SCM area not linear in NSCM")
	}

	smallEVB := PaperShape()
	smallEVB.EVBBytes = 1 << 18
	if Model(smallEVB).EFM.AreaMM2 >= base.EFM.AreaMM2 {
		t.Error("shrinking EVB did not shrink EFM")
	}
}

func TestChipEnergyAccounting(t *testing.T) {
	b := Model(PaperShape())
	// Fully busy for 1 s: energy equals total peak power (no idle).
	full := Activity{MakespanSec: 1, CPMBusySec: 1, SCMBusySec: 16, MemBusySec: 1}
	if got := ChipEnergy(b, full); !within(got, b.TotalW, 0.01) {
		t.Errorf("fully-busy energy = %.3f J, want %.3f", got, b.TotalW)
	}
	// Fully idle for 1 s: IdleFraction of peak.
	idle := Activity{MakespanSec: 1}
	if got := ChipEnergy(b, idle); !within(got, IdleFraction*b.TotalW, 0.01) {
		t.Errorf("idle energy = %.3f J, want %.3f", got, IdleFraction*b.TotalW)
	}
	// Monotone in activity.
	half := Activity{MakespanSec: 1, CPMBusySec: 0.5, SCMBusySec: 8, MemBusySec: 0.5}
	e := ChipEnergy(b, half)
	if e <= ChipEnergy(b, idle) || e >= ChipEnergy(b, full) {
		t.Errorf("half-busy energy %.3f out of order", e)
	}
	// Paper: actual power 2-3 W vs 5.4 peak; a realistic busy mix should
	// land in that band.
	typical := Activity{MakespanSec: 1, CPMBusySec: 0.3, SCMBusySec: 8, MemBusySec: 0.9}
	if p := ChipEnergy(b, typical); p < 1.5 || p > 4.5 {
		t.Errorf("typical power %.2f W outside the paper's 2-3 W band (±)", p)
	}
}

func TestEnergyBreakdownSumsToTotal(t *testing.T) {
	b := Model(PaperShape())
	a := Activity{MakespanSec: 2, CPMBusySec: 0.5, SCMBusySec: 12, MemBusySec: 1.5}
	eb := ChipEnergyBreakdown(b, a)
	if eb.CPMJ <= 0 || eb.SCMJ <= 0 || eb.MemJ <= 0 || eb.IdleJ <= 0 {
		t.Errorf("breakdown has non-positive parts: %+v", eb)
	}
	if got, want := eb.Total(), ChipEnergy(b, a); math.Abs(got-want) > 1e-12 {
		t.Errorf("Total %v != ChipEnergy %v", got, want)
	}
}

func TestDRAMEnergy(t *testing.T) {
	a := Activity{TrafficBytes: 1 << 30}
	want := float64(1<<30) * DRAMPJPerByte * 1e-12
	if got := DRAMEnergy(a); got != want {
		t.Errorf("DRAMEnergy = %v, want %v", got, want)
	}
}

func TestBaselineEnergy(t *testing.T) {
	if got := BaselineEnergy(FaissCPUPowerW, 2); got != 278 {
		t.Errorf("BaselineEnergy = %v", got)
	}
	// Paper's power ordering: GPU > Faiss CPU > ScaNN CPU.
	if !(GPUPowerW > FaissCPUPowerW && FaissCPUPowerW > ScaNNCPUPowerW) {
		t.Error("baseline power constants out of order")
	}
}

func TestEnergyEfficiencyHeadline(t *testing.T) {
	// Section V headline: ≥97x energy efficiency vs CPU/GPU. With ANNA at
	// ~3 W busy and the CPU at 116 W, ANNA only needs to be no more than
	// ~38x SLOWER to break even; it is in fact faster, so the efficiency
	// gain must exceed 97x whenever ANNA's runtime is <= the baseline's.
	b := Model(PaperShape())
	annaBusy := Activity{MakespanSec: 1, CPMBusySec: 0.3, SCMBusySec: 8, MemBusySec: 0.9}
	annaE := ChipEnergy(b, annaBusy)
	cpuE := BaselineEnergy(ScaNNCPUPowerW, 1) // same runtime
	if ratio := cpuE / annaE; ratio < 30 {
		t.Errorf("equal-runtime efficiency ratio %.1f implausibly low", ratio)
	}
}
