package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"anna/internal/cluster/faultproxy"
	"anna/internal/qos"
)

// faultedShardSet builds a router whose every shard sits behind its own
// faultproxy, returning the proxies for scripting.
func faultedShardSet(t *testing.T, handlers []http.Handler, opt ShardOptions) (*Router, []*faultproxy.Proxy) {
	t.Helper()
	bases := make([]string, len(handlers))
	proxies := make([]*faultproxy.Proxy, len(handlers))
	for i, h := range handlers {
		origin := httptest.NewServer(h)
		t.Cleanup(origin.Close)
		p := faultproxy.New(origin.URL, faultproxy.Options{})
		url, done := p.Start()
		t.Cleanup(done)
		bases[i] = url
		proxies[i] = p
	}
	rt, err := New(Config{Shards: bases, Shard: opt, DefaultK: 10, DefaultW: 32})
	if err != nil {
		t.Fatal(err)
	}
	return rt, proxies
}

// A burst of injected 5xx on one shard is absorbed by retries: full
// coverage, no partial header, no client-visible error.
func TestRouterRetriesAbsorbInjected5xx(t *testing.T) {
	rt, proxies := faultedShardSet(t, []http.Handler{
		staticSearchShard([]searchResult{{ID: 1, Score: 0.9}}),
		staticSearchShard([]searchResult{{ID: 2, Score: 0.8}}),
	}, fastOpts())
	proxies[0].Script(
		faultproxy.Fault{Mode: faultproxy.Err5xx},
		faultproxy.Fault{Mode: faultproxy.Err5xx},
	)

	rec, resp := postSearch(t, rt.Handler(), searchRequest{Queries: [][]float32{{0}}, K: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("status=%d", rec.Code)
	}
	if got := rec.Header().Get(HeaderPartial); got != "" {
		t.Fatalf("retryable faults degraded coverage: %s=%q", HeaderPartial, got)
	}
	if len(resp.Results[0]) != 2 {
		t.Fatalf("%d results, want both shards merged", len(resp.Results[0]))
	}
	if rt.shards[0].Stats().Retries.Load() == 0 {
		t.Fatal("no retry recorded for the faulted shard")
	}
}

// A truncated response (shard dies mid-write) is a failed attempt, not
// a half-decoded result; the retry gets the full answer.
func TestRouterRetriesRecoverFromTruncation(t *testing.T) {
	rt, proxies := faultedShardSet(t, []http.Handler{
		staticSearchShard([]searchResult{{ID: 1, Score: 0.9}}),
		staticSearchShard([]searchResult{{ID: 2, Score: 0.8}}),
	}, fastOpts())
	proxies[1].Script(faultproxy.Fault{Mode: faultproxy.Truncate, TruncateAt: 3})

	rec, resp := postSearch(t, rt.Handler(), searchRequest{Queries: [][]float32{{0}}, K: 4})
	if rec.Code != http.StatusOK || rec.Header().Get(HeaderPartial) != "" {
		t.Fatalf("status=%d partial=%q", rec.Code, rec.Header().Get(HeaderPartial))
	}
	if len(resp.Results[0]) != 2 {
		t.Fatalf("%d results after truncation retry", len(resp.Results[0]))
	}
}

// A hung connection (Drop) is cut by the per-attempt deadline; enough
// of them trip the breaker, and the shard drops out of coverage while
// queries keep answering partially — the full degradation chain.
func TestRouterDegradesThroughTimeoutsToBreaker(t *testing.T) {
	opt := ShardOptions{
		Timeout:          100 * time.Millisecond,
		Retries:          -1,
		Backoff:          qos.Backoff{Base: time.Millisecond, Max: time.Millisecond, Factor: 1, Jitter: 0},
		RetryBudgetRatio: 5,
		RetryBudgetBurst: 100,
		BreakerFailures:  2,
		BreakerCooldown:  time.Hour,
	}
	rt, proxies := faultedShardSet(t, []http.Handler{
		staticSearchShard([]searchResult{{ID: 1, Score: 0.9}}),
		staticSearchShard([]searchResult{{ID: 2, Score: 0.8}}),
	}, opt)
	// Shard 1 stops answering entirely.
	for i := 0; i < 50; i++ {
		proxies[1].Script(faultproxy.Fault{Mode: faultproxy.Drop})
	}

	h := rt.Handler()
	var partials int
	for i := 0; i < 4; i++ {
		rec, resp := postSearch(t, h, searchRequest{Queries: [][]float32{{0}}, K: 4})
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d failed with %d — degradation must not 5xx", i, rec.Code)
		}
		if rec.Header().Get(HeaderPartial) == "shards=1/2" {
			partials++
			if len(resp.Results[0]) != 1 {
				t.Fatalf("partial response carries %d results", len(resp.Results[0]))
			}
		}
	}
	if partials == 0 {
		t.Fatal("no partial responses while a shard was black-holed")
	}
	if rt.shards[1].Breaker().State() != "open" {
		t.Fatalf("breaker=%s after sustained timeouts", rt.shards[1].Breaker().State())
	}
	// With the breaker open, queries stop paying the 100ms timeout for
	// the dead shard: the next query fast-fails it locally.
	start := time.Now()
	rec, _ := postSearch(t, h, searchRequest{Queries: [][]float32{{0}}, K: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-breaker query: %d", rec.Code)
	}
	if elapsed := time.Since(start); elapsed > 90*time.Millisecond {
		t.Fatalf("open breaker still paid the timeout (%v)", elapsed)
	}
	if rt.shards[1].Stats().FastFails.Load() == 0 {
		t.Fatal("no breaker fast-fail recorded")
	}
}

// An injected delay on a shard past its hedge threshold triggers a
// hedged request, and the fast lane's answer wins.
func TestRouterHedgeFiresOnInjectedDelay(t *testing.T) {
	opt := fastOpts()
	opt.Timeout = 5 * time.Second
	opt.HedgeAfter = 30 * time.Millisecond
	opt.HedgeMax = 40 * time.Millisecond
	rt, proxies := faultedShardSet(t, []http.Handler{
		staticSearchShard([]searchResult{{ID: 1, Score: 0.9}}),
	}, opt)
	proxies[0].Script(faultproxy.Fault{Mode: faultproxy.Delay, Latency: 2 * time.Second})

	start := time.Now()
	rec, _ := postSearch(t, rt.Handler(), searchRequest{Queries: [][]float32{{0}}, K: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("status=%d", rec.Code)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not rescue the delayed shard (%v)", elapsed)
	}
	if rt.shards[0].Stats().Hedges.Load() == 0 {
		t.Fatal("no hedge recorded")
	}
}
