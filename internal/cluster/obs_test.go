package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"anna"
	"anna/internal/cluster/faultproxy"
	"anna/internal/slo"
	"anna/internal/trace"
)

// postSearchTagged posts a search with an explicit X-Request-ID, which
// forces a router-side trace.
func postSearchTagged(t *testing.T, h http.Handler, id string, req searchRequest) *httptest.ResponseRecorder {
	t.Helper()
	b, _ := json.Marshal(req)
	r := httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(b))
	r.Header.Set(HeaderRequestID, id)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

// routerTrace fetches one trace from the router's own debug endpoint.
func routerTrace(t *testing.T, h http.Handler, id string) (tr *trace.Trace, shardTraces map[string]json.RawMessage) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Trace       *trace.Trace               `json:"trace"`
		ShardTraces map[string]json.RawMessage `json:"shard_traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Trace, resp.ShardTraces
}

// hopsFor filters a trace's hops to one shard.
func hopsFor(tr *trace.Trace, shard int) []trace.Hop {
	var out []trace.Hop
	for _, h := range tr.Hops {
		if h.Shard == shard {
			out = append(out, h)
		}
	}
	return out
}

// A tagged request that rides a retry must show both attempts: the
// failed primary and the winning retry, attributed to the same shard.
func TestTraceRecordsRetryHops(t *testing.T) {
	rt, proxies := faultedShardSet(t, []http.Handler{
		staticSearchShard([]searchResult{{ID: 1, Score: 0.9}}),
		staticSearchShard([]searchResult{{ID: 2, Score: 0.8}}),
	}, fastOpts())
	t.Cleanup(rt.Close)
	proxies[0].Script(faultproxy.Fault{Mode: faultproxy.Err5xx})
	h := rt.Handler()

	rec := postSearchTagged(t, h, "retry-trace-1", searchRequest{Queries: [][]float32{{0}}, K: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("status=%d", rec.Code)
	}
	if got := rec.Header().Get(HeaderRequestID); got != "retry-trace-1" {
		t.Fatalf("request ID not echoed: %q", got)
	}

	tr, _ := routerTrace(t, h, "retry-trace-1")
	h0 := hopsFor(tr, 0)
	if len(h0) != 2 {
		t.Fatalf("shard 0 hops = %+v, want failed primary + winning retry", h0)
	}
	if h0[0].Kind != "primary" || h0[0].Winner || h0[0].Status != http.StatusBadGateway {
		t.Errorf("first shard-0 hop %+v, want non-winning primary with 502", h0[0])
	}
	if h0[1].Kind != "retry" || !h0[1].Winner || h0[1].Attempt != 2 {
		t.Errorf("second shard-0 hop %+v, want winning retry attempt 2", h0[1])
	}
	h1 := hopsFor(tr, 1)
	if len(h1) != 1 || h1[0].Kind != "primary" || !h1[0].Winner {
		t.Errorf("shard 1 hops %+v, want one winning primary", h1)
	}
}

// A hedged race whose primary is canceled must record exactly one
// winning hop for the shard — the hedge — and no span for the loser.
func TestHedgeLoserRecordsExactlyOneWinningHop(t *testing.T) {
	opt := fastOpts()
	opt.Timeout = 2 * time.Second // primary must be canceled, not timed out
	opt.HedgeAfter = 10 * time.Millisecond
	opt.HedgeMax = 10 * time.Millisecond
	rt, proxies := faultedShardSet(t, []http.Handler{
		staticSearchShard([]searchResult{{ID: 1, Score: 0.9}}),
	}, opt)
	t.Cleanup(rt.Close)
	// The primary hangs far past the hedge delay; the hedge passes
	// cleanly and wins while the primary is still in flight.
	proxies[0].Script(faultproxy.Fault{Mode: faultproxy.Delay, Latency: time.Second})

	rec := postSearchTagged(t, rt.Handler(), "hedge-trace-1", searchRequest{Queries: [][]float32{{0}}, K: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("status=%d", rec.Code)
	}
	tr, _ := routerTrace(t, rt.Handler(), "hedge-trace-1")
	h0 := hopsFor(tr, 0)
	if len(h0) != 1 {
		t.Fatalf("shard 0 hops = %+v, want exactly the winning hedge (no orphan loser span)", h0)
	}
	if h0[0].Kind != "hedge" || !h0[0].Winner || h0[0].Attempt != 1 {
		t.Errorf("hop %+v, want winning hedge sharing attempt 1", h0[0])
	}
	if rt.shards[0].Stats().Hedges.Load() != 1 {
		t.Errorf("hedges = %d, want 1", rt.shards[0].Stats().Hedges.Load())
	}
}

// A breaker fast-fail sends nothing, but the refusal must still appear
// as an attributed hop in the trace.
func TestBreakerFastFailRecordsAttributedHop(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	t.Cleanup(origin.Close)
	opt := fastOpts()
	opt.Retries = -1
	opt.BreakerFailures = 1
	opt.BreakerCooldown = time.Minute
	s := NewShard(3, origin.URL, opt)

	if _, _, err := s.Do(context.Background(), http.MethodGet, "/search", nil, true); err != nil {
		t.Fatalf("first request should surface the 500, not a transport error: %v", err)
	}
	if s.Breaker().State() != "open" {
		t.Fatalf("breaker state %s after failure, want open", s.Breaker().State())
	}

	tr := trace.New("fastfail-1")
	ctx := trace.NewContext(context.Background(), tr)
	if _, _, err := s.Do(ctx, http.MethodGet, "/search", nil, true); !errors.Is(err, ErrShardDown) {
		t.Fatalf("err = %v, want ErrShardDown", err)
	}
	if len(tr.Hops) != 1 {
		t.Fatalf("hops = %+v, want one fastfail hop", tr.Hops)
	}
	h := tr.Hops[0]
	if h.Shard != 3 || h.Kind != "fastfail" || h.Breaker != "open" || h.Err == "" {
		t.Errorf("fastfail hop %+v, want shard 3, breaker open, error set", h)
	}
}

// rvecs returns n random dim-d vectors.
func rvecs(seed int64, n, d int) [][]float32 {
	rnd := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, d)
		for j := range v {
			v[j] = rnd.Float32()
		}
		out[i] = v
	}
	return out
}

// annaShard builds a real in-process annaserve shard.
func annaShard(t *testing.T, seed int64) http.Handler {
	t.Helper()
	const dim = 4
	idx, err := anna.BuildIndex(rvecs(seed, 120, dim), anna.L2, anna.BuildOptions{
		NClusters: 4, M: 2, Ks: 16, TrainIters: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := anna.NewServer(idx)
	srv.ScrapeEvery = -1 // no background scraper in the shard under test
	t.Cleanup(srv.Close)
	return srv.Handler()
}

// The acceptance path: real annaserve shards behind faultproxies, a
// delay injected on one shard, and the router's stitched trace must
// attribute the query's latency to that shard's hop — with the
// shard-side traces joined under the same ID and naming their parent
// hop.
func TestStitchedTraceAttributesDelayedShard(t *testing.T) {
	const delay = 150 * time.Millisecond
	opt := fastOpts()
	opt.Timeout = 2 * time.Second
	rt, proxies := faultedShardSet(t, []http.Handler{
		annaShard(t, 1),
		annaShard(t, 2),
	}, opt)
	t.Cleanup(rt.Close)
	// Shard 0 rides a retry (5xx then clean); shard 1 is slow.
	proxies[0].Script(faultproxy.Fault{Mode: faultproxy.Err5xx})
	proxies[1].Script(faultproxy.Fault{Mode: faultproxy.Delay, Latency: delay})
	h := rt.Handler()

	const id = "stitch-1"
	rec := postSearchTagged(t, h, id, searchRequest{Queries: [][]float32{{0.1, 0.2, 0.3, 0.4}}, K: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("status=%d: %s", rec.Code, rec.Body.String())
	}

	tr, shardTraces := routerTrace(t, h, id)
	if tr.ID != id {
		t.Fatalf("trace id %q", tr.ID)
	}
	// The delayed shard's winning hop carries the injected latency; the
	// healthy shard's hops are far quicker, so the breakdown attributes
	// the query's latency where it belongs.
	var slow, fast time.Duration
	for _, hp := range hopsFor(tr, 1) {
		if hp.Winner {
			slow = hp.Duration
		}
	}
	for _, hp := range hopsFor(tr, 0) {
		if hp.Winner {
			fast = hp.Duration
		}
	}
	if slow < delay {
		t.Errorf("delayed shard's winning hop took %v, want >= %v", slow, delay)
	}
	if fast >= delay {
		t.Errorf("healthy shard's winning hop took %v, want well under the %v injection", fast, delay)
	}
	// Retry spans survive into the stitched view.
	if h0 := hopsFor(tr, 0); len(h0) != 2 || h0[1].Kind != "retry" {
		t.Errorf("shard 0 hops %+v, want failed primary + retry", h0)
	}
	// Both shard-side traces stitched in, keyed by shard index, each a
	// child of its hop (parent "shard<i>") under the same trace ID.
	for _, idx := range []int{0, 1} {
		raw, ok := shardTraces[strconv.Itoa(idx)]
		if !ok {
			t.Fatalf("no stitched trace for shard %d (got %v)", idx, shardTraces)
		}
		var st trace.Trace
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("shard %d stitched trace: %v", idx, err)
		}
		if st.ID != id {
			t.Errorf("shard %d trace id %q, want %q", idx, st.ID, id)
		}
		if want := fmt.Sprintf("shard%d", idx); st.Parent != want {
			t.Errorf("shard %d trace parent %q, want %q", idx, st.Parent, want)
		}
	}
}

// The latency SLO must fire under sustained injected delay and clear
// after the fault does: ok -> firing -> ok, end to end through the
// router's scraper and burn-rate engine.
func TestLatencySLOFiresAndClears(t *testing.T) {
	opt := fastOpts()
	opt.Timeout = 2 * time.Second
	handlers := []http.Handler{staticSearchShard([]searchResult{{ID: 1, Score: 0.9}})}
	bases := make([]string, len(handlers))
	proxies := make([]*faultproxy.Proxy, len(handlers))
	for i, hh := range handlers {
		origin := httptest.NewServer(hh)
		t.Cleanup(origin.Close)
		// Rand pinned to 0 makes SetDefault(f, 1) inject deterministically.
		p := faultproxy.New(origin.URL, faultproxy.Options{Rand: func() float64 { return 0 }})
		url, done := p.Start()
		t.Cleanup(done)
		bases[i] = url
		proxies[i] = p
	}
	rt, err := New(Config{
		Shards: bases, Shard: opt, DefaultK: 10, DefaultW: 32,
		ScrapeEvery:   20 * time.Millisecond,
		SLOLatencyP99: 40 * time.Millisecond,
		SLOOptions: slo.Options{
			FastShort: 100 * time.Millisecond, FastLong: 300 * time.Millisecond,
			SlowShort: 200 * time.Millisecond, SlowLong: 600 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	h := rt.Handler()

	state := func() slo.State {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/alerts", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/alerts status %d", rec.Code)
		}
		var resp struct {
			SLOs []slo.Alert `json:"slos"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		for _, a := range resp.SLOs {
			if a.SLO == "latency_p99" {
				return a.State
			}
		}
		t.Fatal("latency_p99 SLO not in /alerts")
		return ""
	}
	drive := func(wantState slo.State, deadline time.Duration) bool {
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			postSearch(t, h, searchRequest{Queries: [][]float32{{0}}, K: 4})
			if state() == wantState {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
		return false
	}

	// Healthy phase: sub-bound latencies, alert stays ok.
	if !drive(slo.OK, 2*time.Second) {
		t.Fatalf("healthy phase never reported ok (state %s)", state())
	}
	// Sustained fault: every request delayed past the 40ms bound.
	proxies[0].SetDefault(faultproxy.Fault{Mode: faultproxy.Delay, Latency: 80 * time.Millisecond}, 1)
	if !drive(slo.Firing, 10*time.Second) {
		t.Fatalf("latency SLO never fired under sustained delay (state %s)", state())
	}
	// Fault clears: the windows drain and the alert must clear too.
	proxies[0].SetDefault(faultproxy.Fault{}, 0)
	if !drive(slo.OK, 10*time.Second) {
		t.Fatalf("latency SLO never cleared after the fault (state %s)", state())
	}
}
