// Package faultproxy is a fault-injecting HTTP reverse proxy — the
// network sibling of internal/wal/faultfs. It sits between the router
// and a shard and corrupts the conversation in the ways real networks
// and dying processes do: added latency, hung connections, 5xx
// rewrites, and responses truncated mid-body. The cluster tests drive
// it two ways: scripted (the next N requests fail like this — exact,
// reproducible sequences) and probabilistic (every request fails with
// probability p under a seeded RNG) for soak-style runs.
//
// The proxy forwards verbatim otherwise: method, path, query, headers
// and body pass through, so a shard behind a Pass-mode proxy is
// indistinguishable from the shard itself.
package faultproxy

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is one fault flavor.
type Mode int

const (
	// Pass forwards the request unharmed.
	Pass Mode = iota
	// Delay forwards after sleeping Fault.Latency.
	Delay
	// Drop never answers: the connection hangs until the client's
	// deadline cuts it (a dead switch port, a GC'd-to-death process).
	Drop
	// Err5xx discards the proxied response and answers Fault.Status
	// (default 502) — an overloaded or crash-looping shard.
	Err5xx
	// Truncate forwards the response's status and declared length but
	// cuts the body after Fault.TruncateAt bytes and kills the
	// connection — a shard dying mid-write.
	Truncate
)

func (m Mode) String() string {
	switch m {
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Err5xx:
		return "err5xx"
	case Truncate:
		return "truncate"
	}
	return "pass"
}

// Fault describes one injected failure.
type Fault struct {
	Mode Mode
	// Latency is the added delay for Delay mode.
	Latency time.Duration
	// Status is the rewritten status for Err5xx mode (default 502).
	Status int
	// TruncateAt is how many body bytes Truncate mode delivers before
	// cutting the connection (default 0: header only).
	TruncateAt int
}

// Options configure a Proxy.
type Options struct {
	// Client forwards requests to the target (default http.Client with
	// no timeout — the router's deadlines are under test, not ours).
	Client *http.Client
	// Rand drives probabilistic injection, returning uniform [0, 1).
	// Nil disables the probabilistic path (scripted faults still fire)
	// — deterministic by default, seed it explicitly for soak runs.
	Rand func() float64
}

// Proxy is the fault-injecting reverse proxy for one target. Use it as
// an http.Handler (httptest.NewServer(p) in tests, or p.Start()).
type Proxy struct {
	target string
	client *http.Client
	rnd    func() float64

	mu       sync.Mutex
	script   []Fault // consumed FIFO, one per request
	deflt    Fault   // applied when the script is empty...
	defltP   float64 // ...with this probability
	injected [5]atomic.Uint64
	requests atomic.Uint64

	stop     chan struct{} // closed on shutdown; releases Drop handlers
	stopOnce sync.Once
}

// New returns a pass-through proxy for the shard at target (base URL).
func New(target string, opt Options) *Proxy {
	c := opt.Client
	if c == nil {
		c = &http.Client{}
	}
	return &Proxy{target: target, client: c, rnd: opt.Rand, stop: make(chan struct{})}
}

// Script enqueues faults applied to the next requests, one each, in
// order, ahead of any probabilistic default.
func (p *Proxy) Script(faults ...Fault) {
	p.mu.Lock()
	p.script = append(p.script, faults...)
	p.mu.Unlock()
}

// SetDefault makes every request beyond the script suffer f with
// probability prob (requires Options.Rand; prob 0 restores pass-through).
func (p *Proxy) SetDefault(f Fault, prob float64) {
	p.mu.Lock()
	p.deflt, p.defltP = f, prob
	p.mu.Unlock()
}

// Injected returns how many faults of mode m have fired.
func (p *Proxy) Injected(m Mode) uint64 { return p.injected[m].Load() }

// Requests returns how many requests the proxy has seen.
func (p *Proxy) Requests() uint64 { return p.requests.Load() }

// Start wraps the proxy in an owned test server on 127.0.0.1 and
// returns its base URL; Close shuts it down.
func (p *Proxy) Start() (url string, shutdown func()) {
	ts := httptest.NewServer(p)
	return ts.URL, func() {
		// Release any parked Drop handlers first: httptest's Close
		// waits for in-flight handlers, and a dropped connection's
		// handler blocks until told otherwise.
		p.stopOnce.Do(func() { close(p.stop) })
		ts.Close()
	}
}

// next picks the fault for this request.
func (p *Proxy) next() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.script) > 0 {
		f := p.script[0]
		p.script = p.script[1:]
		return f
	}
	if p.defltP > 0 && p.rnd != nil && p.rnd() < p.defltP {
		return p.deflt
	}
	return Fault{}
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	f := p.next()
	if f.Mode != Pass {
		p.injected[f.Mode].Add(1)
	}
	switch f.Mode {
	case Drop:
		// Drain the body so net/http starts its background connection
		// read — without it, a request carrying a body never gets its
		// context canceled when the client hangs up, and this handler
		// (and the server's Close) would block forever.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
		case <-p.stop:
		}
		return
	case Err5xx:
		status := f.Status
		if status == 0 {
			status = http.StatusBadGateway
		}
		http.Error(w, "faultproxy: injected", status)
		return
	case Delay:
		select {
		case <-time.After(f.Latency):
		case <-r.Context().Done():
			return
		}
	}

	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, "faultproxy: "+err.Error(), http.StatusInternalServerError)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, "faultproxy: upstream: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, "faultproxy: upstream body: "+err.Error(), http.StatusBadGateway)
		return
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if f.Mode == Truncate {
		// Promise the full body, deliver a prefix, cut the connection:
		// the client sees an unexpected EOF mid-read, exactly like a
		// shard crashing between two writes.
		cut := f.TruncateAt
		if cut > len(body) {
			cut = len(body)
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:cut])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler) // net/http severs the connection
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}
