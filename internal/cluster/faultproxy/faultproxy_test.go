package faultproxy

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// upstream is a well-behaved origin that echoes a fixed body and tags
// responses with the request path.
func upstream(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Origin", "real")
		fmt.Fprintf(w, "path=%s body=%s", r.URL.Path, mustRead(r.Body))
	}))
	t.Cleanup(ts.Close)
	return ts.URL
}

func mustRead(r io.Reader) string {
	b, _ := io.ReadAll(r)
	return string(b)
}

func TestPassThroughIsTransparent(t *testing.T) {
	p := New(upstream(t), Options{})
	url, done := p.Start()
	defer done()

	resp, err := http.Post(url+"/add?x=1", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Origin") != "real" {
		t.Fatalf("status=%d origin=%q", resp.StatusCode, resp.Header.Get("X-Origin"))
	}
	if got := mustRead(resp.Body); got != "path=/add body=hello" {
		t.Fatalf("body=%q", got)
	}
	if p.Requests() != 1 || p.Injected(Pass) != 0 {
		t.Fatalf("requests=%d injectedPass=%d", p.Requests(), p.Injected(Pass))
	}
}

func TestScriptedErr5xxThenRecovery(t *testing.T) {
	p := New(upstream(t), Options{})
	p.Script(Fault{Mode: Err5xx}, Fault{Mode: Err5xx, Status: http.StatusServiceUnavailable})
	url, done := p.Start()
	defer done()

	wantStatuses := []int{http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusOK}
	for i, want := range wantStatuses {
		resp, err := http.Get(url + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("request %d: status=%d want %d", i, resp.StatusCode, want)
		}
	}
	if p.Injected(Err5xx) != 2 {
		t.Fatalf("injected=%d", p.Injected(Err5xx))
	}
}

func TestDelayAddsLatency(t *testing.T) {
	p := New(upstream(t), Options{})
	p.Script(Fault{Mode: Delay, Latency: 120 * time.Millisecond})
	url, done := p.Start()
	defer done()

	start := time.Now()
	resp, err := http.Get(url + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 120*time.Millisecond {
		t.Fatalf("delayed request returned in %v", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delay corrupted the response: %d", resp.StatusCode)
	}
}

func TestDropHangsUntilClientDeadline(t *testing.T) {
	p := New(upstream(t), Options{})
	p.Script(Fault{Mode: Drop})
	url, done := p.Start()
	defer done()

	c := &http.Client{Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := c.Get(url + "/x")
	if err == nil {
		t.Fatal("dropped request answered")
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Fatal("drop returned before the client deadline")
	}
}

func TestTruncateCutsBodyMidRead(t *testing.T) {
	p := New(upstream(t), Options{})
	p.Script(Fault{Mode: Truncate, TruncateAt: 4})
	url, done := p.Start()
	defer done()

	resp, err := http.Get(url + "/q")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The status line arrives intact; the lie is in the body.
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("truncated body read cleanly")
	}
}

func TestProbabilisticDefault(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	p := New(upstream(t), Options{Rand: rng.Float64})
	p.SetDefault(Fault{Mode: Err5xx}, 0.5)
	url, done := p.Start()
	defer done()

	failed := 0
	for i := 0; i < 60; i++ {
		resp, err := http.Get(url + "/x")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusBadGateway {
			failed++
		}
	}
	// With p=0.5 over 60 draws, [15, 45] is > 5 sigma on each side.
	if failed < 15 || failed > 45 {
		t.Fatalf("%d/60 injected at p=0.5", failed)
	}
	// Script takes precedence over the default.
	p.Script(Fault{Mode: Pass})
	resp, err := http.Get(url + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatal("scripted Pass overridden by probabilistic default")
	}
	// prob 0 restores pass-through.
	p.SetDefault(Fault{}, 0)
	for i := 0; i < 20; i++ {
		resp, err := http.Get(url + "/x")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatal("fault after SetDefault(0)")
		}
	}
}
