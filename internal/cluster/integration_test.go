package cluster

// Multi-process cluster harness: three real annaserve-equivalent shard
// processes (this test binary re-exec'd, see TestMain), a scatter-gather
// Router over them, and a SIGKILL in the middle of a live add/search
// load. The assertions are the PR's acceptance criteria:
//
//   - every search answers 200 while a shard is dead (partial coverage
//     declared via X-Anna-Partial and counted in the partials metric,
//     never a 5xx while any shard survives);
//   - no WAL-acked /add is lost: after the killed shard restarts and
//     recovers from its WAL, its /admin/state bytes are bit-exact
//     against a parent-maintained mirror of the acked batches
//     (tolerating the at-most-one in-flight batch at kill time);
//   - the restarted shard rejoins and full coverage returns;
//   - router results after recovery match a single-process reference
//     merge over the mirrors.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"anna"
	"anna/internal/qos"
	"anna/internal/topk"
)

const (
	envShardDir = "ANNA_CLUSTER_SHARD_DIR"
	envAddr     = "ANNA_CLUSTER_ADDR"
	envPortFile = "ANNA_CLUSTER_PORT_FILE"
)

// TestMain doubles as the shard-process entry point: when the re-exec
// env vars are set, the test binary becomes an annaserve shard instead
// of running the test list.
func TestMain(m *testing.M) {
	if dir := os.Getenv(envShardDir); dir != "" {
		shardMain(dir, os.Getenv(envAddr), os.Getenv(envPortFile))
		return // unreachable: shardMain serves forever or exits
	}
	os.Exit(m.Run())
}

// shardMain is one shard process: recover the store in dir, serve the
// full annaserve HTTP surface, and publish the bound address through
// portFile (written atomically so the parent never reads a torn path).
func shardMain(dir, addr, portFile string) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "shard %s: %v\n", dir, err)
		os.Exit(1)
	}
	st, err := anna.OpenStore(dir, anna.StoreOptions{Sync: anna.SyncAlways})
	if err != nil {
		fail(err)
	}
	srv := anna.NewServer(st.Index())
	srv.Store = st
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	tmp := portFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		fail(err)
	}
	if err := os.Rename(tmp, portFile); err != nil {
		fail(err)
	}
	fail(http.Serve(ln, srv.Handler()))
}

// ivecs generates deterministic pseudo-random vectors (math/rand v1
// for a stable sequence given the seed).
func ivecs(seed int64, n, d int) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, d)
		for j := range v {
			v[j] = rng.Float32()
		}
		out[i] = v
	}
	return out
}

// shardProc is one managed shard process.
type shardProc struct {
	dir      string
	portFile string
	addr     string
	cmd      *exec.Cmd
}

// start launches (or relaunches) the shard process. A fixed addr pins
// the listen address across restarts so the router's base URL survives.
func (sp *shardProc) start(t *testing.T, addr string) {
	t.Helper()
	os.Remove(sp.portFile)
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		envShardDir+"="+sp.dir,
		envAddr+"="+addr,
		envPortFile+"="+sp.portFile,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting shard in %s: %v", sp.dir, err)
	}
	sp.cmd = cmd
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		if b, err := os.ReadFile(sp.portFile); err == nil && len(b) > 0 {
			sp.addr = string(b)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard in %s never published its port", sp.dir)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for {
		resp, err := http.Get("http://" + sp.addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard at %s never became healthy", sp.addr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// kill SIGKILLs the shard process — no drain, no shutdown snapshot,
// exactly like a machine losing power.
func (sp *shardProc) kill(t *testing.T) {
	t.Helper()
	if err := sp.cmd.Process.Kill(); err != nil {
		t.Fatalf("killing shard: %v", err)
	}
	sp.cmd.Wait()
}

// fetchState pulls a shard's /admin/state directly (bypassing the
// router) and returns the exact snapshot bytes plus the decoded index.
func fetchState(t *testing.T, addr string) ([]byte, *anna.Index) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/admin/state")
	if err != nil {
		t.Fatalf("GET /admin/state: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /admin/state: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading /admin/state body: %v", err)
	}
	idx, err := anna.LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decoding /admin/state body: %v", err)
	}
	return buf.Bytes(), idx
}

func saveIndexBytes(t *testing.T, idx *anna.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestClusterSurvivesShardKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process harness")
	}
	const (
		nShards   = 3
		dim       = 8
		batchSize = 3
	)

	// Seed: one trained index, cloned byte-for-byte into every shard's
	// store and into the parent's per-shard mirrors.
	seed, err := anna.BuildIndex(ivecs(1, 240, dim), anna.L2, anna.BuildOptions{
		NClusters: 8, M: 4, Ks: 16, TrainIters: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	seedBytes := saveIndexBytes(t, seed)
	loadSeed := func() *anna.Index {
		idx, err := anna.LoadIndex(bytes.NewReader(seedBytes))
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}

	root := t.TempDir()
	procs := make([]*shardProc, nShards)
	mirrors := make([]*anna.Index, nShards)
	urls := make([]string, nShards)
	for i := range procs {
		dir := filepath.Join(root, "shard"+strconv.Itoa(i))
		st, err := anna.CreateStore(dir, loadSeed(), anna.StoreOptions{Sync: anna.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		procs[i] = &shardProc{dir: dir, portFile: filepath.Join(root, "port"+strconv.Itoa(i))}
		procs[i].start(t, "")
		mirrors[i] = loadSeed()
		urls[i] = "http://" + procs[i].addr
	}

	rt, err := New(Config{
		Shards: urls,
		Shard: ShardOptions{
			Timeout:          2 * time.Second,
			AddTimeout:       5 * time.Second,
			Retries:          1,
			Backoff:          qos.Backoff{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond, Factor: 2, Jitter: 0.5},
			RetryBudgetRatio: 5,
			RetryBudgetBurst: 100,
			BreakerFailures:  2,
			BreakerCooldown:  300 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()

	// Concurrent search load for the whole run: the degradation
	// contract says these never see a 5xx while any shard survives.
	var (
		searches, searchBad, searchPartial atomic.Uint64
		stopSearch                         = make(chan struct{})
		searchDone                         = make(chan struct{})
	)
	queries := ivecs(7, 4, dim)
	go func() {
		defer close(searchDone)
		for {
			select {
			case <-stopSearch:
				return
			default:
			}
			rec, _ := postSearch(t, h, searchRequest{Queries: queries[:1], W: 8, K: 5})
			searches.Add(1)
			if rec.Code != http.StatusOK {
				searchBad.Add(1)
			}
			if rec.Header().Get(HeaderPartial) != "" {
				searchPartial.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// postAdd routes one deterministic batch through the router and
	// applies acked batches to the owning shard's mirror. Failed adds on
	// a named shard are ambiguous — the shard may have WAL-logged the
	// batch before dying — so they are kept for the recovery check.
	type pending struct{ vectors [][]float32 }
	ambiguous := make(map[int][]pending)
	acked := 0
	postAdd := func(seq int) {
		t.Helper()
		vectors := ivecs(1000+int64(seq), batchSize, dim)
		body, _ := json.Marshal(addRequest{Vectors: vectors})
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/add", bytes.NewReader(body)))
		shardHdr := rec.Header().Get(HeaderShard)
		if rec.Code != http.StatusOK {
			if shardHdr != "" {
				s, err := strconv.Atoi(shardHdr)
				if err != nil {
					t.Fatalf("add %d: bad %s header %q", seq, HeaderShard, shardHdr)
				}
				ambiguous[s] = append(ambiguous[s], pending{vectors: vectors})
			}
			return
		}
		var ar addResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil {
			t.Fatalf("add %d: decoding ack: %v", seq, err)
		}
		s, err := strconv.Atoi(shardHdr)
		if err != nil {
			t.Fatalf("add %d: acked without a shard header (%q)", seq, shardHdr)
		}
		// An ack is a durability promise: mirror it, and check the
		// stripe arithmetic round-trips to the shard-local ID.
		localFirst := ar.FirstID - int64(s)*rt.stride
		gotFirst, err := mirrors[s].Add(vectors)
		if err != nil {
			t.Fatalf("add %d: mirror apply: %v", seq, err)
		}
		if gotFirst != localFirst {
			t.Fatalf("add %d: shard %d acked local id %d, mirror assigned %d",
				seq, s, localFirst, gotFirst)
		}
		acked++
	}

	// Phase A: healthy cluster absorbs load.
	seq := 0
	for ; seq < 24; seq++ {
		postAdd(seq)
	}
	if acked != 24 {
		t.Fatalf("healthy phase: %d/24 adds acked", acked)
	}

	// Phase B: shard 1 dies by SIGKILL mid-load and the cluster keeps
	// serving. Adds routed at the dead shard fail over (breaker) or
	// surface as ambiguous 502s; searches degrade to declared partials.
	procs[1].kill(t)
	for ; seq < 60; seq++ {
		postAdd(seq)
	}
	if rt.shards[1].Breaker().State() == "closed" {
		t.Fatal("breaker still closed after sustained shard death")
	}
	if got := acked; got < 40 {
		t.Fatalf("only %d adds acked with one dead shard — failover not working", got)
	}

	// Give the searcher time to observe the outage, then check the
	// degradation contract held so far.
	time.Sleep(100 * time.Millisecond)
	if n := searchBad.Load(); n != 0 {
		t.Fatalf("%d searches failed during the outage — degradation must not 5xx", n)
	}
	if searchPartial.Load() == 0 {
		t.Fatal("no partial search responses while a shard was dead")
	}
	if rt.partials.Value() == 0 {
		t.Fatal("anna_partial_results_total not incremented")
	}
	if rt.shards[1].Stats().FastFails.Load() == 0 {
		t.Fatal("no breaker fast-fails recorded for the dead shard")
	}

	// Phase C: the shard restarts on its old address and recovers from
	// its own WAL; the breaker's half-open probe readmits it and full
	// coverage returns.
	procs[1].start(t, procs[1].addr)
	recovered := false
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		rec, _ := postSearch(t, h, searchRequest{Queries: queries[:1], W: 8, K: 5})
		if rec.Code == http.StatusOK && rec.Header().Get(HeaderPartial) == "" {
			recovered = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("full coverage never returned after the shard restarted")
	}
	for ; seq < 72; seq++ {
		postAdd(seq)
	}

	close(stopSearch)
	<-searchDone
	if n := searchBad.Load(); n != 0 {
		t.Fatalf("%d of %d searches failed across the run", n, searches.Load())
	}

	// Verification 1 — no acked write lost, bit-exact recovery: each
	// shard's /admin/state must equal the mirror of its acked batches.
	// The killed shard may hold up to len(ambiguous[1]) extra batches
	// (WAL-logged before the ack could be sent); they were issued
	// sequentially, so any applied suffix is a prefix of the ambiguous
	// list, replayed onto the mirror until the sizes agree.
	for i := range procs {
		stateBytes, got := fetchState(t, procs[i].addr)
		amb := ambiguous[i]
		for len(amb) > 0 && got.Len() > mirrors[i].Len() {
			if _, err := mirrors[i].Add(amb[0].vectors); err != nil {
				t.Fatalf("shard %d: applying ambiguous batch: %v", i, err)
			}
			amb = amb[1:]
		}
		if got.Len() < mirrors[i].Len() {
			t.Fatalf("shard %d lost acked writes: has %d vectors, acked mirror has %d",
				i, got.Len(), mirrors[i].Len())
		}
		if want := saveIndexBytes(t, mirrors[i]); !bytes.Equal(stateBytes, want) {
			t.Fatalf("shard %d state diverged from acked mirror (%d vs %d bytes, Len %d vs %d)",
				i, len(stateBytes), len(want), got.Len(), mirrors[i].Len())
		}
	}

	// Verification 2 — the cluster answers like one big index: router
	// results must equal a single-process reference merge over the
	// mirrors (same stripe arithmetic, same topk.Merge).
	rec, resp := postSearch(t, h, searchRequest{Queries: queries, W: 8, K: 10})
	if rec.Code != http.StatusOK || rec.Header().Get(HeaderPartial) != "" {
		t.Fatalf("reference search: status=%d partial=%q", rec.Code, rec.Header().Get(HeaderPartial))
	}
	for q, query := range queries {
		var lists [][]topk.Result
		for i, m := range mirrors {
			rs := m.Search(query, 8, 10)
			list := make([]topk.Result, len(rs))
			for j, r := range rs {
				list[j] = topk.Result{ID: int64(i)*rt.stride + r.ID, Score: r.Score}
			}
			lists = append(lists, list)
		}
		want := topk.Merge(10, lists...)
		got := resp.Results[q]
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, reference has %d", q, len(got), len(want))
		}
		for j := range want {
			if got[j].ID != want[j].ID || got[j].Score != want[j].Score {
				t.Fatalf("query %d result %d: got (%d, %v), reference (%d, %v)",
					q, j, got[j].ID, got[j].Score, want[j].ID, want[j].Score)
			}
		}
	}
}
