package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"anna/internal/metrics"
	"anna/internal/slo"
	"anna/internal/topk"
	"anna/internal/trace"
	"anna/internal/tsdb"
)

// Wire types mirroring the annaserve JSON API. The router speaks the
// same dialect on both sides, so a client cannot tell a router from a
// single annaserve — except for the X-Anna-* headers it adds.
type searchRequest struct {
	Queries [][]float32 `json:"queries"`
	W       int         `json:"w"`
	K       int         `json:"k"`
	Backend string      `json:"backend,omitempty"`
}

type searchResult struct {
	ID    int64   `json:"id"`
	Score float32 `json:"score"`
}

type searchResponse struct {
	Results [][]searchResult `json:"results"`
}

type addRequest struct {
	Vectors [][]float32 `json:"vectors"`
}

type addResponse struct {
	FirstID int64 `json:"first_id"`
	Count   int   `json:"count"`
}

// HeaderPartial carries the router's coverage declaration on degraded
// responses: "shards=k/n" means k of n shards contributed.
const HeaderPartial = "X-Anna-Partial"

// HeaderShard names the shard index that served a routed /add.
const HeaderShard = "X-Anna-Shard"

// DefaultStride is the width of each shard's global-ID stripe: shard i
// owns global IDs [i*Stride, (i+1)*Stride), mapped to shard-local IDs
// by subtracting the stripe base. 2^40 local IDs per shard is far past
// any in-memory corpus, and the stripe arithmetic stays exact in int64
// for thousands of shards.
const DefaultStride int64 = 1 << 40

// Config configures a Router.
type Config struct {
	// Shards are the base URLs of the annaserve replicas, in stripe
	// order (shard i owns global IDs [i*Stride, (i+1)*Stride)).
	Shards []string
	// Stride is the global-ID stripe width (default DefaultStride).
	Stride int64
	// DefaultW and DefaultK fill omitted search knobs (defaults 32, 10)
	// so every shard runs the identical query.
	DefaultW, DefaultK int
	// MaxBatch bounds queries per request (default 1024).
	MaxBatch int
	// Shard configures the hardened per-shard client.
	Shard ShardOptions

	// Logger receives slow-query lines and SLO transitions (default
	// slog.Default()).
	Logger *slog.Logger
	// TraceSampleEvery traces 1-in-N /search requests that did not opt
	// in with an X-Request-ID header (default 64; negative disables
	// sampling). A traced request records one hop per shard attempt and
	// stamps the wire context on every outbound hop, so the shards'
	// traces stitch under the same ID via /debug/trace/{id}.
	TraceSampleEvery int
	// SlowQuery is the latency threshold above which a traced /search is
	// logged as slow (default 250ms; negative disables).
	SlowQuery time.Duration
	// TraceRingSize bounds the buffer behind /debug/queries (default 256).
	TraceRingSize int
	// ScrapeEvery is the embedded tsdb's scrape interval (default 10s;
	// negative disables the tsdb, SLO engine, /alerts and /debug/dash).
	ScrapeEvery time.Duration
	// SLOLatencyP99 enables the latency SLO: at most 1% of /search
	// requests may be slower than this bound. Zero disables it.
	SLOLatencyP99 time.Duration
	// SLOAvailability enables the availability SLO with this objective.
	// On the router the bad-event ratio is partial-coverage-aware: a 5xx
	// costs a full error, a degraded (partial-coverage) answer half one.
	// Zero disables it.
	SLOAvailability float64
	// SLOOptions override the burn-rate windows (zero = defaults).
	SLOOptions slo.Options
}

// Router is the scatter-gather front door of a sharded cluster. It
// holds no index state: every query fans out to all shards and every
// add is routed to one, so the router restarts instantly and can be
// replicated freely behind a plain load balancer.
type Router struct {
	shards   []*Shard
	stride   int64
	defaultW int
	defaultK int
	maxBatch int

	addRR atomic.Uint64 // round-robin cursor for /add placement

	reg        *metrics.Registry
	partials   *metrics.Counter
	unservable *metrics.Counter
	duration   map[string]*metrics.Histogram

	logger   *slog.Logger
	rec      *trace.Recorder
	db       *tsdb.DB
	eng      *slo.Engine
	resps    atomic.Uint64 // responses served (availability signal)
	resps5xx atomic.Uint64 // responses with a 5xx status
}

// New returns a router over the configured shards.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	if cfg.Stride <= 0 {
		cfg.Stride = DefaultStride
	}
	if cfg.DefaultW <= 0 {
		cfg.DefaultW = 32
	}
	if cfg.DefaultK <= 0 {
		cfg.DefaultK = 10
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	rt := &Router{
		stride:   cfg.Stride,
		defaultW: cfg.DefaultW,
		defaultK: cfg.DefaultK,
		maxBatch: cfg.MaxBatch,
		reg:      metrics.NewRegistry(),
		duration: map[string]*metrics.Histogram{},
	}
	rt.partials = rt.reg.Counter("anna_partial_results_total",
		"Search responses served with partial shard coverage.")
	rt.unservable = rt.reg.Counter("anna_unservable_requests_total",
		"Requests failed because no shard could serve them.")
	for _, h := range []string{"search", "add", "stats"} {
		rt.duration[h] = rt.reg.Histogram("anna_request_duration_seconds",
			"Wall-clock request latency by handler.", nil,
			metrics.Label{Key: "handler", Value: h})
	}
	for i, base := range cfg.Shards {
		s := NewShard(i, base, cfg.Shard)
		rt.shards = append(rt.shards, s)
		lbl := metrics.Label{Key: "shard", Value: strconv.Itoa(i)}
		st := s.Stats()
		rt.reg.CounterFunc("anna_shard_requests_total",
			"Attempts sent to each shard (incl. retries and hedges).",
			st.Requests.Load, lbl)
		rt.reg.CounterFunc("anna_shard_retries_total",
			"Retried attempts per shard.", st.Retries.Load, lbl)
		rt.reg.CounterFunc("anna_shard_hedges_total",
			"Hedged attempts per shard.", st.Hedges.Load, lbl)
		rt.reg.CounterFunc("anna_shard_failures_total",
			"Attempts that ended in a transport error or 5xx.", st.Failures.Load, lbl)
		rt.reg.CounterFunc("anna_shard_fast_fails_total",
			"Requests refused locally by the open circuit breaker.", st.FastFails.Load, lbl)
		rt.reg.CounterFunc("anna_shard_breaker_opens_total",
			"Times the shard's circuit breaker tripped open.", s.Breaker().Opens, lbl)
		breaker := s.Breaker()
		rt.reg.GaugeFunc("anna_shard_breaker_open",
			"1 when the shard's circuit breaker is not closed.",
			func() float64 {
				if breaker.State() != "closed" {
					return 1
				}
				return 0
			}, lbl)
	}
	metrics.RegisterRuntime(rt.reg)
	rt.logger = cfg.Logger
	if rt.logger == nil {
		rt.logger = slog.Default()
	}
	sample := cfg.TraceSampleEvery
	if sample == 0 {
		sample = 64
	}
	slowQ := cfg.SlowQuery
	if slowQ == 0 {
		slowQ = 250 * time.Millisecond
	}
	rt.rec = trace.NewRecorder(cfg.TraceRingSize, sample, slowQ, rt.logger)
	rt.initObs(cfg)
	return rt, nil
}

// Close stops the router's background scraper. The shard clients hold
// no goroutines of their own.
func (rt *Router) Close() {
	if rt.db != nil {
		rt.db.Close()
	}
}

// Shards exposes the shard clients (metrics, tests, annaload).
func (rt *Router) Shards() []*Shard { return rt.shards }

// Metrics returns the router's metrics registry.
func (rt *Router) Metrics() *metrics.Registry { return rt.reg }

// Handler returns the router's HTTP handler tree — the same surface as
// a single annaserve, minus the single-process admin endpoints.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", rt.instrument("search", rt.handleSearch))
	mux.HandleFunc("/add", rt.instrument("add", rt.handleAdd))
	mux.HandleFunc("/stats", rt.instrument("stats", rt.handleStats))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", rt.handleReadyz)
	mux.Handle("/metrics", rt.reg.Handler())
	mux.HandleFunc("/debug/queries", rt.handleDebugQueries)
	mux.HandleFunc("/debug/trace/{id}", rt.handleDebugTrace)
	if rt.db != nil {
		mux.Handle("/debug/tsdb", rt.db.Handler())
		mux.Handle("/alerts", rt.eng.Handler())
		mux.Handle("/debug/dash", slo.DashHandler("annarouter"))
	}
	return mux
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (rt *Router) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		rt.duration[name].ObserveDuration(time.Since(start))
		rt.resps.Add(1)
		if sw.code >= 500 {
			rt.resps5xx.Add(1)
		}
		rt.reg.Counter("anna_http_requests_total", "Requests by handler and status code.",
			metrics.Label{Key: "handler", Value: name},
			metrics.Label{Key: "code", Value: strconv.Itoa(sw.code)}).Inc()
	}
}

func (rt *Router) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// shardReply is one shard's contribution to a scatter.
type shardReply struct {
	shard  int
	status int
	body   []byte
	err    error
}

// scatter sends the same request to every shard concurrently and
// returns all replies (indexed by shard). ctx carries the request ID
// (and trace, when sampled) into every hop.
func (rt *Router) scatter(ctx context.Context, method, path string, body []byte) []shardReply {
	replies := make([]shardReply, len(rt.shards))
	var wg sync.WaitGroup
	for i, s := range rt.shards {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			status, b, err := s.Do(ctx, method, path, body, true)
			replies[i] = shardReply{shard: i, status: status, body: b, err: err}
		}(i, s)
	}
	wg.Wait()
	return replies
}

// handleSearch fans one search out to every shard and merges the
// per-shard top-k lists into the global top-k. Shards that fail past
// their retry budget are dropped from coverage: the query still
// answers, with the loss declared in X-Anna-Partial and counted in
// anna_partial_results_total. Only a total loss (zero shards) fails
// the request.
func (rt *Router) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	start := time.Now()
	// The request ID rides every shard hop and is echoed back, matching
	// annaserve's contract: the client's ID when it sent one (which also
	// forces a trace), a generated one otherwise.
	reqID := r.Header.Get(HeaderRequestID)
	tagged := reqID != ""
	if !tagged {
		reqID = trace.NewID()
	}
	w.Header().Set(HeaderRequestID, reqID)
	ctx := WithRequestID(r.Context(), reqID)
	var tr *trace.Trace
	if tagged || rt.rec.ShouldSample() {
		tr = trace.New(reqID)
		tr.Start = start
		// Shard.Do records one hop per attempt into this trace, and
		// stamps the wire context on each outbound request so the shards'
		// own traces stitch under the same ID.
		ctx = trace.NewContext(ctx, tr)
		defer func() {
			code := http.StatusOK
			if sw, ok := w.(*statusWriter); ok {
				code = sw.code
			}
			tr.Finish(code)
			rt.rec.Record(tr)
		}()
	}
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rt.httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		rt.httpError(w, http.StatusBadRequest, "no queries")
		return
	}
	if len(req.Queries) > rt.maxBatch {
		rt.httpError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Queries), rt.maxBatch)
		return
	}
	// Normalize the knobs before fan-out so every shard answers the
	// identical (W, K) — the merge below assumes per-shard lists are
	// each a top-K under the same K.
	if req.W <= 0 {
		req.W = rt.defaultW
	}
	if req.K <= 0 {
		req.K = rt.defaultK
	}
	if tr != nil {
		tr.Queries, tr.W, tr.K = len(req.Queries), req.W, req.K
	}
	body, err := json.Marshal(req)
	if err != nil {
		rt.httpError(w, http.StatusInternalServerError, "encoding request: %v", err)
		return
	}

	replies := rt.scatter(ctx, http.MethodPost, "/search", body)

	// A 4xx from any shard means the request itself is bad (shards are
	// interchangeable for validation); relay the first one verbatim.
	for _, rep := range replies {
		if rep.err == nil && rep.status >= 400 && rep.status < 500 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(rep.status)
			w.Write(rep.body)
			return
		}
	}

	// Merge the shards that answered, rewriting shard-local IDs into
	// their global stripes.
	lists := make([][][]topk.Result, 0, len(replies)) // per ok shard, per query
	ok := 0
	for _, rep := range replies {
		if rep.err != nil || rep.status != http.StatusOK {
			continue
		}
		var sr searchResponse
		if err := json.Unmarshal(rep.body, &sr); err != nil || len(sr.Results) != len(req.Queries) {
			continue // malformed reply = failed shard, coverage drops
		}
		perQuery := make([][]topk.Result, len(req.Queries))
		base := int64(rep.shard) * rt.stride
		for q, results := range sr.Results {
			rs := make([]topk.Result, len(results))
			for j, res := range results {
				rs[j] = topk.Result{ID: base + res.ID, Score: res.Score}
			}
			perQuery[q] = rs
		}
		lists = append(lists, perQuery)
		ok++
	}
	if ok == 0 {
		rt.unservable.Inc()
		rt.httpError(w, http.StatusBadGateway, "no shard reachable (0/%d)", len(rt.shards))
		return
	}

	resp := searchResponse{Results: make([][]searchResult, len(req.Queries))}
	merge := make([][]topk.Result, len(lists))
	for q := range req.Queries {
		for i, perQuery := range lists {
			merge[i] = perQuery[q]
		}
		merged := topk.Merge(req.K, merge...)
		out := make([]searchResult, len(merged))
		for j, m := range merged {
			out[j] = searchResult{ID: m.ID, Score: m.Score}
		}
		resp.Results[q] = out
	}

	if ok < len(rt.shards) {
		w.Header().Set(HeaderPartial, fmt.Sprintf("shards=%d/%d", ok, len(rt.shards)))
		rt.partials.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleAdd routes one add batch to a single owning shard. The shard's
// WAL-before-ack pipeline is preserved end to end: the router acks only
// after the shard acked, and the shard acks only after its WAL fsync.
// Adds are never retried — a timed-out add may have been applied, and
// re-sending it would duplicate vectors. Placement is round-robin over
// shards whose breaker admits traffic; a breaker fast-fail (request
// provably unsent) moves to the next shard.
func (rt *Router) handleAdd(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	reqID := r.Header.Get(HeaderRequestID)
	if reqID == "" {
		reqID = trace.NewID()
	}
	w.Header().Set(HeaderRequestID, reqID)
	ctx := WithRequestID(r.Context(), reqID)
	var req addRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rt.httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Vectors) == 0 {
		rt.httpError(w, http.StatusBadRequest, "no vectors")
		return
	}
	body, err := json.Marshal(req)
	if err != nil {
		rt.httpError(w, http.StatusInternalServerError, "encoding request: %v", err)
		return
	}
	start := int(rt.addRR.Add(1)-1) % len(rt.shards)
	for off := 0; off < len(rt.shards); off++ {
		s := rt.shards[(start+off)%len(rt.shards)]
		status, b, err := s.Do(ctx, http.MethodPost, "/add", body, false)
		if err != nil {
			if r.Context().Err() != nil {
				rt.httpError(w, http.StatusGatewayTimeout, "add canceled: %v", err)
				return
			}
			// ErrShardDown means the request was never sent — the next
			// shard can own this batch. Any other error is ambiguous
			// (the shard may have applied it) and must surface.
			if errors.Is(err, ErrShardDown) {
				continue
			}
			rt.unservable.Inc()
			// Name the shard so the client knows whose state is now
			// ambiguous (the batch may or may not have been applied).
			w.Header().Set(HeaderShard, strconv.Itoa(s.Index))
			rt.httpError(w, http.StatusBadGateway, "shard %d add failed: %v", s.Index, err)
			return
		}
		if status != http.StatusOK {
			// Relay the shard's verdict (400 bad vectors, 429, 5xx...).
			w.Header().Set(HeaderShard, strconv.Itoa(s.Index))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			w.Write(b)
			return
		}
		var ar addResponse
		if err := json.Unmarshal(b, &ar); err != nil {
			rt.httpError(w, http.StatusBadGateway, "shard %d add reply: %v", s.Index, err)
			return
		}
		if ar.FirstID+int64(ar.Count) > rt.stride {
			rt.httpError(w, http.StatusInternalServerError,
				"shard %d exhausted its ID stripe (%d ids)", s.Index, rt.stride)
			return
		}
		ar.FirstID += int64(s.Index) * rt.stride
		w.Header().Set(HeaderShard, strconv.Itoa(s.Index))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ar)
		return
	}
	rt.unservable.Inc()
	rt.httpError(w, http.StatusBadGateway, "no shard accepting adds (0/%d)", len(rt.shards))
}

// handleStats aggregates shard /stats into a cluster view: total
// vectors, per-shard detail, and breaker states.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rt.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	replies := rt.scatter(r.Context(), http.MethodGet, "/stats", nil)
	total := 0
	shards := make([]map[string]any, len(replies))
	for i, rep := range replies {
		entry := map[string]any{
			"shard":   i,
			"base":    rt.shards[i].Base,
			"breaker": rt.shards[i].Breaker().State(),
		}
		if rep.err != nil || rep.status != http.StatusOK {
			entry["up"] = false
		} else {
			var st map[string]any
			if err := json.Unmarshal(rep.body, &st); err == nil {
				entry["up"] = true
				if v, ok := st["vectors"].(float64); ok {
					entry["vectors"] = int(v)
					total += int(v)
				}
			} else {
				entry["up"] = false
			}
		}
		shards[i] = entry
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"vectors": total,
		"stride":  rt.stride,
		"shards":  shards,
	})
}

// handleReadyz reports the router's ability to serve: ready as soon as
// at least one shard answers its own /readyz (the degradation contract
// lets the router serve partial coverage), with the full per-shard
// picture in the body for operators and the harness.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type shardReady struct {
		Shard int    `json:"shard"`
		Base  string `json:"base"`
		Ready bool   `json:"ready"`
	}
	states := make([]shardReady, len(rt.shards))
	var wg sync.WaitGroup
	for i, s := range rt.shards {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			status, _, err := s.Do(r.Context(), http.MethodGet, "/readyz", nil, true)
			states[i] = shardReady{Shard: i, Base: s.Base, Ready: err == nil && status == http.StatusOK}
		}(i, s)
	}
	wg.Wait()
	ready := 0
	for _, st := range states {
		if st.Ready {
			ready++
		}
	}
	code := http.StatusOK
	if ready == 0 {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderPartial, fmt.Sprintf("shards=%d/%d", ready, len(rt.shards)))
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"ready":  ready > 0,
		"shards": states,
	})
}
