// Package cluster is the scatter-gather serving layer: a shard router
// that partitions the index ID space across N annaserve replicas, fans
// searches out to every shard, merges their per-query top-k lists, and
// routes adds to an owning shard — with every remote hop hardened for
// partial failure (retries with budgets, hedged requests, per-shard
// circuit breakers) and graceful degradation when a shard stays down
// (partial results carrying an explicit coverage header instead of a
// failed query).
//
// The layout follows the FusionANNS observation that the winning
// large-scale shape is a thin routing tier over partitioned PQ shards:
// each shard is a complete single-process annaserve (its own PQ
// codebooks, WAL and snapshot), the router holds no index state at
// all, and the global vector ID space is striped — shard i owns IDs
// [i*Stride, (i+1)*Stride), with the shard-local ID being the offset
// into the stripe. Search results merge with the same pheap/topk k-way
// machinery the engine uses for intra-query parallelism, so the merge
// semantics (descending score, ascending ID on ties) are identical to
// a single process serving the union of the shards.
package cluster

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// Breaker is a per-shard circuit breaker. Closed passes every request
// and counts consecutive failures; at the threshold it opens and fails
// fast (no connection attempts against a dead shard, so a scatter
// doesn't pay a timeout per query per dead shard). After the cooldown
// it admits a single probe (half-open): success closes the circuit,
// failure re-opens it for another cooldown.
//
// Only transport errors and 5xx count as failures — a 4xx means the
// shard is healthy and the request was wrong, which must not poison
// the circuit for everyone else.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test hook

	mu       sync.Mutex
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	opens    uint64
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures (default 5) and probes again after cooldown
// (default 1s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may be sent. In the open state it
// returns false until the cooldown elapses, then true exactly once (the
// probe) until that probe reports an outcome.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		// One probe at a time; concurrent requests keep failing fast
		// until the in-flight probe decides.
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default: // open
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	}
}

// Success reports a request outcome that proves the shard healthy.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}

// Failure reports a transport error or 5xx outcome.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		// The probe failed: back to a full cooldown.
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.opens++
		return
	}
	b.fails++
	if b.state == breakerClosed && b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.opens++
	}
}

// State returns the current state name ("closed", "open", "half-open").
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

// Opens returns how many times the breaker has tripped open.
func (b *Breaker) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
