package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"anna/internal/qos"
)

// fastOpts are shard options tuned so failure tests run in
// milliseconds: tight timeouts, minimal backoff, a generous retry
// budget (budget exhaustion has its own test).
func fastOpts() ShardOptions {
	return ShardOptions{
		Timeout:          200 * time.Millisecond,
		AddTimeout:       200 * time.Millisecond,
		Retries:          2,
		Backoff:          qos.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Factor: 1, Jitter: 0},
		RetryBudgetRatio: 5, // effectively unlimited
		RetryBudgetBurst: 1000,
		BreakerFailures:  1000, // breaker behavior has its own tests
		BreakerCooldown:  time.Minute,
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, time.Second)
	b.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
	}
	if b.State() != "open" || b.Allow() {
		t.Fatalf("after 3 failures: state=%s", b.State())
	}
	if b.Opens() != 1 {
		t.Fatalf("opens=%d", b.Opens())
	}
	// Cooldown not yet elapsed: still failing fast.
	now = now.Add(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}
	// Cooldown elapsed: exactly one probe.
	now = now.Add(600 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe after cooldown")
	}
	if b.State() != "half-open" {
		t.Fatalf("state=%s, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe fails: re-open for a fresh cooldown.
	b.Failure()
	if b.State() != "open" || b.Allow() {
		t.Fatalf("after failed probe: state=%s", b.State())
	}
	// Next probe succeeds: closed again, failure count reset.
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Success()
	if b.State() != "closed" || !b.Allow() {
		t.Fatalf("after successful probe: state=%s", b.State())
	}
	// 4xx-style outcomes (Success) keep resetting the streak.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != "closed" {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestShardRetriesRecoverFrom5xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()
	s := NewShard(0, ts.URL, fastOpts())
	status, body, err := s.Do(context.Background(), http.MethodPost, "/search", []byte(`{}`), true)
	if err != nil || status != http.StatusOK {
		t.Fatalf("status=%d err=%v", status, err)
	}
	if !bytes.Contains(body, []byte("ok")) {
		t.Fatalf("body=%q", body)
	}
	if got := s.Stats().Retries.Load(); got != 2 {
		t.Fatalf("retries=%d, want 2", got)
	}
}

func TestShardDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad dim", http.StatusBadRequest)
	}))
	defer ts.Close()
	s := NewShard(0, ts.URL, fastOpts())
	status, _, err := s.Do(context.Background(), http.MethodPost, "/search", []byte(`{}`), true)
	if err != nil || status != http.StatusBadRequest {
		t.Fatalf("status=%d err=%v", status, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx retried: %d calls", calls.Load())
	}
	if s.Breaker().State() != "closed" {
		t.Fatal("4xx counted as shard failure")
	}
}

func TestShardDoesNotRetryAdds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	s := NewShard(0, ts.URL, fastOpts())
	status, _, err := s.Do(context.Background(), http.MethodPost, "/add", []byte(`{}`), false)
	if err != nil || status != http.StatusInternalServerError {
		t.Fatalf("status=%d err=%v", status, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("non-idempotent request retried: %d calls", calls.Load())
	}
}

func TestShardRetryBudgetBoundsAmplification(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	opt := fastOpts()
	opt.Retries = 10
	opt.RetryBudgetRatio = 0.1 // 10 requests earn one retry
	opt.RetryBudgetBurst = 1
	s := NewShard(0, ts.URL, opt)
	for i := 0; i < 10; i++ {
		s.Do(context.Background(), http.MethodPost, "/search", []byte(`{}`), true)
	}
	// 10 requests deposited 1.0 tokens total: at most 1 retry happened
	// across all of them, not 10×10.
	if got := s.Stats().Retries.Load(); got > 1 {
		t.Fatalf("retries=%d despite exhausted budget", got)
	}
	if calls.Load() > 11 {
		t.Fatalf("%d attempts for 10 requests — budget not enforced", calls.Load())
	}
}

func TestShardBreakerFastFails(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	opt := fastOpts()
	opt.Retries = -1
	opt.BreakerFailures = 3
	opt.BreakerCooldown = time.Hour
	s := NewShard(0, ts.URL, opt)
	for i := 0; i < 3; i++ {
		if _, _, err := s.Do(context.Background(), http.MethodPost, "/search", []byte(`{}`), true); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	sent := calls.Load()
	// Breaker open: requests fail fast without touching the network.
	for i := 0; i < 5; i++ {
		_, _, err := s.Do(context.Background(), http.MethodPost, "/search", []byte(`{}`), true)
		if !errors.Is(err, ErrShardDown) {
			t.Fatalf("open breaker: err=%v, want ErrShardDown", err)
		}
	}
	if calls.Load() != sent {
		t.Fatalf("open breaker still sent requests (%d -> %d)", sent, calls.Load())
	}
	if got := s.Stats().FastFails.Load(); got != 5 {
		t.Fatalf("fastFails=%d, want 5", got)
	}
}

func TestShardHedgesSlowRequests(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// The primary is pathologically slow; the hedge answers.
			time.Sleep(2 * time.Second)
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()
	opt := fastOpts()
	opt.Timeout = 5 * time.Second
	opt.HedgeAfter = 20 * time.Millisecond
	opt.HedgeMax = 30 * time.Millisecond
	s := NewShard(0, ts.URL, opt)
	start := time.Now()
	status, _, err := s.Do(context.Background(), http.MethodPost, "/search", []byte(`{}`), true)
	if err != nil || status != http.StatusOK {
		t.Fatalf("status=%d err=%v", status, err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not rescue the slow primary (%v)", elapsed)
	}
	if got := s.Stats().Hedges.Load(); got != 1 {
		t.Fatalf("hedges=%d, want 1", got)
	}
}

// fakeShardSet stands up n httptest servers with per-shard handlers and
// returns a router over them.
func fakeShardSet(t *testing.T, handlers []http.Handler, opt ShardOptions) *Router {
	t.Helper()
	bases := make([]string, len(handlers))
	for i, h := range handlers {
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		bases[i] = ts.URL
	}
	rt, err := New(Config{Shards: bases, Shard: opt, DefaultK: 10, DefaultW: 32})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// staticSearchShard answers every query with a fixed local result list.
func staticSearchShard(results []searchResult) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/search" {
			http.NotFound(w, r)
			return
		}
		var req searchRequest
		json.NewDecoder(r.Body).Decode(&req)
		out := searchResponse{Results: make([][]searchResult, len(req.Queries))}
		k := req.K
		if k > len(results) {
			k = len(results)
		}
		for q := range out.Results {
			out.Results[q] = results[:k]
		}
		json.NewEncoder(w).Encode(out)
	})
}

func postSearch(t *testing.T, h http.Handler, req searchRequest) (*httptest.ResponseRecorder, searchResponse) {
	t.Helper()
	b, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/search", bytes.NewReader(b)))
	var resp searchResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return rec, resp
}

func TestRouterMergesShardTopK(t *testing.T) {
	rt := fakeShardSet(t, []http.Handler{
		staticSearchShard([]searchResult{{ID: 1, Score: 0.9}, {ID: 2, Score: 0.5}}),
		staticSearchShard([]searchResult{{ID: 0, Score: 0.8}}),
		staticSearchShard([]searchResult{{ID: 5, Score: 0.95}, {ID: 6, Score: 0.1}}),
	}, fastOpts())
	h := rt.Handler()

	rec, resp := postSearch(t, h, searchRequest{Queries: [][]float32{{0}, {1}}, K: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get(HeaderPartial) != "" {
		t.Fatalf("full coverage marked partial: %q", rec.Header().Get(HeaderPartial))
	}
	S := DefaultStride
	want := []searchResult{
		{ID: 2*S + 5, Score: 0.95},
		{ID: 0*S + 1, Score: 0.9},
		{ID: 1*S + 0, Score: 0.8},
		{ID: 0*S + 2, Score: 0.5},
	}
	for q, got := range resp.Results {
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d: %+v, want %+v", q, i, got[i], want[i])
			}
		}
	}
}

func TestRouterPartialCoverage(t *testing.T) {
	down := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "dead", http.StatusInternalServerError)
	})
	opt := fastOpts()
	opt.Retries = 1
	rt := fakeShardSet(t, []http.Handler{
		staticSearchShard([]searchResult{{ID: 1, Score: 0.9}}),
		down,
		staticSearchShard([]searchResult{{ID: 3, Score: 0.7}}),
	}, opt)
	h := rt.Handler()

	rec, resp := postSearch(t, h, searchRequest{Queries: [][]float32{{0}}, K: 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded query failed: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(HeaderPartial); got != "shards=2/3" {
		t.Fatalf("%s = %q, want shards=2/3", HeaderPartial, got)
	}
	if rt.partials.Value() == 0 {
		t.Fatal("anna_partial_results_total not incremented")
	}
	if len(resp.Results[0]) != 2 {
		t.Fatalf("%d results from 2 live shards", len(resp.Results[0]))
	}
}

func TestRouterAllShardsDown(t *testing.T) {
	down := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "dead", http.StatusInternalServerError)
	})
	opt := fastOpts()
	opt.Retries = -1
	rt := fakeShardSet(t, []http.Handler{down, down}, opt)
	rec, _ := postSearch(t, rt.Handler(), searchRequest{Queries: [][]float32{{0}}})
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("total loss answered %d, want 502", rec.Code)
	}
}

func TestRouterRelaysShardValidation(t *testing.T) {
	badReq := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"query 0 has dim 1, index dim 8"}`)
	})
	rt := fakeShardSet(t, []http.Handler{badReq, badReq}, fastOpts())
	rec, _ := postSearch(t, rt.Handler(), searchRequest{Queries: [][]float32{{0}}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("shard 400 relayed as %d", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("dim")) {
		t.Fatalf("shard error body lost: %s", rec.Body.String())
	}
}

// addShard acks adds with its own local ID counter.
func addShard(next *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/add" {
			http.NotFound(w, r)
			return
		}
		var req addRequest
		json.NewDecoder(r.Body).Decode(&req)
		first := next.Add(int64(len(req.Vectors))) - int64(len(req.Vectors))
		json.NewEncoder(w).Encode(addResponse{FirstID: first, Count: len(req.Vectors)})
	})
}

func TestRouterAddRoutesAndRewritesIDs(t *testing.T) {
	var c0, c1 atomic.Int64
	rt := fakeShardSet(t, []http.Handler{addShard(&c0), addShard(&c1)}, fastOpts())
	h := rt.Handler()

	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		body, _ := json.Marshal(addRequest{Vectors: [][]float32{{1, 2}}})
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/add", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("add %d: %d %s", i, rec.Code, rec.Body.String())
		}
		shard := rec.Header().Get(HeaderShard)
		seen[shard] = true
		var ar addResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil {
			t.Fatal(err)
		}
		// The global ID must sit inside the acked shard's stripe.
		sh, err := strconv.Atoi(shard)
		if err != nil {
			t.Fatalf("bad %s header %q", HeaderShard, shard)
		}
		if ar.FirstID/DefaultStride != int64(sh) {
			t.Fatalf("first_id %d not in shard %s stripe", ar.FirstID, shard)
		}
	}
	if !seen["0"] || !seen["1"] {
		t.Fatalf("round-robin did not reach both shards: %v", seen)
	}
}

func TestRouterAddSkipsOpenBreaker(t *testing.T) {
	var c0 atomic.Int64
	down := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "dead", http.StatusInternalServerError)
	})
	opt := fastOpts()
	opt.Retries = -1
	opt.BreakerFailures = 1
	opt.BreakerCooldown = time.Hour
	rt := fakeShardSet(t, []http.Handler{down, addShard(&c0)}, opt)
	h := rt.Handler()

	// First add may land on the dead shard (502, not silently retried
	// elsewhere — the send is ambiguous); its failure opens the breaker.
	// Every subsequent add must route around the open breaker and land.
	okAfterOpen := 0
	for i := 0; i < 6; i++ {
		body, _ := json.Marshal(addRequest{Vectors: [][]float32{{1}}})
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/add", bytes.NewReader(body)))
		if rt.shards[0].Breaker().State() == "open" && rec.Code == http.StatusOK {
			okAfterOpen++
			if got := rec.Header().Get(HeaderShard); got != "1" {
				t.Fatalf("add landed on dead shard %s", got)
			}
		}
	}
	if okAfterOpen == 0 {
		t.Fatal("no adds routed around the open breaker")
	}
}

func TestRouterReadyzAggregates(t *testing.T) {
	ready := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			fmt.Fprintln(w, "ready")
			return
		}
		http.NotFound(w, r)
	})
	notReady := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "recovering", http.StatusServiceUnavailable)
	})
	opt := fastOpts()
	opt.Retries = -1
	rt := fakeShardSet(t, []http.Handler{ready, notReady}, opt)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz with 1/2 shards: %d", rec.Code)
	}
	if got := rec.Header().Get(HeaderPartial); got != "shards=1/2" {
		t.Fatalf("%s = %q, want shards=1/2", HeaderPartial, got)
	}

	rt2 := fakeShardSet(t, []http.Handler{notReady, notReady}, opt)
	rec2 := httptest.NewRecorder()
	rt2.Handler().ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec2.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with 0/2 shards: %d", rec2.Code)
	}
}
